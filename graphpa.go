// Package graphpa is a post-link-time code compactor built around
// graph-based procedural abstraction (Dreweke et al., CGO 2007).
//
// It bundles a complete substrate — an ARM-style ISA with assembler,
// static linker, emulator, and a size-oriented mini-C compiler — plus the
// paper's contribution: mining the data-flow graphs of basic blocks for
// frequent fragments (DgSpan, a directed gSpan; and Edgar, its
// embedding-based extension using maximum independent sets of
// non-overlapping embeddings) and extracting them into procedures or
// merged tails until the binary stops shrinking.
//
// Typical use:
//
//	bin, _ := graphpa.Compile(src, graphpa.CompileOptions{Schedule: true})
//	opt, report, _ := bin.Optimize(graphpa.OptimizeOptions{Miner: "edgar"})
//	fmt.Println(report.Saved(), "instructions saved")
//	_ = graphpa.Verify(bin, opt) // differential behaviour check
package graphpa

import (
	"time"

	"graphpa/internal/codegen"
	"graphpa/internal/core"
	"graphpa/internal/link"
	"graphpa/internal/loader"
	"graphpa/internal/pa"
)

// Binary is an executable image for the bundled ARM-style architecture.
type Binary struct {
	img *link.Image
}

// CompileOptions tunes the mini-C compiler.
type CompileOptions struct {
	// Optimize enables the -Os-style IR optimizer (inlining, constant
	// folding, dead-code elimination) — the configuration the benchmark
	// suite uses.
	Optimize bool
	// Schedule enables the list scheduler. Scheduled code has reordered
	// loads, the duplication pattern only graph-based PA recovers.
	Schedule bool
}

// Compile builds mini-C source into a statically linked Binary (program +
// runtime library).
func Compile(src string, opts CompileOptions) (*Binary, error) {
	img, err := core.Build(src, codegen.Options{Optimize: opts.Optimize, Schedule: opts.Schedule})
	if err != nil {
		return nil, err
	}
	return &Binary{img: img}, nil
}

// Assemble builds a Binary from assembly source (it must define _start;
// the runtime library is not linked in).
func Assemble(src string) (*Binary, error) {
	img, err := core.BuildAsm(src)
	if err != nil {
		return nil, err
	}
	return &Binary{img: img}, nil
}

// Run executes the binary to completion.
func (b *Binary) Run(stdin []byte) (exit int32, stdout string, err error) {
	return core.Run(b.img, stdin)
}

// Instructions returns the executable instruction count (the paper's size
// metric).
func (b *Binary) Instructions() int {
	p, err := loader.Load(b.img)
	if err != nil {
		return -1
	}
	return p.CountInstrs()
}

// Disassemble decompiles the binary into symbolic assembly (labels
// reconstructed, literal pools symbolic).
func (b *Binary) Disassemble() (string, error) {
	p, err := loader.Load(b.img)
	if err != nil {
		return "", err
	}
	return p.String(), nil
}

// Words returns the raw image size in 32-bit words (text + data).
func (b *Binary) Words() int { return len(b.img.Words) }

// OptimizeOptions selects and tunes a procedural-abstraction miner.
type OptimizeOptions struct {
	// Miner: "sfx" (suffix-sequence baseline), "dgspan", "edgar"
	// (default), or "edgar-canon".
	Miner string
	// MinSupport is the frequency threshold (default 2).
	MinSupport int
	// MaxFragment caps mined fragment size in instructions (default 8).
	MaxFragment int
	// MaxRounds bounds mine/extract iterations (0 = run to fixpoint).
	MaxRounds int
	// GreedyMIS swaps the exact maximum-independent-set solver for the
	// greedy heuristic.
	GreedyMIS bool
}

// Extraction describes one applied rewrite.
type Extraction struct {
	Name        string // generated procedure or merge-label name
	Method      string // "call" or "crossjump"
	Size        int    // instructions per occurrence
	Occurrences int
	Benefit     int // net instructions saved
}

// Report summarises an optimization run.
type Report struct {
	Miner       string
	Before      int
	After       int
	Rounds      int
	Extractions []Extraction
	Duration    time.Duration
}

// Saved returns Before - After.
func (r *Report) Saved() int { return r.Before - r.After }

// Optimize runs post-link-time procedural abstraction and returns the
// optimized binary with a report. The receiver is unchanged.
func (b *Binary) Optimize(opts OptimizeOptions) (*Binary, *Report, error) {
	name := opts.Miner
	if name == "" {
		name = "edgar"
	}
	m, err := core.MinerByName(name)
	if err != nil {
		return nil, nil, err
	}
	res, img, err := core.Optimize(b.img, m, pa.Options{
		MinSupport: opts.MinSupport,
		MaxNodes:   opts.MaxFragment,
		MaxRounds:  opts.MaxRounds,
		GreedyMIS:  opts.GreedyMIS,
	})
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{
		Miner:    res.Miner,
		Before:   res.Before,
		After:    res.After,
		Rounds:   res.Rounds,
		Duration: res.Duration,
	}
	for _, e := range res.Extractions {
		rep.Extractions = append(rep.Extractions, Extraction{
			Name:        e.Name,
			Method:      e.Method.String(),
			Size:        e.Size,
			Occurrences: e.Occs,
			Benefit:     e.Benefit,
		})
	}
	return &Binary{img: img}, rep, nil
}

// Verify runs both binaries (no stdin) and reports an error if their
// observable behaviour differs.
func Verify(a, b *Binary) error {
	return core.VerifyEquivalent(a.img, b.img, nil)
}

// VerifyOn is Verify with stdin.
func VerifyOn(a, b *Binary, stdin []byte) error {
	return core.VerifyEquivalent(a.img, b.img, stdin)
}

// Miners lists the available miner names.
func Miners() []string { return []string{"sfx", "dgspan", "edgar", "edgar-canon"} }
