package graphpa

import (
	"strings"
	"testing"
)

const testProg = `
int buf[32];
int fold(int x, int k) {
	int t = x * 17 + k;
	t = t ^ (t << 4);
	return t;
}
int spin(int x, int k) {
	int t = x * 17 + k;
	t = t ^ (t << 4);
	return t + 3;
}
int main() {
	int acc = 5;
	for (int i = 0; i < 32; i += 1) {
		buf[i] = fold(acc, i);
		acc = spin(buf[i], i);
	}
	int s = 0;
	for (int i = 0; i < 32; i += 1) s ^= buf[i];
	printi(s);
	return s & 127;
}
`

func TestCompileRunPublicAPI(t *testing.T) {
	bin, err := Compile(testProg, CompileOptions{Schedule: true})
	if err != nil {
		t.Fatal(err)
	}
	if bin.Instructions() <= 0 || bin.Words() <= 0 {
		t.Fatal("size queries broken")
	}
	code, out, err := bin.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out == "" || code < 0 {
		t.Errorf("code=%d out=%q", code, out)
	}
	dis, err := bin.Disassemble()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"main:", "fold:", "push {", "bl "} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
}

func TestOptimizePublicAPI(t *testing.T) {
	bin, err := Compile(testProg, CompileOptions{Schedule: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, miner := range Miners() {
		opt, rep, err := bin.Optimize(OptimizeOptions{Miner: miner})
		if err != nil {
			t.Fatalf("%s: %v", miner, err)
		}
		if err := Verify(bin, opt); err != nil {
			t.Fatalf("%s: %v", miner, err)
		}
		if rep.Saved() != bin.Instructions()-opt.Instructions() {
			t.Errorf("%s: report (%d) disagrees with binaries (%d)",
				miner, rep.Saved(), bin.Instructions()-opt.Instructions())
		}
		for _, e := range rep.Extractions {
			if e.Method != "call" && e.Method != "crossjump" {
				t.Errorf("%s: bad method %q", miner, e.Method)
			}
			if e.Benefit <= 0 || e.Size < 2 || e.Occurrences < 2 {
				t.Errorf("%s: implausible extraction %+v", miner, e)
			}
		}
	}
}

func TestOptimizeDefaultsToEdgar(t *testing.T) {
	bin, err := Compile(testProg, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := bin.Optimize(OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Miner != "edgar" {
		t.Errorf("default miner = %q", rep.Miner)
	}
}

func TestUnknownMinerRejected(t *testing.T) {
	bin, err := Compile(testProg, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bin.Optimize(OptimizeOptions{Miner: "frob"}); err == nil {
		t.Error("unknown miner must error")
	}
}

func TestAssemblePublicAPI(t *testing.T) {
	bin, err := Assemble("_start:\n\tmov r0, #9\n\tswi 0\n")
	if err != nil {
		t.Fatal(err)
	}
	code, _, err := bin.Run(nil)
	if err != nil || code != 9 {
		t.Errorf("code=%d err=%v", code, err)
	}
	if _, err := Assemble("_start:\n\tbogus r0\n"); err == nil {
		t.Error("bad assembly must error")
	}
}

func TestVerifyOnStdin(t *testing.T) {
	echo := `
int main() {
	int c = getc();
	while (c >= 0) { putc(c); c = getc(); }
	return 0;
}
`
	bin, err := Compile(echo, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := bin.Optimize(OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyOn(bin, opt, []byte("hello stdin")); err != nil {
		t.Fatal(err)
	}
}

func TestMaxRoundsHonoured(t *testing.T) {
	bin, err := Compile(testProg, CompileOptions{Schedule: true})
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := bin.Optimize(OptimizeOptions{MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds > 1 {
		t.Errorf("rounds = %d", rep.Rounds)
	}
}
