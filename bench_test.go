package graphpa

// One benchmark per table and figure of the paper's evaluation (§4).
// Each records, besides wall time, the headline metric of its artifact
// via b.ReportMetric, so `go test -bench . -benchmem` regenerates the
// paper's numbers. cmd/paper-tables prints the same artifacts as text.

import (
	"sync"
	"testing"

	"graphpa/internal/bench"
	"graphpa/internal/codegen"
	"graphpa/internal/core"
	"graphpa/internal/pa"
)

// suite caches compiled workloads (compilation is not what the paper
// measures).
var suite = struct {
	once sync.Once
	ws   []*bench.Workload
	err  error
}{}

func workloads(b *testing.B) []*bench.Workload {
	suite.once.Do(func() {
		suite.ws, suite.err = bench.BuildAll(bench.DefaultCodegen())
	})
	if suite.err != nil {
		b.Fatal(suite.err)
	}
	return suite.ws
}

// evalOnce caches one full evaluation (all miners, verified) for the
// derived artifacts (Figure 11/12 need every miner's result).
var evalOnce = struct {
	once sync.Once
	ev   *bench.Evaluation
	err  error
}{}

func evaluation(b *testing.B) *bench.Evaluation {
	ws := workloads(b)
	evalOnce.once.Do(func() {
		evalOnce.ev, evalOnce.err = bench.Evaluate(ws, []string{"sfx", "dgspan", "edgar"}, pa.Options{MaxPatterns: 30000}, false)
	})
	if evalOnce.err != nil {
		b.Fatal(evalOnce.err)
	}
	return evalOnce.ev
}

// benchMiner runs one miner over the whole suite per iteration — the
// paper's per-miner optimization runtime (§4.2) — and reports the Table 1
// total saved instructions.
func benchMiner(b *testing.B, miner string) {
	ws := workloads(b)
	m, err := core.MinerByName(miner)
	if err != nil {
		b.Fatal(err)
	}
	saved := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		saved = 0
		for _, w := range ws {
			// A bounded per-round mining budget keeps one full-suite
			// iteration to minutes on one core; see Options.MaxPatterns.
			res, _, err := core.Optimize(w.Image, m, pa.Options{MaxPatterns: 30000})
			if err != nil {
				b.Fatalf("%s: %v", w.Name, err)
			}
			saved += res.Saved()
		}
	}
	b.ReportMetric(float64(saved), "saved-instrs")
}

// BenchmarkTable1SFX..Edgar regenerate the three columns of Table 1
// (saved instructions per miner over the eight benchmark programs).
func BenchmarkTable1SFX(b *testing.B)    { benchMiner(b, "sfx") }
func BenchmarkTable1DgSpan(b *testing.B) { benchMiner(b, "dgspan") }
func BenchmarkTable1Edgar(b *testing.B)  { benchMiner(b, "edgar") }

// BenchmarkFigure11 regenerates the relative-increase figure from a full
// evaluation; the metric is Edgar's percentage gain over SFX in total.
func BenchmarkFigure11(b *testing.B) {
	ev := evaluation(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = bench.Figure11(ev)
	}
	_ = out
	sfx, edgar := ev.TotalSaved("sfx"), ev.TotalSaved("edgar")
	if sfx > 0 {
		b.ReportMetric(100*float64(edgar-sfx)/float64(sfx), "edgar-vs-sfx-%")
	}
}

// BenchmarkTable2 regenerates the high-degree instruction counts.
func BenchmarkTable2(b *testing.B) {
	ws := workloads(b)
	high, low := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		high, low = 0, 0
		for _, w := range ws {
			s := w.Stats()
			high += s.HighDegree
			low += s.LowDegree
		}
	}
	b.ReportMetric(float64(high), "degree-gt1")
	b.ReportMetric(float64(low), "degree-le1")
}

// BenchmarkTable3 regenerates the degree histograms.
func BenchmarkTable3(b *testing.B) {
	ws := workloads(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = bench.Table3(ws)
	}
	_ = out
}

// BenchmarkFigure12 regenerates the extraction-mechanism split; metrics
// are Edgar's call and cross-jump counts.
func BenchmarkFigure12(b *testing.B) {
	ev := evaluation(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = bench.Figure12(ev)
	}
	_ = out
	calls, xjumps := ev.Mechanisms("edgar")
	b.ReportMetric(float64(calls), "edgar-calls")
	b.ReportMetric(float64(xjumps), "edgar-crossjumps")
}

// BenchmarkRunningExample exercises the paper's Figs. 1-5 micro-pipeline:
// assemble the running-example block's program, optimize with Edgar.
func BenchmarkRunningExample(b *testing.B) {
	src := `
_start:
	bl work
	mov r0, #0
	swi 0
work:
	push {r4, lr}
	ldr r1, =arr
	mov r2, #100
	ldr r3, [r1]!
	sub r2, r2, r3
	add r4, r2, #4
	ldr r3, [r1]!
	sub r2, r2, r3
	ldr r3, [r1]!
	add r4, r2, #4
	mov r0, r4
	pop {r4, pc}
	.pool
.data
arr:
	.word 1
	.word 2
	.word 3
	.word 4
`
	bin, err := Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := bin.Optimize(OptimizeOptions{Miner: "edgar"}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

// ablate runs Edgar over one program with modified options/codegen and
// reports savings.
func ablate(b *testing.B, program string, cg codegen.Options, opts pa.Options) {
	w, err := bench.Build(program, cg)
	if err != nil {
		b.Fatal(err)
	}
	m, _ := core.MinerByName("edgar")
	saved := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := core.Optimize(w.Image, m, opts)
		if err != nil {
			b.Fatal(err)
		}
		saved = res.Saved()
	}
	b.ReportMetric(float64(saved), "saved-instrs")
}

// Exact vs greedy maximum independent set (§3.4 / Kumlander).
func BenchmarkAblationMISExact(b *testing.B) {
	ablate(b, "crc", bench.DefaultCodegen(), pa.Options{})
}
func BenchmarkAblationMISGreedy(b *testing.B) {
	ablate(b, "crc", bench.DefaultCodegen(), pa.Options{GreedyMIS: true})
}

// Scheduler on/off: how much reordering-created duplication graph PA
// recovers (§4.2 rijndael discussion).
func BenchmarkAblationScheduler(b *testing.B) {
	ablate(b, "crc", bench.DefaultCodegen(), pa.Options{})
}
func BenchmarkAblationNoScheduler(b *testing.B) {
	ablate(b, "crc", codegen.Options{}, pa.Options{})
}

// Batched vs the paper's strict one-extraction-per-round loop.
func BenchmarkAblationBatched(b *testing.B) {
	ablate(b, "sha", bench.DefaultCodegen(), pa.Options{})
}
func BenchmarkAblationSingleExtract(b *testing.B) {
	ablate(b, "sha", bench.DefaultCodegen(), pa.Options{SingleExtract: true})
}

// Support and fragment-size thresholds.
func BenchmarkAblationSupport3(b *testing.B) {
	ablate(b, "crc", bench.DefaultCodegen(), pa.Options{MinSupport: 3})
}
func BenchmarkAblationMaxFragment4(b *testing.B) {
	ablate(b, "crc", bench.DefaultCodegen(), pa.Options{MaxNodes: 4})
}
