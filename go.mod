module graphpa

go 1.22
