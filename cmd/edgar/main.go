// edgar is the post-link-time optimizer: it compiles (or accepts) a
// program, runs procedural abstraction with the selected miner and
// reports the shrinkage, optionally verifying behaviour differentially.
//
// Usage:
//
//	edgar [-miner edgar|dgspan|sfx|edgar-canon] [-schedule] [-maxrounds n]
//	      [-minsup n] [-maxfrag n] [-maxpatterns n] [-greedy-mis] [-lex]
//	      [-nomultires] [-workers n] [-shards host1,host2] [-verify]
//	      [-roundstats] [-dump] [-cpuprofile file] [-memprofile file] file.mc
//
// -shards distributes the per-seed lattice speculation across running
// shard-worker pads (`pad serve`) and replays the results locally; the
// output is byte-identical to a local run, and -roundstats grows the
// per-shard accounting columns.
//
// The paper's pipeline (§2.1): decompile, reconstruct labels, split into
// basic blocks, build data-flow graphs, mine, extract, repeat.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"graphpa/internal/codegen"
	"graphpa/internal/core"
	"graphpa/internal/link"
	"graphpa/internal/loader"
	"graphpa/internal/pa"
	"graphpa/internal/service"
)

// splitAddrs parses a comma-separated address list, dropping blanks.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func main() {
	miner := flag.String("miner", "edgar", "sfx | dgspan | edgar | edgar-canon")
	asmIn := flag.Bool("asm", false, "input is assembly (must define _start; no runtime linked)")
	optimizeIR := flag.Bool("O", true, "compile with the IR optimizer (inlining, folding)")
	schedule := flag.Bool("schedule", true, "compile with the list scheduler")
	maxRounds := flag.Int("maxrounds", 0, "bound mine/extract rounds (0 = fixpoint)")
	minSup := flag.Int("minsup", 0, "minimum fragment frequency (default 2)")
	maxFrag := flag.Int("maxfrag", 0, "maximum fragment size in instructions (default 8)")
	maxPatterns := flag.Int("maxpatterns", 0, "lattice visit budget per mining round (default 100000; raise to approximate the exhaustive search)")
	greedyMIS := flag.Bool("greedy-mis", false, "use greedy instead of exact independent sets")
	lex := flag.Bool("lex", false, "lexicographic lattice walk instead of benefit-directed (identical output, more visits)")
	noMultires := flag.Bool("nomultires", false, "disable multiresolution coarse-to-fine mining (identical output, plain walk only)")
	workers := flag.Int("workers", 0, "parallel width (0 = all cores, 1 = serial); results are identical at any width")
	shards := flag.String("shards", "", "comma-separated shard-worker pad addresses to distribute speculation across (identical output)")
	verify := flag.Bool("verify", true, "run before/after and compare behaviour")
	roundStats := flag.Bool("roundstats", false, "print the per-round timing and cache breakdown")
	dump := flag.Bool("dump", false, "print the optimized assembly")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the optimization to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (taken after optimization) to this file")
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintln(os.Stderr, "edgar: -workers must be non-negative")
		os.Exit(2)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: edgar [flags] file.mc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var img *link.Image
	if *asmIn {
		img, err = core.BuildAsm(string(src))
	} else {
		img, err = core.Build(string(src), codegen.Options{Optimize: *optimizeIR, Schedule: *schedule})
	}
	if err != nil {
		fatal(err)
	}
	m, err := core.MinerByName(*miner)
	if err != nil {
		fatal(err)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}
	po := pa.Options{
		MaxRounds:     *maxRounds,
		MinSupport:    *minSup,
		MaxNodes:      *maxFrag,
		MaxPatterns:   *maxPatterns,
		GreedyMIS:     *greedyMIS,
		Workers:       *workers,
		Lexicographic: *lex,
		NoMultires:    *noMultires,
	}
	if addrs := splitAddrs(*shards); len(addrs) > 0 {
		po.Shards = service.NewShardPool(addrs, slog.New(slog.NewTextHandler(os.Stderr, nil)))
	}
	res, out, err := core.Optimize(img, m, po)
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if err != nil {
		fatal(err)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
	fmt.Printf("%s: %d -> %d instructions (saved %d) in %d rounds, %v\n",
		res.Miner, res.Before, res.After, res.Saved(), res.Rounds, res.Duration)
	for _, e := range res.Extractions {
		fmt.Printf("  %-8s %-10s size=%d occs=%d benefit=%d\n",
			e.Name, e.Method, e.Size, e.Occs, e.Benefit)
	}
	if *roundStats {
		printRoundStats(res.RoundStats)
	}
	if *verify {
		if err := core.VerifyEquivalent(img, out, nil); err != nil {
			fatal(fmt.Errorf("VERIFICATION FAILED: %w", err))
		}
		fmt.Println("verified: optimized binary behaves identically")
	}
	if *dump {
		prog, err := loader.Load(out)
		if err != nil {
			fatal(err)
		}
		fmt.Print(prog.String())
	}
}

// printRoundStats renders the per-round breakdown recorded by the
// driver: phase wall clocks, dependence-graph cache effectiveness,
// summary-fixpoint scope, and lattice fast-forwarding. The last row is
// the fixpoint probe (the round that found nothing left).
func printRoundStats(stats []pa.RoundStat) {
	if len(stats) == 0 {
		return
	}
	// The shard columns appear only when any round actually spoke to a
	// shard fleet: seeds fanned out / subtrees streamed back / replay
	// fallbacks, plus incumbent broadcasts and remote speculative visits.
	sharded := false
	for _, st := range stats {
		if st.ShardSeeds > 0 || st.ShardFallbacks > 0 || st.ShardSpecVisits > 0 {
			sharded = true
			break
		}
	}
	fmt.Printf("per-round breakdown (blocks reused/rebound/rebuilt; summaries resolved/changed)\n")
	fmt.Printf("%5s %10s %10s %10s %10s %10s | %-16s %-11s %8s %8s %10s %8s",
		"round", "cfg", "sums", "dfg", "mine", "apply", "blocks r/rb/b", "sums r/c", "visits", "coarse", "ff-visits", "extract")
	if sharded {
		fmt.Printf(" | %-14s %6s %10s", "shard s/t/fb", "bcast", "sh-visits")
	}
	fmt.Println()
	for _, st := range stats {
		fmt.Printf("%5d %10s %10s %10s %10s %10s | %-16s %-11s %8d %8d %10d %8d",
			st.Round,
			st.CFGBuild.Round(time.Microsecond),
			st.Summaries.Round(time.Microsecond),
			st.DFGBuild.Round(time.Microsecond),
			st.Mine.Round(time.Millisecond),
			st.Apply.Round(time.Microsecond),
			fmt.Sprintf("%d/%d/%d", st.BlocksReused, st.BlocksRebound, st.BlocksRebuilt),
			fmt.Sprintf("%d/%d", st.SummariesRecomputed, st.SummariesChanged),
			st.Visits,
			st.CoarseVisits,
			st.VisitsSaved,
			st.Extractions)
		if sharded {
			fmt.Printf(" | %-14s %6d %10d",
				fmt.Sprintf("%d/%d/%d", st.ShardSeeds, st.ShardSubtrees, st.ShardFallbacks),
				st.ShardBroadcasts,
				st.ShardSpecVisits)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "edgar:", err)
	os.Exit(1)
}
