// minicc compiles mini-C source to assembly or a linked image and can run
// the result on the bundled emulator.
//
// Usage:
//
//	minicc [-S] [-run] [-O] [-schedule] [-o out] file.mc
//
//	-S         emit assembly text instead of linking
//	-run       execute the linked image and print its output/exit code
//	-O         enable the IR optimizer (inlining, constant folding)
//	-schedule  enable the list scheduler (load hoisting)
//	-o         output path (default: stdout for -S, a.out.words otherwise)
package main

import (
	"flag"
	"fmt"
	"os"

	"graphpa/internal/asm"
	"graphpa/internal/codegen"
	"graphpa/internal/core"
	"graphpa/internal/emu"
)

func main() {
	emitAsm := flag.Bool("S", false, "emit assembly instead of linking")
	run := flag.Bool("run", false, "run the linked image")
	schedule := flag.Bool("schedule", false, "enable the list scheduler")
	optimize := flag.Bool("O", false, "enable the IR optimizer (inlining, folding)")
	out := flag.String("o", "", "output path")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minicc [-S] [-run] [-schedule] [-o out] file.mc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	opts := codegen.Options{Optimize: *optimize, Schedule: *schedule}

	if *emitAsm {
		unit, err := codegen.Compile(string(src), opts)
		if err != nil {
			fatal(err)
		}
		text := asm.Print(unit)
		if *out == "" {
			fmt.Print(text)
			return
		}
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			fatal(err)
		}
		return
	}

	img, err := core.Build(string(src), opts)
	if err != nil {
		fatal(err)
	}
	if *run {
		m := emu.New(img, nil)
		code, err := m.Run()
		os.Stdout.Write(m.Stdout.Bytes())
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[exit %d, %d steps, %d text words]\n", code, m.Steps, img.TextWords)
		os.Exit(int(code & 0xFF))
	}
	path := *out
	if path == "" {
		path = "a.out.words"
	}
	if err := os.WriteFile(path, img.Bytes(), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d words (%d text), entry %#x\n",
		path, len(img.Words), img.TextWords, img.Entry)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minicc:", err)
	os.Exit(1)
}
