// paper-tables regenerates the evaluation artifacts of "Graph-Based
// Procedural Abstraction" (CGO 2007): Table 1 (saved instructions),
// Figure 11 (relative savings), Table 2 and Table 3 (dependence-graph
// degree statistics), Figure 12 (extraction mechanisms) and the runtime
// summary.
//
// Usage:
//
//	paper-tables [-only table1|table2|table3|fig11|fig12|timings]
//	             [-miners sfx,dgspan,edgar] [-maxfrag n] [-workers n]
//	             [-noverify] [-nomultires] [-bench-json file]
//	             [-bench-baseline file] [-visits-not-above file]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"graphpa/internal/bench"
	"graphpa/internal/pa"
)

func main() {
	only := flag.String("only", "", "render a single artifact")
	miners := flag.String("miners", "sfx,dgspan,edgar", "comma-separated miner list")
	programs := flag.String("programs", "", "comma-separated program subset (default: all)")
	maxFrag := flag.Int("maxfrag", 0, "maximum fragment size (default 8)")
	maxPatterns := flag.Int("maxpatterns", 0, "per-round mining budget (default 100000)")
	workers := flag.Int("workers", 0, "parallel width (0 = all cores, 1 = serial); tables are identical at any width")
	noverify := flag.Bool("noverify", false, "skip differential behaviour checks")
	noMultires := flag.Bool("nomultires", false, "disable multiresolution coarse-to-fine mining (kill switch)")
	benchJSON := flag.String("bench-json", "", "write a machine-readable benchmark record to this file")
	benchBase := flag.String("bench-baseline", "", "compare wall clocks against a committed benchmark record")
	visitsNotAbove := flag.String("visits-not-above", "", "fail if any run visits more lattice nodes than in this record (cross-configuration gate, skips the fingerprint check)")
	verbose := flag.Bool("v", false, "log per-program progress to stderr")
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintln(os.Stderr, "paper-tables: -workers must be non-negative")
		os.Exit(2)
	}

	names := bench.Names
	if *programs != "" {
		names = strings.Split(*programs, ",")
	}
	var ws []*bench.Workload
	for _, n := range names {
		w, err := bench.Build(n, bench.DefaultCodegen())
		if err != nil {
			fatal(err)
		}
		ws = append(ws, w)
	}
	if *verbose {
		bench.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	// Tables 2 and 3 need no optimization runs.
	switch *only {
	case "table2":
		fmt.Print(bench.Table2(ws))
		return
	case "table3":
		fmt.Print(bench.Table3(ws))
		return
	}

	list := strings.Split(*miners, ",")
	ev, err := bench.Evaluate(ws, list, pa.Options{MaxNodes: *maxFrag, MaxPatterns: *maxPatterns, Workers: *workers, NoMultires: *noMultires}, !*noverify)
	if err != nil {
		fatal(err)
	}
	if *benchJSON != "" || *benchBase != "" || *visitsNotAbove != "" {
		doc := bench.BenchJSON(ev, list)
		if *benchJSON != "" {
			if err := doc.WriteFile(*benchJSON); err != nil {
				fatal(err)
			}
		}
		if *visitsNotAbove != "" {
			// Cross-configuration visit gate: the multires arm must never
			// walk more fine-lattice nodes than the record it is compared
			// against (typically a NoMultires run of the same programs).
			// Deliberately fingerprint-blind — comparing different search
			// configurations is the point — and strict: any run above 1.0
			// fails.
			other, err := bench.ReadBenchJSON(*visitsNotAbove)
			if err != nil {
				fatal(err)
			}
			if vRun, vTotal, ok := bench.CompareVisits(doc, other); ok {
				fmt.Printf("Lattice visits vs %s (must not exceed 1.00)\n", *visitsNotAbove)
				bad := false
				for _, k := range bench.BenchKeys(vRun) {
					fmt.Printf("%-18s %6.2fx\n", k, vRun[k])
					if vRun[k] > 1.0 {
						bad = true
					}
				}
				fmt.Printf("%-18s %6.2fx\n", "total", vTotal)
				fmt.Println()
				if bad {
					fatal(fmt.Errorf("a run visited more lattice nodes than in %s", *visitsNotAbove))
				}
			}
		}
		if *benchBase != "" {
			base, err := bench.ReadBenchJSON(*benchBase)
			if err != nil {
				fatal(err)
			}
			if !bench.FingerprintsMatch(doc.Fingerprint, base.Fingerprint) {
				fatal(fmt.Errorf("options fingerprint of this run %+v does not match baseline %s %+v; visit and wall-clock comparisons would be meaningless", *doc.Fingerprint, *benchBase, *base.Fingerprint))
			}
			perRun, total := bench.CompareBench(doc, base)
			fmt.Printf("Benchmark wall clock vs %s (ratio < 1 is faster)\n", *benchBase)
			for _, k := range bench.BenchKeys(perRun) {
				fmt.Printf("%-18s %6.2fx\n", k, perRun[k])
			}
			fmt.Printf("%-18s %6.2fx\n", "total", total)
			fmt.Println()
			// Lattice visits are deterministic, so unlike wall clock they
			// gate hard: any per-run regression beyond 5% (or 2% in total)
			// against a baseline that recorded them fails the run.
			if vRun, vTotal, ok := bench.CompareVisits(doc, base); ok {
				fmt.Printf("Lattice visits vs %s (ratio < 1 visits fewer)\n", *benchBase)
				bad := false
				for _, k := range bench.BenchKeys(vRun) {
					fmt.Printf("%-18s %6.2fx\n", k, vRun[k])
					if vRun[k] > 1.05 {
						bad = true
					}
				}
				fmt.Printf("%-18s %6.2fx\n", "total", vTotal)
				fmt.Println()
				if vTotal > 1.02 {
					bad = true
				}
				if bad {
					fatal(fmt.Errorf("lattice visit count regressed vs %s (per-run tolerance 5%%, total 2%%)", *benchBase))
				}
			}
		}
	}
	switch *only {
	case "table1":
		fmt.Print(bench.Table1(ev))
	case "fig11":
		fmt.Print(bench.Figure11(ev))
	case "fig12":
		fmt.Print(bench.Figure12(ev))
	case "timings":
		fmt.Print(bench.Timings(ev))
	case "":
		fmt.Print(bench.Table1(ev))
		fmt.Println()
		fmt.Print(bench.Figure11(ev))
		fmt.Println()
		fmt.Print(bench.Table2(ws))
		fmt.Println()
		fmt.Print(bench.Table3(ws))
		fmt.Println()
		fmt.Print(bench.Figure12(ev))
		fmt.Println()
		fmt.Print(bench.Timings(ev))
	default:
		fatal(fmt.Errorf("unknown artifact %q", *only))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paper-tables:", err)
	os.Exit(1)
}
