package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stubRetry silences the narration and records the backoff schedule
// instead of sleeping.
func stubRetry(t *testing.T) *[]time.Duration {
	t.Helper()
	var slept []time.Duration
	oldSleep, oldErr := retrySleep, stderr
	retrySleep = func(d time.Duration) { slept = append(slept, d) }
	stderr = io.Discard
	t.Cleanup(func() { retrySleep, stderr = oldSleep, oldErr })
	return &slept
}

func TestPostRetryRecoversFromTransientFailures(t *testing.T) {
	slept := stubRetry(t)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.WriteHeader(http.StatusTooManyRequests)
		case 2:
			w.WriteHeader(http.StatusInternalServerError)
		default:
			body, _ := io.ReadAll(r.Body)
			w.Write(append([]byte("ok:"), body...))
		}
	}))
	defer ts.Close()

	code, body, err := postRetry(ts.URL, "text/plain", []byte("payload"), 3)
	if err != nil || code != http.StatusOK || string(body) != "ok:payload" {
		t.Fatalf("postRetry = %d, %q, %v; want 200, ok:payload, nil", code, body, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d attempts, want 3", calls.Load())
	}
	// Exponential with ±50% jitter: attempt n backs off in
	// [base<<n/2, 3*(base<<n)/2).
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
	for i, d := range *slept {
		lo, hi := retryBaseDelay<<i/2, 3*(retryBaseDelay<<i)/2
		if d < lo || d >= hi {
			t.Fatalf("backoff %d was %v, want in [%v, %v)", i, d, lo, hi)
		}
	}
}

func TestPostRetryDoesNotRetryRequestErrors(t *testing.T) {
	stubRetry(t)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"no"}`))
	}))
	defer ts.Close()

	code, body, err := postRetry(ts.URL, "application/json", nil, 3)
	if err != nil || code != http.StatusBadRequest || !bytes.Contains(body, []byte("no")) {
		t.Fatalf("postRetry = %d, %q, %v; want the 400 passed through", code, body, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("request error consumed %d attempts, want 1", calls.Load())
	}
}

func TestPostRetryGivesUpWithClearError(t *testing.T) {
	slept := stubRetry(t)
	// A closed server: every attempt is a connect error.
	ts := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	ts.Close()

	_, _, err := postRetry(ts.URL, "text/plain", nil, 2)
	if err == nil {
		t.Fatal("postRetry against a dead server succeeded")
	}
	if !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("final error %q does not name the attempt count", err)
	}
	if !strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("final error %q does not carry the underlying cause", err)
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
}

func TestPostRetryZeroRetriesFailsImmediately(t *testing.T) {
	slept := stubRetry(t)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	if _, _, err := postRetry(ts.URL, "text/plain", nil, 0); err == nil {
		t.Fatal("want an error with retries exhausted")
	}
	if calls.Load() != 1 || len(*slept) != 0 {
		t.Fatalf("%d attempts, %d sleeps; want 1, 0", calls.Load(), len(*slept))
	}
}
