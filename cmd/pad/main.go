// pad is the compaction-as-a-service binary: a daemon serving the
// internal/service HTTP API, and a client that submits one file to a
// running daemon and prints the savings report.
//
// Usage:
//
//	pad serve [-addr host:port] [-addr-file path] [-job-workers n]
//	          [-mine-workers n] [-queue n] [-cache n] [-dict path]
//	          [-shards host1,host2] [-shard-of name] [-pprof]
//	pad submit [-addr host:port] [-miner edgar|dgspan|sfx|edgar-canon]
//	           [-asm] [-O] [-schedule] [-minsup n] [-maxfrag n]
//	           [-maxrounds n] [-maxpatterns n] [-greedy-mis] [-nomultires]
//	           [-retries n] [-json] file.mc | -dir corpus/
//
// serve binds addr (use port 0 for an ephemeral port), optionally
// writes the bound address to -addr-file for scripts to discover, and
// shuts down gracefully on SIGINT/SIGTERM — in-flight jobs drain first.
// -dict opens (or creates) a persistent fragment dictionary there:
// every mined program warm-starts from it and publishes back to it, so
// a corpus of related programs mines faster across restarts with
// byte-identical output. -pprof exposes the net/http/pprof profiling
// endpoints under /debug/pprof/ on the same listener (the daemon
// equivalent of edgar's -cpuprofile/-memprofile); off by default since
// profiles expose internals.
// -shards makes this pad a shard COORDINATOR: every mining job
// distributes its per-seed speculation across the listed worker pads
// and replays the streamed subtrees locally, so responses stay
// byte-identical to a single-process run (workers dying mid-walk only
// cost local fallback work). Any pad can serve as a worker — the
// /v1/shard endpoints are always registered; -shard-of just names the
// role for logs.
// submit retries transient daemon failures (-retries, default 3) with
// exponential backoff and jitter before giving up with the final error.
// submit mirrors cmd/edgar's flags and prints the same report lines
// (minus the wall-clock suffix, which the service deliberately omits so
// cached responses are byte-identical to fresh ones). With -dir it packs
// every .mc and .s file under the directory into one POST /v1/batch
// submission, polls until the batch settles, and prints a per-program
// savings table (.s files are submitted as assembly).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on DefaultServeMux for serve -pprof
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"graphpa/internal/dict"
	"graphpa/internal/service"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "submit":
		submit(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pad serve [flags] | pad submit [flags] file.mc")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pad:", err)
	os.Exit(1)
}

func serve(args []string) {
	fs := flag.NewFlagSet("pad serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8347", "listen address (port 0 = ephemeral)")
	addrFile := fs.String("addr-file", "", "write the bound address here once listening")
	jobWorkers := fs.Int("job-workers", 0, "jobs mined concurrently (0 = derive from cores)")
	mineWorkers := fs.Int("mine-workers", 0, "parallel mining width per job (0 = derive)")
	queueDepth := fs.Int("queue", 0, "pending-job queue depth (0 = default 64)")
	cacheEntries := fs.Int("cache", 0, "result-cache entries (0 = default 128)")
	dictPath := fs.String("dict", "", "persistent fragment-dictionary file (empty = no dictionary)")
	shards := fs.String("shards", "", "comma-separated shard-worker pad addresses; this pad coordinates, distributing per-seed speculation across them (identical output)")
	shardOf := fs.String("shard-of", "", "name of the coordinator this pad works for (informational; the shard endpoints are always on)")
	pprofOn := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the same listener")
	_ = fs.Parse(args)
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: pad serve [flags]")
		os.Exit(2)
	}
	if *jobWorkers < 0 || *mineWorkers < 0 || *queueDepth < 0 || *cacheEntries < 0 {
		fmt.Fprintln(os.Stderr, "pad serve: flags must be non-negative")
		os.Exit(2)
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	var d *dict.Dict
	if *dictPath != "" {
		var err error
		if d, err = dict.Open(dict.Options{Path: *dictPath, Logger: logger}); err != nil {
			fatal(err)
		}
		logger.Info("dictionary open", "path", *dictPath, "entries", d.Len())
	}
	var shardAddrs []string
	for _, a := range strings.Split(*shards, ",") {
		if a = strings.TrimSpace(a); a != "" {
			shardAddrs = append(shardAddrs, a)
		}
	}
	svc := service.New(service.Config{
		JobWorkers:   *jobWorkers,
		MineWorkers:  *mineWorkers,
		QueueDepth:   *queueDepth,
		CacheEntries: *cacheEntries,
		Logger:       logger,
		Dict:         d,
		Shards:       shardAddrs,
		ShardOf:      *shardOf,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	logger.Info("listening", "addr", bound)

	handler := svc.Handler()
	if *pprofOn {
		// net/http/pprof registers on http.DefaultServeMux at import; route
		// its prefix there and everything else to the service, so profiling
		// shares the listener without touching the service's own mux.
		api := handler
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/debug/pprof/") {
				http.DefaultServeMux.ServeHTTP(w, r)
				return
			}
			api.ServeHTTP(w, r)
		})
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	httpServer := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fatal(err)
	}
	logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(shutCtx); err != nil {
		logger.Error("http shutdown", "err", err)
	}
	if err := svc.Shutdown(shutCtx); err != nil {
		logger.Error("drain", "err", err)
	}
	if d != nil {
		// After the drain: no job can publish once the workers are gone.
		if err := d.Close(); err != nil {
			logger.Error("dictionary close", "err", err)
		}
	}
}

func submit(args []string) {
	fs := flag.NewFlagSet("pad submit", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8347", "daemon address")
	miner := fs.String("miner", "edgar", "sfx | dgspan | edgar | edgar-canon")
	asmIn := fs.Bool("asm", false, "input is assembly (must define _start; no runtime linked)")
	optimizeIR := fs.Bool("O", true, "compile with the IR optimizer (inlining, folding)")
	schedule := fs.Bool("schedule", true, "compile with the list scheduler")
	maxRounds := fs.Int("maxrounds", 0, "bound mine/extract rounds (0 = fixpoint)")
	minSup := fs.Int("minsup", 0, "minimum fragment frequency (default 2)")
	maxFrag := fs.Int("maxfrag", 0, "maximum fragment size in instructions (default 8)")
	maxPatterns := fs.Int("maxpatterns", 0, "bound mined patterns per round (default 100000)")
	greedyMIS := fs.Bool("greedy-mis", false, "use greedy instead of exact independent sets")
	noMultires := fs.Bool("nomultires", false, "disable multiresolution coarse-to-fine mining (identical output)")
	rawJSON := fs.Bool("json", false, "print the raw JSON response instead of the report")
	dir := fs.String("dir", "", "submit every .mc/.s file under this directory as one batch")
	retries := fs.Int("retries", 3, "retry transient daemon failures (connect errors, 429, 5xx) this many times with exponential backoff")
	_ = fs.Parse(args)
	if *retries < 0 {
		fmt.Fprintln(os.Stderr, "pad submit: -retries must be non-negative")
		os.Exit(2)
	}
	opt := service.OptimizeOptions{
		Miner:       *miner,
		MinSupport:  *minSup,
		MaxFragment: *maxFrag,
		MaxRounds:   *maxRounds,
		MaxPatterns: *maxPatterns,
		GreedyMIS:   *greedyMIS,
		NoMultires:  *noMultires,
	}
	co := &service.CompileOptions{Optimize: *optimizeIR, Schedule: *schedule}
	if *dir != "" {
		if fs.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: pad submit [flags] -dir corpus/ (no file argument)")
			os.Exit(2)
		}
		submitBatch(*addr, *dir, co, opt, *rawJSON, *retries)
		return
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pad submit [flags] file.mc | -dir corpus/")
		os.Exit(2)
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}

	req := service.CompactRequest{
		Source:   string(src),
		Asm:      *asmIn,
		Compile:  co,
		Optimize: opt,
	}
	body, err := json.Marshal(&req)
	if err != nil {
		fatal(err)
	}
	code, respBody, err := postRetry("http://"+*addr+"/v1/compact", "application/json", body, *retries)
	if err != nil {
		fatal(err)
	}
	if code != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(respBody, &eb) == nil && eb.Error != "" {
			fatal(fmt.Errorf("HTTP %d: %s", code, eb.Error))
		}
		fatal(fmt.Errorf("HTTP %d: %s", code, bytes.TrimSpace(respBody)))
	}
	if *rawJSON {
		os.Stdout.Write(respBody)
		return
	}
	var cr service.CompactResponse
	if err := json.Unmarshal(respBody, &cr); err != nil {
		fatal(err)
	}
	fmt.Print(cr.Summary)
}

// submitBatch packs the directory's programs into one POST /v1/batch,
// polls the batch until every program settles, and prints the
// per-program savings table.
func submitBatch(addr, dir string, co *service.CompileOptions, opt service.OptimizeOptions, rawJSON bool, retries int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		fatal(err)
	}
	var req service.BatchRequest
	req.Compile, req.Optimize = co, opt
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		isAsm := strings.HasSuffix(name, ".s")
		if !isAsm && !strings.HasSuffix(name, ".mc") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			fatal(err)
		}
		req.Programs = append(req.Programs, service.BatchProgram{
			Name: name, Source: string(src), Asm: isAsm,
		})
	}
	if len(req.Programs) == 0 {
		fatal(fmt.Errorf("no .mc or .s files in %s", dir))
	}
	body, err := json.Marshal(&req)
	if err != nil {
		fatal(err)
	}
	code, ack, err := postRetry("http://"+addr+"/v1/batch", "application/json", body, retries)
	if err != nil {
		fatal(err)
	}
	if code != http.StatusAccepted {
		fatal(fmt.Errorf("HTTP %d: %s", code, bytes.TrimSpace(ack)))
	}
	var accepted struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(ack, &accepted); err != nil {
		fatal(err)
	}

	var status service.BatchStatusBody
	var raw []byte
	for {
		r, err := http.Get("http://" + addr + "/v1/batch/" + accepted.ID)
		if err != nil {
			fatal(err)
		}
		raw, err = io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("%s: %s", r.Status, strings.TrimSpace(string(raw))))
		}
		if err := json.Unmarshal(raw, &status); err != nil {
			fatal(err)
		}
		if status.State == "done" {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if rawJSON {
		os.Stdout.Write(raw)
	} else {
		fmt.Printf("%-20s %8s %8s %8s %7s %10s\n", "program", "before", "after", "saved", "cache", "dict_hits")
		for _, p := range status.Programs {
			if p.State == "failed" {
				fmt.Printf("%-20s FAILED: %s\n", p.Name, p.Error)
				continue
			}
			fmt.Printf("%-20s %8d %8d %8d %7s %10d\n",
				p.Name, p.Before, p.After, p.Saved, p.Cache, p.DictHits)
		}
		fmt.Printf("%-20s %8s %8s %8d %7s %10d\n", "total", "", "", status.Totals.Saved, "", status.Totals.DictHits)
	}
	if status.Totals.Failed > 0 {
		os.Exit(1)
	}
}
