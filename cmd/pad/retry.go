package main

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"time"
)

// stderr is swapped in tests to capture the retry narration.
var stderr io.Writer = os.Stderr

// Transient daemon failures — a connection refused while the daemon
// restarts, a 429 from a full queue, a 5xx — are worth a bounded retry
// from the client; request errors (4xx) are not, they will fail the
// same way every time. Backoff doubles from retryBaseDelay with ±50%
// jitter so a corpus of impatient clients does not thundering-herd a
// recovering daemon.
const retryBaseDelay = 200 * time.Millisecond

// retrySleep is stubbed in tests.
var retrySleep = time.Sleep

// retryableStatus reports whether an HTTP status is worth retrying.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// postRetry POSTs body to url up to 1+retries times, backing off
// between attempts. It returns the final response's status and body;
// only transport errors and retryable statuses consume attempts. The
// returned error is terminal and names the attempt count.
func postRetry(url, contentType string, body []byte, retries int) (int, []byte, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			d := retryBaseDelay << (attempt - 1)
			d += time.Duration(rand.Int63n(int64(d))) - d/2
			fmt.Fprintf(stderr, "pad: %v; retrying in %v (attempt %d/%d)\n", lastErr, d.Round(time.Millisecond), attempt, retries)
			retrySleep(d)
		}
		resp, err := http.Post(url, contentType, bytes.NewReader(body))
		if err != nil {
			lastErr = err
			if attempt >= retries {
				break
			}
			continue
		}
		respBody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			if attempt >= retries {
				break
			}
			continue
		}
		if retryableStatus(resp.StatusCode) {
			lastErr = fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(respBody))
			if attempt >= retries {
				break
			}
			continue
		}
		return resp.StatusCode, respBody, nil
	}
	return 0, nil, fmt.Errorf("giving up after %d attempts: %w", retries+1, lastErr)
}
