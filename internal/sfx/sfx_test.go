package sfx

import (
	"testing"

	"graphpa/internal/asm"
	"graphpa/internal/emu"
	"graphpa/internal/link"
	"graphpa/internal/loader"
	"graphpa/internal/pa"
)

func loadSrc(t *testing.T, src string) *loader.Program {
	t.Helper()
	u, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Link(u)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := loader.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func runProg(t *testing.T, prog *loader.Program) (int32, string) {
	t.Helper()
	img, err := prog.Relink()
	if err != nil {
		t.Fatalf("relink: %v\n%s", err, prog.String())
	}
	m := emu.New(img, nil)
	code, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, prog.String())
	}
	return code, m.Stdout.String()
}

// identicalSeqSrc: a 4-instruction sequence repeated identically three
// times across blocks — SFX's home turf.
const identicalSeqSrc = `
_start:
	bl main
	swi 0
main:
	push {r4, lr}
	mov r0, #1
	mov r1, #2
	add r0, r0, r1
	eor r1, r0, #7
	add r0, r0, r1
	sub r1, r1, #1
	b b2
b2:
	add r0, r0, r1
	eor r1, r0, #7
	add r0, r0, r1
	sub r1, r1, #1
	b b3
b3:
	add r0, r0, r1
	eor r1, r0, #7
	add r0, r0, r1
	sub r1, r1, #1
	pop {r4, pc}
`

func TestSFXExtractsIdenticalSequences(t *testing.T) {
	prog := loadSrc(t, identicalSeqSrc)
	wantCode, wantOut := runProg(t, prog)

	res := pa.Optimize(prog, &Miner{}, pa.Options{})
	// k=4, m=3: benefit 3*3 - 5 = 4.
	if res.Saved() < 4 {
		t.Fatalf("SFX saved %d, want >= 4\n%s", res.Saved(), res.Program.String())
	}
	gotCode, gotOut := runProg(t, res.Program)
	if gotCode != wantCode || gotOut != wantOut {
		t.Errorf("behaviour changed: exit %d->%d out %q->%q", wantCode, gotCode, wantOut, gotOut)
	}
}

// reorderedSrc: same computation but one occurrence has its independent
// instructions swapped. SFX must save strictly less than graph PA here.
const reorderedSrc = `
_start:
	bl main
	swi 0
main:
	push {r4, lr}
	mov r0, #1
	mov r1, #2
	mov r2, #3
	add r0, r0, r1
	eor r1, r0, #7
	add r2, r2, r0
	sub r0, r0, #1
	b b2
b2:
	add r0, r0, r1
	add r2, r2, r0
	eor r1, r0, #7
	sub r0, r0, #1
	b b3
b3:
	add r0, r0, r1
	eor r1, r0, #7
	add r2, r2, r0
	sub r0, r0, #1
	pop {r4, pc}
`

func TestSFXvsEdgarOnReordering(t *testing.T) {
	sfxRes := pa.Optimize(loadSrc(t, reorderedSrc), &Miner{}, pa.Options{})
	edgarRes := pa.Optimize(loadSrc(t, reorderedSrc), &pa.GraphMiner{Embedding: true}, pa.Options{})
	if edgarRes.Saved() <= sfxRes.Saved() {
		t.Errorf("Edgar (%d) must beat SFX (%d) on reordered code",
			edgarRes.Saved(), sfxRes.Saved())
	}
	// Behaviour must be preserved by both.
	wantCode, wantOut := runProg(t, loadSrc(t, reorderedSrc))
	for _, res := range []*pa.Result{sfxRes, edgarRes} {
		gotCode, gotOut := runProg(t, res.Program)
		if gotCode != wantCode || gotOut != wantOut {
			t.Errorf("%s changed behaviour", res.Miner)
		}
	}
}

func TestSFXCrossJump(t *testing.T) {
	src := `
_start:
	bl f1
	mov r4, r0
	bl f2
	add r0, r4, r0
	swi 0
f1:
	push {r4, lr}
	mov r0, #1
	add r0, r0, #5
	eor r0, r0, #3
	sub r0, r0, #1
	pop {r4, pc}
f2:
	push {r4, lr}
	mov r0, #2
	add r0, r0, #5
	eor r0, r0, #3
	sub r0, r0, #1
	pop {r4, pc}
`
	prog := loadSrc(t, src)
	wantCode, wantOut := runProg(t, prog)
	res := pa.Optimize(prog, &Miner{}, pa.Options{})
	if res.CrossJumps() == 0 {
		t.Fatalf("SFX should tail-merge identical epilogues; got %+v", res.Extractions)
	}
	gotCode, gotOut := runProg(t, res.Program)
	if gotCode != wantCode || gotOut != wantOut {
		t.Error("behaviour changed")
	}
}

func TestSFXNothingToFind(t *testing.T) {
	src := `
_start:
	mov r0, #1
	add r0, r0, #2
	eor r0, r0, #3
	swi 0
`
	res := pa.Optimize(loadSrc(t, src), &Miner{}, pa.Options{})
	if res.Saved() != 0 || res.Rounds != 0 {
		t.Errorf("saved %d in %d rounds on duplicate-free code", res.Saved(), res.Rounds)
	}
}

func TestSFXRespectsMaxSeqLen(t *testing.T) {
	prog := loadSrc(t, identicalSeqSrc)
	res := pa.Optimize(prog, &Miner{}, pa.Options{MaxSeqLen: 2})
	for _, e := range res.Extractions {
		if e.Size > 2 {
			t.Errorf("extraction size %d exceeds MaxSeqLen", e.Size)
		}
	}
}
