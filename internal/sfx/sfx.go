// Package sfx is the traditional sequence-based procedural-abstraction
// baseline the paper compares against (Fraser/Myers/Wendt's suffix-trie
// approach refined by Debray et al.'s fingerprinting): repeated identical
// instruction sequences in the linear order of each basic block,
// extracted with the same back end as graph-based PA. It is blind to
// instruction reordering — the weakness graph-based PA removes (paper §1).
package sfx

import (
	"graphpa/internal/cfg"
	"graphpa/internal/dfg"
	"graphpa/internal/pa"
)

// Miner implements pa.Miner using repeated-sequence detection. It keeps
// no mining state of its own, so it needs nothing from pa.Options' private
// incremental hooks: the driver-level incremental loop (dirty-function
// re-splitting, pinned call summaries, cached dependence graphs) already
// covers everything this miner consumes, and the sequence scan itself is
// cheap enough to rerun in full every round.
type Miner struct{}

// Name implements pa.Miner.
func (m *Miner) Name() string { return "sfx" }

// FindCandidates implements pa.Miner.
func (m *Miner) FindCandidates(view *cfg.Program, graphs []*dfg.Graph, opts pa.Options) []*pa.Candidate {
	return pa.ScanSequences(graphs, opts, false)
}
