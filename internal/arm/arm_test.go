package arm

import (
	"testing"
)

func TestParseReg(t *testing.T) {
	cases := []struct {
		in   string
		want Reg
		ok   bool
	}{
		{"r0", R0, true},
		{"r12", R12, true},
		{"sp", SP, true},
		{"r13", SP, true},
		{"lr", LR, true},
		{"r14", LR, true},
		{"pc", PC, true},
		{"r15", PC, true},
		{"ip", R12, true},
		{"fp", R11, true},
		{"r16", RegNone, false},
		{"", RegNone, false},
		{"x0", RegNone, false},
	}
	for _, c := range cases {
		got, ok := ParseReg(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseReg(%q) = %v, %v; want %v, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestRegStringRoundTrip(t *testing.T) {
	for r := R0; r <= PC; r++ {
		got, ok := ParseReg(r.String())
		if !ok || got != r {
			t.Errorf("ParseReg(%q) = %v, %v; want %v", r.String(), got, ok, r)
		}
	}
}

func TestParseCond(t *testing.T) {
	for c := Always; c < numConds; c++ {
		got, ok := ParseCond(c.String())
		if !ok || got != c {
			t.Errorf("ParseCond(%q) = %v, %v; want %v", c.String(), got, ok, c)
		}
	}
	if c, ok := ParseCond("hs"); !ok || c != CS {
		t.Errorf("hs alias: got %v, %v", c, ok)
	}
	if c, ok := ParseCond("lo"); !ok || c != CC {
		t.Errorf("lo alias: got %v, %v", c, ok)
	}
	if _, ok := ParseCond("zz"); ok {
		t.Error("ParseCond(zz) should fail")
	}
}

func TestOpClassification(t *testing.T) {
	if !ADD.IsDataProcessing() || MOV.IsDataProcessing() {
		t.Error("IsDataProcessing misclassifies")
	}
	if !CMP.IsCompare() || ADD.IsCompare() {
		t.Error("IsCompare misclassifies")
	}
	if !LDR.IsLoad() || !POP.IsLoad() || STR.IsLoad() {
		t.Error("IsLoad misclassifies")
	}
	if !STR.IsStore() || !PUSH.IsStore() || LDR.IsStore() {
		t.Error("IsStore misclassifies")
	}
	if !LDRPOSTW.Writeback() || LDR.Writeback() {
		t.Error("Writeback misclassifies")
	}
	if !LDRPOSTW.PostIndexed() || LDRPREW.PostIndexed() {
		t.Error("PostIndexed misclassifies")
	}
	if !B.IsBranch() || !BL.IsCall() || ADD.IsBranch() {
		t.Error("branch classification wrong")
	}
	if !LDRB.IsByteMem() || LDR.IsByteMem() {
		t.Error("IsByteMem misclassifies")
	}
}

// mk builds instructions tersely for tests.
func mk(op Op, f func(*Instr)) Instr {
	in := NewInstr(op)
	if f != nil {
		f(&in)
	}
	return in
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{mk(ADD, func(i *Instr) { i.Rd, i.Rn, i.Imm, i.HasImm = R4, R2, 4, true }), "add r4, r2, #4"},
		{mk(SUB, func(i *Instr) { i.Rd, i.Rn, i.Rm = R2, R2, R3 }), "sub r2, r2, r3"},
		{mk(ADD, func(i *Instr) { i.Rd, i.Rn, i.Rm, i.Shift, i.ShAmt = R0, R1, R2, LSL, 2 }), "add r0, r1, r2, lsl #2"},
		{mk(MOV, func(i *Instr) { i.Rd, i.Imm, i.HasImm = R0, 0, true }), "mov r0, #0"},
		{mk(MVN, func(i *Instr) { i.Rd, i.Rm = R0, R1 }), "mvn r0, r1"},
		{mk(MOV, func(i *Instr) { i.Rd, i.Rm, i.SetS = R0, R1, true }), "movs r0, r1"},
		{mk(CMP, func(i *Instr) { i.Rn, i.Imm, i.HasImm = R0, 10, true }), "cmp r0, #10"},
		{mk(MUL, func(i *Instr) { i.Rd, i.Rn, i.Rm = R0, R1, R2 }), "mul r0, r1, r2"},
		{mk(MLA, func(i *Instr) { i.Rd, i.Rn, i.Rm, i.Ra = R0, R1, R2, R3 }), "mla r0, r1, r2, r3"},
		{mk(LDR, func(i *Instr) { i.Rd, i.Rn, i.HasImm = R3, R1, true }), "ldr r3, [r1]"},
		{mk(LDR, func(i *Instr) { i.Rd, i.Rn, i.Imm, i.HasImm = R3, R1, 4, true }), "ldr r3, [r1, #4]"},
		{mk(LDRPREW, func(i *Instr) { i.Rd, i.Rn, i.HasImm = R3, R1, true }), "ldr r3, [r1]!"},
		{mk(LDRPOSTW, func(i *Instr) { i.Rd, i.Rn, i.Imm, i.HasImm = R3, R1, 4, true }), "ldr r3, [r1], #4"},
		{mk(STRB, func(i *Instr) { i.Rd, i.Rn, i.Rm = R0, R1, R2 }), "strb r0, [r1, r2]"},
		{mk(LDR, func(i *Instr) { i.Rd, i.Rn, i.Rm, i.Shift, i.ShAmt = R0, R1, R2, LSL, 2 }), "ldr r0, [r1, r2, lsl #2]"},
		{mk(LDR, func(i *Instr) { i.Rd, i.Target = R5, "table" }), "ldr r5, =table"},
		{mk(PUSH, func(i *Instr) { i.Reglist = 1<<R4 | 1<<LR }), "push {r4, lr}"},
		{mk(POP, func(i *Instr) { i.Reglist = 1<<R4 | 1<<PC }), "pop {r4, pc}"},
		{mk(B, func(i *Instr) { i.Target = "loop" }), "b loop"},
		{mk(B, func(i *Instr) { i.Cond, i.Target = NE, "loop" }), "bne loop"},
		{mk(BL, func(i *Instr) { i.Target = "memcpy" }), "bl memcpy"},
		{mk(BX, func(i *Instr) { i.Rm = LR }), "bx lr"},
		{mk(SWI, func(i *Instr) { i.Imm, i.HasImm = 1, true }), "swi 1"},
		{mk(LABEL, func(i *Instr) { i.Target = "main" }), "main:"},
		{mk(WORD, func(i *Instr) { i.Imm = 42 }), ".word 42"},
		{mk(WORD, func(i *Instr) { i.Target = "buf" }), ".word buf"},
		{mk(NOP, nil), "nop"},
		{mk(ADD, func(i *Instr) { i.Cond, i.Rd, i.Rn, i.Imm, i.HasImm = EQ, R0, R0, 1, true }), "addeq r0, r0, #1"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q; want %q", got, c.want)
		}
	}
}

func TestEffectsDataProcessing(t *testing.T) {
	in := mk(ADD, func(i *Instr) { i.Rd, i.Rn, i.Rm = R4, R2, R3 })
	e := EffectsOf(&in)
	if !e.Reads.Has(R2) || !e.Reads.Has(R3) || e.Reads.Has(R4) {
		t.Errorf("add reads wrong: %v", e.Reads.Regs())
	}
	if !e.Writes.Has(R4) || e.Writes.Has(CPSR) {
		t.Errorf("add writes wrong: %v", e.Writes.Regs())
	}
	if e.LoadsMem || e.StoresMem || e.Barrier {
		t.Error("add should not touch memory")
	}
}

func TestEffectsFlags(t *testing.T) {
	subs := mk(SUB, func(i *Instr) { i.Rd, i.Rn, i.Rm, i.SetS = R0, R0, R1, true })
	if e := EffectsOf(&subs); !e.Writes.Has(CPSR) {
		t.Error("subs must write cpsr")
	}
	cmp := mk(CMP, func(i *Instr) { i.Rn, i.Imm, i.HasImm = R0, 1, true })
	if e := EffectsOf(&cmp); !e.Writes.Has(CPSR) || e.Writes.Has(R0) {
		t.Error("cmp writes only cpsr")
	}
	addeq := mk(ADD, func(i *Instr) { i.Cond, i.Rd, i.Rn, i.Imm, i.HasImm = EQ, R0, R0, 1, true })
	if e := EffectsOf(&addeq); !e.Reads.Has(CPSR) {
		t.Error("predicated instruction must read cpsr")
	}
	adc := mk(ADC, func(i *Instr) { i.Rd, i.Rn, i.Rm = R0, R1, R2 })
	if e := EffectsOf(&adc); !e.Reads.Has(CPSR) {
		t.Error("adc must read carry")
	}
}

func TestEffectsMemory(t *testing.T) {
	ldr := mk(LDRPREW, func(i *Instr) { i.Rd, i.Rn, i.HasImm = R3, R1, true })
	e := EffectsOf(&ldr)
	if !e.LoadsMem || e.StoresMem {
		t.Error("ldr! memory effects wrong")
	}
	if !e.Writes.Has(R3) || !e.Writes.Has(R1) || !e.Reads.Has(R1) {
		t.Errorf("ldr! writeback effects wrong: reads=%v writes=%v", e.Reads.Regs(), e.Writes.Regs())
	}
	str := mk(STR, func(i *Instr) { i.Rd, i.Rn, i.Imm, i.HasImm = R0, SP, 8, true })
	e = EffectsOf(&str)
	if !e.StoresMem || e.LoadsMem || !e.Reads.Has(R0) || !e.Reads.Has(SP) || e.Writes.Has(R0) {
		t.Error("str effects wrong")
	}
	lit := mk(LDR, func(i *Instr) { i.Rd, i.Target = R5, "tbl" })
	e = EffectsOf(&lit)
	if e.LoadsMem || !e.Writes.Has(R5) || e.Reads != 0 {
		t.Error("literal load should be a pure constant producer")
	}
}

func TestEffectsPushPop(t *testing.T) {
	push := mk(PUSH, func(i *Instr) { i.Reglist = 1<<R4 | 1<<LR })
	e := EffectsOf(&push)
	if !e.Reads.Has(R4) || !e.Reads.Has(LR) || !e.Reads.Has(SP) || !e.Writes.Has(SP) || !e.StoresMem {
		t.Error("push effects wrong")
	}
	pop := mk(POP, func(i *Instr) { i.Reglist = 1<<R4 | 1<<PC })
	e = EffectsOf(&pop)
	if !e.Writes.Has(R4) || !e.Writes.Has(PC) || !e.LoadsMem {
		t.Error("pop effects wrong")
	}
}

func TestEffectsControl(t *testing.T) {
	bl := mk(BL, func(i *Instr) { i.Target = "f" })
	e := EffectsOf(&bl)
	if !e.Barrier || !e.Writes.Has(LR) || !e.Writes.Has(R0) {
		t.Error("bl must be a clobbering barrier")
	}
	swi := mk(SWI, func(i *Instr) { i.Imm, i.HasImm = SysPutc, true })
	if e := EffectsOf(&swi); !e.Barrier {
		t.Error("swi must be a barrier")
	}
}

func TestAbstractable(t *testing.T) {
	yes := []Instr{
		mk(ADD, func(i *Instr) { i.Rd, i.Rn, i.Imm, i.HasImm = R0, R1, 1, true }),
		mk(LDR, func(i *Instr) { i.Rd, i.Rn, i.HasImm = R3, R1, true }),
		mk(LDR, func(i *Instr) { i.Rd, i.Target = R5, "tbl" }),
		mk(CMP, func(i *Instr) { i.Rn, i.Imm, i.HasImm = R0, 0, true }),
	}
	no := []Instr{
		mk(BL, func(i *Instr) { i.Target = "f" }),
		mk(B, func(i *Instr) { i.Target = "l" }),
		mk(BX, func(i *Instr) { i.Rm = LR }),
		mk(SWI, func(i *Instr) { i.Imm, i.HasImm = 1, true }),
		mk(POP, func(i *Instr) { i.Reglist = 1 << PC }),
		mk(PUSH, func(i *Instr) { i.Reglist = 1 << LR }),
		mk(MOV, func(i *Instr) { i.Rd, i.Rm = R0, LR }),
		mk(LABEL, func(i *Instr) { i.Target = "x" }),
		mk(WORD, func(i *Instr) { i.Imm = 7 }),
	}
	for _, in := range yes {
		if !Abstractable(&in) {
			t.Errorf("%s should be abstractable", in.String())
		}
	}
	for _, in := range no {
		if Abstractable(&in) {
			t.Errorf("%s should NOT be abstractable", in.String())
		}
	}
}

func TestIsTerminator(t *testing.T) {
	b := mk(B, func(i *Instr) { i.Target = "l" })
	bne := mk(B, func(i *Instr) { i.Cond, i.Target = NE, "l" })
	bx := mk(BX, func(i *Instr) { i.Rm = LR })
	popPC := mk(POP, func(i *Instr) { i.Reglist = 1 << PC })
	popR4 := mk(POP, func(i *Instr) { i.Reglist = 1 << R4 })
	exit := mk(SWI, func(i *Instr) { i.Imm, i.HasImm = SysExit, true })
	putc := mk(SWI, func(i *Instr) { i.Imm, i.HasImm = SysPutc, true })
	if !b.IsTerminator() || bne.IsTerminator() {
		t.Error("b/bne terminator wrong")
	}
	if !bx.IsTerminator() || !popPC.IsTerminator() || popR4.IsTerminator() {
		t.Error("bx/pop terminator wrong")
	}
	if !exit.IsTerminator() || putc.IsTerminator() {
		t.Error("swi terminator wrong")
	}
}

func TestCanonicalKey(t *testing.T) {
	a := mk(ADD, func(i *Instr) { i.Rd, i.Rn, i.Rm = R0, R1, R2 })
	b := mk(ADD, func(i *Instr) { i.Rd, i.Rn, i.Rm = R4, R5, R6 })
	c := mk(ADD, func(i *Instr) { i.Rd, i.Rn, i.Imm, i.HasImm = R0, R1, 3, true })
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Errorf("register renaming should not change canonical key: %q vs %q", a.CanonicalKey(), b.CanonicalKey())
	}
	if a.CanonicalKey() == c.CanonicalKey() {
		t.Error("imm vs reg operand must change canonical key")
	}
}
