package arm

import "fmt"

// Synthetic fixed-width 32-bit encoding.
//
//	bits 31..28  condition code
//	bits 27..22  opcode
//	bit  21      S (flag setting)
//	bits 20..17  Rd
//	bits 16..13  Rn
//	bit  12      I (1: signed 12-bit immediate in 11..0)
//	bits 11..8   Rm          (I = 0)
//	bits  7..5   shift kind  (I = 0)   — or Ra in 7..4 for mla
//	bits  4..0   shift amount
//
// Exceptions: b/bl carry a signed 22-bit word offset in bits 21..0;
// push/pop carry their 16-bit register list in bits 20..5; swi carries its
// number as the immediate. The layout is our own design (the paper's PA
// never depends on real ARM encodings, only on fixed width and the
// resulting literal-pool idiom), but it shares real ARM's essential
// constraint: a 32-bit constant does not fit in an instruction, so large
// immediates and addresses live in pc-relative literal pools interwoven
// with the code (paper §4.1, Fig. 10).

// Encoding limits.
const (
	ImmMin = -2048 // signed 12-bit immediate range
	ImmMax = 2047
	// BranchMin/Max bound the signed 22-bit word offset of b/bl.
	BranchMin = -(1 << 21)
	BranchMax = 1<<21 - 1
)

// FitsImm reports whether v fits the signed 12-bit immediate field.
func FitsImm(v int32) bool { return v >= ImmMin && v <= ImmMax }

// EncodeErr describes an instruction that cannot be encoded.
type EncodeErr struct {
	In  string
	Why string
}

func (e *EncodeErr) Error() string {
	return fmt.Sprintf("arm: cannot encode %q: %s", e.In, e.Why)
}

// Encode encodes a resolved instruction into one 32-bit word. Branch
// targets must already be resolved: branchOff is the signed word offset
// from the branch's own address to the target (only consulted for b/bl).
// LABEL pseudo-instructions occupy no space and cannot be encoded; WORD
// encodes as its raw value.
func Encode(in *Instr, branchOff int32) (uint32, error) {
	bad := func(why string) (uint32, error) {
		return 0, &EncodeErr{In: in.String(), Why: why}
	}
	if in.Op == LABEL {
		return bad("labels occupy no space")
	}
	if in.Op == WORD {
		return uint32(in.Imm), nil
	}
	if in.IsLiteralLoad() {
		return bad("unresolved literal load")
	}
	if in.Op >= NumOps || in.Op == BAD {
		return bad("bad opcode")
	}
	w := uint32(in.Cond)<<28 | uint32(in.Op)<<22

	reg := func(r Reg) (uint32, bool) {
		if r == RegNone {
			return 0, true
		}
		if r >= Reg(NumRegs) {
			return 0, false
		}
		return uint32(r), true
	}

	switch in.Op {
	case B, BL:
		if branchOff < BranchMin || branchOff > BranchMax {
			return bad("branch offset out of range")
		}
		return w | uint32(branchOff)&0x3FFFFF, nil
	case PUSH, POP:
		return w | uint32(in.Reglist)<<5, nil
	case SWI:
		if !FitsImm(in.Imm) {
			return bad("swi number out of range")
		}
		return w | 1<<12 | uint32(in.Imm)&0xFFF, nil
	case NOP:
		return w, nil
	}

	if in.SetS {
		w |= 1 << 21
	}
	rd, ok := reg(in.Rd)
	if !ok {
		return bad("bad rd")
	}
	rn, ok2 := reg(in.Rn)
	if !ok2 {
		return bad("bad rn")
	}
	w |= rd<<17 | rn<<13

	if in.Op == MLA {
		rm, ok3 := reg(in.Rm)
		ra, ok4 := reg(in.Ra)
		if !ok3 || !ok4 {
			return bad("bad mla operand")
		}
		return w | rm<<8 | ra<<4, nil
	}

	if in.HasImm {
		if !FitsImm(in.Imm) {
			return bad("immediate out of range")
		}
		return w | 1<<12 | uint32(in.Imm)&0xFFF, nil
	}
	rm, ok3 := reg(in.Rm)
	if !ok3 {
		return bad("bad rm")
	}
	if in.ShAmt < 0 || in.ShAmt > 31 {
		return bad("shift amount out of range")
	}
	return w | rm<<8 | uint32(in.Shift)<<5 | uint32(in.ShAmt), nil
}

// Decode decodes one 32-bit word. For b/bl the returned branchOff is the
// signed word offset; the caller (the loader) turns it back into a label.
// Decode never fails outright — an unrecognisable word decodes as a WORD
// pseudo-instruction carrying the raw value, exactly the ambiguity that
// makes interwoven-data detection necessary (paper §2.1 phase 5).
func Decode(word uint32) (in Instr, branchOff int32) {
	op := Op(word >> 22 & 0x3F)
	cond := Cond(word >> 28)
	if op == BAD || op >= NumOps || op == LABEL || op == WORD || cond >= numConds {
		w := NewInstr(WORD)
		w.Imm = int32(word)
		return w, 0
	}
	in = NewInstr(op)
	in.Cond = cond

	signext := func(v uint32, bits uint) int32 {
		shift := 32 - bits
		return int32(v<<shift) >> shift
	}

	switch op {
	case B, BL:
		return in, signext(word&0x3FFFFF, 22)
	case PUSH, POP:
		in.Reglist = uint16(word >> 5)
		return in, 0
	case SWI:
		in.Imm = signext(word&0xFFF, 12)
		in.HasImm = true
		return in, 0
	case NOP:
		return in, 0
	}

	in.SetS = word&(1<<21) != 0
	in.Rd = Reg(word >> 17 & 0xF)
	in.Rn = Reg(word >> 13 & 0xF)

	if op == MLA {
		in.Rm = Reg(word >> 8 & 0xF)
		in.Ra = Reg(word >> 4 & 0xF)
		return in, 0
	}
	if word&(1<<12) != 0 {
		in.HasImm = true
		in.Imm = signext(word&0xFFF, 12)
	} else {
		in.Rm = Reg(word >> 8 & 0xF)
		in.Shift = ShiftKind(word >> 5 & 0x7)
		in.ShAmt = int32(word & 0x1F)
	}
	// Normalise unused register fields so decode(encode(x)) == x.
	normalizeDecoded(&in)
	return in, 0
}

// normalizeDecoded clears register fields that the instruction class does
// not use, restoring the RegNone convention of hand-built instructions.
func normalizeDecoded(in *Instr) {
	clearRm := func() {
		if in.HasImm {
			in.Rm = RegNone
			in.Shift = NoShift
			in.ShAmt = 0
		}
	}
	switch {
	case in.Op.IsDataProcessing():
		in.Ra = RegNone
		clearRm()
	case in.Op.IsMove():
		in.Rn = RegNone
		in.Ra = RegNone
		clearRm()
	case in.Op.IsCompare():
		in.Rd = RegNone
		in.Ra = RegNone
		in.SetS = false
		clearRm()
	case in.Op == MUL:
		in.Ra = RegNone
		in.HasImm = false
		in.Imm = 0
	case in.Op.IsMem():
		in.Ra = RegNone
		in.SetS = false
		clearRm()
	case in.Op == BX:
		in.Rd = RegNone
		in.Rn = RegNone
		in.Ra = RegNone
		in.SetS = false
		in.HasImm = false
		in.Imm = 0
		in.Shift = NoShift
		in.ShAmt = 0
	}
}
