package arm

import (
	"fmt"
	"strings"
)

// Instr is a single machine instruction (or stream pseudo-instruction).
//
// Operand usage by class:
//
//	data processing  Rd, Rn, op2 (Imm if HasImm, else Rm with optional shift)
//	mov/mvn          Rd, op2
//	cmp/cmn/tst/teq  Rn, op2
//	mul              Rd, Rn, Rm
//	mla              Rd, Rn, Rm, Ra
//	ldr/str family   Rd (data), Rn (base), offset = Imm or Rm(shift)
//	push/pop         Reglist bitmask
//	b/bl             Target label
//	bx               Rm
//	swi              Imm (syscall number)
//	.label           Target (the label name)
//	.word            Imm (literal value) or Target (address-of-label)
//
// Branch and literal targets are symbolic labels throughout the optimizer;
// the assembler resolves them to offsets at encode time and the loader
// re-creates them when decompiling a binary (paper §2.1 phases 3–4).
type Instr struct {
	Op      Op
	Cond    Cond
	SetS    bool // flag-setting "s" suffix
	Rd      Reg
	Rn      Reg
	Rm      Reg
	Ra      Reg // mla accumulator
	Shift   ShiftKind
	ShAmt   int32
	Imm     int32
	HasImm  bool   // operand2 / offset is Imm rather than Rm
	Reglist uint16 // push/pop
	Target  string // branch target, label name, or .word symbol
}

// NewInstr returns an instruction with all register fields cleared to
// RegNone and the given opcode.
func NewInstr(op Op) Instr {
	return Instr{Op: op, Rd: RegNone, Rn: RegNone, Rm: RegNone, Ra: RegNone}
}

// IsPseudo reports whether the instruction is a stream marker rather than
// an executable machine instruction.
func (in *Instr) IsPseudo() bool {
	return in.Op == LABEL || in.Op == WORD
}

// ConstPrefix marks a literal-load target that is a plain constant rather
// than a symbol address: "ldr r0, =1000" is represented with Target
// "const:1000" so that equal constants share one pool slot at link time.
const ConstPrefix = "const:"

// IsLiteralLoad reports whether the instruction is the symbolic
// literal-pool load "ldr rd, =sym". The assembler materialises it as a
// pc-relative load from an interwoven pool word; the loader converts it
// back to this position-independent form (paper §2.1 phase 4), which makes
// it movable by procedural abstraction.
func (in *Instr) IsLiteralLoad() bool {
	return in.Op == LDR && in.Target != "" && in.Rn == RegNone
}

// IsTerminator reports whether the instruction unconditionally leaves the
// current block: an unpredicated b/bx, a pop that loads pc, or swi 0 (exit).
func (in *Instr) IsTerminator() bool {
	if in.Cond != Always {
		return false
	}
	switch in.Op {
	case B, BX:
		return true
	case POP:
		return in.Reglist&(1<<PC) != 0
	case SWI:
		return in.Imm == SysExit
	}
	return false
}

// op2 formats the flexible second operand.
func (in *Instr) op2() string {
	if in.HasImm {
		return fmt.Sprintf("#%d", in.Imm)
	}
	if in.Shift != NoShift {
		return fmt.Sprintf("%s, %s #%d", in.Rm, in.Shift, in.ShAmt)
	}
	return in.Rm.String()
}

// memOperand formats the address operand of a load/store.
func (in *Instr) memOperand() string {
	off := ""
	if in.HasImm {
		if in.Imm != 0 {
			off = fmt.Sprintf(", #%d", in.Imm)
		}
	} else if in.Rm != RegNone {
		off = ", " + in.Rm.String()
		if in.Shift != NoShift {
			off += fmt.Sprintf(", %s #%d", in.Shift, in.ShAmt)
		}
	}
	switch {
	case in.Op.Writeback():
		if off == "" && in.HasImm {
			return fmt.Sprintf("[%s]!", in.Rn)
		}
		return fmt.Sprintf("[%s%s]!", in.Rn, off)
	default:
		return fmt.Sprintf("[%s%s]", in.Rn, off)
	}
}

// reglistString formats a push/pop register list.
func reglistString(mask uint16) string {
	var parts []string
	for r := R0; r < Reg(NumRegs); r++ {
		if mask&(1<<r) != 0 {
			parts = append(parts, r.String())
		}
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// String renders the canonical assembly text of the instruction. The text
// is canonical in the strict sense required by the miner: two instructions
// are semantically interchangeable for procedural abstraction iff their
// String() values are equal (paper §3: "the instructions of a frequent
// fragment's embeddings must be completely identical").
func (in *Instr) String() string {
	mn := in.Op.String() + in.Cond.String()
	if in.SetS {
		mn += "s"
	}
	switch {
	case in.Op == LABEL:
		return in.Target + ":"
	case in.Op == WORD:
		if in.Target != "" {
			return ".word " + in.Target
		}
		return fmt.Sprintf(".word %d", in.Imm)
	case in.Op == NOP:
		return mn
	case in.Op.IsDataProcessing():
		return fmt.Sprintf("%s %s, %s, %s", mn, in.Rd, in.Rn, in.op2())
	case in.Op.IsMove():
		return fmt.Sprintf("%s %s, %s", mn, in.Rd, in.op2())
	case in.Op.IsCompare():
		return fmt.Sprintf("%s %s, %s", in.Op.String()+in.Cond.String(), in.Rn, in.op2())
	case in.Op == MUL:
		return fmt.Sprintf("%s %s, %s, %s", mn, in.Rd, in.Rn, in.Rm)
	case in.Op == MLA:
		return fmt.Sprintf("%s %s, %s, %s, %s", mn, in.Rd, in.Rn, in.Rm, in.Ra)
	case in.Op == PUSH || in.Op == POP:
		return fmt.Sprintf("%s %s", mn, reglistString(in.Reglist))
	case in.Op.IsMem():
		if in.IsLiteralLoad() {
			return fmt.Sprintf("%s %s, =%s", mn, in.Rd, strings.TrimPrefix(in.Target, ConstPrefix))
		}
		if in.Op.PostIndexed() {
			// "[rn], #4" form
			off := "#0"
			if in.HasImm {
				off = fmt.Sprintf("#%d", in.Imm)
			} else if in.Rm != RegNone {
				off = in.Rm.String()
				if in.Shift != NoShift {
					off += fmt.Sprintf(", %s #%d", in.Shift, in.ShAmt)
				}
			}
			return fmt.Sprintf("%s %s, [%s], %s", mn, in.Rd, in.Rn, off)
		}
		return fmt.Sprintf("%s %s, %s", mn, in.Rd, in.memOperand())
	case in.Op == B || in.Op == BL:
		return fmt.Sprintf("%s %s", mn, in.Target)
	case in.Op == BX:
		return fmt.Sprintf("%s %s", mn, in.Rm)
	case in.Op == SWI:
		return fmt.Sprintf("%s %d", mn, in.Imm)
	}
	return mn + " ???"
}

// CanonicalKey returns the fuzzy-matching key of the paper's future-work
// §5 "canonical representation": the mnemonic plus the number and kinds of
// operands, with concrete registers replaced by R and immediates by I
// (Fig. 13). Used by the optional canonical-matching mining mode.
func (in *Instr) CanonicalKey() string {
	mn := in.Op.String() + in.Cond.String()
	if in.SetS {
		mn += "s"
	}
	var ops []string
	add := func(r Reg) {
		if r != RegNone {
			ops = append(ops, "R")
		}
	}
	add(in.Rd)
	add(in.Rn)
	add(in.Rm)
	add(in.Ra)
	if in.HasImm {
		ops = append(ops, "I")
	}
	if in.Shift != NoShift {
		ops = append(ops, "S"+in.Shift.String())
	}
	if in.Op == PUSH || in.Op == POP {
		ops = append(ops, fmt.Sprintf("L%d", in.Reglist))
	}
	if in.Target != "" {
		ops = append(ops, "T")
	}
	return mn + " " + strings.Join(ops, ",")
}

// Clone returns a copy of the instruction.
func (in Instr) Clone() Instr { return in }
