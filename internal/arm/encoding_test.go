package arm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// roundTrip encodes then decodes and compares.
func roundTrip(t *testing.T, in Instr, off int32) {
	t.Helper()
	w, err := Encode(&in, off)
	if err != nil {
		t.Fatalf("Encode(%s): %v", in.String(), err)
	}
	got, gotOff := Decode(w)
	if got.String() != in.String() {
		t.Errorf("round trip %q -> %#x -> %q", in.String(), w, got.String())
	}
	if (in.Op == B || in.Op == BL) && gotOff != off {
		t.Errorf("branch offset round trip: %d -> %d", off, gotOff)
	}
}

func TestEncodeRoundTripBasic(t *testing.T) {
	cases := []struct {
		in  Instr
		off int32
	}{
		{mk(ADD, func(i *Instr) { i.Rd, i.Rn, i.Imm, i.HasImm = R4, R2, 4, true }), 0},
		{mk(SUB, func(i *Instr) { i.Rd, i.Rn, i.Rm = R2, R2, R3 }), 0},
		{mk(ADD, func(i *Instr) { i.Rd, i.Rn, i.Rm, i.Shift, i.ShAmt = R0, R1, R2, LSL, 2 }), 0},
		{mk(MOV, func(i *Instr) { i.Rd, i.Imm, i.HasImm = R0, -7, true }), 0},
		{mk(MVN, func(i *Instr) { i.Rd, i.Rm = R9, R10 }), 0},
		{mk(CMP, func(i *Instr) { i.Rn, i.Imm, i.HasImm = R0, 10, true }), 0},
		{mk(TEQ, func(i *Instr) { i.Rn, i.Rm = R3, R4 }), 0},
		{mk(MUL, func(i *Instr) { i.Rd, i.Rn, i.Rm = R0, R1, R2 }), 0},
		{mk(MLA, func(i *Instr) { i.Rd, i.Rn, i.Rm, i.Ra = R0, R1, R2, R3 }), 0},
		{mk(LDR, func(i *Instr) { i.Rd, i.Rn, i.Imm, i.HasImm = R3, R1, 4, true }), 0},
		{mk(LDRPREW, func(i *Instr) { i.Rd, i.Rn, i.HasImm = R3, R1, true }), 0},
		{mk(LDRPOSTW, func(i *Instr) { i.Rd, i.Rn, i.Imm, i.HasImm = R3, R1, 4, true }), 0},
		{mk(STRB, func(i *Instr) { i.Rd, i.Rn, i.Rm = R0, R1, R2 }), 0},
		{mk(PUSH, func(i *Instr) { i.Reglist = 1<<R4 | 1<<LR }), 0},
		{mk(POP, func(i *Instr) { i.Reglist = 1<<R4 | 1<<PC }), 0},
		{mk(B, func(i *Instr) { i.Target = "x" }), 100},
		{mk(B, func(i *Instr) { i.Cond, i.Target = NE, "x" }), -3},
		{mk(BL, func(i *Instr) { i.Target = "x" }), BranchMax},
		{mk(BL, func(i *Instr) { i.Target = "x" }), BranchMin},
		{mk(BX, func(i *Instr) { i.Rm = LR }), 0},
		{mk(SWI, func(i *Instr) { i.Imm, i.HasImm = 1, true }), 0},
		{mk(NOP, nil), 0},
		{mk(ADD, func(i *Instr) { i.Cond, i.SetS, i.Rd, i.Rn, i.Imm, i.HasImm = LE, true, R0, R0, 1, true }), 0},
	}
	for _, c := range cases {
		in := c.in
		if in.Op == B || in.Op == BL {
			// decoded branches carry no symbolic target
			in.Target = ""
			w, err := Encode(&c.in, c.off)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			got, gotOff := Decode(w)
			if got.Op != c.in.Op || got.Cond != c.in.Cond || gotOff != c.off {
				t.Errorf("branch round trip failed: %s off=%d -> %s off=%d", c.in.String(), c.off, got.Op, gotOff)
			}
			continue
		}
		roundTrip(t, c.in, c.off)
	}
}

func TestEncodeErrors(t *testing.T) {
	lbl := mk(LABEL, func(i *Instr) { i.Target = "x" })
	if _, err := Encode(&lbl, 0); err == nil {
		t.Error("encoding a label should fail")
	}
	big := mk(MOV, func(i *Instr) { i.Rd, i.Imm, i.HasImm = R0, 4096, true })
	if _, err := Encode(&big, 0); err == nil {
		t.Error("oversized immediate should fail")
	}
	lit := mk(LDR, func(i *Instr) { i.Rd, i.Target = R0, "sym" })
	if _, err := Encode(&lit, 0); err == nil {
		t.Error("unresolved literal load should fail")
	}
	far := mk(B, func(i *Instr) { i.Target = "x" })
	if _, err := Encode(&far, BranchMax+1); err == nil {
		t.Error("out-of-range branch should fail")
	}
	if _, err := Encode(&far, BranchMin-1); err == nil {
		t.Error("out-of-range negative branch should fail")
	}
}

func TestDecodeGarbageIsWord(t *testing.T) {
	// An all-ones word has an out-of-range opcode and must decode as data.
	in, _ := Decode(0xFFFFFFFF)
	if in.Op != WORD || uint32(in.Imm) != 0xFFFFFFFF {
		t.Errorf("garbage decoded as %s", in.String())
	}
	// Opcode 0 (BAD) likewise.
	in, _ = Decode(0)
	if in.Op != WORD {
		t.Errorf("zero word decoded as %s", in.String())
	}
}

func TestWordEncodesRaw(t *testing.T) {
	w := mk(WORD, func(i *Instr) { i.Imm = int32(-559038737) }) // 0xDEADBEEF
	enc, err := Encode(&w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if enc != 0xDEADBEEF {
		t.Errorf("word encoded as %#x", enc)
	}
}

// randInstr generates a random valid, encodable instruction.
func randInstr(r *rand.Rand) Instr {
	reg := func() Reg { return Reg(r.Intn(NumRegs)) }
	imm := func() int32 { return int32(r.Intn(ImmMax-ImmMin+1) + ImmMin) }
	cond := Cond(r.Intn(int(numConds)))
	classes := []func() Instr{
		func() Instr { // data processing, immediate
			ops := []Op{AND, EOR, SUB, RSB, ADD, ADC, SBC, ORR, BIC}
			in := NewInstr(ops[r.Intn(len(ops))])
			in.Rd, in.Rn, in.Imm, in.HasImm = reg(), reg(), imm(), true
			in.SetS = r.Intn(2) == 0
			return in
		},
		func() Instr { // data processing, register with shift
			ops := []Op{AND, EOR, SUB, RSB, ADD, ORR, BIC}
			in := NewInstr(ops[r.Intn(len(ops))])
			in.Rd, in.Rn, in.Rm = reg(), reg(), reg()
			if r.Intn(2) == 0 {
				in.Shift = ShiftKind(1 + r.Intn(4))
				in.ShAmt = int32(r.Intn(32))
			}
			return in
		},
		func() Instr { // mov / mvn
			in := NewInstr([]Op{MOV, MVN}[r.Intn(2)])
			in.Rd = reg()
			if r.Intn(2) == 0 {
				in.Imm, in.HasImm = imm(), true
			} else {
				in.Rm = reg()
			}
			return in
		},
		func() Instr { // compare
			in := NewInstr([]Op{CMP, CMN, TST, TEQ}[r.Intn(4)])
			in.Rn = reg()
			if r.Intn(2) == 0 {
				in.Imm, in.HasImm = imm(), true
			} else {
				in.Rm = reg()
			}
			return in
		},
		func() Instr { // memory
			ops := []Op{LDR, LDRB, STR, STRB, LDRPREW, LDRPOSTW, STRPREW, STRPOSTW, LDRBPREW, LDRBPOSTW, STRBPREW, STRBPOSTW}
			in := NewInstr(ops[r.Intn(len(ops))])
			in.Rd, in.Rn = reg(), reg()
			if r.Intn(2) == 0 {
				in.Imm, in.HasImm = imm(), true
			} else {
				in.Rm = reg()
				if r.Intn(2) == 0 {
					in.Shift = ShiftKind(1 + r.Intn(4))
					in.ShAmt = int32(r.Intn(32))
				}
			}
			return in
		},
		func() Instr { // push/pop
			in := NewInstr([]Op{PUSH, POP}[r.Intn(2)])
			in.Reglist = uint16(r.Intn(1 << 16))
			if in.Reglist == 0 {
				in.Reglist = 1 << R0
			}
			return in
		},
		func() Instr { // mul / mla
			if r.Intn(2) == 0 {
				in := NewInstr(MUL)
				in.Rd, in.Rn, in.Rm = reg(), reg(), reg()
				return in
			}
			in := NewInstr(MLA)
			in.Rd, in.Rn, in.Rm, in.Ra = reg(), reg(), reg(), reg()
			return in
		},
		func() Instr { // bx
			in := NewInstr(BX)
			in.Rm = reg()
			return in
		},
	}
	in := classes[r.Intn(len(classes))]()
	in.Cond = cond
	return in
}

// TestQuickEncodeDecodeRoundTrip is the property test: for every randomly
// generated encodable instruction, Decode(Encode(x)) must render to the
// same canonical text (instruction identity is text identity for the
// miner, so this is the invariant PA correctness rests on).
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		in := randInstr(r)
		w, err := Encode(&in, 0)
		if err != nil {
			t.Logf("Encode(%s): %v", in.String(), err)
			return false
		}
		got, _ := Decode(w)
		if got.String() != in.String() {
			t.Logf("round trip %q -> %q", in.String(), got.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestQuickEffectsConsistency checks structural invariants of EffectsOf on
// random instructions: stores read their data register, loads write it,
// writeback updates the base, predication reads cpsr.
func TestQuickEffectsConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		in := randInstr(r)
		e := EffectsOf(&in)
		if in.Cond != Always && !e.Reads.Has(CPSR) {
			return false
		}
		if in.Op.Writeback() && !e.Writes.Has(in.Rn) {
			return false
		}
		if in.Op.IsLoad() && in.Op != POP && !e.Writes.Has(in.Rd) {
			return false
		}
		if in.Op.IsStore() && in.Op != PUSH && !e.Reads.Has(in.Rd) {
			return false
		}
		if in.SetS && !e.Writes.Has(CPSR) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
