// Package arm models a small ARM-style 32-bit RISC instruction set.
//
// The model follows the classic ARM programmer's view used by the paper
// "Graph-Based Procedural Abstraction" (CGO 2007): fifteen general-purpose
// registers plus pc, a current-program-status register (cpsr) holding the
// N/Z/C/V condition flags, fully predicated instructions, and fixed-width
// 32-bit encodings that force large constants into pc-relative literal
// pools interwoven with the code.
//
// The binary encoding itself is synthetic (our own bit layout, see
// encoding.go); procedural abstraction only depends on instruction
// identity, operand data flow and label-relative addressing, all of which
// are modelled faithfully.
package arm

import "fmt"

// Reg is a machine register. r0..r12 are general purpose, sp/lr/pc have
// their usual ARM roles. CPSR is a pseudo-register used by data-flow
// analysis to track condition-flag dependencies; it is not encodable as an
// operand.
type Reg uint8

// Machine registers.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	SP // r13
	LR // r14
	PC // r15
	CPSR
	RegNone Reg = 0xFF
)

// NumRegs is the number of encodable machine registers (r0..pc).
const NumRegs = 16

var regNames = [...]string{
	"r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7",
	"r8", "r9", "r10", "r11", "r12", "sp", "lr", "pc", "cpsr",
}

func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// ParseReg converts a register name ("r0".."r15", "sp", "lr", "pc", and the
// aliases r13/r14/r15, ip for r12, fp for r11) to a Reg.
func ParseReg(s string) (Reg, bool) {
	switch s {
	case "sp", "r13":
		return SP, true
	case "lr", "r14":
		return LR, true
	case "pc", "r15":
		return PC, true
	case "ip":
		return R12, true
	case "fp":
		return R11, true
	}
	for i := 0; i <= 12; i++ {
		if s == regNames[i] {
			return Reg(i), true
		}
	}
	return RegNone, false
}

// Cond is an ARM condition code. Every instruction is predicated; Always
// is the default and is omitted from the assembly syntax.
type Cond uint8

// Condition codes.
const (
	Always Cond = iota // AL
	EQ                 // Z set
	NE                 // Z clear
	CS                 // C set (HS)
	CC                 // C clear (LO)
	MI                 // N set
	PL                 // N clear
	VS                 // V set
	VC                 // V clear
	HI                 // C set and Z clear
	LS                 // C clear or Z set
	GE                 // N == V
	LT                 // N != V
	GT                 // Z clear and N == V
	LE                 // Z set or N != V
	numConds
)

var condNames = [...]string{
	"", "eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc", "hi", "ls", "ge", "lt", "gt", "le",
}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond?%d", uint8(c))
}

// ParseCond recognises a condition suffix. The empty string and "al" map to
// Always; "hs" and "lo" are the usual aliases for cs/cc.
func ParseCond(s string) (Cond, bool) {
	switch s {
	case "", "al":
		return Always, true
	case "hs":
		return CS, true
	case "lo":
		return CC, true
	}
	for i := 1; i < int(numConds); i++ {
		if s == condNames[i] {
			return Cond(i), true
		}
	}
	return Always, false
}

// ShiftKind is the barrel-shifter operation applied to the Rm operand of a
// data-processing instruction.
type ShiftKind uint8

// Barrel shifter operations.
const (
	NoShift ShiftKind = iota
	LSL
	LSR
	ASR
	ROR
)

var shiftNames = [...]string{"", "lsl", "lsr", "asr", "ror"}

func (s ShiftKind) String() string {
	if int(s) < len(shiftNames) {
		return shiftNames[s]
	}
	return fmt.Sprintf("shift?%d", uint8(s))
}

// ParseShift recognises a shift mnemonic.
func ParseShift(s string) (ShiftKind, bool) {
	for i := 1; i < len(shiftNames); i++ {
		if s == shiftNames[i] {
			return ShiftKind(i), true
		}
	}
	return NoShift, false
}

// Op is an operation mnemonic.
type Op uint8

// Operations. The LDR/STR writeback variants bake the addressing mode into
// the opcode so that one 32-bit word always suffices (see encoding.go).
const (
	BAD Op = iota

	// Data processing: rd, rn, op2.
	AND
	EOR
	SUB
	RSB
	ADD
	ADC
	SBC
	ORR
	BIC

	// Moves: rd, op2.
	MOV
	MVN

	// Compares: rn, op2. Always set flags.
	CMP
	CMN
	TST
	TEQ

	// Multiplies.
	MUL // rd, rn, rm
	MLA // rd, rn, rm, ra

	// Memory. Base register rn, data register rd.
	LDR      // ldr rd, [rn, off]
	LDRB     // byte load
	STR      // str rd, [rn, off]
	STRB     // byte store
	LDRPREW  // ldr rd, [rn, off]!   (pre-index, writeback)
	LDRPOSTW // ldr rd, [rn], off    (post-index, writeback)
	STRPREW  // str rd, [rn, off]!
	STRPOSTW // str rd, [rn], off
	LDRBPREW
	LDRBPOSTW
	STRBPREW
	STRBPOSTW

	// Multiple transfer (full-descending stack only).
	PUSH // push {reglist}
	POP  // pop {reglist}

	// Control flow.
	B   // branch to label
	BL  // branch and link
	BX  // branch to register (bx lr returns)
	SWI // software interrupt (syscall)

	// Pseudo-instructions that exist in the instruction stream.
	LABEL // jump/call target marker inserted by the loader (paper phase 3/4)
	WORD  // interwoven data word (literal pools, jump tables)
	NOP

	NumOps
)

var opNames = [...]string{
	BAD:       "bad",
	AND:       "and",
	EOR:       "eor",
	SUB:       "sub",
	RSB:       "rsb",
	ADD:       "add",
	ADC:       "adc",
	SBC:       "sbc",
	ORR:       "orr",
	BIC:       "bic",
	MOV:       "mov",
	MVN:       "mvn",
	CMP:       "cmp",
	CMN:       "cmn",
	TST:       "tst",
	TEQ:       "teq",
	MUL:       "mul",
	MLA:       "mla",
	LDR:       "ldr",
	LDRB:      "ldrb",
	STR:       "str",
	STRB:      "strb",
	LDRPREW:   "ldr",
	LDRPOSTW:  "ldr",
	STRPREW:   "str",
	STRPOSTW:  "str",
	LDRBPREW:  "ldrb",
	LDRBPOSTW: "ldrb",
	STRBPREW:  "strb",
	STRBPOSTW: "strb",
	PUSH:      "push",
	POP:       "pop",
	B:         "b",
	BL:        "bl",
	BX:        "bx",
	SWI:       "swi",
	LABEL:     ".label",
	WORD:      ".word",
	NOP:       "nop",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", uint8(o))
}

// IsDataProcessing reports whether o is a three-operand ALU operation.
func (o Op) IsDataProcessing() bool {
	switch o {
	case AND, EOR, SUB, RSB, ADD, ADC, SBC, ORR, BIC:
		return true
	}
	return false
}

// IsMove reports whether o is mov or mvn.
func (o Op) IsMove() bool { return o == MOV || o == MVN }

// IsCompare reports whether o is a flag-setting comparison.
func (o Op) IsCompare() bool {
	switch o {
	case CMP, CMN, TST, TEQ:
		return true
	}
	return false
}

// IsLoad reports whether o loads from memory (any addressing mode).
func (o Op) IsLoad() bool {
	switch o {
	case LDR, LDRB, LDRPREW, LDRPOSTW, LDRBPREW, LDRBPOSTW, POP:
		return true
	}
	return false
}

// IsStore reports whether o stores to memory (any addressing mode).
func (o Op) IsStore() bool {
	switch o {
	case STR, STRB, STRPREW, STRPOSTW, STRBPREW, STRBPOSTW, PUSH:
		return true
	}
	return false
}

// IsMem reports whether o accesses memory.
func (o Op) IsMem() bool { return o.IsLoad() || o.IsStore() }

// IsByteMem reports whether o is a byte-sized memory access.
func (o Op) IsByteMem() bool {
	switch o {
	case LDRB, STRB, LDRBPREW, LDRBPOSTW, STRBPREW, STRBPOSTW:
		return true
	}
	return false
}

// Writeback reports whether o updates its base register.
func (o Op) Writeback() bool {
	switch o {
	case LDRPREW, LDRPOSTW, STRPREW, STRPOSTW, LDRBPREW, LDRBPOSTW, STRBPREW, STRBPOSTW:
		return true
	}
	return false
}

// PostIndexed reports whether o applies its offset after the access.
func (o Op) PostIndexed() bool {
	switch o {
	case LDRPOSTW, STRPOSTW, LDRBPOSTW, STRBPOSTW:
		return true
	}
	return false
}

// IsBranch reports whether o transfers control (b, bl, bx).
func (o Op) IsBranch() bool { return o == B || o == BL || o == BX }

// IsCall reports whether o is a procedure call.
func (o Op) IsCall() bool { return o == BL }
