package arm

// Syscall numbers understood by the emulator (internal/emu). They are the
// tiny OS interface our static runtime is written against, standing in for
// the Linux EABI syscalls a dietlibc binary would use.
const (
	SysExit  = 0 // r0 = exit code
	SysPutc  = 1 // r0 = byte to write to stdout
	SysGetc  = 2 // returns byte (or -1) in r0
	SysClock = 3 // returns a deterministic tick counter in r0
)

// RegSet is a bitmask over Reg (including CPSR).
type RegSet uint32

// Add returns the set with r added.
func (s RegSet) Add(r Reg) RegSet {
	if r == RegNone {
		return s
	}
	return s | 1<<r
}

// Has reports whether r is in the set.
func (s RegSet) Has(r Reg) bool {
	if r == RegNone {
		return false
	}
	return s&(1<<r) != 0
}

// Regs returns the members in ascending order.
func (s RegSet) Regs() []Reg {
	var out []Reg
	for r := R0; r <= CPSR; r++ {
		if s.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// Effects describes the data-flow footprint of one instruction, the raw
// material for building per-block data-flow graphs (paper §2.1 phase 6).
type Effects struct {
	Reads     RegSet // registers read (incl. CPSR when predicated or carry-in)
	Writes    RegSet // registers written (incl. CPSR when flag-setting)
	LoadsMem  bool
	StoresMem bool
	// Barrier instructions (calls, syscalls, unresolved indirect control
	// flow) order against every other memory operation and are never part
	// of a mined fragment.
	Barrier bool
}

// EffectsOf computes the data-flow footprint of in.
func EffectsOf(in *Instr) Effects {
	var e Effects
	if in.Cond != Always {
		e.Reads = e.Reads.Add(CPSR)
	}
	readOp2 := func() {
		if !in.HasImm {
			e.Reads = e.Reads.Add(in.Rm)
		}
	}
	switch {
	case in.Op.IsDataProcessing():
		e.Reads = e.Reads.Add(in.Rn)
		readOp2()
		if in.Op == ADC || in.Op == SBC {
			e.Reads = e.Reads.Add(CPSR)
		}
		e.Writes = e.Writes.Add(in.Rd)
		if in.SetS {
			e.Writes = e.Writes.Add(CPSR)
		}
	case in.Op.IsMove():
		readOp2()
		e.Writes = e.Writes.Add(in.Rd)
		if in.SetS {
			e.Writes = e.Writes.Add(CPSR)
		}
	case in.Op.IsCompare():
		e.Reads = e.Reads.Add(in.Rn)
		readOp2()
		e.Writes = e.Writes.Add(CPSR)
	case in.Op == MUL:
		e.Reads = e.Reads.Add(in.Rn).Add(in.Rm)
		e.Writes = e.Writes.Add(in.Rd)
		if in.SetS {
			e.Writes = e.Writes.Add(CPSR)
		}
	case in.Op == MLA:
		e.Reads = e.Reads.Add(in.Rn).Add(in.Rm).Add(in.Ra)
		e.Writes = e.Writes.Add(in.Rd)
		if in.SetS {
			e.Writes = e.Writes.Add(CPSR)
		}
	case in.Op.IsMem() && in.Op != PUSH && in.Op != POP:
		if in.IsLiteralLoad() {
			// Loads a constant from the immutable literal pool: no
			// register inputs and no ordering against data memory.
			e.Writes = e.Writes.Add(in.Rd)
			break
		}
		e.Reads = e.Reads.Add(in.Rn)
		if !in.HasImm {
			e.Reads = e.Reads.Add(in.Rm)
		}
		if in.Op.IsLoad() {
			e.LoadsMem = true
			e.Writes = e.Writes.Add(in.Rd)
		} else {
			e.StoresMem = true
			e.Reads = e.Reads.Add(in.Rd)
		}
		if in.Op.Writeback() {
			e.Writes = e.Writes.Add(in.Rn)
		}
	case in.Op == PUSH:
		e.Reads = e.Reads.Add(SP)
		e.Writes = e.Writes.Add(SP)
		e.StoresMem = true
		for r := R0; r < Reg(NumRegs); r++ {
			if in.Reglist&(1<<r) != 0 {
				e.Reads = e.Reads.Add(r)
			}
		}
	case in.Op == POP:
		e.Reads = e.Reads.Add(SP)
		e.Writes = e.Writes.Add(SP)
		e.LoadsMem = true
		for r := R0; r < Reg(NumRegs); r++ {
			if in.Reglist&(1<<r) != 0 {
				e.Writes = e.Writes.Add(r)
			}
		}
	case in.Op == B:
		e.Writes = e.Writes.Add(PC)
	case in.Op == BL:
		// A call clobbers the caller-saved registers of our ABI
		// (r0-r3, r12, lr) and may touch any memory.
		e.Reads = e.Reads.Add(R0).Add(R1).Add(R2).Add(R3).Add(SP)
		e.Writes = e.Writes.Add(R0).Add(R1).Add(R2).Add(R3).Add(R12).Add(LR).Add(PC).Add(CPSR)
		e.LoadsMem = true
		e.StoresMem = true
		e.Barrier = true
	case in.Op == BX:
		e.Reads = e.Reads.Add(in.Rm)
		e.Writes = e.Writes.Add(PC)
	case in.Op == SWI:
		e.Reads = e.Reads.Add(R0).Add(R1)
		e.Writes = e.Writes.Add(R0)
		e.LoadsMem = true
		e.StoresMem = true
		e.Barrier = true
	}
	if in.Cond != Always {
		// A predicated instruction that skips execution leaves its
		// destinations unchanged, so the old values flow through:
		// destinations are read-modify-write.
		e.Reads |= e.Writes &^ (1 << PC)
	}
	return e
}

// Abstractable reports whether the instruction may appear inside a mined
// fragment that is outlined into a procedure. Control transfers, stack
// adjustments through pc, pseudo-instructions and barriers must stay put:
// moving them would change the meaning of the surrounding code.
func Abstractable(in *Instr) bool {
	if in.IsPseudo() || in.Op == NOP {
		return false
	}
	e := EffectsOf(in)
	if e.Barrier {
		return false
	}
	if e.Writes.Has(PC) || e.Reads.Has(PC) {
		return false
	}
	// lr is the linkage register of the outlining transformation itself.
	if e.Writes.Has(LR) || e.Reads.Has(LR) {
		return false
	}
	return true
}
