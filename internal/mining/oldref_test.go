package mining

import (
	"sort"
	"strconv"
)

// This file preserves the pre-slab (boxed []*Embedding) implementation of
// the serial lattice walk, verbatim except for renames, as a test-only
// reference: the differential suite checks the flat EmbSet walk visits
// byte-identical patterns, and the same-process A/B benchmark measures
// the layout change without cross-process wall-clock noise.

// key identifies an embedding exactly (the old string dedupe key).
func (e *Embedding) key() string {
	buf := make([]byte, 0, 8+6*(len(e.Nodes)+len(e.Edges)))
	buf = strconv.AppendInt(buf, int64(e.GID), 10)
	buf = append(buf, ':')
	for _, n := range e.Nodes {
		buf = strconv.AppendInt(buf, int64(n), 10)
		buf = append(buf, ',')
	}
	buf = append(buf, '|')
	for _, d := range e.Edges {
		buf = strconv.AppendInt(buf, int64(d), 10)
		buf = append(buf, ',')
	}
	return string(buf)
}

// OldPattern is the boxed-layout Pattern.
type OldPattern struct {
	Code       Code
	Labels     []string
	Embeddings []*Embedding
	Support    int
	Disjoint   []*Embedding
}

type oldExt struct {
	t    Tuple
	embs []*Embedding
}

type oldCand struct {
	emb     *Embedding
	eid     int
	newNode int
}

type oldRawGroup struct {
	t     Tuple
	cands []oldCand
}

type oldMiner struct {
	cfg     Config
	graphOf func(int) *Graph
	visit   func(*OldPattern)
	visited int
	aborted bool
	mk      marks
}

func (mn *oldMiner) extendGroups(code Code, embs []*Embedding) []oldRawGroup {
	rmpath := code.RightmostPath()
	if len(rmpath) == 0 {
		return nil
	}
	rm := rmpath[len(rmpath)-1]
	onPath := make(map[int]bool, len(rmpath))
	for _, v := range rmpath {
		onPath[v] = true
	}
	labels := code.NodeLabels()
	numNodes := len(labels)

	groups := map[Tuple][]oldCand{}
	mk := &mn.mk
	for _, emb := range embs {
		g := mn.graphOf(emb.GID)
		mk.reset(g)
		for di, n := range emb.Nodes {
			mk.mapNode(n, di)
		}
		for _, eid := range emb.Edges {
			mk.useEdge(eid)
		}
		vrm := emb.Nodes[rm]
		for _, h := range g.adj[vrm] {
			if mk.edgeUsed(h.eid) {
				continue
			}
			du, ok := mk.nodeDFS(h.other)
			if !ok || du == rm || !onPath[du] {
				continue
			}
			t := Tuple{I: rm, J: du, LI: labels[rm], LJ: labels[du], Out: h.out, LE: h.label}
			groups[t] = append(groups[t], oldCand{emb: emb, eid: h.eid, newNode: -1})
		}
		for _, w := range rmpath {
			vw := emb.Nodes[w]
			for _, h := range g.adj[vw] {
				if mk.edgeUsed(h.eid) {
					continue
				}
				if _, ok := mk.nodeDFS(h.other); ok {
					continue
				}
				t := Tuple{I: w, J: numNodes, LI: labels[w], LJ: g.Labels[h.other], Out: h.out, LE: h.label}
				groups[t] = append(groups[t], oldCand{emb: emb, eid: h.eid, newNode: h.other})
			}
		}
	}

	out := make([]oldRawGroup, 0, len(groups))
	for t, cands := range groups {
		if len(cands) < mn.cfg.MinSupport {
			continue
		}
		out = append(out, oldRawGroup{t: t, cands: cands})
	}
	sort.Slice(out, func(i, j int) bool { return CompareTuples(out[i].t, out[j].t) < 0 })
	return out
}

func (mn *oldMiner) materialize(g oldRawGroup) (embs []*Embedding, ok bool) {
	embs = make([]*Embedding, 0, len(g.cands))
	seen := make(map[string]bool, len(g.cands))
	for _, c := range g.cands {
		ne := &Embedding{GID: c.emb.GID}
		if c.newNode >= 0 {
			ne.Nodes = append(append(make([]int, 0, len(c.emb.Nodes)+1), c.emb.Nodes...), c.newNode)
		} else {
			ne.Nodes = c.emb.Nodes
		}
		ne.Edges = append(append(make([]int, 0, len(c.emb.Edges)+1), c.emb.Edges...), c.eid)
		k := ne.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		embs = append(embs, ne)
	}
	return embs, len(embs) >= mn.cfg.MinSupport
}

func (mn *oldMiner) pattern(code Code, embs []*Embedding) *OldPattern {
	p := &OldPattern{Code: code, Labels: code.NodeLabels(), Embeddings: embs}
	p.Support = oldComputeSupport(p, mn.cfg)
	return p
}

func (mn *oldMiner) dfs(code Code, embs []*Embedding) {
	if mn.aborted {
		return
	}
	p := mn.pattern(code, embs)
	if p.Support < mn.cfg.MinSupport {
		return
	}
	mn.visit(p)
	mn.visited++
	if mn.cfg.MaxPatterns > 0 && mn.visited >= mn.cfg.MaxPatterns {
		mn.aborted = true
		return
	}
	if mn.cfg.MaxNodes > 0 && p.Code.NumNodes() >= mn.cfg.MaxNodes {
		return
	}
	mn.expand(code, embs)
}

func (mn *oldMiner) expand(code Code, embs []*Embedding) {
	groups := mn.extendGroups(code, embs)
	kids := make([]oldExt, 0, len(groups))
	for _, g := range groups {
		if mn.cfg.ViableCount != nil && !mn.cfg.ViableCount(len(g.cands)) {
			continue
		}
		cembs, ok := mn.materialize(g)
		if !ok {
			continue
		}
		kids = append(kids, oldExt{t: g.t, embs: cembs})
	}
	for _, k := range kids {
		child := append(append(Code{}, code...), k.t)
		if !mn.minimal(child) {
			continue
		}
		mn.dfs(child, k.embs)
	}
}

// minimal mirrors Config.minimal, but routes to the boxed-era minimality
// test so the reference walk exercises none of the flat fast path.
func (mn *oldMiner) minimal(code Code) bool {
	if mn.cfg.Minimal != nil {
		return mn.cfg.Minimal(code)
	}
	return oldIsMinimal(code)
}

// oldExtendFull is the boxed extendFull: every extension group
// materialised, no frequency or viability filtering.
func oldExtendFull(code Code, embs []*Embedding, graphOf func(int) *Graph) []oldExt {
	mn := &oldMiner{cfg: Config{MinSupport: 1}, graphOf: graphOf}
	groups := mn.extendGroups(code, embs)
	out := make([]oldExt, 0, len(groups))
	for _, g := range groups {
		if cembs, ok := mn.materialize(g); ok {
			out = append(out, oldExt{t: g.t, embs: cembs})
		}
	}
	return out
}

// oldIsMinimal is the boxed-layout Code.IsMinimal: partial isomorphisms
// are []*Embedding, rebuilt (and reallocated) at every growth step.
func oldIsMinimal(c Code) bool {
	if len(c) == 0 {
		return true
	}
	p := c.ToGraph()
	var embs []*Embedding
	var best Tuple
	for v := range p.Labels {
		for _, h := range p.adj[v] {
			t := Tuple{I: 0, J: 1, LI: p.Labels[v], LJ: p.Labels[h.other], Out: h.out, LE: h.label}
			if embs == nil || CompareTuples(t, best) < 0 {
				best = t
				embs = embs[:0]
			}
			if CompareTuples(t, best) == 0 {
				embs = append(embs, &Embedding{Nodes: []int{v, h.other}, Edges: []int{h.eid}})
			}
		}
	}
	if CompareTuples(best, c[0]) != 0 {
		return CompareTuples(c[0], best) <= 0
	}
	cur := Code{best}
	for k := 1; k < len(c); k++ {
		exts := oldExtendFull(cur, embs, func(int) *Graph { return p })
		if len(exts) == 0 {
			return false
		}
		minT := exts[0].t
		for _, e := range exts[1:] {
			if CompareTuples(e.t, minT) < 0 {
				minT = e.t
			}
		}
		if cmp := CompareTuples(c[k], minT); cmp != 0 {
			return cmp < 0
		}
		embs = nil
		for _, e := range exts {
			if CompareTuples(e.t, minT) == 0 {
				embs = append(embs, e.embs...)
			}
		}
		cur = append(cur, minT)
	}
	return true
}

// OldMine is the boxed-layout serial search (Workers, Checkpoint and
// PruneSubtree are ignored: the reference exists to compare layouts, not
// policies).
func OldMine(graphs []*Graph, cfg Config, visit func(*OldPattern)) {
	byID := map[int]*Graph{}
	for _, g := range graphs {
		if g.adj == nil {
			g.Freeze()
		}
		byID[g.ID] = g
	}
	mn := &oldMiner{cfg: cfg, graphOf: func(id int) *Graph { return byID[id] }, visit: visit}
	for _, s := range oldSeedPatterns(graphs) {
		mn.dfs(Code{s.t}, s.embs)
	}
}

func oldSeedPatterns(graphs []*Graph) []*oldExt {
	seeds := map[Tuple]*oldExt{}
	for _, g := range graphs {
		for v := range g.Labels {
			for _, h := range g.adj[v] {
				if !h.out {
					continue
				}
				a := Tuple{I: 0, J: 1, LI: g.Labels[v], LJ: g.Labels[h.other], Out: true, LE: h.label}
				b := Tuple{I: 0, J: 1, LI: g.Labels[h.other], LJ: g.Labels[v], Out: false, LE: h.label}
				t := a
				nodes := []int{v, h.other}
				if CompareTuples(b, a) < 0 {
					t = b
					nodes = []int{h.other, v}
				}
				s, ok := seeds[t]
				if !ok {
					s = &oldExt{t: t}
					seeds[t] = s
				}
				s.embs = append(s.embs, &Embedding{GID: g.ID, Nodes: nodes, Edges: []int{h.eid}})
			}
		}
	}
	out := make([]*oldExt, 0, len(seeds))
	for _, s := range seeds {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return CompareTuples(out[i].t, out[j].t) < 0 })
	return out
}

func oldComputeSupport(p *OldPattern, cfg Config) int {
	if !cfg.EmbeddingSupport {
		gids := map[int]bool{}
		for _, e := range p.Embeddings {
			gids[e.GID] = true
		}
		return len(gids)
	}
	dis := oldDisjointEmbeddings(p.Embeddings, cfg)
	p.Disjoint = dis
	return len(dis)
}

// oldDisjointEmbeddings and helpers: the pre-bitset MIS front end with
// string dedupe keys and allocating bitset operations.
func oldDisjointEmbeddings(embs []*Embedding, cfg Config) []*Embedding {
	byGID := map[int][]*Embedding{}
	var gids []int
	for _, e := range embs {
		if _, ok := byGID[e.GID]; !ok {
			gids = append(gids, e.GID)
		}
		byGID[e.GID] = append(byGID[e.GID], e)
	}
	sort.Ints(gids)

	var out []*Embedding
	for _, gid := range gids {
		group := oldDedupeByNodeSet(byGID[gid])
		if cfg.GreedyMIS || len(group) > cfg.exactLimit() {
			out = append(out, oldGreedyDisjoint(group)...)
			continue
		}
		out = append(out, oldExactDisjoint(group)...)
	}
	return out
}

func oldDedupeByNodeSet(group []*Embedding) []*Embedding {
	seen := map[string]bool{}
	var out []*Embedding
	for _, e := range group {
		k := ""
		for _, n := range e.NodeSet() {
			k += olditoa(n) + ","
		}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, e)
	}
	return out
}

func olditoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func oldExactDisjoint(group []*Embedding) []*Embedding {
	n := len(group)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return group
	}
	inv := make([]bitset, n)
	for i := range inv {
		inv[i] = newBitset(n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !group[i].Overlaps(group[j]) {
				inv[i].set(j)
				inv[j].set(i)
			}
		}
	}
	idx := oldMaxClique(n, inv)
	sort.Ints(idx)
	out := make([]*Embedding, 0, len(idx))
	for _, i := range idx {
		out = append(out, group[i])
	}
	return out
}

func oldMaxClique(n int, adj []bitset) []int {
	var best []int
	cand := newBitset(n)
	for i := 0; i < n; i++ {
		cand.set(i)
	}
	var expand func(r []int, p bitset)
	expand = func(r []int, p bitset) {
		if p.empty() {
			if len(r) > len(best) {
				best = append([]int(nil), r...)
			}
			return
		}
		order, bound := oldColourSort(p, adj)
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			if len(r)+bound[i] <= len(best) {
				return
			}
			expand(append(r, v), p.and(adj[v]))
			p.clear(v)
		}
	}
	expand(nil, cand)
	return best
}

func oldColourSort(p bitset, adj []bitset) (order []int, bound []int) {
	total := p.count()
	remaining := p.clone()
	colour := 0
	for len(order) < total {
		colour++
		avail := remaining.clone()
		for !avail.empty() {
			v := avail.first()
			order = append(order, v)
			bound = append(bound, colour)
			remaining.clear(v)
			avail.clear(v)
			for i := range avail {
				avail[i] &^= adj[v][i]
			}
		}
	}
	return order, bound
}

func oldGreedyDisjoint(group []*Embedding) []*Embedding {
	type item struct {
		e          *Embedding
		maxN, minN int
	}
	items := make([]item, len(group))
	for i, e := range group {
		ns := e.NodeSet()
		items[i] = item{e: e, minN: ns[0], maxN: ns[len(ns)-1]}
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].maxN != items[b].maxN {
			return items[a].maxN < items[b].maxN
		}
		return items[a].minN < items[b].minN
	})
	var out []*Embedding
	for _, it := range items {
		ok := true
		for _, chosen := range out {
			if it.e.Overlaps(chosen) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, it.e)
		}
	}
	return out
}
