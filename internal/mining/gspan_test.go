package mining

import (
	"testing"
)

// chain builds a directed path graph a->b->c... with the given node
// labels and a constant edge label.
func chain(id int, elabel string, labels ...string) *Graph {
	g := &Graph{ID: id, Labels: labels}
	for i := 0; i+1 < len(labels); i++ {
		g.Edges = append(g.Edges, GEdge{From: i, To: i + 1, Label: elabel})
	}
	g.Freeze()
	return g
}

func mineAll(t *testing.T, graphs []*Graph, cfg Config) []*Pattern {
	t.Helper()
	var out []*Pattern
	Mine(graphs, cfg, func(p *Pattern) {
		// Deep-copy identity fields we assert on.
		out = append(out, p)
	})
	return out
}

func TestCompareTuplesOrder(t *testing.T) {
	fwd01 := Tuple{I: 0, J: 1, LI: "a", LJ: "b", Out: true, LE: "e"}
	fwd12 := Tuple{I: 1, J: 2, LI: "b", LJ: "c", Out: true, LE: "e"}
	back20 := Tuple{I: 2, J: 0, LI: "c", LJ: "a", Out: true, LE: "e"}
	// Growing forward chain: earlier discovery is smaller.
	if CompareTuples(fwd01, fwd12) >= 0 {
		t.Error("(0,1) must precede (1,2)")
	}
	// Backward from 2 precedes forward from 2 (i < j' rule with j'=3).
	fwd23 := Tuple{I: 2, J: 3, LI: "c", LJ: "d", Out: true, LE: "e"}
	if CompareTuples(back20, fwd23) >= 0 {
		t.Error("backward (2,0) must precede forward (2,3)")
	}
	// Direction is tie-breaking: out before in.
	in01 := Tuple{I: 0, J: 1, LI: "a", LJ: "b", Out: false, LE: "e"}
	if CompareTuples(fwd01, in01) >= 0 {
		t.Error("out-edge must sort before in-edge")
	}
	// Same position, label order decides.
	x := Tuple{I: 0, J: 1, LI: "a", LJ: "b", Out: true, LE: "f"}
	if CompareTuples(fwd01, x) >= 0 {
		t.Error("edge label order broken")
	}
	if CompareTuples(fwd01, fwd01) != 0 {
		t.Error("equal tuples must compare 0")
	}
}

func TestRightmostPath(t *testing.T) {
	code := Code{
		{I: 0, J: 1, LI: "a", LJ: "b", Out: true, LE: "e"},
		{I: 1, J: 2, LI: "b", LJ: "c", Out: true, LE: "e"},
		{I: 1, J: 3, LI: "b", LJ: "d", Out: true, LE: "e"},
	}
	got := code.RightmostPath()
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("rmpath = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rmpath = %v, want %v", got, want)
		}
	}
}

func TestIsMinimalChain(t *testing.T) {
	// For the chain a->b with labels a<b, the minimal code roots at a.
	minCode := Code{{I: 0, J: 1, LI: "a", LJ: "b", Out: true, LE: "e"}}
	if !minCode.IsMinimal() {
		t.Error("rooting at the smaller label must be minimal")
	}
	other := Code{{I: 0, J: 1, LI: "b", LJ: "a", Out: false, LE: "e"}}
	if other.IsMinimal() {
		t.Error("rooting at the larger label must not be minimal")
	}
}

func TestMineSimpleChainAcrossGraphs(t *testing.T) {
	graphs := []*Graph{
		chain(0, "e", "ldr", "sub", "add"),
		chain(1, "e", "ldr", "sub", "add"),
		chain(2, "e", "mov", "cmp"),
	}
	pats := mineAll(t, graphs, Config{MinSupport: 2})
	// Expected frequent patterns (support >= 2 graphs): ldr->sub,
	// sub->add, ldr->sub->add.
	found := map[string]int{}
	for _, p := range pats {
		found[p.Code.Key()] = p.Support
	}
	if len(pats) != 3 {
		t.Errorf("got %d patterns, want 3:\n%v", len(pats), keys(found))
	}
	for _, p := range pats {
		if p.Support != 2 {
			t.Errorf("pattern %s support = %d, want 2", p.Code, p.Support)
		}
	}
}

// isChain reports whether g is exactly the directed path through nodes
// labelled want[0] -> want[1] -> ...
func isChain(g *Graph, want ...string) bool {
	if len(g.Labels) != len(want) || len(g.Edges) != len(want)-1 {
		return false
	}
	// find the unique node with no incoming edges
	indeg := make([]int, len(g.Labels))
	succ := make([]int, len(g.Labels))
	for i := range succ {
		succ[i] = -1
	}
	for _, e := range g.Edges {
		indeg[e.To]++
		if succ[e.From] != -1 {
			return false
		}
		succ[e.From] = e.To
	}
	start := -1
	for i, d := range indeg {
		if d == 0 {
			if start != -1 {
				return false
			}
			start = i
		}
	}
	for _, w := range want {
		if start == -1 || g.Labels[start] != w {
			return false
		}
		start = succ[start]
	}
	return true
}

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// runningExample builds the dependence structure of the paper's Fig. 2
// (simplified to its data-flow edges, with uniform edge labels).
func runningExample(id int) *Graph {
	// 0: ldr, 1: sub, 2: add, 3: ldr, 4: sub, 5: ldr, 6: add
	g := &Graph{ID: id, Labels: []string{"ldr", "sub", "add", "ldr", "sub", "ldr", "add"}}
	edges := [][2]int{
		{0, 1}, // r3
		{1, 2}, // r2
		{0, 3}, // r1 pointer chain
		{3, 4}, // r3
		{1, 4}, // r2
		{3, 5}, // r1
		{4, 6}, // r2
	}
	for _, e := range edges {
		g.Edges = append(g.Edges, GEdge{From: e[0], To: e[1], Label: "d"})
	}
	g.Freeze()
	return g
}

// TestRunningExampleEdgarVsDgSpan reproduces the paper's §3 argument:
// the size-3 fragments of Figs. 4/5 occur twice in ONE basic block, so
// graph-based support (DgSpan) misses them while embedding-based support
// (Edgar) finds them.
func TestRunningExampleEdgarVsDgSpan(t *testing.T) {
	graphs := []*Graph{runningExample(0)}

	dg := mineAll(t, graphs, Config{MinSupport: 2})
	if len(dg) != 0 {
		t.Errorf("DgSpan (graph support) found %d patterns in a single graph, want 0", len(dg))
	}

	ed := mineAll(t, graphs, Config{MinSupport: 2, EmbeddingSupport: true})
	if len(ed) == 0 {
		t.Fatal("Edgar found nothing in the running example")
	}
	var size3 []*Pattern
	for _, p := range ed {
		if p.Code.NumNodes() == 3 && p.Support >= 2 {
			size3 = append(size3, p)
		}
	}
	// The paper's Fig. 4 fragment is the chain ldr->sub->add; it must be
	// found (in whatever canonical orientation) with two disjoint
	// embeddings. Check the materialised pattern graph, which is
	// orientation-independent.
	foundFig4 := false
	for _, p := range size3 {
		g := p.Code.ToGraph()
		if !isChain(g, "ldr", "sub", "add") {
			continue
		}
		foundFig4 = true
		if len(p.Disjoint) != 2 {
			t.Errorf("Fig. 4 fragment: %d disjoint embeddings, want 2", len(p.Disjoint))
		}
	}
	if !foundFig4 {
		var codes []string
		for _, p := range size3 {
			codes = append(codes, p.Code.Key())
		}
		t.Errorf("Fig. 4 fragment (ldr->sub->add) not found; size-3 patterns: %v", codes)
	}
}

// TestOverlapCounting reproduces Fig. 8: two overlapping embeddings of a
// size-4 fragment share the middle ldr, so only one is extractable.
func TestOverlapCounting(t *testing.T) {
	e1 := &Embedding{GID: 0, Nodes: []int{0, 1, 2, 3}}
	e2 := &Embedding{GID: 0, Nodes: []int{3, 4, 5, 6}}
	e3 := &Embedding{GID: 0, Nodes: []int{7, 8, 9, 10}}
	if !e1.Overlaps(e2) || e1.Overlaps(e3) {
		t.Fatal("Overlaps broken")
	}
	dis := DisjointEmbeddings([]*Embedding{e1, e2, e3}, Config{})
	if len(dis) != 2 {
		t.Errorf("disjoint = %d, want 2", len(dis))
	}
	// Across graphs there is no overlap.
	e4 := &Embedding{GID: 1, Nodes: []int{0, 1, 2, 3}}
	dis = DisjointEmbeddings([]*Embedding{e1, e2, e4}, Config{})
	if len(dis) != 2 {
		t.Errorf("cross-graph disjoint = %d, want 2", len(dis))
	}
}

func TestExactMISBeatsGreedyOnPathology(t *testing.T) {
	// Interval pathology: one embedding overlapping two disjoint ones.
	// Greedy by max-node still solves this; build a case where greedy
	// by earliest end fails: middle short interval blocks two long ones?
	// Construct a 5-cycle of conflicts, whose MIS is 2.
	embs := []*Embedding{
		{GID: 0, Nodes: []int{0, 1}},
		{GID: 0, Nodes: []int{1, 2}},
		{GID: 0, Nodes: []int{2, 3}},
		{GID: 0, Nodes: []int{3, 4}},
		{GID: 0, Nodes: []int{4, 0}},
	}
	dis := DisjointEmbeddings(embs, Config{})
	if len(dis) != 2 {
		t.Errorf("5-cycle MIS = %d, want 2", len(dis))
	}
	for i := 0; i < len(dis); i++ {
		for j := i + 1; j < len(dis); j++ {
			if dis[i].Overlaps(dis[j]) {
				t.Error("returned embeddings overlap")
			}
		}
	}
}

func TestGreedyMISIsMaximal(t *testing.T) {
	embs := []*Embedding{
		{GID: 0, Nodes: []int{0, 1, 2}},
		{GID: 0, Nodes: []int{2, 3, 4}},
		{GID: 0, Nodes: []int{4, 5, 6}},
		{GID: 0, Nodes: []int{6, 7, 8}},
	}
	dis := DisjointEmbeddings(embs, Config{GreedyMIS: true})
	if len(dis) != 2 {
		t.Errorf("greedy disjoint = %d, want 2", len(dis))
	}
}

func TestMaxNodesCap(t *testing.T) {
	graphs := []*Graph{
		chain(0, "e", "a", "b", "c", "d"),
		chain(1, "e", "a", "b", "c", "d"),
	}
	pats := mineAll(t, graphs, Config{MinSupport: 2, MaxNodes: 2})
	for _, p := range pats {
		if p.Code.NumNodes() > 2 {
			t.Errorf("pattern exceeds node cap: %s", p.Code)
		}
	}
	if len(pats) != 3 { // a->b, b->c, c->d
		t.Errorf("got %d patterns, want 3", len(pats))
	}
}

func TestMaxPatternsAborts(t *testing.T) {
	graphs := []*Graph{
		chain(0, "e", "a", "b", "c", "d", "e", "f"),
		chain(1, "e", "a", "b", "c", "d", "e", "f"),
	}
	count := 0
	Mine(graphs, Config{MinSupport: 2, MaxPatterns: 4}, func(p *Pattern) { count++ })
	if count != 4 {
		t.Errorf("visited %d patterns, want 4", count)
	}
}

// TestNoDuplicatePatterns: the canonical-form pruning must report each
// frequent pattern exactly once even in highly symmetric graphs.
func TestNoDuplicatePatterns(t *testing.T) {
	// A diamond: 0->1, 0->2, 1->3, 2->3, all labels equal.
	g := &Graph{ID: 0, Labels: []string{"x", "x", "x", "x"}}
	g.Edges = []GEdge{{0, 1, "e"}, {0, 2, "e"}, {1, 3, "e"}, {2, 3, "e"}}
	g.Freeze()
	g2 := &Graph{ID: 1, Labels: g.Labels, Edges: g.Edges}
	g2.Freeze()

	seen := map[string]bool{}
	foundDiamond := false
	Mine([]*Graph{g, g2}, Config{MinSupport: 2}, func(p *Pattern) {
		k := p.Code.Key()
		if seen[k] {
			t.Errorf("pattern reported twice: %s", p.Code)
		}
		seen[k] = true
		if p.Code.NumNodes() == 4 {
			foundDiamond = true
		}
	})
	if len(seen) == 0 {
		t.Fatal("nothing mined")
	}
	// The full diamond must be among the results (it appears in both
	// graphs).
	if !foundDiamond {
		t.Error("4-node diamond not found")
	}
}

// TestMultiEdgeSupport: parallel edges with different labels must be
// distinguishable patterns.
func TestMultiEdgeLabels(t *testing.T) {
	mk := func(id int) *Graph {
		g := &Graph{ID: id, Labels: []string{"p", "q"}}
		g.Edges = []GEdge{{0, 1, "raw:r1"}, {0, 1, "waw:r3"}}
		g.Freeze()
		return g
	}
	pats := mineAll(t, []*Graph{mk(0), mk(1)}, Config{MinSupport: 2})
	// Patterns: p-raw->q, p-waw->q, and the 2-edge multigraph.
	if len(pats) != 3 {
		for _, p := range pats {
			t.Logf("pattern: %s", p.Code)
		}
		t.Errorf("got %d patterns, want 3", len(pats))
	}
}

// TestEmbeddingSupportAntimonotone: child support never exceeds parent
// support (required for sound frequency pruning).
func TestEmbeddingSupportAntimonotone(t *testing.T) {
	graphs := []*Graph{runningExample(0), runningExample(1)}
	support := map[string]int{}
	Mine(graphs, Config{MinSupport: 2, EmbeddingSupport: true}, func(p *Pattern) {
		support[p.Code.Key()] = p.Support
	})
	// Every child (code with prefix c) must have support <= its parent.
	for k, s := range support {
		for k2, s2 := range support {
			if k != k2 && len(k2) > len(k) && k2[:len(k)] == k {
				if s2 > s {
					t.Errorf("child %q support %d > parent %q support %d", k2, s2, k, s)
				}
			}
		}
	}
}
