package mining

import (
	"math/bits"
	"sort"
)

// This file is the flat embedding core. The lattice walk's unit of work
// is "all embeddings of one pattern", and every embedding of a pattern
// has exactly the same shape: k mapped nodes and e mapped edges. EmbSet
// exploits that: instead of one heap object (plus two slices) per
// embedding, a whole level of the lattice lives in three pointer-free
// slabs — graph IDs, node/edge tuples, and per-embedding node bitsets.
// The GC never scans the slab interiors, an embedding is just an index,
// and the per-candidate work of the walk (child materialisation,
// deduplication, overlap tests) runs without allocating.

// EmbSet is a struct-of-arrays set of same-shape embeddings: embedding i
// is the {GID(i), i} record whose row lives at tup[i*(k+e) : (i+1)*(k+e)]
// — k graph-node ids (by DFS index) followed by e graph-edge ids (by code
// tuple index).
type EmbSet struct {
	k, e int     // nodes and edges per embedding
	n    int     // number of embeddings
	gids []int32 // owning graph per embedding
	tup  []int32 // n rows of k node ids then e edge ids

	// Per-embedding node bitsets, built lazily by ensureBits (only
	// patterns that reach an independent-set computation need them): w
	// 64-bit words per embedding, sized by the highest node id present.
	// An EmbSet is owned by one goroutine at a time (built by a worker,
	// handed over replay's ordered channel), so the lazy build needs no
	// locking.
	w    int
	bits []uint64
}

// Len returns the number of embeddings.
func (s *EmbSet) Len() int { return s.n }

// K returns the node count per embedding, E the edge count.
func (s *EmbSet) K() int { return s.k }
func (s *EmbSet) E() int { return s.e }

func (s *EmbSet) stride() int { return s.k + s.e }

// GID returns the graph owning embedding i.
func (s *EmbSet) GID(i int) int { return int(s.gids[i]) }

// Nodes returns embedding i's graph nodes by DFS index. The slice
// aliases the slab; callers must not mutate it.
func (s *EmbSet) Nodes(i int) []int32 {
	st := s.stride()
	return s.tup[i*st : i*st+s.k : i*st+s.k]
}

// Edges returns embedding i's graph edges by code tuple index, aliasing
// the slab.
func (s *EmbSet) Edges(i int) []int32 {
	st := s.stride()
	return s.tup[i*st+s.k : (i+1)*st : (i+1)*st]
}

// row returns embedding i's full node+edge tuple.
func (s *EmbSet) row(i int) []int32 {
	st := s.stride()
	return s.tup[i*st : (i+1)*st]
}

// ensureBits builds the per-embedding node bitsets on first use. The
// word count is sized by the highest node id actually present, not the
// owning graphs' node counts, so the set needs no graph knowledge.
func (s *EmbSet) ensureBits() {
	if s.bits != nil || s.n == 0 {
		return
	}
	maxN := int32(0)
	st := s.stride()
	for i := 0; i < s.n; i++ {
		for _, v := range s.tup[i*st : i*st+s.k] {
			if v > maxN {
				maxN = v
			}
		}
	}
	s.w = (int(maxN) + 64) / 64
	s.bits = make([]uint64, s.n*s.w)
	for i := 0; i < s.n; i++ {
		b := s.bits[i*s.w : (i+1)*s.w]
		for _, v := range s.tup[i*st : i*st+s.k] {
			b[v/64] |= 1 << (v % 64)
		}
	}
}

// nodeBits returns embedding i's node bitset (ensureBits must have run).
func (s *EmbSet) nodeBits(i int) []uint64 { return s.bits[i*s.w : (i+1)*s.w] }

// Overlaps reports whether embeddings i and j share a graph node: same
// graph and a non-empty word-wise AND of their node bitsets. It
// allocates nothing once the bitsets exist.
func (s *EmbSet) Overlaps(i, j int) bool {
	if s.gids[i] != s.gids[j] {
		return false
	}
	s.ensureBits()
	a, b := s.nodeBits(i), s.nodeBits(j)
	for w := range a {
		if a[w]&b[w] != 0 {
			return true
		}
	}
	return false
}

// hashRow is the 64-bit dedupe key of embedding row data: an FNV-style
// multiply-xor over the graph ID and tuple. Collisions are verified by
// the callers (hash equality never decides identity alone), so the hash
// only affects speed, never output.
func hashRow(gid int32, row []int32) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037) ^ uint64(uint32(gid))
	h *= prime
	for _, v := range row {
		h ^= uint64(uint32(v))
		h *= prime
	}
	return h
}

// hashWords is hashRow over bitset words (node-set identity).
func hashWords(ws []uint64) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range ws {
		h ^= v
		h *= prime
	}
	return h
}

// embBuilder accumulates same-shape embeddings into an EmbSet.
type embBuilder struct {
	set EmbSet
}

func newEmbBuilder(k, e, capHint int) *embBuilder {
	b := &embBuilder{set: EmbSet{k: k, e: e}}
	if capHint > 0 {
		b.set.gids = make([]int32, 0, capHint)
		b.set.tup = make([]int32, 0, capHint*(k+e))
	}
	return b
}

// add appends one embedding.
func (b *embBuilder) add(gid int32, nodes, edges []int32) {
	b.set.gids = append(b.set.gids, gid)
	b.set.tup = append(b.set.tup, nodes...)
	b.set.tup = append(b.set.tup, edges...)
	b.set.n++
}

func (b *embBuilder) reset() {
	b.set.gids = b.set.gids[:0]
	b.set.tup = b.set.tup[:0]
	b.set.n = 0
}

func (b *embBuilder) done() *EmbSet {
	s := b.set
	return &s
}

// EqualData reports whether two sets hold identical embeddings (shape,
// graph IDs and tuples) — the cross-round footprint comparison of the
// checkpoint protocol. Bitsets are derived state and not compared.
func (s *EmbSet) EqualData(o *EmbSet) bool {
	if s.k != o.k || s.e != o.e || s.n != o.n {
		return false
	}
	for i, g := range s.gids {
		if g != o.gids[i] {
			return false
		}
	}
	for i, v := range s.tup {
		if v != o.tup[i] {
			return false
		}
	}
	return true
}

// Embedding is the boxed view of one EmbSet row: the pre-slab
// representation, kept as a construction and inspection convenience for
// tests and external callers. The mining inner loop never creates these.
type Embedding struct {
	GID   int
	Nodes []int
	Edges []int
}

// Emb materialises embedding i as a boxed view (allocates; debugging and
// tests only).
func (s *EmbSet) Emb(i int) Embedding {
	e := Embedding{GID: s.GID(i)}
	e.Nodes = make([]int, s.k)
	for j, v := range s.Nodes(i) {
		e.Nodes[j] = int(v)
	}
	e.Edges = make([]int, s.e)
	for j, v := range s.Edges(i) {
		e.Edges[j] = int(v)
	}
	return e
}

// NodeSet returns the sorted set of graph nodes covered.
func (e *Embedding) NodeSet() []int {
	out := append([]int(nil), e.Nodes...)
	sort.Ints(out)
	return out
}

// Overlaps reports whether two boxed embeddings share a node.
func (e *Embedding) Overlaps(o *Embedding) bool {
	if e.GID != o.GID {
		return false
	}
	for _, a := range e.Nodes {
		for _, b := range o.Nodes {
			if a == b {
				return true
			}
		}
	}
	return false
}

// NewEmbSet packs boxed embeddings into a slab. Ragged node counts are
// tolerated (shorter rows are padded by repeating their last node, which
// leaves the node set — all the independent-set machinery reads —
// unchanged); edge lists must agree in length.
func NewEmbSet(embs []*Embedding) *EmbSet {
	if len(embs) == 0 {
		return &EmbSet{}
	}
	k, e := 0, len(embs[0].Edges)
	for _, emb := range embs {
		if len(emb.Nodes) > k {
			k = len(emb.Nodes)
		}
	}
	b := newEmbBuilder(k, e, len(embs))
	for _, emb := range embs {
		b.set.gids = append(b.set.gids, int32(emb.GID))
		for _, n := range emb.Nodes {
			b.set.tup = append(b.set.tup, int32(n))
		}
		for j := len(emb.Nodes); j < k; j++ {
			b.set.tup = append(b.set.tup, int32(emb.Nodes[len(emb.Nodes)-1]))
		}
		for _, d := range emb.Edges {
			b.set.tup = append(b.set.tup, int32(d))
		}
		b.set.n++
	}
	return b.done()
}

// popcount of a word span (used by the MIS solver's bounds).
func onesCount(ws []uint64) int {
	n := 0
	for _, w := range ws {
		n += bits.OnesCount64(w)
	}
	return n
}
