// Package mining implements frequent-subgraph mining on directed labeled
// multigraphs: DgSpan, a directed-graph extension of gSpan (Yan & Han,
// ICDM 2002), and Edgar, the paper's embedding-based extension that counts
// non-overlapping embeddings via maximum independent sets in a collision
// graph and applies PA-specific pruning (paper §3.3–3.5).
package mining

import "sort"

// Graph is a directed labeled multigraph, the miner's input. For
// procedural abstraction a Graph is the dependence graph of one basic
// block: node labels are canonical instruction texts, edge labels encode
// the dependence kind and register.
type Graph struct {
	ID     int
	Labels []string
	Edges  []GEdge

	adj [][]half // built lazily by Freeze
}

// GEdge is one directed edge.
type GEdge struct {
	From, To int
	Label    string
}

// half is one adjacency entry: the edge seen from one endpoint.
type half struct {
	other int
	eid   int
	out   bool // true when the edge leaves this node
	label string
}

// Freeze builds adjacency structures; it must be called (once) before
// mining. Mining never mutates the graph afterwards.
func (g *Graph) Freeze() {
	g.adj = make([][]half, len(g.Labels))
	for i, e := range g.Edges {
		g.adj[e.From] = append(g.adj[e.From], half{other: e.To, eid: i, out: true, label: e.Label})
		g.adj[e.To] = append(g.adj[e.To], half{other: e.From, eid: i, out: false, label: e.Label})
	}
	// Deterministic order regardless of construction order.
	for _, hs := range g.adj {
		sort.Slice(hs, func(a, b int) bool {
			if hs[a].eid != hs[b].eid {
				return hs[a].eid < hs[b].eid
			}
			return hs[a].out && !hs[b].out
		})
	}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Labels) }
