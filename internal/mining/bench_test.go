package mining

import "testing"

// BenchmarkMineRunningExample measures the miner on the paper's Fig. 2
// graph replicated across a small database.
func BenchmarkMineRunningExample(b *testing.B) {
	var graphs []*Graph
	for i := 0; i < 16; i++ {
		graphs = append(graphs, runningExample(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		Mine(graphs, Config{MinSupport: 2, EmbeddingSupport: true, MaxNodes: 6}, func(p *Pattern) { n++ })
		if n == 0 {
			b.Fatal("nothing mined")
		}
	}
}

// BenchmarkExactMIS measures the independent-set solver on a chain of
// overlapping embeddings.
func BenchmarkExactMIS(b *testing.B) {
	var embs []*Embedding
	for i := 0; i < 20; i++ {
		embs = append(embs, &Embedding{GID: 0, Nodes: []int{i, i + 1, i + 2}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := DisjointEmbeddings(embs, Config{}); len(got) == 0 {
			b.Fatal("empty MIS")
		}
	}
}
