package mining

import (
	"sort"
	"strings"
)

// Multiresolution coarsening (Huntsman, "The multiresolution analysis of
// flow graphs"): contract each mining graph to a much smaller coarse
// graph by (a) collapsing node labels to instruction classes and edge
// labels to dependence-kind classes, and (b) contracting straight-line
// single-successor/single-predecessor chains into supernodes. The coarse
// lattice is mined exhaustively and its results steer the fine walk:
// pattern classes that score well coarse are descended first, and a
// per-graph capacity table derived from the contraction yields an
// admissible upper bound on the fine MIS support of any pattern by the
// class of its newest DFS tuple (see Coarsening.Caps).
//
// Coarsening is a pure function of the input graph: same graph in, same
// coarse graph, projection and capacity table out, independent of any
// mining state. That purity is load-bearing — the pa layer caches the
// result per frozen graph object and feeds it into bounds that
// participate in cross-round checkpoint validation, which is only sound
// if the bound is a function of the pinned graph alone.

// TupleClass is the coarsened identity of one DFS-code tuple: the
// instruction classes of the edge's endpoints in underlying-edge
// direction (from → to, normalising away the DFS Out flag) and the
// dependence-kind class of the edge label.
type TupleClass struct {
	From, To string
	LE       string
}

// LabelClass coarsens a node label to its instruction class: the
// mnemonic head before the first space ("eor r1, r2, r3" → "eor").
func LabelClass(s string) string {
	if i := strings.IndexByte(s, ' '); i >= 0 {
		return s[:i]
	}
	return s
}

// EdgeClass coarsens an edge label to its dependence-kind class: each
// '+'-separated part keeps only the kind before the ':' register suffix
// ("raw:r3+war:r3" → "raw+war"), deduplicated and sorted so bundling
// order cannot leak through.
func EdgeClass(s string) string {
	if !strings.ContainsAny(s, ":+") {
		return s
	}
	parts := strings.Split(s, "+")
	for i, p := range parts {
		if j := strings.IndexByte(p, ':'); j >= 0 {
			parts[i] = p[:j]
		}
	}
	sort.Strings(parts)
	out := parts[:1]
	for _, p := range parts[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return strings.Join(out, "+")
}

// ClassOfTuple projects a DFS tuple to its class. The Out flag is folded
// into the from/to orientation so that the two DFS spellings of the same
// underlying directed edge share one class.
func ClassOfTuple(t Tuple) TupleClass {
	li, lj, le := LabelClass(t.LI), LabelClass(t.LJ), EdgeClass(t.LE)
	if t.Out {
		return TupleClass{From: li, To: lj, LE: le}
	}
	return TupleClass{From: lj, To: li, LE: le}
}

// Coarsening is the result of contracting one fine graph.
type Coarsening struct {
	// Graph is the coarse graph: one node per supernode, labelled with
	// the sorted '|'-joined set of member instruction classes, and one
	// edge per distinct (from-supernode, to-supernode, edge-class)
	// location. It is frozen and ready to mine.
	Graph *Graph
	// Proj maps each fine node to its supernode.
	Proj []int32
	// Size is the fine node count of each supernode.
	Size []int32
	// Caps bounds, per tuple class, the size of any set of node-disjoint
	// fine edges of that class — a matching among the class's edges. It
	// is the least of three admissible bounds: the class's edge count;
	// ⌊|incident nodes|/2⌋ (each matched edge consumes two distinct
	// incident nodes); and the location sum, where each supernode with an
	// internal edge of the class contributes ⌊size/2⌋ and each coarse
	// location (c1,c2) carrying the class contributes min(size(c1),
	// size(c2)). Because every node-disjoint embedding set of a pattern
	// pins node-disjoint instances of EVERY edge in the pattern's code,
	// Caps[class] is an admissible upper bound on the MIS support, in
	// this graph, of every pattern containing a tuple of that class —
	// and of every descendant, since extensions keep all tuples — so a
	// pattern is bounded by the min over its code's classes. No division
	// by within-embedding multiplicity is sound: tuple instances inside
	// one embedding may share nodes, so only cross-embedding
	// disjointness can be counted.
	Caps map[TupleClass]int
}

// Coarsen contracts g. The result is deterministic: supernodes are
// numbered by their smallest fine member, members are merged by a single
// index-order scan, and coarse edges are sorted before Freeze.
func Coarsen(g *Graph) *Coarsening {
	n := g.NumNodes()
	cls := make([]string, n)
	for i, l := range g.Labels {
		cls[i] = LabelClass(l)
	}

	// Degree census on the fine graph (parallel edges count separately:
	// a node with two out-edges is not a chain link even if both reach
	// the same successor).
	outDeg := make([]int32, n)
	inDeg := make([]int32, n)
	succ := make([]int32, n) // sole successor when outDeg==1
	for _, e := range g.Edges {
		outDeg[e.From]++
		inDeg[e.To]++
		succ[e.From] = int32(e.To)
	}

	// Union straight-line chain links u→v: u's only out-edge reaches v,
	// and that edge is v's only in-edge. Scanning fine nodes in index
	// order makes the partition deterministic.
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for u := 0; u < n; u++ {
		if outDeg[u] != 1 {
			continue
		}
		v := succ[u]
		if inDeg[v] != 1 || int32(u) == v {
			continue
		}
		ru, rv := find(int32(u)), find(v)
		if ru != rv {
			// Root at the smaller index so numbering stays stable.
			if ru < rv {
				parent[rv] = ru
			} else {
				parent[ru] = rv
			}
		}
	}

	// Number supernodes by smallest fine member.
	proj := make([]int32, n)
	size := []int32{}
	index := make(map[int32]int32, n)
	for i := 0; i < n; i++ {
		r := find(int32(i))
		c, ok := index[r]
		if !ok {
			c = int32(len(size))
			index[r] = c
			size = append(size, 0)
		}
		proj[i] = c
		size[c]++
	}

	// Supernode labels: sorted '|'-joined distinct member classes.
	members := make([][]string, len(size))
	for i := 0; i < n; i++ {
		members[proj[i]] = append(members[proj[i]], cls[i])
	}
	labels := make([]string, len(size))
	for c, ms := range members {
		sort.Strings(ms)
		out := ms[:1]
		for _, m := range ms[1:] {
			if m != out[len(out)-1] {
				out = append(out, m)
			}
		}
		labels[c] = strings.Join(out, "|")
	}

	// Classify fine edges into internal (both endpoints one supernode)
	// and crossing locations, accumulating the capacity table.
	type loc struct {
		c1, c2 int32
		ct     TupleClass
	}
	locSum := make(map[TupleClass]int)     // per-location capacity sum
	edgeCount := make(map[TupleClass]int)  // class edge instances
	incident := make(map[TupleClass]int)   // distinct nodes touching the class
	incSeen := make(map[[2]int32]bool)     // (node, class index) dedup
	classIdx := make(map[TupleClass]int32) // dense class numbering for incSeen
	internalSeen := make(map[loc]bool)     // c1==c2 entries: internal class presence
	crossSeen := make(map[loc]bool)
	var coarseEdges []GEdge
	for _, e := range g.Edges {
		ct := TupleClass{From: cls[e.From], To: cls[e.To], LE: EdgeClass(e.Label)}
		ci, ok := classIdx[ct]
		if !ok {
			ci = int32(len(classIdx))
			classIdx[ct] = ci
		}
		edgeCount[ct]++
		for _, v := range [2]int{e.From, e.To} {
			k := [2]int32{int32(v), ci}
			if !incSeen[k] {
				incSeen[k] = true
				incident[ct]++
			}
		}
		c1, c2 := proj[e.From], proj[e.To]
		if c1 == c2 {
			k := loc{c1, c1, ct}
			if !internalSeen[k] {
				internalSeen[k] = true
				locSum[ct] += int(size[c1]) / 2
			}
			continue
		}
		k := loc{c1, c2, ct}
		if !crossSeen[k] {
			crossSeen[k] = true
			locSum[ct] += int(min32(size[c1], size[c2]))
			coarseEdges = append(coarseEdges, GEdge{From: int(c1), To: int(c2), Label: ct.LE})
		}
	}
	caps := make(map[TupleClass]int, len(edgeCount))
	for ct, n := range edgeCount {
		c := n
		if m := incident[ct] / 2; m < c {
			c = m
		}
		if locSum[ct] < c {
			c = locSum[ct]
		}
		caps[ct] = c
	}
	// Distinct (from, to, label) coarse edges in deterministic order.
	sort.Slice(coarseEdges, func(a, b int) bool {
		if coarseEdges[a].From != coarseEdges[b].From {
			return coarseEdges[a].From < coarseEdges[b].From
		}
		if coarseEdges[a].To != coarseEdges[b].To {
			return coarseEdges[a].To < coarseEdges[b].To
		}
		return coarseEdges[a].Label < coarseEdges[b].Label
	})
	dedup := coarseEdges[:0]
	for _, e := range coarseEdges {
		if len(dedup) > 0 && dedup[len(dedup)-1] == e {
			continue
		}
		dedup = append(dedup, e)
	}

	cg := &Graph{ID: g.ID, Labels: labels, Edges: dedup}
	cg.Freeze()
	return &Coarsening{Graph: cg, Proj: proj, Size: size, Caps: caps}
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
