package mining

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// The benefit-directed walk changes WHICH lattice nodes are visited (that
// is its purpose) but must not change what a branch-and-bound consumer
// mines. These tests drive Mine with a pa-style scalar-incumbent policy —
// admissible upper bounds, strictly-less pruning, ties kept — under both
// sibling orders and demand the identical final (best, tie set). They
// also pin misUpperBound's admissibility, the property every prune above
// rests on.

// bbHarness is the miniature branch-and-bound consumer: benefit
// (m-1)*(k-1) — pa's cross-jump polynomial, monotone in both arguments —
// with the incumbent under a mutex, since in parallel mode the advisory
// closures run on speculation workers.
type bbHarness struct {
	mu   sync.Mutex
	maxK int
	best int
	ties map[string]bool
	vis  int
}

func (h *bbHarness) ub(m int) int { return (m - 1) * (h.maxK - 1) }

func (h *bbHarness) snapshot() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.best
}

func (h *bbHarness) config(graphs []*Graph, lex bool, workers int) Config {
	cfg := Config{
		MinSupport:       2,
		MaxNodes:         h.maxK,
		EmbeddingSupport: true,
		Workers:          workers,
		Lexicographic:    lex,
		// Admissible: a descendant's disjoint-set size never exceeds the
		// ancestor's MIS (restriction of disjoint embeddings), and
		// misUpperBound dominates the child subtree's MIS.
		PruneSubtree: func(p *Pattern) bool { return h.ub(p.Support) < h.snapshot() },
		ViableCount:  func(count int) bool { return h.ub(count) >= h.snapshot() },
	}
	if !lex {
		cfg.PruneChild = func(set *EmbSet, bound int) bool { return h.ub(bound) < h.snapshot() }
	}
	return cfg
}

func (h *bbHarness) run(t *testing.T, graphs []*Graph, lex bool, workers int) {
	t.Helper()
	h.best, h.ties, h.vis = 0, map[string]bool{}, 0
	h.vis = Mine(graphs, h.config(graphs, lex, workers), func(p *Pattern) {
		k := p.Code.NumNodes()
		if k < 2 {
			return
		}
		ben := (len(p.Disjoint) - 1) * (k - 1)
		if ben <= 0 {
			return
		}
		h.mu.Lock()
		if ben > h.best {
			h.best = ben
			h.ties = map[string]bool{}
		}
		if ben == h.best {
			h.ties[p.Code.Key()] = true
		}
		h.mu.Unlock()
	})
}

func tieKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func runBestFirstEquivalence(t *testing.T, name string, graphs []*Graph) {
	t.Helper()
	h := &bbHarness{maxK: 5}
	h.run(t, graphs, true, 1)
	wantBest, wantTies := h.best, tieKeys(h.ties)
	visRef := map[bool]int{}
	for _, lex := range []bool{true, false} {
		for _, workers := range []int{1, 8} {
			h.run(t, graphs, lex, workers)
			if h.best != wantBest {
				t.Fatalf("%s lex=%v w=%d: incumbent %d, want %d", name, lex, workers, h.best, wantBest)
			}
			if got := tieKeys(h.ties); fmt.Sprint(got) != fmt.Sprint(wantTies) {
				t.Fatalf("%s lex=%v w=%d: tie set %v, want %v", name, lex, workers, got, wantTies)
			}
			// Within one order, the visit count must not depend on workers
			// (between orders it differs — that difference is the point).
			if v, ok := visRef[lex]; !ok {
				visRef[lex] = h.vis
			} else if h.vis != v {
				t.Fatalf("%s lex=%v w=%d: %d visits, want %d", name, lex, workers, h.vis, v)
			}
		}
	}
}

func TestBestFirstMatchesLexicographic(t *testing.T) {
	for name, graphs := range testGraphSets() {
		runBestFirstEquivalence(t, name, graphs)
	}
}

func TestBestFirstMatchesLexicographicRandom(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	nodeLabels := []string{"a", "b", "c"}
	edgeLabels := []string{"x", "y"}
	for trial := 0; trial < 25; trial++ {
		var graphs []*Graph
		for i := 0; i < 3; i++ {
			graphs = append(graphs, randDAG(r, i, 5+r.Intn(6), 6+r.Intn(10), nodeLabels, edgeLabels))
		}
		runBestFirstEquivalence(t, fmt.Sprintf("trial%d", trial), graphs)
	}
}

// TestMISUpperBoundAdmissible: the bound must dominate the exact MIS of
// the pattern itself AND of every child (the subtree property the child
// prune relies on). The walk supplies parent/child pairs: a minimal DFS
// code's prefix is its parent's minimal code.
func TestMISUpperBoundAdmissible(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	nodeLabels := []string{"a", "b"}
	edgeLabels := []string{"x", "y"}
	for trial := 0; trial < 15; trial++ {
		var graphs []*Graph
		for i := 0; i < 3; i++ {
			graphs = append(graphs, randDAG(r, i, 5+r.Intn(5), 6+r.Intn(8), nodeLabels, edgeLabels))
		}
		bounds := map[string]int{}
		cfg := Config{MinSupport: 2, MaxNodes: 5, EmbeddingSupport: true, Lexicographic: true}
		Mine(graphs, cfg, func(p *Pattern) {
			mis := len(p.Disjoint)
			b := MISUpperBound(p.Embeddings)
			if b < mis {
				t.Fatalf("trial %d: bound %d below exact MIS %d for %s", trial, b, mis, p.Code.Key())
			}
			bounds[p.Code.Key()] = b
			if len(p.Code) > 1 {
				parent := p.Code[:len(p.Code)-1]
				if pb, ok := bounds[parent.Key()]; ok && mis > pb {
					t.Fatalf("trial %d: child %s MIS %d exceeds parent bound %d", trial, p.Code.Key(), mis, pb)
				}
			}
		})
	}
}
