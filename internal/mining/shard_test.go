package mining

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// shardConfigs are the search configurations the remote-speculation
// differentials run under — the same matrix the in-process parallel
// tests use.
func shardConfigs() map[string]Config {
	return map[string]Config{
		"graph-support":     {MinSupport: 2},
		"embedding-support": {MinSupport: 2, EmbeddingSupport: true},
		"capped":            {MinSupport: 2, EmbeddingSupport: true, MaxNodes: 3},
		"greedy-mis":        {MinSupport: 2, EmbeddingSupport: true, GreedyMIS: true},
	}
}

// newTestShard stands up one in-process "shard worker": the graphs go
// through the full wire round trip (EncodeGraphs → EncodeShardWalk →
// DecodeShardWalk), so the session mines decoded copies exactly as a
// remote process would.
func newTestShard(t *testing.T, graphs []*Graph, cfg Config, floor int, ub []int) *SpecSession {
	t.Helper()
	sc := SpecConfig{
		MinSupport:       cfg.MinSupport,
		MaxNodes:         cfg.MaxNodes,
		MISExactLimit:    cfg.MISExactLimit,
		MaxPatterns:      cfg.MaxPatterns,
		EmbeddingSupport: cfg.EmbeddingSupport,
		GreedyMIS:        cfg.GreedyMIS,
		Lexicographic:    cfg.Lexicographic,
		Floor:            floor,
		UB:               ub,
	}
	dsc, dgs, err := DecodeShardWalk(EncodeShardWalk(sc, EncodeGraphs(graphs)))
	if err != nil {
		t.Fatalf("shard walk round trip: %v", err)
	}
	if fmt.Sprintf("%+v", dsc) != fmt.Sprintf("%+v", sc) {
		t.Fatalf("SpecConfig round trip: got %+v want %+v", dsc, sc)
	}
	return NewSpecSession(dgs, sc)
}

// TestGraphsCodecRoundTrip: the graph wire format must reproduce IDs,
// labels and edges exactly, re-encode to identical bytes, and yield the
// same canonical seed list — the invariant the consistent shard
// assignment rests on.
func TestGraphsCodecRoundTrip(t *testing.T) {
	for name, graphs := range testGraphSets() {
		enc := EncodeGraphs(graphs)
		dec, err := DecodeGraphs(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if len(dec) != len(graphs) {
			t.Fatalf("%s: decoded %d graphs, want %d", name, len(dec), len(graphs))
		}
		for i, g := range graphs {
			d := dec[i]
			if d.ID != g.ID || fmt.Sprint(d.Labels) != fmt.Sprint(g.Labels) || fmt.Sprint(d.Edges) != fmt.Sprint(g.Edges) {
				t.Fatalf("%s: graph %d differs after round trip", name, i)
			}
		}
		if !bytes.Equal(EncodeGraphs(dec), enc) {
			t.Fatalf("%s: re-encode is not byte-identical", name)
		}
		a, b := seedPatterns(graphs), seedPatterns(dec)
		if len(a) != len(b) {
			t.Fatalf("%s: seed counts differ: %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if CompareTuples(a[i].t, b[i].t) != 0 || !a[i].set.EqualData(b[i].set) {
				t.Fatalf("%s: seed %d differs after round trip", name, i)
			}
		}
	}
}

// TestSpecTreeCodecRoundTrip: a recorded subtree must survive
// encode → decode → re-encode byte-identically.
func TestSpecTreeCodecRoundTrip(t *testing.T) {
	graphs := testGraphSets()["running-example"]
	for cname, cfg := range shardConfigs() {
		sess := newTestShard(t, graphs, cfg, 0, nil)
		roots := seedPatterns(graphs)
		byID := map[int]*Graph{}
		for _, g := range graphs {
			byID[g.ID] = g
		}
		graphOf := func(id int) *Graph { return byID[id] }
		for i := range roots {
			enc, err := sess.MineSeed(context.Background(), i)
			if err != nil {
				t.Fatalf("%s: MineSeed(%d): %v", cname, i, err)
			}
			root, err := decodeSpecTree(enc, Code{roots[i].t}, roots[i].set, graphOf)
			if err != nil {
				t.Fatalf("%s: decode seed %d: %v", cname, i, err)
			}
			if !bytes.Equal(encodeSpecTree(root), enc) {
				t.Fatalf("%s: seed %d re-encode is not byte-identical", cname, i)
			}
		}
	}
}

// TestRemoteSpecMatchesSerial: a walk whose speculation is sourced from
// a shard session over wire-round-tripped graphs must reproduce the
// serial visit sequence exactly, at any local worker width.
func TestRemoteSpecMatchesSerial(t *testing.T) {
	for gname, graphs := range testGraphSets() {
		for cname, cfg := range shardConfigs() {
			serial := mineTrace(graphs, cfg)
			for _, workers := range []int{1, 8} {
				sess := newTestShard(t, graphs, cfg, 0, nil)
				rcfg := cfg
				rcfg.Workers = workers
				rcfg.RemoteSpec = sess.MineSeed
				got := mineTrace(graphs, rcfg)
				assertSameTrace(t, fmt.Sprintf("%s/%s/w%d", gname, cname, workers), serial, got)
				if sess.Visits() == 0 {
					t.Fatalf("%s/%s/w%d: shard session reported no speculative visits", gname, cname, workers)
				}
			}
		}
	}
}

// TestRemoteSpecTruncation: the MaxPatterns budget must cut a
// remote-speculated walk at exactly the serial truncation point, even
// though the shard spends its own speculation budget in a different
// order than local workers would.
func TestRemoteSpecTruncation(t *testing.T) {
	graphs := testGraphSets()["replicated"]
	for _, budget := range []int{1, 3, 7, 20} {
		cfg := Config{MinSupport: 2, EmbeddingSupport: true, MaxPatterns: budget}
		serial := mineTrace(graphs, cfg)
		sess := newTestShard(t, graphs, cfg, 0, nil)
		cfg.RemoteSpec = sess.MineSeed
		got := mineTrace(graphs, cfg)
		assertSameTrace(t, fmt.Sprintf("budget=%d", budget), serial, got)
	}
}

// TestRemoteSpecStatefulIncumbent mimics the PA search against a shard
// whose advisory floor is fed by gossip, stale, or absent entirely. The
// shard cannot evaluate the coordinator's pruning closures, so its
// recorded trees always differ from local speculation — replay fallback
// must absorb every gap bit-for-bit.
func TestRemoteSpecStatefulIncumbent(t *testing.T) {
	graphs := testGraphSets()["replicated"]
	run := func(remote func(*incumbent) func(ctx context.Context, seed int) ([]byte, error)) []string {
		s := &incumbent{}
		var out []string
		cfg := Config{
			MinSupport:       2,
			EmbeddingSupport: true,
			PruneSubtree:     func(p *Pattern) bool { return s.bound() > 3*p.Support },
			ViableCount:      func(c int) bool { return s.bound() <= 4*c },
		}
		if remote != nil {
			cfg.RemoteSpec = remote(s)
		}
		Mine(graphs, cfg, func(p *Pattern) {
			out = append(out, trace(p))
			s.raise(p.Support + p.Code.NumNodes())
		})
		return out
	}
	serial := run(nil)
	if len(serial) == 0 {
		t.Fatal("serial stateful search mined nothing")
	}
	remotes := map[string]func(s *incumbent) func(ctx context.Context, seed int) ([]byte, error){
		// No floor, no UB table: the shard records everything (maximum
		// wasted exploration, zero fallback).
		"no-floor": func(*incumbent) func(ctx context.Context, seed int) ([]byte, error) {
			sess := newTestShard(t, graphs, Config{MinSupport: 2, EmbeddingSupport: true}, 0, nil)
			return sess.MineSeed
		},
		// A hostile floor with a tiny UB table: the shard prunes almost
		// everything (maximum replay fallback).
		"over-prune": func(*incumbent) func(ctx context.Context, seed int) ([]byte, error) {
			sess := newTestShard(t, graphs, Config{MinSupport: 2, EmbeddingSupport: true}, 1<<30, make([]int, 64))
			return sess.MineSeed
		},
		// Live gossip: every seed request first pushes the coordinator's
		// current incumbent, so the shard prunes against stale-but-real
		// bounds exactly as the distributed path does.
		"gossip": func(s *incumbent) func(ctx context.Context, seed int) ([]byte, error) {
			ub := make([]int, 256)
			for m := range ub {
				ub[m] = 4 * m // matches ViableCount's shape; PruneSubtree stays shard-blind
			}
			sess := newTestShard(t, graphs, Config{MinSupport: 2, EmbeddingSupport: true}, 0, ub)
			return func(ctx context.Context, seed int) ([]byte, error) {
				sess.SetFloor(s.bound())
				return sess.MineSeed(ctx, seed)
			}
		},
	}
	for name, remote := range remotes {
		got := run(remote)
		assertSameTrace(t, name, serial, got)
	}
}

// TestRemoteSpecFaultFallback: failing shard calls — some seeds, all
// seeds, or corrupt payloads — must degrade to local speculation with
// unchanged output, and the accounting hook must see every fallback.
func TestRemoteSpecFaultFallback(t *testing.T) {
	graphs := testGraphSets()["replicated"]
	cfg := Config{MinSupport: 2, EmbeddingSupport: true}
	serial := mineTrace(graphs, cfg)
	nseeds := len(seedPatterns(graphs))

	cases := map[string]struct {
		remote        func(sess *SpecSession) func(ctx context.Context, seed int) ([]byte, error)
		wantFallbacks int
	}{
		"every-other-seed-dies": {
			remote: func(sess *SpecSession) func(ctx context.Context, seed int) ([]byte, error) {
				return func(ctx context.Context, seed int) ([]byte, error) {
					if seed%2 == 1 {
						return nil, errors.New("shard down")
					}
					return sess.MineSeed(ctx, seed)
				}
			},
			wantFallbacks: nseeds / 2,
		},
		"all-seeds-die": {
			remote: func(*SpecSession) func(ctx context.Context, seed int) ([]byte, error) {
				return func(context.Context, int) ([]byte, error) { return nil, errors.New("shard down") }
			},
			wantFallbacks: nseeds,
		},
		"corrupt-payload": {
			remote: func(sess *SpecSession) func(ctx context.Context, seed int) ([]byte, error) {
				return func(ctx context.Context, seed int) ([]byte, error) {
					data, err := sess.MineSeed(ctx, seed)
					if err != nil || len(data) < 8 {
						return data, err
					}
					return data[:len(data)/2], nil // truncate mid-tree
				}
			},
			wantFallbacks: nseeds,
		},
	}
	for name, tc := range cases {
		var mu sync.Mutex
		gotSeeds, gotTrees, gotFB := 0, 0, 0
		sess := newTestShard(t, graphs, cfg, 0, nil)
		rcfg := cfg
		rcfg.RemoteSpec = tc.remote(sess)
		rcfg.NoteRemoteSpec = func(seeds, subtrees, fallbacks int) {
			mu.Lock()
			gotSeeds, gotTrees, gotFB = seeds, subtrees, fallbacks
			mu.Unlock()
		}
		got := mineTrace(graphs, rcfg)
		assertSameTrace(t, name, serial, got)
		if gotSeeds != nseeds || gotFB != tc.wantFallbacks || gotTrees != nseeds-tc.wantFallbacks {
			t.Errorf("%s: accounting seeds=%d subtrees=%d fallbacks=%d; want %d/%d/%d",
				name, gotSeeds, gotTrees, gotFB, nseeds, nseeds-tc.wantFallbacks, tc.wantFallbacks)
		}
	}
}

// TestShardDecodeRejectsCorruption: decoding hostile bytes must fail
// with an error — never panic, never index out of range — for every
// truncation point and every single-byte corruption of valid payloads.
func TestShardDecodeRejectsCorruption(t *testing.T) {
	graphs := testGraphSets()["running-example"]
	roots := seedPatterns(graphs)
	byID := map[int]*Graph{}
	for _, g := range graphs {
		byID[g.ID] = g
	}
	graphOf := func(id int) *Graph { return byID[id] }
	sess := newTestShard(t, graphs, Config{MinSupport: 2, EmbeddingSupport: true}, 0, nil)
	tree, err := sess.MineSeed(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	genc := EncodeGraphs(graphs)
	wenc := EncodeShardWalk(SpecConfig{MinSupport: 2, EmbeddingSupport: true}, genc)

	// Truncations must always error: every payload length is implied by
	// its contents.
	for n := 0; n < len(tree); n++ {
		if _, err := decodeSpecTree(tree[:n], Code{roots[0].t}, roots[0].set, graphOf); err == nil {
			t.Fatalf("spec tree truncated to %d bytes decoded without error", n)
		}
	}
	for n := 0; n < len(genc); n++ {
		if _, err := DecodeGraphs(genc[:n]); err == nil {
			t.Fatalf("graphs truncated to %d bytes decoded without error", n)
		}
	}
	for n := 0; n < len(wenc); n++ {
		if _, _, err := DecodeShardWalk(wenc[:n]); err == nil {
			t.Fatalf("walk truncated to %d bytes decoded without error", n)
		}
	}
	// Bit flips may decode to a different-but-well-formed payload (the
	// trust model leaves semantics to replay); the requirement here is
	// only that they never panic.
	for i := range tree {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), tree...)
			mut[i] ^= flip
			decodeSpecTree(mut, Code{roots[0].t}, roots[0].set, graphOf)
		}
	}
	for i := range wenc {
		mut := append([]byte(nil), wenc...)
		mut[i] ^= 0xff
		DecodeShardWalk(mut)
	}
}

// TestSpecSessionFloor: floor pushes must be monotone — stale values
// are rejected and reported as such.
func TestSpecSessionFloor(t *testing.T) {
	sess := newTestShard(t, testGraphSets()["chains"], Config{MinSupport: 2}, 10, nil)
	if sess.SetFloor(5) {
		t.Error("stale floor push (5 over 10) reported as applied")
	}
	if !sess.SetFloor(20) {
		t.Error("raising floor push (20 over 10) reported as stale")
	}
	if sess.SetFloor(20) {
		t.Error("repeat floor push reported as applied")
	}
	if sess.NumSeeds() == 0 {
		t.Error("session reports no seeds")
	}
	if _, err := sess.MineSeed(context.Background(), -1); err == nil {
		t.Error("negative seed index accepted")
	}
	if _, err := sess.MineSeed(context.Background(), sess.NumSeeds()); err == nil {
		t.Error("out-of-range seed index accepted")
	}
}
