package mining

import (
	"context"
	"errors"
	"slices"
	"sync"
	"sync/atomic"

	"graphpa/internal/par"
)

// This file parallelises the lattice search without giving up the serial
// search's exact visit sequence. The problem: the profitable search is
// stateful — PruneSubtree and ViableCount consult an incumbent that the
// visitor itself updates, so which subtrees get cut depends on visit
// order, and naive fan-out would change the mined output. The solution
// is speculate-then-replay: each 1-edge seed's subtree is mined on a
// worker using advisory (possibly stale) policy callbacks, recording the
// explored lattice as a tree of specNodes; a single consumer then
// replays the recorded trees in canonical seed order running the real
// control flow against the authoritative state. Everything recorded is
// state-independent (pattern construction, support/MIS, extension
// grouping, deduplication, minimality), so replay only re-checks the
// state-dependent decisions; wherever speculation explored too little —
// a subtree it pruned but the authoritative policy would enter, or an
// extension group it skipped — replay falls back to mining that part
// live. Correctness therefore never depends on the speculation policy;
// only the amount of redundant work does.

// Speculator is the per-worker policy of the speculative phase. All
// callbacks are optional.
type Speculator struct {
	// Visit observes each speculatively-explored frequent pattern. It
	// runs concurrently with other workers and with the authoritative
	// replay, so it must not mutate state the authoritative path reads
	// without its own synchronisation. Typical use: memoise expensive
	// pure by-products (independent sets, validated candidates) keyed by
	// the *Pattern, which replay later receives by pointer.
	Visit func(*Pattern)
	// PruneSubtree advises against descending below a pattern. A stale
	// or aggressive answer costs replay fallback work, never output.
	PruneSubtree func(*Pattern) bool
	// ViableCount advises on materialising an extension group.
	ViableCount func(count int) bool
	// PruneChild advises against descending into a materialised child,
	// given its embedding set and misUpperBound — the advisory twin of
	// Config.PruneChild. A stale or aggressive answer costs replay
	// fallback work, never output.
	PruneChild func(set *EmbSet, bound int) bool
	// SkipSubtree advises that the subtree below p is already covered by
	// the caller's cross-run checkpoint, so the authoritative replay will
	// likely fast-forward it; the speculator then records nothing below
	// p. Purely advisory: a wrong answer costs fallback work, never
	// output.
	SkipSubtree func(*Pattern) bool
}

// specNode records one speculatively-explored lattice node.
type specNode struct {
	p        *Pattern
	expanded bool // extensions were enumerated (exts is meaningful)
	exts     []specExt
}

// specExt records one extension group of an expanded node, in the order
// the serial walk would descend them: benefit-directed (bound desc, then
// tuple) among the materialised groups by default, pure tuple order under
// Config.Lexicographic. Bounds are pure functions of the child sets, so
// speculation and the serial walk compute identical orders.
type specExt struct {
	t            Tuple
	rawCount     int       // pass-1 candidate count (state-independent)
	materialized bool      // pass 2 was run during speculation
	dropped      bool      // materialised but deduplication fell below MinSupport
	minimal      bool      // child code passed the minimal-DFS-code test
	bound        int       // misUpperBound of set, ChildBound-tightened (when Config.needBounds)
	score        int       // Config.ChildScore order hint
	set          *EmbSet   // child embeddings (materialised, not dropped)
	child        *specNode // recorded subtree (minimal children, unless speculation stopped)
}

// cmpSpecExt orders a node's recorded extensions the way the serial
// benefit-directed expand visits its kids: materialised sets by cmpExt,
// everything without a set (unmaterialised or dropped — entries the
// serial kid list never contains) after them in tuple order.
func cmpSpecExt(a, b specExt) int {
	am, bm := a.set != nil, b.set != nil
	if am != bm {
		if am {
			return -1
		}
		return 1
	}
	if am && a.bound != b.bound {
		return b.bound - a.bound
	}
	if am && a.score != b.score {
		return b.score - a.score
	}
	return CompareTuples(a.t, b.t)
}

// errAbort signals MaxPatterns truncation out of the ordered fan-in.
var errAbort = errors.New("mining: pattern budget exhausted")

// mineParallel runs the speculate-then-replay pipeline: one producer job
// per seed subtree, consumed (replayed) in canonical seed order. With
// cfg.RemoteSpec the producers fetch shard-recorded subtrees instead of
// speculating locally; a failed fetch or decode degrades that seed to
// local speculation, so the replay consumer never sees the difference.
func mineParallel(graphOf func(int) *Graph, roots []*ext, cfg Config, visit func(*Pattern)) int {
	auth := &miner{cfg: cfg, graphOf: graphOf, visit: visit}
	budget := &specBudget{max: int64(cfg.MaxPatterns)}
	width := cfg.Workers
	if cfg.RemoteSpec != nil && width < 8 {
		// Remote producers spend their time blocked on shard RPCs, not on
		// CPU: keep enough seed requests in flight to cover the round-trip
		// latency regardless of the local worker setting.
		width = 8
	}
	var remSeeds, remTrees, remFallbacks atomic.Int64
	err := par.OrderedMap(context.Background(), width, len(roots),
		func(ctx context.Context, i int) (*specNode, error) {
			if cfg.RemoteSpec != nil {
				remSeeds.Add(1)
				if data, err := cfg.RemoteSpec(ctx, i); err == nil {
					if root, derr := decodeSpecTree(data, Code{roots[i].t}, roots[i].set, graphOf); derr == nil {
						remTrees.Add(1)
						return root, nil
					}
				}
				// Count real shard failures only: a cancelled walk makes
				// every in-flight RPC error, and those seeds' local
				// speculation is a no-op anyway (budgetLeft sees ctx.Err).
				if ctx.Err() == nil {
					remFallbacks.Add(1)
				}
			}
			s := newSpeculator(ctx, cfg, graphOf, budget)
			return s.mine(Code{roots[i].t}, roots[i].set), nil
		},
		func(i int, root *specNode) error {
			auth.replay(root)
			if auth.aborted {
				return errAbort
			}
			return nil
		})
	if cfg.RemoteSpec != nil && cfg.NoteRemoteSpec != nil {
		cfg.NoteRemoteSpec(int(remSeeds.Load()), int(remTrees.Load()), int(remFallbacks.Load()))
	}
	if err != nil && !errors.Is(err, errAbort) {
		// Producers and the replay consumer return no other error, and
		// worker panics re-raise inside OrderedMap.
		panic(err)
	}
	if auth.aborted && cfg.NoteTruncated != nil {
		cfg.NoteTruncated()
	}
	return auth.visited
}

// specBudget caps total speculative visits across all workers at the
// global MaxPatterns: the authoritative replay truncates there, so any
// speculation past it is guaranteed waste. Shared and monotone — seeds
// are speculated in roughly replay order, so the visits that fit the
// budget are roughly the ones replay will consume.
type specBudget struct {
	mu  sync.Mutex
	n   int64
	max int64 // <= 0: unlimited
}

func (b *specBudget) spend() bool {
	if b.max <= 0 {
		return true
	}
	b.mu.Lock()
	b.n++
	ok := b.n <= b.max
	b.mu.Unlock()
	return ok
}

// speculator mines one seed subtree on a worker. It owns a private miner
// (scratch marks) and shares the global speculation budget.
type speculator struct {
	ctx     context.Context
	mn      miner
	sp      Speculator
	budget  *specBudget
	stopped bool
}

func newSpeculator(ctx context.Context, cfg Config, graphOf func(int) *Graph, budget *specBudget) *speculator {
	s := &speculator{ctx: ctx, budget: budget}
	s.mn = miner{cfg: cfg, graphOf: graphOf}
	if cfg.NewSpeculator != nil {
		if sp := cfg.NewSpeculator(); sp != nil {
			s.sp = *sp
		}
	} else {
		s.sp = Speculator{PruneSubtree: cfg.PruneSubtree, ViableCount: cfg.ViableCount, PruneChild: cfg.PruneChild}
	}
	return s
}

// budgetLeft reports whether speculation may go on: the global visit
// budget has room and the fan-in was not cancelled.
func (s *speculator) budgetLeft() bool {
	if s.stopped {
		return false
	}
	if s.ctx.Err() != nil {
		s.stopped = true
	}
	return !s.stopped
}

// mine explores (code, set) speculatively, recording what it finds.
func (s *speculator) mine(code Code, set *EmbSet) *specNode {
	p := s.mn.pattern(code, set)
	n := &specNode{p: p}
	if p.Support < s.mn.cfg.MinSupport {
		return n
	}
	if s.sp.Visit != nil {
		s.sp.Visit(p)
	}
	if !s.budget.spend() {
		s.stopped = true
	}
	if !s.budgetLeft() {
		return n
	}
	if s.mn.cfg.MaxNodes > 0 && code.NumNodes() >= s.mn.cfg.MaxNodes {
		return n
	}
	if s.sp.PruneSubtree != nil && s.sp.PruneSubtree(p) {
		return n
	}
	if s.sp.SkipSubtree != nil && s.sp.SkipSubtree(p) {
		return n
	}
	groups := s.mn.extendGroups(code, set)
	n.expanded = true
	n.exts = make([]specExt, len(groups))
	// Phase 1: materialise (and minimality-check) every admitted group
	// before any descent — groups alias the miner's scratch, which the
	// recursion below reuses.
	for gi, g := range groups {
		se := specExt{t: g.t, rawCount: len(g.cands)}
		if s.sp.ViableCount == nil || s.sp.ViableCount(len(g.cands)) {
			se.materialized = true
			cset, ok := s.mn.materialize(g, set)
			if !ok {
				se.dropped = true
			} else {
				se.set = cset
				if s.mn.cfg.needBounds() {
					se.bound = misUpperBound(cset, &s.mn.sc.mis)
					if s.mn.cfg.ChildBound != nil {
						if b := s.mn.cfg.ChildBound(code, g.t, cset, se.bound); b < se.bound {
							se.bound = b
						}
					}
					if !s.mn.cfg.Lexicographic && s.mn.cfg.ChildScore != nil {
						se.score = s.mn.cfg.ChildScore(code, g.t, cset)
					}
				}
				child := append(append(Code{}, code...), g.t)
				if s.mn.cfg.minimal(child) {
					se.minimal = true
				}
			}
		}
		n.exts[gi] = se
	}
	// Record the extensions in the order the serial walk descends them,
	// so replay consumes them front to back. Bounds are pure functions of
	// the child sets — speculation and replay agree on the order.
	if !s.mn.cfg.Lexicographic {
		slices.SortFunc(n.exts, cmpSpecExt)
	}
	// Phase 2: descend into the minimal children. The recursion order is
	// the serial one; only the scratch reuse forced the split. An
	// advisory PruneChild skip leaves child nil — if the authoritative
	// policy disagrees, replay mines that subtree live.
	for gi := range n.exts {
		se := &n.exts[gi]
		if se.minimal && s.budgetLeft() {
			if s.sp.PruneChild != nil && s.sp.PruneChild(se.set, se.bound) {
				continue
			}
			child := append(append(Code{}, code...), se.t)
			se.child = s.mine(child, se.set)
		}
	}
	return n
}

// replay walks a recorded subtree running the serial search's exact
// control flow against the authoritative state. Any gap in the record —
// the speculation stopped where the authoritative policy descends, or
// skipped a group the authoritative policy wants — falls back to live
// serial mining of that part.
func (mn *miner) replay(n *specNode) {
	if mn.aborted {
		return
	}
	p := n.p
	if p.Support < mn.cfg.MinSupport {
		return
	}
	mn.visitFrequent(p, func() { mn.replayExpand(n) })
}

// replayExpand is replay's descent below one recorded node: re-check
// group viability against the authoritative state and walk the recorded
// children, falling back to live mining on any speculation gap.
func (mn *miner) replayExpand(n *specNode) {
	p := n.p
	if !n.expanded {
		mn.expand(p.Code, p.Embeddings)
		return
	}
	// The serial search decides every group's viability inside extend,
	// before any child visit can move the incumbent: freeze all decisions
	// now, against the current state.
	use := make([]bool, len(n.exts))
	for i := range n.exts {
		e := &n.exts[i]
		use[i] = mn.cfg.ViableCount == nil || mn.cfg.ViableCount(e.rawCount)
		if use[i] && !e.materialized {
			// Speculation skipped a group the authoritative policy
			// wants; its raw candidates were not kept, so redo this
			// node's whole extension step live.
			mn.expand(p.Code, p.Embeddings)
			return
		}
	}
	for i := range n.exts {
		if mn.aborted {
			return
		}
		e := &n.exts[i]
		if !use[i] || e.dropped {
			continue
		}
		// Same per-kid sequence as the serial expand: the authoritative
		// PruneChild fires before the minimality check, so its comparison
		// trace (which the lattice checkpointer records) is identical.
		if mn.cfg.PruneChild != nil && mn.cfg.PruneChild(e.set, e.bound) {
			continue
		}
		if !e.minimal {
			continue
		}
		if e.child != nil {
			mn.replay(e.child)
		} else {
			child := append(append(Code{}, p.Code...), e.t)
			mn.dfs(child, e.set)
		}
	}
}
