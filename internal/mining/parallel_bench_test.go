package mining_test

// Lattice-parallelism benchmarks on the paper's worst case: rijndael
// (§4.2 reports Edgar needing 4h22m there). The workload is the real
// mining input — the per-block dependence graphs of the compiled
// benchmark — under the embedding-support search with the usual
// per-round pattern budget. Compare BenchmarkMineParallel1 (serial
// search) against 4/8 workers for the speedup; on a single-core host
// the parallel runs mostly measure the speculate-then-replay overhead.

import (
	"sync"
	"testing"

	"graphpa/internal/bench"
	"graphpa/internal/mining"
	"graphpa/internal/pa"
)

var rijndael = struct {
	once   sync.Once
	graphs []*mining.Graph
	err    error
}{}

func rijndaelGraphs(b testing.TB) []*mining.Graph {
	rijndael.once.Do(func() {
		w, err := bench.Build("rijndael", bench.DefaultCodegen())
		if err != nil {
			rijndael.err = err
			return
		}
		for _, g := range w.Graphs() {
			rijndael.graphs = append(rijndael.graphs, pa.MiningGraph(g, false))
		}
	})
	if rijndael.err != nil {
		b.Fatal(rijndael.err)
	}
	return rijndael.graphs
}

func benchMineWorkers(b *testing.B, workers int) {
	graphs := rijndaelGraphs(b)
	cfg := mining.Config{
		MinSupport:       2,
		MaxNodes:         8,
		EmbeddingSupport: true,
		MaxPatterns:      20000,
		Workers:          workers,
	}
	visited := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		visited = 0
		mining.Mine(graphs, cfg, func(p *mining.Pattern) { visited++ })
		if visited == 0 {
			b.Fatal("nothing mined")
		}
	}
	b.ReportMetric(float64(visited), "patterns")
}

func BenchmarkMineParallel1(b *testing.B) { benchMineWorkers(b, 1) }
func BenchmarkMineParallel4(b *testing.B) { benchMineWorkers(b, 4) }
func BenchmarkMineParallel8(b *testing.B) { benchMineWorkers(b, 8) }
