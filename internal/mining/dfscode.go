package mining

import (
	"fmt"
	"strconv"
	"strings"
)

// Tuple is one entry of a DFS code (paper Fig. 7): the (i, j) DFS
// discovery indices of an edge's endpoints, their node labels, the edge
// label, and — the directed-graph extension — a direction flag telling
// whether the underlying edge runs i→j or j→i.
type Tuple struct {
	I, J   int
	LI, LJ string
	Out    bool // true: edge I->J in the digraph; false: J->I
	LE     string
}

// Forward reports whether the tuple discovers a new node (gSpan forward
// edge).
func (t Tuple) Forward() bool { return t.I < t.J }

func (t Tuple) String() string {
	d := "<"
	if t.Out {
		d = ">"
	}
	return fmt.Sprintf("(%d,%d,%s,%s,%s,%s)", t.I, t.J, t.LI, d, t.LE, t.LJ)
}

// dirRank orders edge directions: outgoing before incoming.
func dirRank(out bool) int {
	if out {
		return 0
	}
	return 1
}

// CompareTuples implements the gSpan lexicographic order on DFS-code
// entries, extended with the direction flag. It returns -1, 0 or +1.
func CompareTuples(a, b Tuple) int {
	af, bf := a.Forward(), b.Forward()
	switch {
	case !af && bf: // backward vs forward: (i,j) < (i2,j2) iff i < j2
		if a.I < b.J {
			return -1
		}
		return 1
	case af && !bf: // forward vs backward: less iff j <= i2
		if a.J <= b.I {
			return -1
		}
		return 1
	case af && bf:
		if a.J != b.J {
			return sign(a.J - b.J)
		}
		if a.I != b.I {
			return sign(b.I - a.I) // larger I first
		}
	default: // both backward
		if a.I != b.I {
			return sign(a.I - b.I)
		}
		if a.J != b.J {
			return sign(a.J - b.J)
		}
	}
	// Same position: compare labels.
	if c := strings.Compare(a.LI, b.LI); c != 0 {
		return c
	}
	if d := dirRank(a.Out) - dirRank(b.Out); d != 0 {
		return sign(d)
	}
	if c := strings.Compare(a.LE, b.LE); c != 0 {
		return c
	}
	return strings.Compare(a.LJ, b.LJ)
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

// Code is a DFS code: a pattern identified by its ordered edge tuples.
type Code []Tuple

// NumNodes returns the number of DFS-discovered nodes in the code.
func (c Code) NumNodes() int {
	n := 0
	for _, t := range c {
		if t.J+1 > n {
			n = t.J + 1
		}
		if t.I+1 > n {
			n = t.I + 1
		}
	}
	return n
}

// NodeLabels returns the node labels indexed by DFS index.
func (c Code) NodeLabels() []string {
	out := make([]string, c.NumNodes())
	for _, t := range c {
		out[t.I] = t.LI
		out[t.J] = t.LJ
	}
	return out
}

// nodeLabelsInto is NodeLabels writing into reused storage.
func (c Code) nodeLabelsInto(dst []string) []string {
	n := c.NumNodes()
	if cap(dst) < n {
		dst = make([]string, n)
	} else {
		dst = dst[:n]
	}
	for _, t := range c {
		dst[t.I] = t.LI
		dst[t.J] = t.LJ
	}
	return dst
}

// rightmostPathInto is RightmostPath writing into reused storage; parent
// is per-DFS-index scratch (-1 = root or undiscovered).
func (c Code) rightmostPathInto(path []int, parent []int32) ([]int, []int32) {
	path = path[:0]
	if len(c) == 0 {
		return path, parent
	}
	n := c.NumNodes()
	if cap(parent) < n {
		parent = make([]int32, n)
	} else {
		parent = parent[:n]
	}
	for i := range parent {
		parent[i] = -1
	}
	rm := 0
	for _, t := range c {
		if t.Forward() {
			parent[t.J] = int32(t.I)
			if t.J > rm {
				rm = t.J
			}
		}
	}
	for v := rm; ; {
		path = append(path, v)
		if parent[v] < 0 {
			break
		}
		v = int(parent[v])
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, parent
}

// RightmostPath returns the DFS indices on the rightmost path, root
// first. The rightmost vertex is the last forward-discovered node.
func (c Code) RightmostPath() []int {
	if len(c) == 0 {
		return nil
	}
	// Find the rightmost vertex: highest J of a forward edge (or node 0).
	rm := 0
	parent := map[int]int{}
	for _, t := range c {
		if t.Forward() {
			parent[t.J] = t.I
			if t.J > rm {
				rm = t.J
			}
		}
	}
	var path []int
	for v := rm; ; {
		path = append(path, v)
		p, ok := parent[v]
		if !ok {
			break
		}
		v = p
	}
	// reverse to root-first
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// ToGraph materialises the code as a pattern graph.
func (c Code) ToGraph() *Graph {
	g := &Graph{ID: -1, Labels: c.NodeLabels()}
	for _, t := range c {
		if t.Out {
			g.Edges = append(g.Edges, GEdge{From: t.I, To: t.J, Label: t.LE})
		} else {
			g.Edges = append(g.Edges, GEdge{From: t.J, To: t.I, Label: t.LE})
		}
	}
	g.Freeze()
	return g
}

// toGraphInto rebuilds c's pattern graph into g, reusing g's storage.
// Halves are appended in ascending edge index with at most one half per
// (node, edge) — DFS codes have no self-loops — so every adjacency list
// comes out already in the order Freeze's sort establishes, without
// sorting.
func (c Code) toGraphInto(g *Graph) {
	g.ID = -1
	g.Labels = c.nodeLabelsInto(g.Labels)
	g.Edges = g.Edges[:0]
	for _, t := range c {
		if t.Out {
			g.Edges = append(g.Edges, GEdge{From: t.I, To: t.J, Label: t.LE})
		} else {
			g.Edges = append(g.Edges, GEdge{From: t.J, To: t.I, Label: t.LE})
		}
	}
	n := len(g.Labels)
	if cap(g.adj) < n {
		na := make([][]half, n)
		copy(na, g.adj[:cap(g.adj)])
		g.adj = na
	} else {
		g.adj = g.adj[:n]
	}
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
	for i, e := range g.Edges {
		g.adj[e.From] = append(g.adj[e.From], half{other: e.To, eid: i, out: true, label: e.Label})
		g.adj[e.To] = append(g.adj[e.To], half{other: e.From, eid: i, out: false, label: e.Label})
	}
}

// String renders the code compactly.
func (c Code) String() string {
	parts := make([]string, len(c))
	for i, t := range c {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ")
}

// Key returns a map key identifying the code: an injective byte encoding
// cheap enough for per-visit memo keys (String is the readable form).
// Numbers are decimal with explicit separators; labels never contain the
// 0x00/0x01 separator bytes, so distinct codes never collide.
func (c Code) Key() string {
	n := 0
	for _, t := range c {
		n += len(t.LI) + len(t.LE) + len(t.LJ) + 12
	}
	b := make([]byte, 0, n)
	for _, t := range c {
		b = strconv.AppendInt(b, int64(t.I), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(t.J), 10)
		if t.Out {
			b = append(b, '>')
		} else {
			b = append(b, '<')
		}
		b = append(b, t.LI...)
		b = append(b, 0)
		b = append(b, t.LE...)
		b = append(b, 0)
		b = append(b, t.LJ...)
		b = append(b, 1)
	}
	return string(b)
}

// IsMinimal reports whether c is the canonical (lexicographically
// smallest) DFS code of its pattern graph. gSpan prunes every search
// branch rooted at a non-minimal code: each pattern is then grown exactly
// once (paper §3.3).
func (c Code) IsMinimal() bool {
	if len(c) == 0 {
		return true
	}
	// Simulate building the minimal code of p, step by step. Embeddings
	// are partial isomorphisms of the growing minimal code into p itself,
	// held in the pooled miner's seed slab (the test runs once per
	// candidate child, so none of its scratch — the pattern graph
	// included — is worth reallocating).
	mn := minimalPool.Get().(*miner)
	defer minimalPool.Put(mn)
	p := &mn.sc.pg
	c.toGraphInto(p)
	seed := &mn.sc.seed
	seed.k, seed.e, seed.n = 2, 1, 0
	seed.gids, seed.tup = seed.gids[:0], seed.tup[:0]
	seed.w, seed.bits = 0, nil
	// Step 0: the minimal first tuple over all edges of p.
	var best Tuple
	have := false
	for v := range p.Labels {
		for _, h := range p.adj[v] {
			t := Tuple{I: 0, J: 1, LI: p.Labels[v], LJ: p.Labels[h.other], Out: h.out, LE: h.label}
			if !have || CompareTuples(t, best) < 0 {
				best = t
				have = true
				seed.gids, seed.tup, seed.n = seed.gids[:0], seed.tup[:0], 0
			}
			if CompareTuples(t, best) == 0 {
				seed.gids = append(seed.gids, 0)
				seed.tup = append(seed.tup, int32(v), int32(h.other), int32(h.eid))
				seed.n++
			}
		}
	}
	if CompareTuples(best, c[0]) != 0 {
		return CompareTuples(c[0], best) <= 0
	}
	set := seed
	cur := append(mn.sc.cur[:0], best)
	defer func() { mn.sc.cur = cur[:0] }()
	for k := 1; k < len(c); k++ {
		exts := extendFull(mn, cur, set)
		if len(exts) == 0 {
			// c has more edges than any extension of the minimal
			// prefix; cannot happen for a valid code of p.
			return false
		}
		minT := exts[0].t
		for _, e := range exts[1:] {
			if CompareTuples(e.t, minT) < 0 {
				minT = e.t
			}
		}
		if cmp := CompareTuples(c[k], minT); cmp != 0 {
			return cmp < 0 // smaller than achievable means not a code of p; treat conservatively
		}
		// Keep only embeddings achieving the minimum. Tuple equality is
		// struct identity and groups are unique per tuple, so exactly one
		// extension matches.
		for _, e := range exts {
			if CompareTuples(e.t, minT) == 0 {
				set = e.set
				break
			}
		}
		cur = append(cur, minT)
	}
	return true
}
