package mining

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// trace renders one visited pattern's full identity: code, support and
// every embedding (order included). Two runs are equivalent exactly when
// their trace sequences are equal.
func trace(p *Pattern) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s sup=%d dis=%v;", p.Code.Key(), p.Support, p.Disjoint)
	for i := 0; i < p.Embeddings.Len(); i++ {
		e := p.Embeddings.Emb(i)
		fmt.Fprintf(&b, " %d:%v|%v", e.GID, e.Nodes, e.Edges)
	}
	return b.String()
}

func mineTrace(graphs []*Graph, cfg Config) []string {
	var out []string
	Mine(graphs, cfg, func(p *Pattern) { out = append(out, trace(p)) })
	return out
}

func assertSameTrace(t *testing.T, name string, serial, parallel []string) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("%s: serial visited %d patterns, parallel %d", name, len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("%s: visit %d differs:\nserial:   %s\nparallel: %s", name, i, serial[i], parallel[i])
		}
	}
}

// testGraphSets returns graph databases with distinct lattice shapes.
func testGraphSets() map[string][]*Graph {
	var big []*Graph
	for i := 0; i < 6; i++ {
		big = append(big, runningExample(i))
	}
	return map[string][]*Graph{
		"chains": {
			chain(0, "e", "ldr", "sub", "add", "str"),
			chain(1, "e", "ldr", "sub", "add", "str"),
			chain(2, "e", "mov", "cmp", "add"),
			chain(3, "e", "mov", "cmp", "add"),
		},
		"running-example": {runningExample(0), runningExample(1)},
		"replicated":      big,
	}
}

// TestParallelMatchesSerial: the parallel search must reproduce the
// serial visit sequence exactly — same patterns, same order, same
// supports and embeddings — across support modes and size caps.
func TestParallelMatchesSerial(t *testing.T) {
	configs := map[string]Config{
		"graph-support":     {MinSupport: 2},
		"embedding-support": {MinSupport: 2, EmbeddingSupport: true},
		"capped":            {MinSupport: 2, EmbeddingSupport: true, MaxNodes: 3},
		"greedy-mis":        {MinSupport: 2, EmbeddingSupport: true, GreedyMIS: true},
	}
	for gname, graphs := range testGraphSets() {
		for cname, cfg := range configs {
			serial := mineTrace(graphs, cfg)
			for _, workers := range []int{2, 8} {
				pcfg := cfg
				pcfg.Workers = workers
				got := mineTrace(graphs, pcfg)
				assertSameTrace(t, fmt.Sprintf("%s/%s/w%d", gname, cname, workers), serial, got)
			}
		}
	}
}

// TestParallelMaxPatternsTruncation: the MaxPatterns budget must cut the
// parallel visit sequence at exactly the serial truncation point.
func TestParallelMaxPatternsTruncation(t *testing.T) {
	graphs := testGraphSets()["replicated"]
	for _, budget := range []int{1, 3, 7, 20} {
		cfg := Config{MinSupport: 2, EmbeddingSupport: true, MaxPatterns: budget}
		serial := mineTrace(graphs, cfg)
		cfg.Workers = 8
		got := mineTrace(graphs, cfg)
		assertSameTrace(t, fmt.Sprintf("budget=%d", budget), serial, got)
	}
}

// TestParallelStatefulIncumbent mimics the PA search: the visitor moves
// an incumbent bound that PruneSubtree and ViableCount consult, so the
// serial output depends on visit order. The parallel search must still
// match it bit for bit, whatever the speculation policy does —
// exercised with an exact mirror, an over-pruner (maximum fallback), an
// under-pruner (maximum wasted exploration) and a live shared-incumbent
// reader (stale bounds).
func TestParallelStatefulIncumbent(t *testing.T) {
	graphs := testGraphSets()["replicated"]

	// run executes one stateful search; spec == nil means serial.
	run := func(workers int, spec func(s *incumbent) *Speculator) []string {
		s := &incumbent{}
		var out []string
		cfg := Config{
			MinSupport:       2,
			EmbeddingSupport: true,
			Workers:          workers,
			PruneSubtree:     func(p *Pattern) bool { return s.bound() > 3*p.Support },
			ViableCount:      func(c int) bool { return s.bound() <= 4*c },
		}
		if spec != nil {
			cfg.NewSpeculator = func() *Speculator { return spec(s) }
		}
		Mine(graphs, cfg, func(p *Pattern) {
			out = append(out, trace(p))
			s.raise(p.Support + p.Code.NumNodes())
		})
		return out
	}

	serial := run(1, nil)
	if len(serial) == 0 {
		t.Fatal("serial stateful search mined nothing")
	}
	policies := map[string]func(s *incumbent) *Speculator{
		"mirror": func(s *incumbent) *Speculator {
			return &Speculator{
				PruneSubtree: func(p *Pattern) bool { return s.bound() > 3*p.Support },
				ViableCount:  func(c int) bool { return s.bound() <= 4*c },
			}
		},
		"over-prune":  func(*incumbent) *Speculator { return &Speculator{PruneSubtree: func(*Pattern) bool { return true }} },
		"under-prune": func(*incumbent) *Speculator { return &Speculator{} },
		"skip-groups": func(*incumbent) *Speculator {
			return &Speculator{ViableCount: func(c int) bool { return c%2 == 0 }}
		},
	}
	for name, spec := range policies {
		for _, workers := range []int{2, 8} {
			got := run(workers, spec)
			assertSameTrace(t, fmt.Sprintf("%s/w%d", name, workers), serial, got)
		}
	}
}

// incumbent is a mutex-guarded monotone bound shared between the
// authoritative replay (writer) and speculation workers (readers).
type incumbent struct {
	mu sync.Mutex
	b  int
}

func (s *incumbent) bound() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b
}

func (s *incumbent) raise(v int) {
	s.mu.Lock()
	if v > s.b {
		s.b = v
	}
	s.mu.Unlock()
}

// TestSpeculatorVisitObservesPatterns: replay must hand the visitor the
// same *Pattern pointers speculation produced, so speculative memoisation
// keyed by pointer pays off.
func TestSpeculatorVisitObservesPatterns(t *testing.T) {
	graphs := testGraphSets()["chains"]
	specSeen := map[*Pattern]bool{}
	var mu sync.Mutex
	hits, total := 0, 0
	cfg := Config{
		MinSupport:       2,
		EmbeddingSupport: true,
		Workers:          4,
		NewSpeculator: func() *Speculator {
			return &Speculator{Visit: func(p *Pattern) {
				mu.Lock()
				specSeen[p] = true
				mu.Unlock()
			}}
		},
	}
	Mine(graphs, cfg, func(p *Pattern) {
		total++
		mu.Lock()
		if specSeen[p] {
			hits++
		}
		mu.Unlock()
	})
	if total == 0 {
		t.Fatal("nothing mined")
	}
	if hits != total {
		t.Errorf("replay reused %d/%d speculative patterns; want all (no policy gaps here)", hits, total)
	}
}
