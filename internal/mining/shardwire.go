package mining

import (
	"encoding/binary"
	"fmt"
)

// This file is the wire codec of the distributed speculation protocol:
// the coordinator ships its mining graphs and a portable slice of the
// search configuration to shard workers, and each worker streams back
// the specNode tree its speculation phase recorded for one seed. The
// encoding follows the internal/link idiom — versioned magic prefix,
// little-endian, fully validated decode — but uses varints and a
// per-message string table instead of fixed-width words: the payload is
// dominated by embedding slabs of small non-negative integers and by
// heavily repeated instruction-text labels, so the variable-width form
// is several times smaller on the wire.
//
// Trust model: shards are same-code replicas inside one deployment, so
// decoding validates structure (bounds, lengths, internal consistency —
// corrupt bytes produce an error, never a panic or an out-of-range
// index) but does not re-verify semantics such as minimality or support
// counts; those are pure functions both ends compute with the same
// code. A semantically wrong subtree from a buggy or mismatched shard
// is caught the same way any wrong speculation is: the authoritative
// replay re-checks every state-dependent decision, and the differential
// tests pin coordinator output against the single-process walk.

// Wire magics, one per payload kind, versioned in the last byte.
const (
	wireMagicGraphs = "GPsG1"
	wireMagicWalk   = "GPsW1"
	wireMagicTree   = "GPsT1"
)

// wireEnc is the varint writer. Strings are interned on first use: a
// new string is written as tag 0 + length + bytes, a repeat as its
// table index + 1. Both sides build the table in stream order, so the
// encoding is deterministic and self-contained.
type wireEnc struct {
	b    []byte
	strs map[string]uint64
}

func newWireEnc(magic string) *wireEnc {
	return &wireEnc{b: append(make([]byte, 0, 1024), magic...), strs: map[string]uint64{}}
}

func (w *wireEnc) uv(v uint64)  { w.b = binary.AppendUvarint(w.b, v) }
func (w *wireEnc) iv(v int64)   { w.b = binary.AppendVarint(w.b, v) }
func (w *wireEnc) byte(v byte)  { w.b = append(w.b, v) }
func (w *wireEnc) raw(p []byte) { w.b = append(w.b, p...) }

func (w *wireEnc) str(s string) {
	if id, ok := w.strs[s]; ok {
		w.uv(id + 1)
		return
	}
	w.strs[s] = uint64(len(w.strs))
	w.uv(0)
	w.uv(uint64(len(s)))
	w.b = append(w.b, s...)
}

// wireDec is the sticky-error reader: after the first failure every
// accessor returns zero values and the error survives to the caller, so
// decode loops need no per-field checks to stay in bounds.
type wireDec struct {
	b    []byte
	pos  int
	strs []string
	err  error
}

func newWireDec(data []byte, magic string) *wireDec {
	d := &wireDec{b: data}
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		d.err = fmt.Errorf("mining: bad %s wire prefix", magic)
		return d
	}
	d.pos = len(magic)
	return d
}

func (d *wireDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("mining: "+format, args...)
	}
}

func (d *wireDec) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		d.fail("truncated varint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *wireDec) iv() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.pos:])
	if n <= 0 {
		d.fail("truncated varint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *wireDec) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.b) {
		d.fail("truncated byte at offset %d", d.pos)
		return 0
	}
	v := d.b[d.pos]
	d.pos++
	return v
}

// length reads an element count that the remaining bytes must be able
// to hold at perElem bytes minimum each — the allocation guard that
// keeps corrupt counts from provoking huge make()s.
func (d *wireDec) length(perElem int) int {
	v := d.uv()
	if d.err == nil && v > uint64((len(d.b)-d.pos)/perElem+1) {
		d.fail("implausible count %d at offset %d", v, d.pos)
		return 0
	}
	return int(v)
}

func (d *wireDec) str() string {
	tag := d.uv()
	if d.err != nil {
		return ""
	}
	if tag > 0 {
		idx := tag - 1
		if idx >= uint64(len(d.strs)) {
			d.fail("string table index %d out of range", idx)
			return ""
		}
		return d.strs[idx]
	}
	n := d.length(1)
	if d.err != nil {
		return ""
	}
	if d.pos+n > len(d.b) {
		d.fail("truncated string at offset %d", d.pos)
		return ""
	}
	s := string(d.b[d.pos : d.pos+n])
	d.pos += n
	d.strs = append(d.strs, s)
	return s
}

// finish rejects trailing garbage.
func (d *wireDec) finish() error {
	if d.err == nil && d.pos != len(d.b) {
		d.fail("%d trailing bytes", len(d.b)-d.pos)
	}
	return d.err
}

// EncodeGraphs serialises the miner's input graphs for shipping to a
// shard worker. The encoding is deterministic (graphs, labels and edges
// in their given order), so identical inputs produce identical bytes;
// decode on the shard rebuilds graphs whose seedPatterns output matches
// the coordinator's exactly — the basis of the consistent seed
// assignment.
func EncodeGraphs(gs []*Graph) []byte {
	w := newWireEnc(wireMagicGraphs)
	w.uv(uint64(len(gs)))
	for _, g := range gs {
		w.iv(int64(g.ID))
		w.uv(uint64(len(g.Labels)))
		for _, l := range g.Labels {
			w.str(l)
		}
		w.uv(uint64(len(g.Edges)))
		for _, e := range g.Edges {
			w.uv(uint64(e.From))
			w.uv(uint64(e.To))
			w.str(e.Label)
		}
	}
	return w.b
}

// DecodeGraphs rebuilds (and freezes) an EncodeGraphs payload.
func DecodeGraphs(data []byte) ([]*Graph, error) {
	d := newWireDec(data, wireMagicGraphs)
	gs, err := decodeGraphsBody(d)
	if err != nil {
		return nil, err
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return gs, nil
}

func decodeGraphsBody(d *wireDec) ([]*Graph, error) {
	n := d.length(3)
	gs := make([]*Graph, 0, n)
	seen := map[int]bool{}
	for i := 0; i < n && d.err == nil; i++ {
		g := &Graph{ID: int(d.iv())}
		if seen[g.ID] {
			d.fail("duplicate graph ID %d", g.ID)
			break
		}
		seen[g.ID] = true
		nn := d.length(1)
		g.Labels = make([]string, 0, nn)
		for j := 0; j < nn && d.err == nil; j++ {
			g.Labels = append(g.Labels, d.str())
		}
		ne := d.length(3)
		g.Edges = make([]GEdge, 0, ne)
		for j := 0; j < ne && d.err == nil; j++ {
			e := GEdge{From: int(d.uv()), To: int(d.uv()), Label: d.str()}
			if d.err == nil && (e.From >= nn || e.To >= nn) {
				d.fail("graph %d edge %d endpoints (%d,%d) out of range [0,%d)", g.ID, j, e.From, e.To, nn)
				break
			}
			g.Edges = append(g.Edges, e)
		}
		if d.err == nil {
			g.Freeze()
			gs = append(gs, g)
		}
	}
	return gs, d.err
}

// SpecConfig is the portable slice of a Config a shard worker needs to
// run the speculation phase of one walk: the state-independent search
// parameters plus the advisory pruning inputs (UB table and incumbent
// floor). It deliberately carries no closures — multiresolution
// steering (ChildBound/ChildScore) cannot be shipped, which is why the
// pa layer forces the plain walk arm whenever shards are active.
type SpecConfig struct {
	MinSupport       int
	MaxNodes         int
	MISExactLimit    int
	MaxPatterns      int // session-wide speculative visit budget (0 = unlimited)
	EmbeddingSupport bool
	GreedyMIS        bool
	Lexicographic    bool
	// Floor is the initial advisory incumbent benefit; gossip pushes may
	// raise it later (SpecSession.SetFloor).
	Floor int
	// UB[m] bounds the benefit of any pattern (and its whole subtree)
	// whose advisory occurrence count is m; indexes past the table never
	// prune. The coordinator ships its own precomputed bound row, so
	// both ends prune against identical numbers.
	UB []int
}

// EncodeShardWalk frames one walk-open request: the SpecConfig followed
// by a pre-encoded EncodeGraphs payload (passed encoded so the per-walk
// cost excludes re-serialising the graphs).
func EncodeShardWalk(sc SpecConfig, graphsEnc []byte) []byte {
	w := newWireEnc(wireMagicWalk)
	w.uv(uint64(sc.MinSupport))
	w.uv(uint64(sc.MaxNodes))
	w.uv(uint64(sc.MISExactLimit))
	w.uv(uint64(sc.MaxPatterns))
	var flags byte
	if sc.EmbeddingSupport {
		flags |= 1
	}
	if sc.GreedyMIS {
		flags |= 2
	}
	if sc.Lexicographic {
		flags |= 4
	}
	w.byte(flags)
	w.iv(int64(sc.Floor))
	w.uv(uint64(len(sc.UB)))
	for _, v := range sc.UB {
		w.iv(int64(v))
	}
	w.uv(uint64(len(graphsEnc)))
	w.raw(graphsEnc)
	return w.b
}

// DecodeShardWalk parses an EncodeShardWalk payload.
func DecodeShardWalk(data []byte) (SpecConfig, []*Graph, error) {
	d := newWireDec(data, wireMagicWalk)
	var sc SpecConfig
	sc.MinSupport = int(d.uv())
	sc.MaxNodes = int(d.uv())
	sc.MISExactLimit = int(d.uv())
	sc.MaxPatterns = int(d.uv())
	flags := d.byte()
	sc.EmbeddingSupport = flags&1 != 0
	sc.GreedyMIS = flags&2 != 0
	sc.Lexicographic = flags&4 != 0
	sc.Floor = int(d.iv())
	nub := d.length(1)
	sc.UB = make([]int, 0, nub)
	for i := 0; i < nub && d.err == nil; i++ {
		sc.UB = append(sc.UB, int(d.iv()))
	}
	glen := d.length(1)
	if d.err != nil {
		return SpecConfig{}, nil, d.err
	}
	if d.pos+glen != len(d.b) {
		return SpecConfig{}, nil, fmt.Errorf("mining: walk graph section length %d does not cover the remaining %d bytes", glen, len(d.b)-d.pos)
	}
	gs, err := DecodeGraphs(d.b[d.pos:])
	if err != nil {
		return SpecConfig{}, nil, err
	}
	return sc, gs, nil
}

// specExt wire flags.
const (
	extFlagOut = 1 << iota
	extFlagMaterialized
	extFlagDropped
	extFlagMinimal
	extFlagSet
	extFlagChild
)

// specTreeMaxDepth caps decode recursion. Each tree level adds one code
// tuple (one pattern edge), so any real walk is tens deep at most; the
// cap only exists to keep hostile input from exhausting the stack.
const specTreeMaxDepth = 4096

// encodeSpecTree serialises one recorded speculation subtree. The seed
// pattern's code and embeddings are NOT shipped: the coordinator owns
// an identical seed (canonical seed construction over identical
// graphs), passes it to decodeSpecTree, and every descendant's code and
// embedding shape derive from the parent plus the extension tuple.
func encodeSpecTree(root *specNode) []byte {
	w := newWireEnc(wireMagicTree)
	encodeSpecNode(w, root)
	return w.b
}

func encodeSpecNode(w *wireEnc, n *specNode) {
	w.uv(uint64(n.p.Support))
	if n.p.Disjoint == nil {
		w.uv(0)
	} else {
		w.uv(uint64(len(n.p.Disjoint)) + 1)
		for _, v := range n.p.Disjoint {
			w.uv(uint64(v))
		}
	}
	if !n.expanded {
		w.byte(0)
		return
	}
	w.byte(1)
	w.uv(uint64(len(n.exts)))
	for i := range n.exts {
		se := &n.exts[i]
		w.uv(uint64(se.t.I))
		w.uv(uint64(se.t.J))
		w.str(se.t.LI)
		w.str(se.t.LJ)
		w.str(se.t.LE)
		var flags byte
		if se.t.Out {
			flags |= extFlagOut
		}
		if se.materialized {
			flags |= extFlagMaterialized
		}
		if se.dropped {
			flags |= extFlagDropped
		}
		if se.minimal {
			flags |= extFlagMinimal
		}
		if se.set != nil {
			flags |= extFlagSet
		}
		if se.child != nil {
			flags |= extFlagChild
		}
		w.byte(flags)
		w.uv(uint64(se.rawCount))
		if se.set != nil {
			w.iv(int64(se.bound))
			w.iv(int64(se.score))
			w.uv(uint64(se.set.n))
			for _, g := range se.set.gids {
				w.iv(int64(g))
			}
			for _, v := range se.set.tup {
				w.uv(uint64(v))
			}
		}
		if se.child != nil {
			encodeSpecNode(w, se.child)
		}
	}
}

// decodeSpecTree rebuilds a shard-recorded subtree around the
// coordinator's own seed pattern. graphOf validates embedding rows
// against the real graphs (graph IDs, node and edge indexes), so a
// corrupt payload fails here instead of during replay.
func decodeSpecTree(data []byte, seedCode Code, seedSet *EmbSet, graphOf func(int) *Graph) (*specNode, error) {
	d := newWireDec(data, wireMagicTree)
	root := decodeSpecNode(d, seedCode, seedSet, graphOf, 0)
	if err := d.finish(); err != nil {
		return nil, err
	}
	return root, nil
}

func decodeSpecNode(d *wireDec, code Code, set *EmbSet, graphOf func(int) *Graph, depth int) *specNode {
	if depth > specTreeMaxDepth {
		d.fail("spec tree deeper than %d", specTreeMaxDepth)
		return nil
	}
	support := int(d.uv())
	if d.err == nil && support > set.Len() {
		d.fail("support %d exceeds %d embeddings", support, set.Len())
		return nil
	}
	dl := d.uv()
	var disjoint []int32
	if dl > 0 {
		m := int(dl - 1)
		if m > set.Len() {
			d.fail("disjoint set of %d over %d embeddings", m, set.Len())
			return nil
		}
		disjoint = make([]int32, 0, m)
		for i := 0; i < m && d.err == nil; i++ {
			v := d.uv()
			if d.err == nil && v >= uint64(set.Len()) {
				d.fail("disjoint row %d out of range [0,%d)", v, set.Len())
				return nil
			}
			disjoint = append(disjoint, int32(v))
		}
	}
	p := &Pattern{Code: code, Labels: code.NodeLabels(), Embeddings: set, Support: support, Disjoint: disjoint}
	n := &specNode{p: p}
	if d.byte() == 0 || d.err != nil {
		return n
	}
	n.expanded = true
	numNodes := code.NumNodes()
	ne := d.length(5)
	n.exts = make([]specExt, 0, ne)
	for i := 0; i < ne && d.err == nil; i++ {
		var se specExt
		se.t = Tuple{I: int(d.uv()), J: int(d.uv()), LI: d.str(), LJ: d.str(), LE: d.str()}
		flags := d.byte()
		se.t.Out = flags&extFlagOut != 0
		se.materialized = flags&extFlagMaterialized != 0
		se.dropped = flags&extFlagDropped != 0
		se.minimal = flags&extFlagMinimal != 0
		if d.err != nil {
			break
		}
		// Rightmost-extension shape: a forward tuple maps exactly one new
		// node (J == numNodes), a backward tuple stays inside the pattern.
		fwd := se.t.Forward()
		if fwd && (se.t.J != numNodes || se.t.I >= numNodes) ||
			!fwd && (se.t.I >= numNodes || se.t.J >= numNodes || se.t.I == se.t.J) {
			d.fail("extension tuple (%d,%d) malformed for a %d-node pattern", se.t.I, se.t.J, numNodes)
			break
		}
		se.rawCount = int(d.uv())
		hasSet := flags&extFlagSet != 0
		hasChild := flags&extFlagChild != 0
		if hasSet && (!se.materialized || se.dropped) {
			d.fail("extension %v carries a set without a materialised state", se.t)
			break
		}
		if hasChild && (!hasSet || !se.minimal) {
			d.fail("extension %v carries a child without a minimal materialised set", se.t)
			break
		}
		if hasSet {
			se.bound = int(d.iv())
			se.score = int(d.iv())
			ck, ce := set.K(), set.E()+1
			if fwd {
				ck++
			}
			cn := d.length(ck + ce + 1)
			cset := &EmbSet{k: ck, e: ce, n: cn,
				gids: make([]int32, 0, cn), tup: make([]int32, 0, cn*(ck+ce))}
			for j := 0; j < cn && d.err == nil; j++ {
				cset.gids = append(cset.gids, int32(d.iv()))
			}
			for j := 0; j < cn && d.err == nil; j++ {
				g := graphOf(int(cset.gids[j]))
				if g == nil {
					d.fail("embedding references unknown graph %d", cset.gids[j])
					break
				}
				for x := 0; x < ck; x++ {
					v := d.uv()
					if d.err == nil && v >= uint64(g.NumNodes()) {
						d.fail("embedding node %d out of range [0,%d) in graph %d", v, g.NumNodes(), g.ID)
					}
					cset.tup = append(cset.tup, int32(v))
				}
				for x := 0; x < ce; x++ {
					v := d.uv()
					if d.err == nil && v >= uint64(len(g.Edges)) {
						d.fail("embedding edge %d out of range [0,%d) in graph %d", v, len(g.Edges), g.ID)
					}
					cset.tup = append(cset.tup, int32(v))
				}
			}
			se.set = cset
		}
		if hasChild && d.err == nil {
			childCode := append(append(Code{}, code...), se.t)
			se.child = decodeSpecNode(d, childCode, se.set, graphOf, depth+1)
		}
		n.exts = append(n.exts, se)
	}
	if d.err != nil {
		return nil
	}
	return n
}
