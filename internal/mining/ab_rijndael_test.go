package mining_test

// Same-process A/B of the boxed reference layout against the flat EmbSet
// layout on the paper's worst-case workload. Both walks run once, in this
// order, inside one process, so they see the same binary, the same heap
// state and the same machine — the only difference is the embedding
// representation. The digest makes the comparison order-sensitive and
// covers every visited pattern's code, support, embedding rows and
// disjoint set, at identical per-visit cost on both sides.

import (
	"runtime"
	"testing"
	"time"

	"graphpa/internal/mining"
)

const fnvPrime64 = 1099511628211

// digest is an order-sensitive FNV-style fold of a visit sequence.
type digest struct {
	h uint64
	n int
}

func (d *digest) mix(x uint64) { d.h = (d.h ^ x) * fnvPrime64 }

func (d *digest) str(s string) {
	for i := 0; i < len(s); i++ {
		d.mix(uint64(s[i]))
	}
}

// TestFlatLayoutRijndaelAB is the acceptance gate for the flat embedding
// core: the flat walk must visit the identical pattern sequence and
// finish in no more than 75% of the boxed layout's wall clock.
func TestFlatLayoutRijndaelAB(t *testing.T) {
	if testing.Short() {
		t.Skip("same-process A/B over the full rijndael workload; skipped with -short")
	}
	graphs := rijndaelGraphs(t)
	// Lexicographic pins the boxed reference's sibling order: this A/B
	// isolates the embedding layout, not the search order.
	cfg := mining.Config{MinSupport: 2, MaxNodes: 8, EmbeddingSupport: true, MaxPatterns: 20000, Lexicographic: true}

	runtime.GC()
	var oldD digest
	t0 := time.Now()
	mining.OldMine(graphs, cfg, func(p *mining.OldPattern) {
		oldD.n++
		oldD.str(p.Code.Key())
		oldD.mix(uint64(p.Support))
		oldD.mix(uint64(len(p.Embeddings)))
		for _, e := range p.Embeddings {
			oldD.mix(uint64(e.GID))
			for _, v := range e.Nodes {
				oldD.mix(uint64(v))
			}
			for _, v := range e.Edges {
				oldD.mix(uint64(v))
			}
		}
		oldD.mix(uint64(len(p.Disjoint)))
		for _, e := range p.Disjoint {
			oldD.mix(uint64(e.GID))
			for _, v := range e.Nodes {
				oldD.mix(uint64(v))
			}
		}
	})
	oldDur := time.Since(t0)

	runtime.GC()
	var newD digest
	t1 := time.Now()
	mining.Mine(graphs, cfg, func(p *mining.Pattern) {
		set := p.Embeddings
		newD.n++
		newD.str(p.Code.Key())
		newD.mix(uint64(p.Support))
		newD.mix(uint64(set.Len()))
		for i := 0; i < set.Len(); i++ {
			newD.mix(uint64(set.GID(i)))
			for _, v := range set.Nodes(i) {
				newD.mix(uint64(v))
			}
			for _, v := range set.Edges(i) {
				newD.mix(uint64(v))
			}
		}
		newD.mix(uint64(len(p.Disjoint)))
		for _, ix := range p.Disjoint {
			newD.mix(uint64(set.GID(int(ix))))
			for _, v := range set.Nodes(int(ix)) {
				newD.mix(uint64(v))
			}
		}
	})
	newDur := time.Since(t1)

	if oldD.n != newD.n || oldD.h != newD.h {
		t.Fatalf("visit sequences diverge: boxed %d patterns digest %#x, flat %d patterns digest %#x",
			oldD.n, oldD.h, newD.n, newD.h)
	}
	t.Logf("rijndael A/B: boxed %v, flat %v over %d patterns — speedup %.2fx",
		oldDur, newDur, oldD.n, float64(oldDur)/float64(newDur))
	if newDur > oldDur*3/4 {
		t.Fatalf("flat walk took %v vs boxed %v (%.2f%% of boxed); want <= 75%%",
			newDur, oldDur, 100*float64(newDur)/float64(oldDur))
	}
}
