package mining

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// oldTrace renders an OldPattern in the exact format trace renders a
// Pattern, with the disjoint set as row indices, so the two walks can be
// compared line for line.
func oldTrace(p *OldPattern) string {
	idx := make(map[*Embedding]int32, len(p.Embeddings))
	for i, e := range p.Embeddings {
		idx[e] = int32(i)
	}
	dis := make([]int32, len(p.Disjoint))
	for i, e := range p.Disjoint {
		dis[i] = idx[e]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s sup=%d dis=%v;", p.Code.Key(), p.Support, dis)
	for _, e := range p.Embeddings {
		fmt.Fprintf(&b, " %d:%v|%v", e.GID, e.Nodes, e.Edges)
	}
	return b.String()
}

func oldMineTrace(graphs []*Graph, cfg Config) []string {
	var out []string
	OldMine(graphs, cfg, func(p *OldPattern) { out = append(out, oldTrace(p)) })
	return out
}

// TestFlatMatchesBoxedReference: the flat EmbSet walk must reproduce the
// boxed reference implementation's visit sequence byte for byte — same
// patterns, same order, same supports, same embedding rows, same
// disjoint-set indices — across support modes, size caps, MIS variants
// and budget truncation.
func TestFlatMatchesBoxedReference(t *testing.T) {
	// The boxed reference predates the benefit-directed sibling order, so
	// the flat walk is pinned against it in Lexicographic mode; the
	// benefit-directed order is differenced against the lexicographic one
	// at the result level in bestfirst_test.go.
	configs := map[string]Config{
		"graph-support":     {MinSupport: 2, Lexicographic: true},
		"embedding-support": {MinSupport: 2, EmbeddingSupport: true, Lexicographic: true},
		"capped":            {MinSupport: 2, EmbeddingSupport: true, MaxNodes: 3, Lexicographic: true},
		"greedy-mis":        {MinSupport: 2, EmbeddingSupport: true, GreedyMIS: true, Lexicographic: true},
		"tiny-exact-limit":  {MinSupport: 2, EmbeddingSupport: true, MISExactLimit: 2, Lexicographic: true},
		"budget":            {MinSupport: 2, EmbeddingSupport: true, MaxPatterns: 9, Lexicographic: true},
	}
	for gname, graphs := range testGraphSets() {
		for cname, cfg := range configs {
			want := oldMineTrace(graphs, cfg)
			got := mineTrace(graphs, cfg)
			assertSameTrace(t, gname+"/"+cname, want, got)
		}
	}
}

// TestFlatMatchesBoxedRandom drives the same differential over random
// DAGs, where automorphic rediscoveries, dedupe collisions and mixed
// group shapes are far denser than in the handwritten sets.
func TestFlatMatchesBoxedRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	nodeLabels := []string{"a", "b", "c"}
	edgeLabels := []string{"x", "y"}
	for trial := 0; trial < 30; trial++ {
		var graphs []*Graph
		for i := 0; i < 3; i++ {
			graphs = append(graphs, randDAG(r, i, 5+r.Intn(6), 6+r.Intn(10), nodeLabels, edgeLabels))
		}
		for _, cfg := range []Config{
			{MinSupport: 2, MaxNodes: 5, EmbeddingSupport: true, MaxPatterns: 3000, Lexicographic: true},
			{MinSupport: 2, MaxNodes: 4, MaxPatterns: 3000, Lexicographic: true},
		} {
			want := oldMineTrace(graphs, cfg)
			got := mineTrace(graphs, cfg)
			assertSameTrace(t, fmt.Sprintf("trial%d/emb=%v", trial, cfg.EmbeddingSupport), want, got)
		}
	}
}
