package mining

import (
	"math/bits"
	"slices"
	"sort"
	"sync"
)

// This file computes maximum sets of non-overlapping embeddings (paper
// §3.4): the nodes of the collision graph are a pattern's embeddings, two
// embeddings collide when they share an instruction, and the largest
// extractable set is a maximum independent set (equivalently a maximum
// clique in the inverted collision graph). We follow the paper's choice of
// an exact colour-bounded branch-and-bound (Kumlander 2004 is a
// colour-class backtracking search of this family) on the inverted graph,
// with a greedy fallback above a size threshold.
//
// The solver runs once per frequent pattern, so everything it touches —
// collision adjacency, per-depth candidate sets, colour orders, dedupe
// tables — lives in a misScratch that is reused across patterns. Overlap
// tests and colour classes are word-wise bitset operations on the EmbSet's
// node bitsets; the search itself allocates nothing.

// bitset is a fixed-capacity bit vector.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// clone and and are the allocating variants, kept for callers that want a
// fresh set; the solver's hot paths use copy and the in-place andInto/
// andNotInto below instead.
func (b bitset) clone() bitset {
	out := make(bitset, len(b))
	copy(out, b)
	return out
}

func (b bitset) and(o bitset) bitset {
	out := make(bitset, len(b))
	andInto(out, b, o)
	return out
}

// andInto stores a & o into dst without allocating.
func andInto(dst, a, o bitset) {
	for i := range dst {
		dst[i] = a[i] & o[i]
	}
}

// andNotInto clears o's bits from b in place (b &^= o).
func andNotInto(b, o bitset) {
	for i := range b {
		b[i] &^= o[i]
	}
}

func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// first returns the lowest set bit, or -1.
func (b bitset) first() int {
	for wi, w := range b {
		if w != 0 {
			return wi*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// last returns the highest set bit, or -1.
func (b bitset) last() int {
	for wi := len(b) - 1; wi >= 0; wi-- {
		if b[wi] != 0 {
			return wi*64 + 63 - bits.LeadingZeros64(b[wi])
		}
	}
	return -1
}

func wordsEqual(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// greedyItem is one embedding in the greedy interval-scheduling order.
type greedyItem struct {
	row        int32
	maxN, minN int32
}

// misScratch is the reusable state of one independent-set computation.
// One instance serves any number of sequential calls; nothing it holds
// outlives a call except through the returned index slice (which is
// always freshly allocated).
type misScratch struct {
	keys  []int64 // (gid<<32 | row) grouping keys
	group []int32 // rows of the gid group being solved
	uniq  []int32 // group after node-set dedupe

	hmap  map[uint64]int32 // node-set hash -> first uniq slot with it
	chain []int32          // next uniq slot with the same hash

	items []greedyItem

	// Branch-and-bound state: inverted collision adjacency as views into
	// one arena, a candidate set per recursion depth, and flat per-depth
	// colour order/bound arrays (depth d uses [d*n, (d+1)*n)).
	inv      []bitset
	invBuf   bitset
	pstack   bitset
	order    []int32
	bound    []int32
	rbuf     []int32 // current clique
	best     []int32 // incumbent clique
	colRem   bitset
	colAvail bitset

	union bitset // misUpperBound's per-graph node-coverage accumulator
}

// maxCliqueIdx finds a maximum clique in the n-vertex graph given by
// adjacency bitsets of w words each, using greedy-colouring bounds
// (Tomita-style; the same bound family as Kumlander's colour-class
// backtracking). The result aliases sc.best — callers copy it out before
// the scratch is reused. The exploration order is exactly the classic
// recursive formulation's; only the storage is flattened.
func maxCliqueIdx(n, w int, adj []bitset, sc *misScratch) []int32 {
	if cap(sc.pstack) < (n+1)*w {
		sc.pstack = make(bitset, (n+1)*w)
	}
	if cap(sc.order) < n*n {
		sc.order = make([]int32, n*n)
		sc.bound = make([]int32, n*n)
	}
	sc.rbuf = sc.rbuf[:0]
	sc.best = sc.best[:0]
	p0 := sc.pstack[:w]
	clear(p0)
	for i := 0; i < n; i++ {
		p0.set(i)
	}
	var expand func(depth int)
	expand = func(depth int) {
		p := sc.pstack[depth*w : (depth+1)*w]
		if p.empty() {
			if len(sc.rbuf) > len(sc.best) {
				sc.best = append(sc.best[:0], sc.rbuf...)
			}
			return
		}
		order, bound := colourSort(p, adj, n, w, depth, sc)
		for i := len(order) - 1; i >= 0; i-- {
			v := int(order[i])
			if len(sc.rbuf)+int(bound[i]) <= len(sc.best) {
				return
			}
			andInto(sc.pstack[(depth+1)*w:(depth+2)*w], p, adj[v])
			sc.rbuf = append(sc.rbuf, int32(v))
			expand(depth + 1)
			sc.rbuf = sc.rbuf[:len(sc.rbuf)-1]
			p.clear(v)
		}
	}
	expand(0)
	return sc.best
}

// colourSort greedily colours the candidate set and returns the vertices
// ordered by colour class, with bound[i] = colour number of order[i] (an
// upper bound on the clique extension using order[:i+1]). The returned
// slices alias sc's per-depth arrays and stay valid for the whole loop at
// that depth.
func colourSort(p bitset, adj []bitset, n, w, depth int, sc *misScratch) (order, bound []int32) {
	order = sc.order[depth*n : depth*n : depth*n+n]
	bound = sc.bound[depth*n : depth*n : depth*n+n]
	if cap(sc.colRem) < w {
		sc.colRem = make(bitset, w)
		sc.colAvail = make(bitset, w)
	}
	rem := sc.colRem[:w]
	copy(rem, p)
	total := p.count()
	colour := int32(0)
	for len(order) < total {
		colour++
		avail := sc.colAvail[:w]
		copy(avail, rem)
		for {
			v := avail.first()
			if v < 0 {
				break
			}
			order = append(order, int32(v))
			bound = append(bound, colour)
			rem.clear(v)
			avail.clear(v)
			// remove neighbours of v from this colour class
			andNotInto(avail, adj[v])
		}
	}
	return order, bound
}

// misPool backs the exported entry points; the miner's hot path owns a
// misScratch directly.
var misPool = sync.Pool{New: func() any { return new(misScratch) }}

// misUpperBound is a cheap admissible upper bound on the size of a
// maximum set of pairwise non-overlapping embeddings — for s itself and
// for every descendant pattern in s's lattice subtree. Per graph, any
// collection of disjoint k-node embeddings draws k distinct nodes each
// from the union of the group's node sets, so its size is at most
// floor(|union|/k) (and at most the row count); summing per graph bounds
// the whole MIS because embeddings never overlap across graphs.
// Descendants are covered too: each disjoint descendant embedding
// contains the nodes of the distinct parent row it extends, so a
// descendant's MIS is no larger than the parent's. Runs in one pass over
// the rows — no collision graph, no solver.
func misUpperBound(s *EmbSet, sc *misScratch) int {
	if s.Len() == 0 || s.k == 0 {
		return 0
	}
	s.ensureBits()
	keys := sc.keys[:0]
	for i := 0; i < s.n; i++ {
		keys = append(keys, int64(s.gids[i])<<32|int64(uint32(i)))
	}
	slices.Sort(keys)
	sc.keys = keys

	if cap(sc.union) < s.w {
		sc.union = make(bitset, s.w)
	}
	un := sc.union[:s.w]
	total := 0
	for start := 0; start < len(keys); {
		gid := int32(keys[start] >> 32)
		end := start
		clear(un)
		for end < len(keys) && int32(keys[end]>>32) == gid {
			b := s.nodeBits(int(uint32(keys[end])))
			for w := range un {
				un[w] |= b[w]
			}
			end++
		}
		rows := end - start
		if cov := un.count() / s.k; cov < rows {
			total += cov
		} else {
			total += rows
		}
		start = end
	}
	return total
}

// MISUpperBound is the exported wrapper around misUpperBound, for tests
// and external callers.
func MISUpperBound(s *EmbSet) int {
	sc := misPool.Get().(*misScratch)
	out := misUpperBound(s, sc)
	misPool.Put(sc)
	return out
}

// DisjointIndices returns a maximum (or, above the exact-solver size
// limit, greedily maximal) set of pairwise non-overlapping embeddings of
// s, as row indices.
func DisjointIndices(s *EmbSet, cfg Config) []int32 {
	sc := misPool.Get().(*misScratch)
	out := disjointIndices(s, cfg, sc)
	misPool.Put(sc)
	return out
}

// DisjointEmbeddings is the boxed-embedding wrapper around
// DisjointIndices, kept for tests and external callers.
func DisjointEmbeddings(embs []*Embedding, cfg Config) []*Embedding {
	idx := DisjointIndices(NewEmbSet(embs), cfg)
	if len(idx) == 0 {
		return nil
	}
	out := make([]*Embedding, 0, len(idx))
	for _, i := range idx {
		out = append(out, embs[i])
	}
	return out
}

// disjointIndices groups embeddings per graph — overlap is only possible
// within one graph — and solves each group independently, in ascending
// graph-ID order with original embedding order inside a group (the same
// sequence the boxed implementation produced).
func disjointIndices(s *EmbSet, cfg Config, sc *misScratch) []int32 {
	if s.Len() == 0 {
		return nil
	}
	s.ensureBits()
	keys := sc.keys[:0]
	for i := 0; i < s.n; i++ {
		keys = append(keys, int64(s.gids[i])<<32|int64(uint32(i)))
	}
	slices.Sort(keys)
	sc.keys = keys

	var out []int32
	for start := 0; start < len(keys); {
		gid := int32(keys[start] >> 32)
		end := start
		sc.group = sc.group[:0]
		for end < len(keys) && int32(keys[end]>>32) == gid {
			sc.group = append(sc.group, int32(uint32(keys[end])))
			end++
		}
		start = end
		uniq := dedupeGroup(s, sc.group, sc)
		if cfg.GreedyMIS || len(uniq) > cfg.exactLimit() {
			out = greedyIdx(s, uniq, sc, out)
		} else {
			out = exactIdx(s, uniq, sc, out)
		}
	}
	return out
}

// dedupeGroup drops embeddings covering an identical node set
// (automorphic remappings are interchangeable for extraction), keeping
// the first of each. Identity is the node bitset, keyed by 64-bit hash
// with exact word comparison on collision. The result aliases sc.uniq.
func dedupeGroup(s *EmbSet, group []int32, sc *misScratch) []int32 {
	sc.uniq = sc.uniq[:0]
	if sc.hmap == nil {
		sc.hmap = make(map[uint64]int32, len(group))
	} else {
		clear(sc.hmap)
	}
	if cap(sc.chain) < len(group) {
		sc.chain = make([]int32, len(group))
	}
	chain := sc.chain[:len(group)]
	for _, row := range group {
		b := s.nodeBits(int(row))
		h := hashWords(b)
		if first, ok := sc.hmap[h]; ok {
			dup := false
			for j := first; j >= 0; j = chain[j] {
				if wordsEqual(s.nodeBits(int(sc.uniq[j])), b) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			chain[len(sc.uniq)] = first
		} else {
			chain[len(sc.uniq)] = -1
		}
		sc.hmap[h] = int32(len(sc.uniq))
		sc.uniq = append(sc.uniq, row)
	}
	return sc.uniq
}

// exactIdx computes a maximum independent set of one group's embeddings
// as a maximum clique in the inverted collision graph, appending the
// chosen rows (ascending) to out.
func exactIdx(s *EmbSet, group []int32, sc *misScratch, out []int32) []int32 {
	n := len(group)
	if n == 1 {
		return append(out, group[0])
	}
	w := (n + 63) / 64
	if cap(sc.invBuf) < n*w {
		sc.invBuf = make(bitset, n*w)
	}
	buf := sc.invBuf[:n*w]
	clear(buf)
	if cap(sc.inv) < n {
		sc.inv = make([]bitset, n)
	}
	inv := sc.inv[:n]
	for i := 0; i < n; i++ {
		inv[i] = buf[i*w : (i+1)*w]
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !s.Overlaps(int(group[i]), int(group[j])) {
				inv[i].set(j)
				inv[j].set(i)
			}
		}
	}
	idx := maxCliqueIdx(n, w, inv, sc)
	slices.Sort(idx)
	for _, i := range idx {
		out = append(out, group[i])
	}
	return out
}

// greedyIdx picks one group's embeddings in order of ascending maximum
// node index (interval-scheduling heuristic: blocks are linear, so
// finishing early conflicts least), appending the chosen rows to out.
func greedyIdx(s *EmbSet, group []int32, sc *misScratch, out []int32) []int32 {
	if cap(sc.items) < len(group) {
		sc.items = make([]greedyItem, len(group))
	}
	items := sc.items[:len(group)]
	for i, row := range group {
		b := bitset(s.nodeBits(int(row)))
		items[i] = greedyItem{row: row, minN: int32(b.first()), maxN: int32(b.last())}
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].maxN != items[b].maxN {
			return items[a].maxN < items[b].maxN
		}
		return items[a].minN < items[b].minN
	})
	base := len(out)
	for _, it := range items {
		ok := true
		for _, chosen := range out[base:] {
			if s.Overlaps(int(it.row), int(chosen)) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, it.row)
		}
	}
	return out
}
