package mining

import (
	"math/bits"
	"sort"
)

// This file computes maximum sets of non-overlapping embeddings (paper
// §3.4): the nodes of the collision graph are a pattern's embeddings, two
// embeddings collide when they share an instruction, and the largest
// extractable set is a maximum independent set (equivalently a maximum
// clique in the inverted collision graph). We follow the paper's choice of
// an exact colour-bounded branch-and-bound (Kumlander 2004 is a
// colour-class backtracking search of this family) on the inverted graph,
// with a greedy fallback above a size threshold.

// bitset is a fixed-capacity bit vector.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) clone() bitset {
	out := make(bitset, len(b))
	copy(out, b)
	return out
}

func (b bitset) and(o bitset) bitset {
	out := make(bitset, len(b))
	for i := range b {
		out[i] = b[i] & o[i]
	}
	return out
}

func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// forEach calls f for every set bit in ascending order.
func (b bitset) forEach(f func(int)) {
	for wi, w := range b {
		for w != 0 {
			f(wi*64 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// first returns the lowest set bit, or -1.
func (b bitset) first() int {
	for wi, w := range b {
		if w != 0 {
			return wi*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// maxClique finds a maximum clique in the graph given by adjacency
// bitsets, using greedy-colouring bounds (Tomita-style; the same bound
// family as Kumlander's colour-class backtracking).
func maxClique(n int, adj []bitset) []int {
	var best []int
	cand := newBitset(n)
	for i := 0; i < n; i++ {
		cand.set(i)
	}
	var expand func(r []int, p bitset)
	expand = func(r []int, p bitset) {
		if p.empty() {
			if len(r) > len(best) {
				best = append([]int(nil), r...)
			}
			return
		}
		order, bound := colourSort(p, adj)
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			if len(r)+bound[i] <= len(best) {
				return
			}
			expand(append(r, v), p.and(adj[v]))
			p.clear(v)
		}
	}
	expand(nil, cand)
	return best
}

// colourSort greedily colours the candidate set and returns the vertices
// ordered by colour class, with bound[i] = colour number of order[i]
// (an upper bound on the clique extension using order[:i+1]).
func colourSort(p bitset, adj []bitset) (order []int, bound []int) {
	var verts []int
	p.forEach(func(v int) { verts = append(verts, v) })
	remaining := p.clone()
	colour := 0
	for len(order) < len(verts) {
		colour++
		avail := remaining.clone()
		for !avail.empty() {
			v := avail.first()
			order = append(order, v)
			bound = append(bound, colour)
			remaining.clear(v)
			avail.clear(v)
			// remove neighbours of v from this colour class
			for i := range avail {
				avail[i] &^= adj[v][i]
			}
		}
	}
	return order, bound
}

// DisjointEmbeddings returns a maximum (or, above the exact-solver size
// limit, greedily maximal) set of pairwise non-overlapping embeddings.
// Embeddings are grouped per graph — overlap is only possible within one
// graph — and solved independently.
func DisjointEmbeddings(embs []*Embedding, cfg Config) []*Embedding {
	byGID := map[int][]*Embedding{}
	var gids []int
	for _, e := range embs {
		if _, ok := byGID[e.GID]; !ok {
			gids = append(gids, e.GID)
		}
		byGID[e.GID] = append(byGID[e.GID], e)
	}
	sort.Ints(gids)

	var out []*Embedding
	for _, gid := range gids {
		group := dedupeByNodeSet(byGID[gid])
		if cfg.GreedyMIS || len(group) > cfg.exactLimit() {
			out = append(out, greedyDisjoint(group)...)
			continue
		}
		out = append(out, exactDisjoint(group)...)
	}
	return out
}

// dedupeByNodeSet drops embeddings covering an identical node set
// (automorphic remappings are interchangeable for extraction).
func dedupeByNodeSet(group []*Embedding) []*Embedding {
	seen := map[string]bool{}
	var out []*Embedding
	for _, e := range group {
		k := ""
		for _, n := range e.NodeSet() {
			k += itoa(n) + ","
		}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, e)
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// exactDisjoint computes a maximum independent set of embeddings as a
// maximum clique in the inverted collision graph.
func exactDisjoint(group []*Embedding) []*Embedding {
	n := len(group)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return group
	}
	inv := make([]bitset, n)
	for i := range inv {
		inv[i] = newBitset(n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !group[i].Overlaps(group[j]) {
				inv[i].set(j)
				inv[j].set(i)
			}
		}
	}
	idx := maxClique(n, inv)
	sort.Ints(idx)
	out := make([]*Embedding, 0, len(idx))
	for _, i := range idx {
		out = append(out, group[i])
	}
	return out
}

// greedyDisjoint picks embeddings in order of ascending maximum node
// index (interval-scheduling heuristic: blocks are linear, so finishing
// early conflicts least).
func greedyDisjoint(group []*Embedding) []*Embedding {
	type item struct {
		e          *Embedding
		maxN, minN int
	}
	items := make([]item, len(group))
	for i, e := range group {
		ns := e.NodeSet()
		items[i] = item{e: e, minN: ns[0], maxN: ns[len(ns)-1]}
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].maxN != items[b].maxN {
			return items[a].maxN < items[b].maxN
		}
		return items[a].minN < items[b].minN
	})
	var out []*Embedding
	for _, it := range items {
		ok := true
		for _, chosen := range out {
			if it.e.Overlaps(chosen) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, it.e)
		}
	}
	return out
}
