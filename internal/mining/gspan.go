package mining

import (
	"context"
	"slices"
	"sync"
)

// Pattern is a frequent fragment.
type Pattern struct {
	Code       Code
	Labels     []string // node labels by DFS index
	Embeddings *EmbSet  // all occurrences, one slab row each
	// Support is the miner's frequency: number of graphs containing the
	// pattern for DgSpan, size of a maximum set of non-overlapping
	// embeddings for Edgar.
	Support int
	// Disjoint is a maximum non-overlapping subset of Embeddings, as row
	// indices (computed only in embedding-support mode).
	Disjoint []int32
}

// Config controls a mining run.
type Config struct {
	// MinSupport is the frequency threshold (≥ 2 for PA).
	MinSupport int
	// MaxNodes caps pattern size (0 = unlimited).
	MaxNodes int
	// EmbeddingSupport selects Edgar's frequency (non-overlapping
	// embeddings) over DgSpan's graph count.
	EmbeddingSupport bool
	// GreedyMIS replaces the exact maximum-independent-set computation
	// with the greedy heuristic everywhere (ablation knob).
	GreedyMIS bool
	// MISExactLimit is the per-graph embedding count above which the
	// exact MIS falls back to greedy (0 = default 24; dense collision
	// graphs above that size cost more than their occasional extra
	// embedding is worth).
	MISExactLimit int
	// MaxPatterns aborts the search after visiting this many frequent
	// patterns (0 = unlimited); a safety valve for adversarial inputs.
	MaxPatterns int
	// PruneSubtree, when non-nil, is consulted after each visit: if it
	// returns true the pattern's extensions are skipped. Callers use it
	// for benefit-bound pruning (no descendant can beat the incumbent),
	// the PA-specific pruning of paper §3.5.
	PruneSubtree func(*Pattern) bool
	// ViableCount, when non-nil, filters extension groups by raw
	// candidate count before their embeddings are materialised: a group
	// with count c can only yield patterns of support <= c, so callers
	// prune groups whose optimistic benefit cannot matter. Must be
	// monotone (viable(c) implies viable(c+1)).
	ViableCount func(count int) bool
	// Lexicographic forces the classic gSpan sibling order: children are
	// visited in ascending DFS-code tuple order. By default (false) the
	// walk is benefit-directed: materialised siblings are visited in
	// descending order of their misUpperBound (an admissible bound on the
	// extractable-embedding count of the child's whole subtree), with the
	// tuple order as a deterministic tie-break, so high-payoff subtrees
	// raise the caller's incumbent before the long tail is walked. Both
	// orders visit the same pattern set absent pruning; callers whose
	// PruneSubtree/PruneChild policies are admissible and strict get
	// identical final incumbents either way.
	Lexicographic bool
	// PruneChild, when non-nil, is consulted immediately before each
	// child descent with the child's materialised embedding set and its
	// misUpperBound. Returning true skips the child: its pattern is never
	// built, visited or counted. Unlike ViableCount it runs between
	// sibling descents, so it observes incumbent state raised by earlier
	// siblings — the branch-and-bound half of the benefit-directed walk.
	PruneChild func(set *EmbSet, bound int) bool
	// ChildBound, when non-nil, may tighten the misUpperBound of a child
	// before it is used for sibling ordering and passed to PruneChild:
	// given the parent's code, the child's extending tuple, its
	// materialised embedding set and the misUpperBound, it returns a
	// support bound ≤ the input. It must stay admissible (an upper bound
	// on the MIS support of the child and every descendant) and must be a
	// pure function of its arguments — it runs on speculation workers and
	// its result feeds checkpointed bound records. The multiresolution
	// layer uses it to apply coarse-graph capacity tables by tuple class.
	ChildBound func(code Code, t Tuple, set *EmbSet, bound int) int
	// ChildScore, when non-nil, supplies a search-order hint for the
	// benefit-directed walk: among children of equal bound, those with a
	// higher score are descended first (tuple order remains the final
	// tie-break, keeping the order total and deterministic). Scores are
	// advisory only — they never prune, so completeness and, under
	// admissible strict pruning, the final incumbent set are unaffected.
	// Must be a pure function of its arguments (speculation workers call
	// it). The multiresolution layer scores children by how well their
	// tuple's class performed in the exhaustive coarse mine.
	ChildScore func(code Code, t Tuple, set *EmbSet) int
	// Workers > 1 mines seed subtrees speculatively on that many
	// goroutines and replays them deterministically (see parallel.go);
	// the visit sequence is identical to the serial search. Workers <= 1
	// keeps the fully serial search. When Workers > 1 and NewSpeculator
	// is nil, PruneSubtree and ViableCount are called concurrently and
	// must be safe for concurrent use.
	Workers int
	// Checkpoint, when non-nil, may fast-forward whole lattice subtrees
	// recorded by an earlier equivalent walk (see Checkpointer). All its
	// methods run on the authoritative goroutine only.
	Checkpoint Checkpointer
	// Minimal, when non-nil, replaces Code.IsMinimal for the canonical-
	// form test. Minimality is a pure function of the code, so callers
	// use this to memoise it across runs over overlapping lattices. Must
	// agree exactly with Code.IsMinimal and, when Workers > 1, be safe
	// for concurrent use (speculation workers consult it).
	Minimal func(Code) bool
	// NoteTruncated, when non-nil, is called once at the end of a walk
	// the MaxPatterns budget aborted (on the authoritative goroutine).
	// Deterministic: truncation is part of the visit sequence, identical
	// across worker widths. Callers use it to tell a complete walk from a
	// truncated one — e.g. the dictionary warm-start discards its
	// incumbent floor when the walk was cut, because a cold walk could
	// truncate at a different lattice point.
	NoteTruncated func()
	// NewSpeculator, when non-nil, supplies per-worker callbacks for the
	// speculative phase of the parallel search. Speculation callbacks may
	// consult shared incumbent state (under their own locking) and may
	// memoise side results, but must not mutate anything the
	// authoritative visit/PruneSubtree/ViableCount path depends on:
	// correctness never depends on what speculation decides, only the
	// amount of replay fallback work does.
	NewSpeculator func() *Speculator
	// RemoteSpec, when non-nil, sources a seed subtree's speculation from
	// a shard worker instead of a local goroutine: called with the
	// canonical seed index (the position in seedPatterns order), it
	// returns a recorded subtree in the spec-tree wire form, which is
	// decoded around the coordinator's own seed pattern and handed to the
	// authoritative replay exactly like a locally-speculated tree. Any
	// error — or a payload that fails decoding — falls back to local
	// speculation for that seed, so a dead or corrupt shard costs work,
	// never output. Activates the speculate-then-replay pipeline even at
	// Workers <= 1. Incompatible with ChildBound/ChildScore (the shard
	// cannot evaluate coordinator closures whose results replay consumes
	// authoritatively); Mine panics on that combination.
	RemoteSpec func(ctx context.Context, seed int) ([]byte, error)
	// NoteRemoteSpec, when non-nil, receives the remote-speculation
	// accounting once at the end of a RemoteSpec walk (on the calling
	// goroutine): seeds attempted remotely, subtrees successfully decoded,
	// and seeds that fell back to local speculation.
	NoteRemoteSpec func(seeds, subtrees, fallbacks int)
}

func (c Config) minimal(code Code) bool {
	if c.Minimal != nil {
		return c.Minimal(code)
	}
	return code.IsMinimal()
}

func (c Config) exactLimit() int {
	if c.MISExactLimit == 0 {
		return 24
	}
	return c.MISExactLimit
}

// needBounds reports whether the walk computes misUpperBound per child:
// either the sibling order is benefit-directed or a PruneChild policy
// wants the bound.
func (c Config) needBounds() bool {
	return !c.Lexicographic || c.PruneChild != nil
}

// ext is one grouped rightmost extension. bound is the child's
// misUpperBound (tightened by Config.ChildBound when set), filled only
// when Config.needBounds; score is Config.ChildScore's order hint.
type ext struct {
	t     Tuple
	set   *EmbSet
	bound int
	score int
}

// cmpExt is the benefit-directed sibling order: descending bound, then
// descending score, then canonical tuple order. Tuples are unique within
// a sibling group, so the order is total and independent of sort
// stability.
func cmpExt(a, b ext) int {
	if a.bound != b.bound {
		return b.bound - a.bound
	}
	if a.score != b.score {
		return b.score - a.score
	}
	return CompareTuples(a.t, b.t)
}

// marks is per-graph scratch state for embedding traversal, versioned so
// it never needs clearing.
type marks struct {
	nodeVer []int32
	nodeVal []int32
	edgeVer []int32
	ver     int32
}

func (m *marks) reset(g *Graph) {
	if len(m.nodeVer) < g.NumNodes() {
		m.nodeVer = make([]int32, g.NumNodes())
		m.nodeVal = make([]int32, g.NumNodes())
	}
	if len(m.edgeVer) < len(g.Edges) {
		m.edgeVer = make([]int32, len(g.Edges))
	}
	m.ver++
}

func (m *marks) mapNode(n, dfs int) { m.nodeVer[n] = m.ver; m.nodeVal[n] = int32(dfs) }

func (m *marks) nodeDFS(n int) (int, bool) {
	if m.nodeVer[n] == m.ver {
		return int(m.nodeVal[n]), true
	}
	return 0, false
}

func (m *marks) useEdge(e int) { m.edgeVer[e] = m.ver }

func (m *marks) edgeUsed(e int) bool { return m.edgeVer[e] == m.ver }

// cand is one not-yet-materialised extension candidate (pass 1): the
// parent embedding's row, the realising graph edge, and the newly mapped
// node (-1 for backward extensions). Three int32s — no pointers.
type cand struct {
	emb     int32
	eid     int32
	newNode int32
}

// rawGroup is one tuple-grouped set of extension candidates before
// materialisation. Its contents are independent of any incumbent state:
// only which groups get materialised is a policy decision.
type rawGroup struct {
	t     Tuple
	cands []cand
}

// scratch is the pooled per-miner scratch state of the walk's inner
// loop. Every buffer here is dead by the time the walk descends a level
// (extendGroups output is fully materialised before any child visit), so
// one instance serves all recursion depths.
type scratch struct {
	onPath []bool          // rightmost-path membership by DFS index
	groups map[Tuple]int32 // tuple -> slot in gl (cleared per extendGroups)
	gl     []rawGroup      // groups in discovery order
	spare  [][]cand        // capacity-retaining cand buffers by slot
	out    []rawGroup      // filtered, sorted extendGroups result

	dedupe map[uint64]int32 // row hash -> first child row with that hash
	chain  []int32          // next child row with the same hash

	gseen map[int32]struct{} // distinct-graph counting (graph support)

	labels []string // node labels of the current code, by DFS index
	rmpath []int    // rightmost path of the current code
	parent []int32  // rightmostPathInto's per-node scratch

	seed EmbSet // IsMinimal's step-0 partial isomorphisms
	pg   Graph  // IsMinimal's pattern graph, rebuilt in place
	cur  Code   // IsMinimal's growing minimal-code prefix
	exts []ext  // extendFull's output buffer

	mis misScratch // independent-set solver scratch
}

// miner holds one search instance: configuration, per-instance scratch
// state (the marks and scratch buffers — the reason a worker cannot
// share a miner) and the serial visit bookkeeping.
type miner struct {
	cfg     Config
	graphOf func(int) *Graph
	visit   func(*Pattern)
	visited int
	aborted bool
	mk      marks   // reused across extendGroups calls
	sc      scratch // reused across all lattice levels
}

// extendGroups computes all rightmost extensions of (code, set) grouped
// by tuple, sorted by tuple order, without materialising child
// embeddings. Groups whose raw candidate count cannot reach MinSupport
// are dropped (a config constant, so this is state-independent). The
// returned slice and its cand buffers alias the miner's scratch: they
// are valid until the next extendGroups call on this miner, and every
// caller materialises them before descending.
func (mn *miner) extendGroups(code Code, set *EmbSet) []rawGroup {
	sc := &mn.sc
	sc.rmpath, sc.parent = code.rightmostPathInto(sc.rmpath, sc.parent)
	rmpath := sc.rmpath
	if len(rmpath) == 0 {
		return nil
	}
	rm := rmpath[len(rmpath)-1]
	sc.labels = code.nodeLabelsInto(sc.labels)
	labels := sc.labels
	numNodes := len(labels)
	if cap(sc.onPath) < numNodes {
		sc.onPath = make([]bool, numNodes)
	} else {
		sc.onPath = sc.onPath[:numNodes]
		clear(sc.onPath)
	}
	for _, v := range rmpath {
		sc.onPath[v] = true
	}
	if sc.groups == nil {
		sc.groups = make(map[Tuple]int32, 32)
	} else {
		clear(sc.groups)
	}
	sc.gl = sc.gl[:0]
	add := func(t Tuple, c cand) {
		slot, ok := sc.groups[t]
		if !ok {
			slot = int32(len(sc.gl))
			sc.groups[t] = slot
			var buf []cand
			if int(slot) < len(sc.spare) {
				buf = sc.spare[slot][:0]
			}
			sc.gl = append(sc.gl, rawGroup{t: t, cands: buf})
		}
		sc.gl[slot].cands = append(sc.gl[slot].cands, c)
	}

	// Pass 1: enumerate candidate extensions without materialising
	// child embeddings.
	mk := &mn.mk
	for i := 0; i < set.Len(); i++ {
		g := mn.graphOf(set.GID(i))
		mk.reset(g)
		nodes := set.Nodes(i)
		for di, n := range nodes {
			mk.mapNode(int(n), di)
		}
		for _, eid := range set.Edges(i) {
			mk.useEdge(int(eid))
		}
		// Backward from the rightmost vertex to rightmost-path vertices.
		vrm := int(nodes[rm])
		for _, h := range g.adj[vrm] {
			if mk.edgeUsed(h.eid) {
				continue
			}
			du, ok := mk.nodeDFS(h.other)
			if !ok || du == rm || !sc.onPath[du] {
				continue
			}
			t := Tuple{I: rm, J: du, LI: labels[rm], LJ: labels[du], Out: h.out, LE: h.label}
			add(t, cand{emb: int32(i), eid: int32(h.eid), newNode: -1})
		}
		// Forward from every rightmost-path vertex to an unmapped node.
		for _, w := range rmpath {
			vw := int(nodes[w])
			for _, h := range g.adj[vw] {
				if mk.edgeUsed(h.eid) {
					continue
				}
				if _, ok := mk.nodeDFS(h.other); ok {
					continue
				}
				t := Tuple{I: w, J: numNodes, LI: labels[w], LJ: g.Labels[h.other], Out: h.out, LE: h.label}
				add(t, cand{emb: int32(i), eid: int32(h.eid), newNode: int32(h.other)})
			}
		}
	}

	// Retain grown cand buffers for the next call before filtering.
	for i := range sc.gl {
		if i < len(sc.spare) {
			sc.spare[i] = sc.gl[i].cands
		} else {
			sc.spare = append(sc.spare, sc.gl[i].cands)
		}
	}
	sc.out = sc.out[:0]
	for _, g := range sc.gl {
		if len(g.cands) < mn.cfg.MinSupport {
			continue
		}
		sc.out = append(sc.out, g)
	}
	slices.SortFunc(sc.out, func(a, b rawGroup) int { return CompareTuples(a.t, b.t) })
	return sc.out
}

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// materialize is pass 2 for one group: write the child embeddings into a
// fresh slab, deduplicating automorphic rediscoveries by 64-bit row hash
// with exact verification on collision. Each child row is the parent row
// extended in place — the only allocations are the child set's slabs. ok
// is false when deduplication drops the group below MinSupport.
// Deterministic: the result depends only on the group.
func (mn *miner) materialize(g rawGroup, parent *EmbSet) (set *EmbSet, ok bool) {
	fwd := g.t.Forward()
	ck, ce := parent.k, parent.e+1
	if fwd {
		ck++
	}
	st := ck + ce
	child := &EmbSet{
		k:    ck,
		e:    ce,
		gids: make([]int32, 0, len(g.cands)),
		tup:  make([]int32, 0, len(g.cands)*st),
	}
	sc := &mn.sc
	if sc.dedupe == nil {
		sc.dedupe = make(map[uint64]int32, len(g.cands))
	} else {
		clear(sc.dedupe)
	}
	if cap(sc.chain) < len(g.cands) {
		sc.chain = make([]int32, len(g.cands))
	}
	chain := sc.chain[:len(g.cands)]
	for _, c := range g.cands {
		gid := parent.gids[c.emb]
		base := len(child.tup)
		child.tup = append(child.tup, parent.Nodes(int(c.emb))...)
		if fwd {
			child.tup = append(child.tup, c.newNode)
		}
		child.tup = append(child.tup, parent.Edges(int(c.emb))...)
		child.tup = append(child.tup, c.eid)
		row := child.tup[base:]
		h := hashRow(gid, row)
		if first, hit := sc.dedupe[h]; hit {
			dup := false
			for j := first; j >= 0; j = chain[j] {
				if child.gids[j] == gid && int32sEqual(child.row(int(j)), row) {
					dup = true
					break
				}
			}
			if dup {
				child.tup = child.tup[:base]
				continue
			}
			chain[child.n] = first
			sc.dedupe[h] = int32(child.n)
		} else {
			chain[child.n] = -1
			sc.dedupe[h] = int32(child.n)
		}
		child.gids = append(child.gids, gid)
		child.n++
	}
	return child, child.n >= mn.cfg.MinSupport
}

// minimalPool holds miners for IsMinimal's minimal-code simulation: the
// test runs once per candidate child, so its scratch (marks, group
// buffers, dedupe maps) is pooled rather than reallocated per call.
var minimalPool = sync.Pool{
	New: func() any {
		mn := &miner{cfg: Config{MinSupport: 1}}
		mn.graphOf = func(int) *Graph { return &mn.sc.pg }
		return mn
	},
}

// extendFull materialises every extension group without frequency or
// viability filtering — the minimality test simulates minimal-code
// growth on a single pattern graph and needs them all. The returned
// slice aliases the miner's scratch and is valid until the next
// extendFull call; the materialised sets it points to are not.
func extendFull(mn *miner, code Code, set *EmbSet) []ext {
	groups := mn.extendGroups(code, set)
	out := mn.sc.exts[:0]
	for _, g := range groups {
		if cset, ok := mn.materialize(g, set); ok {
			out = append(out, ext{t: g.t, set: cset})
		}
	}
	mn.sc.exts = out
	return out
}

// pattern builds the Pattern for (code, set) and computes its support
// (and Disjoint in embedding mode). Pure given the inputs.
func (mn *miner) pattern(code Code, set *EmbSet) *Pattern {
	p := &Pattern{Code: code, Labels: code.NodeLabels(), Embeddings: set}
	p.Support = mn.computeSupport(p)
	return p
}

// computeSupport fills in Support (and Disjoint in embedding mode).
func (mn *miner) computeSupport(p *Pattern) int {
	if !mn.cfg.EmbeddingSupport {
		sc := &mn.sc
		if sc.gseen == nil {
			sc.gseen = make(map[int32]struct{}, 16)
		} else {
			clear(sc.gseen)
		}
		for _, g := range p.Embeddings.gids {
			sc.gseen[g] = struct{}{}
		}
		return len(sc.gseen)
	}
	p.Disjoint = disjointIndices(p.Embeddings, mn.cfg, &mn.sc.mis)
	return len(p.Disjoint)
}

// dfs is the serial search step: build the pattern, check frequency,
// then visit and descend (or fast-forward the whole subtree through the
// checkpointer).
func (mn *miner) dfs(code Code, set *EmbSet) {
	if mn.aborted {
		return
	}
	p := mn.pattern(code, set)
	if p.Support < mn.cfg.MinSupport {
		return
	}
	mn.visitFrequent(p, func() { mn.expand(code, set) })
}

// step visits a frequent pattern and, unless a bound stops it, expands
// its extensions. Shared verbatim between the serial search and the
// deterministic replay of speculative subtrees.
func (mn *miner) step(p *Pattern) bool {
	mn.visit(p)
	mn.visited++
	if mn.cfg.MaxPatterns > 0 && mn.visited >= mn.cfg.MaxPatterns {
		mn.aborted = true
		return false
	}
	if mn.cfg.MaxNodes > 0 && p.Code.NumNodes() >= mn.cfg.MaxNodes {
		return false
	}
	if mn.cfg.PruneSubtree != nil && mn.cfg.PruneSubtree(p) {
		return false
	}
	return true
}

// expand enumerates, filters and materialises the extensions of (code,
// set), then recurses into each minimal child. Group viability and
// materialisation happen before any child is visited — the incumbent
// state a child visit mutates must not influence its siblings' group
// filtering, exactly as in a monolithic extend-then-loop. Materialising
// every kid first also releases the group scratch before the recursion
// reuses it. Only two things happen between sibling descents, and both
// are deliberate: the benefit-directed order (bounds are pure functions
// of the child sets) and PruneChild, which exists precisely to see the
// incumbent raised by earlier siblings.
func (mn *miner) expand(code Code, set *EmbSet) {
	groups := mn.extendGroups(code, set)
	kids := make([]ext, 0, len(groups))
	for _, g := range groups {
		if mn.cfg.ViableCount != nil && !mn.cfg.ViableCount(len(g.cands)) {
			continue
		}
		cset, ok := mn.materialize(g, set)
		if !ok {
			continue
		}
		kids = append(kids, ext{t: g.t, set: cset})
	}
	if mn.cfg.needBounds() {
		for i := range kids {
			kids[i].bound = misUpperBound(kids[i].set, &mn.sc.mis)
			if mn.cfg.ChildBound != nil {
				if b := mn.cfg.ChildBound(code, kids[i].t, kids[i].set, kids[i].bound); b < kids[i].bound {
					kids[i].bound = b
				}
			}
		}
		if !mn.cfg.Lexicographic {
			if mn.cfg.ChildScore != nil {
				for i := range kids {
					kids[i].score = mn.cfg.ChildScore(code, kids[i].t, kids[i].set)
				}
			}
			slices.SortFunc(kids, cmpExt)
		}
	}
	for _, k := range kids {
		if mn.cfg.PruneChild != nil && mn.cfg.PruneChild(k.set, k.bound) {
			continue
		}
		child := append(append(Code{}, code...), k.t)
		if !mn.cfg.minimal(child) {
			continue
		}
		mn.dfs(child, k.set)
	}
}

// Mine enumerates every frequent pattern with at least one edge, calling
// visit for each (in canonical DFS-code growth order, benefit-directed
// among siblings unless cfg.Lexicographic). The search is complete:
// every frequent fragment is reported exactly once (via the
// minimal-DFS-code test), except where a PruneChild policy cuts a
// subtree. With cfg.Workers > 1 the seed subtrees are mined
// speculatively in parallel and replayed in order; the visit sequence
// (patterns, order, truncation point) is identical to the serial search.
// The return value is the number of patterns visited, including visits
// charged by checkpoint fast-forwards — a deterministic work metric.
func Mine(graphs []*Graph, cfg Config, visit func(*Pattern)) int {
	byID := map[int]*Graph{}
	for _, g := range graphs {
		if g.adj == nil {
			g.Freeze()
		}
		byID[g.ID] = g
	}
	graphOf := func(id int) *Graph { return byID[id] }
	roots := seedPatterns(graphs)

	if cfg.RemoteSpec != nil && (cfg.ChildBound != nil || cfg.ChildScore != nil) {
		panic("mining: RemoteSpec cannot be combined with ChildBound/ChildScore")
	}
	if (cfg.Workers > 1 || cfg.RemoteSpec != nil) && len(roots) > 1 {
		return mineParallel(graphOf, roots, cfg, visit)
	}
	mn := &miner{cfg: cfg, graphOf: graphOf, visit: visit}
	for _, s := range roots {
		mn.dfs(Code{s.t}, s.set)
	}
	if mn.aborted && cfg.NoteTruncated != nil {
		cfg.NoteTruncated()
	}
	return mn.visited
}

// seedPatterns builds the 1-edge root patterns: one per distinct minimal
// single-edge tuple, in canonical tuple order. Embedding rows are packed
// straight into per-seed slabs.
func seedPatterns(graphs []*Graph) []*ext {
	// rows accumulates (gid, src-node, dst-node, eid) quads per tuple.
	seeds := map[Tuple]*[]int32{}
	for _, g := range graphs {
		for v := range g.Labels {
			for _, h := range g.adj[v] {
				if !h.out {
					continue // visit each edge once, from its source
				}
				a := Tuple{I: 0, J: 1, LI: g.Labels[v], LJ: g.Labels[h.other], Out: true, LE: h.label}
				b := Tuple{I: 0, J: 1, LI: g.Labels[h.other], LJ: g.Labels[v], Out: false, LE: h.label}
				t := a
				n0, n1 := v, h.other
				if CompareTuples(b, a) < 0 {
					t = b
					n0, n1 = h.other, v
				}
				rows, ok := seeds[t]
				if !ok {
					rows = new([]int32)
					seeds[t] = rows
				}
				*rows = append(*rows, int32(g.ID), int32(n0), int32(n1), int32(h.eid))
			}
		}
	}
	out := make([]*ext, 0, len(seeds))
	for t, rows := range seeds {
		set := &EmbSet{
			k:    2,
			e:    1,
			n:    len(*rows) / 4,
			gids: make([]int32, 0, len(*rows)/4),
			tup:  make([]int32, 0, len(*rows)/4*3),
		}
		for i := 0; i < len(*rows); i += 4 {
			set.gids = append(set.gids, (*rows)[i])
			set.tup = append(set.tup, (*rows)[i+1], (*rows)[i+2], (*rows)[i+3])
		}
		out = append(out, &ext{t: t, set: set})
	}
	slices.SortFunc(out, func(a, b *ext) int { return CompareTuples(a.t, b.t) })
	return out
}
