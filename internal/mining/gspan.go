package mining

import (
	"sort"
	"strconv"
)

// Embedding is one occurrence of a pattern in a graph: Nodes[k] is the
// graph node playing DFS index k, Edges[k] the graph edge realising code
// tuple k.
type Embedding struct {
	GID   int
	Nodes []int
	Edges []int
}

// key identifies an embedding exactly (for deduplication of automorphic
// rediscoveries).
func (e *Embedding) key() string {
	buf := make([]byte, 0, 8+6*(len(e.Nodes)+len(e.Edges)))
	buf = strconv.AppendInt(buf, int64(e.GID), 10)
	buf = append(buf, ':')
	for _, n := range e.Nodes {
		buf = strconv.AppendInt(buf, int64(n), 10)
		buf = append(buf, ',')
	}
	buf = append(buf, '|')
	for _, d := range e.Edges {
		buf = strconv.AppendInt(buf, int64(d), 10)
		buf = append(buf, ',')
	}
	return string(buf)
}

// NodeSet returns the sorted set of graph nodes covered.
func (e *Embedding) NodeSet() []int {
	out := append([]int(nil), e.Nodes...)
	sort.Ints(out)
	return out
}

// Overlaps reports whether two embeddings share a node (they then collide
// in the collision graph: at most one can be outlined, paper §3.4).
func (e *Embedding) Overlaps(o *Embedding) bool {
	if e.GID != o.GID {
		return false
	}
	for _, a := range e.Nodes {
		for _, b := range o.Nodes {
			if a == b {
				return true
			}
		}
	}
	return false
}

// Pattern is a frequent fragment.
type Pattern struct {
	Code       Code
	Labels     []string // node labels by DFS index
	Embeddings []*Embedding
	// Support is the miner's frequency: number of graphs containing the
	// pattern for DgSpan, size of a maximum set of non-overlapping
	// embeddings for Edgar.
	Support int
	// Disjoint is a maximum non-overlapping subset of Embeddings
	// (computed only in embedding-support mode).
	Disjoint []*Embedding
}

// Config controls a mining run.
type Config struct {
	// MinSupport is the frequency threshold (≥ 2 for PA).
	MinSupport int
	// MaxNodes caps pattern size (0 = unlimited).
	MaxNodes int
	// EmbeddingSupport selects Edgar's frequency (non-overlapping
	// embeddings) over DgSpan's graph count.
	EmbeddingSupport bool
	// GreedyMIS replaces the exact maximum-independent-set computation
	// with the greedy heuristic everywhere (ablation knob).
	GreedyMIS bool
	// MISExactLimit is the per-graph embedding count above which the
	// exact MIS falls back to greedy (0 = default 24; dense collision
	// graphs above that size cost more than their occasional extra
	// embedding is worth).
	MISExactLimit int
	// MaxPatterns aborts the search after visiting this many frequent
	// patterns (0 = unlimited); a safety valve for adversarial inputs.
	MaxPatterns int
	// PruneSubtree, when non-nil, is consulted after each visit: if it
	// returns true the pattern's extensions are skipped. Callers use it
	// for benefit-bound pruning (no descendant can beat the incumbent),
	// the PA-specific pruning of paper §3.5.
	PruneSubtree func(*Pattern) bool
	// ViableCount, when non-nil, filters extension groups by raw
	// candidate count before their embeddings are materialised: a group
	// with count c can only yield patterns of support <= c, so callers
	// prune groups whose optimistic benefit cannot matter. Must be
	// monotone (viable(c) implies viable(c+1)).
	ViableCount func(count int) bool
	// Workers > 1 mines seed subtrees speculatively on that many
	// goroutines and replays them deterministically (see parallel.go);
	// the visit sequence is identical to the serial search. Workers <= 1
	// keeps the fully serial search. When Workers > 1 and NewSpeculator
	// is nil, PruneSubtree and ViableCount are called concurrently and
	// must be safe for concurrent use.
	Workers int
	// Checkpoint, when non-nil, may fast-forward whole lattice subtrees
	// recorded by an earlier equivalent walk (see Checkpointer). All its
	// methods run on the authoritative goroutine only.
	Checkpoint Checkpointer
	// Minimal, when non-nil, replaces Code.IsMinimal for the canonical-
	// form test. Minimality is a pure function of the code, so callers
	// use this to memoise it across runs over overlapping lattices. Must
	// agree exactly with Code.IsMinimal and, when Workers > 1, be safe
	// for concurrent use (speculation workers consult it).
	Minimal func(Code) bool
	// NewSpeculator, when non-nil, supplies per-worker callbacks for the
	// speculative phase of the parallel search. Speculation callbacks may
	// consult shared incumbent state (under their own locking) and may
	// memoise side results, but must not mutate anything the
	// authoritative visit/PruneSubtree/ViableCount path depends on:
	// correctness never depends on what speculation decides, only the
	// amount of replay fallback work does.
	NewSpeculator func() *Speculator
}

func (c Config) minimal(code Code) bool {
	if c.Minimal != nil {
		return c.Minimal(code)
	}
	return code.IsMinimal()
}

func (c Config) exactLimit() int {
	if c.MISExactLimit == 0 {
		return 24
	}
	return c.MISExactLimit
}

// ext is one grouped rightmost extension.
type ext struct {
	t    Tuple
	embs []*Embedding
}

// marks is per-graph scratch state for embedding traversal, versioned so
// it never needs clearing.
type marks struct {
	nodeVer []int32
	nodeVal []int32
	edgeVer []int32
	ver     int32
}

func (m *marks) reset(g *Graph) {
	if len(m.nodeVer) < g.NumNodes() {
		m.nodeVer = make([]int32, g.NumNodes())
		m.nodeVal = make([]int32, g.NumNodes())
	}
	if len(m.edgeVer) < len(g.Edges) {
		m.edgeVer = make([]int32, len(g.Edges))
	}
	m.ver++
}

func (m *marks) mapNode(n, dfs int) { m.nodeVer[n] = m.ver; m.nodeVal[n] = int32(dfs) }

func (m *marks) nodeDFS(n int) (int, bool) {
	if m.nodeVer[n] == m.ver {
		return int(m.nodeVal[n]), true
	}
	return 0, false
}

func (m *marks) useEdge(e int) { m.edgeVer[e] = m.ver }

func (m *marks) edgeUsed(e int) bool { return m.edgeVer[e] == m.ver }

// cand is one not-yet-materialised extension candidate (pass 1).
type cand struct {
	emb     *Embedding
	eid     int
	newNode int // -1 for backward extensions
}

// rawGroup is one tuple-grouped set of extension candidates before
// materialisation. Its contents are independent of any incumbent state:
// only which groups get materialised is a policy decision.
type rawGroup struct {
	t     Tuple
	cands []cand
}

// miner holds one search instance: configuration, per-instance scratch
// state (the marks arrays — the reason a worker cannot share a miner)
// and the serial visit bookkeeping.
type miner struct {
	cfg     Config
	graphOf func(int) *Graph
	visit   func(*Pattern)
	visited int
	aborted bool
	mk      marks // reused across extendGroups calls
}

// extendGroups computes all rightmost extensions of (code, embs) grouped
// by tuple, sorted by tuple order, without materialising child
// embeddings. Groups whose raw candidate count cannot reach MinSupport
// are dropped (a config constant, so this is state-independent).
func (mn *miner) extendGroups(code Code, embs []*Embedding) []rawGroup {
	rmpath := code.RightmostPath()
	if len(rmpath) == 0 {
		return nil
	}
	rm := rmpath[len(rmpath)-1]
	onPath := make(map[int]bool, len(rmpath))
	for _, v := range rmpath {
		onPath[v] = true
	}
	labels := code.NodeLabels()
	numNodes := len(labels)

	// Pass 1: enumerate candidate extensions without materialising
	// child embeddings.
	groups := map[Tuple][]cand{}
	mk := &mn.mk
	for _, emb := range embs {
		g := mn.graphOf(emb.GID)
		mk.reset(g)
		for di, n := range emb.Nodes {
			mk.mapNode(n, di)
		}
		for _, eid := range emb.Edges {
			mk.useEdge(eid)
		}
		// Backward from the rightmost vertex to rightmost-path vertices.
		vrm := emb.Nodes[rm]
		for _, h := range g.adj[vrm] {
			if mk.edgeUsed(h.eid) {
				continue
			}
			du, ok := mk.nodeDFS(h.other)
			if !ok || du == rm || !onPath[du] {
				continue
			}
			t := Tuple{I: rm, J: du, LI: labels[rm], LJ: labels[du], Out: h.out, LE: h.label}
			groups[t] = append(groups[t], cand{emb: emb, eid: h.eid, newNode: -1})
		}
		// Forward from every rightmost-path vertex to an unmapped node.
		for _, w := range rmpath {
			vw := emb.Nodes[w]
			for _, h := range g.adj[vw] {
				if mk.edgeUsed(h.eid) {
					continue
				}
				if _, ok := mk.nodeDFS(h.other); ok {
					continue
				}
				t := Tuple{I: w, J: numNodes, LI: labels[w], LJ: g.Labels[h.other], Out: h.out, LE: h.label}
				groups[t] = append(groups[t], cand{emb: emb, eid: h.eid, newNode: h.other})
			}
		}
	}

	out := make([]rawGroup, 0, len(groups))
	for t, cands := range groups {
		if len(cands) < mn.cfg.MinSupport {
			continue
		}
		out = append(out, rawGroup{t: t, cands: cands})
	}
	sort.Slice(out, func(i, j int) bool { return CompareTuples(out[i].t, out[j].t) < 0 })
	return out
}

// materialize is pass 2 for one group: build the child embeddings,
// deduplicating automorphic rediscoveries. ok is false when
// deduplication drops the group below MinSupport. Deterministic: the
// result depends only on the group.
func (mn *miner) materialize(g rawGroup) (embs []*Embedding, ok bool) {
	embs = make([]*Embedding, 0, len(g.cands))
	seen := make(map[string]bool, len(g.cands))
	for _, c := range g.cands {
		ne := &Embedding{GID: c.emb.GID}
		if c.newNode >= 0 {
			ne.Nodes = append(append(make([]int, 0, len(c.emb.Nodes)+1), c.emb.Nodes...), c.newNode)
		} else {
			ne.Nodes = c.emb.Nodes
		}
		ne.Edges = append(append(make([]int, 0, len(c.emb.Edges)+1), c.emb.Edges...), c.eid)
		k := ne.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		embs = append(embs, ne)
	}
	return embs, len(embs) >= mn.cfg.MinSupport
}

// extendFull materialises every extension group without frequency or
// viability filtering — the minimality test simulates minimal-code
// growth on a single pattern graph and needs them all.
func extendFull(code Code, embs []*Embedding, graphOf func(int) *Graph) []ext {
	mn := &miner{cfg: Config{MinSupport: 1}, graphOf: graphOf}
	groups := mn.extendGroups(code, embs)
	out := make([]ext, 0, len(groups))
	for _, g := range groups {
		if cembs, ok := mn.materialize(g); ok {
			out = append(out, ext{t: g.t, embs: cembs})
		}
	}
	return out
}

// pattern builds the Pattern for (code, embs) and computes its support
// (and Disjoint in embedding mode). Pure given the inputs.
func (mn *miner) pattern(code Code, embs []*Embedding) *Pattern {
	p := &Pattern{Code: code, Labels: code.NodeLabels(), Embeddings: embs}
	p.Support = computeSupport(p, mn.cfg)
	return p
}

// dfs is the serial search step: build the pattern, check frequency,
// then visit and descend (or fast-forward the whole subtree through the
// checkpointer).
func (mn *miner) dfs(code Code, embs []*Embedding) {
	if mn.aborted {
		return
	}
	p := mn.pattern(code, embs)
	if p.Support < mn.cfg.MinSupport {
		return
	}
	mn.visitFrequent(p, func() { mn.expand(code, embs) })
}

// step visits a frequent pattern and, unless a bound stops it, expands
// its extensions. Shared verbatim between the serial search and the
// deterministic replay of speculative subtrees.
func (mn *miner) step(p *Pattern) bool {
	mn.visit(p)
	mn.visited++
	if mn.cfg.MaxPatterns > 0 && mn.visited >= mn.cfg.MaxPatterns {
		mn.aborted = true
		return false
	}
	if mn.cfg.MaxNodes > 0 && p.Code.NumNodes() >= mn.cfg.MaxNodes {
		return false
	}
	if mn.cfg.PruneSubtree != nil && mn.cfg.PruneSubtree(p) {
		return false
	}
	return true
}

// expand enumerates, filters and materialises the extensions of (code,
// embs), then recurses into each minimal child. All viability decisions
// happen before any child is visited — the incumbent state a child visit
// mutates must not influence its siblings' group filtering, exactly as
// in a monolithic extend-then-loop.
func (mn *miner) expand(code Code, embs []*Embedding) {
	groups := mn.extendGroups(code, embs)
	kids := make([]ext, 0, len(groups))
	for _, g := range groups {
		if mn.cfg.ViableCount != nil && !mn.cfg.ViableCount(len(g.cands)) {
			continue
		}
		cembs, ok := mn.materialize(g)
		if !ok {
			continue
		}
		kids = append(kids, ext{t: g.t, embs: cembs})
	}
	for _, k := range kids {
		child := append(append(Code{}, code...), k.t)
		if !mn.cfg.minimal(child) {
			continue
		}
		mn.dfs(child, k.embs)
	}
}

// Mine enumerates every frequent pattern with at least one edge, calling
// visit for each (in canonical DFS-code growth order). The search is
// complete: every frequent fragment is reported exactly once (via the
// minimal-DFS-code test). With cfg.Workers > 1 the seed subtrees are
// mined speculatively in parallel and replayed in order; the visit
// sequence (patterns, order, truncation point) is identical to the
// serial search.
func Mine(graphs []*Graph, cfg Config, visit func(*Pattern)) {
	byID := map[int]*Graph{}
	for _, g := range graphs {
		if g.adj == nil {
			g.Freeze()
		}
		byID[g.ID] = g
	}
	graphOf := func(id int) *Graph { return byID[id] }
	roots := seedPatterns(graphs)

	if cfg.Workers > 1 && len(roots) > 1 {
		mineParallel(graphOf, roots, cfg, visit)
		return
	}
	mn := &miner{cfg: cfg, graphOf: graphOf, visit: visit}
	for _, s := range roots {
		mn.dfs(Code{s.t}, s.embs)
	}
}

// seedPatterns builds the 1-edge root patterns: one per distinct minimal
// single-edge tuple, in canonical tuple order.
func seedPatterns(graphs []*Graph) []*ext {
	seeds := map[Tuple]*ext{}
	for _, g := range graphs {
		for v := range g.Labels {
			for _, h := range g.adj[v] {
				if !h.out {
					continue // visit each edge once, from its source
				}
				a := Tuple{I: 0, J: 1, LI: g.Labels[v], LJ: g.Labels[h.other], Out: true, LE: h.label}
				b := Tuple{I: 0, J: 1, LI: g.Labels[h.other], LJ: g.Labels[v], Out: false, LE: h.label}
				t := a
				nodes := []int{v, h.other}
				if CompareTuples(b, a) < 0 {
					t = b
					nodes = []int{h.other, v}
				}
				s, ok := seeds[t]
				if !ok {
					s = &ext{t: t}
					seeds[t] = s
				}
				s.embs = append(s.embs, &Embedding{GID: g.ID, Nodes: nodes, Edges: []int{h.eid}})
			}
		}
	}
	out := make([]*ext, 0, len(seeds))
	for _, s := range seeds {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return CompareTuples(out[i].t, out[j].t) < 0 })
	return out
}

// computeSupport fills in Support (and Disjoint in embedding mode).
func computeSupport(p *Pattern, cfg Config) int {
	if !cfg.EmbeddingSupport {
		gids := map[int]bool{}
		for _, e := range p.Embeddings {
			gids[e.GID] = true
		}
		return len(gids)
	}
	dis := DisjointEmbeddings(p.Embeddings, cfg)
	p.Disjoint = dis
	return len(dis)
}
