package mining

import "testing"

// scriptCk is a scripted Checkpointer: it records every subtree of one
// walk, then replays chosen root codes on a second walk.
type scriptCk struct {
	record map[string]*scriptRec // by Code.Key()
	replay map[string]bool       // keys FastForward may replay
	open   []*scriptRec
	ffs    int
}

type scriptRec struct {
	key       string
	visits    int
	truncated bool
}

func (ck *scriptCk) FastForward(p *Pattern, remaining int) (int, bool) {
	rec := ck.record[p.Code.Key()]
	if rec == nil || rec.truncated || !ck.replay[rec.key] {
		return 0, false
	}
	if remaining >= 0 && rec.visits > remaining {
		return 0, false
	}
	ck.ffs++
	return rec.visits, true
}

func (ck *scriptCk) Begin(p *Pattern) any {
	rec := &scriptRec{key: p.Code.Key()}
	ck.open = append(ck.open, rec)
	return rec
}

func (ck *scriptCk) End(token any, visits int, truncated bool) {
	rec := token.(*scriptRec)
	if ck.open[len(ck.open)-1] != rec {
		panic("Begin/End tokens did not nest LIFO")
	}
	ck.open = ck.open[:len(ck.open)-1]
	rec.visits = visits
	rec.truncated = truncated
	if ck.record[rec.key] == nil {
		ck.record[rec.key] = rec
	}
}

func ckGraphs() []*Graph {
	return []*Graph{
		chain(0, "e", "a", "b", "c", "d"),
		chain(1, "e", "a", "b", "c", "d"),
		chain(2, "e", "b", "c", "d"),
	}
}

func visitKeys(graphs []*Graph, cfg Config) []string {
	var keys []string
	Mine(graphs, cfg, func(p *Pattern) {
		keys = append(keys, p.Code.Key())
	})
	return keys
}

// A walk that fast-forwards every recorded subtree must charge exactly
// the visits the plain walk would have spent, and the patterns it still
// visits live must be a prefix-consistent subsequence of the plain walk.
func TestCheckpointReplayPreservesVisitAccounting(t *testing.T) {
	cfg := Config{MinSupport: 2, MaxNodes: 4}
	plain := visitKeys(ckGraphs(), cfg)
	if len(plain) == 0 {
		t.Fatal("no patterns mined")
	}

	ck := &scriptCk{record: map[string]*scriptRec{}, replay: map[string]bool{}}
	cfg.Checkpoint = ck
	rec := visitKeys(ckGraphs(), cfg)
	if len(rec) != len(plain) {
		t.Fatalf("recording walk visited %d patterns, plain %d", len(rec), len(plain))
	}
	if len(ck.open) != 0 {
		t.Fatalf("%d records left open after the walk", len(ck.open))
	}

	// Root subtree totals must sum to the whole walk: every visit is in
	// exactly one single-edge root's subtree.
	rootSum := 0
	for key, r := range ck.record {
		if r.truncated {
			t.Fatalf("untruncated walk left a truncated record for %s", key)
		}
		if len(keyCodeEdges(t, rec, key)) == 1 {
			rootSum += r.visits
		}
	}
	if rootSum != len(plain) {
		t.Fatalf("root subtree visits sum to %d, walk visited %d", rootSum, len(plain))
	}

	// Replay everything: no live visits remain, and the checkpointer is
	// consulted for each root exactly once.
	for k := range ck.record {
		ck.replay[k] = true
	}
	replayed := visitKeys(ckGraphs(), cfg)
	if len(replayed) != 0 {
		t.Fatalf("full replay still visited %d patterns live", len(replayed))
	}

	// With a budget smaller than a subtree, FastForward must be refused
	// (the scripted implementation obeys the contract) and the walk must
	// truncate at exactly the budget, like the plain walk does.
	cfg.MaxPatterns = 2
	budgeted := visitKeys(ckGraphs(), cfg)
	cfgPlain := Config{MinSupport: 2, MaxNodes: 4, MaxPatterns: 2}
	plainBudget := visitKeys(ckGraphs(), cfgPlain)
	if len(budgeted) != len(plainBudget) {
		t.Fatalf("budgeted replay visited %d, plain budgeted walk %d", len(budgeted), len(plainBudget))
	}
	for i := range budgeted {
		if budgeted[i] != plainBudget[i] {
			t.Fatalf("budgeted visit %d: %q vs %q", i, budgeted[i], plainBudget[i])
		}
	}
}

// keyCodeEdges recovers the edge count of a recorded key by finding the
// pattern with that key in the recorded visit order.
func keyCodeEdges(t *testing.T, keys []string, key string) []byte {
	t.Helper()
	for _, k := range keys {
		if k == key {
			// Count tuple separators (0x01 terminates each tuple).
			var seps []byte
			for i := 0; i < len(k); i++ {
				if k[i] == 1 {
					seps = append(seps, 1)
				}
			}
			return seps
		}
	}
	t.Fatalf("recorded key never visited")
	return nil
}
