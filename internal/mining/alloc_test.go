package mining

import "testing"

// allocFixture returns a pinned extension group and its parent embedding
// set from the replicated running example — the fixed fragment the alloc
// regression tests below measure against. The group aliases the miner's
// scratch, so callers must not run extendGroups on the miner again.
func allocFixture(t testing.TB) (*miner, rawGroup, *EmbSet) {
	graphs := testGraphSets()["replicated"]
	mn := &miner{
		cfg:     Config{MinSupport: 2, EmbeddingSupport: true},
		graphOf: func(i int) *Graph { return graphs[i] },
	}
	roots := seedPatterns(graphs)
	if len(roots) == 0 {
		t.Fatal("no seed patterns in fixture")
	}
	set := roots[0].set
	groups := mn.extendGroups(Code{roots[0].t}, set)
	if len(groups) == 0 {
		t.Fatal("no extension groups in fixture")
	}
	return mn, groups[0], set
}

// TestAllocsOverlaps pins the tentpole invariant: an overlap probe is a
// word-wise AND over slab-resident bitsets and never allocates.
func TestAllocsOverlaps(t *testing.T) {
	_, _, set := allocFixture(t)
	n := set.Len()
	if n < 2 {
		t.Fatalf("fixture set has %d embeddings; want >= 2", n)
	}
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < n; i++ {
			set.Overlaps(0, i)
		}
	})
	if avg != 0 {
		t.Fatalf("Overlaps allocated %.2f objects per run; want 0", avg)
	}
}

// TestAllocsMaterialize pins materialisation to the child set's own
// storage: the *EmbSet header plus its gids and tup slabs. Dedupe state
// lives in pooled scratch and must not show up here.
func TestAllocsMaterialize(t *testing.T) {
	mn, g, set := allocFixture(t)
	avg := testing.AllocsPerRun(200, func() {
		if _, ok := mn.materialize(g, set); !ok {
			t.Fatal("materialize dropped the fixture group")
		}
	})
	t.Logf("materialize: %.2f allocs/run", avg)
	if avg > 3 {
		t.Fatalf("materialize allocated %.2f objects per run; want <= 3 (child set header + 2 slabs)", avg)
	}
}

// TestAllocsDisjointIndices pins the MIS front end (the flat core behind
// DisjointEmbeddings) to result-slice growth only — grouping, dedupe and
// the clique solver all run out of reused scratch.
func TestAllocsDisjointIndices(t *testing.T) {
	_, _, set := allocFixture(t)
	cfg := Config{EmbeddingSupport: true}
	if len(DisjointIndices(set, cfg)) == 0 {
		t.Fatal("fixture has no disjoint embeddings")
	}
	var sc misScratch
	avg := testing.AllocsPerRun(200, func() { disjointIndices(set, cfg, &sc) })
	t.Logf("disjointIndices: %.2f allocs/run", avg)
	if avg > 4 {
		t.Fatalf("disjointIndices allocated %.2f objects per run; want <= 4 (result-slice growth only)", avg)
	}
}
