package mining

// Checkpointer lets a caller carry exact lattice-walk state across
// searches of evolving-but-mostly-identical graph sets (the incremental
// mine/extract loop): the authoritative walk records, per frequent
// pattern, the side effects of the whole subtree rooted there; a later
// search may then skip a subtree it can prove would behave identically —
// same visits, same candidate admissions — by replaying those effects
// instead of re-walking it.
//
// The protocol is strict so the visit sequence stays byte-identical to an
// unassisted search:
//
//   - FastForward is consulted before a frequent pattern would be
//     visited. If the implementation can prove the entire subtree rooted
//     at p behaves exactly as a recorded earlier walk, it replays the
//     recorded side effects itself (e.g. candidate admissions) and
//     returns the subtree's visit count with ok=true; the search charges
//     those visits against MaxPatterns and skips the subtree. remaining
//     is the number of visits left before truncation (-1 = unlimited):
//     implementations MUST return ok=false when their recorded subtree
//     would not fit, because a truncated subtree behaves differently from
//     a replayed one.
//   - Begin marks entry into p's subtree on the authoritative path and
//     returns a token (never nil for a recording implementation).
//   - End closes Begin's record with the subtree's total visit count and
//     whether the search was truncated inside it. Truncated records are
//     unusable: the recorded walk did not finish the subtree.
//
// Begin/End calls nest like the recursion itself and happen only on the
// single authoritative goroutine, so implementations need no locking for
// the record stack (a shared store read by concurrent speculation must
// synchronise itself).
type Checkpointer interface {
	FastForward(p *Pattern, remaining int) (visits int, ok bool)
	Begin(p *Pattern) any
	End(token any, visits int, truncated bool)
}

// fastForward asks the checkpointer to skip the subtree rooted at p,
// charging its recorded visit count against the pattern budget. Reports
// whether the subtree was skipped.
func (mn *miner) fastForward(p *Pattern) bool {
	ck := mn.cfg.Checkpoint
	if ck == nil {
		return false
	}
	remaining := -1
	if mn.cfg.MaxPatterns > 0 {
		remaining = mn.cfg.MaxPatterns - mn.visited
	}
	v, ok := ck.FastForward(p, remaining)
	if !ok {
		return false
	}
	mn.visited += v
	if mn.cfg.MaxPatterns > 0 && mn.visited >= mn.cfg.MaxPatterns {
		// The recorded subtree's last visit is exactly where the serial
		// walk would have hit the budget.
		mn.aborted = true
	}
	return true
}

// visitFrequent runs the visit-and-descend step of a frequent pattern
// under the checkpoint protocol. descend explores the subtree below p
// when the bounds allow; it is the only part that differs between the
// serial search (live expansion) and the parallel replay (recorded
// subtree with live fallback).
func (mn *miner) visitFrequent(p *Pattern, descend func()) {
	if mn.fastForward(p) {
		return
	}
	ck := mn.cfg.Checkpoint
	var tok any
	v0 := 0
	if ck != nil {
		tok = ck.Begin(p)
		v0 = mn.visited
	}
	if mn.step(p) {
		descend()
	}
	if tok != nil {
		ck.End(tok, mn.visited-v0, mn.aborted)
	}
}
