package mining

import (
	"fmt"
	"math/rand"
	"testing"
)

// randDAG builds a random labelled DAG (edges only forward, like
// dependence graphs).
func randDAG(r *rand.Rand, id, nodes, edges int, nodeLabels, edgeLabels []string) *Graph {
	g := &Graph{ID: id}
	for i := 0; i < nodes; i++ {
		g.Labels = append(g.Labels, nodeLabels[r.Intn(len(nodeLabels))])
	}
	seen := map[[2]int]bool{}
	for e := 0; e < edges; e++ {
		a, b := r.Intn(nodes), r.Intn(nodes)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		g.Edges = append(g.Edges, GEdge{From: a, To: b, Label: edgeLabels[r.Intn(len(edgeLabels))]})
	}
	g.Freeze()
	return g
}

// TestPropertyEmbeddingsAreValid: every reported embedding must be an
// injective, label- and direction-preserving subgraph isomorphism, and no
// pattern may be reported twice.
func TestPropertyEmbeddingsAreValid(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	nodeLabels := []string{"a", "b", "c"}
	edgeLabels := []string{"x", "y"}
	for trial := 0; trial < 25; trial++ {
		var graphs []*Graph
		for i := 0; i < 3; i++ {
			graphs = append(graphs, randDAG(r, i, 5+r.Intn(5), 6+r.Intn(8), nodeLabels, edgeLabels))
		}
		byID := map[int]*Graph{}
		for _, g := range graphs {
			byID[g.ID] = g
		}
		seenCodes := map[string]bool{}
		count := 0
		Mine(graphs, Config{MinSupport: 2, MaxNodes: 5, EmbeddingSupport: true, MaxPatterns: 5000}, func(p *Pattern) {
			count++
			key := p.Code.Key()
			if seenCodes[key] {
				t.Fatalf("trial %d: duplicate pattern %s", trial, key)
			}
			seenCodes[key] = true
			if !p.Code.IsMinimal() {
				t.Fatalf("trial %d: non-canonical pattern reported: %s", trial, key)
			}
			pg := p.Code.ToGraph()
			for i := 0; i < p.Embeddings.Len(); i++ {
				emb := p.Embeddings.Emb(i)
				g := byID[emb.GID]
				validateEmbedding(t, trial, pg, g, emb)
			}
			// Disjoint embeddings must be pairwise node-disjoint and a
			// subset of all embeddings.
			for i := 0; i < len(p.Disjoint); i++ {
				for j := i + 1; j < len(p.Disjoint); j++ {
					if p.Embeddings.Overlaps(int(p.Disjoint[i]), int(p.Disjoint[j])) {
						t.Fatalf("trial %d: disjoint set overlaps", trial)
					}
				}
			}
			if p.Support != len(p.Disjoint) {
				t.Fatalf("trial %d: support %d != |disjoint| %d", trial, p.Support, len(p.Disjoint))
			}
		})
		if count == 0 {
			continue // sparse random instance; fine
		}
	}
}

func validateEmbedding(t *testing.T, trial int, pat, g *Graph, emb Embedding) {
	t.Helper()
	if len(emb.Nodes) != len(pat.Labels) || len(emb.Edges) != len(pat.Edges) {
		t.Fatalf("trial %d: embedding arity mismatch", trial)
	}
	// injective
	seen := map[int]bool{}
	for di, n := range emb.Nodes {
		if seen[n] {
			t.Fatalf("trial %d: non-injective embedding", trial)
		}
		seen[n] = true
		if g.Labels[n] != pat.Labels[di] {
			t.Fatalf("trial %d: node label mismatch", trial)
		}
	}
	// each pattern edge maps to a distinct graph edge with right
	// endpoints, direction and label
	usedEdges := map[int]bool{}
	for ei, pe := range pat.Edges {
		ge := g.Edges[emb.Edges[ei]]
		if usedEdges[emb.Edges[ei]] {
			t.Fatalf("trial %d: edge reused", trial)
		}
		usedEdges[emb.Edges[ei]] = true
		wantFrom, wantTo := emb.Nodes[pe.From], emb.Nodes[pe.To]
		if ge.From != wantFrom || ge.To != wantTo {
			t.Fatalf("trial %d: edge endpoints/direction mismatch: pattern %v->%v maps to %v->%v",
				trial, pe.From, pe.To, ge.From, ge.To)
		}
		if ge.Label != pe.Label {
			t.Fatalf("trial %d: edge label mismatch", trial)
		}
	}
}

// TestPropertySupportMatchesBruteForce cross-checks DgSpan graph-count
// support against a brute-force occurrence check on small instances.
func TestPropertySupportMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		var graphs []*Graph
		for i := 0; i < 4; i++ {
			graphs = append(graphs, randDAG(r, i, 4+r.Intn(3), 4+r.Intn(4), []string{"a", "b"}, []string{"x"}))
		}
		Mine(graphs, Config{MinSupport: 2, MaxNodes: 3, MaxPatterns: 2000}, func(p *Pattern) {
			gids := map[int]bool{}
			for i := 0; i < p.Embeddings.Len(); i++ {
				gids[p.Embeddings.GID(i)] = true
			}
			if p.Support != len(gids) {
				t.Fatalf("trial %d: support %d != distinct graphs %d", trial, p.Support, len(gids))
			}
			// brute force: the pattern must occur in each claimed graph
			pg := p.Code.ToGraph()
			for gid := range gids {
				if !bruteForceOccurs(pg, graphs[gid]) {
					t.Fatalf("trial %d: claimed occurrence not found by brute force", trial)
				}
			}
		})
	}
}

// bruteForceOccurs checks subgraph isomorphism by exhaustive backtracking
// (small inputs only).
func bruteForceOccurs(pat, g *Graph) bool {
	n := len(pat.Labels)
	assign := make([]int, n)
	used := make([]bool, len(g.Labels))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			// check all edges exist
			for _, pe := range pat.Edges {
				found := false
				for _, ge := range g.Edges {
					if ge.From == assign[pe.From] && ge.To == assign[pe.To] && ge.Label == pe.Label {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
			return true
		}
		for v := 0; v < len(g.Labels); v++ {
			if used[v] || g.Labels[v] != pat.Labels[i] {
				continue
			}
			used[v] = true
			assign[i] = v
			if rec(i + 1) {
				used[v] = false
				return true
			}
			used[v] = false
		}
		return false
	}
	return rec(0)
}

// TestPropertyMISNeverWorseThanGreedy: the exact solver must always find
// at least as many disjoint embeddings as the greedy heuristic.
func TestPropertyMISNeverWorseThanGreedy(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		var embs []*Embedding
		n := 3 + r.Intn(12)
		for i := 0; i < n; i++ {
			start := r.Intn(20)
			size := 1 + r.Intn(4)
			nodes := make([]int, size)
			for j := range nodes {
				nodes[j] = start + j
			}
			embs = append(embs, &Embedding{GID: 0, Nodes: nodes})
		}
		exact := DisjointEmbeddings(embs, Config{})
		greedy := DisjointEmbeddings(embs, Config{GreedyMIS: true})
		if len(exact) < len(greedy) {
			t.Fatalf("trial %d: exact %d < greedy %d (%s)", trial, len(exact), len(greedy), dumpEmbs(embs))
		}
	}
}

func dumpEmbs(embs []*Embedding) string {
	s := ""
	for _, e := range embs {
		s += fmt.Sprintf("%v ", e.Nodes)
	}
	return s
}
