package mining

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// randDAG builds a random labelled DAG (edges only forward, like
// dependence graphs).
func randDAG(r *rand.Rand, id, nodes, edges int, nodeLabels, edgeLabels []string) *Graph {
	g := &Graph{ID: id}
	for i := 0; i < nodes; i++ {
		g.Labels = append(g.Labels, nodeLabels[r.Intn(len(nodeLabels))])
	}
	seen := map[[2]int]bool{}
	for e := 0; e < edges; e++ {
		a, b := r.Intn(nodes), r.Intn(nodes)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		g.Edges = append(g.Edges, GEdge{From: a, To: b, Label: edgeLabels[r.Intn(len(edgeLabels))]})
	}
	g.Freeze()
	return g
}

// TestPropertyEmbeddingsAreValid: every reported embedding must be an
// injective, label- and direction-preserving subgraph isomorphism, and no
// pattern may be reported twice.
func TestPropertyEmbeddingsAreValid(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	nodeLabels := []string{"a", "b", "c"}
	edgeLabels := []string{"x", "y"}
	for trial := 0; trial < 25; trial++ {
		var graphs []*Graph
		for i := 0; i < 3; i++ {
			graphs = append(graphs, randDAG(r, i, 5+r.Intn(5), 6+r.Intn(8), nodeLabels, edgeLabels))
		}
		byID := map[int]*Graph{}
		for _, g := range graphs {
			byID[g.ID] = g
		}
		seenCodes := map[string]bool{}
		count := 0
		Mine(graphs, Config{MinSupport: 2, MaxNodes: 5, EmbeddingSupport: true, MaxPatterns: 5000}, func(p *Pattern) {
			count++
			key := p.Code.Key()
			if seenCodes[key] {
				t.Fatalf("trial %d: duplicate pattern %s", trial, key)
			}
			seenCodes[key] = true
			if !p.Code.IsMinimal() {
				t.Fatalf("trial %d: non-canonical pattern reported: %s", trial, key)
			}
			pg := p.Code.ToGraph()
			for i := 0; i < p.Embeddings.Len(); i++ {
				emb := p.Embeddings.Emb(i)
				g := byID[emb.GID]
				validateEmbedding(t, trial, pg, g, emb)
			}
			// Disjoint embeddings must be pairwise node-disjoint and a
			// subset of all embeddings.
			for i := 0; i < len(p.Disjoint); i++ {
				for j := i + 1; j < len(p.Disjoint); j++ {
					if p.Embeddings.Overlaps(int(p.Disjoint[i]), int(p.Disjoint[j])) {
						t.Fatalf("trial %d: disjoint set overlaps", trial)
					}
				}
			}
			if p.Support != len(p.Disjoint) {
				t.Fatalf("trial %d: support %d != |disjoint| %d", trial, p.Support, len(p.Disjoint))
			}
		})
		if count == 0 {
			continue // sparse random instance; fine
		}
	}
}

func validateEmbedding(t *testing.T, trial int, pat, g *Graph, emb Embedding) {
	t.Helper()
	if len(emb.Nodes) != len(pat.Labels) || len(emb.Edges) != len(pat.Edges) {
		t.Fatalf("trial %d: embedding arity mismatch", trial)
	}
	// injective
	seen := map[int]bool{}
	for di, n := range emb.Nodes {
		if seen[n] {
			t.Fatalf("trial %d: non-injective embedding", trial)
		}
		seen[n] = true
		if g.Labels[n] != pat.Labels[di] {
			t.Fatalf("trial %d: node label mismatch", trial)
		}
	}
	// each pattern edge maps to a distinct graph edge with right
	// endpoints, direction and label
	usedEdges := map[int]bool{}
	for ei, pe := range pat.Edges {
		ge := g.Edges[emb.Edges[ei]]
		if usedEdges[emb.Edges[ei]] {
			t.Fatalf("trial %d: edge reused", trial)
		}
		usedEdges[emb.Edges[ei]] = true
		wantFrom, wantTo := emb.Nodes[pe.From], emb.Nodes[pe.To]
		if ge.From != wantFrom || ge.To != wantTo {
			t.Fatalf("trial %d: edge endpoints/direction mismatch: pattern %v->%v maps to %v->%v",
				trial, pe.From, pe.To, ge.From, ge.To)
		}
		if ge.Label != pe.Label {
			t.Fatalf("trial %d: edge label mismatch", trial)
		}
	}
}

// TestPropertySupportMatchesBruteForce cross-checks DgSpan graph-count
// support against a brute-force occurrence check on small instances.
func TestPropertySupportMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		var graphs []*Graph
		for i := 0; i < 4; i++ {
			graphs = append(graphs, randDAG(r, i, 4+r.Intn(3), 4+r.Intn(4), []string{"a", "b"}, []string{"x"}))
		}
		Mine(graphs, Config{MinSupport: 2, MaxNodes: 3, MaxPatterns: 2000}, func(p *Pattern) {
			gids := map[int]bool{}
			for i := 0; i < p.Embeddings.Len(); i++ {
				gids[p.Embeddings.GID(i)] = true
			}
			if p.Support != len(gids) {
				t.Fatalf("trial %d: support %d != distinct graphs %d", trial, p.Support, len(gids))
			}
			// brute force: the pattern must occur in each claimed graph
			pg := p.Code.ToGraph()
			for gid := range gids {
				if !bruteForceOccurs(pg, graphs[gid]) {
					t.Fatalf("trial %d: claimed occurrence not found by brute force", trial)
				}
			}
		})
	}
}

// bruteForceOccurs checks subgraph isomorphism by exhaustive backtracking
// (small inputs only).
func bruteForceOccurs(pat, g *Graph) bool {
	n := len(pat.Labels)
	assign := make([]int, n)
	used := make([]bool, len(g.Labels))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			// check all edges exist
			for _, pe := range pat.Edges {
				found := false
				for _, ge := range g.Edges {
					if ge.From == assign[pe.From] && ge.To == assign[pe.To] && ge.Label == pe.Label {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
			return true
		}
		for v := 0; v < len(g.Labels); v++ {
			if used[v] || g.Labels[v] != pat.Labels[i] {
				continue
			}
			used[v] = true
			assign[i] = v
			if rec(i + 1) {
				used[v] = false
				return true
			}
			used[v] = false
		}
		return false
	}
	return rec(0)
}

// TestPropertyMISNeverWorseThanGreedy: the exact solver must always find
// at least as many disjoint embeddings as the greedy heuristic.
func TestPropertyMISNeverWorseThanGreedy(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		var embs []*Embedding
		n := 3 + r.Intn(12)
		for i := 0; i < n; i++ {
			start := r.Intn(20)
			size := 1 + r.Intn(4)
			nodes := make([]int, size)
			for j := range nodes {
				nodes[j] = start + j
			}
			embs = append(embs, &Embedding{GID: 0, Nodes: nodes})
		}
		exact := DisjointEmbeddings(embs, Config{})
		greedy := DisjointEmbeddings(embs, Config{GreedyMIS: true})
		if len(exact) < len(greedy) {
			t.Fatalf("trial %d: exact %d < greedy %d (%s)", trial, len(exact), len(greedy), dumpEmbs(embs))
		}
	}
}

func dumpEmbs(embs []*Embedding) string {
	s := ""
	for _, e := range embs {
		s += fmt.Sprintf("%v ", e.Nodes)
	}
	return s
}

// randOpDAG is randDAG with operand-bearing labels — node labels carry
// register operands and edge labels carry kind:register parts — so the
// coarsening's class collapsing (LabelClass, EdgeClass) has something to
// collapse.
func randOpDAG(r *rand.Rand, id, nodes, edges int) *Graph {
	nodeLabels := []string{"eor r1, r2, r3", "eor r4, r5, r6", "add r1, r2", "ldr r5, [sp]", "mov"}
	edgeLabels := []string{"raw:r1", "raw:r5", "war:r2", "raw:r1+war:r3", "ctl"}
	return randDAG(r, id, nodes, edges, nodeLabels, edgeLabels)
}

// copyGraph rebuilds g from scratch so pointer identity cannot leak into
// a determinism check.
func copyGraph(g *Graph) *Graph {
	c := &Graph{ID: g.ID, Labels: append([]string(nil), g.Labels...), Edges: append([]GEdge(nil), g.Edges...)}
	c.Freeze()
	return c
}

// TestPropertyCoarsenDeterministic: coarsening is a pure function of the
// graph — repeated runs and structurally identical copies must produce
// identical projections, sizes, capacity tables and coarse graphs. The
// pa layer caches coarsenings per graph and feeds them into bounds that
// participate in checkpoint validation, which is only sound under this
// property.
func TestPropertyCoarsenDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		g := randOpDAG(r, trial, 4+r.Intn(12), 3+r.Intn(16))
		a, b, c := Coarsen(g), Coarsen(g), Coarsen(copyGraph(g))
		for i, o := range []*Coarsening{b, c} {
			if !reflect.DeepEqual(a.Proj, o.Proj) || !reflect.DeepEqual(a.Size, o.Size) {
				t.Fatalf("trial %d run %d: projection differs", trial, i)
			}
			if !reflect.DeepEqual(a.Caps, o.Caps) {
				t.Fatalf("trial %d run %d: capacity table differs", trial, i)
			}
			if !reflect.DeepEqual(a.Graph.Labels, o.Graph.Labels) || !reflect.DeepEqual(a.Graph.Edges, o.Graph.Edges) {
				t.Fatalf("trial %d run %d: coarse graph differs", trial, i)
			}
		}
	}
}

// TestPropertyCoarsenProjection: the projection map is a well-formed,
// label-preserving contraction — every fine node lands in a supernode
// whose label contains its class, and every fine edge either stays
// inside one supernode or projects onto a coarse edge with its class.
func TestPropertyCoarsenProjection(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for trial := 0; trial < 50; trial++ {
		g := randOpDAG(r, trial, 4+r.Intn(12), 3+r.Intn(16))
		c := Coarsen(g)
		if len(c.Proj) != g.NumNodes() {
			t.Fatalf("trial %d: projection arity %d != %d nodes", trial, len(c.Proj), g.NumNodes())
		}
		total, next := int32(0), int32(0)
		for _, s := range c.Size {
			total += s
		}
		if total != int32(g.NumNodes()) {
			t.Fatalf("trial %d: supernode sizes sum to %d, want %d", trial, total, g.NumNodes())
		}
		for i, cn := range c.Proj {
			if cn < 0 || int(cn) >= len(c.Size) {
				t.Fatalf("trial %d: node %d projects out of range (%d)", trial, i, cn)
			}
			// Supernodes are numbered by smallest fine member, so first
			// appearances run 0, 1, 2, ...
			if cn == next {
				next++
			} else if cn > next {
				t.Fatalf("trial %d: supernode %d appears before %d", trial, cn, next)
			}
			label := "|" + c.Graph.Labels[cn] + "|"
			if !strings.Contains(label, "|"+LabelClass(g.Labels[i])+"|") {
				t.Fatalf("trial %d: node %d class %q missing from supernode label %q",
					trial, i, LabelClass(g.Labels[i]), c.Graph.Labels[cn])
			}
		}
		for _, e := range g.Edges {
			if c.Proj[e.From] == c.Proj[e.To] {
				continue // internal: consumed by the contraction
			}
			found := false
			for _, ce := range c.Graph.Edges {
				if int32(ce.From) == c.Proj[e.From] && int32(ce.To) == c.Proj[e.To] && ce.Label == EdgeClass(e.Label) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: crossing edge %d->%d (%s) has no coarse image", trial, e.From, e.To, e.Label)
			}
		}
	}
}

// TestPropertyCoarsenCapsAdmissible: for every tuple class, the capacity
// table must bound the true maximum node-disjoint set of fine edges of
// that class — computed exactly by handing each edge to the exact MIS
// solver as a two-node embedding. This is the admissibility the fine
// walk's ChildBound leans on: a child's disjoint embeddings pin disjoint
// instances of its newest tuple's edge.
func TestPropertyCoarsenCapsAdmissible(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		g := randOpDAG(r, trial, 4+r.Intn(12), 3+r.Intn(20))
		caps := Coarsen(g).Caps
		byClass := map[TupleClass][]*Embedding{}
		for ei, e := range g.Edges {
			ct := TupleClass{From: LabelClass(g.Labels[e.From]), To: LabelClass(g.Labels[e.To]), LE: EdgeClass(e.Label)}
			byClass[ct] = append(byClass[ct], &Embedding{GID: g.ID, Nodes: []int{e.From, e.To}, Edges: []int{ei}})
		}
		for ct, embs := range byClass {
			exact := len(DisjointEmbeddings(embs, Config{}))
			if exact > caps[ct] {
				t.Fatalf("trial %d: class %v has %d disjoint fine edges but capacity %d", trial, ct, exact, caps[ct])
			}
		}
	}
}

// TestPropertyCoarseBoundDominatesFineMIS: for every fine pattern the
// miner reports, the coarse capacity bound of its newest tuple's class
// (summed over the graphs it embeds in) must be at least its exact MIS
// support — i.e. min(misUpperBound, capacity) stays admissible, which is
// exactly how the multiresolution ChildBound combines the two.
func TestPropertyCoarseBoundDominatesFineMIS(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 25; trial++ {
		var graphs []*Graph
		caps := map[int]map[TupleClass]int{}
		for i := 0; i < 3; i++ {
			g := randOpDAG(r, i, 5+r.Intn(6), 6+r.Intn(10))
			graphs = append(graphs, g)
			caps[g.ID] = Coarsen(g).Caps
		}
		Mine(graphs, Config{MinSupport: 2, MaxNodes: 4, EmbeddingSupport: true, MaxPatterns: 5000}, func(p *Pattern) {
			last := p.Code[len(p.Code)-1]
			ct := ClassOfTuple(last)
			capSum, seen := 0, map[int]bool{}
			for i := 0; i < p.Embeddings.Len(); i++ {
				gid := p.Embeddings.GID(i)
				if !seen[gid] {
					seen[gid] = true
					capSum += caps[gid][ct]
				}
			}
			if p.Support > capSum {
				t.Fatalf("trial %d: pattern %s has MIS support %d above coarse capacity %d (class %v)",
					trial, p.Code.Key(), p.Support, capSum, ct)
			}
			if ub := MISUpperBound(p.Embeddings); p.Support > ub {
				t.Fatalf("trial %d: pattern %s has MIS support %d above misUpperBound %d",
					trial, p.Code.Key(), p.Support, ub)
			}
		})
	}
}
