package mining

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
)

// SpecSession is the shard-worker half of the distributed lattice
// search: one session per walk, holding the decoded graphs, the
// canonical seed list (identical to the coordinator's — seedPatterns is
// deterministic over identical graphs) and the advisory pruning state.
// MineSeed runs the speculation phase for one seed subtree and returns
// the recorded tree in wire form; the coordinator decodes it around its
// own copy of the seed and feeds it to the authoritative replay.
//
// Everything a session records is state-independent (pattern
// construction, support, MIS, extension grouping, minimality) or
// advisory (which subtrees it bothered to explore), so a session
// working from a stale incumbent floor — or from no floor at all —
// costs the coordinator replay-fallback work, never output.
type SpecSession struct {
	cfg     Config
	graphOf func(int) *Graph
	roots   []*ext
	budget  *specBudget
	floor   atomic.Int64
	visits  atomic.Int64
	ub      []int
}

// NewSpecSession builds a session over decoded graphs. The SpecConfig's
// UB table and floor reconstruct the coordinator's advisory pruning
// policies: UB[m] bounds the benefit of any subtree whose advisory
// occurrence count is m, and the floor is the (gossiped, monotone)
// incumbent benefit. An empty UB table disables advisory pruning — the
// session then records the full lattice below each seed, which is
// always sound.
func NewSpecSession(graphs []*Graph, sc SpecConfig) *SpecSession {
	byID := make(map[int]*Graph, len(graphs))
	for _, g := range graphs {
		if g.adj == nil {
			g.Freeze()
		}
		byID[g.ID] = g
	}
	s := &SpecSession{
		graphOf: func(id int) *Graph { return byID[id] },
		roots:   seedPatterns(graphs),
		budget:  &specBudget{max: int64(sc.MaxPatterns)},
		ub:      sc.UB,
	}
	s.floor.Store(int64(sc.Floor))
	s.cfg = Config{
		MinSupport:       sc.MinSupport,
		MaxNodes:         sc.MaxNodes,
		EmbeddingSupport: sc.EmbeddingSupport,
		GreedyMIS:        sc.GreedyMIS,
		MISExactLimit:    sc.MISExactLimit,
		Lexicographic:    sc.Lexicographic,
		NewSpeculator:    s.newSpeculator,
	}
	return s
}

// ubOf is the advisory benefit bound for occurrence count m. Counts
// past the shipped table never prune — the coordinator ships a table
// wide enough for every count it would prune itself, so falling off the
// end means "no opinion", not "cut".
func (s *SpecSession) ubOf(m int) int {
	if m >= 0 && m < len(s.ub) {
		return s.ub[m]
	}
	return math.MaxInt
}

// advBound mirrors the coordinator's advisory occurrence bound: the
// exact independent-set size in embedding-support mode, the raw
// embedding count otherwise (graph-count support does not bound
// occurrences; the embedding count does).
func (s *SpecSession) advBound(p *Pattern) int {
	if s.cfg.EmbeddingSupport {
		return p.Support
	}
	return p.Embeddings.Len()
}

// newSpeculator supplies the advisory policies for one seed's
// speculation, mirroring the coordinator's shapes exactly: prune
// strictly below the floor, keep ties. PruneChild is installed only for
// the benefit-directed order, matching the coordinator's needBounds so
// both sides record (or both skip) the per-child bounds that replay
// consumes authoritatively.
func (s *SpecSession) newSpeculator() *Speculator {
	sp := &Speculator{
		Visit:        func(*Pattern) { s.visits.Add(1) },
		PruneSubtree: func(p *Pattern) bool { return s.ubOf(s.advBound(p)) < int(s.floor.Load()) },
		ViableCount:  func(count int) bool { return s.ubOf(count) >= int(s.floor.Load()) },
	}
	if !s.cfg.Lexicographic {
		sp.PruneChild = func(set *EmbSet, bound int) bool {
			return s.ubOf(bound) < int(s.floor.Load())
		}
	}
	return sp
}

// NumSeeds is the length of the canonical seed list.
func (s *SpecSession) NumSeeds() int { return len(s.roots) }

// SetFloor raises the advisory incumbent floor. Stale pushes (not above
// the current floor) are ignored; the return value reports whether the
// push took effect. Safe for concurrent use with MineSeed — the floor
// is advisory, so a racing read of the old value is just a slightly
// weaker prune.
func (s *SpecSession) SetFloor(floor int) bool {
	for {
		cur := s.floor.Load()
		if int64(floor) <= cur {
			return false
		}
		if s.floor.CompareAndSwap(cur, int64(floor)) {
			return true
		}
	}
}

// Visits is the total speculative pattern visits this session has run —
// the honest measure of shard-side search work.
func (s *SpecSession) Visits() int64 { return s.visits.Load() }

// MineSeed speculatively mines one seed subtree and returns its
// recorded tree in encodeSpecTree wire form. Safe for concurrent calls
// (each builds a private miner; the visit budget and floor are shared),
// so a worker daemon can serve overlapping seed requests.
func (s *SpecSession) MineSeed(ctx context.Context, seed int) ([]byte, error) {
	if seed < 0 || seed >= len(s.roots) {
		return nil, fmt.Errorf("mining: seed %d out of range [0,%d)", seed, len(s.roots))
	}
	sp := newSpeculator(ctx, s.cfg, s.graphOf, s.budget)
	root := sp.mine(Code{s.roots[seed].t}, s.roots[seed].set)
	return encodeSpecTree(root), nil
}
