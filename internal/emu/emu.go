// Package emu interprets linked images. It exists so that procedural
// abstraction can be tested end to end: every optimized binary is executed
// before and after the transformation and must produce identical output
// and exit code (the paper relies on its toolchain for this guarantee; we
// make it an executable check).
package emu

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"graphpa/internal/arm"
	"graphpa/internal/link"
)

// Machine is one execution context over a linked image.
type Machine struct {
	Mem        []byte
	R          [16]uint32 // r0..r12, sp, lr, pc is kept separately
	N, Z, C, V bool
	PC         uint32
	Steps      int64
	MaxSteps   int64

	Stdout bytes.Buffer
	stdin  []byte
	inPos  int

	img    *link.Image
	halted bool
	exit   int32
}

// DefaultMaxSteps bounds runaway executions.
const DefaultMaxSteps = 200_000_000

// StackSize is the memory reserved above the image for heap and stack.
const StackSize = 1 << 20

// New builds a machine for the image with optional stdin bytes.
func New(img *link.Image, stdin []byte) *Machine {
	m := &Machine{
		Mem:      make([]byte, len(img.Words)*4+StackSize),
		MaxSteps: DefaultMaxSteps,
		stdin:    stdin,
		img:      img,
	}
	copy(m.Mem, img.Bytes())
	m.R[arm.SP] = uint32(len(m.Mem))
	m.PC = uint32(img.Entry)
	return m
}

// RunError reports an execution fault.
type RunError struct {
	PC   uint32
	Step int64
	Msg  string
}

func (e *RunError) Error() string {
	return fmt.Sprintf("emu: pc=%#x step=%d: %s", e.PC, e.Step, e.Msg)
}

func (m *Machine) fault(format string, args ...any) error {
	return &RunError{PC: m.PC, Step: m.Steps, Msg: fmt.Sprintf(format, args...)}
}

// Exited reports whether the program has exited, and its code.
func (m *Machine) Exited() (bool, int32) { return m.halted, m.exit }

// Run executes until exit, fault, or the step budget is exhausted.
func (m *Machine) Run() (int32, error) {
	for !m.halted {
		if err := m.Step(); err != nil {
			return -1, err
		}
	}
	return m.exit, nil
}

func (m *Machine) loadWord(addr uint32) (uint32, error) {
	if addr%4 != 0 {
		return 0, m.fault("unaligned word load at %#x", addr)
	}
	if int(addr)+4 > len(m.Mem) {
		return 0, m.fault("word load out of bounds at %#x", addr)
	}
	return binary.LittleEndian.Uint32(m.Mem[addr:]), nil
}

func (m *Machine) storeWord(addr, v uint32) error {
	if addr%4 != 0 {
		return m.fault("unaligned word store at %#x", addr)
	}
	if int(addr)+4 > len(m.Mem) {
		return m.fault("word store out of bounds at %#x", addr)
	}
	if addr < uint32(m.img.TextWords*4) {
		return m.fault("store into text section at %#x", addr)
	}
	binary.LittleEndian.PutUint32(m.Mem[addr:], v)
	return nil
}

func (m *Machine) loadByte(addr uint32) (uint32, error) {
	if int(addr) >= len(m.Mem) {
		return 0, m.fault("byte load out of bounds at %#x", addr)
	}
	return uint32(m.Mem[addr]), nil
}

func (m *Machine) storeByte(addr uint32, v byte) error {
	if int(addr) >= len(m.Mem) {
		return m.fault("byte store out of bounds at %#x", addr)
	}
	if addr < uint32(m.img.TextWords*4) {
		return m.fault("store into text section at %#x", addr)
	}
	m.Mem[addr] = v
	return nil
}

// condPasses evaluates an ARM condition against the flags.
func (m *Machine) condPasses(c arm.Cond) bool {
	switch c {
	case arm.Always:
		return true
	case arm.EQ:
		return m.Z
	case arm.NE:
		return !m.Z
	case arm.CS:
		return m.C
	case arm.CC:
		return !m.C
	case arm.MI:
		return m.N
	case arm.PL:
		return !m.N
	case arm.VS:
		return m.V
	case arm.VC:
		return !m.V
	case arm.HI:
		return m.C && !m.Z
	case arm.LS:
		return !m.C || m.Z
	case arm.GE:
		return m.N == m.V
	case arm.LT:
		return m.N != m.V
	case arm.GT:
		return !m.Z && m.N == m.V
	case arm.LE:
		return m.Z || m.N != m.V
	}
	return false
}

func shiftVal(v uint32, kind arm.ShiftKind, amt int32) uint32 {
	a := uint(amt) & 31
	switch kind {
	case arm.LSL:
		return v << a
	case arm.LSR:
		if amt == 0 {
			return v
		}
		return v >> a
	case arm.ASR:
		if amt == 0 {
			return v
		}
		return uint32(int32(v) >> a)
	case arm.ROR:
		if a == 0 {
			return v
		}
		return v>>a | v<<(32-a)
	}
	return v
}

// op2 computes the flexible second operand of in.
func (m *Machine) op2(in *arm.Instr) uint32 {
	if in.HasImm {
		return uint32(in.Imm)
	}
	return shiftVal(m.R[in.Rm], in.Shift, in.ShAmt)
}

func (m *Machine) setNZ(v uint32) {
	m.N = v>>31 != 0
	m.Z = v == 0
}

// addWithFlags computes a+b+carry and the resulting NZCV.
func (m *Machine) addFlags(a, b uint32, carry uint32, set bool) uint32 {
	r64 := uint64(a) + uint64(b) + uint64(carry)
	r := uint32(r64)
	if set {
		m.setNZ(r)
		m.C = r64>>32 != 0
		m.V = ((a^r)&(b^r))>>31 != 0
	}
	return r
}

// subFlags computes a-b-(1-carryIn) ARM-style (C is NOT borrow).
func (m *Machine) subFlags(a, b uint32, carryIn uint32, set bool) uint32 {
	return m.addFlags(a, ^b, carryIn, set)
}

// Step executes one instruction.
func (m *Machine) Step() error {
	if m.halted {
		return nil
	}
	if m.Steps >= m.MaxSteps {
		return m.fault("step budget exhausted (%d)", m.MaxSteps)
	}
	m.Steps++
	if int(m.PC)+4 > m.img.TextWords*4 {
		return m.fault("pc outside text section")
	}
	word := binary.LittleEndian.Uint32(m.Mem[m.PC:])
	in, branchOff := arm.Decode(word)
	if in.Op == arm.WORD {
		return m.fault("executing data word %#x", word)
	}
	next := m.PC + 4
	if !m.condPasses(in.Cond) {
		m.PC = next
		return nil
	}

	carry := uint32(0)
	if m.C {
		carry = 1
	}
	switch in.Op {
	case arm.NOP:
	case arm.AND, arm.ORR, arm.EOR, arm.BIC:
		a, b := m.R[in.Rn], m.op2(&in)
		var r uint32
		switch in.Op {
		case arm.AND:
			r = a & b
		case arm.ORR:
			r = a | b
		case arm.EOR:
			r = a ^ b
		case arm.BIC:
			r = a &^ b
		}
		m.R[in.Rd] = r
		if in.SetS {
			m.setNZ(r)
		}
	case arm.ADD:
		m.R[in.Rd] = m.addFlags(m.R[in.Rn], m.op2(&in), 0, in.SetS)
	case arm.ADC:
		m.R[in.Rd] = m.addFlags(m.R[in.Rn], m.op2(&in), carry, in.SetS)
	case arm.SUB:
		m.R[in.Rd] = m.subFlags(m.R[in.Rn], m.op2(&in), 1, in.SetS)
	case arm.SBC:
		m.R[in.Rd] = m.subFlags(m.R[in.Rn], m.op2(&in), carry, in.SetS)
	case arm.RSB:
		m.R[in.Rd] = m.subFlags(m.op2(&in), m.R[in.Rn], 1, in.SetS)
	case arm.MOV:
		r := m.op2(&in)
		m.R[in.Rd] = r
		if in.SetS {
			m.setNZ(r)
		}
	case arm.MVN:
		r := ^m.op2(&in)
		m.R[in.Rd] = r
		if in.SetS {
			m.setNZ(r)
		}
	case arm.CMP:
		m.subFlags(m.R[in.Rn], m.op2(&in), 1, true)
	case arm.CMN:
		m.addFlags(m.R[in.Rn], m.op2(&in), 0, true)
	case arm.TST:
		m.setNZ(m.R[in.Rn] & m.op2(&in))
	case arm.TEQ:
		m.setNZ(m.R[in.Rn] ^ m.op2(&in))
	case arm.MUL:
		r := m.R[in.Rn] * m.R[in.Rm]
		m.R[in.Rd] = r
		if in.SetS {
			m.setNZ(r)
		}
	case arm.MLA:
		r := m.R[in.Rn]*m.R[in.Rm] + m.R[in.Ra]
		m.R[in.Rd] = r
		if in.SetS {
			m.setNZ(r)
		}
	case arm.B:
		next = m.PC + uint32(branchOff*4)
	case arm.BL:
		m.R[arm.LR] = m.PC + 4
		next = m.PC + uint32(branchOff*4)
	case arm.BX:
		next = m.R[in.Rm]
	case arm.SWI:
		if err := m.syscall(in.Imm); err != nil {
			return err
		}
	case arm.PUSH:
		n := popCount(in.Reglist)
		sp := m.R[arm.SP] - uint32(4*n)
		addr := sp
		for r := arm.R0; r < arm.Reg(arm.NumRegs); r++ {
			if in.Reglist&(1<<r) == 0 {
				continue
			}
			if err := m.storeWord(addr, m.R[r]); err != nil {
				return err
			}
			addr += 4
		}
		m.R[arm.SP] = sp
	case arm.POP:
		addr := m.R[arm.SP]
		for r := arm.R0; r < arm.Reg(arm.NumRegs); r++ {
			if in.Reglist&(1<<r) == 0 {
				continue
			}
			v, err := m.loadWord(addr)
			if err != nil {
				return err
			}
			if r == arm.PC {
				next = v
			} else {
				m.R[r] = v
			}
			addr += 4
		}
		m.R[arm.SP] = addr
	default:
		if in.Op.IsMem() {
			if err := m.memOp(&in, &next); err != nil {
				return err
			}
			break
		}
		return m.fault("unimplemented op %s", in.Op)
	}
	m.PC = next
	return nil
}

func popCount(m uint16) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// memOp executes a single-register load or store in any addressing mode.
func (m *Machine) memOp(in *arm.Instr, next *uint32) error {
	var base uint32
	var off uint32
	if in.Rn == arm.PC {
		// pc-relative literal load: word offsets relative to the
		// instruction's own address (linker convention).
		base = m.PC
		off = uint32(in.Imm * 4)
	} else {
		base = m.R[in.Rn]
		if in.HasImm {
			off = uint32(in.Imm)
		} else {
			off = shiftVal(m.R[in.Rm], in.Shift, in.ShAmt)
		}
	}
	addr := base + off
	ea := addr
	if in.Op.PostIndexed() {
		ea = base
	}
	if in.Op.IsLoad() {
		var v uint32
		var err error
		if in.Op.IsByteMem() {
			v, err = m.loadByte(ea)
		} else {
			v, err = m.loadWord(ea)
		}
		if err != nil {
			return err
		}
		if in.Rd == arm.PC {
			*next = v
		} else {
			m.R[in.Rd] = v
		}
	} else {
		var err error
		if in.Op.IsByteMem() {
			err = m.storeByte(ea, byte(m.R[in.Rd]))
		} else {
			err = m.storeWord(ea, m.R[in.Rd])
		}
		if err != nil {
			return err
		}
	}
	if in.Op.Writeback() && in.Rn != arm.PC {
		m.R[in.Rn] = addr
	}
	return nil
}

func (m *Machine) syscall(num int32) error {
	switch num {
	case arm.SysExit:
		m.halted = true
		m.exit = int32(m.R[arm.R0])
	case arm.SysPutc:
		m.Stdout.WriteByte(byte(m.R[arm.R0]))
	case arm.SysGetc:
		if m.inPos < len(m.stdin) {
			m.R[arm.R0] = uint32(m.stdin[m.inPos])
			m.inPos++
		} else {
			m.R[arm.R0] = ^uint32(0) // -1
		}
	case arm.SysClock:
		m.R[arm.R0] = uint32(m.Steps)
	default:
		return m.fault("unknown syscall %d", num)
	}
	return nil
}
