package emu

import (
	"fmt"
	"math/rand"
	"testing"

	"graphpa/internal/asm"
	"graphpa/internal/link"
)

// TestQuickFlagsOracle cross-checks every condition code against a Go
// oracle over random operand pairs: for each (a, b) the program computes
// a bitmask of which conditions pass after "cmp a, b"; the oracle
// recomputes it from signed/unsigned comparisons.
func TestQuickFlagsOracle(t *testing.T) {
	conds := []string{"eq", "ne", "cs", "cc", "mi", "pl", "hi", "ls", "ge", "lt", "gt", "le"}
	oracle := func(a, b int32) uint32 {
		ua, ub := uint32(a), uint32(b)
		var m uint32
		set := func(i int, v bool) {
			if v {
				m |= 1 << i
			}
		}
		set(0, a == b)
		set(1, a != b)
		set(2, ua >= ub) // cs: no borrow
		set(3, ua < ub)  // cc
		set(4, a-b < 0)  // mi: N of the subtraction result
		set(5, a-b >= 0) // pl
		set(6, ua > ub)  // hi
		set(7, ua <= ub) // ls
		set(8, a >= b)   // ge (true signed comparison incl. overflow)
		set(9, a < b)    // lt
		set(10, a > b)   // gt
		set(11, a <= b)  // le
		return m
	}
	// N and PL are about the raw subtraction result bit 31, not the
	// mathematical sign when overflow occurs; fix the oracle for mi/pl.
	oracleFix := func(a, b int32, m uint32) uint32 {
		d := int32(uint32(a) - uint32(b))
		m &^= 1<<4 | 1<<5
		if d < 0 {
			m |= 1 << 4
		} else {
			m |= 1 << 5
		}
		return m
	}

	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		var a, b int32
		switch trial % 4 {
		case 0:
			a, b = int32(r.Intn(1000)-500), int32(r.Intn(1000)-500)
		case 1: // overflow-prone extremes
			a, b = int32(0x7fffffff-r.Intn(3)), int32(-0x7fffffff+r.Intn(3))
		case 2:
			a, b = int32(-0x80000000+r.Intn(3)), int32(r.Intn(5)-2)
		default:
			a, b = int32(r.Uint32()), int32(r.Uint32())
		}
		src := "_start:\n"
		src += fmt.Sprintf("\tldr r1, =%d\n\tldr r2, =%d\n\tmov r0, #0\n\tmov r4, #1\n", a, b)
		for i, c := range conds {
			_ = i
			src += "\tcmp r1, r2\n"
			src += fmt.Sprintf("\torr%s r0, r0, r4\n", c)
			src += "\tmov r4, r4, lsl #1\n"
		}
		src += "\tswi 0\n\t.pool\n"
		u, err := asm.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		img, err := link.Link(u)
		if err != nil {
			t.Fatal(err)
		}
		m := New(img, nil)
		code, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		want := oracleFix(a, b, oracle(a, b))
		if uint32(code) != want {
			t.Fatalf("cmp %d,%d: mask %#x, want %#x", a, b, uint32(code), want)
		}
	}
}
