package emu

import (
	"testing"

	"graphpa/internal/asm"
	"graphpa/internal/link"
)

// BenchmarkInterpreter measures emulator throughput on a tight loop.
func BenchmarkInterpreter(b *testing.B) {
	u, err := asm.Parse(`
_start:
	ldr r1, =100000
loop:
	add r0, r0, r1
	eor r0, r0, r1, lsl #3
	subs r1, r1, #1
	bne loop
	mov r0, #0
	swi 0
	.pool
`)
	if err != nil {
		b.Fatal(err)
	}
	img, err := link.Link(u)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(img, nil)
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.Steps), "steps")
	}
}
