package emu

import (
	"strings"
	"testing"

	"graphpa/internal/asm"
	"graphpa/internal/link"
)

// run assembles, links and executes src, returning the machine.
func run(t *testing.T, src string, stdin []byte) *Machine {
	t.Helper()
	u, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Link(u)
	if err != nil {
		t.Fatal(err)
	}
	m := New(img, stdin)
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func TestExitCode(t *testing.T) {
	m := run(t, "_start:\n\tmov r0, #42\n\tswi 0\n", nil)
	if ok, code := m.Exited(); !ok || code != 42 {
		t.Errorf("exit = %v %d", ok, code)
	}
}

func TestArithmetic(t *testing.T) {
	m := run(t, `
_start:
	mov r1, #10
	mov r2, #3
	sub r3, r1, r2     @ 7
	add r3, r3, r3     @ 14
	mul r4, r3, r2     @ 42
	rsb r5, r2, #5     @ 2
	mla r6, r4, r5, r1 @ 94
	mov r0, r6
	swi 0
`, nil)
	if _, code := m.Exited(); code != 94 {
		t.Errorf("exit = %d, want 94", code)
	}
}

func TestShifts(t *testing.T) {
	m := run(t, `
_start:
	mov r1, #1
	mov r2, r1, lsl #4   @ 16
	mov r3, r2, lsr #2   @ 4
	mvn r4, #0           @ -1
	mov r5, r4, asr #16  @ still -1
	add r0, r2, r3       @ 20
	add r0, r0, r5       @ 19
	swi 0
`, nil)
	if _, code := m.Exited(); code != 19 {
		t.Errorf("exit = %d, want 19", code)
	}
}

func TestConditionsAndFlags(t *testing.T) {
	m := run(t, `
_start:
	mov r0, #0
	mov r1, #5
	cmp r1, #5
	addeq r0, r0, #1   @ taken
	addne r0, r0, #64  @ skipped
	cmp r1, #6
	addlt r0, r0, #2   @ taken (5 < 6)
	addge r0, r0, #64  @ skipped
	cmp r1, #3
	addhi r0, r0, #4   @ taken (unsigned 5 > 3)
	mvn r2, #0         @ 0xffffffff
	cmp r2, #1
	addhi r0, r0, #8   @ taken (unsigned max > 1)
	addmi r0, r0, #16  @ taken (negative compare result? N set)
	swi 0
`, nil)
	// cmp r2(#-1), #1 -> -2: N set -> MI taken; HI: C set (no borrow), Z clear -> taken.
	if _, code := m.Exited(); code != 1+2+4+8+16 {
		t.Errorf("exit = %d, want 31", code)
	}
}

func TestCarryChain(t *testing.T) {
	// 64-bit add: (2^32-1) + 1 = carry into high word.
	m := run(t, `
_start:
	mvn r1, #0       @ lo a
	mov r2, #0       @ hi a
	mov r3, #1       @ lo b
	mov r4, #0       @ hi b
	adds r5, r1, r3  @ lo sum = 0, carry out
	adc r6, r2, r4   @ hi sum = 1
	mov r0, r6
	swi 0
`, nil)
	if _, code := m.Exited(); code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
}

func TestLoop(t *testing.T) {
	m := run(t, `
_start:
	mov r0, #0
	mov r1, #10
loop:
	add r0, r0, r1
	subs r1, r1, #1
	bne loop
	swi 0             @ 10+9+...+1 = 55
`, nil)
	if _, code := m.Exited(); code != 55 {
		t.Errorf("exit = %d, want 55", code)
	}
}

func TestMemoryAndPool(t *testing.T) {
	m := run(t, `
_start:
	ldr r1, =arr
	mov r2, #3
	str r2, [r1]
	ldr r3, [r1]
	ldr r4, =1000000
	add r0, r3, #1
	swi 0
	.pool
.data
arr:
	.space 16
`, nil)
	if _, code := m.Exited(); code != 4 {
		t.Errorf("exit = %d, want 4", code)
	}
}

func TestByteAccessAndStrings(t *testing.T) {
	m := run(t, `
_start:
	ldr r1, =msg
loop:
	ldrb r0, [r1], #1
	cmp r0, #0
	beq done
	swi 1
	b loop
done:
	mov r0, #0
	swi 0
	.pool
.data
msg:
	.asciz "hello"
`, nil)
	if m.Stdout.String() != "hello" {
		t.Errorf("stdout = %q", m.Stdout.String())
	}
}

func TestPushPopCall(t *testing.T) {
	m := run(t, `
_start:
	mov r0, #5
	bl double
	bl double
	swi 0
double:
	push {r4, lr}
	mov r4, r0
	add r0, r4, r4
	pop {r4, pc}
`, nil)
	if _, code := m.Exited(); code != 20 {
		t.Errorf("exit = %d, want 20", code)
	}
}

func TestWritebackAddressing(t *testing.T) {
	m := run(t, `
_start:
	ldr r1, =arr
	mov r2, #7
	str r2, [r1], #4    @ arr[0]=7, r1 += 4
	mov r2, #8
	str r2, [r1]        @ arr[1]=8
	ldr r3, =arr
	ldr r4, [r3], #4    @ 7
	ldr r5, [r3]        @ 8
	ldr r6, =arr2
	mov r7, #9
	str r7, [r6, #4]!   @ arr2[1]=9, r6=&arr2[1]
	ldr r8, [r6]
	add r0, r4, r5
	add r0, r0, r8      @ 7+8+9=24
	swi 0
	.pool
.data
arr:
	.space 8
arr2:
	.space 8
`, nil)
	if _, code := m.Exited(); code != 24 {
		t.Errorf("exit = %d, want 24", code)
	}
}

func TestStdin(t *testing.T) {
	m := run(t, `
_start:
	swi 2        @ getc -> 'A'
	add r0, r0, #1
	swi 1        @ putc 'B'
	swi 2
	swi 2        @ EOF -> -1
	cmn r0, #1
	moveq r0, #0
	swi 0
`, []byte("Ax"))
	if m.Stdout.String() != "B" {
		t.Errorf("stdout = %q", m.Stdout.String())
	}
	if _, code := m.Exited(); code != 0 {
		t.Errorf("exit = %d", code)
	}
}

func TestFaults(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"_start:\n\tldr r0, =arr\n\tldr r1, [r0, #2]\n\tswi 0\n\t.pool\n.data\narr:\n\t.word 0\n", "unaligned"},
		{"_start:\n\tmvn r1, #3\n\tldr r0, [r1]\n\tswi 0\n", "out of bounds"},
		{"_start:\n\tmov r1, #0\n\tstr r1, [r1]\n\tswi 0\n", "text section"},
		{"_start:\n\tswi 99\n", "unknown syscall"},
		{"_start:\n\tb _start\n", "step budget"},
	}
	for _, c := range cases {
		u, err := asm.Parse(c.src)
		if err != nil {
			t.Fatal(err)
		}
		img, err := link.Link(u)
		if err != nil {
			t.Fatal(err)
		}
		m := New(img, nil)
		m.MaxSteps = 10000
		_, err = m.Run()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("src %q: err = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestExecutingDataFaults(t *testing.T) {
	// Falling through into a literal pool must fault, not execute garbage.
	u, err := asm.Parse("_start:\n\tmov r0, #0\n\tswi 0\nafter:\n\t.word 0\n")
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Link(u)
	if err != nil {
		t.Fatal(err)
	}
	m := New(img, nil)
	m.PC = uint32(img.Symbols["after"])
	if err := m.Step(); err == nil || !strings.Contains(err.Error(), "data word") {
		t.Errorf("executing .word: err = %v", err)
	}
}

func TestClockSyscall(t *testing.T) {
	m := run(t, "_start:\n\tswi 3\n\tswi 3\n\tswi 0\n", nil)
	if _, code := m.Exited(); code != 2 {
		t.Errorf("clock = %d, want 2", code)
	}
}

func TestConditionalBranchBackward(t *testing.T) {
	// bne with a negative offset round-trips through encoding.
	m := run(t, `
_start:
	mov r0, #0
	mov r1, #3
again:
	add r0, r0, #2
	subs r1, r1, #1
	bne again
	swi 0
`, nil)
	if _, code := m.Exited(); code != 6 {
		t.Errorf("exit = %d, want 6", code)
	}
}
