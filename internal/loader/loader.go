// Package loader implements the front half of the post-link-time
// optimizer (paper §2.1 phases 1–5): it decompiles a linked image back
// into a symbolic instruction stream, reconstructs labels for every jump,
// call and pc-relative load target so the code becomes independent of
// concrete addresses, detects interwoven literal-pool data, and splits the
// stream into functions.
package loader

import (
	"fmt"
	"sort"
	"strings"

	"graphpa/internal/arm"
	"graphpa/internal/asm"
	"graphpa/internal/link"
)

// Function is one reconstructed procedure: a label-delimited instruction
// stream with symbolic targets and no literal-pool words.
type Function struct {
	Name string
	// Code holds executable instructions plus LABEL pseudo-instructions
	// marking local jump targets. Literal loads are in symbolic
	// "ldr rd, =sym" form.
	Code []arm.Instr
	// LRSaved reports whether the prologue saves lr, which makes lr dead
	// in the body and call-style outlining legal (see internal/pa).
	LRSaved bool
}

// Program is the decompiled, relocatable form of an image. Procedural
// abstraction rewrites Programs; relinking a Program yields a runnable
// image again.
type Program struct {
	Funcs []*Function
	Data  []asm.DataItem
}

// LoadError reports a decompilation failure.
type LoadError struct{ Msg string }

func (e *LoadError) Error() string { return "loader: " + e.Msg }

func errf(format string, args ...any) error {
	return &LoadError{Msg: fmt.Sprintf(format, args...)}
}

// Load decompiles an image.
func Load(img *link.Image) (*Program, error) {
	n := img.TextWords
	type slot struct {
		in   arm.Instr
		boff int32
		data bool // interwoven pool word
	}
	slots := make([]slot, n)
	for i := 0; i < n; i++ {
		in, boff := arm.Decode(img.Words[i])
		slots[i] = slot{in: in, boff: boff}
	}

	relocSet := map[int]bool{}
	for _, r := range img.Relocs {
		relocSet[r] = true
	}

	// Phase 5: interwoven-data detection. Every word referenced by a
	// pc-relative load is literal-pool data, whatever it happens to
	// decode as.
	poolOf := map[int]int{} // load word index -> pool word index
	for i := 0; i < n; i++ {
		in := &slots[i].in
		if in.Op.IsMem() && !in.Op.IsStore() && in.Rn == arm.PC {
			if !in.HasImm {
				return nil, errf("register-indexed pc-relative load at %#x", i*4)
			}
			p := i + int(in.Imm)
			if p < 0 || p >= n {
				return nil, errf("pc-relative load at %#x targets outside text", i*4)
			}
			poolOf[i] = p
			slots[p].data = true
		}
	}
	// Raw words that decoded as data but are not referenced by any load
	// would be executed or are dead; treat unreferenced WORD decodes
	// conservatively as data too (they cannot be reached legally).
	for i := 0; i < n; i++ {
		if slots[i].in.Op == arm.WORD {
			slots[i].data = true
		}
	}

	// Phases 3–4: collect label targets.
	textBytes := n * 4
	totalBytes := len(img.Words) * 4
	needTextLabel := map[int]bool{img.Entry: true}
	funcStart := map[int]bool{img.Entry: true}
	for i := 0; i < n; i++ {
		if slots[i].data {
			continue
		}
		in := &slots[i].in
		if in.Op == arm.B || in.Op == arm.BL {
			t := i*4 + int(slots[i].boff)*4
			if t < 0 || t >= textBytes {
				return nil, errf("branch at %#x targets %#x outside text", i*4, t)
			}
			if slots[t/4].data {
				return nil, errf("branch at %#x targets interwoven data", i*4)
			}
			needTextLabel[t] = true
			if in.Op == arm.BL {
				funcStart[t] = true
			}
		}
	}
	needDataLabel := map[int]bool{}
	addrLabel := func(addr int) error {
		switch {
		case addr >= 0 && addr < textBytes:
			if slots[addr/4].data {
				return errf("address constant %#x points into a literal pool", addr)
			}
			needTextLabel[addr] = true
			// An address in text loaded as data is a function pointer;
			// in embedded code its targets are procedures (paper cites
			// [5]); treat it as a function start.
			funcStart[addr] = true
		case addr >= textBytes && addr <= totalBytes:
			needDataLabel[addr] = true
		default:
			return errf("relocated address %#x outside image", addr)
		}
		return nil
	}
	for _, r := range img.Relocs {
		if err := addrLabel(int(img.Words[r])); err != nil {
			return nil, err
		}
	}

	// Name labels, preferring original symbols when present.
	textName := map[int]string{}
	for addr := range needTextLabel {
		if s := img.SymbolAt(addr); s != "" {
			textName[addr] = s
		} else if funcStart[addr] {
			textName[addr] = fmt.Sprintf("F_%x", addr)
		} else {
			textName[addr] = fmt.Sprintf(".L_%x", addr)
		}
	}
	dataName := map[int]string{}
	for addr := range needDataLabel {
		if s := img.SymbolAt(addr); s != "" {
			dataName[addr] = s
		} else {
			dataName[addr] = fmt.Sprintf("D_%x", addr)
		}
	}

	// Symbolise a pool word: relocated words become "=label", others
	// "=const:v".
	literalTarget := func(poolIdx int) (string, error) {
		v := img.Words[poolIdx]
		if relocSet[poolIdx] {
			addr := int(v)
			if addr >= textBytes {
				if s, ok := dataName[addr]; ok {
					return s, nil
				}
				return "", errf("pool word %#x: unlabelled data address", poolIdx*4)
			}
			if s, ok := textName[addr]; ok {
				return s, nil
			}
			return "", errf("pool word %#x: unlabelled text address", poolIdx*4)
		}
		return fmt.Sprintf("%s%d", arm.ConstPrefix, int32(v)), nil
	}

	// Phase 2: split into functions at sorted function starts.
	starts := make([]int, 0, len(funcStart))
	for a := range funcStart {
		starts = append(starts, a)
	}
	sort.Ints(starts)
	if len(starts) == 0 || starts[0] != 0 {
		// Code before the first function start would be unreachable.
		if len(starts) == 0 {
			return nil, errf("no functions found")
		}
	}

	prog := &Program{}
	for fi, start := range starts {
		end := textBytes
		if fi+1 < len(starts) {
			end = starts[fi+1]
		}
		fn := &Function{Name: textName[start]}
		for addr := start; addr < end; addr += 4 {
			i := addr / 4
			if slots[i].data {
				continue // pools are regenerated at re-link
			}
			if needTextLabel[addr] && addr != start {
				lbl := arm.NewInstr(arm.LABEL)
				lbl.Target = textName[addr]
				fn.Code = append(fn.Code, lbl)
			}
			in := slots[i].in
			if in.Op == arm.B || in.Op == arm.BL {
				t := addr + int(slots[i].boff)*4
				in.Target = textName[t]
			} else if p, ok := poolOf[i]; ok {
				sym, err := literalTarget(p)
				if err != nil {
					return nil, err
				}
				in.Rn = arm.RegNone
				in.HasImm = false
				in.Imm = 0
				in.Target = sym
			}
			fn.Code = append(fn.Code, in)
		}
		fn.LRSaved = prologueSavesLR(fn.Code)
		prog.Funcs = append(prog.Funcs, fn)
	}

	// Reconstruct the data section word by word (the linker aligns all
	// data labels, so word granularity is lossless).
	for addr := textBytes; addr < totalBytes; addr += 4 {
		if name, ok := dataName[addr]; ok {
			prog.Data = append(prog.Data, asm.DataItem{Kind: asm.DataLabel, Label: name})
		}
		w := img.Words[addr/4]
		item := asm.DataItem{Kind: asm.DataWord, Value: int32(w)}
		if relocSet[addr/4] {
			t := int(w)
			if s, ok := dataName[t]; ok {
				item = asm.DataItem{Kind: asm.DataWord, Sym: s}
			} else if s, ok := textName[t]; ok {
				item = asm.DataItem{Kind: asm.DataWord, Sym: s}
			} else {
				return nil, errf("data reloc at %#x: unlabelled target %#x", addr, t)
			}
		}
		prog.Data = append(prog.Data, item)
	}
	if name, ok := dataName[totalBytes]; ok {
		// A label exactly at the end of the image (e.g. a buffer end
		// marker or empty trailing object).
		prog.Data = append(prog.Data, asm.DataItem{Kind: asm.DataLabel, Label: name})
	}
	return prog, nil
}

func prologueSavesLR(code []arm.Instr) bool {
	for i := range code {
		if code[i].Op == arm.LABEL {
			continue
		}
		return code[i].Op == arm.PUSH && code[i].Reglist&(1<<arm.LR) != 0
	}
	return false
}

// ToUnit converts the program back to an assemblable unit, placing a
// literal-pool barrier after each function.
func (p *Program) ToUnit() (*asm.Unit, error) {
	u := &asm.Unit{}
	for _, fn := range p.Funcs {
		lbl := arm.NewInstr(arm.LABEL)
		lbl.Target = fn.Name
		u.Text = append(u.Text, lbl)
		u.Text = append(u.Text, fn.Code...)
		last := lastExec(fn.Code)
		if last == nil {
			return nil, errf("function %s has no instructions", fn.Name)
		}
		if !last.IsTerminator() {
			return nil, errf("function %s falls off its end (%s)", fn.Name, last.String())
		}
		u.Text = append(u.Text, asm.NewPoolBarrier())
	}
	u.Data = append(u.Data, p.Data...)
	return u, nil
}

func lastExec(code []arm.Instr) *arm.Instr {
	for i := len(code) - 1; i >= 0; i-- {
		if code[i].Op != arm.LABEL && code[i].Op != arm.WORD {
			return &code[i]
		}
	}
	return nil
}

// Relink assembles the program into a fresh image.
func (p *Program) Relink() (*link.Image, error) {
	u, err := p.ToUnit()
	if err != nil {
		return nil, err
	}
	return link.Link(u)
}

// CountInstrs returns the number of executable instructions (the paper's
// size metric excludes labels; literal-pool words track literal loads
// one-for-one and are excluded as in the paper's instruction counts).
func (p *Program) CountInstrs() int {
	total := 0
	for _, fn := range p.Funcs {
		for i := range fn.Code {
			if fn.Code[i].Op != arm.LABEL && fn.Code[i].Op != arm.WORD {
				total++
			}
		}
	}
	return total
}

// Lookup returns the function with the given name, or nil.
func (p *Program) Lookup(name string) *Function {
	for _, fn := range p.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	return nil
}

// String renders the program as assembly text.
func (p *Program) String() string {
	u, err := p.ToUnit()
	if err != nil {
		var b strings.Builder
		for _, fn := range p.Funcs {
			fmt.Fprintf(&b, "%s:\n%s", fn.Name, asm.PrintText(fn.Code))
		}
		return b.String()
	}
	return asm.Print(u)
}
