package loader

import (
	"strings"
	"testing"

	"graphpa/internal/arm"
	"graphpa/internal/asm"
	"graphpa/internal/emu"
	"graphpa/internal/link"
)

const demoSrc = `
_start:
	bl main
	mov r0, #0
	swi 0
	.pool
main:
	push {r4, lr}
	ldr r4, =counter
	mov r0, #0
	mov r1, #5
loop:
	add r0, r0, r1
	subs r1, r1, #1
	bne loop
	str r0, [r4]
	ldr r0, =70000
	pop {r4, pc}
	.pool
.data
counter:
	.word 0
msg:
	.asciz "ok"
ptr:
	.word msg
`

func loadDemo(t *testing.T) (*link.Image, *Program) {
	t.Helper()
	u, err := asm.Parse(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Link(u)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(img)
	if err != nil {
		t.Fatal(err)
	}
	return img, prog
}

func TestLoadFunctionSplit(t *testing.T) {
	_, prog := loadDemo(t)
	if len(prog.Funcs) != 2 {
		t.Fatalf("got %d functions: %v", len(prog.Funcs), names(prog))
	}
	if prog.Funcs[0].Name != "_start" || prog.Funcs[1].Name != "main" {
		t.Errorf("function names: %v", names(prog))
	}
	if prog.Funcs[0].LRSaved {
		t.Error("_start must not be lr-saved")
	}
	if !prog.Funcs[1].LRSaved {
		t.Error("main must be lr-saved")
	}
}

func names(p *Program) []string {
	var out []string
	for _, f := range p.Funcs {
		out = append(out, f.Name)
	}
	return out
}

func TestLoadReconstructsSymbolicForm(t *testing.T) {
	_, prog := loadDemo(t)
	main := prog.Lookup("main")
	if main == nil {
		t.Fatal("main not found")
	}
	var sawDataLit, sawConstLit, sawLocalLabel, sawBranch bool
	for i := range main.Code {
		in := &main.Code[i]
		if in.IsLiteralLoad() {
			if in.Target == "counter" {
				sawDataLit = true
			}
			if in.Target == arm.ConstPrefix+"70000" {
				sawConstLit = true
			}
		}
		if in.Op == arm.LABEL && in.Target == "loop" {
			sawLocalLabel = true
		}
		if in.Op == arm.B && in.Cond == arm.NE && in.Target == "loop" {
			sawBranch = true
		}
		if in.Op == arm.WORD {
			t.Error("pool words must not survive loading")
		}
	}
	if !sawDataLit || !sawConstLit || !sawLocalLabel || !sawBranch {
		t.Errorf("reconstruction incomplete: data=%v const=%v label=%v branch=%v\n%s",
			sawDataLit, sawConstLit, sawLocalLabel, sawBranch, prog.String())
	}
}

func TestLoadDataSection(t *testing.T) {
	_, prog := loadDemo(t)
	var labels []string
	var sawPtrReloc bool
	for _, d := range prog.Data {
		if d.Kind == asm.DataLabel {
			labels = append(labels, d.Label)
		}
		if d.Kind == asm.DataWord && d.Sym == "msg" {
			sawPtrReloc = true
		}
	}
	// "counter" and "msg" are referenced (by a literal load and a data
	// relocation) so their labels must be reconstructed; "ptr" is never
	// referenced and needs no label.
	joined := strings.Join(labels, ",")
	for _, want := range []string{"counter", "msg"} {
		if !strings.Contains(joined, want) {
			t.Errorf("data label %q missing (have %v)", want, labels)
		}
	}
	if !sawPtrReloc {
		t.Error("data-to-data relocation not reconstructed symbolically")
	}
}

// TestRoundTripBehaviour is the key integration property: decompiling and
// relinking must preserve observable behaviour and instruction count.
func TestRoundTripBehaviour(t *testing.T) {
	img, prog := loadDemo(t)

	img2, err := prog.Relink()
	if err != nil {
		t.Fatalf("relink: %v\n%s", err, prog.String())
	}
	m1 := emu.New(img, nil)
	c1, err := m1.Run()
	if err != nil {
		t.Fatal(err)
	}
	m2 := emu.New(img2, nil)
	c2, err := m2.Run()
	if err != nil {
		t.Fatalf("relinked image faults: %v\n%s", err, prog.String())
	}
	if c1 != c2 || m1.Stdout.String() != m2.Stdout.String() {
		t.Errorf("behaviour changed: exit %d vs %d, out %q vs %q", c1, c2, m1.Stdout.String(), m2.Stdout.String())
	}

	// Idempotence: loading the relinked image gives the same shape.
	prog2, err := Load(img2)
	if err != nil {
		t.Fatal(err)
	}
	if prog.CountInstrs() != prog2.CountInstrs() {
		t.Errorf("instruction count drifted: %d vs %d", prog.CountInstrs(), prog2.CountInstrs())
	}
	if len(prog.Funcs) != len(prog2.Funcs) {
		t.Errorf("function count drifted: %d vs %d", len(prog.Funcs), len(prog2.Funcs))
	}
}

func TestCountInstrs(t *testing.T) {
	_, prog := loadDemo(t)
	// _start: bl, mov, swi = 3; main: push, ldr, mov, mov, add, subs,
	// bne, str, ldr, pop = 10.
	if got := prog.CountInstrs(); got != 13 {
		t.Errorf("CountInstrs = %d, want 13\n%s", got, prog.String())
	}
}

func TestLoadRejectsBranchIntoPool(t *testing.T) {
	// Hand-construct an image whose branch targets a pool word.
	u, err := asm.Parse(`
_start:
	ldr r0, =123456
	swi 0
	.pool
`)
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Link(u)
	if err != nil {
		t.Fatal(err)
	}
	// Patch the swi into a branch aimed at the pool word (offset +1).
	b := arm.NewInstr(arm.B)
	b.Target = "x"
	w, err := arm.Encode(&b, 1)
	if err != nil {
		t.Fatal(err)
	}
	img.Words[1] = w
	if _, err := Load(img); err == nil {
		t.Error("branch into interwoven data must be rejected")
	}
}

func TestLoadUnreferencedGarbageIsData(t *testing.T) {
	u, err := asm.Parse("_start:\n\tmov r0, #0\n\tswi 0\n")
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Link(u)
	if err != nil {
		t.Fatal(err)
	}
	// Append a garbage word to text.
	img.Words = append(img.Words, 0xFFFFFFFF)
	img.TextWords++
	prog, err := Load(img)
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.CountInstrs(); got != 2 {
		t.Errorf("CountInstrs = %d, want 2 (garbage word excluded)", got)
	}
}

func TestToUnitRejectsFallthrough(t *testing.T) {
	p := &Program{Funcs: []*Function{{
		Name: "_start",
		Code: []arm.Instr{func() arm.Instr {
			in := arm.NewInstr(arm.MOV)
			in.Rd, in.Imm, in.HasImm = arm.R0, 0, true
			return in
		}()},
	}}}
	if _, err := p.ToUnit(); err == nil {
		t.Error("function falling off its end must be rejected")
	}
}

func TestLoadRejectsPCRelRegisterLoad(t *testing.T) {
	u, err := asm.Parse("_start:\n\tswi 0\n")
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Link(u)
	if err != nil {
		t.Fatal(err)
	}
	// Craft an ldr r0, [pc, r1] — register-indexed pc-relative.
	in := arm.NewInstr(arm.LDR)
	in.Rd, in.Rn, in.Rm = arm.R0, arm.PC, arm.R1
	w, err := arm.Encode(&in, 0)
	if err != nil {
		t.Fatal(err)
	}
	img.Words[0] = w
	img.TextWords = 1
	if _, err := Load(img); err == nil {
		t.Error("register-indexed pc-relative load must be rejected")
	}
}

func TestLoadRejectsOutOfRangeLiteral(t *testing.T) {
	u, err := asm.Parse("_start:\n\tswi 0\n\tswi 0\n")
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Link(u)
	if err != nil {
		t.Fatal(err)
	}
	in := arm.NewInstr(arm.LDR)
	in.Rd, in.Rn, in.Imm, in.HasImm = arm.R0, arm.PC, 100, true // beyond text
	w, err := arm.Encode(&in, 0)
	if err != nil {
		t.Fatal(err)
	}
	img.Words[0] = w
	if _, err := Load(img); err == nil {
		t.Error("literal load beyond text must be rejected")
	}
}

func TestLoadBranchOutsideText(t *testing.T) {
	u, err := asm.Parse("_start:\n\tswi 0\n")
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Link(u)
	if err != nil {
		t.Fatal(err)
	}
	b := arm.NewInstr(arm.B)
	b.Target = "x"
	w, err := arm.Encode(&b, 1000)
	if err != nil {
		t.Fatal(err)
	}
	img.Words[0] = w
	if _, err := Load(img); err == nil {
		t.Error("branch outside text must be rejected")
	}
}

func TestProgramLookupAndString(t *testing.T) {
	_, prog := loadDemo(t)
	if prog.Lookup("main") == nil || prog.Lookup("nope") != nil {
		t.Error("Lookup broken")
	}
	s := prog.String()
	if !strings.Contains(s, "main:") || !strings.Contains(s, ".pool") {
		t.Errorf("String() missing pieces:\n%s", s)
	}
}
