package codegen

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"graphpa/internal/arm"
	"graphpa/internal/asm"
	"graphpa/internal/emu"
	"graphpa/internal/link"
)

// randStraightLine generates a random straight-line computation over
// r0..r7 plus loads/stores into a scratch array.
func randStraightLine(r *rand.Rand, n int) []string {
	reg := func() string { return fmt.Sprintf("r%d", r.Intn(8)) }
	var lines []string
	for i := 0; i < n; i++ {
		switch r.Intn(8) {
		case 0:
			lines = append(lines, fmt.Sprintf("mov %s, #%d", reg(), r.Intn(256)))
		case 1:
			lines = append(lines, fmt.Sprintf("add %s, %s, %s", reg(), reg(), reg()))
		case 2:
			lines = append(lines, fmt.Sprintf("sub %s, %s, #%d", reg(), reg(), r.Intn(64)))
		case 3:
			lines = append(lines, fmt.Sprintf("eor %s, %s, %s", reg(), reg(), reg()))
		case 4:
			lines = append(lines, fmt.Sprintf("mov %s, %s, lsl #%d", reg(), reg(), 1+r.Intn(4)))
		case 5:
			lines = append(lines, fmt.Sprintf("ldr %s, [r8, #%d]", reg(), 4*r.Intn(8)))
		case 6:
			lines = append(lines, fmt.Sprintf("str %s, [r8, #%d]", reg(), 4*r.Intn(8)))
		case 7:
			lines = append(lines, fmt.Sprintf("cmp %s, #%d", reg(), r.Intn(64)))
			lines = append(lines, fmt.Sprintf("movge %s, #%d", reg(), r.Intn(64)))
		}
	}
	return lines
}

// TestQuickSchedulePreservesSemantics is the scheduler's soundness
// property: for random straight-line blocks, executing the scheduled
// order leaves the machine in exactly the same state as the original.
func TestQuickSchedulePreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		body := randStraightLine(r, 4+r.Intn(20))
		src := "_start:\n\tldr r8, =buf\n"
		for i := 0; i < 8; i++ {
			src += fmt.Sprintf("\tmov r%d, #%d\n", i, r.Intn(100))
		}
		src += "\t" + strings.Join(body, "\n\t") + "\n"
		// fold state into r0 for comparison
		for i := 1; i < 8; i++ {
			src += fmt.Sprintf("\teor r0, r0, r%d\n", i)
		}
		src += "\tswi 0\n\t.pool\n.data\nbuf:\n\t.space 64\n"

		unit, err := asm.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		scheduled := &asm.Unit{Text: Schedule(unit.Text), Data: unit.Data}

		run := func(u *asm.Unit) (int32, [64]byte) {
			img, err := link.Link(u)
			if err != nil {
				t.Fatalf("trial %d: %v\n%s", trial, err, asm.Print(u))
			}
			m := emu.New(img, nil)
			code, err := m.Run()
			if err != nil {
				t.Fatalf("trial %d: %v\n%s", trial, err, asm.Print(u))
			}
			var mem [64]byte
			copy(mem[:], m.Mem[img.Symbols["buf"]:])
			return code, mem
		}
		c1, m1 := run(unit)
		c2, m2 := run(scheduled)
		if c1 != c2 || m1 != m2 {
			t.Fatalf("trial %d: scheduling changed semantics (%d vs %d)\noriginal:\n%s\nscheduled:\n%s",
				trial, c1, c2, asm.Print(unit), asm.Print(scheduled))
		}
	}
}

// TestScheduleKeepsTerminatorLast ensures branches stay at run ends.
func TestScheduleKeepsTerminatorLast(t *testing.T) {
	unit, err := asm.Parse(`
f:
	mov r0, #1
	ldr r1, [r2]
	add r0, r0, r1
	bx lr
g:
	mov r3, #2
	b f
`)
	if err != nil {
		t.Fatal(err)
	}
	out := Schedule(unit.Text)
	for i := range out {
		in := &out[i]
		if in.Op == arm.BX || in.Op == arm.B {
			// must be followed by a label or end
			if i+1 < len(out) && out[i+1].Op != arm.LABEL {
				t.Errorf("terminator not at run end: %s followed by %s", in.String(), out[i+1].String())
			}
		}
	}
}
