package codegen

import (
	"testing"

	"graphpa/internal/emu"
	"graphpa/internal/link"
)

// TestOptimizerDifferential runs a corpus of programs with and without
// the IR optimizer; outputs and exit codes must match exactly. This is
// the optimizer's main safety net besides the benchmark golden exits.
func TestOptimizerDifferential(t *testing.T) {
	corpus := []string{
		// shift helpers with constant and variable amounts
		`
int shru(int x, int n) {
	if (n <= 0) return x;
	if (n > 31) return 0;
	return (x >> n) & (0x7fffffff >> (n - 1));
}
int main() {
	int acc = 0;
	for (int i = 0; i < 40; i += 1) {
		acc = acc * 3 + shru(acc ^ 0x1234567, 8) + shru(acc, i % 36);
	}
	printi(acc);
	return acc & 127;
}
`,
		// inlined helpers with pointers and side effects
		`
int g;
void bump(int* p, int d) { *p = *p + d; g += 1; }
int sq(int x) { return x * x; }
int main() {
	int v = 3;
	for (int i = 0; i < 10; i += 1) {
		bump(&v, sq(i));
	}
	printi(v); putc(10); printi(g);
	return (v + g) & 127;
}
`,
		// division/modulo helper folding with mixed signs
		`
int main() {
	int s = 0;
	s += 100 / 7;
	s += 100 % 7;
	s += (0 - 100) / 7;
	s += (0 - 100) % 7;
	s += 100 / (0 - 7);
	int d = 13;
	for (int i = 1; i < 20; i += 1) s += (i * i) / d + (i * i) % d;
	printi(s);
	return s & 127;
}
`,
		// constant branches guarding real work
		`
int work(int x) {
	if (1 > 2) return 999;
	while (0) x += 1;
	if (3 <= 3) x += 5;
	return x;
}
int main() { return work(10); }
`,
		// recursion mixed with inlinable leaves
		`
int leaf(int x) { return (x << 1) ^ (x >> 2); }
int rec(int n) {
	if (n <= 0) return 1;
	return leaf(n) + rec(n - 1);
}
int main() { printi(rec(12)); return rec(12) & 127; }
`,
		// char arrays and byte ops through inlined accessors
		`
char buf[32];
int get(int i) { return buf[i]; }
void set(int i, int v) { buf[i] = v; }
int main() {
	for (int i = 0; i < 32; i += 1) set(i, i * 7);
	int s = 0;
	for (int i = 0; i < 32; i += 1) s += get(i);
	printi(s);
	return s & 127;
}
`,
	}
	for ci, src := range corpus {
		run := func(opts Options) (int32, string) {
			unit, err := Compile(src, opts)
			if err != nil {
				t.Fatalf("case %d: %v", ci, err)
			}
			rt, err := link.RuntimeUnit()
			if err != nil {
				t.Fatal(err)
			}
			img, err := link.Link(unit, rt)
			if err != nil {
				t.Fatalf("case %d: %v", ci, err)
			}
			m := emu.New(img, nil)
			code, err := m.Run()
			if err != nil {
				t.Fatalf("case %d: %v", ci, err)
			}
			return code, m.Stdout.String()
		}
		c0, o0 := run(Options{})
		c1, o1 := run(Options{Optimize: true})
		c2, o2 := run(Options{Optimize: true, Schedule: true})
		if c0 != c1 || o0 != o1 {
			t.Errorf("case %d: optimizer changed behaviour: %d/%q vs %d/%q", ci, c0, o0, c1, o1)
		}
		if c0 != c2 || o0 != o2 {
			t.Errorf("case %d: optimizer+scheduler changed behaviour", ci)
		}
	}
}
