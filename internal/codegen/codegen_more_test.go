package codegen

import "testing"

func TestCompileCompoundMemoryAssign(t *testing.T) {
	src := `
int a[4];
int main() {
	a[0] = 5;
	a[0] += 3;
	a[0] *= 2;
	a[0] -= 1;     // 15
	a[1] = 40;
	a[1] /= 4;     // 10
	a[1] %= 3;     // 1
	a[2] = 6;
	a[2] <<= 2;    // 24
	a[2] >>= 1;    // 12
	a[3] = 12;
	a[3] &= 10;    // 8
	a[3] |= 5;     // 13
	a[3] ^= 1;     // 12
	return a[0] + a[1] + a[2] + a[3]; // 15+1+12+12 = 40
}
`
	code, _ := compileRun(t, src, Options{}, nil)
	if code != 40 {
		t.Errorf("exit = %d, want 40", code)
	}
}

func TestCompileNestedCalls(t *testing.T) {
	src := `
int add(int a, int b) { return a + b; }
int twice(int x) { return x * 2; }
int main() {
	return add(twice(3), add(twice(4), twice(5))); // 6 + (8+10) = 24
}
`
	code, _ := compileRun(t, src, Options{}, nil)
	if code != 24 {
		t.Errorf("exit = %d, want 24", code)
	}
}

func TestCompileComplexConditions(t *testing.T) {
	src := `
int main() {
	int n = 0;
	for (int i = 0; i < 20; i += 1) {
		if ((i % 2 == 0 && i % 3 == 0) || i > 15) n += 1;
	}
	// multiples of 6 below 20: 0,6,12,18 (4) ... 18 also >15; i>15: 16,17,18,19
	// union: {0,6,12,16,17,18,19} = 7
	return n;
}
`
	code, _ := compileRun(t, src, Options{}, nil)
	if code != 7 {
		t.Errorf("exit = %d, want 7", code)
	}
}

func TestCompileBreakContinue(t *testing.T) {
	src := `
int main() {
	int s = 0;
	int i = 0;
	while (1) {
		i += 1;
		if (i > 10) break;
		if (i % 2 == 0) continue;
		s += i;   // odd numbers 1..9 = 25
	}
	do {
		i += 1;
		if (i == 13) continue;
		if (i >= 15) break;
		s += 1;   // i = 12, 14 -> +2
	} while (1);
	return s;
}
`
	code, _ := compileRun(t, src, Options{}, nil)
	if code != 27 {
		t.Errorf("exit = %d, want 27", code)
	}
}

func TestCompileCharGlobalsAndPointers(t *testing.T) {
	src := `
char flag;
char text[8] = "abc";
int main() {
	flag = 'x';
	char* p = text;
	p += 1;
	*p = 'B';
	int d = &text[3] - &text[1]; // char* difference: 2
	return flag + text[1] + d;   // 120 + 66 + 2 = 188... wraps in exit? 188 < 256 ok
}
`
	code, _ := compileRun(t, src, Options{}, nil)
	if code != 188 {
		t.Errorf("exit = %d, want 188", code)
	}
}

func TestCompilePointerDifference(t *testing.T) {
	src := `
int arr[10];
int main() {
	int* a = &arr[2];
	int* b = &arr[7];
	return (b - a) * 10 + (b > a); // 50 + 1
}
`
	code, _ := compileRun(t, src, Options{}, nil)
	if code != 51 {
		t.Errorf("exit = %d, want 51", code)
	}
}

func TestCompileUnaryOps(t *testing.T) {
	src := `
int main() {
	int x = 5;
	int a = -x;        // -5
	int b = ~x;        // -6
	int c = !x;        // 0
	int d = !c;        // 1
	int e = - -x;      // 5
	return a + b + c + d + e; // -5
}
`
	code, _ := compileRun(t, src, Options{}, nil)
	if code != -5 {
		t.Errorf("exit = %d, want -5", code)
	}
}

func TestCompilePrefixIncrement(t *testing.T) {
	src := `
int main() {
	int i = 3;
	int j = ++i;   // i=4, j=4
	--i;           // 3
	return i * 10 + j; // 34
}
`
	code, _ := compileRun(t, src, Options{}, nil)
	if code != 34 {
		t.Errorf("exit = %d, want 34", code)
	}
}

func TestCompileMemBuiltins(t *testing.T) {
	src := `
char a[16];
char b[16];
int main() {
	memset(a, 7, 16);
	memcpy(b, a, 8);
	int s = 0;
	for (int i = 0; i < 16; i += 1) s += b[i];
	return s; // 8*7 = 56
}
`
	code, _ := compileRun(t, src, Options{}, nil)
	if code != 56 {
		t.Errorf("exit = %d, want 56", code)
	}
}

func TestCompileDeepExpression(t *testing.T) {
	// Forces register pressure in one expression tree.
	src := `
int main() {
	int a = 1; int b = 2; int c = 3; int d = 4;
	int e = 5; int f = 6; int g = 7; int h = 8;
	return ((a + b) * (c + d) + (e + f) * (g + h))
	     + ((a ^ b) * (c | d) + (e & f) * (g - h));
	// 3*7 + 11*15 = 186; (3*7) + (4 * -1) = 21 - 4 = 17; total 203
}
`
	code, _ := compileRun(t, src, Options{}, nil)
	if code != 203 {
		t.Errorf("exit = %d, want 203", code)
	}
}

func TestCompileRecursiveMutual(t *testing.T) {
	src := `
int isOdd(int n);
int isEven(int n) {
	if (n == 0) return 1;
	return isOdd(n - 1);
}
int isOdd(int n) {
	if (n == 0) return 0;
	return isEven(n - 1);
}
int main() { return isEven(10) * 10 + isOdd(7); }
`
	// forward declarations are not in the grammar; expect a parse error
	// OR adjust: minic has no prototypes. Use a single recursive pair via
	// ordering instead.
	if _, err := Compile(src, Options{}); err == nil {
		// If the grammar ever grows prototypes this must still compute 11.
		code, _ := compileRun(t, src, Options{}, nil)
		if code != 11 {
			t.Errorf("exit = %d, want 11", code)
		}
	}
}
