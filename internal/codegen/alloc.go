package codegen

import (
	"sort"

	"graphpa/internal/arm"
	"graphpa/internal/minic"
)

// Register pools. r11 and r12 are reserved as spill scratches, sp/lr/pc
// have fixed roles; everything else is allocatable. Caller-saved
// registers are preferred for ranges that do not cross calls, mirroring
// the ARM AAPCS split the paper's binaries use.
var (
	callerSaved = []arm.Reg{arm.R0, arm.R1, arm.R2, arm.R3}
	calleeSaved = []arm.Reg{arm.R4, arm.R5, arm.R6, arm.R7, arm.R8, arm.R9, arm.R10}
	scratchA    = arm.R12
	scratchB    = arm.R11
)

// allocation is the result of register allocation for one function.
type allocation struct {
	regOf      map[minic.Val]arm.Reg
	slotOf     map[minic.Val]int // spill slot index
	nSpills    int
	usedCallee []arm.Reg // callee-saved registers the function must save
}

// allocate runs linear scan over the intervals.
func allocate(f *minic.IRFunc) *allocation {
	intervals, _ := liveness(f)
	sort.Slice(intervals, func(i, j int) bool {
		if intervals[i].start != intervals[j].start {
			return intervals[i].start < intervals[j].start
		}
		return intervals[i].v < intervals[j].v
	})

	a := &allocation{regOf: map[minic.Val]arm.Reg{}, slotOf: map[minic.Val]int{}}
	inUse := map[arm.Reg]*interval{}
	var active []*interval

	expire := func(pos int) {
		keep := active[:0]
		for _, t := range active {
			if t.end < pos {
				delete(inUse, a.regOf[t.v])
				continue
			}
			keep = append(keep, t)
		}
		active = keep
	}
	pools := func(t *interval) []arm.Reg {
		if t.crossesCall {
			return calleeSaved
		}
		out := append([]arm.Reg(nil), callerSaved...)
		return append(out, calleeSaved...)
	}
	spill := func(t *interval) {
		t.spilled = true
		t.spillSlot = a.nSpills
		a.slotOf[t.v] = a.nSpills
		a.nSpills++
	}

	for _, t := range intervals {
		expire(t.start)
		var got arm.Reg = arm.RegNone
		for _, r := range pools(t) {
			if inUse[r] == nil {
				got = r
				break
			}
		}
		if got == arm.RegNone {
			// Steal from the active interval with the furthest end whose
			// register t may use; otherwise spill t itself.
			var donor *interval
			allowed := map[arm.Reg]bool{}
			for _, r := range pools(t) {
				allowed[r] = true
			}
			for _, act := range active {
				r := a.regOf[act.v]
				if !allowed[r] {
					continue
				}
				if donor == nil || act.end > donor.end {
					donor = act
				}
			}
			if donor != nil && donor.end > t.end {
				r := a.regOf[donor.v]
				delete(a.regOf, donor.v)
				spill(donor)
				// remove donor from active
				keep := active[:0]
				for _, act := range active {
					if act != donor {
						keep = append(keep, act)
					}
				}
				active = keep
				got = r
			} else {
				spill(t)
				continue
			}
		}
		a.regOf[t.v] = got
		inUse[got] = t
		active = append(active, t)
	}

	seen := map[arm.Reg]bool{}
	for _, r := range a.regOf {
		seen[r] = true
	}
	for _, r := range calleeSaved {
		if seen[r] {
			a.usedCallee = append(a.usedCallee, r)
		}
	}
	if a.nSpills > 0 {
		a.usedCallee = append(a.usedCallee, scratchB)
	}
	sort.Slice(a.usedCallee, func(i, j int) bool { return a.usedCallee[i] < a.usedCallee[j] })
	return a
}
