package codegen

import "graphpa/internal/arm"

// Peephole performs the local cleanups a size-optimising compiler would:
// self-moves vanish and unconditional branches to the immediately
// following label fall through.
func Peephole(body []arm.Instr) []arm.Instr {
	out := make([]arm.Instr, 0, len(body))
	for i := range body {
		in := body[i]
		// mov rX, rX
		if in.Op == arm.MOV && !in.HasImm && in.Shift == arm.NoShift &&
			in.Cond == arm.Always && !in.SetS && in.Rd == in.Rm {
			continue
		}
		// b .L; .L:
		if in.Op == arm.B && in.Cond == arm.Always {
			if next := nextLabel(body, i+1); next == in.Target {
				continue
			}
		}
		out = append(out, in)
	}
	return out
}

// nextLabel returns the label name if body[i:] starts with (only) labels
// and one of them matches — it returns the first label found.
func nextLabel(body []arm.Instr, i int) string {
	for ; i < len(body); i++ {
		if body[i].Op != arm.LABEL {
			return ""
		}
		return body[i].Target
	}
	return ""
}
