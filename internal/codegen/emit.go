package codegen

import (
	"fmt"

	"graphpa/internal/arm"
	"graphpa/internal/minic"
)

// EmitError reports a lowering failure (offset overflow etc.).
type EmitError struct{ Msg string }

func (e *EmitError) Error() string { return "codegen: " + e.Msg }

func errf(format string, args ...any) error {
	return &EmitError{Msg: fmt.Sprintf(format, args...)}
}

type emitter struct {
	f     *minic.IRFunc
	alloc *allocation
	out   []arm.Instr

	frameSize int32
	localOff  []int32 // per IRLocal frame offset
	spillBase int32
}

// emitFunc lowers one IR function to arm instructions (label excluded;
// the caller emits it).
func emitFunc(f *minic.IRFunc) ([]arm.Instr, error) {
	e := &emitter{f: f, alloc: allocate(f)}

	// Frame: spill slots first, then locals.
	e.spillBase = 0
	off := int32(e.alloc.nSpills) * 4
	for _, l := range f.Locals {
		e.localOff = append(e.localOff, off)
		off += (l.Size + 3) &^ 3
	}
	e.frameSize = off

	e.prologue()
	if err := e.params(); err != nil {
		return nil, err
	}
	for i := range f.Ins {
		if err := e.ins(&f.Ins[i]); err != nil {
			return nil, err
		}
	}
	return e.out, nil
}

func (e *emitter) emit(in arm.Instr) { e.out = append(e.out, in) }

func (e *emitter) pushList() uint16 {
	var mask uint16
	for _, r := range e.alloc.usedCallee {
		mask |= 1 << r
	}
	mask |= 1 << arm.LR
	return mask
}

// prologue saves callee-saved registers and lr (uniformly, including in
// leaves: the uniform prologue keeps lr dead in every body so procedural
// abstraction may outline anywhere; see internal/pa.CallSafe).
func (e *emitter) prologue() {
	push := arm.NewInstr(arm.PUSH)
	push.Reglist = e.pushList()
	e.emit(push)
	if e.frameSize > 0 {
		e.emitAddSub(arm.SUB, arm.SP, arm.SP, e.frameSize)
	}
}

func (e *emitter) epilogue() {
	if e.frameSize > 0 {
		e.emitAddSub(arm.ADD, arm.SP, arm.SP, e.frameSize)
	}
	pop := arm.NewInstr(arm.POP)
	pop.Reglist = e.pushList()&^(1<<arm.LR) | 1<<arm.PC
	e.emit(pop)
}

// emitAddSub emits op rd, rn, #imm, splitting immediates that do not fit.
func (e *emitter) emitAddSub(op arm.Op, rd, rn arm.Reg, imm int32) {
	for imm > arm.ImmMax {
		in := arm.NewInstr(op)
		in.Rd, in.Rn, in.Imm, in.HasImm = rd, rn, arm.ImmMax, true
		e.emit(in)
		rn = rd
		imm -= arm.ImmMax
	}
	in := arm.NewInstr(op)
	in.Rd, in.Rn, in.Imm, in.HasImm = rd, rn, imm, true
	e.emit(in)
}

// params moves incoming arguments (r0..r3) to their allocated homes.
func (e *emitter) params() error {
	var moves []move
	for p := 0; p < e.f.NParams; p++ {
		v := minic.Val(p)
		src := arm.Reg(p) // r0..r3
		if r, ok := e.alloc.regOf[v]; ok {
			moves = append(moves, move{src: src, dst: r})
			continue
		}
		if slot, ok := e.alloc.slotOf[v]; ok {
			e.storeSlot(src, slot)
		}
		// unused parameter: nothing to do
	}
	e.parallelMoves(moves)
	return nil
}

type move struct{ src, dst arm.Reg }

// parallelMoves emits register moves that may permute registers, using
// scratchA to break cycles.
func (e *emitter) parallelMoves(moves []move) {
	pending := make([]move, 0, len(moves))
	for _, m := range moves {
		if m.src != m.dst {
			pending = append(pending, m)
		}
	}
	for len(pending) > 0 {
		progressed := false
		for i, m := range pending {
			// m.dst must not be the source of another pending move.
			blocked := false
			for j, o := range pending {
				if i != j && o.src == m.dst {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			e.mov(m.dst, m.src)
			pending = append(pending[:i], pending[i+1:]...)
			progressed = true
			break
		}
		if !progressed {
			// Cycle: rotate through the scratch register.
			m := pending[0]
			e.mov(scratchA, m.src)
			for i := range pending {
				if pending[i].src == m.src {
					pending[i].src = scratchA
				}
			}
			// retry; the cycle is now broken
		}
	}
}

func (e *emitter) mov(dst, src arm.Reg) {
	if dst == src {
		return
	}
	in := arm.NewInstr(arm.MOV)
	in.Rd, in.Rm = dst, src
	e.emit(in)
}

func (e *emitter) movImm(dst arm.Reg, v int32) {
	if arm.FitsImm(v) {
		in := arm.NewInstr(arm.MOV)
		in.Rd, in.Imm, in.HasImm = dst, v, true
		e.emit(in)
		return
	}
	in := arm.NewInstr(arm.LDR)
	in.Rd = dst
	in.Target = fmt.Sprintf("%s%d", arm.ConstPrefix, v)
	e.emit(in)
}

func (e *emitter) loadSlot(dst arm.Reg, slot int) {
	in := arm.NewInstr(arm.LDR)
	in.Rd, in.Rn, in.Imm, in.HasImm = dst, arm.SP, e.spillBase+int32(slot)*4, true
	e.emit(in)
}

func (e *emitter) storeSlot(src arm.Reg, slot int) {
	in := arm.NewInstr(arm.STR)
	in.Rd, in.Rn, in.Imm, in.HasImm = src, arm.SP, e.spillBase+int32(slot)*4, true
	e.emit(in)
}

// src materialises a vreg into a register, using the given scratch if it
// was spilled.
func (e *emitter) src(v minic.Val, scratch arm.Reg) arm.Reg {
	if r, ok := e.alloc.regOf[v]; ok {
		return r
	}
	slot := e.alloc.slotOf[v]
	e.loadSlot(scratch, slot)
	return scratch
}

// dst returns the register to compute a result into and a flush function
// that stores it back if the vreg was spilled.
func (e *emitter) dst(v minic.Val) (arm.Reg, func()) {
	if r, ok := e.alloc.regOf[v]; ok {
		return r, func() {}
	}
	slot := e.alloc.slotOf[v]
	return scratchA, func() { e.storeSlot(scratchA, slot) }
}

var binOp = map[minic.BinKind]arm.Op{
	minic.BAdd: arm.ADD, minic.BSub: arm.SUB, minic.BRsb: arm.RSB,
	minic.BMul: arm.MUL, minic.BAnd: arm.AND, minic.BOr: arm.ORR,
	minic.BXor: arm.EOR,
}

var condOf = map[minic.CondKind]arm.Cond{
	minic.CEq: arm.EQ, minic.CNe: arm.NE, minic.CLt: arm.LT,
	minic.CLe: arm.LE, minic.CGt: arm.GT, minic.CGe: arm.GE,
}

func (e *emitter) ins(in *minic.IRIns) error {
	switch in.Op {
	case minic.IRLabel:
		lbl := arm.NewInstr(arm.LABEL)
		lbl.Target = in.Label
		e.emit(lbl)
	case minic.IRConst:
		rd, flush := e.dst(in.Dst)
		e.movImm(rd, in.Imm)
		flush()
	case minic.IRMov:
		ra := e.src(in.A, scratchA)
		rd, flush := e.dst(in.Dst)
		e.mov(rd, ra)
		flush()
	case minic.IRNeg:
		ra := e.src(in.A, scratchA)
		rd, flush := e.dst(in.Dst)
		n := arm.NewInstr(arm.RSB)
		n.Rd, n.Rn, n.Imm, n.HasImm = rd, ra, 0, true
		e.emit(n)
		flush()
	case minic.IRNot:
		ra := e.src(in.A, scratchA)
		rd, flush := e.dst(in.Dst)
		n := arm.NewInstr(arm.MVN)
		n.Rd, n.Rm = rd, ra
		e.emit(n)
		flush()
	case minic.IRBin:
		return e.bin(in)
	case minic.IRCmp:
		ra := e.src(in.A, scratchA)
		cmp := arm.NewInstr(arm.CMP)
		cmp.Rn = ra
		if in.HasImm {
			cmp.Imm, cmp.HasImm = in.Imm, true
		} else {
			cmp.Rm = e.src(in.B, scratchB)
		}
		e.emit(cmp)
		rd, flush := e.dst(in.Dst)
		z := arm.NewInstr(arm.MOV)
		z.Rd, z.Imm, z.HasImm = rd, 0, true
		e.emit(z)
		o := arm.NewInstr(arm.MOV)
		o.Cond = condOf[in.Cond]
		o.Rd, o.Imm, o.HasImm = rd, 1, true
		e.emit(o)
		flush()
	case minic.IRLoad, minic.IRLoadB:
		ra := e.src(in.A, scratchA)
		rd, flush := e.dst(in.Dst)
		op := arm.LDR
		if in.Op == minic.IRLoadB {
			op = arm.LDRB
		}
		if !arm.FitsImm(in.Imm) {
			return errf("load offset %d out of range", in.Imm)
		}
		l := arm.NewInstr(op)
		l.Rd, l.Rn, l.Imm, l.HasImm = rd, ra, in.Imm, true
		e.emit(l)
		flush()
	case minic.IRStore, minic.IRStoreB:
		ra := e.src(in.A, scratchA)
		rb := e.src(in.B, scratchB)
		op := arm.STR
		if in.Op == minic.IRStoreB {
			op = arm.STRB
		}
		if !arm.FitsImm(in.Imm) {
			return errf("store offset %d out of range", in.Imm)
		}
		s := arm.NewInstr(op)
		s.Rd, s.Rn, s.Imm, s.HasImm = rb, ra, in.Imm, true
		e.emit(s)
	case minic.IRAddrG:
		rd, flush := e.dst(in.Dst)
		l := arm.NewInstr(arm.LDR)
		l.Rd, l.Target = rd, in.Sym
		e.emit(l)
		flush()
	case minic.IRAddrL:
		rd, flush := e.dst(in.Dst)
		off := e.localOff[in.LocalIdx]
		e.emitAddSub(arm.ADD, rd, arm.SP, off)
		flush()
	case minic.IRCall:
		return e.call(in)
	case minic.IRRet:
		if in.A != minic.NoVal {
			ra := e.src(in.A, scratchA)
			e.mov(arm.R0, ra)
		}
		e.epilogue()
	case minic.IRBr:
		b := arm.NewInstr(arm.B)
		b.Target = in.Label
		e.emit(b)
	case minic.IRBrCond:
		ra := e.src(in.A, scratchA)
		cmp := arm.NewInstr(arm.CMP)
		cmp.Rn = ra
		if in.HasImm {
			cmp.Imm, cmp.HasImm = in.Imm, true
		} else {
			cmp.Rm = e.src(in.B, scratchB)
		}
		e.emit(cmp)
		b := arm.NewInstr(arm.B)
		b.Cond = condOf[in.Cond]
		b.Target = in.Label
		e.emit(b)
	}
	return nil
}

func (e *emitter) bin(in *minic.IRIns) error {
	ra := e.src(in.A, scratchA)
	// Shifts map to mov with a shifted operand.
	if in.Bin == minic.BShl || in.Bin == minic.BShr || in.Bin == minic.BLsr {
		if !in.HasImm {
			return errf("variable shift reached emission")
		}
		rd, flush := e.dst(in.Dst)
		m := arm.NewInstr(arm.MOV)
		m.Rd, m.Rm = rd, ra
		m.Shift = arm.LSL
		switch in.Bin {
		case minic.BShr:
			m.Shift = arm.ASR
		case minic.BLsr:
			m.Shift = arm.LSR
		}
		m.ShAmt = in.Imm
		if in.Imm == 0 {
			m.Shift = arm.NoShift
		}
		e.emit(m)
		flush()
		return nil
	}
	op := binOp[in.Bin]
	rd, flush := e.dst(in.Dst)
	n := arm.NewInstr(op)
	n.Rd, n.Rn = rd, ra
	if in.HasImm {
		if !arm.FitsImm(in.Imm) {
			return errf("ALU immediate %d out of range", in.Imm)
		}
		n.Imm, n.HasImm = in.Imm, true
	} else {
		n.Rm = e.src(in.B, scratchB)
	}
	e.emit(n)
	flush()
	return nil
}

func (e *emitter) call(in *minic.IRIns) error {
	if len(in.Args) > 4 {
		return errf("call %s: more than 4 arguments", in.Sym)
	}
	// Register-allocated argument sources move in parallel; spilled
	// sources load directly into their argument register afterwards
	// (argument registers are only targets by then).
	var moves []move
	type slotLoad struct {
		dst  arm.Reg
		slot int
	}
	var loads []slotLoad
	for i, a := range in.Args {
		dst := arm.Reg(i)
		if r, ok := e.alloc.regOf[a]; ok {
			moves = append(moves, move{src: r, dst: dst})
		} else {
			loads = append(loads, slotLoad{dst: dst, slot: e.alloc.slotOf[a]})
		}
	}
	e.parallelMoves(moves)
	for _, l := range loads {
		e.loadSlot(l.dst, l.slot)
	}
	bl := arm.NewInstr(arm.BL)
	bl.Target = in.Sym
	e.emit(bl)
	if in.Dst != minic.NoVal {
		if r, ok := e.alloc.regOf[in.Dst]; ok {
			e.mov(r, arm.R0)
		} else {
			e.storeSlot(arm.R0, e.alloc.slotOf[in.Dst])
		}
	}
	return nil
}
