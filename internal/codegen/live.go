// Package codegen lowers minic IR to arm instructions: liveness analysis,
// linear-scan register allocation with spilling, template-based
// instruction emission, an optional list scheduler that hoists loads (the
// reordering source the paper credits for rijndael's 3.7× win), and a
// small peephole pass.
package codegen

import (
	"graphpa/internal/minic"
)

// irBlock is a basic block over the linear IR.
type irBlock struct {
	start, end int // instruction index range [start, end)
	succs      []int
	liveIn     map[minic.Val]bool
	liveOut    map[minic.Val]bool
}

// buildIRBlocks splits the instruction list into blocks and wires
// successors.
func buildIRBlocks(f *minic.IRFunc) []*irBlock {
	n := len(f.Ins)
	leader := make([]bool, n+1)
	leader[0] = true
	labelAt := map[string]int{}
	for i, in := range f.Ins {
		switch in.Op {
		case minic.IRLabel:
			leader[i] = true
			labelAt[in.Label] = i
		case minic.IRBr, minic.IRBrCond, minic.IRRet:
			if i+1 <= n {
				leader[i+1] = true
			}
		}
	}
	var blocks []*irBlock
	for i := 0; i < n; {
		j := i + 1
		for j < n && !leader[j] {
			j++
		}
		blocks = append(blocks, &irBlock{
			start: i, end: j,
			liveIn:  map[minic.Val]bool{},
			liveOut: map[minic.Val]bool{},
		})
		i = j
	}
	blockOf := make([]int, n)
	for bi, b := range blocks {
		for i := b.start; i < b.end; i++ {
			blockOf[i] = bi
		}
	}
	for bi, b := range blocks {
		last := &f.Ins[b.end-1]
		switch last.Op {
		case minic.IRBr:
			b.succs = append(b.succs, blockOf[labelAt[last.Label]])
		case minic.IRBrCond:
			b.succs = append(b.succs, blockOf[labelAt[last.Label]])
			if bi+1 < len(blocks) {
				b.succs = append(b.succs, bi+1)
			}
		case minic.IRRet:
		default:
			if bi+1 < len(blocks) {
				b.succs = append(b.succs, bi+1)
			}
		}
	}
	return blocks
}

// interval is a vreg live range over instruction positions.
type interval struct {
	v           minic.Val
	start, end  int
	crossesCall bool
	spilled     bool
	reg         int // allocated machine register (index into pool), -1 if spilled
	spillSlot   int // frame slot index when spilled
}

// liveness computes per-block live-in/out sets and returns per-vreg
// intervals plus the set of call positions.
func liveness(f *minic.IRFunc) ([]*interval, []int) {
	blocks := buildIRBlocks(f)

	// Iterate to fixpoint.
	changed := true
	for changed {
		changed = false
		for bi := len(blocks) - 1; bi >= 0; bi-- {
			b := blocks[bi]
			out := map[minic.Val]bool{}
			for _, s := range b.succs {
				for v := range blocks[s].liveIn {
					out[v] = true
				}
			}
			in := map[minic.Val]bool{}
			for v := range out {
				in[v] = true
			}
			for i := b.end - 1; i >= b.start; i-- {
				uses, def := f.Ins[i].UseDef()
				if def != minic.NoVal {
					delete(in, def)
				}
				for _, u := range uses {
					in[u] = true
				}
			}
			if len(out) != len(b.liveOut) || len(in) != len(b.liveIn) {
				changed = true
			} else {
				for v := range in {
					if !b.liveIn[v] {
						changed = true
						break
					}
				}
			}
			b.liveIn, b.liveOut = in, out
		}
	}

	iv := map[minic.Val]*interval{}
	touch := func(v minic.Val, pos int) {
		t, ok := iv[v]
		if !ok {
			t = &interval{v: v, start: pos, end: pos, reg: -1}
			iv[v] = t
			return
		}
		if pos < t.start {
			t.start = pos
		}
		if pos > t.end {
			t.end = pos
		}
	}
	// Parameters are live from position -1 (they arrive in r0..r3).
	for p := 0; p < f.NParams; p++ {
		touch(minic.Val(p), -1)
	}
	var calls []int
	for bi, b := range blocks {
		_ = bi
		for v := range b.liveIn {
			touch(v, b.start)
		}
		for v := range b.liveOut {
			touch(v, b.end-1)
		}
		for i := b.start; i < b.end; i++ {
			in := &f.Ins[i]
			if in.Op == minic.IRCall {
				calls = append(calls, i)
			}
			uses, def := in.UseDef()
			for _, u := range uses {
				touch(u, i)
			}
			if def != minic.NoVal {
				touch(def, i)
			}
		}
	}
	var out []*interval
	for _, t := range iv {
		for _, c := range calls {
			if t.start < c && t.end > c {
				t.crossesCall = true
				break
			}
		}
		out = append(out, t)
	}
	return out, calls
}
