package codegen

import "testing"

const benchSrc = `
int tab[64];
int f(int x, int k) {
	int t = x * 31 + k;
	t = t ^ (t << 3);
	return t + (t >> 5);
}
int main() {
	int acc = 1;
	for (int i = 0; i < 64; i += 1) {
		tab[i] = f(acc, i);
		acc += tab[i];
	}
	return acc & 127;
}
`

// BenchmarkCompile measures the full front end + back end.
func BenchmarkCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Compile(benchSrc, Options{Schedule: true}); err != nil {
			b.Fatal(err)
		}
	}
}
