package codegen

import (
	"strings"
	"testing"

	"graphpa/internal/arm"
	"graphpa/internal/asm"
	"graphpa/internal/emu"
	"graphpa/internal/link"
)

// compileRun compiles, links with the runtime and executes.
func compileRun(t *testing.T, src string, opts Options, stdin []byte) (int32, string) {
	t.Helper()
	unit, err := Compile(src, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rt, err := link.RuntimeUnit()
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Link(unit, rt)
	if err != nil {
		t.Fatalf("link: %v\n%s", err, asm.Print(unit))
	}
	m := emu.New(img, stdin)
	code, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, asm.Print(unit))
	}
	return code, m.Stdout.String()
}

func TestCompileReturnValue(t *testing.T) {
	code, _ := compileRun(t, "int main() { return 42; }", Options{}, nil)
	if code != 42 {
		t.Errorf("exit = %d", code)
	}
}

func TestCompileArithmetic(t *testing.T) {
	src := `
int main() {
	int a = 10;
	int b = 3;
	return a * b + a / b - a % b + (a << 2) + (b >> 1);
	// 30 + 3 - 1 + 40 + 1 = 73
}
`
	code, _ := compileRun(t, src, Options{}, nil)
	if code != 73 {
		t.Errorf("exit = %d, want 73", code)
	}
}

func TestCompileNegativeDivision(t *testing.T) {
	src := `
int main() {
	int a = 0 - 17;
	int b = 5;
	// C semantics: -17/5 = -3, -17%5 = -2
	return (a / b) * 100 + (a % b) * 10 + (0 - a) % b;
	// -300 + -20 + 2 = -318
}
`
	code, _ := compileRun(t, src, Options{}, nil)
	if code != -318 {
		t.Errorf("exit = %d, want -318", code)
	}
}

func TestCompileControlFlow(t *testing.T) {
	src := `
int main() {
	int s = 0;
	for (int i = 1; i <= 10; i += 1) {
		if (i % 2 == 0) { s += i; } else { s -= 1; }
	}
	int j = 0;
	while (j < 5) { s += 1; j += 1; }
	do { s += 100; } while (s < 0);
	return s;
	// evens 2+4+6+8+10=30, odds -5 -> 25, +5 -> 30, +100 -> 130
}
`
	code, _ := compileRun(t, src, Options{}, nil)
	if code != 130 {
		t.Errorf("exit = %d, want 130", code)
	}
}

func TestCompileShortCircuit(t *testing.T) {
	src := `
int g;
int touch(int v) { g += 1; return v; }
int main() {
	g = 0;
	int a = touch(0) && touch(1);  // touch(1) skipped
	int b = touch(1) || touch(1);  // second skipped
	return g * 10 + a + b;         // g=2 -> 21
}
`
	code, _ := compileRun(t, src, Options{}, nil)
	if code != 21 {
		t.Errorf("exit = %d, want 21", code)
	}
}

func TestCompileArraysAndPointers(t *testing.T) {
	src := `
int arr[8];
int sum(int* p, int n) {
	int s = 0;
	for (int i = 0; i < n; i += 1) s += p[i];
	return s;
}
int main() {
	for (int i = 0; i < 8; i += 1) arr[i] = i * i;
	int local[4];
	local[0] = 1; local[1] = 2; local[2] = 3; local[3] = 4;
	int* p = &arr[2];
	return sum(arr, 8) + sum(local, 4) + *p + p[1];
	// 140 + 10 + 4 + 9 = 163
}
`
	code, _ := compileRun(t, src, Options{}, nil)
	if code != 163 {
		t.Errorf("exit = %d, want 163", code)
	}
}

func TestCompileCharsAndStrings(t *testing.T) {
	src := `
char msg[] = "hey";
int main() {
	puts(msg);
	puts("you");
	putc('!');
	putc(10);
	if (strcmp(msg, "hey") != 0) return 1;
	if (strlen("abcd") != 4) return 2;
	char buf[8];
	strcpy(buf, msg);
	buf[0] = 'H';
	puts(buf);
	return 0;
}
`
	code, out := compileRun(t, src, Options{}, nil)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if out != "heyyou!\nHey" {
		t.Errorf("out = %q", out)
	}
}

func TestCompilePrinti(t *testing.T) {
	src := `
int main() {
	printi(0); putc(32);
	printi(12345); putc(32);
	printi(0 - 987);
	return 0;
}
`
	_, out := compileRun(t, src, Options{}, nil)
	if out != "0 12345 -987" {
		t.Errorf("out = %q", out)
	}
}

func TestCompileRecursion(t *testing.T) {
	src := `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }
`
	code, _ := compileRun(t, src, Options{}, nil)
	if code != 144 {
		t.Errorf("fib(12) = %d, want 144", code)
	}
}

func TestCompileGlobalInitialisers(t *testing.T) {
	src := `
int table[5] = {10, 20, 30};
int scalar = -7;
char bytes[4] = {1, 2, 3, 4};
int main() {
	return table[0] + table[1] + table[2] + table[3] + table[4]
		+ scalar + bytes[0] + bytes[3];
	// 60 + 0 + 0 - 7 + 1 + 4 = 58
}
`
	code, _ := compileRun(t, src, Options{}, nil)
	if code != 58 {
		t.Errorf("exit = %d, want 58", code)
	}
}

func TestCompileAddressOfLocal(t *testing.T) {
	src := `
void bump(int* p, int d) { *p = *p + d; }
int main() {
	int x = 5;
	bump(&x, 37);
	return x;
}
`
	code, _ := compileRun(t, src, Options{}, nil)
	if code != 42 {
		t.Errorf("exit = %d, want 42", code)
	}
}

func TestCompileVariableShifts(t *testing.T) {
	src := `
int main() {
	int n = 3;
	int a = 1 << n;        // 8
	int b = 256 >> n;      // 32
	int c = (0 - 64) >> n; // -8 arithmetic
	int big = 40;
	int d = 1 << big;      // 0 (shift >= 32)
	return a + b + c + d;  // 32
}
`
	code, _ := compileRun(t, src, Options{}, nil)
	if code != 32 {
		t.Errorf("exit = %d, want 32", code)
	}
}

func TestCompileRand(t *testing.T) {
	src := `
int main() {
	srand(99);
	int a = rand();
	int b = rand();
	if (a < 0) return 1;
	if (a > 32767) return 2;
	if (a == b) return 3;
	srand(99);
	if (rand() != a) return 4;
	return 0;
}
`
	code, _ := compileRun(t, src, Options{}, nil)
	if code != 0 {
		t.Errorf("exit = %d, want 0", code)
	}
}

func TestCompileGetc(t *testing.T) {
	src := `
int main() {
	int c = getc();
	int n = 0;
	while (c >= 0) { n += 1; putc(c); c = getc(); }
	return n;
}
`
	code, out := compileRun(t, src, Options{}, []byte("abc"))
	if code != 3 || out != "abc" {
		t.Errorf("exit=%d out=%q", code, out)
	}
}

// TestScheduleEquivalence: the list scheduler must preserve behaviour
// while actually changing instruction order somewhere.
func TestScheduleEquivalence(t *testing.T) {
	src := `
int a[16]; int b[16];
int main() {
	for (int i = 0; i < 16; i += 1) { a[i] = i * 3; b[i] = i ^ 5; }
	int s = 0;
	for (int i = 0; i < 16; i += 1) {
		int x = a[i];
		int y = b[i];
		s += x * y + (x - y);
	}
	printi(s);
	return s & 127;
}
`
	c1, o1 := compileRun(t, src, Options{}, nil)
	c2, o2 := compileRun(t, src, Options{Schedule: true}, nil)
	if c1 != c2 || o1 != o2 {
		t.Errorf("scheduling changed behaviour: %d/%q vs %d/%q", c1, o1, c2, o2)
	}

	u1, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u2, err := Compile(src, Options{Schedule: true})
	if err != nil {
		t.Fatal(err)
	}
	if asm.Print(u1) == asm.Print(u2) {
		t.Error("scheduler produced identical code; it should reorder something")
	}
	if len(u1.Text) != len(u2.Text) {
		t.Error("scheduling must not change instruction count")
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"int f() { return 0; }",            // no main
		"int main(int argc) { return 0; }", // main with params
	}
	for _, src := range bad {
		if _, err := Compile(src, Options{}); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestUniformPrologue(t *testing.T) {
	// Every compiled function saves lr, even leaves: that is what makes
	// call-style outlining legal everywhere (internal/pa.CallSafe).
	unit, err := Compile("int leaf(int x) { return x + 1; }\nint main() { return leaf(1); }", Options{})
	if err != nil {
		t.Fatal(err)
	}
	var prologues int
	for i := range unit.Text {
		in := &unit.Text[i]
		if in.Op == arm.PUSH && in.Reglist&(1<<arm.LR) != 0 {
			prologues++
		}
	}
	if prologues != 2 {
		t.Errorf("prologues saving lr = %d, want 2\n%s", prologues, asm.Print(unit))
	}
}

func TestRegisterPressureSpilling(t *testing.T) {
	// Force more live values than registers; correctness must survive
	// spilling.
	var b strings.Builder
	b.WriteString("int main() {\n")
	for i := 0; i < 16; i++ {
		b.WriteString("\tint v")
		b.WriteByte(byte('a' + i))
		b.WriteString(" = ")
		b.WriteString(itoa(i*7 + 1))
		b.WriteString(";\n")
	}
	b.WriteString("\tint s = 0;\n")
	// use all of them after a call so they must live across it
	b.WriteString("\tputc(65);\n")
	want := 0
	for i := 0; i < 16; i++ {
		b.WriteString("\ts += v")
		b.WriteByte(byte('a' + i))
		b.WriteString(";\n")
		want += i*7 + 1
	}
	b.WriteString("\treturn s;\n}\n")
	code, out := compileRun(t, b.String(), Options{}, nil)
	if int(code) != want || out != "A" {
		t.Errorf("exit = %d want %d, out %q", code, want, out)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
