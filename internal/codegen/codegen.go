package codegen

import (
	"fmt"

	"graphpa/internal/arm"
	"graphpa/internal/asm"
	"graphpa/internal/minic"
)

// Options tunes code generation.
type Options struct {
	// Optimize enables the -Os-style IR optimizer: inlining of small
	// functions, constant folding, branch simplification, dead-code and
	// unused-function elimination (minic.OptimizeIR). Besides shrinking
	// code it creates the big straight-line blocks whose duplicated,
	// reschedulable regions graph-based PA feeds on.
	Optimize bool
	// Schedule enables the list scheduler, which hoists loads and
	// rebalances ALU code inside basic blocks. It is the source of the
	// instruction reordering that defeats sequence-based PA (paper §4.2,
	// rijndael discussion). Off = template order.
	Schedule bool
	// NoPeephole disables the cleanup pass (testing/ablation only).
	NoPeephole bool
}

// Compile translates minic source into an assembled unit containing every
// function plus a _start stub that calls main and exits with its result.
// The unit still needs the runtime library (link.RuntimeUnit) at link
// time.
func Compile(src string, opts Options) (*asm.Unit, error) {
	prog, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := minic.Check(prog); err != nil {
		return nil, err
	}
	return CompileChecked(prog, opts)
}

// CompileChecked compiles an already-checked AST.
func CompileChecked(prog *minic.Program, opts Options) (*asm.Unit, error) {
	irs, err := minic.Lower(prog)
	if err != nil {
		return nil, err
	}
	hasMain := false
	for _, f := range irs {
		if f.Name == "main" {
			hasMain = true
			if f.NParams != 0 {
				return nil, errf("main must take no parameters")
			}
		}
	}
	if !hasMain {
		return nil, errf("no main function")
	}
	if opts.Optimize {
		irs = minic.OptimizeIR(irs)
	}

	unit := &asm.Unit{}
	// _start: call main, exit with its return value.
	start := arm.NewInstr(arm.LABEL)
	start.Target = "_start"
	bl := arm.NewInstr(arm.BL)
	bl.Target = "main"
	exit := arm.NewInstr(arm.SWI)
	exit.Imm, exit.HasImm = arm.SysExit, true
	unit.Text = append(unit.Text, start, bl, exit, asm.NewPoolBarrier())

	for _, f := range irs {
		body, err := emitFunc(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f.Name, err)
		}
		if !opts.NoPeephole {
			body = Peephole(body)
		}
		if opts.Schedule {
			body = Schedule(body)
		}
		lbl := arm.NewInstr(arm.LABEL)
		lbl.Target = f.Name
		unit.Text = append(unit.Text, lbl)
		unit.Text = append(unit.Text, body...)
		unit.Text = append(unit.Text, asm.NewPoolBarrier())
	}

	for _, g := range prog.Globals {
		items, err := globalData(g)
		if err != nil {
			return nil, err
		}
		unit.Data = append(unit.Data, items...)
	}
	return unit, nil
}

// globalData lays out one global.
func globalData(g *minic.GlobalVar) ([]asm.DataItem, error) {
	items := []asm.DataItem{{Kind: asm.DataLabel, Label: g.Name}}
	t := g.Type
	switch {
	case t.Kind == minic.TArray && t.Elem.Kind == minic.TChar:
		switch {
		case g.Str != "" || (g.HasIni && g.Init == nil):
			b := append([]byte(g.Str), 0)
			if int32(len(b)) > t.Len {
				return nil, errf("initialiser for %s too long", g.Name)
			}
			items = append(items, asm.DataItem{Kind: asm.DataBytes, Bytes: b})
			if pad := t.Len - int32(len(b)); pad > 0 {
				items = append(items, asm.DataItem{Kind: asm.DataSpace, Space: pad})
			}
		case g.HasIni:
			b := make([]byte, t.Len)
			for i, v := range g.Init {
				b[i] = byte(v)
			}
			items = append(items, asm.DataItem{Kind: asm.DataBytes, Bytes: b})
		default:
			items = append(items, asm.DataItem{Kind: asm.DataSpace, Space: t.Size()})
		}
	case t.Kind == minic.TArray:
		if !g.HasIni {
			items = append(items, asm.DataItem{Kind: asm.DataSpace, Space: t.Size()})
			break
		}
		for _, v := range g.Init {
			items = append(items, asm.DataItem{Kind: asm.DataWord, Value: v})
		}
		if rest := t.Len - int32(len(g.Init)); rest > 0 {
			items = append(items, asm.DataItem{Kind: asm.DataSpace, Space: rest * 4})
		}
	default: // scalar
		v := int32(0)
		if g.HasIni && len(g.Init) > 0 {
			v = g.Init[0]
		}
		items = append(items, asm.DataItem{Kind: asm.DataWord, Value: v})
	}
	return items, nil
}
