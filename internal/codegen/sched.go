package codegen

import (
	"container/heap"

	"graphpa/internal/arm"
	"graphpa/internal/cfg"
	"graphpa/internal/dfg"
)

// Schedule list-schedules every straight-line run of a function body:
// within each run it picks, among dependence-ready instructions, the one
// with the longest latency-weighted path to the end of the run (loads
// count twice to model load-use delay), breaking ties by original order.
// The output is semantically equivalent — it respects every dependence
// edge — but its instruction ORDER differs from template order, which is
// exactly the compiler behaviour that blinds sequence-based PA while
// leaving graph-based PA unaffected (paper §4.2: rijndael's loads are
// "reordered and rescheduled to overlap load operations with
// computation").
func Schedule(body []arm.Instr) []arm.Instr {
	var out []arm.Instr
	run := make([]arm.Instr, 0, 16)
	flush := func() {
		if len(run) > 0 {
			out = append(out, scheduleRun(run)...)
			run = run[:0]
		}
	}
	for _, in := range body {
		if in.Op == arm.LABEL || in.Op == arm.WORD {
			flush()
			out = append(out, in)
			continue
		}
		run = append(run, in)
		if in.Op.IsBranch() || in.IsTerminator() {
			flush()
		}
	}
	flush()
	return out
}

// priQueue pops the node with the highest priority (ties: lowest index).
type priQueue struct {
	items []int
	pri   []int
}

func (q priQueue) Len() int { return len(q.items) }
func (q priQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if q.pri[a] != q.pri[b] {
		return q.pri[a] > q.pri[b]
	}
	return a < b
}
func (q priQueue) Swap(i, j int)       { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *priQueue) Push(x interface{}) { q.items = append(q.items, x.(int)) }
func (q *priQueue) Pop() interface{} {
	old := q.items
	n := len(old)
	x := old[n-1]
	q.items = old[:n-1]
	return x
}

func latency(in *arm.Instr) int {
	if in.Op.IsLoad() {
		return 2
	}
	return 1
}

func scheduleRun(run []arm.Instr) []arm.Instr {
	if len(run) < 3 {
		return append([]arm.Instr(nil), run...)
	}
	b := &cfg.Block{Instrs: append([]arm.Instr(nil), run...)}
	g := dfg.Build(b, nil) // compiler-emitted calls are ABI-conforming
	n := g.N()

	// Critical-path priority.
	pri := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		pri[i] = latency(&run[i])
		for _, s := range g.Succs(i) {
			if p := latency(&run[i]) + pri[s]; p > pri[i] {
				pri[i] = p
			}
		}
	}

	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		for _, s := range g.Succs(i) {
			indeg[s]++
		}
	}
	q := &priQueue{pri: pri}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			heap.Push(q, i)
		}
	}
	out := make([]arm.Instr, 0, n)
	for q.Len() > 0 {
		v := heap.Pop(q).(int)
		out = append(out, run[v])
		for _, s := range g.Succs(v) {
			indeg[s]--
			if indeg[s] == 0 {
				heap.Push(q, s)
			}
		}
	}
	return out
}
