package pa

import (
	"fmt"
	"strings"
	"testing"

	"graphpa/internal/cfg"
	"graphpa/internal/dfg"
	"graphpa/internal/loader"
)

func buildForMining(t *testing.T, prog *loader.Program) (*cfg.Program, []*dfg.Graph) {
	t.Helper()
	view := cfg.Build(prog)
	summaries := CallSummaries(view)
	graphs := make([]*dfg.Graph, len(view.Blocks))
	for i, b := range view.Blocks {
		graphs[i] = dfg.Build(b, summaries)
	}
	return view, graphs
}

// The benefit-directed walk (best-first sibling order, MIS-aware child
// pruning, warm-started incumbent) and the multiresolution coarse-to-fine
// pass on top of it must both be invisible in the output: the
// Lexicographic and NoMultires kill switches flip the entire machinery
// and the Result has to come out byte-identical, at every worker width,
// in both driver modes. These tests pin that equivalence on small fixed
// programs; the full-benchmark version lives in the heavy A/B suite.

// searchArms enumerates the three search configurations whose Results
// must be indistinguishable: the lexicographic reference, the plain
// benefit-directed walk, and the multiresolution coarse-to-fine walk.
var searchArms = []struct {
	name      string
	lex, nomr bool
}{
	{"lex", true, false},
	{"plain", false, true},
	{"multires", false, false},
}

// orderTestSrc is reorderSrc's shape scaled up: several functions sharing
// repeated connected fragments, some with reordered consumers, some
// straddling calls, plus duplicated tails so both extraction methods and
// several rounds fire.
const orderTestSrc = `
_start:
	bl main
	swi 0
main:
	push {r4, r5, lr}
	mov r0, #1
	mov r1, #2
	mov r2, #3
	add r0, r0, r1
	eor r1, r0, #7
	add r2, r2, r0
	bl alpha
	bl beta
	add r0, r0, r2
	pop {r4, r5, pc}
alpha:
	push {r4, lr}
	add r0, r0, r1
	add r2, r2, r0
	eor r1, r0, #7
	mov r4, #9
	orr r3, r4, r0
	and r12, r3, r1
	sub r3, r3, #2
	pop {r4, pc}
beta:
	push {r4, lr}
	add r0, r0, r1
	eor r1, r0, #7
	add r2, r2, r0
	mov r4, #9
	orr r3, r4, r0
	and r12, r3, r1
	sub r3, r3, #2
	b bt
bt:
	add r0, r0, r1
	eor r1, r0, #7
	add r2, r2, r0
	pop {r4, pc}
gamma:
	push {r4, lr}
	mov r4, #9
	orr r3, r4, r0
	and r12, r3, r1
	sub r3, r3, #2
	add r0, r0, r1
	eor r1, r0, #7
	add r2, r2, r0
	pop {r4, pc}
`

// fingerprint renders everything Result-identity covers: the optimized
// program text, the extraction log, and the per-round visit counts.
func fingerprint(res *Result) string {
	var b strings.Builder
	b.WriteString(res.Program.String())
	fmt.Fprintf(&b, "rounds=%d saved=%d\n", res.Rounds, res.Saved())
	for _, e := range res.Extractions {
		fmt.Fprintf(&b, "%s %s k=%d m=%d ben=%d\n", e.Name, e.Method, e.Size, e.Occs, e.Benefit)
	}
	return b.String()
}

func visitTrace(res *Result) []int {
	var v []int
	for _, rs := range res.RoundStats {
		v = append(v, rs.Visits)
	}
	return v
}

func TestOrderInvariantResult(t *testing.T) {
	srcs := map[string]string{"reorder": reorderSrc, "mixed": orderTestSrc}
	for sname, src := range srcs {
		for _, embedding := range []bool{true, false} {
			miner := &GraphMiner{Embedding: embedding}
			// Reference arm: lexicographic walk, serial, scratch rebuilds.
			ref := Optimize(loadSrc(t, src), miner,
				Options{Lexicographic: true, NoIncremental: true, MaxPatterns: 10_000_000})
			want := fingerprint(ref)
			armVisits := make([][]int, len(searchArms))
			for ai, arm := range searchArms {
				for _, workers := range []int{1, 8} {
					for _, noInc := range []bool{true, false} {
						name := fmt.Sprintf("%s/%s/%s/w=%d/noinc=%v", sname, miner.Name(), arm.name, workers, noInc)
						res := Optimize(loadSrc(t, src), miner, Options{
							Lexicographic: arm.lex, NoMultires: arm.nomr,
							Workers: workers, NoIncremental: noInc,
							MaxPatterns: 10_000_000,
						})
						if got := fingerprint(res); got != want {
							t.Fatalf("%s: Result differs from lexicographic reference\ngot:\n%s\nwant:\n%s", name, got, want)
						}
						// Visits must be identical across worker widths and
						// driver modes within one search arm (they differ
						// BETWEEN arms — that difference is the point).
						v := visitTrace(res)
						if armVisits[ai] == nil {
							armVisits[ai] = v
						} else if fmt.Sprint(v) != fmt.Sprint(armVisits[ai]) {
							t.Fatalf("%s: visit trace %v, want %v (must not depend on workers/incremental)", name, v, armVisits[ai])
						}
					}
				}
			}
		}
	}
}

// TestOrderInvariantCandidateList pins the stronger per-round property
// behind Result identity: FindCandidates itself returns the identical
// candidate list (keys and benefits) under all three search arms. The
// multires arm here also covers FindCandidates' self-initialisation of
// the multiresolution state on direct calls (no driver involved).
func TestOrderInvariantCandidateList(t *testing.T) {
	for sname, src := range map[string]string{"reorder": reorderSrc, "mixed": orderTestSrc} {
		for _, embedding := range []bool{true, false} {
			miner := &GraphMiner{Embedding: embedding}
			var want []string
			for _, arm := range searchArms {
				for _, workers := range []int{1, 8} {
					prog := loadSrc(t, src)
					view, graphs := buildForMining(t, prog)
					opts := Options{Lexicographic: arm.lex, NoMultires: arm.nomr, Workers: workers, MaxPatterns: 10_000_000}
					cands := miner.FindCandidates(view, graphs, opts)
					var got []string
					for _, c := range cands {
						got = append(got, fmt.Sprintf("%s ben=%d", candKey(c), c.Benefit))
					}
					if want == nil {
						want = got
						continue
					}
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("%s/%s/%s/w=%d: candidate list differs\ngot:  %v\nwant: %v",
							sname, miner.Name(), arm.name, workers, got, want)
					}
				}
			}
		}
	}
}
