package pa

import (
	"testing"

	"graphpa/internal/arm"
	"graphpa/internal/cfg"
	"graphpa/internal/dfg"
)

// TestCallSummaries covers the bug class found on rijndael: procedures
// created by earlier PA rounds have no calling convention — they read and
// write arbitrary registers — so later rounds must model calls with real
// footprints or they will move a register definition across a call that
// consumes it.
func TestCallSummaries(t *testing.T) {
	prog := loadSrc(t, `
_start:
	bl main
	swi 0
main:
	push {r4, lr}
	mov r5, #1
	bl weird
	mov r0, r6
	mov r5, #2
	bl weird
	add r0, r0, r6
	pop {r4, pc}
weird:
	add r6, r5, #10
	bx lr
`)
	view := cfg.Build(prog)
	sums := CallSummaries(view)

	w, ok := sums["weird"]
	if !ok {
		t.Fatal("no summary for weird")
	}
	if !w.Reads.Has(arm.R5) {
		t.Error("summary must record that weird reads r5")
	}
	if !w.Writes.Has(arm.R6) {
		t.Error("summary must record that weird writes r6")
	}
	if !w.Writes.Has(arm.LR) {
		t.Error("calls always write lr")
	}

	// main transitively includes weird's effects.
	m := sums["main"]
	if !m.Reads.Has(arm.R5) || !m.Writes.Has(arm.R6) {
		t.Error("main's summary must include its callee's footprint")
	}

	// The dependence graph built WITH summaries must order the r5
	// definitions against the calls; without summaries it must not (the
	// generic ABI model knows nothing about r5).
	var mainBlock *cfg.Block
	for _, fn := range view.Funcs {
		if fn.Name == "main" {
			mainBlock = fn.Blocks[0]
		}
	}
	idx := func(text string) int {
		for i := range mainBlock.Instrs {
			if mainBlock.Instrs[i].String() == text {
				return i
			}
		}
		t.Fatalf("instruction %q not found", text)
		return -1
	}
	movIdx := idx("mov r5, #1")
	blIdx := movIdx + 1 // bl weird follows

	with := dfg.Build(mainBlock, sums)
	found := false
	for _, e := range with.Edges {
		if e.From == movIdx && e.To == blIdx && e.Reg == arm.R5 {
			found = true
		}
	}
	if !found {
		t.Error("with summaries: mov r5 must feed the call")
	}
	without := dfg.Build(mainBlock, nil)
	for _, e := range without.Edges {
		if e.From == movIdx && e.To == blIdx && e.Reg == arm.R5 {
			t.Error("generic ABI model should not know about r5 (this guards the test's premise)")
		}
	}
}

// TestSummariesRecursionFixpoint: summaries converge on recursive call
// graphs.
func TestSummariesRecursionFixpoint(t *testing.T) {
	prog := loadSrc(t, `
_start:
	bl a
	swi 0
a:
	push {r4, lr}
	add r7, r7, #1
	cmp r7, #10
	bllt b
	pop {r4, pc}
b:
	push {r4, lr}
	eor r8, r8, r7
	bl a
	pop {r4, pc}
`)
	view := cfg.Build(prog)
	sums := CallSummaries(view)
	a, b := sums["a"], sums["b"]
	if !a.Writes.Has(arm.R8) || !b.Writes.Has(arm.R7) {
		t.Error("mutual recursion must propagate effects both ways")
	}
	if !a.Reads.Has(arm.R7) || !b.Reads.Has(arm.R8) {
		t.Error("reads must propagate through the cycle")
	}
}

// TestOutlinedProcFootprintRespected is the end-to-end shape: a program
// whose helper reads a callee-saved register; Edgar must not break it no
// matter what it extracts.
func TestOutlinedProcFootprintRespected(t *testing.T) {
	src := `
_start:
	bl main
	swi 0
main:
	push {r4, lr}
	mov r5, #3
	mov r6, #0
	mov r5, #1
	bl weird
	mov r4, r6
	eor r4, r4, #7
	add r4, r4, r4
	mov r5, #2
	bl weird
	mov r0, r6
	eor r0, r0, #7
	add r0, r0, r0
	add r0, r0, r4
	pop {r4, pc}
weird:
	add r6, r5, #10
	bx lr
`
	prog := loadSrc(t, src)
	wantCode, wantOut := runProg(t, prog)
	res := Optimize(prog, &GraphMiner{Embedding: true}, Options{})
	gotCode, gotOut := runProg(t, res.Program)
	if gotCode != wantCode || gotOut != wantOut {
		t.Fatalf("behaviour changed: %d -> %d\n%s", wantCode, gotCode, res.Program.String())
	}
}
