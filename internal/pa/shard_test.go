package pa

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"graphpa/internal/mining"
)

// memDialer is an in-process ShardDialer: each "shard" is a
// mining.SpecSession over its own decode of the walk request, so the
// payloads cross the real wire codec even though no sockets are
// involved. Fault injection mirrors what the HTTP pool sees — a dialer
// that cannot reach any shard, or a shard that dies mid-walk.
type memDialer struct {
	n         int
	failDial  bool
	killShard int   // shard index to kill mid-walk (-1: none)
	killAfter int64 // ...after this many successful Speculate calls on it

	seeds     atomic.Int64
	lastWalk  atomic.Pointer[memWalk]
	walkOpens atomic.Int64
}

func (d *memDialer) NumShards() int { return d.n }

func (d *memDialer) NewWalk(ctx context.Context, req []byte) (ShardWalk, error) {
	if d.failDial {
		return nil, errors.New("memDialer: no shards reachable")
	}
	w := &memWalk{d: d}
	for i := 0; i < d.n; i++ {
		sc, graphs, err := mining.DecodeShardWalk(req)
		if err != nil {
			return nil, err
		}
		w.shards = append(w.shards, &memShard{sess: mining.NewSpecSession(graphs, sc)})
	}
	d.walkOpens.Add(1)
	d.lastWalk.Store(w)
	return w, nil
}

type memShard struct {
	sess  *mining.SpecSession
	dead  atomic.Bool
	calls atomic.Int64
}

type memWalk struct {
	d          *memDialer
	shards     []*memShard
	broadcasts atomic.Int64
	stale      atomic.Int64
	closed     atomic.Bool
}

func (w *memWalk) Speculate(ctx context.Context, seed int) ([]byte, error) {
	w.d.seeds.Add(1)
	si := seed % len(w.shards)
	sh := w.shards[si]
	if sh.dead.Load() {
		return nil, errors.New("memWalk: shard dead")
	}
	data, err := sh.sess.MineSeed(ctx, seed)
	if err == nil && si == w.d.killShard && sh.calls.Add(1) >= w.d.killAfter {
		sh.dead.Store(true)
	}
	return data, err
}

func (w *memWalk) Broadcast(floor int) {
	w.broadcasts.Add(1)
	for _, sh := range w.shards {
		if !sh.dead.Load() && !sh.sess.SetFloor(floor) {
			w.stale.Add(1)
		}
	}
}

func (w *memWalk) Close() ShardWalkStats {
	w.closed.Store(true)
	var st ShardWalkStats
	st.Broadcasts = int(w.broadcasts.Load())
	for _, sh := range w.shards {
		st.SpecVisits += sh.sess.Visits()
	}
	return st
}

// shardStats sums the shard counters across a Result's rounds.
func shardStats(res *Result) (seeds, subtrees, fallbacks int) {
	for _, rs := range res.RoundStats {
		seeds += rs.ShardSeeds
		subtrees += rs.ShardSubtrees
		fallbacks += rs.ShardFallbacks
	}
	return
}

// TestShardedResultIdentical: a run whose speculation is distributed
// across 3 in-process shards must produce a byte-identical Result to
// the local default run, at every worker width and in both driver
// modes, with a visit trace equal to the plain (NoMultires) walk's —
// the arm sharding forces.
func TestShardedResultIdentical(t *testing.T) {
	srcs := map[string]string{"reorder": reorderSrc, "mixed": orderTestSrc}
	for sname, src := range srcs {
		for _, embedding := range []bool{true, false} {
			miner := &GraphMiner{Embedding: embedding}
			ref := Optimize(loadSrc(t, src), miner, Options{MaxPatterns: 10_000_000})
			want := fingerprint(ref)
			plain := Optimize(loadSrc(t, src), miner, Options{NoMultires: true, MaxPatterns: 10_000_000})
			wantVisits := fmt.Sprint(visitTrace(plain))
			for _, workers := range []int{1, 8} {
				for _, noInc := range []bool{true, false} {
					name := fmt.Sprintf("%s/%s/w=%d/noinc=%v", sname, miner.Name(), workers, noInc)
					d := &memDialer{n: 3, killShard: -1}
					res := Optimize(loadSrc(t, src), miner, Options{
						Shards: d, Workers: workers, NoIncremental: noInc,
						MaxPatterns: 10_000_000,
					})
					if got := fingerprint(res); got != want {
						t.Fatalf("%s: sharded Result differs from local run\ngot:\n%s\nwant:\n%s", name, got, want)
					}
					if got := fmt.Sprint(visitTrace(res)); got != wantVisits {
						t.Fatalf("%s: sharded visit trace %v, want the plain walk's %v", name, got, wantVisits)
					}
					seeds, subtrees, fallbacks := shardStats(res)
					if seeds == 0 {
						t.Fatalf("%s: no seeds were requested from the shards", name)
					}
					if subtrees+fallbacks != seeds || fallbacks != 0 {
						t.Fatalf("%s: shard accounting seeds=%d subtrees=%d fallbacks=%d; want every seed streamed",
							name, seeds, subtrees, fallbacks)
					}
					if w := d.lastWalk.Load(); w == nil || !w.closed.Load() {
						t.Fatalf("%s: walk was not closed", name)
					}
				}
			}
		}
	}
}

// TestShardedFaultDegradesGracefully: a shard dying mid-walk must cost
// replay fallbacks only — the Result stays byte-identical.
func TestShardedFaultDegradesGracefully(t *testing.T) {
	for _, embedding := range []bool{true, false} {
		miner := &GraphMiner{Embedding: embedding}
		ref := Optimize(loadSrc(t, orderTestSrc), miner, Options{MaxPatterns: 10_000_000})
		want := fingerprint(ref)
		d := &memDialer{n: 3, killShard: 1, killAfter: 1}
		res := Optimize(loadSrc(t, orderTestSrc), miner, Options{Shards: d, MaxPatterns: 10_000_000})
		if got := fingerprint(res); got != want {
			t.Fatalf("%s: Result changed after killing a shard mid-walk\ngot:\n%s\nwant:\n%s", miner.Name(), got, want)
		}
		seeds, subtrees, fallbacks := shardStats(res)
		if fallbacks == 0 {
			t.Fatalf("%s: dead shard produced no fallbacks (seeds=%d subtrees=%d)", miner.Name(), seeds, subtrees)
		}
		if subtrees+fallbacks != seeds {
			t.Fatalf("%s: shard accounting seeds=%d subtrees=%d fallbacks=%d does not add up",
				miner.Name(), seeds, subtrees, fallbacks)
		}
	}
}

// TestShardedDialFailure: when no shard is reachable the walk must run
// fully local with a byte-identical Result and zeroed shard counters.
func TestShardedDialFailure(t *testing.T) {
	miner := &GraphMiner{Embedding: true}
	ref := Optimize(loadSrc(t, orderTestSrc), miner, Options{MaxPatterns: 10_000_000})
	d := &memDialer{n: 2, killShard: -1, failDial: true}
	res := Optimize(loadSrc(t, orderTestSrc), miner, Options{Shards: d, MaxPatterns: 10_000_000})
	if got, want := fingerprint(res), fingerprint(ref); got != want {
		t.Fatalf("Result differs when the dialer fails\ngot:\n%s\nwant:\n%s", got, want)
	}
	if seeds, subtrees, fallbacks := shardStats(res); seeds != 0 || subtrees != 0 || fallbacks != 0 {
		t.Fatalf("failed dial still reported shard work: seeds=%d subtrees=%d fallbacks=%d", seeds, subtrees, fallbacks)
	}
}

// TestShardedGossipFloor: incumbent pushes must reach the sessions
// monotonically — a direct check of the Broadcast/SetFloor seam the
// timing-dependent gossip pump uses.
func TestShardedGossipFloor(t *testing.T) {
	d := &memDialer{n: 2, killShard: -1}
	miner := &GraphMiner{Embedding: true}
	prog := loadSrc(t, orderTestSrc)
	view, graphs := buildForMining(t, prog)
	cands := miner.FindCandidates(view, graphs, Options{Shards: d, MaxPatterns: 10_000_000})
	if len(cands) == 0 {
		t.Fatal("sharded FindCandidates mined nothing")
	}
	w := d.lastWalk.Load()
	if w == nil {
		t.Fatal("no walk was opened")
	}
	w.Broadcast(1 << 30)
	if w.stale.Load() != 0 {
		t.Fatalf("first huge floor push reported %d stale shard updates", w.stale.Load())
	}
	w.Broadcast(1) // strictly below: every shard must report it stale
	if got := w.stale.Load(); got != int64(d.n) {
		t.Fatalf("stale floor push applied on %d/%d shards", int64(d.n)-got, d.n)
	}
}
