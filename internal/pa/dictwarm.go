package pa

import (
	"fmt"
	"strings"

	"graphpa/internal/arm"
	"graphpa/internal/dfg"
	"graphpa/internal/dict"
)

// Dictionary warm-start: the cross-program sibling of the round-to-round
// carry (warmstart.go). A dict.Fragment stores occurrences as content
// snapshots of their host blocks with no program coordinates at all, so
// relocation is purely by content — every current block whose
// instructions are byte-identical to an occurrence's snapshot hosts the
// pattern at the same DFS indices. Relocated occurrences then pass
// through the same refilterOccs gauntlet as carried candidates, and the
// benefit is recomputed from what actually relocated; the fragment's
// stored Benefit is never trusted.
//
// Unlike seeds and carry, validated dictionary candidates are NOT merged
// into the returned candidate list: they only raise the incumbent floor
// (see FindCandidates). A cold run's merge list is built from the mined
// ties plus order-invariant warm sources that the cold run also has;
// adding dictionary candidates would hand the driver runner-ups a cold
// run lacks and break the warm/cold byte-identity guarantee. Raising the
// floor is safe by the branch-and-bound argument (the walk prunes
// strictly below the floor, so ties at the final maximum survive), but
// only when the floor is actually reachable — FindCandidates verifies
// that after the walk and falls back to a cold re-mine otherwise.

// revalidateDict relocates dictionary fragments into the current view by
// block content and re-runs the occurrence filter, returning the
// candidates that validate. Only call-method candidates are returned:
// the graph walk can only mine call extractions (see newSearch), so a
// cross-jump floor could never be confirmed by mined ties.
func (m *GraphMiner) revalidateDict(graphs []*dfg.Graph, frags []dict.Fragment, safe callSafeCache, opts Options) []*Candidate {
	if len(frags) == 0 {
		return nil
	}
	maxK := opts.maxNodes()
	byContent := make(map[uint64][]*dfg.Graph)
	for _, g := range graphs {
		h := hashInstrs(g.Block.Instrs)
		byContent[h] = append(byContent[h], g)
	}
	var out []*Candidate
	for i := range frags {
		f := &frags[i]
		if f.Size < 2 || f.Size > maxK {
			continue
		}
		var reloc []Occurrence
		seen := map[string]bool{}
		for oi := range f.Occs {
			o := &f.Occs[oi]
			if len(o.DFS) != f.Size {
				continue
			}
			valid := true
			for _, d := range o.DFS {
				if d < 0 || d >= len(o.Instrs) {
					valid = false
					break
				}
			}
			if !valid {
				continue
			}
			// Two source occurrences from identical blocks relocate to the
			// same targets; dedupe by (block, DFS indices).
			for _, g := range byContent[hashInstrs(o.Instrs)] {
				if !instrsEqual(g.Block.Instrs, o.Instrs) {
					continue
				}
				key := occRelocKey(g.Block.ID, o.DFS)
				if seen[key] {
					continue
				}
				seen[key] = true
				dfsN := append([]int(nil), o.DFS...)
				reloc = append(reloc, Occurrence{Block: g.Block, Graph: g, Nodes: sortedNodes(dfsN), DFS: dfsN})
			}
		}
		if len(reloc) < 2 {
			continue
		}
		if c := m.refilterOccs(f.Size, reloc, safe); c != nil && c.Method == MethodCall {
			out = append(out, c)
		}
	}
	return out
}

func occRelocKey(blockID int, dfs []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:", blockID)
	for i, d := range dfs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", d)
	}
	return b.String()
}

// dictFragments converts a round's returned candidates into publishable
// fragments, appending to dst. Must run pre-Apply, while the occurrence
// blocks still hold the content the DFS indices describe. Cross-jump
// candidates are skipped — they come from sequence seeds, which every
// run rediscovers from scratch anyway, and revalidateDict could never
// use them as a floor.
func dictFragments(dst []dict.Fragment, cands []*Candidate) []dict.Fragment {
	for _, c := range cands {
		if c == nil || c.Method != MethodCall || c.Benefit <= 0 || len(c.Occs) < 2 {
			continue
		}
		f := dict.Fragment{Size: c.Size, Benefit: c.Benefit, Occs: make([]dict.Occ, 0, len(c.Occs))}
		for i := range c.Occs {
			o := &c.Occs[i]
			f.Occs = append(f.Occs, dict.Occ{
				Instrs: append([]arm.Instr(nil), o.Block.Instrs...),
				DFS:    append([]int(nil), o.DFS...),
			})
		}
		dst = append(dst, f)
	}
	return dst
}
