package pa

import (
	"sort"

	"graphpa/internal/arm"
	"graphpa/internal/cfg"
)

// Apply rewrites the program view according to the candidate, using name
// for the new procedure (call extraction) or merge label (cross jump).
// The view's Funcs are updated in place; callers must re-split rewritten
// functions and rebuild dependence graphs (cfg.Resplit / dfg.Build)
// before further analysis. The returned set holds every function whose
// blocks were touched — the occurrence owners plus, for call extraction,
// the newly created procedure — which is exactly the dirty set the
// incremental driver needs.
func Apply(view *cfg.Program, cand *Candidate, name string) map[*cfg.Func]bool {
	dirty := map[*cfg.Func]bool{}
	for _, occ := range cand.Occs {
		dirty[occ.Block.Fn] = true
	}
	switch cand.Method {
	case MethodCall:
		dirty[applyCall(view, cand, name)] = true
	case MethodCrossJump:
		applyCrossJump(view, cand, name)
	}
	return dirty
}

func applyCall(view *cfg.Program, cand *Candidate, name string) *cfg.Func {
	body := FragmentBody(cand.Occs[0].Graph, cand.Occs[0].Nodes)
	ret := arm.NewInstr(arm.BX)
	ret.Rm = arm.LR
	body = append(body, ret)

	nf := &cfg.Func{Name: name, LRSaved: false}
	nb := &cfg.Block{Fn: nf, Instrs: body}
	nf.Blocks = []*cfg.Block{nb}
	view.Funcs = append(view.Funcs, nf)
	view.Blocks = append(view.Blocks, nb)

	// Rewrite every occurrence block; occurrences sharing a block are
	// contracted simultaneously.
	byBlock := map[*cfg.Block][]Occurrence{}
	var order []*cfg.Block
	for _, occ := range cand.Occs {
		if _, ok := byBlock[occ.Block]; !ok {
			order = append(order, occ.Block)
		}
		byBlock[occ.Block] = append(byBlock[occ.Block], occ)
	}
	for _, b := range order {
		occs := byBlock[b]
		frags := make([][]int, len(occs))
		calls := make([]arm.Instr, len(occs))
		for i, occ := range occs {
			frags[i] = occ.Nodes
			bl := arm.NewInstr(arm.BL)
			bl.Target = name
			calls[i] = bl
		}
		newInstrs, ok := ScheduleContracted(occs[0].Graph, frags, calls)
		if !ok {
			// Selection verified schedulability; reaching this is a bug.
			panic("pa: selected occurrence set is not schedulable")
		}
		b.Instrs = newInstrs
	}
	return nf
}

func applyCrossJump(view *cfg.Program, cand *Candidate, name string) {
	occs := append([]Occurrence(nil), cand.Occs...)
	sort.Slice(occs, func(i, j int) bool { return occs[i].Block.ID < occs[j].Block.ID })
	keeper := occs[0]

	// Keeper: schedule the fragment as a contiguous suffix and plant the
	// merge label in front of it.
	pre := ScheduleSuffix(keeper.Graph, keeper.Nodes)
	tail := FragmentBody(keeper.Graph, keeper.Nodes)
	fn := keeper.Block.Fn
	if len(pre) == 0 {
		keeper.Block.Labels = append(keeper.Block.Labels, name)
		keeper.Block.Instrs = tail
	} else {
		keeper.Block.Instrs = pre
		nb := &cfg.Block{Fn: fn, Labels: []string{name}, Instrs: tail}
		// Insert after the keeper block.
		for i, b := range fn.Blocks {
			if b == keeper.Block {
				fn.Blocks = append(fn.Blocks[:i+1], append([]*cfg.Block{nb}, fn.Blocks[i+1:]...)...)
				break
			}
		}
		view.Blocks = append(view.Blocks, nb)
	}

	// Others: drop the fragment and branch to the merged tail.
	for _, occ := range occs[1:] {
		pre := ScheduleSuffix(occ.Graph, occ.Nodes)
		br := arm.NewInstr(arm.B)
		br.Target = name
		occ.Block.Instrs = append(pre, br)
	}
}
