package pa

import (
	"context"
	"hash/maphash"
	"sync"

	"graphpa/internal/arm"
	"graphpa/internal/cfg"
	"graphpa/internal/dfg"
	"graphpa/internal/mining"
	"graphpa/internal/par"
)

// This file holds the cross-round state of the incremental mine/extract
// loop. Each extraction round rewrites a handful of blocks; everything
// the analyses derived for the untouched rest — call summaries,
// dependence graphs, node labels, mining graphs, and (via checkpoint.go)
// whole lattice subtrees — is carried forward instead of recomputed. All
// reuse is gated by proofs of equivalence (content identity, summary
// equality, footprint checks); whenever equivalence cannot be shown the
// affected piece falls back to a full recomputation, so the incremental
// loop's output is byte-identical to the from-scratch loop's.

// incState is the driver's cross-round cache bundle.
type incState struct {
	raw    map[string]arm.Effects // undecorated call-summary fixpoint
	graphs *graphCache
	m      incMining
	primed bool // at least one round has populated the caches
}

// incMining is the slice of incState handed to the miner through
// Options.inc: the lattice checkpoint store, the mining-graph cache, the
// cross-round minimality memo, and the current round's stat sink.
type incMining struct {
	memo *latticeMemo
	mg   map[*dfg.Graph]mgEntry
	// minimal memoises Code.IsMinimal by Code.Key(). Minimality is a
	// pure function of the code, so entries are valid forever and need no
	// invalidation.
	minimal *minimalCache
	stat    *RoundStat
}

// mgEntry is one cached mining graph plus the call-safety flag baked
// into it: MiningGraph prunes edges of non-call-safe functions, and
// CallSafe is a whole-function property that can drift while a block
// (and hence its dependence graph object) stays untouched.
type mgEntry struct {
	mg       *mining.Graph
	callable bool
}

func newIncState() *incState {
	st := &incState{graphs: newGraphCache()}
	st.m.memo = newLatticeMemo()
	st.m.mg = map[*dfg.Graph]mgEntry{}
	st.m.minimal = newMinimalCache()
	return st
}

// minimalCacheCap bounds the minimality memo's entry count. Sized for
// several rounds of a full benchmark's lattice (the paper programs
// re-enumerate ~20k codes per round when the lattice survives); beyond
// the cap, lookups continue but new results are recomputed.
const minimalCacheCap = 1 << 17

// minimalCache memoises Code.IsMinimal across rounds with GC-transparent
// storage. A conventional map[string]bool here is a real cost: a round
// whose extraction lowered the incumbent bounds can enumerate tens of
// thousands of fresh codes, and retaining that many string-keyed entries
// adds their buckets to every subsequent GC mark phase — more than the
// cache ever gives back on such rounds. Instead the key bytes live in one
// append-only byte arena and the index maps a 128-bit key hash to a
// packed (offset, length, result) word; neither structure contains
// pointers, so the whole cache is invisible to the garbage collector.
// Hits verify the full key bytes against the arena, so a 128-bit hash
// collision degrades to a miss, never a wrong answer.
type minimalCache struct {
	mu    sync.RWMutex
	seeds [2]maphash.Seed
	idx   map[[2]uint64]uint64 // key hash -> offset<<25 | len<<1 | result
	arena []byte               // concatenated key bytes
}

func newMinimalCache() *minimalCache {
	return &minimalCache{
		seeds: [2]maphash.Seed{maphash.MakeSeed(), maphash.MakeSeed()},
		idx:   map[[2]uint64]uint64{},
	}
}

func (mc *minimalCache) hash(key string) [2]uint64 {
	return [2]uint64{maphash.String(mc.seeds[0], key), maphash.String(mc.seeds[1], key)}
}

func (mc *minimalCache) lookup(key string) (result, ok bool) {
	h := mc.hash(key)
	mc.mu.RLock()
	v, hit := mc.idx[h]
	if hit {
		off, n := v>>25, (v>>1)&0xffffff
		// Comparing a converted sub-slice against a string does not
		// allocate; this check makes hits exact.
		if string(mc.arena[off:off+n]) == key {
			result, ok = v&1 != 0, true
		}
	}
	mc.mu.RUnlock()
	return result, ok
}

func (mc *minimalCache) store(key string, result bool) {
	if len(key) >= 1<<24 {
		return // cannot pack the length; never happens for real codes
	}
	h := mc.hash(key)
	mc.mu.Lock()
	if _, dup := mc.idx[h]; !dup && len(mc.idx) < minimalCacheCap {
		v := uint64(len(mc.arena))<<25 | uint64(len(key))<<1
		if result {
			v |= 1
		}
		mc.arena = append(mc.arena, key...)
		mc.idx[h] = v
	}
	mc.mu.Unlock()
}

// updateSummaries maintains the interprocedural summary fixpoint across
// rounds. Only the reverse-call-graph closure of the rewritten functions
// is re-solved; every other function's raw value is pinned — sound
// because the pinned set is closed under calls, so its equations are
// untouched (see rawSummaries).
func (st *incState) updateSummaries(view *cfg.Program, dirty map[*cfg.Func]bool, stat *RoundStat) map[string]arm.Effects {
	if st.raw == nil {
		st.raw = rawSummaries(view, nil, nil)
		stat.SummariesRecomputed = len(view.Funcs)
		stat.SummariesChanged = len(view.Funcs)
		return decorateSummaries(st.raw)
	}

	callers := map[string][]string{}
	for _, fn := range view.Funcs {
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == arm.BL && b.Instrs[i].Target != "" {
					callers[b.Instrs[i].Target] = append(callers[b.Instrs[i].Target], fn.Name)
				}
			}
		}
	}
	recompute := map[string]bool{}
	var queue []string
	add := func(name string) {
		if !recompute[name] {
			recompute[name] = true
			queue = append(queue, name)
		}
	}
	for fn := range dirty {
		add(fn.Name)
	}
	for _, fn := range view.Funcs {
		if _, ok := st.raw[fn.Name]; !ok {
			add(fn.Name)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range callers[n] {
			add(c)
		}
	}

	raw := rawSummaries(view, st.raw, recompute)
	changed := 0
	for name := range recompute {
		if old, ok := st.raw[name]; !ok || old != raw[name] {
			changed++
		}
	}
	stat.SummariesRecomputed = len(recompute)
	stat.SummariesChanged = changed
	st.raw = raw
	return decorateSummaries(raw)
}

// buildGraphs produces the per-block dependence graphs for this round,
// reusing cached graphs wherever block content and the consumed call
// summaries are unchanged and building only the rest (in parallel when
// configured, preserving block order exactly like the full build).
func (st *incState) buildGraphs(ctx context.Context, view *cfg.Program, sums map[string]arm.Effects, dirty map[*cfg.Func]bool, opts Options, stat *RoundStat) ([]*dfg.Graph, error) {
	c := st.graphs
	c.gen++
	graphs := make([]*dfg.Graph, len(view.Blocks))
	var missIdx []int
	for i, b := range view.Blocks {
		g, kind, mismatch := c.lookup(b, sums)
		switch kind {
		case hitSame:
			stat.BlocksReused++
		case hitRebound:
			stat.BlocksRebound++
		default:
			stat.BlocksRebuilt++
			if st.primed && !dirty[b.Fn] && !mismatch {
				// A rebuild with no dirty function and no summary drift
				// means the invalidation rules over-fired; the
				// differential tests assert this stays zero.
				stat.RebuiltClean++
			}
			missIdx = append(missIdx, i)
		}
		graphs[i] = g
	}
	if w := opts.workers(); w > 1 && len(missIdx) > 1 {
		if err := par.Do(ctx, w, len(missIdx), func(_ context.Context, j int) error {
			i := missIdx[j]
			graphs[i] = dfg.Build(view.Blocks[i], sums)
			return nil
		}); err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			panic(err) // workers return no errors; panics re-raise in par.Do
		}
	} else {
		for _, i := range missIdx {
			graphs[i] = dfg.Build(view.Blocks[i], sums)
		}
	}
	for _, i := range missIdx {
		c.insert(view.Blocks[i], graphs[i], sums)
	}
	c.sweepBlocks(view.Blocks)
	c.evict()
	st.primed = true
	return graphs, nil
}

// beginMining prepares the miner-facing caches for a round: checkpoint
// records and mining graphs whose dependence graphs are no longer live
// can never validate again (a dead graph object never reappears in a
// later round's graph set) and are dropped.
func (st *incState) beginMining(graphs []*dfg.Graph, stat *RoundStat) {
	live := make(map[*dfg.Graph]bool, len(graphs))
	for _, g := range graphs {
		live[g] = true
	}
	st.m.memo.sweep(live)
	for g := range st.m.mg {
		if !live[g] {
			delete(st.m.mg, g)
		}
	}
	st.m.stat = stat
}

// Graph-cache hit kinds.
const (
	hitSame    = iota // same block object, same content, same summaries
	hitRebound        // identical content under a fresh block object
	missBuild         // no reusable template
)

// targetEffect records one call summary a graph consumed when it was
// built. A cached graph is only valid while every recorded summary still
// has the recorded value (including "target unknown" staying unknown).
type targetEffect struct {
	name string
	eff  arm.Effects
	ok   bool
}

// graphTemplate is a dependence graph keyed by block content: the instr
// slice it was built from, the summaries it consumed, and the graph.
// Identical content under a different block object reuses the template
// through a cheap Rebind instead of a rebuild.
type graphTemplate struct {
	instrs  []arm.Instr
	graph   *dfg.Graph
	targets []targetEffect
	gen     int
}

// boundGraph binds a template to one concrete block.
type boundGraph struct {
	tmpl  *graphTemplate
	graph *dfg.Graph // tmpl.graph or its Rebind onto the block
}

// graphCache caches dependence graphs across rounds. byBlock is the fast
// path: a block object whose instr slice is identical (rewrites always
// install fresh slices, so slice identity proves content identity) reuses
// its previous graph object outright — which in turn keeps the lattice
// checkpoints anchored to it alive. byHash is the content path: a fresh
// block object (a dirty function's re-split) with byte-identical content
// rebinds an existing template, paying a struct copy instead of a build.
type graphCache struct {
	byBlock map[*cfg.Block]*boundGraph
	byHash  map[uint64][]*graphTemplate
	gen     int
}

func newGraphCache() *graphCache {
	return &graphCache{
		byBlock: map[*cfg.Block]*boundGraph{},
		byHash:  map[uint64][]*graphTemplate{},
	}
}

func (c *graphCache) lookup(b *cfg.Block, sums map[string]arm.Effects) (*dfg.Graph, int, bool) {
	mismatch := false
	if bg := c.byBlock[b]; bg != nil && sameSlice(b.Instrs, bg.tmpl.instrs) {
		if targetsValid(bg.tmpl, sums) {
			bg.tmpl.gen = c.gen
			return bg.graph, hitSame, false
		}
		mismatch = true
	}
	h := hashInstrs(b.Instrs)
	for _, tmpl := range c.byHash[h] {
		if !instrsEqual(tmpl.instrs, b.Instrs) {
			continue
		}
		if !targetsValid(tmpl, sums) {
			mismatch = true
			continue
		}
		g := tmpl.graph.Rebind(b)
		c.byBlock[b] = &boundGraph{tmpl: tmpl, graph: g}
		tmpl.gen = c.gen
		return g, hitRebound, mismatch
	}
	return nil, missBuild, mismatch
}

func (c *graphCache) insert(b *cfg.Block, g *dfg.Graph, sums map[string]arm.Effects) {
	// Labels are memoised eagerly: a cached graph may later be read by
	// concurrent speculation workers, and lazy memoisation would race.
	g.MemoLabels()
	tmpl := &graphTemplate{instrs: b.Instrs, graph: g, targets: targetsOf(b, sums), gen: c.gen}
	h := hashInstrs(b.Instrs)
	c.byHash[h] = append(c.byHash[h], tmpl)
	c.byBlock[b] = &boundGraph{tmpl: tmpl, graph: g}
}

// sweepBlocks drops bindings of blocks no longer in the program view.
func (c *graphCache) sweepBlocks(blocks []*cfg.Block) {
	live := make(map[*cfg.Block]bool, len(blocks))
	for _, b := range blocks {
		live[b] = true
	}
	for b := range c.byBlock {
		if !live[b] {
			delete(c.byBlock, b)
		}
	}
}

// evict drops content templates that went unused for a full round. Every
// live block refreshes its template's gen each round, so this only sheds
// content that vanished from the program.
func (c *graphCache) evict() {
	for h, tmpls := range c.byHash {
		kept := tmpls[:0]
		for _, t := range tmpls {
			if t.gen >= c.gen-1 {
				kept = append(kept, t)
			}
		}
		if len(kept) == 0 {
			delete(c.byHash, h)
		} else {
			c.byHash[h] = kept
		}
	}
}

func targetsOf(b *cfg.Block, sums map[string]arm.Effects) []targetEffect {
	var out []targetEffect
	for i := range b.Instrs {
		if b.Instrs[i].Op != arm.BL {
			continue
		}
		eff, ok := sums[b.Instrs[i].Target]
		out = append(out, targetEffect{name: b.Instrs[i].Target, eff: eff, ok: ok})
	}
	return out
}

func targetsValid(tmpl *graphTemplate, sums map[string]arm.Effects) bool {
	for _, te := range tmpl.targets {
		cur, ok := sums[te.name]
		if ok != te.ok || (ok && cur != te.eff) {
			return false
		}
	}
	return true
}

// sameSlice reports whether two instruction slices are the same slice
// (identical backing array and length). Every rewrite installs a fresh
// slice, so identity proves the block content is untouched.
func sameSlice(a, b []arm.Instr) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

func instrsEqual(a, b []arm.Instr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hashInstrs is an FNV-1a content hash over every instruction field.
func hashInstrs(instrs []arm.Instr) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	mixs := func(s string) {
		for i := 0; i < len(s); i++ {
			mix(uint64(s[i]))
		}
		mix(0xff) // terminator: "ab","c" hashes differently from "a","bc"
	}
	mix(uint64(len(instrs)))
	for i := range instrs {
		in := &instrs[i]
		mix(uint64(in.Op))
		mix(uint64(in.Cond))
		if in.SetS {
			mix(1)
		} else {
			mix(0)
		}
		mix(uint64(uint32(in.Rd)))
		mix(uint64(uint32(in.Rn)))
		mix(uint64(uint32(in.Rm)))
		mix(uint64(uint32(in.Ra)))
		mix(uint64(in.Shift))
		mix(uint64(uint32(in.ShAmt)))
		mix(uint64(uint32(in.Imm)))
		if in.HasImm {
			mix(1)
		} else {
			mix(0)
		}
		mix(uint64(in.Reglist))
		mixs(in.Target)
	}
	return h
}
