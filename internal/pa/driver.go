package pa

import (
	"context"
	"fmt"
	"time"

	"graphpa/internal/arm"
	"graphpa/internal/cfg"
	"graphpa/internal/dfg"
	"graphpa/internal/dict"
	"graphpa/internal/loader"
	"graphpa/internal/par"
)

// Options tunes the optimizer.
type Options struct {
	// MinSupport is the frequency threshold (default 2).
	MinSupport int
	// MaxNodes caps mined fragment size (default 8; larger finds more
	// but mines longer).
	MaxNodes int
	// MaxSeqLen caps SFX sequence length (default 32).
	MaxSeqLen int
	// GreedyMIS uses the greedy independent-set heuristic instead of the
	// exact solver (ablation knob).
	GreedyMIS bool
	// MaxRounds bounds mine/extract iterations (0 = to fixpoint).
	MaxRounds int
	// MaxPatterns bounds frequent patterns visited per mining round
	// (default 100000). The frequent-fragment lattice of heavily
	// duplicated regions is exponential — the paper ate multi-hour runs;
	// we truncate the search deterministically instead. Sequence seeding
	// and benefit-bound pruning put the profitable candidates early in
	// the visit order, so the cap rarely costs savings. Raise it (or set
	// it very high) to approximate the paper's exhaustive search.
	MaxPatterns int
	// SingleExtract reverts to the paper's strict one-fragment-per-round
	// loop. By default the driver applies, per round, the best candidate
	// plus every runner-up touching disjoint blocks — the same greedy
	// order at a fraction of the mining restarts.
	SingleExtract bool
	// Batch is the number of runner-up candidates kept per round
	// (default 16; ignored with SingleExtract).
	Batch int
	// Workers is the parallel width of the optimizer's hot paths
	// (speculative lattice mining, sequence scanning, dependence-graph
	// construction): 0 derives the count from GOMAXPROCS, 1 forces the
	// serial pipeline, n > 1 uses n workers. Every setting produces
	// identical results — the parallel search replays deterministically —
	// so only wall clock changes.
	Workers int
	// NoIncremental disables all cross-round reuse (dirty-set CFG
	// resplitting, summary and dependence-graph caching, lattice
	// checkpointing) and reverts to the rebuild-everything loop. The
	// output is byte-identical either way — this is the kill switch and
	// the reference the differential tests compare against.
	NoIncremental bool
	// Warmstart, when non-nil, connects the run to a persistent fragment
	// dictionary (internal/dict): seed fragments are pulled once at the
	// start, revalidated by the graph miner against each round's own
	// dependence graphs, and used to raise the branch-and-bound incumbent
	// floor; every round's returned candidates are published back after
	// the run. The floor only tightens bounds — the Result is
	// byte-identical to a run without a dictionary (validated-or-discarded:
	// a floor the walk cannot confirm triggers a cold re-mine of the
	// round). Only RoundStat.Visits/DictHits/DictDiscarded change.
	Warmstart dict.Source
	// Lexicographic reverts the graph miners' lattice walk to pure
	// DFS-code sibling order with the legacy support-only subtree bound,
	// disabling the benefit-directed ordering and the MIS-aware child
	// pruning. The candidate output is byte-identical either way — this
	// is the kill switch and the reference arm the search-order
	// differential tests and A/B benchmarks compare against; it only
	// changes how many lattice nodes the walk visits (RoundStat.Visits).
	// Implies NoMultires: the reference arm must stay the plain walk.
	Lexicographic bool
	// NoMultires disables the multiresolution coarse-to-fine pass (the
	// one-shot exhaustive coarse mine, the search-order oracle and the
	// coarse capacity bounds — see internal/pa/multires.go) and mines
	// every round with the plain benefit-directed walk. The Result is
	// byte-identical either way — coarse results only reorder siblings
	// and tighten admissible bounds, and a multires walk the pattern
	// budget truncates is discarded in favour of the plain walk — so this
	// is the kill switch and the arm the multires differentials compare
	// against; only RoundStat.Visits/CoarseVisits/MultiresDiscarded
	// change.
	NoMultires bool
	// Shards, when non-nil, distributes the lattice walk's speculation
	// phase across remote shard workers (see shard.go): seed subtrees
	// are speculated on the shards and replayed authoritatively here, so
	// the Result is byte-identical to a local run — dead shards, stale
	// incumbent gossip and lost subtrees only cost replay-fallback work.
	// Implies NoMultires for the sharded walks: the multiresolution
	// steering closures cannot be evaluated on a shard, and the recorded
	// bounds they tighten are consumed authoritatively by the replay.
	// (Sound by the NoMultires byte-identity guarantee.) Only
	// RoundStat.Visits and the Shard* counters change.
	Shards ShardDialer

	// ctx carries the cancellation context of an OptimizeContext run.
	// Only the driver sets it; miners read it through Context.
	ctx context.Context
	// inc hands the round's incremental caches to the miner. Only the
	// incremental driver sets it.
	inc *incMining
	// carry holds the previous round's surviving candidates in relocatable
	// form; the miner revalidates them to warm-start its incumbent. Only
	// the driver sets it (in both incremental and scratch modes — the
	// stash is content-addressed, so the two modes relocate identically).
	carry []carryCand
	// dictFrags holds the dictionary seed fragments for the whole run,
	// fetched once by the driver when Warmstart is set.
	dictFrags []dict.Fragment
	// stat, when non-nil, receives per-round miner counters (Visits).
	stat *RoundStat
	// mr carries the run's multiresolution state (frozen coarse oracle,
	// per-round attempt gate) across rounds. The driver sets it when
	// multires is enabled; FindCandidates self-initialises on direct
	// calls.
	mr *mrState
}

// Context returns the cancellation context of the run the options belong
// to (context.Background for plain Optimize). Miners consult it to
// abandon a search whose result will be discarded anyway.
func (o Options) Context() context.Context {
	if o.ctx == nil {
		return context.Background()
	}
	return o.ctx
}

func (o Options) workers() int {
	if o.Workers == 1 {
		return 1
	}
	return par.Workers(o.Workers)
}

// WorkersOrDefault returns the effective parallel width (resolving the
// Workers-0 default to the GOMAXPROCS-derived count).
func (o Options) WorkersOrDefault() int { return o.workers() }

func (o Options) batch() int {
	if o.SingleExtract {
		return 1
	}
	if o.Batch == 0 {
		return 16
	}
	return o.Batch
}

func (o Options) minSupport() int {
	if o.MinSupport == 0 {
		return 2
	}
	return o.MinSupport
}

func (o Options) maxNodes() int {
	if o.MaxNodes == 0 {
		return 8
	}
	return o.MaxNodes
}

// MaxSeqLenOrDefault returns the effective SFX sequence-length cap.
func (o Options) MaxSeqLenOrDefault() int {
	if o.MaxSeqLen == 0 {
		return 32
	}
	return o.MaxSeqLen
}

func (o Options) maxPatterns() int {
	if o.MaxPatterns == 0 {
		return 100_000
	}
	return o.MaxPatterns
}

// MaxPatternsOrDefault returns the effective per-round pattern budget
// (resolving the 0 default), so records of the configuration — e.g. the
// benchmark fingerprint — don't depend on whether the default was
// spelled out.
func (o Options) MaxPatternsOrDefault() int { return o.maxPatterns() }

// Extraction records one applied rewrite.
type Extraction struct {
	Name    string
	Method  Method
	Size    int // instructions per occurrence
	Occs    int
	Benefit int
}

// RoundStat is the per-round timing and cache-effectiveness breakdown of
// an optimization run. The final entry is the fixpoint probe — the round
// that mined and found nothing left to extract.
type RoundStat struct {
	Round int // 1-based

	CFGBuild  time.Duration // block (re)splitting and renumbering
	Summaries time.Duration // call-summary fixpoint
	DFGBuild  time.Duration // dependence-graph construction
	Mine      time.Duration // candidate mining
	Apply     time.Duration // extraction rewrites

	Blocks        int // blocks analysed this round
	BlocksReused  int // dependence graphs reused object-identically
	BlocksRebound int // reused by content under a fresh block object
	BlocksRebuilt int // built from scratch
	// RebuiltClean counts rebuilds of blocks in untouched functions with
	// no summary drift — over-invalidation; stays 0 when the dirty-set
	// rules are exact.
	RebuiltClean int

	SummariesRecomputed int // functions re-solved by the summary fixpoint
	SummariesChanged    int // of those, how many actually changed

	MemoHits    int // lattice subtrees fast-forwarded
	VisitsSaved int // pattern visits those subtrees would have cost

	// Visits counts frequent lattice nodes the miner actually visited this
	// round (fast-forwarded checkpoint subtrees are charged as if walked,
	// so the count is identical across worker widths and incremental
	// modes; it differs between the benefit-directed and Lexicographic
	// walks — that difference is the search-order win the benchmarks
	// track).
	Visits int

	// CoarseVisits counts coarse-lattice nodes visited by the one-shot
	// exhaustive coarse mine of the multiresolution pass — nonzero only
	// in the round that built the oracle (the first) and only with
	// multires enabled. MultiresDiscarded is the visit count of multires
	// walks thrown away because the pattern budget truncated them (the
	// round's Visits then report the plain fallback walk); nonzero only
	// in rounds where the attempt gate mispredicted a lattice blow-up.
	CoarseVisits      int
	MultiresDiscarded int

	// DictHits counts dictionary fragments that revalidated against this
	// round's view (0 without an Options.Warmstart source). DictDiscarded
	// is the visit count of a warm walk that was thrown away because its
	// dictionary floor failed validation (the round's Visits then report
	// the cold re-mine) — nonzero only in the rare rounds where the floor
	// proved unreachable or the pattern budget truncated the warm walk.
	DictHits      int
	DictDiscarded int

	// Shard counters of the distributed walk (all 0 without
	// Options.Shards). ShardSeeds counts seed subtrees requested from
	// shard workers, ShardSubtrees the recorded trees streamed back and
	// decoded, ShardFallbacks the seeds that degraded to local
	// speculation (dead shard, RPC failure, corrupt payload).
	// ShardBroadcasts counts incumbent-floor pushes sent to the shards;
	// ShardSpecVisits totals the speculative pattern visits the shards
	// ran on the coordinator's behalf — the honest overhead number next
	// to the round's authoritative Visits.
	ShardSeeds      int
	ShardSubtrees   int
	ShardFallbacks  int
	ShardBroadcasts int
	ShardSpecVisits int

	Extractions int // rewrites applied this round
}

// Result summarises an optimization run.
type Result struct {
	Miner       string
	Before      int // executable instructions before
	After       int
	Rounds      int
	Extractions []Extraction
	RoundStats  []RoundStat
	Program     *loader.Program
	Duration    time.Duration
}

// Saved returns Before - After.
func (r *Result) Saved() int { return r.Before - r.After }

// DictHits totals the dictionary warm-start hits across all rounds.
func (r *Result) DictHits() int {
	n := 0
	for i := range r.RoundStats {
		n += r.RoundStats[i].DictHits
	}
	return n
}

// CrossJumps and Calls count extraction mechanisms (paper Fig. 12).
func (r *Result) CrossJumps() int {
	n := 0
	for _, e := range r.Extractions {
		if e.Method == MethodCrossJump {
			n++
		}
	}
	return n
}

// Calls counts call-style extractions.
func (r *Result) Calls() int { return len(r.Extractions) - r.CrossJumps() }

// Optimize runs the paper's phase-8 loop: mine the block dependence
// graphs, extract the fragment with the highest size benefit, and restart
// until no fragment shrinks the program (or MaxRounds is hit). The input
// program is not modified; the optimized program is in Result.Program.
func Optimize(prog *loader.Program, m Miner, opts Options) *Result {
	res, err := OptimizeContext(context.Background(), prog, m, opts)
	if err != nil {
		// Unreachable: the background context never cancels and that is
		// the only error source.
		panic(err)
	}
	return res
}

// OptimizeContext is Optimize under a cancellation context: the run is
// abandoned — returning ctx.Err(), never a partial Result — when ctx is
// cancelled. Cancellation is observed between rounds, inside the parallel
// dependence-graph build, and by the graph miners at every lattice
// subtree, so even a single long mining round aborts promptly.
//
// By default rounds after the first run incrementally: the program view
// is kept alive across rounds, only functions the previous extraction
// rewrote are re-split, the summary fixpoint re-solves only the
// reverse-call-graph closure of those functions, dependence graphs are
// reused wherever block content and consumed summaries are unchanged,
// and the lattice search fast-forwards recorded subtrees over untouched
// blocks. All reuse is equivalence-gated, so the result is byte-identical
// to Options.NoIncremental (which reverts to full rebuilds every round).
func OptimizeContext(ctx context.Context, prog *loader.Program, m Miner, opts Options) (*Result, error) {
	opts.ctx = ctx
	start := time.Now()
	res := &Result{Miner: m.Name(), Before: prog.CountInstrs()}

	cur := prog
	used := usedNames(prog)
	counter := 0
	incremental := !opts.NoIncremental
	// Dictionary seeds are fetched once for the whole run: a stable
	// snapshot keeps every round's revalidation (and the W=1/W=8
	// differential) independent of concurrent publishers.
	var pubFrags []dict.Fragment
	if opts.Warmstart != nil {
		opts.dictFrags = opts.Warmstart.Seeds()
	}
	// One multiresolution state per run: the coarse oracle is built once
	// (first round) and frozen, the attempt gate evolves round to round.
	// Sharded runs stay on the plain walk (see Options.Shards).
	if !opts.Lexicographic && !opts.NoMultires && opts.Shards == nil {
		opts.mr = newMRState()
	}
	var view *cfg.Program
	var st *incState
	var dirty map[*cfg.Func]bool // functions rewritten by the last round
	anyApplied := false
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if opts.MaxRounds > 0 && res.Rounds >= opts.MaxRounds {
			break
		}
		stat := RoundStat{Round: len(res.RoundStats) + 1}

		t0 := time.Now()
		if incremental {
			if view == nil {
				view = cfg.Build(cur)
				st = newIncState()
			} else {
				view.Resplit(dirty)
			}
		} else {
			view = cfg.Build(cur)
		}
		stat.CFGBuild = time.Since(t0)
		stat.Blocks = len(view.Blocks)

		t0 = time.Now()
		var summaries map[string]arm.Effects
		if incremental {
			summaries = st.updateSummaries(view, dirty, &stat)
		} else {
			summaries = CallSummaries(view)
			stat.SummariesRecomputed = len(view.Funcs)
			stat.SummariesChanged = len(view.Funcs)
		}
		stat.Summaries = time.Since(t0)

		t0 = time.Now()
		var graphs []*dfg.Graph
		if incremental {
			g, err := st.buildGraphs(ctx, view, summaries, dirty, opts, &stat)
			if err != nil {
				return nil, err
			}
			graphs = g
			st.beginMining(graphs, &stat)
			opts.inc = &st.m
		} else {
			g, err := buildGraphsFull(ctx, view, summaries, opts)
			if err != nil {
				return nil, err
			}
			graphs = g
			stat.BlocksRebuilt = len(graphs)
		}
		stat.DFGBuild = time.Since(t0)

		t0 = time.Now()
		opts.stat = &stat
		cands := m.FindCandidates(view, graphs, opts)
		// Stash the returned list for the next round's warm start NOW,
		// while the view still matches the occurrences (Apply rewrites the
		// blocks below). Both modes stash: relocation is content-addressed,
		// so incremental and scratch rounds revalidate identically. The
		// dictionary snapshot is taken at the same moment for the same
		// reason — its occurrences must capture pre-Apply block content.
		opts.carry = stashCarry(view, cands)
		if opts.Warmstart != nil {
			pubFrags = dictFragments(pubFrags, cands)
		}
		stat.Mine = time.Since(t0)
		if err := ctx.Err(); err != nil {
			// A cancelled miner may have returned a truncated candidate
			// list; applying it would make cancellation observable in the
			// output.
			return nil, err
		}
		t0 = time.Now()
		applied := 0
		dirty = map[*cfg.Func]bool{}
		usedBlocks := map[*cfg.Block]bool{}
		for _, cand := range cands {
			if cand == nil || cand.Benefit <= 0 {
				continue
			}
			if opts.SingleExtract && applied >= 1 {
				break
			}
			conflict := false
			for _, occ := range cand.Occs {
				if usedBlocks[occ.Block] {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			for _, occ := range cand.Occs {
				usedBlocks[occ.Block] = true
			}
			var name string
			for {
				name = fmt.Sprintf("__pa%d", counter)
				counter++
				if !used[name] {
					break
				}
			}
			used[name] = true
			for fn := range Apply(view, cand, name) {
				dirty[fn] = true
			}
			applied++
			res.Extractions = append(res.Extractions, Extraction{
				Name:    name,
				Method:  cand.Method,
				Size:    cand.Size,
				Occs:    len(cand.Occs),
				Benefit: cand.Benefit,
			})
		}
		stat.Apply = time.Since(t0)
		stat.Extractions = applied
		res.RoundStats = append(res.RoundStats, stat)
		if applied == 0 {
			break
		}
		anyApplied = true
		res.Rounds++
		if !incremental {
			cur = cfg.Reassemble(view)
		}
	}
	if incremental && anyApplied {
		// Resplit preserves flattened content exactly, so one final
		// reassembly of the long-lived view equals the per-round
		// reassemble/rebuild chain of the non-incremental loop.
		cur = cfg.Reassemble(view)
	}
	res.Program = cur
	res.After = cur.CountInstrs()
	res.Duration = time.Since(start)
	// Publish after the run completes (cancelled runs return above and
	// publish nothing): the dictionary dedupes by content address, so
	// re-publishing known fragments just refreshes their ranking.
	if opts.Warmstart != nil && len(pubFrags) > 0 {
		opts.Warmstart.Publish(pubFrags)
	}
	return res, nil
}

// buildGraphsFull is the non-incremental per-round dependence-graph
// build: every block from scratch, in parallel when configured (indexed
// writes keep the result order-identical to the serial loop).
func buildGraphsFull(ctx context.Context, view *cfg.Program, summaries map[string]arm.Effects, opts Options) ([]*dfg.Graph, error) {
	graphs := make([]*dfg.Graph, len(view.Blocks))
	if w := opts.workers(); w > 1 {
		if err := par.Do(ctx, w, len(view.Blocks), func(_ context.Context, i int) error {
			graphs[i] = dfg.Build(view.Blocks[i], summaries)
			return nil
		}); err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			panic(err) // workers return no errors; panics re-raise in par.Do
		}
	} else {
		for i, b := range view.Blocks {
			graphs[i] = dfg.Build(b, summaries)
		}
	}
	return graphs, nil
}

func usedNames(prog *loader.Program) map[string]bool {
	used := map[string]bool{}
	for _, fn := range prog.Funcs {
		used[fn.Name] = true
		for i := range fn.Code {
			if t := fn.Code[i].Target; t != "" {
				used[t] = true
			}
		}
	}
	for _, d := range prog.Data {
		if d.Label != "" {
			used[d.Label] = true
		}
	}
	return used
}
