package pa

import (
	"context"
	"fmt"
	"time"

	"graphpa/internal/cfg"
	"graphpa/internal/dfg"
	"graphpa/internal/loader"
	"graphpa/internal/par"
)

// Options tunes the optimizer.
type Options struct {
	// MinSupport is the frequency threshold (default 2).
	MinSupport int
	// MaxNodes caps mined fragment size (default 8; larger finds more
	// but mines longer).
	MaxNodes int
	// MaxSeqLen caps SFX sequence length (default 32).
	MaxSeqLen int
	// GreedyMIS uses the greedy independent-set heuristic instead of the
	// exact solver (ablation knob).
	GreedyMIS bool
	// MaxRounds bounds mine/extract iterations (0 = to fixpoint).
	MaxRounds int
	// MaxPatterns bounds frequent patterns visited per mining round
	// (default 100000). The frequent-fragment lattice of heavily
	// duplicated regions is exponential — the paper ate multi-hour runs;
	// we truncate the search deterministically instead. Sequence seeding
	// and benefit-bound pruning put the profitable candidates early in
	// the visit order, so the cap rarely costs savings. Raise it (or set
	// it very high) to approximate the paper's exhaustive search.
	MaxPatterns int
	// SingleExtract reverts to the paper's strict one-fragment-per-round
	// loop. By default the driver applies, per round, the best candidate
	// plus every runner-up touching disjoint blocks — the same greedy
	// order at a fraction of the mining restarts.
	SingleExtract bool
	// Batch is the number of runner-up candidates kept per round
	// (default 16; ignored with SingleExtract).
	Batch int
	// Workers is the parallel width of the optimizer's hot paths
	// (speculative lattice mining, sequence scanning, dependence-graph
	// construction): 0 derives the count from GOMAXPROCS, 1 forces the
	// serial pipeline, n > 1 uses n workers. Every setting produces
	// identical results — the parallel search replays deterministically —
	// so only wall clock changes.
	Workers int

	// ctx carries the cancellation context of an OptimizeContext run.
	// Only the driver sets it; miners read it through Context.
	ctx context.Context
}

// Context returns the cancellation context of the run the options belong
// to (context.Background for plain Optimize). Miners consult it to
// abandon a search whose result will be discarded anyway.
func (o Options) Context() context.Context {
	if o.ctx == nil {
		return context.Background()
	}
	return o.ctx
}

func (o Options) workers() int {
	if o.Workers == 1 {
		return 1
	}
	return par.Workers(o.Workers)
}

// WorkersOrDefault returns the effective parallel width (resolving the
// Workers-0 default to the GOMAXPROCS-derived count).
func (o Options) WorkersOrDefault() int { return o.workers() }

func (o Options) batch() int {
	if o.SingleExtract {
		return 1
	}
	if o.Batch == 0 {
		return 16
	}
	return o.Batch
}

func (o Options) minSupport() int {
	if o.MinSupport == 0 {
		return 2
	}
	return o.MinSupport
}

func (o Options) maxNodes() int {
	if o.MaxNodes == 0 {
		return 8
	}
	return o.MaxNodes
}

// MaxSeqLenOrDefault returns the effective SFX sequence-length cap.
func (o Options) MaxSeqLenOrDefault() int {
	if o.MaxSeqLen == 0 {
		return 32
	}
	return o.MaxSeqLen
}

func (o Options) maxPatterns() int {
	if o.MaxPatterns == 0 {
		return 100_000
	}
	return o.MaxPatterns
}

// Extraction records one applied rewrite.
type Extraction struct {
	Name    string
	Method  Method
	Size    int // instructions per occurrence
	Occs    int
	Benefit int
}

// Result summarises an optimization run.
type Result struct {
	Miner       string
	Before      int // executable instructions before
	After       int
	Rounds      int
	Extractions []Extraction
	Program     *loader.Program
	Duration    time.Duration
}

// Saved returns Before - After.
func (r *Result) Saved() int { return r.Before - r.After }

// CrossJumps and Calls count extraction mechanisms (paper Fig. 12).
func (r *Result) CrossJumps() int {
	n := 0
	for _, e := range r.Extractions {
		if e.Method == MethodCrossJump {
			n++
		}
	}
	return n
}

// Calls counts call-style extractions.
func (r *Result) Calls() int { return len(r.Extractions) - r.CrossJumps() }

// Optimize runs the paper's phase-8 loop: mine the block dependence
// graphs, extract the fragment with the highest size benefit, and restart
// until no fragment shrinks the program (or MaxRounds is hit). The input
// program is not modified; the optimized program is in Result.Program.
func Optimize(prog *loader.Program, m Miner, opts Options) *Result {
	res, err := OptimizeContext(context.Background(), prog, m, opts)
	if err != nil {
		// Unreachable: the background context never cancels and that is
		// the only error source.
		panic(err)
	}
	return res
}

// OptimizeContext is Optimize under a cancellation context: the run is
// abandoned — returning ctx.Err(), never a partial Result — when ctx is
// cancelled. Cancellation is observed between rounds, inside the parallel
// dependence-graph build, and by the graph miners at every lattice
// subtree, so even a single long mining round aborts promptly.
func OptimizeContext(ctx context.Context, prog *loader.Program, m Miner, opts Options) (*Result, error) {
	opts.ctx = ctx
	start := time.Now()
	res := &Result{Miner: m.Name(), Before: prog.CountInstrs()}

	cur := prog
	used := usedNames(prog)
	counter := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if opts.MaxRounds > 0 && res.Rounds >= opts.MaxRounds {
			break
		}
		view := cfg.Build(cur)
		summaries := CallSummaries(view)
		graphs := make([]*dfg.Graph, len(view.Blocks))
		if w := opts.workers(); w > 1 {
			// Per-block graph construction is independent; indexed writes
			// keep the result order-identical to the serial loop.
			if err := par.Do(ctx, w, len(view.Blocks), func(_ context.Context, i int) error {
				graphs[i] = dfg.Build(view.Blocks[i], summaries)
				return nil
			}); err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				panic(err) // workers return no errors; panics re-raise in par.Do
			}
		} else {
			for i, b := range view.Blocks {
				graphs[i] = dfg.Build(b, summaries)
			}
		}
		cands := m.FindCandidates(view, graphs, opts)
		if err := ctx.Err(); err != nil {
			// A cancelled miner may have returned a truncated candidate
			// list; applying it would make cancellation observable in the
			// output.
			return nil, err
		}
		applied := 0
		usedBlocks := map[*cfg.Block]bool{}
		for _, cand := range cands {
			if cand == nil || cand.Benefit <= 0 {
				continue
			}
			if opts.SingleExtract && applied >= 1 {
				break
			}
			conflict := false
			for _, occ := range cand.Occs {
				if usedBlocks[occ.Block] {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			for _, occ := range cand.Occs {
				usedBlocks[occ.Block] = true
			}
			var name string
			for {
				name = fmt.Sprintf("__pa%d", counter)
				counter++
				if !used[name] {
					break
				}
			}
			used[name] = true
			Apply(view, cand, name)
			applied++
			res.Extractions = append(res.Extractions, Extraction{
				Name:    name,
				Method:  cand.Method,
				Size:    cand.Size,
				Occs:    len(cand.Occs),
				Benefit: cand.Benefit,
			})
		}
		if applied == 0 {
			break
		}
		res.Rounds++
		cur = cfg.Reassemble(view)
	}
	res.Program = cur
	res.After = cur.CountInstrs()
	res.Duration = time.Since(start)
	return res, nil
}

func usedNames(prog *loader.Program) map[string]bool {
	used := map[string]bool{}
	for _, fn := range prog.Funcs {
		used[fn.Name] = true
		for i := range fn.Code {
			if t := fn.Code[i].Target; t != "" {
				used[t] = true
			}
		}
	}
	for _, d := range prog.Data {
		if d.Label != "" {
			used[d.Label] = true
		}
	}
	return used
}
