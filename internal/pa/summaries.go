package pa

import (
	"graphpa/internal/arm"
	"graphpa/internal/cfg"
)

// CallSummaries computes interprocedural register-effect summaries for
// every procedure in the program: the union of its instructions' effects
// plus (transitively) its callees', iterated to a fixpoint over the call
// graph. Link-time rewriters need this because procedural abstraction
// creates procedures with no calling convention at all — they read and
// write whatever registers their fragment touched — so later rounds must
// model each call with its callee's true footprint instead of the ABI
// clobber set (the bug class this prevents: hoisting a definition of r10
// across a call whose outlined body consumes r10).
//
// Summaries over-approximate: Reads is the union of registers any
// instruction reads (a superset of live-in) and Writes the union of
// registers possibly written. Calls to targets outside the program (none
// exist in a statically linked image, but be safe) assume the most
// conservative footprint.
func CallSummaries(view *cfg.Program) map[string]arm.Effects {
	return decorateSummaries(rawSummaries(view, nil, nil))
}

// rawSummaries runs the effect fixpoint and returns the undecorated
// least-fixpoint values (decorateSummaries adds the unconditional
// call-site effects consumers see).
//
// When recompute is nil every function starts from bottom. Otherwise
// only the functions in recompute are iterated (from bottom) while every
// other function is pinned to its value in prev. That is sound — and
// yields exactly the from-scratch least fixpoint — when the complement
// of recompute is closed under calls: such functions' equations mention
// only each other and their own unchanged bodies, so their least-
// fixpoint values cannot have moved, and the recompute members' least
// values relative to those constants equal the global ones. The driver
// guarantees the closure property by recomputing the reverse-call-graph
// closure of every rewritten function.
func rawSummaries(view *cfg.Program, prev map[string]arm.Effects, recompute map[string]bool) map[string]arm.Effects {
	// Most conservative effects: everything.
	worst := arm.Effects{LoadsMem: true, StoresMem: true, Barrier: true}
	for r := arm.R0; r <= arm.CPSR; r++ {
		worst.Reads = worst.Reads.Add(r)
		worst.Writes = worst.Writes.Add(r)
	}

	sum := map[string]arm.Effects{}
	iter := view.Funcs
	if recompute != nil {
		iter = iter[:0:0]
		for _, fn := range view.Funcs {
			if recompute[fn.Name] {
				iter = append(iter, fn)
				sum[fn.Name] = arm.Effects{Barrier: true}
			} else {
				sum[fn.Name] = prev[fn.Name]
			}
		}
	} else {
		for _, fn := range view.Funcs {
			sum[fn.Name] = arm.Effects{Barrier: true}
		}
	}

	// Save/restore discipline: registers a procedure pushes on entry and
	// pops on every return are PRESERVED for the caller. Where the
	// discipline is verified we (a) ignore the prologue's own reads and
	// the epilogues' own writes of those registers and (b) subtract them
	// from the final write set: compiled code saves half the register
	// file, and without this every call is a dependence wall. Reads
	// contributed by the body or by callees stay — a PA-created callee
	// that genuinely observes a saved register (its fragment read it)
	// keeps that read visible, which is the soundness-critical case.
	type disc struct {
		saved arm.RegSet
		ok    bool
	}
	discOf := map[string]disc{}
	for _, fn := range iter {
		s, ok := preservedRegs(fn)
		discOf[fn.Name] = disc{saved: s, ok: ok}
	}

	changed := true
	for changed {
		changed = false
		for _, fn := range iter {
			d := discOf[fn.Name]
			cur := sum[fn.Name]
			next := cur
			for bi, b := range fn.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					e := arm.EffectsOf(in)
					if d.ok {
						if in.Op == arm.PUSH && bi == 0 && i == 0 {
							e.Reads &^= d.saved | 1<<arm.LR
						}
						if in.Op == arm.POP {
							e.Writes &^= d.saved
						}
					}
					if in.Op == arm.BL {
						callee, ok := sum[in.Target]
						if !ok {
							callee = worst
						}
						e.Reads |= callee.Reads
						e.Writes |= callee.Writes
						e.LoadsMem = e.LoadsMem || callee.LoadsMem
						e.StoresMem = e.StoresMem || callee.StoresMem
					}
					next.Reads |= e.Reads
					next.Writes |= e.Writes
					next.LoadsMem = next.LoadsMem || e.LoadsMem
					next.StoresMem = next.StoresMem || e.StoresMem
				}
			}
			// pc is control flow, not data flow, at call granularity;
			// verified-preserved registers are restored on every return.
			next.Reads &^= 1 << arm.PC
			next.Writes &^= 1 << arm.PC
			if d.ok {
				next.Writes &^= d.saved
			}
			if next != cur {
				sum[fn.Name] = next
				changed = true
			}
		}
	}
	return sum
}

// decorateSummaries adds the effects every call site has regardless of
// the body: the bl writes lr, and calls act as scheduling barriers. The
// incremental driver keeps the RAW values across rounds — seeding a
// later fixpoint from decorated values would not be the least fixpoint —
// and decorates on the way out.
func decorateSummaries(raw map[string]arm.Effects) map[string]arm.Effects {
	out := make(map[string]arm.Effects, len(raw))
	for name, e := range raw {
		e.Writes = e.Writes.Add(arm.LR)
		e.Barrier = true
		out[name] = e
	}
	return out
}

// preservedRegs detects the two prologue/epilogue disciplines our code
// uses and returns the register set proven saved+restored on every path:
//
//	push {L, lr} … pop {L, pc}          (compiled procedures)
//	push {L} … pop {L}; bx lr           (runtime leaves with scratch)
func preservedRegs(fn *cfg.Func) (arm.RegSet, bool) {
	if len(fn.Blocks) == 0 || len(fn.Blocks[0].Instrs) == 0 {
		return 0, false
	}
	first := &fn.Blocks[0].Instrs[0]
	if first.Op != arm.PUSH {
		return 0, false
	}
	withLR := first.Reglist&(1<<arm.LR) != 0
	list := first.Reglist &^ (1 << arm.LR)
	if list == 0 {
		// Only lr saved: nothing to exclude, but the discipline may
		// still hold; report empty exclusion.
		list = 0
	}
	var saved arm.RegSet
	for r := arm.R0; r < arm.Reg(arm.NumRegs); r++ {
		if list&(1<<r) != 0 {
			saved = saved.Add(r)
		}
	}
	if saved == 0 {
		return 0, false
	}

	// Every return must restore exactly the saved list. Returns are pop
	// {…, pc} (discipline 1) or bx lr (discipline 2, with the restoring
	// pop somewhere before it in the same block).
	seenReturn := false
	for bi, b := range fn.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			switch {
			case in.Op == arm.POP && in.Reglist&(1<<arm.PC) != 0:
				if !withLR || in.Reglist != first.Reglist&^(1<<arm.LR)|1<<arm.PC {
					return 0, false
				}
				seenReturn = true
			case in.Op == arm.POP:
				if in.Reglist != list {
					return 0, false
				}
			case in.Op == arm.PUSH && !(bi == 0 && ii == 0):
				return 0, false
			case in.Op == arm.BX && in.Rm == arm.LR:
				if withLR {
					return 0, false
				}
				// requires a restoring pop earlier in this block
				restored := false
				for j := ii - 1; j >= 0; j-- {
					if b.Instrs[j].Op == arm.POP && b.Instrs[j].Reglist == list {
						restored = true
						break
					}
					if b.Instrs[j].Op == arm.POP || b.Instrs[j].Op == arm.PUSH {
						break
					}
				}
				if !restored {
					return 0, false
				}
				seenReturn = true
			}
		}
	}
	if !seenReturn {
		return 0, false
	}
	return saved, true
}
