package pa

import (
	"graphpa/internal/mining"
)

// Multiresolution coarse-to-fine mining (Huntsman: coarsen, solve small,
// steer big). Once per run the round-1 mining graphs are contracted
// (mining.Coarsen: instruction-class labels, straight-line chains into
// supernodes) and the coarse lattice is mined exhaustively — it is
// orders of magnitude smaller than the fine one. The coarse results
// feed the fine walk through two strictly output-preserving channels:
//
//   - A search-order oracle: every coarse pattern scores the tuple
//     classes it contains, and the fine walk descends siblings whose
//     extending tuple's class scored well first (mining.Config.ChildScore,
//     a tie-break after the admissible bound). Good incumbents arrive
//     early, so the strict branch-and-bound pruning bites sooner.
//   - A tighter admissible bound: each graph's contraction yields a
//     capacity table Caps[class] bounding any node-disjoint set of fine
//     edges of that class (see mining.Coarsening). A child pattern's MIS
//     support — and every descendant's — cannot exceed, per graph, the
//     least capacity among the classes of its code's tuples, summed over
//     the graphs it embeds in, so mining.Config.ChildBound takes the min
//     with misUpperBound.
//
// Neither channel admits or rejects candidates directly, so a COMPLETE
// multires walk returns the same incumbent tie set as a complete plain
// walk (the PR 5 order-invariance argument: admissible bounds plus
// strictly-less pruning preserve every maximum-benefit candidate under
// any sibling order). Byte-identity under the pattern budget is then
// enforced by construction: a multires walk the budget truncates is
// discarded (RoundStat.MultiresDiscarded) and the round re-mines with
// multires off — the plain walk IS the reference output. The oracle is
// frozen after round 1 (staleness costs steering quality, never
// correctness); the capacity tables are recomputed per round from the
// live graphs, keeping every bound a pure function of the pinned graph
// objects as the checkpoint layer requires.

// mrCoarseBudget caps the one-shot exhaustive coarse mine. The coarse
// lattice is usually tiny, but label collapsing can densify pathological
// inputs; the oracle is advisory, so truncating its construction costs
// steering quality only.
const mrCoarseBudget = 50_000

// mrState is the per-run multiresolution state, created by the driver
// (or by FindCandidates itself on direct calls) and threaded through
// Options.mr.
type mrState struct {
	built        bool
	oracle       map[mining.TupleClass]int // frozen tuple-class scores
	coarseVisits int                       // coarse-lattice visits (round 1 only)

	// attempt gates the multires walk per round: a round is attempted
	// only when the previous round's final walk completed (round 1
	// always attempts). Rounds that truncate burn the full pattern
	// budget no matter the arm, and a truncated multires walk is
	// discarded by construction — attempting one there pays a double
	// walk for nothing. Deterministic per run: visit counts and
	// truncation are identical across worker widths and incremental
	// modes, so the gate decides identically too.
	attempt bool
	// lastVisits is the previous round's final-walk visit count; the
	// multires walk's budget is capped near it (see budget) so a round
	// whose lattice exploded since the gate last saw it discards after a
	// cheap truncated prefix instead of a full-budget walk.
	lastVisits int
}

func newMRState() *mrState {
	return &mrState{attempt: true, oracle: map[mining.TupleClass]int{}}
}

// buildOracle runs the one-shot exhaustive coarse mine and freezes the
// tuple-class score table: each coarse pattern credits every tuple class
// it contains with support × size, a benefit proxy, and a class keeps
// its best credit. Serial and lexicographic — determinism over speed.
// The walk is capped at four supernodes: class collapsing makes coarse
// patterns hyper-frequent, so deeper coarse mining explodes
// combinatorially while adding nothing to a per-class score table (a
// four-supernode pattern already spans up to maxK fine nodes per
// supernode chain).
func (mr *mrState) buildOracle(mgs []*mining.Graph, maxK, minSupport int) {
	mr.built = true
	coarse := make([]*mining.Graph, len(mgs))
	for i, g := range mgs {
		coarse[i] = mining.Coarsen(g).Graph
	}
	coarseK := maxK
	if coarseK > 4 {
		coarseK = 4
	}
	mr.coarseVisits = mining.Mine(coarse, mining.Config{
		MinSupport:       minSupport,
		MaxNodes:         coarseK,
		EmbeddingSupport: true,
		Lexicographic:    true,
		MaxPatterns:      mrCoarseBudget,
	}, func(p *mining.Pattern) {
		score := p.Support * p.Code.NumNodes()
		for _, t := range p.Code {
			ct := mining.ClassOfTuple(t)
			if score > mr.oracle[ct] {
				mr.oracle[ct] = score
			}
		}
	})
}

// budget is the multires walk's pattern budget: the full budget on round
// 1, then twice the previous round's final visit count — enough slack
// that a steadily shrinking lattice always completes, cheap enough that
// a lattice the gate mispredicted truncates (and is discarded) after a
// small prefix.
func (mr *mrState) budget(maxPatterns int) int {
	if mr.lastVisits > 0 && 2*mr.lastVisits < maxPatterns {
		return 2 * mr.lastVisits
	}
	return maxPatterns
}

// coarseCaps contracts each graph and indexes its capacity table by
// graph ID for the walk's ChildBound closure. Recomputed per round: the
// tables are pure functions of the current mining graphs, which is what
// lets the bound participate in checkpoint records (a record's
// footprint pins the graphs, and identical graphs reproduce identical
// caps).
func coarseCaps(mgs []*mining.Graph) map[int]map[mining.TupleClass]int {
	caps := make(map[int]map[mining.TupleClass]int, len(mgs))
	for _, g := range mgs {
		caps[g.ID] = mining.Coarsen(g).Caps
	}
	return caps
}

// capBound sums, over the distinct graphs of a child's embedding set,
// the least capacity among ALL the child's tuple classes (the parent
// code's plus the extending tuple's): every node-disjoint embedding of
// the child — or of any descendant, which retains every tuple — pins a
// node-disjoint fine edge of each class, so per graph the rarest class
// in the code bounds the MIS support. Embedding rows are grouped by
// graph (materialisation preserves seed packing order), so one pass
// with a previous-gid check counts each graph once; a repeated
// non-adjacent gid would only overcount, which keeps the bound
// admissible.
func capBound(caps map[int]map[mining.TupleClass]int, code mining.Code, t mining.Tuple, set *mining.EmbSet) int {
	// The distinct classes of the child's code, newest first (the newest
	// tuple is often the most constraining — it just shrank the set).
	cts := make([]mining.TupleClass, 0, len(code)+1)
	cts = append(cts, mining.ClassOfTuple(t))
	for _, pt := range code {
		ct := mining.ClassOfTuple(pt)
		dup := false
		for _, seen := range cts {
			if seen == ct {
				dup = true
				break
			}
		}
		if !dup {
			cts = append(cts, ct)
		}
	}
	total := 0
	last := -1
	for i := 0; i < set.Len(); i++ {
		gid := set.GID(i)
		if gid == last {
			continue
		}
		last = gid
		g := caps[gid]
		m := g[cts[0]]
		for _, ct := range cts[1:] {
			if c := g[ct]; c < m {
				m = c
			}
		}
		total += m
	}
	return total
}
