package pa

import (
	"math"
	"sync"

	"graphpa/internal/dfg"
	"graphpa/internal/mining"
)

// This file carries whole lattice subtrees across extraction rounds.
// Most of a round's mining time re-walks subtrees over blocks the last
// extraction never touched; the walk of such a subtree — which patterns
// are visited, in what order, and which candidates are admitted — is a
// deterministic function of (a) the embeddings' graphs and (b) the
// incumbent candidate bounds read by the branch-and-bound policies. The
// checkpointer records both per subtree on the authoritative walk:
//
//   - The footprint: every embedding with its owning dependence-graph
//     object. Graph objects are only reused across rounds when their
//     block content and consumed summaries are unchanged (graphCache), so
//     object identity proves content identity.
//   - The bounds dependence. Subtrees that admit no candidate read the
//     incumbent only through threshold comparisons "value < best?"; each
//     observed comparison narrows a half-open validity region [lo, hi)
//     for the incumbent benefit within which every decision reproduces.
//     Subtrees that DO admit candidates move the incumbent mid-walk;
//     they are recorded in exact mode — valid only when the incumbent
//     benefit at entry matches — because then the interior bound
//     trajectory evolves identically too.
//
// A later round's walk reaching the same DFS code fast-forwards the
// subtree when footprint and bounds validate: it replays the recorded
// admissions and charges the recorded visit count against MaxPatterns
// (refusing when the recorded subtree would overrun the budget, since a
// truncated walk behaves differently from a replayed one). Any failed
// check falls back to live mining of that subtree — the correctness
// fallback; fast-forwarding only ever changes how much work is done,
// never the visit sequence or the mined output.

// ckMaxDepth bounds how deep (in DFS-code edges) subtree records are
// kept. Shallow roots dominate the payoff — a validated shallow record
// replays its entire subtree, and the per-pattern memos of the few
// shallow patterns cover the expensive wide frontier — while recording
// every deep pattern of an exploding walk costs far more in allocation
// and GC-scanned live memory than the occasional deep hit returns.
// Notes from deeper patterns still narrow the open shallow records, so
// gating loses coverage, never correctness.
const ckMaxDepth = 4

// latticeRec is one recorded subtree, keyed by its root's DFS code
// (Code.Key is injective, so the key alone identifies the code).
type latticeRec struct {
	graphs []*dfg.Graph   // per-embedding owning graph at record time
	embs   *mining.EmbSet // root embeddings at record time (flat slabs)
	safe   []bool         // CallSafe of each graph's function at record time

	exact     bool // admissions inside: valid only for an identical entry incumbent
	entryBest int  // incumbent benefit at entry

	bestLo, bestHi int // non-exact validity: bestLo <= best < bestHi

	visits int
	adds   []*Candidate // admissions, in walk order

	// Per-pattern memo of the root visit's pure by-products, under the
	// same threshold-independence contract as patMemo: a non-nil cand is
	// exact for every admission threshold, a nil cand stands for every
	// threshold >= candThr. Unlike the subtree replay these only need the
	// footprint to validate, not the bounds regions, so they keep paying
	// off after an extraction shifts the incumbent trajectory.
	cand         *Candidate
	candThr      int
	haveCand     bool
	disjoint     []int32 // DgSpan independent set, as root-embedding rows
	haveDisjoint bool
}

// Walk arms for checkpoint records. A record replays a subtree's visit
// order and bound comparisons, and both differ between the plain
// benefit-directed walk and the multiresolution walk (coarse capacity
// tables tighten bounds and the oracle reorders siblings), so records
// are stamped with the arm that took them and only replay within it.
// Both arms of one run share the footprint sweep.
const (
	armPlain    = 0 // NoMultires (and multires-discarded fallback) walks
	armMultires = 1 // coarse-steered walks
	numArms     = 2
)

// latticeMemo is the cross-round checkpoint store, one record map per
// walk arm. The authoritative walk writes it; concurrent speculation
// workers read it (SkipSubtree), hence the RWMutex.
type latticeMemo struct {
	mu   sync.RWMutex
	recs [numArms]map[string]*latticeRec // by Code.Key()
}

func newLatticeMemo() *latticeMemo {
	m := &latticeMemo{}
	for a := range m.recs {
		m.recs[a] = map[string]*latticeRec{}
	}
	return m
}

func (m *latticeMemo) get(arm int, key string) *latticeRec {
	m.mu.RLock()
	rec := m.recs[arm][key]
	m.mu.RUnlock()
	return rec
}

func (m *latticeMemo) put(arm int, key string, rec *latticeRec) {
	m.mu.Lock()
	m.recs[arm][key] = rec
	m.mu.Unlock()
}

// sweep drops records anchored to dependence graphs that are no longer
// live: a dead graph object never reappears, so such records can never
// validate again.
func (m *latticeMemo) sweep(live map[*dfg.Graph]bool) {
	m.mu.Lock()
	for a := range m.recs {
		for k, rec := range m.recs[a] {
			for _, g := range rec.graphs {
				if !live[g] {
					delete(m.recs[a], k)
					break
				}
			}
		}
	}
	m.mu.Unlock()
}

// recBuilder is one open (Begin'd, not yet End'd) subtree record.
type recBuilder struct {
	rec      *latticeRec
	p        *mining.Pattern // the subtree's root pattern
	key      string          // the root code's Key(), computed once
	logStart int             // admissions log length at Begin
	exact    bool            // an admission happened inside
}

// checkpointer implements mining.Checkpointer for one FindCandidates
// run: it records subtrees of the authoritative walk into the cross-
// round memo and fast-forwards subtrees the memo already covers. All
// methods except covered run on the authoritative goroutine only.
type checkpointer struct {
	s    *search
	memo *latticeMemo
	arm  int // which memo arm this walk records into and replays from
	byID map[int]*dfg.Graph
	safe map[*dfg.Graph]bool // CallSafe of each graph's function this round

	builders []*recBuilder // open records, innermost last
	log      []*Candidate  // admissions in walk order

	// The footprint-valid record FastForward last found for a pattern it
	// could not fully replay (bounds or budget refused): the visit that
	// follows reuses the record's per-pattern memo through patRec.
	lastFor *mining.Pattern
	lastRec *latticeRec

	// The key FastForward computed for its pattern, reused by the Begin
	// that immediately follows a refused fast-forward.
	lastKeyFor *mining.Pattern
	lastKey    string

	hits  int
	saved int
}

// snapshot reads the incumbent benefit the bounds state reduces to.
// (The warm-started floor is part of it: records taken under one floor
// validate under another only through the region checks, exactly like
// mid-walk incumbent movement.)
func (ck *checkpointer) snapshot() int {
	return ck.s.best()
}

// footprintOK verifies the subtree's graphs are the recorded objects and
// the root embeddings are unchanged. Graph-object identity implies
// content identity (graphCache), and every pattern below the root embeds
// into a subset of the root's graphs, so the whole subtree's inputs are
// pinned. Embedding node/edge indices are content-relative and block IDs
// enter the walk only through order — which renumbering preserves — so
// index equality is the full condition.
func (ck *checkpointer) footprintOK(rec *latticeRec, p *mining.Pattern) bool {
	if !p.Embeddings.EqualData(rec.embs) {
		return false
	}
	for i := 0; i < p.Embeddings.Len(); i++ {
		g := ck.byID[p.Embeddings.GID(i)]
		if g != rec.graphs[i] || ck.safe[g] != rec.safe[i] {
			// Same graph object but drifted call-safety still invalidates:
			// CallSafe is a whole-function property baked into the mining
			// graph's edge pruning and the candidate's occurrence filter.
			return false
		}
	}
	return true
}

func (ck *checkpointer) validFor(rec *latticeRec, best int) bool {
	if rec.exact {
		// Admissions inside compare against the moving incumbent, whose
		// whole trajectory is determined by its entry value (tie-set
		// membership never feeds back into the walk), so entry equality is
		// the exact condition.
		return best == rec.entryBest
	}
	return best >= rec.bestLo && best < rec.bestHi
}

// FastForward implements mining.Checkpointer.
func (ck *checkpointer) FastForward(p *mining.Pattern, remaining int) (int, bool) {
	if len(p.Code) > ckMaxDepth {
		return 0, false
	}
	key := p.Code.Key()
	ck.lastKeyFor, ck.lastKey = p, key
	rec := ck.memo.get(ck.arm, key)
	if rec == nil {
		return 0, false
	}
	if !ck.footprintOK(rec, p) {
		return 0, false
	}
	// The footprint holds even if the replay below is refused: the visit
	// that follows can still reuse the record's per-pattern memo.
	ck.lastFor, ck.lastRec = p, rec
	if remaining >= 0 && rec.visits > remaining {
		// The budget would truncate inside this subtree; a replay cannot
		// reproduce a truncated walk.
		return 0, false
	}
	if !ck.validFor(rec, ck.snapshot()) {
		return 0, false
	}
	for _, c := range rec.adds {
		ck.s.admit(c) // runs noteAdd: enclosing open records turn exact
	}
	if !rec.exact {
		// The skipped subtree's bounds dependence becomes part of every
		// enclosing record still in region mode.
		for _, rb := range ck.builders {
			if rb.exact {
				continue
			}
			r := rb.rec
			if rec.bestLo > r.bestLo {
				r.bestLo = rec.bestLo
			}
			if rec.bestHi < r.bestHi {
				r.bestHi = rec.bestHi
			}
		}
	}
	ck.hits++
	ck.saved += rec.visits
	return rec.visits, true
}

// Begin implements mining.Checkpointer.
func (ck *checkpointer) Begin(p *mining.Pattern) any {
	if len(p.Code) > ckMaxDepth {
		return nil // deeper subtrees are not recorded (ckMaxDepth)
	}
	key := ck.lastKey
	if ck.lastKeyFor != p {
		key = p.Code.Key()
	}
	// The embedding set is uniquely owned by the pattern object (the
	// search builds fresh slabs per visit and never mutates them after),
	// so the record pins it without copying — and since the slabs are
	// pointer-free, the retained record costs the GC nothing to scan.
	n := p.Embeddings.Len()
	rec := &latticeRec{
		graphs:    make([]*dfg.Graph, n),
		embs:      p.Embeddings,
		safe:      make([]bool, n),
		entryBest: ck.snapshot(),
		bestLo:    math.MinInt,
		bestHi:    math.MaxInt,
	}
	for i := 0; i < n; i++ {
		g := ck.byID[p.Embeddings.GID(i)]
		rec.graphs[i] = g
		rec.safe[i] = ck.safe[g]
	}
	rb := &recBuilder{rec: rec, p: p, key: key, logStart: len(ck.log)}
	ck.builders = append(ck.builders, rb)
	return rb
}

// End implements mining.Checkpointer.
func (ck *checkpointer) End(token any, visits int, truncated bool) {
	rb := token.(*recBuilder)
	ck.builders = ck.builders[:len(ck.builders)-1]
	if truncated {
		return // the walk did not finish this subtree; unusable
	}
	rec := rb.rec
	rec.visits = visits
	rec.adds = append([]*Candidate(nil), ck.log[rb.logStart:]...)
	rec.exact = rb.exact
	ck.memo.put(ck.arm, rb.key, rec)
}

// patRec returns the footprint-valid previous-round record of p, if
// FastForward found one it could not fully replay. Only valid during p's
// own visit (each pattern object is visited exactly once).
func (ck *checkpointer) patRec(p *mining.Pattern) *latticeRec {
	if ck.lastFor == p {
		return ck.lastRec
	}
	return nil
}

// noteCand stores the visit's candidate outcome into p's own open
// record, carrying the patMemo-style threshold contract across rounds.
// Under depth gating the innermost open record may belong to a shallow
// ancestor rather than p, so the builder identity is checked.
func (ck *checkpointer) noteCand(p *mining.Pattern, c *Candidate, thr int) {
	if len(ck.builders) == 0 {
		return
	}
	rb := ck.builders[len(ck.builders)-1]
	if rb.p != p {
		return
	}
	rb.rec.cand, rb.rec.candThr, rb.rec.haveCand = c, thr, true
}

// noteDisjoint stores the DgSpan independent set (as root-embedding
// rows) into p's own open record.
func (ck *checkpointer) noteDisjoint(p *mining.Pattern, idx []int32) {
	if len(ck.builders) == 0 {
		return
	}
	rb := ck.builders[len(ck.builders)-1]
	if rb.p != p {
		return
	}
	rb.rec.disjoint, rb.rec.haveDisjoint = idx, true
}

// covered is the speculation-side advisory check behind
// Speculator.SkipSubtree: the memo probably fast-forwards this subtree,
// so speculating below it is wasted work. Reads only immutable record
// state and the (read-only) byID map; safe for concurrent use.
func (ck *checkpointer) covered(p *mining.Pattern) bool {
	if len(p.Code) > ckMaxDepth {
		return false
	}
	rec := ck.memo.get(ck.arm, p.Code.Key())
	return rec != nil && ck.footprintOK(rec, p)
}

// noteAdd logs an authoritative candidate admission: every open record
// contains it and must switch to exact-entry validation.
func (ck *checkpointer) noteAdd(c *Candidate) {
	ck.log = append(ck.log, c)
	for _, rb := range ck.builders {
		rb.exact = true
	}
}

// noteBest records an authoritative comparison against the incumbent
// benefit: less reports whether v < best held. Open region-mode records
// narrow their validity region so the comparison reproduces — v < best
// pins best >= v+1, its negation pins best < v+1.
func (ck *checkpointer) noteBest(v int, less bool) {
	for _, rb := range ck.builders {
		if rb.exact {
			continue
		}
		if less {
			if v+1 > rb.rec.bestLo {
				rb.rec.bestLo = v + 1
			}
		} else if v+1 < rb.rec.bestHi {
			rb.rec.bestHi = v + 1
		}
	}
}
