package pa

import (
	"context"
	"sort"

	"graphpa/internal/dfg"
	"graphpa/internal/par"
)

const (
	hashBase = 1099511628211
)

// pos locates a sequence occurrence: graph index and start offset.
type pos struct{ g, start int }

// ScanSequences finds repeated contiguous instruction sequences with
// positive extraction benefit, best first — the suffix-trie baseline's
// detector (Fraser/Myers/Wendt; fingerprint-filtered per Debray et al.).
// The graph miners also call it to seed their branch-and-bound incumbent
// list: with unbounded fragment size graph mining strictly subsumes
// sequence mining, and seeding restores that subsumption under our
// fragment-size cap. With onePerBlock, at most one occurrence per basic
// block is counted (DgSpan's graph-count view).
func ScanSequences(graphs []*dfg.Graph, opts Options, graphSupport bool) []*Candidate {
	// Intern instruction texts -> token ids, per round.
	tokens := map[string]uint64{}
	next := uint64(1)
	seqs := make([][]uint64, len(graphs))
	maxLen := 2
	for gi, g := range graphs {
		n := g.N()
		seq := make([]uint64, n)
		for i := 0; i < n; i++ {
			s := g.NodeLabel(i)
			id, ok := tokens[s]
			if !ok {
				id = next
				next++
				tokens[s] = id
			}
			seq[i] = id
		}
		seqs[gi] = seq
		if n > maxLen {
			maxLen = n
		}
	}
	if maxLen > opts.MaxSeqLenOrDefault() {
		maxLen = opts.MaxSeqLenOrDefault()
	}

	var all []*Candidate

	if w := opts.workers(); w > 1 && maxLen > 2 {
		// Each sequence length is an independent scan over the read-only
		// token arrays; ordered fan-in keeps `all` in the serial k order,
		// which the stable sort below depends on for tie-breaking.
		err := par.OrderedMap(context.Background(), w, maxLen-1,
			func(_ context.Context, i int) ([]*Candidate, error) {
				return scanLen(graphs, seqs, i+2, graphSupport), nil
			},
			func(_ int, cands []*Candidate) error {
				all = append(all, cands...)
				return nil
			})
		if err != nil {
			panic(err) // scanners return no errors; panics re-raise in par.OrderedMap
		}
	} else {
		for k := 2; k <= maxLen; k++ {
			all = append(all, scanLen(graphs, seqs, k, graphSupport)...)
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Benefit > all[j].Benefit })
	if len(all) > 64 {
		all = all[:64]
	}
	return all
}

// scanLen finds the positive-benefit candidates of one sequence length:
// rolling-hash grouping, collision verification, greedy left-to-right
// overlap resolution, method selection. Pure over its inputs.
func scanLen(graphs []*dfg.Graph, seqs [][]uint64, k int, graphSupport bool) []*Candidate {
	groups := map[uint64][]pos{}
	for gi, seq := range seqs {
		if len(seq) < k {
			continue
		}
		var h uint64
		pow := uint64(1)
		for i := 0; i < k-1; i++ {
			pow *= hashBase
		}
		for i := 0; i+k <= len(seq); i++ {
			if i == 0 {
				h = 0
				for j := 0; j < k; j++ {
					h = h*hashBase + seq[j]
				}
			} else {
				h = (h-seq[i-1]*pow)*hashBase + seq[i+k-1]
			}
			groups[h] = append(groups[h], pos{gi, i})
		}
	}
	var hashes []uint64
	for h, ps := range groups {
		if len(ps) >= 2 {
			hashes = append(hashes, h)
		}
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	var out []*Candidate
	for _, h := range hashes {
		ps := groups[h]
		// Verify against hash collisions: group by actual tokens.
		ref := seqs[ps[0].g][ps[0].start : ps[0].start+k]
		var same []pos
		for _, p := range ps {
			if equalSeq(seqs[p.g][p.start:p.start+k], ref) {
				same = append(same, p)
			}
		}
		if len(same) < 2 {
			continue
		}
		// Non-overlapping occurrences, greedy left to right.
		var chosen []pos
		lastEnd := map[int]int{}
		for _, p := range same {
			if e, ok := lastEnd[p.g]; ok && p.start < e {
				continue
			}
			chosen = append(chosen, p)
			lastEnd[p.g] = p.start + k
		}
		if graphSupport && len(lastEnd) < 2 {
			// graph-count frequency: the sequence must repeat across
			// at least two blocks to be "frequent" for DgSpan, even
			// though all its occurrences are then extracted.
			continue
		}
		cand := seqCandidate(graphs, chosen, k)
		if cand == nil {
			continue
		}
		out = append(out, cand)
	}
	return out
}

func equalSeq(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// buildCandidate validates occurrences and picks the extraction method:
// sequences ending in the block terminator tail-merge, others outline.
func seqCandidate(graphs []*dfg.Graph, chosen []pos, k int) *Candidate {
	if len(chosen) < 2 {
		return nil
	}
	mkNodes := func(start int) []int {
		nodes := make([]int, k)
		for i := range nodes {
			nodes[i] = start + i
		}
		return nodes
	}
	first := graphs[chosen[0].g]
	firstNodes := mkNodes(chosen[0].start)
	firstOcc := Occurrence{Block: first.Block, Graph: first, Nodes: firstNodes, DFS: firstNodes}
	reference := firstOcc.InducedSignature()

	term := first.Block.Terminator()
	endsAtTerm := chosen[0].start+k == first.N() && term != nil && term.IsTerminator()

	var occs []Occurrence
	for _, p := range chosen {
		g := graphs[p.g]
		occ := Occurrence{Block: g.Block, Graph: g, Nodes: mkNodes(p.start), DFS: mkNodes(p.start)}
		if endsAtTerm {
			if !CrossJumpOK(g, occ.Nodes) {
				continue
			}
		} else {
			if !CallOK(g, occ.Nodes) {
				continue
			}
		}
		if occ.InducedSignature() != reference {
			continue
		}
		occs = append(occs, occ)
	}
	if len(occs) < 2 {
		return nil
	}
	if endsAtTerm {
		benefit := CrossJumpBenefit(k, len(occs))
		if benefit <= 0 {
			return nil
		}
		return &Candidate{Size: k, Occs: occs, Method: MethodCrossJump, Benefit: benefit}
	}
	benefit := CallBenefit(k, len(occs))
	if benefit <= 0 {
		return nil
	}
	return &Candidate{Size: k, Occs: occs, Method: MethodCall, Benefit: benefit}
}
