package pa

import (
	"testing"

	"graphpa/internal/arm"
	"graphpa/internal/cfg"
)

// The incremental summary fixpoint must agree with a from-scratch solve
// after any edit, including one that changes a callee's footprint deep in
// the call graph (the change must propagate to every transitive caller).
func TestIncrementalSummariesMatchFull(t *testing.T) {
	prog := loadSrc(t, `
_start:
	bl top
	bl other
	swi 0
top:
	push {r4, lr}
	bl mid
	pop {r4, pc}
mid:
	push {r4, lr}
	bl leaf
	pop {r4, pc}
leaf:
	add r6, r5, #10
	bx lr
other:
	mov r3, #7
	bx lr
`)
	view := cfg.Build(prog)
	st := newIncState()
	stat := &RoundStat{}
	got := st.updateSummaries(view, nil, stat)
	want := decorateSummaries(rawSummaries(view, nil, nil))
	compareSummaries(t, "initial", got, want)

	// Edit leaf: it now also writes r7. Every transitive caller's summary
	// changes; other's must not be recomputed.
	var leaf *cfg.Func
	for _, fn := range view.Funcs {
		if fn.Name == "leaf" {
			leaf = fn
		}
	}
	b := leaf.Blocks[0]
	fresh := append([]arm.Instr(nil), b.Instrs...)
	mov := arm.NewInstr(arm.MOV)
	mov.Rd = arm.R7
	mov.Imm = 1
	mov.HasImm = true
	fresh = append([]arm.Instr{mov}, fresh...)
	b.Instrs = fresh
	view.Resplit(map[*cfg.Func]bool{leaf: true})

	stat = &RoundStat{}
	got = st.updateSummaries(view, map[*cfg.Func]bool{leaf: true}, stat)
	want = decorateSummaries(rawSummaries(view, nil, nil))
	compareSummaries(t, "after edit", got, want)

	if !got["top"].Writes.Has(arm.R7) {
		t.Error("leaf's new write must propagate to its transitive caller top")
	}
	// leaf, mid, top, _start form the reverse-call-graph closure of the
	// edit; "other" is outside it and must be pinned, not re-solved.
	if stat.SummariesRecomputed >= len(view.Funcs) {
		t.Errorf("recomputed %d of %d functions; the closure excludes at least one",
			stat.SummariesRecomputed, len(view.Funcs))
	}
}

func compareSummaries(t *testing.T, when string, got, want map[string]arm.Effects) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d summaries, want %d", when, len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("%s: missing summary for %s", when, name)
		}
		if g != w {
			t.Errorf("%s: summary of %s = %+v, want %+v", when, name, g, w)
		}
	}
}
