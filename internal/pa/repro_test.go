package pa

import (
	"testing"
)

// TestSameBlockTripleWithCalls tries to reproduce the rijndael breakage
// shape: one long block with three occurrences of a fragment whose nodes
// straddle call barriers.
func TestSameBlockTripleWithCalls(t *testing.T) {
	src := `
_start:
	bl main
	swi 0
main:
	push {r4, r5, r6, r7, lr}
	ldr r4, =buf
	mov r5, #1
	mov r6, #2
	mov r7, #3

	ldrb r0, [r4]
	eor r0, r0, r5
	bl helper
	strb r0, [r4, #1]
	eor r1, r5, r6
	add r2, r1, #4
	eor r3, r1, #7

	ldrb r0, [r4, #2]
	eor r0, r0, r5
	bl helper
	strb r0, [r4, #3]
	eor r1, r5, r6
	add r2, r1, #4
	eor r3, r1, #7

	ldrb r0, [r4, #4]
	eor r0, r0, r5
	bl helper
	strb r0, [r4, #5]
	eor r1, r5, r6
	add r2, r1, #4
	eor r3, r1, #7

	add r0, r2, r3
	pop {r4, r5, r6, r7, pc}
	.pool
helper:
	add r0, r0, #17
	eor r0, r0, #3
	bx lr
.data
buf:
	.space 16
`
	prog := loadSrc(t, src)
	wantCode, wantOut := runProg(t, prog)
	res := Optimize(prog, &GraphMiner{Embedding: true}, Options{})
	gotCode, gotOut := runProg(t, res.Program)
	if gotCode != wantCode || gotOut != wantOut {
		t.Fatalf("behaviour changed: %d -> %d\n%s", wantCode, gotCode, res.Program.String())
	}
	t.Logf("saved=%d extractions=%+v", res.Saved(), res.Extractions)
}
