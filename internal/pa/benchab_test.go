package pa_test

// Heavy A/B of the benefit-directed lattice walk against the
// lexicographic reference on the paper's real workloads. Lives here (as
// an external test of internal/pa) rather than in internal/bench: the
// bench package's suite already runs close to the per-package timeout,
// and these runs optimize full benchmarks several times each. Everything
// in this file is skipped under -short.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"graphpa/internal/bench"
	"graphpa/internal/pa"
)

func optimizeWorkload(t *testing.T, name string, opts pa.Options) *pa.Result {
	t.Helper()
	w, err := bench.Build(name, bench.DefaultCodegen())
	if err != nil {
		t.Fatal(err)
	}
	return pa.Optimize(w.Prog, &pa.GraphMiner{Embedding: true}, opts)
}

func resultFingerprint(res *pa.Result) string {
	s := res.Program.String()
	s += fmt.Sprintf("rounds=%d saved=%d\n", res.Rounds, res.Saved())
	for _, e := range res.Extractions {
		s += fmt.Sprintf("%s %s k=%d m=%d ben=%d\n", e.Name, e.Method, e.Size, e.Occs, e.Benefit)
	}
	return s
}

// totalVisits sums the per-round visit counts, failing if any round hit
// the pattern budget: truncated rounds are not order-invariant, so the
// identity argument (and the visit comparison) only holds for complete
// walks.
func totalVisits(t *testing.T, res *pa.Result, cap int) int {
	t.Helper()
	v := 0
	for _, rs := range res.RoundStats {
		if cap > 0 && rs.Visits >= cap {
			t.Fatalf("round %d hit the pattern budget (%d visits); A/B needs complete walks", rs.Round, rs.Visits)
		}
		v += rs.Visits
	}
	return v
}

// TestBenefitDirectedRijndaelAB pins the paper's worst-case workload on
// its densest lattice: the first two rounds, walked to completion (the
// second round alone is ~537k patterns, dominated by the unrolled crypto
// rounds' textually identical fragments). The gates are Result identity
// and bf never visiting more than lex.
//
// There is deliberately NO visit-reduction or wall-clock gate here:
// rijndael's lattice is bound-immune. Its ~537k-pattern round has
// hundreds of thousands of fragments whose MIS upper bound meets the
// final incumbent (benefit 26 needs m>=5 at k=8; the unrolled rounds
// supply them in bulk), and at maxK=8 the per-m pruning thresholds of
// CallBenefit (7m-9) and the legacy fragUB (7m-7) coincide for every
// incumbent not congruent to 0 or 1 mod 7 — including 26. Measured:
// 536,445 benefit-directed vs 536,556 lexicographic visits on the
// complete round-2 walk, and the late fixpoint rounds (incumbents <= 5)
// admit no pruning at all since CallBenefit(8,2)=5. The structural win
// lives on sha (see TestBenefitDirectedShaAB, ~46% fewer visits); this
// test pins that rijndael pays no identity or visit cost for it.
func TestBenefitDirectedRijndaelAB(t *testing.T) {
	if testing.Short() {
		t.Skip("same-process A/B over the full rijndael workload; skipped with -short")
	}
	const budget = 600_000 // above the complete round-2 walk; rounds must not truncate
	opts := pa.Options{MaxRounds: 2, MaxPatterns: budget}
	lexOpts := opts
	lexOpts.Lexicographic = true

	runtime.GC()
	t0 := time.Now()
	lex := optimizeWorkload(t, "rijndael", lexOpts)
	lexDur := time.Since(t0)

	runtime.GC()
	t1 := time.Now()
	bf := optimizeWorkload(t, "rijndael", opts)
	bfDur := time.Since(t1)

	if got, want := resultFingerprint(bf), resultFingerprint(lex); got != want {
		t.Fatalf("benefit-directed Result differs from lexicographic reference\ngot:\n%s\nwant:\n%s", got, want)
	}
	lexV, bfV := totalVisits(t, lex, budget), totalVisits(t, bf, budget)
	t.Logf("rijndael A/B (2 rounds, complete): lex %v / %d visits, best-first %v / %d visits (%.1f%% of lex visits, %.1f%% of lex wall)",
		lexDur, lexV, bfDur, bfV, 100*float64(bfV)/float64(lexV), 100*float64(bfDur)/float64(lexDur))
	if bfV > lexV {
		t.Errorf("best-first visited %d lattice nodes vs lex %d; must never be worse", bfV, lexV)
	}
}

// TestBenefitDirectedShaAB is the headline perf gate: sha's fixpoint
// walks to completion under the default budget, its per-round incumbents
// land on the mod-7 residues where CallBenefit's threshold beats
// fragUB's (benefit 13 prunes m<=3 instead of m<=2), and the warm-started
// incumbent kills the post-extraction rounds' rediscovery. Measured ~46%
// fewer lattice visits with a byte-identical Result.
func TestBenefitDirectedShaAB(t *testing.T) {
	if testing.Short() {
		t.Skip("full sha workload A/B; skipped with -short")
	}
	lex := optimizeWorkload(t, "sha", pa.Options{Lexicographic: true})
	bf := optimizeWorkload(t, "sha", pa.Options{})
	if got, want := resultFingerprint(bf), resultFingerprint(lex); got != want {
		t.Fatalf("benefit-directed Result differs from lexicographic reference\ngot:\n%s\nwant:\n%s", got, want)
	}
	lexV, bfV := totalVisits(t, lex, 100_000), totalVisits(t, bf, 100_000)
	t.Logf("sha A/B: lex %d visits, best-first %d visits (%.1f%%)", lexV, bfV, 100*float64(bfV)/float64(lexV))
	if bfV*10 > lexV*7 {
		t.Errorf("best-first visited %d lattice nodes vs lex %d; want <= 70%%", bfV, lexV)
	}
}

// TestBenefitDirectedMatrix drives the full equivalence matrix — the
// lexicographic reference, the plain benefit-directed walk, and the
// multiresolution coarse-to-fine walk, each serial and parallel,
// incremental and scratch — on two mid-size workloads, pinning one
// fingerprint per workload.
func TestBenefitDirectedMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-configuration benchmark runs; skipped with -short")
	}
	arms := []struct {
		name      string
		lex, nomr bool
	}{{"lex", true, false}, {"plain", false, true}, {"multires", false, false}}
	for _, name := range []string{"crc", "dijkstra"} {
		var want string
		visits := make([][]int, len(arms)) // per-round visit traces by arm
		for ai, arm := range arms {
			for _, workers := range []int{1, 8} {
				for _, noInc := range []bool{false, true} {
					res := optimizeWorkload(t, name, pa.Options{
						Lexicographic: arm.lex, NoMultires: arm.nomr,
						Workers: workers, NoIncremental: noInc,
					})
					cfgName := fmt.Sprintf("%s/%s/w=%d/noinc=%v", name, arm.name, workers, noInc)
					if got := resultFingerprint(res); want == "" {
						want = got
					} else if got != want {
						t.Fatalf("%s: Result differs from reference", cfgName)
					}
					var vt []int
					for _, rs := range res.RoundStats {
						vt = append(vt, rs.Visits)
					}
					if visits[ai] == nil {
						visits[ai] = vt
					} else if fmt.Sprint(vt) != fmt.Sprint(visits[ai]) {
						t.Fatalf("%s: visit trace %v, want %v", cfgName, vt, visits[ai])
					}
				}
			}
		}
	}
}

// TestMultiresShaAB pins the multiresolution pass's headline property on
// the workload whose fixpoint always walks to completion: a byte-identical
// Result with never more fine-lattice visits than the plain
// benefit-directed walk. sha also exercises the budget-misprediction
// path: rounds whose lattice grows more than 2x over their completed
// predecessor truncate at the capped multires budget and fall back to
// plain (DESIGN.md §12), so discards are legal here — what the test
// pins is that each discarded prefix respects the 2x-previous-visits
// budget cap, i.e. mispredictions stay cheap. (rijndael's
// MaxPatterns-truncating rounds are covered for identity by
// TestBenefitDirectedMatrix and the order tests.)
func TestMultiresShaAB(t *testing.T) {
	if testing.Short() {
		t.Skip("full sha workload A/B; skipped with -short")
	}
	plain := optimizeWorkload(t, "sha", pa.Options{NoMultires: true})
	mr := optimizeWorkload(t, "sha", pa.Options{})
	if got, want := resultFingerprint(mr), resultFingerprint(plain); got != want {
		t.Fatalf("multires Result differs from plain benefit-directed reference\ngot:\n%s\nwant:\n%s", got, want)
	}
	plainV, mrV := totalVisits(t, plain, 100_000), totalVisits(t, mr, 100_000)
	coarse, discarded, prev := 0, 0, 0
	for _, rs := range mr.RoundStats {
		coarse += rs.CoarseVisits
		discarded += rs.MultiresDiscarded
		if rs.MultiresDiscarded != 0 {
			if prev == 0 {
				t.Errorf("round %d discarded a multires walk (%d visits) with no completed predecessor; the attempt gate should have skipped it", rs.Round, rs.MultiresDiscarded)
			} else if rs.MultiresDiscarded > 2*prev {
				t.Errorf("round %d discarded %d multires visits, above the 2x-previous-round budget cap (prev %d)", rs.Round, rs.MultiresDiscarded, prev)
			}
		}
		prev = rs.Visits
	}
	t.Logf("sha multires A/B: plain %d visits, multires %d fine + %d coarse + %d discarded visits (%.1f%%)",
		plainV, mrV, coarse, discarded, 100*float64(mrV)/float64(plainV))
	if mrV > plainV {
		t.Errorf("multires visited %d fine-lattice nodes vs plain %d; must never be worse", mrV, plainV)
	}
}
