package pa

import (
	"testing"
)

// TestSingleVsBatchedEquivalentSavings: the batched driver must land in
// the same ballpark as the paper's strict loop on a structured input
// (identical here, where candidates do not interact).
func TestSingleVsBatchedEquivalentSavings(t *testing.T) {
	single := Optimize(loadSrc(t, reorderSrc), &GraphMiner{Embedding: true}, Options{SingleExtract: true})
	batched := Optimize(loadSrc(t, reorderSrc), &GraphMiner{Embedding: true}, Options{})
	if single.Saved() != batched.Saved() {
		t.Errorf("single=%d batched=%d", single.Saved(), batched.Saved())
	}
	if batched.Rounds > single.Rounds {
		t.Errorf("batching used more rounds (%d) than single (%d)", batched.Rounds, single.Rounds)
	}
	c1, o1 := runProg(t, single.Program)
	c2, o2 := runProg(t, batched.Program)
	if c1 != c2 || o1 != o2 {
		t.Error("modes disagree on behaviour")
	}
}

// TestGreedyMISNeverBeatsExact on a program with overlapping embeddings.
func TestGreedyMISOption(t *testing.T) {
	exact := Optimize(loadSrc(t, reorderSrc), &GraphMiner{Embedding: true}, Options{})
	greedy := Optimize(loadSrc(t, reorderSrc), &GraphMiner{Embedding: true}, Options{GreedyMIS: true})
	if greedy.Saved() > exact.Saved() {
		t.Errorf("greedy MIS (%d) beat exact (%d)?", greedy.Saved(), exact.Saved())
	}
	// both must still be sound
	runProg(t, greedy.Program)
}

// TestMaxPatternsTruncationSound: even a tiny pattern budget must yield a
// correct (if less optimized) binary.
func TestMaxPatternsTruncationSound(t *testing.T) {
	res := Optimize(loadSrc(t, reorderSrc), &GraphMiner{Embedding: true}, Options{MaxPatterns: 10})
	wantCode, wantOut := runProg(t, loadSrc(t, reorderSrc))
	gotCode, gotOut := runProg(t, res.Program)
	if gotCode != wantCode || gotOut != wantOut {
		t.Error("truncated search broke the program")
	}
}
