package pa

import (
	"math/rand"
	"testing"

	"graphpa/internal/cfg"
)

// The scalar incumbent is the heart of the order-invariance argument:
// whatever order candidates arrive in, the final (best benefit, tie set)
// must come out the same SET — only then can the benefit-directed and
// lexicographic walks return identical merged lists.
func TestAdmitOrderInvariantTieSet(t *testing.T) {
	a := &Candidate{Benefit: 5}
	b := &Candidate{Benefit: 7}
	c := &Candidate{Benefit: 7}
	d := &Candidate{Benefit: 3}

	perms := [][]*Candidate{
		{a, b, c, d},
		{d, c, b, a},
		{b, d, a, c},
		{c, a, d, b},
	}
	for pi, perm := range perms {
		s := newSearch(8, false)
		for _, x := range perm {
			s.admit(x)
		}
		if s.bestBen != 7 {
			t.Fatalf("perm %d: incumbent %d, want 7", pi, s.bestBen)
		}
		if len(s.ties) != 2 {
			t.Fatalf("perm %d: %d ties, want 2", pi, len(s.ties))
		}
		seen := map[*Candidate]bool{}
		for _, x := range s.ties {
			seen[x] = true
		}
		if !seen[b] || !seen[c] {
			t.Fatalf("perm %d: tie set lost a maximum candidate", pi)
		}
	}

	// A candidate below the incumbent (possible only from a stale-threshold
	// build or a checkpoint replay) is dropped, not kept as a runner-up.
	s := newSearch(8, false)
	s.bestBen = 10
	s.admit(a)
	if len(s.ties) != 0 {
		t.Fatalf("sub-incumbent candidate admitted into the tie set")
	}
}

func testCand(benefit, size int, method Method, occs ...[2]int) *Candidate {
	c := &Candidate{Size: size, Method: method, Benefit: benefit}
	for _, o := range occs {
		blk := &cfg.Block{ID: o[0]}
		c.Occs = append(c.Occs, Occurrence{Block: blk, DFS: []int{o[1], o[1] + 1}})
	}
	return c
}

// candKey must separate every pair of distinct rewrites — equal keys are
// treated as interchangeable by the merge.
func TestCandKeyDistinguishesRewrites(t *testing.T) {
	base := testCand(5, 2, MethodCall, [2]int{1, 0}, [2]int{2, 0})
	variants := []*Candidate{
		testCand(5, 3, MethodCall, [2]int{1, 0}, [2]int{2, 0}),      // size
		testCand(5, 2, MethodCrossJump, [2]int{1, 0}, [2]int{2, 0}), // method
		testCand(5, 2, MethodCall, [2]int{1, 0}, [2]int{3, 0}),      // block
		testCand(5, 2, MethodCall, [2]int{1, 0}, [2]int{2, 4}),      // DFS indices
		testCand(5, 2, MethodCall, [2]int{1, 0}),                    // occurrence count
	}
	bk := candKey(base)
	for i, v := range variants {
		if candKey(v) == bk {
			t.Fatalf("variant %d collides with base key %q", i, bk)
		}
	}
	dup := testCand(9, 2, MethodCall, [2]int{1, 0}, [2]int{2, 0})
	if candKey(dup) != bk {
		t.Fatalf("same rewrite must key equal regardless of stored benefit")
	}
}

// mergeCandidates must return the same list for any permutation of its
// inputs, drop key duplicates, and respect the batch limit.
func TestMergeCandidatesDeterministic(t *testing.T) {
	mk := func() []*Candidate {
		return []*Candidate{
			testCand(7, 2, MethodCall, [2]int{1, 0}, [2]int{2, 0}),
			testCand(7, 2, MethodCall, [2]int{3, 0}, [2]int{4, 0}),
			testCand(5, 2, MethodCall, [2]int{5, 0}, [2]int{6, 0}),
			testCand(5, 2, MethodCall, [2]int{5, 0}, [2]int{6, 0}), // dup of previous
			testCand(3, 2, MethodCrossJump, [2]int{7, 0}, [2]int{8, 0}),
		}
	}
	ref := mergeCandidates(16, mk()[:2], mk()[2:])
	if len(ref) != 4 {
		t.Fatalf("dedupe failed: got %d candidates, want 4", len(ref))
	}
	refKeys := make([]string, len(ref))
	for i, c := range ref {
		refKeys[i] = candKey(c)
	}
	for i := 1; i < len(ref); i++ {
		if ref[i-1].Benefit < ref[i].Benefit {
			t.Fatalf("merge output not sorted by descending benefit")
		}
	}

	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		all := mk()
		r.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		cut := r.Intn(len(all) + 1)
		got := mergeCandidates(16, all[:cut], all[cut:])
		if len(got) != len(ref) {
			t.Fatalf("trial %d: %d candidates, want %d", trial, len(got), len(ref))
		}
		for i, c := range got {
			if candKey(c) != refKeys[i] || c.Benefit != ref[i].Benefit {
				t.Fatalf("trial %d: position %d differs from reference", trial, i)
			}
		}
	}

	if got := mergeCandidates(2, mk()[:2], mk()[2:]); len(got) != 2 {
		t.Fatalf("limit not enforced: kept %d", len(got))
	}
}
