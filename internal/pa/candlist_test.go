package pa

import "testing"

// The incumbent list's order is part of the mined output (the driver
// applies candidates in list order), so its tie-break is load-bearing:
// equal benefits must keep discovery order, or two runs of the same
// search would extract in different orders.
func TestCandListTieBreakEarlierDiscoveryWins(t *testing.T) {
	a := &Candidate{Benefit: 5}
	b := &Candidate{Benefit: 5}
	c := &Candidate{Benefit: 7}
	d := &Candidate{Benefit: 5}

	cl := candList{limit: 4}
	for _, x := range []*Candidate{a, b, c, d} {
		cl.add(x)
	}
	want := []*Candidate{c, a, b, d}
	if len(cl.cands) != len(want) {
		t.Fatalf("kept %d candidates, want %d", len(cl.cands), len(want))
	}
	for i, w := range want {
		if cl.cands[i] != w {
			t.Fatalf("cands[%d]: got benefit %d (wrong object), want the candidate added %dth",
				i, cl.cands[i].Benefit, i)
		}
	}

	// Over the limit, the weakest (and among equals, latest-discovered)
	// entry falls off the end.
	cl2 := candList{limit: 3}
	for _, x := range []*Candidate{a, b, c, d} {
		cl2.add(x)
	}
	want2 := []*Candidate{c, a, b}
	for i, w := range want2 {
		if cl2.cands[i] != w {
			t.Fatalf("limited cands[%d] is the wrong object", i)
		}
	}
	if len(cl2.cands) != 3 {
		t.Fatalf("limit not enforced: kept %d", len(cl2.cands))
	}

	// An equal-benefit candidate arriving later never displaces an
	// earlier one from a full list.
	e := &Candidate{Benefit: 7}
	cl2.add(e)
	if cl2.cands[0] != c || cl2.cands[1] != e {
		t.Fatalf("late equal-benefit candidate must sort after the earlier one")
	}
}
