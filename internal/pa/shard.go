package pa

import (
	"context"
	"math"
	"sync"
	"time"
)

// This file is the miner-side seam of the distributed lattice search.
// The pa layer knows nothing about transports: Options.Shards supplies
// a dialer, the walk ships its mining graphs and advisory bound state
// through it (mining.EncodeShardWalk), and each seed subtree's
// speculation is sourced through ShardWalk.Speculate instead of a local
// goroutine. The authoritative replay — and with it every byte of the
// Result — still runs here on the coordinator; a shard can only change
// how much replay-fallback work the walk does, exactly like a stale
// speculation policy. The HTTP implementation lives in
// internal/service (ShardPool); tests plug in-process fakes.

// ShardDialer opens distributed walks on a set of shard workers.
// Implementations must be safe for concurrent use.
type ShardDialer interface {
	// NewWalk opens one lattice walk on every reachable shard. req is an
	// opaque mining.EncodeShardWalk payload (graphs + advisory search
	// config). An error means no shard is reachable — the caller then
	// mines locally; partial failures are the walk's to absorb.
	NewWalk(ctx context.Context, req []byte) (ShardWalk, error)
	// NumShards is the configured shard count (for stats and sizing).
	NumShards() int
}

// ShardWalk is one open distributed walk.
type ShardWalk interface {
	// Speculate returns the recorded speculation subtree for one
	// canonical seed index, in the mining spec-tree wire form. The
	// implementation owns seed→shard assignment (consistent by canonical
	// seed order) and per-shard retry; an error degrades that seed to
	// local speculation.
	Speculate(ctx context.Context, seed int) ([]byte, error)
	// Broadcast pushes an improved incumbent floor to every live shard,
	// best-effort: a lost or reordered push costs wasted speculative
	// visits on the shard, never output.
	Broadcast(floor int)
	// Close releases the walk on every shard and returns its accounting.
	Close() ShardWalkStats
}

// ShardWalkStats is the accounting a closed walk reports.
type ShardWalkStats struct {
	// SpecVisits is the total speculative pattern visits the shards ran
	// for this walk — the honest distributed-overhead number (the
	// coordinator's own Visits only count the authoritative replay).
	SpecVisits int64
	// Broadcasts is the number of incumbent pushes actually sent.
	Broadcasts int
}

// gossipInterval paces incumbent broadcasts. Pushes are advisory and
// monotone, so the interval trades shard over-exploration against RPC
// chatter; it does not affect output.
const gossipInterval = 50 * time.Millisecond

// startGossip runs the incumbent-broadcast pump: every interval, if the
// coordinator's incumbent rose since the last push, send it to the
// shards. Returns the stop function (idempotent callers need not apply
// — the walk is closed right after).
func startGossip(walk ShardWalk, best func() int) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := math.MinInt
		t := time.NewTicker(gossipInterval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if b := best(); b > last {
					walk.Broadcast(b)
					last = b
				}
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}
