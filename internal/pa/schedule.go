package pa

import (
	"container/heap"

	"graphpa/internal/arm"
	"graphpa/internal/dfg"
)

// This file linearises blocks after extraction. Replacing a fragment by a
// single call contracts its nodes into one pseudo-node; the rewritten
// block is any topological order of the contracted dependence graph. The
// contraction is only legal when it stays acyclic — the paper's Fig. 9
// shows the illegal case, where a path leaves the fragment and re-enters
// it. We use a stable order (ties broken by original instruction index) so
// untouched code keeps its layout.

// intHeap is a min-heap of ints.
type intHeap []int

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// FragmentBody returns the fragment's instructions in a stable
// topological order of its internal dependences: the body of the new
// procedure (or merged tail).
func FragmentBody(g *dfg.Graph, nodes []int) []arm.Instr {
	inFrag := map[int]bool{}
	for _, n := range nodes {
		inFrag[n] = true
	}
	indeg := map[int]int{}
	for _, n := range nodes {
		for _, s := range g.Succs(n) {
			if inFrag[s] {
				indeg[s]++
			}
		}
	}
	h := &intHeap{}
	for _, n := range nodes {
		if indeg[n] == 0 {
			heap.Push(h, n)
		}
	}
	var out []arm.Instr
	for h.Len() > 0 {
		n := heap.Pop(h).(int)
		out = append(out, g.Block.Instrs[n])
		for _, s := range g.Succs(n) {
			if !inFrag[s] {
				continue
			}
			indeg[s]--
			if indeg[s] == 0 {
				heap.Push(h, s)
			}
		}
	}
	return out
}

// ScheduleContracted rewrites a block in which each fragment in frags is
// replaced by the corresponding call instruction. It returns the new
// instruction list and whether the (multi-)contraction is acyclic. Each
// frags[i] must be disjoint from the others.
func ScheduleContracted(g *dfg.Graph, frags [][]int, calls []arm.Instr) ([]arm.Instr, bool) {
	n := g.N()
	// group[v] = -1 for external nodes, else fragment index.
	group := make([]int, n)
	for i := range group {
		group[i] = -1
	}
	for fi, f := range frags {
		for _, v := range f {
			group[v] = fi
		}
	}
	// Contracted vertices: externals keep their index; fragment fi is
	// vertex n+fi with sort key min(frag).
	nv := n + len(frags)
	key := make([]int, nv)
	for v := 0; v < n; v++ {
		key[v] = v
	}
	for fi, f := range frags {
		min := f[0]
		for _, v := range f {
			if v < min {
				min = v
			}
		}
		key[n+fi] = min
	}
	cvert := func(v int) int {
		if group[v] >= 0 {
			return n + group[v]
		}
		return v
	}
	// Build contracted adjacency (dedup via map).
	succs := make([][]int, nv)
	indeg := make([]int, nv)
	seen := map[[2]int]bool{}
	for v := 0; v < n; v++ {
		for _, s := range g.Succs(v) {
			a, b := cvert(v), cvert(s)
			if a == b {
				continue
			}
			k := [2]int{a, b}
			if seen[k] {
				continue
			}
			seen[k] = true
			succs[a] = append(succs[a], b)
			indeg[b]++
		}
	}
	// Exclude contracted vertices that do not exist (external nodes that
	// are fragment members never appear as themselves).
	active := make([]bool, nv)
	for v := 0; v < n; v++ {
		if group[v] < 0 {
			active[v] = true
		}
	}
	for fi := range frags {
		active[n+fi] = true
	}
	total := 0
	for v := 0; v < nv; v++ {
		if active[v] {
			total++
		}
	}

	// Kahn with a stable priority: lowest original index first.
	h := &keyHeap{key: key}
	for v := 0; v < nv; v++ {
		if active[v] && indeg[v] == 0 {
			heap.Push(h, v)
		}
	}
	var out []arm.Instr
	emitted := 0
	for h.Len() > 0 {
		v := heap.Pop(h).(int)
		emitted++
		if v >= n {
			out = append(out, calls[v-n])
		} else {
			out = append(out, g.Block.Instrs[v])
		}
		for _, s := range succs[v] {
			indeg[s]--
			if indeg[s] == 0 {
				heap.Push(h, s)
			}
		}
	}
	if emitted != total {
		return nil, false // cycle: the contraction is illegal (Fig. 9)
	}
	return out, true
}

// keyHeap pops the vertex with the smallest key.
type keyHeap struct {
	items []int
	key   []int
}

func (h keyHeap) Len() int           { return len(h.items) }
func (h keyHeap) Less(i, j int) bool { return h.key[h.items[i]] < h.key[h.items[j]] }
func (h keyHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *keyHeap) Push(x interface{}) {
	h.items = append(h.items, x.(int))
}
func (h *keyHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// ScheduleSuffix rewrites a block so that the fragment forms a contiguous
// suffix: it returns the surviving prefix (external instructions in stable
// topological order) — the fragment body follows via FragmentBody. The
// caller must have verified crossJumpExtractable.
func ScheduleSuffix(g *dfg.Graph, nodes []int) []arm.Instr {
	inFrag := map[int]bool{}
	for _, n := range nodes {
		inFrag[n] = true
	}
	indeg := map[int]int{}
	for v := 0; v < g.N(); v++ {
		if inFrag[v] {
			continue
		}
		for _, s := range g.Succs(v) {
			if !inFrag[s] {
				indeg[s]++
			}
		}
	}
	h := &intHeap{}
	for v := 0; v < g.N(); v++ {
		if !inFrag[v] && indeg[v] == 0 {
			heap.Push(h, v)
		}
	}
	var out []arm.Instr
	for h.Len() > 0 {
		v := heap.Pop(h).(int)
		out = append(out, g.Block.Instrs[v])
		for _, s := range g.Succs(v) {
			if inFrag[s] {
				continue
			}
			indeg[s]--
			if indeg[s] == 0 {
				heap.Push(h, s)
			}
		}
	}
	return out
}
