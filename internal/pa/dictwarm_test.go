package pa

import (
	"bytes"
	"path/filepath"
	"testing"

	"graphpa/internal/dict"
	"graphpa/internal/loader"
)

func imageBytes(t *testing.T, prog *loader.Program) []byte {
	t.Helper()
	img, err := prog.Relink()
	if err != nil {
		t.Fatalf("relink: %v", err)
	}
	return img.Encode()
}

func totalVisits(r *Result) int {
	n := 0
	for i := range r.RoundStats {
		n += r.RoundStats[i].Visits
	}
	return n
}

func totalDiscarded(r *Result) int {
	n := 0
	for i := range r.RoundStats {
		n += r.RoundStats[i].DictDiscarded
	}
	return n
}

// The core dictionary contract: a pre-populated dictionary makes the run
// cheaper (fewer lattice visits), never different. The warm image must be
// byte-identical to the cold one.
func TestDictWarmstartByteIdentical(t *testing.T) {
	cold := Optimize(loadSrc(t, reorderSrc), &GraphMiner{Embedding: true}, Options{})
	coldImg := imageBytes(t, cold.Program)
	if cold.Saved() <= 0 {
		t.Fatalf("fixture saves nothing; the test would be vacuous")
	}

	d, err := dict.Open(dict.Options{Path: filepath.Join(t.TempDir(), "frag.dict")})
	if err != nil {
		t.Fatalf("dict.Open: %v", err)
	}
	defer d.Close()

	// First warm run: empty dictionary. Identical by construction (no
	// fragments, no floor) — and it must publish what it mined.
	warm1 := Optimize(loadSrc(t, reorderSrc), &GraphMiner{Embedding: true}, Options{Warmstart: d})
	if !bytes.Equal(imageBytes(t, warm1.Program), coldImg) {
		t.Fatalf("empty-dictionary run diverged from cold run")
	}
	if warm1.DictHits() != 0 {
		t.Fatalf("empty dictionary reported %d hits", warm1.DictHits())
	}
	if d.Len() == 0 {
		t.Fatalf("run published nothing to the dictionary")
	}

	// Second warm run: the dictionary now holds this program's fragments.
	warm2 := Optimize(loadSrc(t, reorderSrc), &GraphMiner{Embedding: true}, Options{Warmstart: d})
	if !bytes.Equal(imageBytes(t, warm2.Program), coldImg) {
		t.Fatalf("warm run diverged from cold run")
	}
	if warm2.Saved() != cold.Saved() || len(warm2.Extractions) != len(cold.Extractions) {
		t.Fatalf("warm stats diverged: saved %d/%d, extractions %d/%d",
			warm2.Saved(), cold.Saved(), len(warm2.Extractions), len(cold.Extractions))
	}
	if warm2.DictHits() == 0 {
		t.Fatalf("populated dictionary produced no hits")
	}
	if tw, tc := totalVisits(warm2), totalVisits(cold); tw > tc {
		t.Fatalf("warm run visited more than cold: %d > %d", tw, tc)
	}
	if totalDiscarded(warm2) != 0 {
		t.Fatalf("uncapped warm run discarded a walk: %d", totalDiscarded(warm2))
	}
}

// When the pattern budget truncates the warm walk, the dictionary floor
// is unverifiable and the whole walk must be discarded: the round
// re-mines cold, and the capped warm result stays byte-identical to the
// capped cold result.
func TestDictWarmstartTruncationFallback(t *testing.T) {
	d, err := dict.Open(dict.Options{Path: filepath.Join(t.TempDir(), "frag.dict")})
	if err != nil {
		t.Fatalf("dict.Open: %v", err)
	}
	defer d.Close()
	// Populate from an uncapped run.
	Optimize(loadSrc(t, reorderSrc), &GraphMiner{Embedding: true}, Options{Warmstart: d})
	if d.Len() == 0 {
		t.Fatalf("seeding run published nothing")
	}

	const budget = 3
	cold := Optimize(loadSrc(t, reorderSrc), &GraphMiner{Embedding: true}, Options{MaxPatterns: budget})
	warm := Optimize(loadSrc(t, reorderSrc), &GraphMiner{Embedding: true},
		Options{MaxPatterns: budget, Warmstart: d})
	if !bytes.Equal(imageBytes(t, warm.Program), imageBytes(t, cold.Program)) {
		t.Fatalf("capped warm run diverged from capped cold run")
	}
	if totalVisits(warm) != totalVisits(cold) {
		t.Fatalf("fallback should replay the cold walk exactly: %d visits vs %d",
			totalVisits(warm), totalVisits(cold))
	}
	if warm.DictHits() == 0 {
		t.Fatalf("dictionary fragments did not revalidate")
	}
	if totalDiscarded(warm) == 0 {
		t.Fatalf("truncated warm walk was not discarded")
	}
}
