package pa

import (
	"strings"
	"testing"

	"graphpa/internal/arm"
	"graphpa/internal/asm"
	"graphpa/internal/cfg"
	"graphpa/internal/dfg"
	"graphpa/internal/emu"
	"graphpa/internal/link"
	"graphpa/internal/loader"
)

func loadSrc(t *testing.T, src string) *loader.Program {
	t.Helper()
	u, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Link(u)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := loader.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func runProg(t *testing.T, prog *loader.Program) (int32, string) {
	t.Helper()
	img, err := prog.Relink()
	if err != nil {
		t.Fatalf("relink: %v\n%s", err, prog.String())
	}
	m := emu.New(img, nil)
	code, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, prog.String())
	}
	return code, m.Stdout.String()
}

func TestBenefitModel(t *testing.T) {
	// k=3 fragment, 2 occurrences: 2*2 - 4 = 0 (the paper's running
	// example is size-neutral, Fig. 4: 3+4=7 instructions).
	if CallBenefit(3, 2) != 0 {
		t.Errorf("CallBenefit(3,2) = %d", CallBenefit(3, 2))
	}
	if CallBenefit(3, 3) != 2 {
		t.Errorf("CallBenefit(3,3) = %d", CallBenefit(3, 3))
	}
	// SFX on the running example: k=2, m=2 -> 5+3=8 > 7, i.e. negative.
	if CallBenefit(2, 2) != -1 {
		t.Errorf("CallBenefit(2,2) = %d", CallBenefit(2, 2))
	}
	if CrossJumpBenefit(4, 3) != 6 {
		t.Errorf("CrossJumpBenefit(4,3) = %d", CrossJumpBenefit(4, 3))
	}
	if CrossJumpBenefit(4, 1) != 0 {
		t.Errorf("CrossJumpBenefit(4,1) = %d", CrossJumpBenefit(4, 1))
	}
}

// reorderSrc: a connected fragment of three instructions (eor and the
// second add both hang off the first add) appears three times, once with
// its two independent consumers reordered — the paper's motivating case.
// Only graph-based PA can unify all three occurrences.
const reorderSrc = `
_start:
	bl main
	swi 0
main:
	push {r4, lr}
	mov r0, #1
	mov r1, #2
	mov r2, #3
	add r0, r0, r1
	eor r1, r0, #7
	add r2, r2, r0
	b b2
b2:
	add r0, r0, r1
	add r2, r2, r0
	eor r1, r0, #7
	b b3
b3:
	add r0, r0, r1
	eor r1, r0, #7
	add r2, r2, r0
	add r0, r0, r2
	pop {r4, pc}
`

func TestOptimizeEdgarReordered(t *testing.T) {
	prog := loadSrc(t, reorderSrc)
	wantCode, wantOut := runProg(t, prog)

	res := Optimize(prog, &GraphMiner{Embedding: true}, Options{})
	if res.Saved() <= 0 {
		t.Fatalf("Edgar saved %d instructions, want > 0\n%s", res.Saved(), res.Program.String())
	}
	gotCode, gotOut := runProg(t, res.Program)
	if gotCode != wantCode || gotOut != wantOut {
		t.Errorf("behaviour changed: exit %d->%d out %q->%q", wantCode, gotCode, wantOut, gotOut)
	}
	// The three-instruction fragment occurs three times: outlining saves
	// 3*2 - 4 = 2.
	if res.Saved() < 2 {
		t.Errorf("Edgar saved %d, want >= 2", res.Saved())
	}
	if len(res.Extractions) == 0 || res.Extractions[0].Method != MethodCall {
		t.Errorf("expected a call extraction, got %+v", res.Extractions)
	}
	// A new procedure must exist.
	found := false
	for _, fn := range res.Program.Funcs {
		if strings.HasPrefix(fn.Name, "__pa") {
			found = true
		}
	}
	if !found {
		t.Error("no outlined procedure in optimized program")
	}
}

func TestSFXBlindToReordering(t *testing.T) {
	prog := loadSrc(t, reorderSrc)
	// The reordered occurrence breaks the textual repeat: only two
	// identical sequences remain, and k=3, m=2 has zero benefit. SFX
	// must find nothing (this is Table 1's gap in miniature).
	res := Optimize(prog, &sfxStub{}, Options{})
	_ = res
}

// sfxStub avoids an import cycle in this white-box test; the real SFX
// miner lives in internal/sfx and is exercised in integration tests.
type sfxStub struct{}

func (s *sfxStub) Name() string { return "stub" }
func (s *sfxStub) FindCandidates(view *cfg.Program, graphs []*dfg.Graph, opts Options) []*Candidate {
	return nil
}

func TestOptimizeDgSpanMissesSameBlockRepeats(t *testing.T) {
	// A 4-instruction fragment repeated twice inside ONE block: Edgar
	// counts 2 embeddings (benefit 1), DgSpan counts 1 graph and must
	// leave the program alone.
	src := `
_start:
	bl main
	swi 0
main:
	push {r4, lr}
	mov r0, #1
	mov r1, #2
	add r0, r0, r1
	eor r2, r0, #7
	add r0, r0, r2
	eor r2, r0, #11
	add r0, r0, r1
	eor r2, r0, #7
	add r0, r0, r2
	eor r2, r0, #11
	pop {r4, pc}
`
	prog := loadSrc(t, src)
	wantCode, wantOut := runProg(t, prog)

	dg := Optimize(prog, &GraphMiner{Embedding: false}, Options{})
	if dg.Saved() != 0 {
		t.Errorf("DgSpan saved %d in single-block repeats, want 0", dg.Saved())
	}
	ed := Optimize(prog, &GraphMiner{Embedding: true}, Options{})
	if ed.Saved() < 1 {
		t.Errorf("Edgar saved %d, want >= 1\n%s", ed.Saved(), ed.Program.String())
	}
	gotCode, gotOut := runProg(t, ed.Program)
	if gotCode != wantCode || gotOut != wantOut {
		t.Errorf("behaviour changed: exit %d->%d out %q->%q", wantCode, gotCode, wantOut, gotOut)
	}
}

func TestCrossJumpExtraction(t *testing.T) {
	// Three functions with identical four-instruction tails (including
	// the return): tail merging keeps one copy.
	src := `
_start:
	bl f1
	mov r4, r0
	bl f2
	add r4, r4, r0
	bl f3
	add r0, r4, r0
	swi 0
f1:
	push {r4, lr}
	mov r0, #1
	add r0, r0, #5
	eor r0, r0, #3
	sub r0, r0, #1
	pop {r4, pc}
f2:
	push {r4, lr}
	mov r0, #2
	add r0, r0, #5
	eor r0, r0, #3
	sub r0, r0, #1
	pop {r4, pc}
f3:
	push {r4, lr}
	mov r0, #3
	add r0, r0, #5
	eor r0, r0, #3
	sub r0, r0, #1
	pop {r4, pc}
`
	prog := loadSrc(t, src)
	wantCode, wantOut := runProg(t, prog)

	res := Optimize(prog, &GraphMiner{Embedding: true}, Options{})
	if res.CrossJumps() == 0 {
		t.Fatalf("expected a cross-jump extraction; got %+v\n%s", res.Extractions, res.Program.String())
	}
	gotCode, gotOut := runProg(t, res.Program)
	if gotCode != wantCode || gotOut != wantOut {
		t.Errorf("behaviour changed: exit %d->%d out %q->%q", wantCode, gotCode, wantOut, gotOut)
	}
	// Tail of 4 instructions, 3 occurrences -> 2*(4-1) = 6 saved by the
	// merge alone.
	if res.Saved() < 6 {
		t.Errorf("saved %d, want >= 6", res.Saved())
	}
}

func TestNoCallExtractionWithoutLRSave(t *testing.T) {
	// _start does not save lr: outlining into it would clobber the only
	// return path. The repeated fragment must not be call-extracted from
	// _start's block.
	src := `
_start:
	mov r0, #1
	mov r1, #2
	add r0, r0, r1
	eor r1, r0, #7
	add r0, r0, r1
	eor r1, r0, #7
	add r0, r0, r1
	eor r1, r0, #7
	add r0, r0, r1
	eor r1, r0, #7
	swi 0
`
	prog := loadSrc(t, src)
	wantCode, wantOut := runProg(t, prog)
	res := Optimize(prog, &GraphMiner{Embedding: true}, Options{})
	if res.Saved() != 0 {
		t.Errorf("saved %d from non-lr-saved function, want 0\n%s", res.Saved(), res.Program.String())
	}
	gotCode, gotOut := runProg(t, res.Program)
	if gotCode != wantCode || gotOut != wantOut {
		t.Error("behaviour changed")
	}
}

func TestConvexityRejection(t *testing.T) {
	// Fig. 9: fragment {ldr(0), add(2)} with an external instruction on
	// a path 0 -> 1 -> 2 cannot be outlined: contraction is cyclic.
	b := &cfg.Block{Fn: &cfg.Func{Name: "f", LRSaved: true}}
	for _, s := range []string{
		"ldr r3, [r1]",   // 0
		"sub r2, r2, r3", // 1 external, reads r3, writes r2
		"add r4, r2, #4", // 2 reads r2
	} {
		u, err := asm.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		b.Instrs = append(b.Instrs, u.Text...)
	}
	g := dfg.Build(b, nil)
	bl := arm.NewInstr(arm.BL)
	bl.Target = "x"
	if _, ok := ScheduleContracted(g, [][]int{{0, 2}}, []arm.Instr{bl}); ok {
		t.Error("cyclic contraction must be rejected")
	}
	if _, ok := ScheduleContracted(g, [][]int{{0, 1}}, []arm.Instr{bl}); !ok {
		t.Error("convex fragment must be schedulable")
	}
}

func TestScheduleContractedStableOrder(t *testing.T) {
	b := &cfg.Block{Fn: &cfg.Func{Name: "f", LRSaved: true}}
	for _, s := range []string{
		"mov r0, #1", // 0 independent
		"mov r1, #2", // 1 fragment
		"mov r2, #3", // 2 fragment
		"mov r3, #4", // 3 independent
	} {
		u, _ := asm.Parse(s)
		b.Instrs = append(b.Instrs, u.Text...)
	}
	g := dfg.Build(b, nil)
	bl := arm.NewInstr(arm.BL)
	bl.Target = "f1"
	out, ok := ScheduleContracted(g, [][]int{{1, 2}}, []arm.Instr{bl})
	if !ok {
		t.Fatal("schedule failed")
	}
	got := make([]string, len(out))
	for i := range out {
		got[i] = out[i].String()
	}
	want := []string{"mov r0, #1", "bl f1", "mov r3, #4"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("schedule = %v, want %v", got, want)
	}
}

func TestFragmentBodyRespectsDeps(t *testing.T) {
	b := &cfg.Block{Fn: &cfg.Func{Name: "f", LRSaved: true}}
	for _, s := range []string{
		"mov r1, #2",
		"add r0, r1, #1",
		"eor r2, r0, r1",
	} {
		u, _ := asm.Parse(s)
		b.Instrs = append(b.Instrs, u.Text...)
	}
	g := dfg.Build(b, nil)
	body := FragmentBody(g, []int{0, 1, 2})
	if len(body) != 3 || body[0].String() != "mov r1, #2" || body[2].String() != "eor r2, r0, r1" {
		t.Errorf("body order wrong: %v", body)
	}
}

func TestInducedSignatureDistinguishesExtraDeps(t *testing.T) {
	mkBlock := func(lines ...string) *dfg.Graph {
		b := &cfg.Block{Fn: &cfg.Func{Name: "f", LRSaved: true}}
		for _, s := range lines {
			u, err := asm.Parse(s)
			if err != nil {
				t.Fatal(err)
			}
			b.Instrs = append(b.Instrs, u.Text...)
		}
		return dfg.Build(b, nil)
	}
	// Same two instructions; in g2 an extra WAR (mov r1 after add reads
	// r1) exists... construct: pattern nodes {add r0,r0,r1; mov r1,#0}.
	g1 := mkBlock("add r0, r0, r1", "mov r1, #0") // add before mov: WAR r1
	g2 := mkBlock("mov r1, #0", "add r0, r0, r1") // mov before add: RAW r1
	o1 := Occurrence{Block: g1.Block, Graph: g1, Nodes: []int{0, 1}, DFS: []int{0, 1}}
	o2 := Occurrence{Block: g2.Block, Graph: g2, Nodes: []int{0, 1}, DFS: []int{1, 0}}
	if o1.InducedSignature() == o2.InducedSignature() {
		t.Error("signatures must differ: the internal orders are incompatible")
	}
}

func TestCallSafe(t *testing.T) {
	load := loadSrc(t, `
_start:
	bl good
	bl leaf
	swi 0
good:
	push {r4, lr}
	add r0, r0, #1
	pop {r4, pc}
leaf:
	add r0, r0, #2
	bx lr
`)
	view := cfg.Build(load)
	byName := map[string]*cfg.Func{}
	for _, f := range view.Funcs {
		byName[f.Name] = f
	}
	if !CallSafe(byName["good"]) {
		t.Error("lr-saving function must be call safe")
	}
	if CallSafe(byName["leaf"]) {
		t.Error("leaf without lr save must not be call safe")
	}
	if CallSafe(byName["_start"]) {
		t.Error("_start must not be call safe")
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	a := Optimize(loadSrc(t, reorderSrc), &GraphMiner{Embedding: true}, Options{})
	b := Optimize(loadSrc(t, reorderSrc), &GraphMiner{Embedding: true}, Options{})
	if a.Program.String() != b.Program.String() {
		t.Error("optimization is not deterministic")
	}
	if a.Saved() != b.Saved() || a.Rounds != b.Rounds {
		t.Errorf("results differ: %d/%d vs %d/%d", a.Saved(), a.Rounds, b.Saved(), b.Rounds)
	}
}

func TestOptimizeMaxRounds(t *testing.T) {
	res := Optimize(loadSrc(t, reorderSrc), &GraphMiner{Embedding: true}, Options{MaxRounds: 0})
	full := res.Rounds
	if full == 0 {
		t.Skip("nothing extracted")
	}
	res1 := Optimize(loadSrc(t, reorderSrc), &GraphMiner{Embedding: true}, Options{MaxRounds: 1})
	if res1.Rounds != 1 {
		t.Errorf("MaxRounds=1 ran %d rounds", res1.Rounds)
	}
}

func TestLiteralLoadsOutlined(t *testing.T) {
	// Fragments containing position-independent literal loads are
	// movable (the point of the loader's label reconstruction).
	src := `
_start:
	bl main
	swi 0
main:
	push {r4, lr}
	ldr r1, =tbl
	ldr r2, =70000
	add r0, r1, r2
	b m2
m2:
	ldr r1, =tbl
	ldr r2, =70000
	add r0, r1, r2
	b m3
m3:
	ldr r1, =tbl
	ldr r2, =70000
	add r0, r1, r2
	sub r0, r0, r1
	pop {r4, pc}
	.pool
.data
tbl:
	.word 5
`
	prog := loadSrc(t, src)
	wantCode, wantOut := runProg(t, prog)
	res := Optimize(prog, &GraphMiner{Embedding: true}, Options{})
	if res.Saved() < 2 {
		t.Fatalf("saved %d, want >= 2\n%s", res.Saved(), res.Program.String())
	}
	gotCode, gotOut := runProg(t, res.Program)
	if gotCode != wantCode || gotOut != wantOut {
		t.Errorf("behaviour changed: exit %d->%d", wantCode, gotCode)
	}
}
