// Package pa is the procedural-abstraction engine: it scores mined
// fragments, checks that embeddings are extractable (the paper's §3.5
// plausibility checks), rewrites blocks — outlining into new procedures or
// cross-jumping to merged tails (§2.1 phase 8) — and drives the
// mine/extract loop to a fixed point.
package pa

import (
	"fmt"
	"sort"
	"strings"

	"graphpa/internal/arm"
	"graphpa/internal/cfg"
	"graphpa/internal/dfg"
)

// Method is an extraction mechanism (paper Fig. 12).
type Method uint8

// Extraction mechanisms.
const (
	MethodCall      Method = iota // outline into a procedure, reach it with bl
	MethodCrossJump               // merge tails, reach the survivor with b
)

func (m Method) String() string {
	if m == MethodCall {
		return "call"
	}
	return "crossjump"
}

// Occurrence is one extractable embedding of a fragment: a set of
// instruction indices inside one block. DFS holds the pattern-coordinate
// mapping (DFS index -> instruction index) when the occurrence came from
// the graph miner; for contiguous sequences (SFX) it equals Nodes.
type Occurrence struct {
	Block *cfg.Block
	Graph *dfg.Graph
	Nodes []int // sorted instruction indices
	DFS   []int // pattern coordinates
}

// InducedSignature renders the occurrence's full induced dependence
// structure in pattern coordinates: per-index instruction text plus every
// dependence edge between occurrence nodes (not only the mined pattern
// edges). Embeddings of one pattern are interchangeable — may share one
// outlined body — exactly when their signatures are equal: gSpan matches
// subgraphs, not induced subgraphs, so an embedding can carry extra
// internal anti/output dependences that constrain its legal orders.
func (o *Occurrence) InducedSignature() string {
	pos := make(map[int]int, len(o.DFS)) // instruction index -> dfs index
	for di, n := range o.DFS {
		pos[n] = di
	}
	var b strings.Builder
	for _, n := range o.DFS {
		b.WriteString(o.Graph.Block.Instrs[n].String())
		b.WriteByte('\n')
	}
	type sigEdge struct {
		i, j int
		kind dfg.DepKind
		reg  arm.Reg
	}
	var edges []sigEdge
	for _, e := range o.Graph.Edges {
		di, ok1 := pos[e.From]
		dj, ok2 := pos[e.To]
		if ok1 && ok2 {
			edges = append(edges, sigEdge{di, dj, e.Kind, e.Reg})
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].i != edges[b].i {
			return edges[a].i < edges[b].i
		}
		if edges[a].j != edges[b].j {
			return edges[a].j < edges[b].j
		}
		if edges[a].kind != edges[b].kind {
			return edges[a].kind < edges[b].kind
		}
		return edges[a].reg < edges[b].reg
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "%d>%d:%d:%d\n", e.i, e.j, e.kind, e.reg)
	}
	return b.String()
}

// Candidate is a fragment chosen for extraction with all the occurrences
// that will be rewritten.
type Candidate struct {
	Size    int // instructions per occurrence
	Occs    []Occurrence
	Method  Method
	Benefit int // net instructions saved
}

// CallBenefit is the net saving of outlining a fragment of k instructions
// occurring m times: every occurrence shrinks to one bl (m·(k−1)) and the
// new procedure costs its k instructions plus a return.
func CallBenefit(k, m int) int { return m*(k-1) - (k + 1) }

// CrossJumpBenefit is the net saving of tail-merging: one occurrence
// survives, the other m−1 shrink to one b each.
func CrossJumpBenefit(k, m int) int { return (m - 1) * (k - 1) }

// sortedNodes returns a sorted copy.
func sortedNodes(nodes []int) []int {
	out := append([]int(nil), nodes...)
	sort.Ints(out)
	return out
}

// containsTerminator reports whether the node set includes the block's
// terminator instruction AND that terminator transfers control
// unconditionally. Only unconditional tails may be merged (paper §2.1
// phase 8: "ends with an unconditional return statement or a branch
// instruction"): a conditional terminator falls through, and rerouting
// its fall-through to the merge keeper's successor would change the
// program.
func containsTerminator(g *dfg.Graph, nodes []int) bool {
	term := g.Block.Terminator()
	if term == nil || !term.IsTerminator() {
		return false
	}
	last := len(g.Block.Instrs) - 1
	for _, n := range nodes {
		if n == last {
			return true
		}
	}
	return false
}

// CallSafe reports whether a function may receive outlined calls: its
// prologue must save lr (making lr dead in the body) and nothing in the
// body may observe lr. Generated PA procedures and hand-written leaves
// fail this and only participate in cross-jumping.
func CallSafe(fn *cfg.Func) bool {
	if !fn.LRSaved {
		return false
	}
	first := true
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if first {
				first = false
				continue // the recognised prologue push {.., lr}
			}
			e := arm.EffectsOf(in)
			if in.Op != arm.BL && e.Reads.Has(arm.LR) {
				return false
			}
			if in.Op == arm.POP && in.Reglist&(1<<arm.LR) != 0 {
				return false
			}
		}
	}
	return true
}

// CallOK reports whether the embedding may be outlined as a call (see
// callExtractable); exported for the sequence baseline, which shares this
// back end.
func CallOK(g *dfg.Graph, nodes []int) bool {
	return callExtractable(g, nodes, callSafeCache{})
}

// CrossJumpOK reports whether the embedding may be tail-merged (see
// crossJumpExtractable).
func CrossJumpOK(g *dfg.Graph, nodes []int) bool { return crossJumpExtractable(g, nodes) }

// callSafeCache memoises CallSafe per function within one mining round.
type callSafeCache map[*cfg.Func]bool

func (c callSafeCache) get(fn *cfg.Func) bool {
	if v, ok := c[fn]; ok {
		return v
	}
	v := CallSafe(fn)
	c[fn] = v
	return v
}

// callExtractable reports whether one embedding can be outlined as a
// procedure call: every instruction movable, the owning function call
// safe, and no terminator included. Scheduling feasibility (acyclic
// contraction) is checked separately when occurrences are combined.
func callExtractable(g *dfg.Graph, nodes []int, safe callSafeCache) bool {
	if containsTerminator(g, nodes) {
		return false
	}
	if !safe.get(g.Block.Fn) {
		return false
	}
	for _, n := range nodes {
		if !arm.Abstractable(&g.Block.Instrs[n]) {
			return false
		}
	}
	return true
}

// crossJumpExtractable reports whether one embedding can be tail-merged:
// it must include the block terminator and be schedulable as a suffix
// (no dependence from the fragment to a surviving instruction).
func crossJumpExtractable(g *dfg.Graph, nodes []int) bool {
	if !containsTerminator(g, nodes) {
		return false
	}
	inFrag := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		inFrag[n] = true
	}
	for _, n := range nodes {
		for _, s := range g.Succs(n) {
			if !inFrag[s] {
				return false
			}
		}
		// A fragment instruction that reads pc or writes pc other than
		// the terminator cannot exist mid-block by construction.
	}
	return true
}

// convexOK is the fast single-fragment convexity check (paper Fig. 9):
// contracting nodes into one call must not create a cycle, i.e. no path
// may leave the fragment and re-enter it. Cheaper than a full trial
// schedule; used for the common one-occurrence-per-block case.
func convexOK(g *dfg.Graph, nodes []int) bool {
	n := g.N()
	inFrag := make([]bool, n)
	for _, v := range nodes {
		inFrag[v] = true
	}
	// DFS from every external successor of the fragment, walking only
	// external nodes; reaching a node with an edge back into the fragment
	// means a cycle.
	visited := make([]bool, n)
	var stack []int
	for _, v := range nodes {
		for _, s := range g.Succs(v) {
			if !inFrag[s] && !visited[s] {
				visited[s] = true
				stack = append(stack, s)
			}
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Succs(v) {
			if inFrag[s] {
				return false
			}
			if !visited[s] {
				visited[s] = true
				stack = append(stack, s)
			}
		}
	}
	return true
}
