package pa

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"graphpa/internal/cfg"
	"graphpa/internal/dfg"
)

// dupHeavySrc builds an assembly program with n near-identical
// reordered arithmetic blocks — a dense frequent-fragment lattice for
// the cancellation tests.
func dupHeavySrc(n int) string {
	var b strings.Builder
	b.WriteString("_start:\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\tbl f%d\n", i)
	}
	b.WriteString("\tmov r0, #0\n\tswi 0\n")
	for i := 0; i < n; i++ {
		// Same dependence structure in every function, with the two
		// independent chains interleaved differently per parity so the
		// duplication is reordered, not textual.
		fmt.Fprintf(&b, "f%d:\n", i)
		if i%2 == 0 {
			b.WriteString("\tadd r1, r1, #1\n\teor r2, r2, r1\n\tadd r3, r3, #2\n\teor r4, r4, r3\n")
		} else {
			b.WriteString("\tadd r3, r3, #2\n\tadd r1, r1, #1\n\teor r4, r4, r3\n\teor r2, r2, r1\n")
		}
		b.WriteString("\tadd r5, r5, r2\n\tadd r6, r6, r4\n\teor r7, r5, r6\n\tmov pc, lr\n")
	}
	return b.String()
}

func TestOptimizeContextCancelledBeforeStart(t *testing.T) {
	prog := loadSrc(t, dupHeavySrc(4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := OptimizeContext(ctx, prog, &GraphMiner{Embedding: true}, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a partial Result")
	}
}

// blockingMiner parks inside FindCandidates until the run's context is
// cancelled, then returns a truncated candidate list — modelling a miner
// caught mid-search. The driver must discard it and report the
// cancellation, never apply it.
type blockingMiner struct {
	started chan struct{}
	junk    []*Candidate
}

func (m *blockingMiner) Name() string { return "blocking" }

func (m *blockingMiner) FindCandidates(view *cfg.Program, graphs []*dfg.Graph, opts Options) []*Candidate {
	close(m.started)
	<-opts.Context().Done()
	return m.junk
}

func TestOptimizeContextCancelMidMine(t *testing.T) {
	prog := loadSrc(t, dupHeavySrc(4))
	ctx, cancel := context.WithCancel(context.Background())
	m := &blockingMiner{started: make(chan struct{})}
	go func() {
		<-m.started
		cancel()
	}()
	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		res, err = OptimizeContext(ctx, prog, m, Options{})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not abort the mining round")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a partial Result")
	}
}

// TestFindCandidatesCollapsesWhenCancelled: a cancelled context turns the
// graph miner's pruning policy into "cut everything", so the lattice walk
// degenerates to (at most) its sequence seeds instead of running on.
func TestFindCandidatesCollapsesWhenCancelled(t *testing.T) {
	prog := loadSrc(t, dupHeavySrc(24))
	view := cfg.Build(prog)
	summaries := CallSummaries(view)
	graphs := make([]*dfg.Graph, len(view.Blocks))
	for i, b := range view.Blocks {
		graphs[i] = dfg.Build(b, summaries)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := Options{MaxPatterns: 100_000_000, MaxNodes: 12, ctx: ctx}
	done := make(chan struct{})
	go func() {
		(&GraphMiner{Embedding: true}).FindCandidates(view, graphs, opts)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled FindCandidates kept mining")
	}
}

// TestOptimizeIdenticalWithBackgroundContext pins the refactor: plain
// Optimize and OptimizeContext(Background) are the same computation.
func TestOptimizeIdenticalWithBackgroundContext(t *testing.T) {
	progA := loadSrc(t, dupHeavySrc(6))
	progB := loadSrc(t, dupHeavySrc(6))
	a := Optimize(progA, &GraphMiner{Embedding: true}, Options{})
	b, err := OptimizeContext(context.Background(), progB, &GraphMiner{Embedding: true}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Before != b.Before || a.After != b.After || a.Rounds != b.Rounds ||
		len(a.Extractions) != len(b.Extractions) {
		t.Fatalf("diverged: %+v vs %+v", a, b)
	}
	for i := range a.Extractions {
		if a.Extractions[i] != b.Extractions[i] {
			t.Fatalf("extraction %d diverged: %+v vs %+v", i, a.Extractions[i], b.Extractions[i])
		}
	}
}
