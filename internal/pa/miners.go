package pa

import (
	"sort"
	"strings"
	"sync"

	"graphpa/internal/arm"
	"graphpa/internal/cfg"
	"graphpa/internal/dfg"
	"graphpa/internal/mining"
)

// Miner finds extractable fragments of the current program view, best
// first. Implementations: GraphMiner (DgSpan/Edgar) here, and the
// suffix-trie baseline in internal/sfx.
type Miner interface {
	Name() string
	// FindCandidates returns profitable candidates ordered by descending
	// benefit. The first entry is guaranteed to be a best candidate; the
	// rest are good runners-up the driver may also apply in the same
	// round when their blocks do not conflict.
	FindCandidates(view *cfg.Program, graphs []*dfg.Graph, opts Options) []*Candidate
}

// candList keeps the best candidates seen, ordered by descending benefit
// (ties: earlier discovery wins, keeping runs deterministic).
type candList struct {
	cands []*Candidate
	limit int
}

func (cl *candList) best() *Candidate {
	if len(cl.cands) == 0 {
		return nil
	}
	return cl.cands[0]
}

func (cl *candList) add(c *Candidate) {
	// First index whose benefit is strictly below c's: equal-benefit
	// entries sort before c, so earlier discovery wins ties.
	pos := sort.Search(len(cl.cands), func(i int) bool { return cl.cands[i].Benefit < c.Benefit })
	cl.cands = append(cl.cands, nil)
	copy(cl.cands[pos+1:], cl.cands[pos:])
	cl.cands[pos] = c
	if len(cl.cands) > cl.limit {
		cl.cands = cl.cands[:cl.limit]
	}
}

// fragUB is the optimistic benefit of a k-node fragment with at most m
// occurrences, whichever extraction mechanism wins.
func fragUB(k, m int) int {
	ub := CallBenefit(k, m)
	if cb := CrossJumpBenefit(k, m); cb > ub {
		ub = cb
	}
	return ub
}

// search is the shared state of one FindCandidates run: the incumbent
// candidate list read by the branch-and-bound policies, plus — in
// parallel mode — a memo of pure by-products the speculative phase
// precomputed, keyed by pattern pointer (the replay receives the very
// *Pattern objects speculation built). All access goes through the
// mutex: the authoritative replay mutates the incumbents while
// speculation workers read them for (advisory) pruning bounds.
type search struct {
	mu   sync.Mutex
	kept candList
	memo map[*mining.Pattern]*patMemo // nil in serial mode
	// ck, when non-nil, records the walk for cross-round fast-forwarding
	// (checkpoint.go). Its note hooks run on the authoritative goroutine
	// only; speculation reaches it solely through the advisory covered().
	ck *checkpointer
}

// patMemo caches speculative per-pattern work. The candidate entry is
// reusable because buildCandidate's occurrence filtering is independent
// of its bail threshold: a non-nil result stands for every lower
// threshold, and nil built at threshold thr stands for every threshold
// >= thr.
type patMemo struct {
	disjoint     []int32 // DgSpan-mode independent set (embedding rows)
	haveDisjoint bool
	cand         *Candidate // validated candidate (nil = rejected)
	candThr      int        // the bail threshold cand was built against
	haveCand     bool
}

// boundsSnap is one coherent read of the incumbent state.
type boundsSnap struct {
	best     int // highest kept benefit (meaningful when haveBest)
	haveBest bool
	minBen   int // benefit a new candidate must beat: weakest kept when full, else 0
	full     bool
}

func (s *search) bounds() boundsSnap {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b boundsSnap
	if len(s.kept.cands) > 0 {
		b.best = s.kept.cands[0].Benefit
		b.haveBest = true
	}
	if len(s.kept.cands) >= s.kept.limit {
		b.full = true
		b.minBen = s.kept.cands[len(s.kept.cands)-1].Benefit
	}
	return b
}

func (s *search) add(c *Candidate) {
	s.mu.Lock()
	s.kept.add(c)
	s.mu.Unlock()
	if s.ck != nil {
		s.ck.noteAdd(c)
	}
}

func (s *search) lookup(p *mining.Pattern) *patMemo {
	if s.memo == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.memo[p]
}

func (s *search) memoize(p *mining.Pattern, fill func(*patMemo)) {
	s.mu.Lock()
	mm := s.memo[p]
	if mm == nil {
		mm = &patMemo{}
		s.memo[p] = mm
	}
	fill(mm)
	s.mu.Unlock()
}

// GraphMiner is graph-based PA: DgSpan when Embedding is false (support =
// number of blocks containing the fragment, one extraction per block),
// Edgar when true (support = maximum set of non-overlapping embeddings,
// all of them extracted).
type GraphMiner struct {
	Embedding bool
	// CanonicalMatch enables the paper's future-work fuzzy matching: node
	// labels keep only the mnemonic and operand shapes (Fig. 13), so
	// register renamings of a fragment unify. Extraction remains strict:
	// only occurrences that are textually identical to the first are
	// rewritten, so the transformation stays sound while the search
	// generalises.
	CanonicalMatch bool
}

// Name implements Miner.
func (m *GraphMiner) Name() string {
	if m.Embedding {
		if m.CanonicalMatch {
			return "edgar-canon"
		}
		return "edgar"
	}
	return "dgspan"
}

// MiningGraph converts a dependence graph into the miner's input form.
// Parallel dependence edges between the same instruction pair (e.g. a RAW
// plus a WAW through different registers) are merged into one edge whose
// label is the sorted bundle of dependence labels. This keeps the search
// lattice a simple-digraph lattice — far smaller than the multigraph one —
// and loses nothing: embeddings whose extra internal dependences differ
// would be rejected by the extraction-time induced-signature check anyway,
// so bundling just applies that filter during matching.
func MiningGraph(g *dfg.Graph, canonical bool) *mining.Graph {
	mg := &mining.Graph{ID: g.Block.ID, Labels: make([]string, g.N())}
	for i := 0; i < g.N(); i++ {
		if canonical {
			mg.Labels[i] = g.Block.Instrs[i].CanonicalKey()
		} else {
			mg.Labels[i] = g.NodeLabel(i)
		}
	}
	// PA-specific pruning (paper §3.5): the graph search only feeds call
	// extraction, so instructions that can never be outlined — barriers,
	// control transfers, lr traffic, or anything in a function whose lr
	// discipline forbids inserting calls — are permanently unextractable
	// here. Dropping their edges deletes those lattice branches before
	// the search starts. (Tail merging, the other mechanism, is a
	// suffix phenomenon: its candidates come from the sequence scan that
	// seeds every round, so nothing extractable is lost. The paper mined
	// these families too and paid hours of search for the "seldom"
	// cross jump, Fig. 12.)
	callable := CallSafe(g.Block.Fn)
	dead := func(i int) bool {
		return !callable || !arm.Abstractable(&g.Block.Instrs[i])
	}

	bundle := map[[2]int][]string{}
	var order [][2]int
	for _, e := range g.Edges {
		if dead(e.From) || dead(e.To) {
			continue
		}
		k := [2]int{e.From, e.To}
		if _, ok := bundle[k]; !ok {
			order = append(order, k)
		}
		bundle[k] = append(bundle[k], e.Label())
	}
	for _, k := range order {
		labels := bundle[k]
		sort.Strings(labels)
		mg.Edges = append(mg.Edges, mining.GEdge{From: k[0], To: k[1], Label: strings.Join(labels, "+")})
	}
	mg.Freeze()
	return mg
}

// FindCandidates implements Miner.
func (m *GraphMiner) FindCandidates(view *cfg.Program, graphs []*dfg.Graph, opts Options) []*Candidate {
	inc := opts.inc
	byID := map[int]*dfg.Graph{}
	var mgs []*mining.Graph
	var newMG map[*dfg.Graph]mgEntry
	var safeByGraph map[*dfg.Graph]bool
	if inc != nil {
		newMG = make(map[*dfg.Graph]mgEntry, len(graphs))
		safeByGraph = make(map[*dfg.Graph]bool, len(graphs))
	}
	// The call-safety cache is written lazily on miss; speculation workers
	// and the incremental caches share it, so fill it completely in the
	// loop below — every occurrence's function owns one of these graphs'
	// blocks — and it stays read-only for the rest of the round.
	safe := callSafeCache{}
	for _, g := range graphs {
		byID[g.Block.ID] = g
		callable := safe.get(g.Block.Fn)
		var mg *mining.Graph
		if inc != nil {
			safeByGraph[g] = callable
			if e, ok := inc.mg[g]; ok && e.callable == callable {
				// The dependence graph object and the call-safety flag baked
				// into the mining graph's edge pruning are both unchanged, so
				// the mining graph is too — only the block ID may have
				// shifted under renumbering. Copy the frozen graph and
				// restamp the ID.
				cp := *e.mg
				cp.ID = g.Block.ID
				mg = &cp
			}
		}
		if mg == nil {
			mg = MiningGraph(g, m.CanonicalMatch)
		}
		if inc != nil {
			newMG[g] = mgEntry{mg: mg, callable: callable}
		}
		mgs = append(mgs, mg)
	}
	if inc != nil {
		inc.mg = newMG
	}
	workers := opts.workers()
	s := &search{kept: candList{limit: opts.batch()}}
	if inc != nil {
		s.ck = &checkpointer{s: s, memo: inc.memo, byID: byID, safe: safeByGraph}
	}
	if workers > 1 {
		s.memo = map[*mining.Pattern]*patMemo{}
	}
	// Seed the incumbent list with contiguous-sequence candidates. With
	// unbounded fragment size the graph search strictly subsumes the
	// sequence scan; under the fragment-size cap, seeding restores that
	// subsumption and gives the benefit-bound pruning a strong incumbent
	// from the first visited pattern (branch-and-bound with an initial
	// heuristic solution). DgSpan sees at most one occurrence per block,
	// consistent with its graph-count support.
	for _, c := range ScanSequences(graphs, opts, !m.Embedding) {
		s.kept.add(c)
	}
	maxK := opts.maxNodes()
	ctx := opts.Context()
	// Benefit-bound pruning: no descendant (support can only fall, size
	// is capped at maxK) can beat the incumbent best candidate. The same
	// policies serve the authoritative search and, in parallel mode, the
	// speculation workers — the latter just see fresher-or-staler bounds
	// through the search lock, which costs fallback work, never output.
	// A cancelled run prunes everything: the driver discards the
	// candidate list, so collapsing the walk is the fastest sound exit.
	prune := func(p *mining.Pattern) bool {
		if ctx.Err() != nil {
			return true
		}
		b := s.bounds()
		return b.haveBest && fragUB(maxK, p.Support) <= b.best
	}
	// Extension groups whose raw candidate count cannot yield a pattern
	// beating the incumbent are dropped before their embeddings are
	// built.
	viable := func(count int) bool {
		b := s.bounds()
		return !b.haveBest || fragUB(maxK, count) > b.best
	}
	// The authoritative walk additionally records each bound comparison
	// into the open checkpoint records (checkpoint.go); the advisory
	// closures above stay non-recording for the speculation workers.
	authPrune := prune
	authViable := viable
	if s.ck != nil {
		ck := s.ck
		authPrune = func(p *mining.Pattern) bool {
			if ctx.Err() != nil {
				// Cancellation collapses the walk without noting: the run's
				// whole incremental state is discarded with the error.
				return true
			}
			b := s.bounds()
			if !b.haveBest {
				return false
			}
			u := fragUB(maxK, p.Support)
			pruned := u <= b.best
			ck.noteBest(u, pruned)
			return pruned
		}
		authViable = func(count int) bool {
			b := s.bounds()
			if !b.haveBest {
				return true
			}
			u := fragUB(maxK, count)
			ok := u > b.best
			ck.noteBest(u, !ok)
			return ok
		}
	}
	cfgm := mining.Config{
		MinSupport:       opts.minSupport(),
		MaxNodes:         maxK,
		EmbeddingSupport: m.Embedding,
		GreedyMIS:        opts.GreedyMIS,
		MaxPatterns:      opts.maxPatterns(),
		Workers:          workers,
		PruneSubtree:     authPrune,
		ViableCount:      authViable,
		NewSpeculator: func() *mining.Speculator {
			sp := &mining.Speculator{
				PruneSubtree: prune,
				ViableCount:  viable,
				Visit:        func(p *mining.Pattern) { m.speculateVisit(s, byID, maxK, safe, opts, p) },
			}
			if s.ck != nil {
				sp.SkipSubtree = s.ck.covered
			}
			return sp
		},
	}
	if s.ck != nil {
		cfgm.Checkpoint = s.ck
	}
	if inc != nil {
		// Minimality is a pure function of the DFS code and the same codes
		// are re-enumerated every round, so memoise it across the whole
		// run. Key() is injective, so a hit is exact.
		mc := inc.minimal
		cfgm.Minimal = func(c mining.Code) bool {
			if len(c) < 3 {
				// Short codes are cheaper to check than to hash and look up.
				return c.IsMinimal()
			}
			k := c.Key()
			if v, ok := mc.lookup(k); ok {
				return v
			}
			v := c.IsMinimal()
			mc.store(k, v)
			return v
		}
	}
	mining.Mine(mgs, cfgm, func(p *mining.Pattern) { m.visitPattern(s, byID, maxK, safe, opts, p) })
	if s.ck != nil && inc.stat != nil {
		inc.stat.MemoHits += s.ck.hits
		inc.stat.VisitsSaved += s.ck.saved
	}
	return s.kept.cands
}

// visitPattern is the authoritative per-pattern visitor: it gates by
// optimistic benefit, resolves the extraction-ready embedding set, and
// admits validated candidates into the incumbent list. In parallel mode
// it reuses whatever the speculative phase already computed for this
// pattern object.
func (m *GraphMiner) visitPattern(s *search, byID map[int]*dfg.Graph, maxK int, safe callSafeCache, opts Options, p *mining.Pattern) {
	// noteMin records authoritative comparisons against the admission
	// threshold for the checkpoint records (no-op without one). Only
	// threshold-dependent decisions note; everything else in this visitor
	// is a pure function of the pattern. When the kept list is not full
	// the threshold is 0 and the comparisons below are decided by the
	// sign of pattern-derived values, so no note is needed — the
	// checkpoint's full-flag equality pins that case.
	noteMin := func(v int, le bool) {
		if s.ck != nil {
			s.ck.noteMin(v, le)
		}
	}
	k := p.Code.NumNodes()
	if k < 2 {
		return
	}
	// Cheap gate before any independent-set work: the raw embedding
	// count bounds every support notion from above.
	ubRaw := fragUB(k, p.Embeddings.Len())
	if ubRaw <= 0 {
		return
	}
	b := s.bounds()
	if b.full && ubRaw <= b.minBen {
		noteMin(ubRaw, true)
		return
	}
	mm := s.lookup(p)
	var rec *latticeRec
	if s.ck != nil {
		rec = s.ck.patRec(p)
	}
	if (mm == nil || !mm.haveCand) && rec != nil && rec.haveCand {
		// No same-round speculative result, but a previous round's record
		// of this pattern passed the footprint check. Its candidate
		// outcome obeys the same threshold contract as patMemo (the
		// candidate is a pure function of the pinned embeddings), so
		// splice it in.
		syn := patMemo{cand: rec.cand, candThr: rec.candThr, haveCand: true}
		if mm != nil {
			syn.disjoint, syn.haveDisjoint = mm.disjoint, mm.haveDisjoint
		}
		mm = &syn
	}
	if mm != nil && mm.haveCand {
		if mm.cand != nil {
			// Occurrence filtering is threshold-independent, so the
			// speculative candidate is exact; only the admission test
			// runs against the current incumbents.
			if s.ck != nil {
				s.ck.noteCand(p, mm.cand, mm.candThr)
			}
			if mm.cand.Benefit > b.minBen {
				noteMin(mm.cand.Benefit, false)
				s.add(mm.cand)
			} else {
				noteMin(mm.cand.Benefit, true)
			}
			return
		}
		if b.minBen >= mm.candThr {
			// Rejected at a threshold the incumbents have since met or
			// passed: still rejected. (A live build at any threshold in
			// minBen >= candThr also returns nil, so this note keeps the
			// outcome reproducible whether or not the memo entry exists
			// in a replayed round.)
			if s.ck != nil {
				s.ck.noteCand(p, nil, mm.candThr)
			}
			noteMin(mm.candThr, true)
			return
		}
		// Rejected against a stricter threshold than the current one —
		// rebuild live below.
	}
	sel := p.Disjoint
	if !m.Embedding {
		// DgSpan's frequency is graph-count (that is p.Support here),
		// but extraction still outlines every non-overlapping
		// occurrence of the chosen fragment — the paper's miners
		// share one extraction back end (§2.1 phase 8); only the
		// DETECTION differs (§4.2: repeats within one block "remain
		// unnoticed", i.e. fragments frequent only there are never
		// found).
		if mm != nil && mm.haveDisjoint {
			sel = mm.disjoint
		} else if rec != nil && rec.haveDisjoint {
			// The independent set is a pure function of the pinned
			// embeddings, and embedding rows are stable across the
			// footprint check, so the recorded indices apply directly.
			sel = rec.disjoint
		} else {
			sel = mining.DisjointIndices(p.Embeddings, mining.Config{GreedyMIS: opts.GreedyMIS})
		}
		if s.ck != nil {
			s.ck.noteDisjoint(p, sel)
		}
	}
	ub := fragUB(k, len(sel))
	if ub <= 0 {
		return
	}
	// A candidate is only useful if it beats the weakest kept entry.
	if ub <= b.minBen {
		noteMin(ub, true)
		return
	}
	cand := m.buildCandidate(byID, p.Embeddings, sel, k, safe, b.minBen, noteMin)
	if s.ck != nil {
		s.ck.noteCand(p, cand, b.minBen)
	}
	if cand == nil {
		return
	}
	s.add(cand)
}

// speculateVisit mirrors visitPattern on a speculation worker: same
// gates against a snapshot of the incumbents, but results go into the
// memo instead of the incumbent list — the authoritative replay alone
// decides admission. This is where the expensive work (independent
// sets, candidate validation) runs concurrently.
func (m *GraphMiner) speculateVisit(s *search, byID map[int]*dfg.Graph, maxK int, safe callSafeCache, opts Options, p *mining.Pattern) {
	k := p.Code.NumNodes()
	if k < 2 {
		return
	}
	ubRaw := fragUB(k, p.Embeddings.Len())
	if ubRaw <= 0 {
		return
	}
	b := s.bounds()
	if b.full && ubRaw <= b.minBen {
		// The bounds only tighten, so the replay will skip this pattern
		// at least as early; nothing worth precomputing.
		return
	}
	sel := p.Disjoint
	if !m.Embedding {
		sel = mining.DisjointIndices(p.Embeddings, mining.Config{GreedyMIS: opts.GreedyMIS})
		s.memoize(p, func(mm *patMemo) {
			mm.disjoint = sel
			mm.haveDisjoint = true
		})
	}
	ub := fragUB(k, len(sel))
	if ub <= 0 || ub <= b.minBen {
		return
	}
	cand := m.buildCandidate(byID, p.Embeddings, sel, k, safe, b.minBen, nil)
	s.memoize(p, func(mm *patMemo) {
		mm.cand = cand
		mm.candThr = b.minBen
		mm.haveCand = true
	})
}

// buildCandidate turns raw disjoint embeddings into a verified candidate,
// choosing the extraction method per the paper: fragments that include a
// block terminator are tail-merged, everything else is outlined. minBen
// is the benefit the candidate must beat to be useful; validation bails
// out as soon as that becomes impossible (validation — signatures and
// schedulability — dominates mining time otherwise). note, when non-nil,
// receives the terminal threshold comparison that decided the outcome
// (checkpoint recording): occurrence filtering is threshold-independent,
// so the result is cand exactly when its benefit beats minBen — one
// comparison pins the outcome for a whole threshold region.
func (m *GraphMiner) buildCandidate(byID map[int]*dfg.Graph, set *mining.EmbSet, sel []int32, k int, safe callSafeCache, minBen int, note func(v int, le bool)) *Candidate {
	if len(sel) == 0 {
		return nil
	}
	// dfsOf boxes one slab row's nodes in DFS order (the occurrence
	// retains it, so it cannot alias the slab).
	dfsOf := func(row int32) []int {
		ns := set.Nodes(int(row))
		out := make([]int, len(ns))
		for i, v := range ns {
			out[i] = int(v)
		}
		return out
	}
	first := byID[set.GID(int(sel[0]))]
	firstDFS := dfsOf(sel[0])
	firstOcc := Occurrence{Block: first.Block, Graph: first, Nodes: sortedNodes(firstDFS), DFS: firstDFS}
	hasTerm := containsTerminator(first, firstOcc.Nodes)

	// Embeddings must agree on their full induced dependence structure
	// (and instruction texts) to share one extracted body; keep only
	// those matching the first.
	reference := firstOcc.InducedSignature()

	benefit := func(m int) int {
		if hasTerm {
			return CrossJumpBenefit(k, m)
		}
		return CallBenefit(k, m)
	}

	var occs []Occurrence
	blFrags := map[*cfg.Block][][]int{}
	for i, row := range sel {
		// Bail as soon as even accepting every remaining embedding
		// cannot beat minBen. (The bound only shrinks and stays >= the
		// final benefit, so for any threshold at or above this value the
		// outcome is nil too — the single note covers the whole bail.)
		if v := benefit(len(occs) + len(sel) - i); v <= minBen {
			if note != nil {
				note(v, true)
			}
			return nil
		}
		g := byID[set.GID(int(row))]
		dfsN := dfsOf(row)
		occ := Occurrence{Block: g.Block, Graph: g, Nodes: sortedNodes(dfsN), DFS: dfsN}
		if hasTerm {
			if !crossJumpExtractable(g, occ.Nodes) {
				continue
			}
		} else {
			if !callExtractable(g, occ.Nodes, safe) {
				continue
			}
		}
		if occ.InducedSignature() != reference {
			continue
		}
		if !hasTerm {
			// Schedulability: the cheap convexity check covers the
			// common one-occurrence-per-block case; blocks collecting
			// several occurrences get a full trial contraction.
			if prev, ok := blFrags[g.Block]; ok {
				trial := append(append([][]int(nil), prev...), occ.Nodes)
				calls := make([]arm.Instr, len(trial))
				for ci := range calls {
					bl := arm.NewInstr(arm.BL)
					bl.Target = "__pa_probe"
					calls[ci] = bl
				}
				if _, ok := ScheduleContracted(g, trial, calls); !ok {
					continue
				}
				blFrags[g.Block] = trial
			} else {
				if !convexOK(g, occ.Nodes) {
					continue
				}
				blFrags[g.Block] = [][]int{occ.Nodes}
			}
		}
		occs = append(occs, occ)
	}
	b := benefit(len(occs))
	if len(occs) < 2 || b <= 0 {
		// Threshold-independent rejection (minBen is never negative), so
		// nothing to note.
		return nil
	}
	if note != nil {
		note(b, b <= minBen)
	}
	if b <= minBen {
		return nil
	}
	return &Candidate{Size: k, Occs: occs, Method: methodOf(hasTerm), Benefit: b}
}

func methodOf(hasTerm bool) Method {
	if hasTerm {
		return MethodCrossJump
	}
	return MethodCall
}
