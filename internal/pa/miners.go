package pa

import (
	"sort"
	"strings"
	"sync"

	"graphpa/internal/arm"
	"graphpa/internal/cfg"
	"graphpa/internal/dfg"
	"graphpa/internal/mining"
)

// Miner finds extractable fragments of the current program view, best
// first. Implementations: GraphMiner (DgSpan/Edgar) here, and the
// suffix-trie baseline in internal/sfx.
type Miner interface {
	Name() string
	// FindCandidates returns profitable candidates ordered by descending
	// benefit. The first entry is guaranteed to be a best candidate; the
	// rest are good runners-up the driver may also apply in the same
	// round when their blocks do not conflict.
	FindCandidates(view *cfg.Program, graphs []*dfg.Graph, opts Options) []*Candidate
}

// fragUB is the optimistic benefit of a k-node fragment with at most m
// occurrences, whichever extraction mechanism wins. Monotone increasing
// in both k and m over the useful range (m >= 2), so fragUB(maxK, bound)
// dominates every candidate any descendant pattern can yield. This is
// the legacy walk bound, kept for the Lexicographic reference arm; the
// benefit-directed walk bounds with CallBenefit alone (see newSearch).
func fragUB(k, m int) int {
	ub := CallBenefit(k, m)
	if cb := CrossJumpBenefit(k, m); cb > ub {
		ub = cb
	}
	return ub
}

// ubTabM is the embedding-count range covered by the search's
// precomputed fragUB table (satellite of the benefit-directed walk:
// fragUB is pure, so the hot policies index a flat table instead of
// recomputing the two benefit polynomials per comparison).
const ubTabM = 2048

// search is the shared state of one FindCandidates run: the scalar
// incumbent read by the branch-and-bound policies, plus — in parallel
// mode — a memo of pure by-products the speculative phase precomputed,
// keyed by pattern pointer (the replay receives the very *Pattern
// objects speculation built). All access goes through the mutex: the
// authoritative replay mutates the incumbent while speculation workers
// read it for (advisory) pruning bounds.
//
// The incumbent is deliberately a single scalar plus its tie set, not a
// ranked list. With admissible bounds and strictly-less pruning
// (UB < bestBen), every candidate whose benefit equals the final maximum
// survives under ANY sibling visit order: each of its ancestors has an
// upper bound at least that maximum, which never drops below the
// incumbent. The final (bestBen, ties-as-a-set) is therefore identical
// between the lexicographic and benefit-directed walks — the property
// the Result-identity guarantee rests on. A ranked runner-up list has no
// such invariance (which sub-maximum candidates get built depends on
// when the bound rises), so runners-up come from the order-invariant
// warm sources instead (sequence seeds and the previous round's carried
// candidates, see FindCandidates).
type search struct {
	mu      sync.Mutex
	bestBen int                          // incumbent: highest known admissible benefit (warm-started)
	ties    []*Candidate                 // mined candidates with Benefit == bestBen, admission order
	memo    map[*mining.Pattern]*patMemo // nil in serial mode
	// ck, when non-nil, records the walk for cross-round fast-forwarding
	// (checkpoint.go). Its note hooks run on the authoritative goroutine
	// only; speculation reaches it solely through the advisory covered().
	ck *checkpointer

	// ub is the walk-bound memo: ub[(k-2)*ubTabM+m] is the optimistic
	// benefit of a k-node fragment with at most m occurrences, for k in
	// [2, maxK], m in [0, ubTabM). Built once per run (CallBenefit for
	// the benefit-directed walk, legacy fragUB for the Lexicographic
	// reference — see newSearch), then read-only — safe for concurrent
	// speculation reads.
	ub    []int
	bound func(k, m int) int // the table's generator, for out-of-range m
	maxK  int

	// lastSelFor/lastSelN stash the exact independent-set size computed
	// by the most recent authoritative visit (DgSpan mode only), so the
	// subtree prune that immediately follows the visit can bound with the
	// real extraction count instead of the raw embedding count. Written
	// and read on the authoritative goroutine only.
	lastSelFor *mining.Pattern
	lastSelN   int
}

// newSearch builds the run's bound table. The graph walk can only yield
// call extractions: MiningGraph drops every edge touching an instruction
// that cannot be outlined (terminators, lr traffic, barriers), patterns
// grow along edges, and k >= 2 — so no mined occurrence ever includes a
// block terminator and buildCandidate always lands on MethodCall. The
// benefit-directed walk therefore bounds with CallBenefit alone, which
// is strictly tighter than fragUB (CrossJumpBenefit exceeds CallBenefit
// by k+1-m, so support-2 and -3 subtrees that only a tail merge could
// redeem are cut). Cross-jump candidates are untouched: they come
// exclusively from the ScanSequences seeds, which bypass the walk. The
// Lexicographic reference arm keeps the legacy fragUB bound — pruning
// strictly below EITHER admissible bound preserves the final incumbent
// tie set, so the two arms still return identical candidates.
func newSearch(maxK int, lexicographic bool) *search {
	s := &search{maxK: maxK, ub: make([]int, (maxK-1)*ubTabM), bound: CallBenefit}
	if lexicographic {
		s.bound = fragUB
	}
	for k := 2; k <= maxK; k++ {
		row := s.ub[(k-2)*ubTabM:]
		for m := 0; m < ubTabM; m++ {
			row[m] = s.bound(k, m)
		}
	}
	return s
}

// ubm is the memoised walk bound.
func (s *search) ubm(k, m int) int {
	if k >= 2 && k <= s.maxK && m >= 0 && m < ubTabM {
		return s.ub[(k-2)*ubTabM+m]
	}
	return s.bound(k, m)
}

// best reads the incumbent benefit.
func (s *search) best() int {
	s.mu.Lock()
	b := s.bestBen
	s.mu.Unlock()
	return b
}

// admit offers a mined candidate to the incumbent: a strictly better
// benefit resets the tie set, an equal one joins it, a worse one (only
// possible for candidates built against a stale threshold) is dropped.
// Duplicates are allowed — the merge dedupes by canonical key.
func (s *search) admit(c *Candidate) {
	s.mu.Lock()
	if c.Benefit > s.bestBen {
		s.bestBen = c.Benefit
		s.ties = s.ties[:0]
	}
	if c.Benefit == s.bestBen {
		s.ties = append(s.ties, c)
	}
	s.mu.Unlock()
	if s.ck != nil {
		s.ck.noteAdd(c)
	}
}

// patMemo caches speculative per-pattern work. The candidate entry is
// reusable because buildCandidate's occurrence filtering is independent
// of its bail threshold: a non-nil result stands for every lower
// threshold, and nil built at threshold thr stands for every threshold
// >= thr.
type patMemo struct {
	disjoint     []int32 // DgSpan-mode independent set (embedding rows)
	haveDisjoint bool
	cand         *Candidate // validated candidate (nil = rejected)
	candThr      int        // the bail threshold cand was built against
	haveCand     bool
}

func (s *search) lookup(p *mining.Pattern) *patMemo {
	if s.memo == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.memo[p]
}

func (s *search) memoize(p *mining.Pattern, fill func(*patMemo)) {
	s.mu.Lock()
	mm := s.memo[p]
	if mm == nil {
		mm = &patMemo{}
		s.memo[p] = mm
	}
	fill(mm)
	s.mu.Unlock()
}

// GraphMiner is graph-based PA: DgSpan when Embedding is false (support =
// number of blocks containing the fragment, one extraction per block),
// Edgar when true (support = maximum set of non-overlapping embeddings,
// all of them extracted).
type GraphMiner struct {
	Embedding bool
	// CanonicalMatch enables the paper's future-work fuzzy matching: node
	// labels keep only the mnemonic and operand shapes (Fig. 13), so
	// register renamings of a fragment unify. Extraction remains strict:
	// only occurrences that are textually identical to the first are
	// rewritten, so the transformation stays sound while the search
	// generalises.
	CanonicalMatch bool
}

// Name implements Miner.
func (m *GraphMiner) Name() string {
	if m.Embedding {
		if m.CanonicalMatch {
			return "edgar-canon"
		}
		return "edgar"
	}
	return "dgspan"
}

// MiningGraph converts a dependence graph into the miner's input form.
// Parallel dependence edges between the same instruction pair (e.g. a RAW
// plus a WAW through different registers) are merged into one edge whose
// label is the sorted bundle of dependence labels. This keeps the search
// lattice a simple-digraph lattice — far smaller than the multigraph one —
// and loses nothing: embeddings whose extra internal dependences differ
// would be rejected by the extraction-time induced-signature check anyway,
// so bundling just applies that filter during matching.
func MiningGraph(g *dfg.Graph, canonical bool) *mining.Graph {
	mg := &mining.Graph{ID: g.Block.ID, Labels: make([]string, g.N())}
	for i := 0; i < g.N(); i++ {
		if canonical {
			mg.Labels[i] = g.Block.Instrs[i].CanonicalKey()
		} else {
			mg.Labels[i] = g.NodeLabel(i)
		}
	}
	// PA-specific pruning (paper §3.5): the graph search only feeds call
	// extraction, so instructions that can never be outlined — barriers,
	// control transfers, lr traffic, or anything in a function whose lr
	// discipline forbids inserting calls — are permanently unextractable
	// here. Dropping their edges deletes those lattice branches before
	// the search starts. (Tail merging, the other mechanism, is a
	// suffix phenomenon: its candidates come from the sequence scan that
	// seeds every round, so nothing extractable is lost. The paper mined
	// these families too and paid hours of search for the "seldom"
	// cross jump, Fig. 12.)
	callable := CallSafe(g.Block.Fn)
	dead := func(i int) bool {
		return !callable || !arm.Abstractable(&g.Block.Instrs[i])
	}

	bundle := map[[2]int][]string{}
	var order [][2]int
	for _, e := range g.Edges {
		if dead(e.From) || dead(e.To) {
			continue
		}
		k := [2]int{e.From, e.To}
		if _, ok := bundle[k]; !ok {
			order = append(order, k)
		}
		bundle[k] = append(bundle[k], e.Label())
	}
	for _, k := range order {
		labels := bundle[k]
		sort.Strings(labels)
		mg.Edges = append(mg.Edges, mining.GEdge{From: k[0], To: k[1], Label: strings.Join(labels, "+")})
	}
	mg.Freeze()
	return mg
}

// FindCandidates implements Miner.
func (m *GraphMiner) FindCandidates(view *cfg.Program, graphs []*dfg.Graph, opts Options) []*Candidate {
	inc := opts.inc
	byID := map[int]*dfg.Graph{}
	var mgs []*mining.Graph
	var newMG map[*dfg.Graph]mgEntry
	var safeByGraph map[*dfg.Graph]bool
	if inc != nil {
		newMG = make(map[*dfg.Graph]mgEntry, len(graphs))
		safeByGraph = make(map[*dfg.Graph]bool, len(graphs))
	}
	// The call-safety cache is written lazily on miss; speculation workers
	// and the incremental caches share it, so fill it completely in the
	// loop below — every occurrence's function owns one of these graphs'
	// blocks — and it stays read-only for the rest of the round.
	safe := callSafeCache{}
	for _, g := range graphs {
		byID[g.Block.ID] = g
		callable := safe.get(g.Block.Fn)
		var mg *mining.Graph
		if inc != nil {
			safeByGraph[g] = callable
			if e, ok := inc.mg[g]; ok && e.callable == callable {
				// The dependence graph object and the call-safety flag baked
				// into the mining graph's edge pruning are both unchanged, so
				// the mining graph is too — only the block ID may have
				// shifted under renumbering. Copy the frozen graph and
				// restamp the ID.
				cp := *e.mg
				cp.ID = g.Block.ID
				mg = &cp
			}
		}
		if mg == nil {
			mg = MiningGraph(g, m.CanonicalMatch)
		}
		if inc != nil {
			newMG[g] = mgEntry{mg: mg, callable: callable}
		}
		mgs = append(mgs, mg)
	}
	if inc != nil {
		inc.mg = newMG
	}
	workers := opts.workers()
	maxK := opts.maxNodes()
	// Multiresolution setup (multires.go). The driver threads one mrState
	// through the run; direct FindCandidates calls (tests) self-init. The
	// Lexicographic reference arm never steers — it is the baseline the
	// order differentials compare against — and NoMultires is the kill
	// switch. Sharded runs force the plain walk too: the steering
	// closures cannot run on a shard, and the bounds they tighten are
	// consumed authoritatively by the replay (see Options.Shards).
	mr := opts.mr
	if opts.Lexicographic || opts.NoMultires || opts.Shards != nil {
		mr = nil
	} else if mr == nil {
		mr = newMRState()
	}
	var mrCaps map[int]map[mining.TupleClass]int
	if mr != nil {
		if !mr.built {
			mr.buildOracle(mgs, maxK, opts.minSupport())
			if opts.stat != nil {
				opts.stat.CoarseVisits = mr.coarseVisits
			}
		}
		mrCaps = coarseCaps(mgs)
	}
	// Warm-start the incumbent — branch-and-bound with an initial
	// heuristic solution, from two order-invariant sources. Sequence
	// seeds: with unbounded fragment size the graph search strictly
	// subsumes the sequence scan; under the fragment-size cap, seeding
	// restores that subsumption (DgSpan sees at most one occurrence per
	// block, consistent with its graph-count support). Carried
	// candidates: the previous round's returned list, revalidated against
	// the current view — post-extraction rounds start with a real
	// threshold instead of rediscovering it from zero. Both feed the
	// merged return list too, so the driver's runner-up supply does not
	// depend on visit order.
	seeds := ScanSequences(graphs, opts, !m.Embedding)
	carried := m.revalidateCarry(view, graphs, opts.carry, safe)
	warm := make([]*Candidate, 0, len(seeds)+len(carried))
	warm = append(warm, seeds...)
	warm = append(warm, carried...)
	baseFloor := 0
	for _, c := range warm {
		if c.Benefit > baseFloor {
			baseFloor = c.Benefit
		}
	}
	// A third warm source, with a stricter contract: dictionary fragments
	// (dictwarm.go) raise the floor but never join the merge list, and
	// the floor they set is speculative — valid only if the walk confirms
	// it by admitting at least one tie, without the pattern budget
	// truncating the walk. Otherwise the whole walk is discarded and the
	// round re-mines at the base floor, which is exactly the cold walk.
	dictCands := m.revalidateDict(graphs, opts.dictFrags, safe, opts)
	dictFloor := baseFloor
	for _, c := range dictCands {
		if c.Benefit > dictFloor {
			dictFloor = c.Benefit
		}
	}
	if opts.stat != nil {
		opts.stat.DictHits = len(dictCands)
	}
	ctx := opts.Context()
	// One graph encoding per FindCandidates call: every walk of this
	// round (dict-floored, cold re-mine) ships the same graphs.
	var graphsEnc []byte
	if opts.Shards != nil {
		graphsEnc = mining.EncodeGraphs(mgs)
	}

	// runWalk runs one complete lattice walk with the incumbent floored
	// at floor. Each call builds a fresh search (incumbent, ties,
	// speculation memo, checkpoint recorder) — the caches behind it
	// (lattice memo, minimality, call-safety) are shared and sound across
	// walks: records carry their own bound-validity regions, so a record
	// taken under one floor replays under another only when the region
	// checks pass (see checkpoint.go). mrOn runs the multires arm: coarse
	// capacity tables tighten the child bounds and the frozen oracle
	// orders siblings, under a reduced pattern budget and a separate
	// checkpoint arm (the two arms' visit orders and bound traces differ,
	// so their records never cross-replay).
	runWalk := func(floor int, mrOn bool) (*search, int, bool) {
		s := newSearch(maxK, opts.Lexicographic)
		if inc != nil {
			ckArm := armPlain
			if mrOn {
				ckArm = armMultires
			}
			s.ck = &checkpointer{s: s, memo: inc.memo, arm: ckArm, byID: byID, safe: safeByGraph}
		}
		if workers > 1 || opts.Shards != nil {
			// Sharded walks memoise too: replay-fallback seeds speculate
			// locally through NewSpeculator even at Workers == 1.
			s.memo = map[*mining.Pattern]*patMemo{}
		}
		s.bestBen = floor
		// Benefit-bound pruning: a subtree is cut only when NO descendant can
		// match the incumbent (strictly less — ties must survive, they are
		// the mined output). The advisory closures serve the speculation
		// workers, which must not touch the authoritative-only lastSel stash
		// and never note; staleness there costs fallback work, never output.
		// A cancelled run prunes everything: the driver discards the
		// candidate list, so collapsing the walk is the fastest sound exit.
		advBound := func(p *mining.Pattern) int {
			if m.Embedding {
				return p.Support // the exact independent-set size
			}
			// DgSpan's Support is a graph count, which does NOT bound the
			// occurrence count; the embedding count does (a descendant's
			// disjoint embeddings restrict to distinct parent rows).
			return p.Embeddings.Len()
		}
		authBound := func(p *mining.Pattern) int {
			if m.Embedding {
				return p.Support
			}
			if !opts.Lexicographic && s.lastSelFor == p {
				// The visit that just ran computed the exact independent set;
				// bound with the real extraction count. Part of the MIS-aware
				// tightening, so the legacy reference arm skips it.
				return s.lastSelN
			}
			return p.Embeddings.Len()
		}
		prune := func(p *mining.Pattern) bool {
			if ctx.Err() != nil {
				return true
			}
			return s.ubm(maxK, advBound(p)) < s.best()
		}
		// Extension groups whose raw candidate count cannot yield a pattern
		// matching the incumbent are dropped before their embeddings are
		// built.
		viable := func(count int) bool { return s.ubm(maxK, count) >= s.best() }
		// pruneChild is the tightened between-siblings bound of the
		// benefit-directed walk: the mining layer hands it each child's
		// misUpperBound (admissible for the whole subtree), computed anyway
		// for the sibling ordering.
		pruneChild := func(set *mining.EmbSet, bound int) bool {
			return s.ubm(maxK, bound) < s.best()
		}
		// The authoritative walk additionally records each bound comparison
		// into the open checkpoint records (checkpoint.go).
		authPrune := func(p *mining.Pattern) bool {
			if ctx.Err() != nil {
				// Cancellation collapses the walk without noting: the run's
				// whole incremental state is discarded with the error.
				return true
			}
			u := s.ubm(maxK, authBound(p))
			pruned := u < s.best()
			if s.ck != nil {
				s.ck.noteBest(u, pruned)
			}
			return pruned
		}
		authViable := func(count int) bool {
			u := s.ubm(maxK, count)
			ok := u >= s.best()
			if s.ck != nil {
				s.ck.noteBest(u, !ok)
			}
			return ok
		}
		authPruneChild := func(set *mining.EmbSet, bound int) bool {
			u := s.ubm(maxK, bound)
			pruned := u < s.best()
			if s.ck != nil {
				s.ck.noteBest(u, pruned)
			}
			return pruned
		}
		budget := opts.maxPatterns()
		if mrOn {
			budget = mr.budget(budget)
		}
		truncated := false
		cfgm := mining.Config{
			MinSupport:       opts.minSupport(),
			MaxNodes:         maxK,
			EmbeddingSupport: m.Embedding,
			GreedyMIS:        opts.GreedyMIS,
			MaxPatterns:      budget,
			Workers:          workers,
			Lexicographic:    opts.Lexicographic,
			PruneSubtree:     authPrune,
			ViableCount:      authViable,
			NoteTruncated:    func() { truncated = true },
			NewSpeculator: func() *mining.Speculator {
				sp := &mining.Speculator{
					PruneSubtree: prune,
					ViableCount:  viable,
					Visit:        func(p *mining.Pattern) { m.speculateVisit(s, byID, maxK, safe, opts, p) },
				}
				if !opts.Lexicographic {
					sp.PruneChild = pruneChild
				}
				if s.ck != nil {
					sp.SkipSubtree = s.ck.covered
				}
				return sp
			},
		}
		if !opts.Lexicographic {
			// The Lexicographic reference arm keeps the old-style walk — the
			// legacy fragUB support bound (newSearch), subtree and group
			// pruning only — so the A/B differentials contrast the full
			// benefit-directed machinery (call-only bound, MIS-aware child
			// pruning, sibling ordering) against the reference, not just the
			// sibling permutation. Result identity holds regardless: both
			// arms prune strictly below an admissible bound, which preserves
			// the final incumbent tie set (see the search doc).
			cfgm.PruneChild = authPruneChild
			if mrOn {
				// Coarse steering (multires.go). ChildBound stays admissible
				// — capBound caps the MIS support of the child and its whole
				// subtree — and ChildScore only orders, so the complete-walk
				// incumbent tie set is untouched. Both closures are pure over
				// read-only tables, as the speculation workers and the
				// checkpoint records require.
				cfgm.ChildBound = func(code mining.Code, t mining.Tuple, set *mining.EmbSet, bound int) int {
					if b := capBound(mrCaps, code, t, set); b < bound {
						return b
					}
					return bound
				}
				cfgm.ChildScore = func(code mining.Code, t mining.Tuple, set *mining.EmbSet) int {
					return mr.oracle[mining.ClassOfTuple(t)]
				}
			}
		}
		if s.ck != nil {
			cfgm.Checkpoint = s.ck
		}
		if inc != nil {
			// Minimality is a pure function of the DFS code and the same codes
			// are re-enumerated every round, so memoise it across the whole
			// run. Key() is injective, so a hit is exact.
			mc := inc.minimal
			cfgm.Minimal = func(c mining.Code) bool {
				if len(c) < 3 {
					// Short codes are cheaper to check than to hash and look up.
					return c.IsMinimal()
				}
				k := c.Key()
				if v, ok := mc.lookup(k); ok {
					return v
				}
				v := c.IsMinimal()
				mc.store(k, v)
				return v
			}
		}
		// Distributed speculation (shard.go): open one walk on the shard
		// set, shipping the graphs plus the advisory bound state — the
		// incumbent floor and the maxK row of the bound table, exactly
		// what the advisory closures above consult — then source each
		// seed's speculation remotely. A failed open degrades the whole
		// walk to local mining; a failed seed degrades that seed. The
		// gossip pump pushes incumbent improvements for the life of the
		// walk. Never combined with mrOn: shards force the plain arm.
		var walk ShardWalk
		var stopGossip func()
		if opts.Shards != nil {
			req := mining.EncodeShardWalk(mining.SpecConfig{
				MinSupport:       opts.minSupport(),
				MaxNodes:         maxK,
				MaxPatterns:      budget,
				EmbeddingSupport: m.Embedding,
				GreedyMIS:        opts.GreedyMIS,
				Lexicographic:    opts.Lexicographic,
				Floor:            floor,
				UB:               s.ub[(maxK-2)*ubTabM:],
			}, graphsEnc)
			if w, err := opts.Shards.NewWalk(ctx, req); err == nil {
				walk = w
				cfgm.RemoteSpec = w.Speculate
				cfgm.NoteRemoteSpec = func(seeds, subtrees, fallbacks int) {
					if opts.stat != nil {
						opts.stat.ShardSeeds += seeds
						opts.stat.ShardSubtrees += subtrees
						opts.stat.ShardFallbacks += fallbacks
					}
				}
				stopGossip = startGossip(w, s.best)
			}
		}
		visits := mining.Mine(mgs, cfgm, func(p *mining.Pattern) { m.visitPattern(s, byID, maxK, safe, opts, p) })
		if walk != nil {
			stopGossip()
			ws := walk.Close()
			if opts.stat != nil {
				opts.stat.ShardBroadcasts += ws.Broadcasts
				opts.stat.ShardSpecVisits += int(ws.SpecVisits)
			}
		}
		return s, visits, truncated
	}

	// runArm is one walk attempt under the multires discard rule: when
	// the gate allows it, try the multires walk first; if its budget
	// truncates it, throw it away (a truncated steered walk cannot be
	// proven byte-identical — steering shifts where the budget lands) and
	// fall back to the plain walk, which IS the reference output. A
	// multires walk that completes needs no fallback: complete walks are
	// order-invariant, so its tie set equals the plain walk's.
	mrTry := mr != nil && mr.attempt
	runArm := func(floor int) (*search, int, bool) {
		if mrTry {
			s, visits, truncated := runWalk(floor, true)
			if !truncated {
				return s, visits, false
			}
			if opts.stat != nil {
				opts.stat.MultiresDiscarded += visits
			}
		}
		return runWalk(floor, false)
	}

	s, visits, truncated := runArm(dictFloor)
	if dictFloor > baseFloor && (truncated || len(s.ties) == 0) {
		// The dictionary floor failed validation. An empty tie set means
		// no mined candidate reached the floor — a cold walk's maximum
		// would be lower, so its output could differ. A truncated walk
		// is rejected even with ties: floor pruning shifts WHERE the
		// budget lands in the visit sequence, so the warm and cold
		// truncation points would diverge. Either way the round re-mines
		// at the base floor, which reproduces the cold walk exactly; the
		// discarded visits are reported, not hidden.
		discarded := visits
		s, visits, truncated = runArm(baseFloor)
		if opts.stat != nil {
			opts.stat.DictDiscarded = discarded
		}
	}
	if mr != nil {
		// Gate the next round: attempt multires again only after a round
		// whose final walk completed, and size its budget near this
		// round's cost (see mrState).
		mr.attempt = !truncated
		mr.lastVisits = visits
	}
	if opts.stat != nil {
		opts.stat.Visits = visits
	}
	if s.ck != nil && inc.stat != nil {
		inc.stat.MemoHits += s.ck.hits
		inc.stat.VisitsSaved += s.ck.saved
	}
	return mergeCandidates(opts.batch(), s.ties, warm)
}

// visitPattern is the authoritative per-pattern visitor: it gates by
// optimistic benefit, resolves the extraction-ready embedding set, and
// admits validated candidates into the incumbent list. In parallel mode
// it reuses whatever the speculative phase already computed for this
// pattern object.
func (m *GraphMiner) visitPattern(s *search, byID map[int]*dfg.Graph, maxK int, safe callSafeCache, opts Options, p *mining.Pattern) {
	// noteBest records authoritative comparisons against the incumbent
	// benefit for the checkpoint records (no-op without one). EVERY
	// threshold-dependent decision notes, including trivially-passing
	// ones: a record's validity region must pin each comparison, or a
	// later round with a different incumbent could replay a walk that
	// would have decided differently. Everything else in this visitor is
	// a pure function of the pattern. less reports v < best.
	noteBest := func(v int, less bool) {
		if s.ck != nil {
			s.ck.noteBest(v, less)
		}
	}
	k := p.Code.NumNodes()
	if k < 2 {
		return
	}
	// Cheap gate before any independent-set work: the raw embedding
	// count bounds every support notion from above. Strict comparison:
	// a candidate tying the incumbent is part of the mined output.
	ubRaw := s.ubm(k, p.Embeddings.Len())
	if ubRaw <= 0 {
		return
	}
	best := s.best()
	if ubRaw < best {
		noteBest(ubRaw, true)
		return
	}
	noteBest(ubRaw, false)
	mm := s.lookup(p)
	var rec *latticeRec
	if s.ck != nil {
		rec = s.ck.patRec(p)
	}
	if (mm == nil || !mm.haveCand) && rec != nil && rec.haveCand {
		// No same-round speculative result, but a previous round's record
		// of this pattern passed the footprint check. Its candidate
		// outcome obeys the same threshold contract as patMemo (the
		// candidate is a pure function of the pinned embeddings), so
		// splice it in.
		syn := patMemo{cand: rec.cand, candThr: rec.candThr, haveCand: true}
		if mm != nil {
			syn.disjoint, syn.haveDisjoint = mm.disjoint, mm.haveDisjoint
		}
		mm = &syn
	}
	if mm != nil && mm.haveCand {
		if mm.cand != nil {
			// Occurrence filtering is threshold-independent, so the
			// speculative candidate is exact; only the admission test
			// runs against the current incumbent.
			if s.ck != nil {
				s.ck.noteCand(p, mm.cand, mm.candThr)
			}
			if mm.cand.Benefit >= best {
				noteBest(mm.cand.Benefit, false)
				s.admit(mm.cand)
			} else {
				noteBest(mm.cand.Benefit, true)
			}
			return
		}
		if best-1 >= mm.candThr {
			// Rejected at threshold candThr: nil stands for every
			// threshold >= candThr, and the live threshold best-1 has met
			// or passed it. (A live build here returns nil too, so this
			// note keeps the outcome reproducible whether or not the memo
			// entry exists in a replayed round.)
			if s.ck != nil {
				s.ck.noteCand(p, nil, mm.candThr)
			}
			noteBest(mm.candThr, true)
			return
		}
		noteBest(mm.candThr, false)
		// Rejected against a stricter threshold than the current one —
		// rebuild live below.
	}
	sel := p.Disjoint
	if !m.Embedding {
		// DgSpan's frequency is graph-count (that is p.Support here),
		// but extraction still outlines every non-overlapping
		// occurrence of the chosen fragment — the paper's miners
		// share one extraction back end (§2.1 phase 8); only the
		// DETECTION differs (§4.2: repeats within one block "remain
		// unnoticed", i.e. fragments frequent only there are never
		// found).
		if mm != nil && mm.haveDisjoint {
			sel = mm.disjoint
		} else if rec != nil && rec.haveDisjoint {
			// The independent set is a pure function of the pinned
			// embeddings, and embedding rows are stable across the
			// footprint check, so the recorded indices apply directly.
			sel = rec.disjoint
		} else {
			sel = mining.DisjointIndices(p.Embeddings, mining.Config{GreedyMIS: opts.GreedyMIS})
		}
		if s.ck != nil {
			s.ck.noteDisjoint(p, sel)
		}
		// Stash the exact extraction count for the subtree prune that
		// follows this visit: DgSpan's Support is a graph count, useless
		// as an occurrence bound, but this independent set is exact.
		s.lastSelFor, s.lastSelN = p, len(sel)
	}
	ub := s.ubm(k, len(sel))
	if ub <= 0 {
		return
	}
	if ub < best {
		noteBest(ub, true)
		return
	}
	noteBest(ub, false)
	cand := m.buildCandidate(byID, p.Embeddings, sel, k, safe, best-1, noteBest)
	if s.ck != nil {
		s.ck.noteCand(p, cand, best-1)
	}
	if cand == nil {
		return
	}
	s.admit(cand)
}

// speculateVisit mirrors visitPattern on a speculation worker: same
// gates against a snapshot of the incumbents, but results go into the
// memo instead of the incumbent list — the authoritative replay alone
// decides admission. This is where the expensive work (independent
// sets, candidate validation) runs concurrently.
func (m *GraphMiner) speculateVisit(s *search, byID map[int]*dfg.Graph, maxK int, safe callSafeCache, opts Options, p *mining.Pattern) {
	k := p.Code.NumNodes()
	if k < 2 {
		return
	}
	ubRaw := s.ubm(k, p.Embeddings.Len())
	if ubRaw <= 0 {
		return
	}
	best := s.best()
	if ubRaw < best {
		// The incumbent only rises, so the replay will skip this pattern
		// at least as early; nothing worth precomputing.
		return
	}
	sel := p.Disjoint
	if !m.Embedding {
		sel = mining.DisjointIndices(p.Embeddings, mining.Config{GreedyMIS: opts.GreedyMIS})
		s.memoize(p, func(mm *patMemo) {
			mm.disjoint = sel
			mm.haveDisjoint = true
		})
	}
	ub := s.ubm(k, len(sel))
	if ub <= 0 || ub < best {
		return
	}
	cand := m.buildCandidate(byID, p.Embeddings, sel, k, safe, best-1, nil)
	s.memoize(p, func(mm *patMemo) {
		mm.cand = cand
		mm.candThr = best - 1
		mm.haveCand = true
	})
}

// buildCandidate turns raw disjoint embeddings into a verified candidate,
// choosing the extraction method per the paper: fragments that include a
// block terminator are tail-merged, everything else is outlined. minBen
// is the benefit the candidate must beat to be useful; validation bails
// out as soon as that becomes impossible (validation — signatures and
// schedulability — dominates mining time otherwise). note, when non-nil,
// receives the terminal threshold comparison that decided the outcome
// (checkpoint recording): occurrence filtering is threshold-independent,
// so the result is cand exactly when its benefit beats minBen — one
// comparison pins the outcome for a whole threshold region.
func (m *GraphMiner) buildCandidate(byID map[int]*dfg.Graph, set *mining.EmbSet, sel []int32, k int, safe callSafeCache, minBen int, note func(v int, le bool)) *Candidate {
	if len(sel) == 0 {
		return nil
	}
	// dfsOf boxes one slab row's nodes in DFS order (the occurrence
	// retains it, so it cannot alias the slab).
	dfsOf := func(row int32) []int {
		ns := set.Nodes(int(row))
		out := make([]int, len(ns))
		for i, v := range ns {
			out[i] = int(v)
		}
		return out
	}
	first := byID[set.GID(int(sel[0]))]
	firstDFS := dfsOf(sel[0])
	firstOcc := Occurrence{Block: first.Block, Graph: first, Nodes: sortedNodes(firstDFS), DFS: firstDFS}
	hasTerm := containsTerminator(first, firstOcc.Nodes)

	// Embeddings must agree on their full induced dependence structure
	// (and instruction texts) to share one extracted body; keep only
	// those matching the first.
	reference := firstOcc.InducedSignature()

	benefit := func(m int) int {
		if hasTerm {
			return CrossJumpBenefit(k, m)
		}
		return CallBenefit(k, m)
	}

	var occs []Occurrence
	blFrags := map[*cfg.Block][][]int{}
	for i, row := range sel {
		// Bail as soon as even accepting every remaining embedding
		// cannot beat minBen. (The bound only shrinks and stays >= the
		// final benefit, so for any threshold at or above this value the
		// outcome is nil too — the single note covers the whole bail.)
		if v := benefit(len(occs) + len(sel) - i); v <= minBen {
			if note != nil {
				note(v, true)
			}
			return nil
		}
		g := byID[set.GID(int(row))]
		dfsN := dfsOf(row)
		occ := Occurrence{Block: g.Block, Graph: g, Nodes: sortedNodes(dfsN), DFS: dfsN}
		if hasTerm {
			if !crossJumpExtractable(g, occ.Nodes) {
				continue
			}
		} else {
			if !callExtractable(g, occ.Nodes, safe) {
				continue
			}
		}
		if occ.InducedSignature() != reference {
			continue
		}
		if !hasTerm {
			// Schedulability: the cheap convexity check covers the
			// common one-occurrence-per-block case; blocks collecting
			// several occurrences get a full trial contraction.
			if prev, ok := blFrags[g.Block]; ok {
				trial := append(append([][]int(nil), prev...), occ.Nodes)
				calls := make([]arm.Instr, len(trial))
				for ci := range calls {
					bl := arm.NewInstr(arm.BL)
					bl.Target = "__pa_probe"
					calls[ci] = bl
				}
				if _, ok := ScheduleContracted(g, trial, calls); !ok {
					continue
				}
				blFrags[g.Block] = trial
			} else {
				if !convexOK(g, occ.Nodes) {
					continue
				}
				blFrags[g.Block] = [][]int{occ.Nodes}
			}
		}
		occs = append(occs, occ)
	}
	b := benefit(len(occs))
	if len(occs) < 2 || b <= 0 {
		// Threshold-independent rejection (minBen is never negative), so
		// nothing to note.
		return nil
	}
	if note != nil {
		note(b, b <= minBen)
	}
	if b <= minBen {
		return nil
	}
	return &Candidate{Size: k, Occs: occs, Method: methodOf(hasTerm), Benefit: b}
}

func methodOf(hasTerm bool) Method {
	if hasTerm {
		return MethodCrossJump
	}
	return MethodCall
}
