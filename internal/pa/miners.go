package pa

import (
	"sort"
	"strings"

	"graphpa/internal/arm"
	"graphpa/internal/cfg"
	"graphpa/internal/dfg"
	"graphpa/internal/mining"
)

// Miner finds extractable fragments of the current program view, best
// first. Implementations: GraphMiner (DgSpan/Edgar) here, and the
// suffix-trie baseline in internal/sfx.
type Miner interface {
	Name() string
	// FindCandidates returns profitable candidates ordered by descending
	// benefit. The first entry is guaranteed to be a best candidate; the
	// rest are good runners-up the driver may also apply in the same
	// round when their blocks do not conflict.
	FindCandidates(view *cfg.Program, graphs []*dfg.Graph, opts Options) []*Candidate
}

// candList keeps the best candidates seen, ordered by descending benefit
// (ties: earlier discovery wins, keeping runs deterministic).
type candList struct {
	cands []*Candidate
	limit int
}

func (cl *candList) best() *Candidate {
	if len(cl.cands) == 0 {
		return nil
	}
	return cl.cands[0]
}

func (cl *candList) add(c *Candidate) {
	pos := len(cl.cands)
	for pos > 0 && cl.cands[pos-1].Benefit < c.Benefit {
		pos--
	}
	cl.cands = append(cl.cands, nil)
	copy(cl.cands[pos+1:], cl.cands[pos:])
	cl.cands[pos] = c
	if len(cl.cands) > cl.limit {
		cl.cands = cl.cands[:cl.limit]
	}
}

// GraphMiner is graph-based PA: DgSpan when Embedding is false (support =
// number of blocks containing the fragment, one extraction per block),
// Edgar when true (support = maximum set of non-overlapping embeddings,
// all of them extracted).
type GraphMiner struct {
	Embedding bool
	// CanonicalMatch enables the paper's future-work fuzzy matching: node
	// labels keep only the mnemonic and operand shapes (Fig. 13), so
	// register renamings of a fragment unify. Extraction remains strict:
	// only occurrences that are textually identical to the first are
	// rewritten, so the transformation stays sound while the search
	// generalises.
	CanonicalMatch bool
}

// Name implements Miner.
func (m *GraphMiner) Name() string {
	if m.Embedding {
		if m.CanonicalMatch {
			return "edgar-canon"
		}
		return "edgar"
	}
	return "dgspan"
}

// MiningGraph converts a dependence graph into the miner's input form.
// Parallel dependence edges between the same instruction pair (e.g. a RAW
// plus a WAW through different registers) are merged into one edge whose
// label is the sorted bundle of dependence labels. This keeps the search
// lattice a simple-digraph lattice — far smaller than the multigraph one —
// and loses nothing: embeddings whose extra internal dependences differ
// would be rejected by the extraction-time induced-signature check anyway,
// so bundling just applies that filter during matching.
func MiningGraph(g *dfg.Graph, canonical bool) *mining.Graph {
	mg := &mining.Graph{ID: g.Block.ID, Labels: make([]string, g.N())}
	for i := 0; i < g.N(); i++ {
		if canonical {
			mg.Labels[i] = g.Block.Instrs[i].CanonicalKey()
		} else {
			mg.Labels[i] = g.NodeLabel(i)
		}
	}
	// PA-specific pruning (paper §3.5): the graph search only feeds call
	// extraction, so instructions that can never be outlined — barriers,
	// control transfers, lr traffic, or anything in a function whose lr
	// discipline forbids inserting calls — are permanently unextractable
	// here. Dropping their edges deletes those lattice branches before
	// the search starts. (Tail merging, the other mechanism, is a
	// suffix phenomenon: its candidates come from the sequence scan that
	// seeds every round, so nothing extractable is lost. The paper mined
	// these families too and paid hours of search for the "seldom"
	// cross jump, Fig. 12.)
	callable := CallSafe(g.Block.Fn)
	dead := func(i int) bool {
		return !callable || !arm.Abstractable(&g.Block.Instrs[i])
	}

	bundle := map[[2]int][]string{}
	var order [][2]int
	for _, e := range g.Edges {
		if dead(e.From) || dead(e.To) {
			continue
		}
		k := [2]int{e.From, e.To}
		if _, ok := bundle[k]; !ok {
			order = append(order, k)
		}
		bundle[k] = append(bundle[k], e.Label())
	}
	for _, k := range order {
		labels := bundle[k]
		sort.Strings(labels)
		mg.Edges = append(mg.Edges, mining.GEdge{From: k[0], To: k[1], Label: strings.Join(labels, "+")})
	}
	mg.Freeze()
	return mg
}

// FindCandidates implements Miner.
func (m *GraphMiner) FindCandidates(view *cfg.Program, graphs []*dfg.Graph, opts Options) []*Candidate {
	byID := map[int]*dfg.Graph{}
	var mgs []*mining.Graph
	for _, g := range graphs {
		byID[g.Block.ID] = g
		mgs = append(mgs, MiningGraph(g, m.CanonicalMatch))
	}
	kept := &candList{limit: opts.batch()}
	safe := callSafeCache{}
	// Seed the incumbent list with contiguous-sequence candidates. With
	// unbounded fragment size the graph search strictly subsumes the
	// sequence scan; under the fragment-size cap, seeding restores that
	// subsumption and gives the benefit-bound pruning a strong incumbent
	// from the first visited pattern (branch-and-bound with an initial
	// heuristic solution). DgSpan sees at most one occurrence per block,
	// consistent with its graph-count support.
	for _, c := range ScanSequences(graphs, opts, !m.Embedding) {
		kept.add(c)
	}
	maxK := opts.maxNodes()
	cfgm := mining.Config{
		MinSupport:       opts.minSupport(),
		MaxNodes:         maxK,
		EmbeddingSupport: m.Embedding,
		GreedyMIS:        opts.GreedyMIS,
		MaxPatterns:      opts.maxPatterns(),
		// Benefit-bound pruning: no descendant (support can only fall,
		// size is capped at maxK) can beat the incumbent best candidate.
		PruneSubtree: func(p *mining.Pattern) bool {
			best := kept.best()
			if best == nil {
				return false
			}
			sup := p.Support
			ub := CallBenefit(maxK, sup)
			if cb := CrossJumpBenefit(maxK, sup); cb > ub {
				ub = cb
			}
			return ub <= best.Benefit
		},
		// Extension groups whose raw candidate count cannot yield a
		// pattern beating the incumbent are dropped before their
		// embeddings are built.
		ViableCount: func(count int) bool {
			best := kept.best()
			if best == nil {
				return true
			}
			ub := CallBenefit(maxK, count)
			if cb := CrossJumpBenefit(maxK, count); cb > ub {
				ub = cb
			}
			return ub > best.Benefit
		},
	}

	mining.Mine(mgs, cfgm, func(p *mining.Pattern) {
		k := p.Code.NumNodes()
		if k < 2 {
			return
		}
		// Cheap gate before any independent-set work: the raw embedding
		// count bounds every support notion from above.
		ubRaw := CallBenefit(k, len(p.Embeddings))
		if cb := CrossJumpBenefit(k, len(p.Embeddings)); cb > ubRaw {
			ubRaw = cb
		}
		if ubRaw <= 0 {
			return
		}
		if len(kept.cands) >= kept.limit && ubRaw <= kept.cands[len(kept.cands)-1].Benefit {
			return
		}
		embs := p.Disjoint
		if !m.Embedding {
			// DgSpan's frequency is graph-count (that is p.Support here),
			// but extraction still outlines every non-overlapping
			// occurrence of the chosen fragment — the paper's miners
			// share one extraction back end (§2.1 phase 8); only the
			// DETECTION differs (§4.2: repeats within one block "remain
			// unnoticed", i.e. fragments frequent only there are never
			// found).
			embs = mining.DisjointEmbeddings(p.Embeddings, mining.Config{GreedyMIS: opts.GreedyMIS})
		}
		mUB := len(embs)
		ub := CallBenefit(k, mUB)
		if cb := CrossJumpBenefit(k, mUB); cb > ub {
			ub = cb
		}
		if ub <= 0 {
			return
		}
		// A candidate is only useful if it beats the weakest kept entry.
		minBen := 0
		if len(kept.cands) >= kept.limit {
			minBen = kept.cands[len(kept.cands)-1].Benefit
		}
		if ub <= minBen {
			return
		}
		cand := m.buildCandidate(byID, embs, k, safe, minBen)
		if cand == nil {
			return
		}
		kept.add(cand)
	})
	return kept.cands
}

// buildCandidate turns raw disjoint embeddings into a verified candidate,
// choosing the extraction method per the paper: fragments that include a
// block terminator are tail-merged, everything else is outlined. minBen
// is the benefit the candidate must beat to be useful; validation bails
// out as soon as that becomes impossible (validation — signatures and
// schedulability — dominates mining time otherwise).
func (m *GraphMiner) buildCandidate(byID map[int]*dfg.Graph, embs []*mining.Embedding, k int, safe callSafeCache, minBen int) *Candidate {
	if len(embs) == 0 {
		return nil
	}
	first := byID[embs[0].GID]
	firstOcc := Occurrence{Block: first.Block, Graph: first, Nodes: sortedNodes(embs[0].Nodes), DFS: embs[0].Nodes}
	hasTerm := containsTerminator(first, firstOcc.Nodes)

	// Embeddings must agree on their full induced dependence structure
	// (and instruction texts) to share one extracted body; keep only
	// those matching the first.
	reference := firstOcc.InducedSignature()

	benefit := func(m int) int {
		if hasTerm {
			return CrossJumpBenefit(k, m)
		}
		return CallBenefit(k, m)
	}

	var occs []Occurrence
	blFrags := map[*cfg.Block][][]int{}
	for i, e := range embs {
		// Bail as soon as even accepting every remaining embedding
		// cannot beat minBen.
		if benefit(len(occs)+len(embs)-i) <= minBen {
			return nil
		}
		g := byID[e.GID]
		occ := Occurrence{Block: g.Block, Graph: g, Nodes: sortedNodes(e.Nodes), DFS: e.Nodes}
		if hasTerm {
			if !crossJumpExtractable(g, occ.Nodes) {
				continue
			}
		} else {
			if !callExtractable(g, occ.Nodes, safe) {
				continue
			}
		}
		if occ.InducedSignature() != reference {
			continue
		}
		if !hasTerm {
			// Schedulability: the cheap convexity check covers the
			// common one-occurrence-per-block case; blocks collecting
			// several occurrences get a full trial contraction.
			if prev, ok := blFrags[g.Block]; ok {
				trial := append(append([][]int(nil), prev...), occ.Nodes)
				calls := make([]arm.Instr, len(trial))
				for ci := range calls {
					bl := arm.NewInstr(arm.BL)
					bl.Target = "__pa_probe"
					calls[ci] = bl
				}
				if _, ok := ScheduleContracted(g, trial, calls); !ok {
					continue
				}
				blFrags[g.Block] = trial
			} else {
				if !convexOK(g, occ.Nodes) {
					continue
				}
				blFrags[g.Block] = [][]int{occ.Nodes}
			}
		}
		occs = append(occs, occ)
	}
	b := benefit(len(occs))
	if len(occs) < 2 || b <= 0 || b <= minBen {
		return nil
	}
	return &Candidate{Size: k, Occs: occs, Method: methodOf(hasTerm), Benefit: b}
}

func methodOf(hasTerm bool) Method {
	if hasTerm {
		return MethodCrossJump
	}
	return MethodCall
}
