package pa

import (
	"fmt"
	"sort"
	"strings"

	"graphpa/internal/arm"
	"graphpa/internal/cfg"
	"graphpa/internal/dfg"
)

// Warm-starting the branch-and-bound incumbent (miners.go) needs the
// previous round's candidates back — but as data, not pointers: Apply
// rewrites blocks in place and Resplit (or a scratch rebuild) replaces
// the block objects, so a *Candidate from round n dangles in round n+1.
// The driver therefore stashes each candidate in relocatable form —
// function name, block position, DFS indices, and a content snapshot of
// the whole block — immediately after FindCandidates returns, while the
// view still matches the occurrences. Next round the miner relocates
// each occurrence by (name, position), accepts it only if the block
// content is byte-identical to the snapshot, and re-runs the full
// occurrence filter against the fresh dependence graphs. Content
// addressing is what keeps the two driver modes aligned: Resplit
// preserves flattened content exactly and the scratch rebuild
// reconstructs it, so a stashed occurrence relocates (or fails to) the
// same way in both — a precondition for the incremental/scratch
// byte-identity guarantee.

// carryOcc is one occurrence in relocatable form.
type carryOcc struct {
	fn     string
	idx    int   // position of the block in fn.Blocks at stash time
	dfs    []int // pattern coordinates (DFS index -> instruction index)
	instrs []arm.Instr // content snapshot of the whole block
}

// carryCand is one stashed candidate.
type carryCand struct {
	size int
	occs []carryOcc
}

// stashCarry converts a round's returned candidates into relocatable
// form against the pre-Apply view.
func stashCarry(view *cfg.Program, cands []*Candidate) []carryCand {
	if len(cands) == 0 {
		return nil
	}
	idxOf := make(map[*cfg.Block]int, len(view.Blocks))
	for _, fn := range view.Funcs {
		for i, b := range fn.Blocks {
			idxOf[b] = i
		}
	}
	out := make([]carryCand, 0, len(cands))
	for _, c := range cands {
		if c == nil {
			continue
		}
		cc := carryCand{size: c.Size, occs: make([]carryOcc, 0, len(c.Occs))}
		for _, o := range c.Occs {
			i, ok := idxOf[o.Block]
			if !ok {
				continue
			}
			cc.occs = append(cc.occs, carryOcc{
				fn:     o.Block.Fn.Name,
				idx:    i,
				dfs:    append([]int(nil), o.DFS...),
				instrs: append([]arm.Instr(nil), o.Block.Instrs...),
			})
		}
		if len(cc.occs) >= 2 {
			out = append(out, cc)
		}
	}
	return out
}

// revalidateCarry relocates the previous round's stash against the
// current view and re-runs the occurrence filter, returning the
// candidates that still stand. Candidates whose blocks were rewritten by
// the extraction fail the content check and drop out — exactly the ones
// whose savings were already taken.
func (m *GraphMiner) revalidateCarry(view *cfg.Program, graphs []*dfg.Graph, carry []carryCand, safe callSafeCache) []*Candidate {
	if len(carry) == 0 {
		return nil
	}
	fnByName := make(map[string]*cfg.Func, len(view.Funcs))
	for _, fn := range view.Funcs {
		fnByName[fn.Name] = fn
	}
	graphOf := make(map[*cfg.Block]*dfg.Graph, len(graphs))
	for _, g := range graphs {
		graphOf[g.Block] = g
	}
	var out []*Candidate
	for _, cc := range carry {
		var reloc []Occurrence
		for _, co := range cc.occs {
			fn := fnByName[co.fn]
			if fn == nil || co.idx >= len(fn.Blocks) {
				continue
			}
			b := fn.Blocks[co.idx]
			if !instrsEqual(b.Instrs, co.instrs) {
				continue
			}
			g := graphOf[b]
			if g == nil {
				continue
			}
			dfsN := append([]int(nil), co.dfs...)
			reloc = append(reloc, Occurrence{Block: b, Graph: g, Nodes: sortedNodes(dfsN), DFS: dfsN})
		}
		if len(reloc) < 2 {
			continue
		}
		if c := m.refilterOccs(cc.size, reloc, safe); c != nil {
			out = append(out, c)
		}
	}
	return out
}

// refilterOccs mirrors buildCandidate's occurrence filter over relocated
// occurrences: same reference signature, same extractability and
// schedulability checks, same admission rule — only the mining-side
// bail-out threshold is absent (the caller wants every surviving
// candidate, not just incumbent-beating ones; the warm floor is taken
// afterwards). Keeping the two filters behaviourally identical is what
// lets a carried candidate stand in for the mined rediscovery of the
// same fragment.
func (m *GraphMiner) refilterOccs(k int, reloc []Occurrence, safe callSafeCache) *Candidate {
	first := reloc[0]
	hasTerm := containsTerminator(first.Graph, first.Nodes)
	reference := first.InducedSignature()

	var occs []Occurrence
	blFrags := map[*cfg.Block][][]int{}
	for i := range reloc {
		occ := reloc[i]
		if hasTerm {
			if !crossJumpExtractable(occ.Graph, occ.Nodes) {
				continue
			}
		} else {
			if !callExtractable(occ.Graph, occ.Nodes, safe) {
				continue
			}
		}
		if occ.InducedSignature() != reference {
			continue
		}
		if !hasTerm {
			if prev, ok := blFrags[occ.Block]; ok {
				trial := append(append([][]int(nil), prev...), occ.Nodes)
				calls := make([]arm.Instr, len(trial))
				for ci := range calls {
					bl := arm.NewInstr(arm.BL)
					bl.Target = "__pa_probe"
					calls[ci] = bl
				}
				if _, ok := ScheduleContracted(occ.Graph, trial, calls); !ok {
					continue
				}
				blFrags[occ.Block] = trial
			} else {
				if !convexOK(occ.Graph, occ.Nodes) {
					continue
				}
				blFrags[occ.Block] = [][]int{occ.Nodes}
			}
		}
		occs = append(occs, occ)
	}
	var b int
	if hasTerm {
		b = CrossJumpBenefit(k, len(occs))
	} else {
		b = CallBenefit(k, len(occs))
	}
	if len(occs) < 2 || b <= 0 {
		return nil
	}
	return &Candidate{Size: k, Occs: occs, Method: methodOf(hasTerm), Benefit: b}
}

// candKey is a canonical identity for a candidate: extraction method,
// fragment size, and each occurrence's block ID plus full DFS index
// sequence, with unambiguous separators. Two candidates with equal keys
// specify identical rewrites, so the merge below may keep either.
func candKey(c *Candidate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s#%d", c.Method, c.Size)
	for i := range c.Occs {
		o := &c.Occs[i]
		fmt.Fprintf(&b, "|%d:", o.Block.ID)
		for j, n := range o.DFS {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", n)
		}
	}
	return b.String()
}

// mergeCandidates builds FindCandidates' return list from the mined tie
// set and the warm-start pool (sequence seeds plus revalidated carry):
// sort by descending benefit with the canonical key as tie-break, drop
// key duplicates, truncate to the driver's batch size. Every input is an
// order-invariant set and the comparator is total on distinct rewrites,
// so the returned list is identical whatever order the walk produced the
// ties in — the keystone of the lexicographic/benefit-directed Result
// identity.
func mergeCandidates(limit int, mined, warm []*Candidate) []*Candidate {
	all := make([]*Candidate, 0, len(mined)+len(warm))
	all = append(all, mined...)
	all = append(all, warm...)
	if len(all) == 0 {
		return nil
	}
	keys := make(map[*Candidate]string, len(all))
	for _, c := range all {
		keys[c] = candKey(c)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Benefit != all[j].Benefit {
			return all[i].Benefit > all[j].Benefit
		}
		return keys[all[i]] < keys[all[j]]
	})
	out := all[:0]
	for i, c := range all {
		if i > 0 && keys[c] == keys[all[i-1]] {
			continue
		}
		out = append(out, c)
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
