package bench

import (
	"testing"

	"graphpa/internal/codegen"
	"graphpa/internal/core"
	"graphpa/internal/pa"
)

// TestRijndaelEdgarRegression is the permanent regression for the
// call-summary soundness bug (see DESIGN.md §6): Edgar on unoptimized,
// scheduled rijndael used to hoist an eor past an outlined procedure that
// consumed its result, corrupting AES decryption. A full optimize +
// differential verify must pass.
func TestRijndaelEdgarRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("full rijndael optimization")
	}
	w, err := Build("rijndael", codegen.Options{Schedule: true})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := core.MinerByName("edgar")
	// Eight rounds cover the historical failure (round 7) at a fraction
	// of the full fixpoint's cost.
	res, img, err := core.Optimize(w.Image, m, pa.Options{MaxRounds: 8, MaxPatterns: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyEquivalent(w.Image, img, nil); err != nil {
		t.Fatalf("VERIFY FAILED: %v", err)
	}
	t.Logf("saved=%d rounds=%d dur=%v", res.Saved(), res.Rounds, res.Duration)
}
