// Package dictdiff holds the dictionary warm-start differential over the
// full benchmark suite. It lives outside internal/bench on purpose: the
// differential re-optimizes every benchmark three times (dictionary
// seeding plus both worker widths), and internal/bench already runs
// close to Go's default 10-minute per-package test timeout on a 1-core
// host — this package buys the heavy differential its own budget.
package dictdiff

// The dictionary differential: a pre-populated fragment dictionary may
// change how much lattice the miner walks, never what it produces. Every
// benchmark is optimized cold (no dictionary) and warm (dictionary
// populated by a prior run of the same program) at both worker widths,
// and the warm images must be byte-identical to the cold ones while the
// warm walk visits no more patterns than the cold walk.
//
// Equality of the visit counts is the expected steady state here, not a
// failure: the benefit-directed walk converges on the optimum within the
// first few visits, and on these benchmarks the sequence-scan seeds
// already floor the incumbent at the dictionary fragment's benefit, so
// the dictionary floor prunes nothing extra. Where the dictionary floor
// IS strictly higher (rijndael, sha), the walk truncates at MaxPatterns
// and the warm result is discarded by design — the fallback replays the
// cold walk exactly (see TestDictWarmstartTruncationFallback in
// internal/pa). What this test pins is the hard part: hits > 0 and the
// inequality never flips.

import (
	"path/filepath"
	"testing"

	"graphpa/internal/bench"
	"graphpa/internal/core"
	"graphpa/internal/dict"
	"graphpa/internal/link"
	"graphpa/internal/pa"
)

// maxPatterns mirrors internal/bench's deterministic cap: large enough
// that rijndael and sha truncate non-trivially (exercising the
// discard-and-fallback path), small enough for CI time.
const maxPatterns = 30000

func totalVisits(r *pa.Result) int {
	n := 0
	for i := range r.RoundStats {
		n += r.RoundStats[i].Visits
	}
	return n
}

func sameImage(a, b *link.Image) bool {
	if a.TextWords != b.TextWords || a.Entry != b.Entry || len(a.Words) != len(b.Words) {
		return false
	}
	for i := range a.Words {
		if a.Words[i] != b.Words[i] {
			return false
		}
	}
	return true
}

func TestDictWarmstartDifferential(t *testing.T) {
	names := bench.Names
	if testing.Short() {
		names = []string{"crc", "search"}
	}
	m, err := core.MinerByName("edgar")
	if err != nil {
		t.Fatal(err)
	}
	anyHits := false
	for _, n := range names {
		w, err := bench.Build(n, bench.DefaultCodegen())
		if err != nil {
			t.Fatal(err)
		}
		// One cold reference run: W=8 reproduces W=1 byte-for-byte
		// including RoundStats (pinned by internal/bench's determinism
		// suite), so both warm widths compare against this one.
		cold, coldImg, err := core.Optimize(w.Image, m,
			pa.Options{MaxPatterns: maxPatterns, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		d, err := dict.Open(dict.Options{Path: filepath.Join(t.TempDir(), n+".dict")})
		if err != nil {
			t.Fatal(err)
		}
		// Populate: a first warm run against the empty dictionary. No
		// fragments, no floor — it must already match the cold run.
		seedRes, seedImg, err := core.Optimize(w.Image, m,
			pa.Options{MaxPatterns: maxPatterns, Workers: 1, Warmstart: d})
		if err != nil {
			t.Fatal(err)
		}
		if !sameImage(seedImg, coldImg) {
			t.Errorf("%s: empty-dictionary run diverges from cold run", n)
		}
		if totalVisits(seedRes) != totalVisits(cold) {
			t.Errorf("%s: empty-dictionary run visited %d patterns, cold visited %d",
				n, totalVisits(seedRes), totalVisits(cold))
		}

		for _, workers := range []int{1, 8} {
			warm, warmImg, err := core.Optimize(w.Image, m,
				pa.Options{MaxPatterns: maxPatterns, Workers: workers, Warmstart: d})
			if err != nil {
				t.Fatal(err)
			}
			if !sameImage(warmImg, coldImg) {
				t.Errorf("%s W=%d: warm image differs from cold image", n, workers)
				continue
			}
			if len(warm.Extractions) != len(cold.Extractions) {
				t.Errorf("%s W=%d: %d warm extractions vs %d cold",
					n, workers, len(warm.Extractions), len(cold.Extractions))
				continue
			}
			for i := range warm.Extractions {
				if warm.Extractions[i] != cold.Extractions[i] {
					t.Errorf("%s W=%d: extraction %d diverges:\nwarm: %+v\ncold: %+v",
						n, workers, i, warm.Extractions[i], cold.Extractions[i])
				}
			}
			if warm.DictHits() > 0 {
				anyHits = true
			}
			wv, cv := totalVisits(warm), totalVisits(cold)
			if wv > cv {
				t.Errorf("%s W=%d: warm walk visited more than cold: %d > %d", n, workers, wv, cv)
			}
		}
		d.Close()
	}
	if !anyHits {
		t.Error("no benchmark revalidated a single dictionary fragment")
	}
}
