package bench

// End-to-end proof of the tentpole claim: the parallel optimizer is
// byte-identical to the serial one. Each benchmark is optimized twice —
// Workers=1 (the exact historical serial pipeline) and Workers=8 (well
// past any core count that changes scheduling here) — and both the
// optimization report and the re-linked binary images must match
// exactly. The differential test then emulates every parallel-optimized
// binary against its unoptimized original. Short mode keeps the two
// fastest programs; the full run covers the whole suite.

import (
	"sync"
	"testing"

	"graphpa/internal/core"
	"graphpa/internal/link"
	"graphpa/internal/pa"
)

// detMaxPatterns matches the root-level benchmark budget: large enough
// that rijndael's search is non-trivially truncated, small enough to keep
// the full suite in CI time.
const detMaxPatterns = 30000

type detEntry struct {
	w         *Workload
	serial    *pa.Result
	parallel  *pa.Result
	serialImg *link.Image
	parImg    *link.Image
}

var det = struct {
	once    sync.Once
	err     error
	names   []string
	entries map[string]*detEntry
}{}

// detEntries builds and optimizes the benchmark set once per test
// binary, at both widths, and shares the images across the determinism
// and differential tests.
func detEntries(t *testing.T) (names []string, entries map[string]*detEntry) {
	t.Helper()
	det.once.Do(func() {
		det.names = Names
		if testing.Short() {
			det.names = []string{"crc", "search"}
		}
		det.entries = map[string]*detEntry{}
		m, err := core.MinerByName("edgar")
		if err != nil {
			det.err = err
			return
		}
		for _, n := range det.names {
			w, err := Build(n, DefaultCodegen())
			if err != nil {
				det.err = err
				return
			}
			e := &detEntry{w: w}
			e.serial, e.serialImg, err = core.Optimize(w.Image, m,
				pa.Options{MaxPatterns: detMaxPatterns, Workers: 1})
			if err != nil {
				det.err = err
				return
			}
			e.parallel, e.parImg, err = core.Optimize(w.Image, m,
				pa.Options{MaxPatterns: detMaxPatterns, Workers: 8})
			if err != nil {
				det.err = err
				return
			}
			det.entries[n] = e
		}
	})
	if det.err != nil {
		t.Fatal(det.err)
	}
	return det.names, det.entries
}

func sameImage(a, b *link.Image) bool {
	if a.TextWords != b.TextWords || a.Entry != b.Entry || len(a.Words) != len(b.Words) {
		return false
	}
	for i := range a.Words {
		if a.Words[i] != b.Words[i] {
			return false
		}
	}
	return true
}

// TestParallelOptimizeDeterministic: Workers=8 must reproduce the
// Workers=1 optimization exactly — same rounds, same extraction sequence
// (names, methods, sizes, occurrence counts, benefits) and the same
// final binary, on every benchmark program.
func TestParallelOptimizeDeterministic(t *testing.T) {
	names, entries := detEntries(t)
	for _, n := range names {
		e := entries[n]
		s, p := e.serial, e.parallel
		if s.Before != p.Before || s.After != p.After || s.Rounds != p.Rounds {
			t.Errorf("%s: totals diverge: serial %d->%d in %d rounds, parallel %d->%d in %d rounds",
				n, s.Before, s.After, s.Rounds, p.Before, p.After, p.Rounds)
			continue
		}
		if len(s.Extractions) != len(p.Extractions) {
			t.Errorf("%s: %d serial extractions vs %d parallel", n, len(s.Extractions), len(p.Extractions))
			continue
		}
		for i := range s.Extractions {
			if s.Extractions[i] != p.Extractions[i] {
				t.Errorf("%s: extraction %d diverges:\nserial:   %+v\nparallel: %+v",
					n, i, s.Extractions[i], p.Extractions[i])
			}
		}
		if !sameImage(e.serialImg, e.parImg) {
			t.Errorf("%s: optimized images differ between Workers=1 and Workers=8", n)
		}
	}
}

// TestParallelOptimizedBinariesBehave: every binary produced by the
// parallel pipeline must behave exactly like its unoptimized original
// (exit code and output) under the emulator — the same differential
// check the harness applies, aimed specifically at the parallel path.
func TestParallelOptimizedBinariesBehave(t *testing.T) {
	names, entries := detEntries(t)
	for _, n := range names {
		e := entries[n]
		if err := core.VerifyEquivalent(e.w.Image, e.parImg, nil); err != nil {
			t.Errorf("%s: parallel-optimized binary diverges: %v", n, err)
		}
	}
}
