package bench

import (
	"strings"
	"testing"

	"graphpa/internal/pa"
)

// smallEval runs the full evaluation machinery on a two-program subset —
// the integration test of the harness (the full suite runs in the root
// benchmarks and cmd/paper-tables).
func smallEval(t *testing.T) ([]*Workload, *Evaluation) {
	t.Helper()
	var ws []*Workload
	for _, n := range []string{"crc", "sha"} {
		w, err := Build(n, DefaultCodegen())
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	ev, err := Evaluate(ws, []string{"sfx", "dgspan", "edgar"}, pa.Options{MaxPatterns: 30000}, true)
	if err != nil {
		t.Fatal(err)
	}
	return ws, ev
}

func TestEvaluateAndTables(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluation subset takes tens of seconds")
	}
	ws, ev := smallEval(t)

	// Paper shape on the subset: graph-based Edgar must not lose to the
	// graph-based DgSpan, and every miner must save something on these
	// duplication-heavy programs.
	for _, w := range ws {
		sfx, dg, ed := ev.Saved(w.Name, "sfx"), ev.Saved(w.Name, "dgspan"), ev.Saved(w.Name, "edgar")
		t.Logf("%s: sfx=%d dgspan=%d edgar=%d", w.Name, sfx, dg, ed)
		if ed < dg {
			t.Errorf("%s: edgar (%d) < dgspan (%d)", w.Name, ed, dg)
		}
		if ed <= 0 || sfx <= 0 {
			t.Errorf("%s: nothing saved (sfx=%d edgar=%d)", w.Name, sfx, ed)
		}
	}
	if ev.TotalSaved("edgar") < ev.TotalSaved("sfx") {
		t.Errorf("edgar total (%d) below sfx total (%d)", ev.TotalSaved("edgar"), ev.TotalSaved("sfx"))
	}

	t1 := Table1(ev)
	for _, want := range []string{"Table 1", "crc", "sha", "total", "Edgar"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 missing %q:\n%s", want, t1)
		}
	}
	f11 := Figure11(ev)
	if !strings.Contains(f11, "%") || !strings.Contains(f11, "DgSpan") {
		t.Errorf("Figure11 malformed:\n%s", f11)
	}
	t2 := Table2(ws)
	if !strings.Contains(t2, "degree > 1") {
		t.Errorf("Table2 malformed:\n%s", t2)
	}
	t3 := Table3(ws)
	if !strings.Contains(t3, ">=4") || !strings.Contains(t3, "Out") {
		t.Errorf("Table3 malformed:\n%s", t3)
	}
	f12 := Figure12(ev)
	if !strings.Contains(f12, "cross jumps") {
		t.Errorf("Figure12 malformed:\n%s", f12)
	}
	tm := Timings(ev)
	if !strings.Contains(tm, "total") {
		t.Errorf("Timings malformed:\n%s", tm)
	}
	t.Logf("\n%s\n%s\n%s", t1, f11, f12)
}

// TestTable2ShapeHolds checks the paper's structural claim: more than a
// third of instructions sit on high fan-in/fan-out nodes (the reordering
// potential SFX cannot see).
func TestTable2ShapeHolds(t *testing.T) {
	w, err := Build("rijndael", DefaultCodegen())
	if err != nil {
		t.Fatal(err)
	}
	s := w.Stats()
	frac := float64(s.HighDegree) / float64(s.HighDegree+s.LowDegree)
	t.Logf("rijndael: high=%d low=%d (%.0f%%)", s.HighDegree, s.LowDegree, 100*frac)
	if frac < 0.2 {
		t.Errorf("high-degree fraction %.2f implausibly low", frac)
	}
}
