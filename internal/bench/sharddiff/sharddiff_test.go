// Package sharddiff holds the sharded-search differential over the full
// benchmark suite. Like dictdiff it lives outside internal/bench on
// purpose: the differential re-optimizes every benchmark four times
// (plain reference, 3-shard at both worker widths, 3-shard with a shard
// killed mid-run), and internal/bench already runs close to Go's default
// per-package test timeout on a 1-core host.
package sharddiff

// The shard differential: distributing the per-seed lattice speculation
// across shard sessions may change where the speculative work runs,
// never what the coordinator's replay produces. Every benchmark is
// optimized plain (the NoMultires walk sharding forces) and sharded
// over 3 in-process shards — each shard decoding its own copy of the
// walk request, so every payload crosses the real wire codec — and the
// sharded images must be byte-identical, hash included, at both worker
// widths. A fourth run kills one shard after its first served seed: the
// dead shard's seeds degrade to coordinator-local speculation, which
// must cost replay fallbacks only, never a byte of output.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"graphpa/internal/bench"
	"graphpa/internal/core"
	"graphpa/internal/link"
	"graphpa/internal/mining"
	"graphpa/internal/pa"
)

// maxPatterns mirrors internal/bench's deterministic cap: large enough
// that rijndael and sha truncate non-trivially, small enough for CI.
const maxPatterns = 30000

func sameImage(a, b *link.Image) bool {
	if a.TextWords != b.TextWords || a.Entry != b.Entry || len(a.Words) != len(b.Words) {
		return false
	}
	for i := range a.Words {
		if a.Words[i] != b.Words[i] {
			return false
		}
	}
	return true
}

// shardDialer is an in-process pa.ShardDialer: each shard is a
// mining.SpecSession over its own decode of the walk request. killShard
// >= 0 injects the fault — that shard dies after killAfter served
// seeds in each walk.
type shardDialer struct {
	n         int
	killShard int
	killAfter int64
}

func (d *shardDialer) NumShards() int { return d.n }

func (d *shardDialer) NewWalk(_ context.Context, req []byte) (pa.ShardWalk, error) {
	w := &shardWalk{d: d}
	for i := 0; i < d.n; i++ {
		sc, graphs, err := mining.DecodeShardWalk(req)
		if err != nil {
			return nil, err
		}
		w.shards = append(w.shards, &shard{sess: mining.NewSpecSession(graphs, sc)})
	}
	return w, nil
}

type shard struct {
	sess  *mining.SpecSession
	dead  atomic.Bool
	calls atomic.Int64
}

type shardWalk struct {
	d          *shardDialer
	shards     []*shard
	broadcasts atomic.Int64
}

func (w *shardWalk) Speculate(ctx context.Context, seed int) ([]byte, error) {
	si := seed % len(w.shards)
	sh := w.shards[si]
	if sh.dead.Load() {
		return nil, errors.New("sharddiff: shard killed")
	}
	data, err := sh.sess.MineSeed(ctx, seed)
	if err == nil && si == w.d.killShard && sh.calls.Add(1) >= w.d.killAfter {
		sh.dead.Store(true)
	}
	return data, err
}

func (w *shardWalk) Broadcast(floor int) {
	w.broadcasts.Add(1)
	for _, sh := range w.shards {
		if !sh.dead.Load() {
			sh.sess.SetFloor(floor)
		}
	}
}

func (w *shardWalk) Close() pa.ShardWalkStats {
	var st pa.ShardWalkStats
	st.Broadcasts = int(w.broadcasts.Load())
	for _, sh := range w.shards {
		st.SpecVisits += sh.sess.Visits()
	}
	return st
}

func shardStats(r *pa.Result) (seeds, subtrees, fallbacks int) {
	for i := range r.RoundStats {
		seeds += r.RoundStats[i].ShardSeeds
		subtrees += r.RoundStats[i].ShardSubtrees
		fallbacks += r.RoundStats[i].ShardFallbacks
	}
	return
}

func TestShardDifferential(t *testing.T) {
	names := bench.Names
	if testing.Short() {
		names = []string{"crc", "search"}
	}
	m, err := core.MinerByName("edgar")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		w, err := bench.Build(n, bench.DefaultCodegen())
		if err != nil {
			t.Fatal(err)
		}
		// One plain reference run: W=8 reproduces W=1 byte-for-byte
		// (pinned by internal/bench's determinism suite), so all sharded
		// variants compare against this one.
		ref, refImg, err := core.Optimize(w.Image, m,
			pa.Options{MaxPatterns: maxPatterns, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}

		for _, workers := range []int{1, 8} {
			res, img, err := core.Optimize(w.Image, m, pa.Options{
				MaxPatterns: maxPatterns, Workers: workers,
				Shards: &shardDialer{n: 3, killShard: -1},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !sameImage(img, refImg) || img.Hash() != refImg.Hash() {
				t.Errorf("%s W=%d: 3-shard image hash %s differs from plain %s",
					n, workers, img.Hash(), refImg.Hash())
				continue
			}
			if res.Saved() != ref.Saved() || res.Rounds != ref.Rounds {
				t.Errorf("%s W=%d: sharded run saved %d in %d rounds, plain %d in %d",
					n, workers, res.Saved(), res.Rounds, ref.Saved(), ref.Rounds)
			}
			seeds, subtrees, fallbacks := shardStats(res)
			if seeds == 0 || subtrees != seeds || fallbacks != 0 {
				t.Errorf("%s W=%d: healthy shard accounting seeds=%d subtrees=%d fallbacks=%d; want every seed streamed",
					n, workers, seeds, subtrees, fallbacks)
			}
		}

		// Fault injection: shard 1 dies after its first served seed of
		// every walk. Byte-identity must survive; only the accounting moves.
		res, img, err := core.Optimize(w.Image, m, pa.Options{
			MaxPatterns: maxPatterns, Workers: 1,
			Shards: &shardDialer{n: 3, killShard: 1, killAfter: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !sameImage(img, refImg) || img.Hash() != refImg.Hash() {
			t.Errorf("%s: image hash changed after killing a shard mid-run: %s vs %s",
				n, img.Hash(), refImg.Hash())
		}
		seeds, subtrees, fallbacks := shardStats(res)
		if fallbacks == 0 {
			t.Errorf("%s: killed shard produced no fallbacks (seeds=%d)", n, seeds)
		}
		// Requests aborted by end-of-walk cancellation (rijndael's budget
		// truncation) are deliberately neither streamed nor fallbacks, so
		// the books may come up short — but never over.
		if subtrees+fallbacks > seeds {
			t.Errorf("%s: fault accounting seeds=%d subtrees=%d fallbacks=%d overcounts",
				n, seeds, subtrees, fallbacks)
		}
	}
}
