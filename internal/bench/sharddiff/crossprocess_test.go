package sharddiff

// The cross-process A/B: rijndael — the benchmark whose truncating walk
// the shard protocol targets — optimized single-process and with its
// speculation distributed over real `pad serve` worker processes on
// loopback, via the same HTTP ShardPool `pad serve -shards` uses. The
// image hashes must match in every configuration, including after one
// worker process is SIGKILLed mid-run. Wall clock and total speculative
// visits are logged (run with -v) for DESIGN.md §13's honest overhead
// numbers; on a single-core host the sharded run is strictly overhead —
// the point of the A/B is measuring it, not winning it.

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"graphpa/internal/bench"
	"graphpa/internal/core"
	"graphpa/internal/pa"
	"graphpa/internal/service"
)

// startWorker boots one `pad serve` worker process on an ephemeral port
// and returns its bound address and a kill func.
func startWorker(t *testing.T, padBin, dir string, i int) (string, func()) {
	t.Helper()
	addrFile := filepath.Join(dir, "addr"+string(rune('0'+i)))
	logFile, err := os.Create(filepath.Join(dir, "worker"+string(rune('0'+i))+".log"))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(padBin, "serve", "-addr", "127.0.0.1:0", "-addr-file", addrFile, "-shard-of", "sharddiff-test")
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	kill := func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
		logFile.Close()
	}
	t.Cleanup(kill)
	for j := 0; ; j++ {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 1 {
			return string(data[:len(data)-1]), kill
		}
		if j > 100 {
			t.Fatalf("worker %d never wrote its address", i)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func specVisits(r *pa.Result) (local, remote int64) {
	for i := range r.RoundStats {
		local += int64(r.RoundStats[i].Visits)
		remote += int64(r.RoundStats[i].ShardSpecVisits)
	}
	return
}

func TestShardCrossProcessAB(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-process A/B builds and boots pad daemons; skipped in short mode")
	}
	dir := t.TempDir()
	padBin := filepath.Join(dir, "pad")
	build := exec.Command("go", "build", "-o", padBin, "graphpa/cmd/pad")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pad: %v\n%s", err, out)
	}

	w, err := bench.Build("rijndael", bench.DefaultCodegen())
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.MinerByName("edgar")
	if err != nil {
		t.Fatal(err)
	}

	// A: single-process plain walk (the arm sharding forces).
	start := time.Now()
	refRes, refImg, err := core.Optimize(w.Image, m,
		pa.Options{MaxPatterns: maxPatterns, Workers: 1, NoMultires: true})
	if err != nil {
		t.Fatal(err)
	}
	plainWall := time.Since(start)
	plainVisits, _ := specVisits(refRes)

	addrs := make([]string, 3)
	kills := make([]func(), 3)
	for i := range addrs {
		addrs[i], kills[i] = startWorker(t, padBin, dir, i)
	}

	// B: same walk, speculation distributed across the 3 worker processes.
	pool := service.NewShardPool(addrs, nil)
	start = time.Now()
	res, img, err := core.Optimize(w.Image, m,
		pa.Options{MaxPatterns: maxPatterns, Workers: 1, Shards: pool})
	if err != nil {
		t.Fatal(err)
	}
	shardWall := time.Since(start)
	replayVisits, remoteVisits := specVisits(res)
	if img.Hash() != refImg.Hash() {
		t.Fatalf("3-worker cross-process image hash %s differs from single-process %s",
			img.Hash(), refImg.Hash())
	}
	seeds, subtrees, fallbacks := shardStats(res)
	if seeds == 0 || subtrees == 0 {
		t.Fatalf("cross-process run used no shards (seeds=%d subtrees=%d)", seeds, subtrees)
	}

	// C: one worker process SIGKILLed shortly after the walk starts.
	pool2 := service.NewShardPool(addrs, nil)
	killTimer := time.AfterFunc(200*time.Millisecond, kills[1])
	defer killTimer.Stop()
	start = time.Now()
	res2, img2, err := core.Optimize(w.Image, m,
		pa.Options{MaxPatterns: maxPatterns, Workers: 1, Shards: pool2})
	if err != nil {
		t.Fatal(err)
	}
	faultWall := time.Since(start)
	if img2.Hash() != refImg.Hash() {
		t.Fatalf("image hash changed after SIGKILLing a worker mid-run: %s vs %s",
			img2.Hash(), refImg.Hash())
	}
	_, _, fallbacks2 := shardStats(res2)

	t.Logf("rijndael cross-process A/B (maxpatterns=%d, W=1, %d cores):", maxPatterns, runtime.NumCPU())
	t.Logf("  plain     : wall=%v replay_visits=%d", plainWall.Round(time.Millisecond), plainVisits)
	t.Logf("  3 shards  : wall=%v replay_visits=%d remote_spec_visits=%d seeds=%d subtrees=%d fallbacks=%d",
		shardWall.Round(time.Millisecond), replayVisits, remoteVisits, seeds, subtrees, fallbacks)
	t.Logf("  1 killed  : wall=%v fallbacks=%d", faultWall.Round(time.Millisecond), fallbacks2)
}
