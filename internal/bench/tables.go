package bench

import (
	"fmt"
	"strings"
	"time"
)

// This file renders the paper's evaluation artifacts (§4.2) from an
// Evaluation: Table 1 (saved instructions), Figure 11 (relative increase
// over SFX), Table 2 (high-degree instruction counts), Table 3 (degree
// histograms), Figure 12 (extraction mechanisms) and the runtime summary.

// Table1 renders "Saved instructions in the benchmark suite".
func Table1(ev *Evaluation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Saved instructions in the benchmark suite\n")
	fmt.Fprintf(&b, "%-10s %13s | %8s %8s %8s\n", "Program", "#Instructions", "SFX", "DgSpan", "Edgar")
	total := map[string]int{}
	totalInstrs := 0
	for _, w := range ev.Workloads {
		fmt.Fprintf(&b, "%-10s %13d |", w.Name, w.Instrs)
		totalInstrs += w.Instrs
		for _, mn := range []string{"sfx", "dgspan", "edgar"} {
			s := ev.Saved(w.Name, mn)
			total[mn] += s
			fmt.Fprintf(&b, " %8d", s)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-10s %13d |", "total", totalInstrs)
	for _, mn := range []string{"sfx", "dgspan", "edgar"} {
		fmt.Fprintf(&b, " %8d", total[mn])
	}
	b.WriteByte('\n')
	return b.String()
}

// Figure11 renders the relative increase of graph-based savings over the
// suffix baseline, per program (the paper's bar chart, as text).
func Figure11(ev *Evaluation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: Relative increase of savings vs SFX (percent)\n")
	fmt.Fprintf(&b, "%-10s %10s %10s\n", "Program", "DgSpan", "Edgar")
	pct := func(graph, sfx int) string {
		if sfx == 0 {
			if graph == 0 {
				return "0"
			}
			return "inf"
		}
		return fmt.Sprintf("%+.0f%%", 100*float64(graph-sfx)/float64(sfx))
	}
	for _, w := range ev.Workloads {
		s := ev.Saved(w.Name, "sfx")
		fmt.Fprintf(&b, "%-10s %10s %10s\n", w.Name,
			pct(ev.Saved(w.Name, "dgspan"), s), pct(ev.Saved(w.Name, "edgar"), s))
	}
	st := ev.TotalSaved("sfx")
	fmt.Fprintf(&b, "%-10s %10s %10s\n", "total",
		pct(ev.TotalSaved("dgspan"), st), pct(ev.TotalSaved("edgar"), st))
	return b.String()
}

// Table2 renders the count of instructions with fan-in or fan-out greater
// than one in the mined dependence graphs.
func Table2(ws []*Workload) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Instructions with (degree_in or degree_out) > 1 in all DFGs\n")
	fmt.Fprintf(&b, "%-10s %12s %12s\n", "Program", "degree > 1", "degree <= 1")
	th, tl := 0, 0
	for _, w := range ws {
		s := w.Stats()
		fmt.Fprintf(&b, "%-10s %12d %12d\n", w.Name, s.HighDegree, s.LowDegree)
		th += s.HighDegree
		tl += s.LowDegree
	}
	fmt.Fprintf(&b, "%-10s %12d %12d\n", "total", th, tl)
	return b.String()
}

// Table3 renders the in/out degree histograms (0, 1, 2, 3, >=4).
func Table3(ws []*Workload) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Indegree and outdegree of all instructions\n")
	fmt.Fprintf(&b, "%-10s %-4s %8s %8s %8s %8s %8s\n", "Program", "Type", "0", "1", "2", "3", ">=4")
	var tin, tout [5]int
	for _, w := range ws {
		s := w.Stats()
		fmt.Fprintf(&b, "%-10s %-4s", w.Name, "In")
		for i := 0; i < 5; i++ {
			fmt.Fprintf(&b, " %8d", s.In[i])
			tin[i] += s.In[i]
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "%-10s %-4s", "", "Out")
		for i := 0; i < 5; i++ {
			fmt.Fprintf(&b, " %8d", s.Out[i])
			tout[i] += s.Out[i]
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-10s %-4s", "total", "In")
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&b, " %8d", tin[i])
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-10s %-4s", "", "Out")
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&b, " %8d", tout[i])
	}
	b.WriteByte('\n')
	return b.String()
}

// Figure12 renders the extraction-mechanism split per miner.
func Figure12(ev *Evaluation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: Extraction mechanisms used\n")
	fmt.Fprintf(&b, "%-10s %12s %12s\n", "Miner", "calls", "cross jumps")
	for _, mn := range []string{"sfx", "dgspan", "edgar"} {
		if _, ok := ev.Results[ev.Workloads[0].Name][mn]; !ok {
			continue
		}
		c, x := ev.Mechanisms(mn)
		fmt.Fprintf(&b, "%-10s %12d %12d\n", mn, c, x)
	}
	return b.String()
}

// Timings renders per-program optimization wall clock (the §4.2 runtime
// discussion: DgSpan averaged 50 s, Edgar 90 s, rijndael dominating).
func Timings(ev *Evaluation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Optimization time per program\n")
	fmt.Fprintf(&b, "%-10s", "Program")
	for _, mn := range []string{"sfx", "dgspan", "edgar"} {
		fmt.Fprintf(&b, " %12s", mn)
	}
	b.WriteByte('\n')
	sums := map[string]time.Duration{}
	for _, w := range ev.Workloads {
		fmt.Fprintf(&b, "%-10s", w.Name)
		for _, mn := range []string{"sfx", "dgspan", "edgar"} {
			r, ok := ev.Results[w.Name][mn]
			if !ok {
				fmt.Fprintf(&b, " %12s", "-")
				continue
			}
			fmt.Fprintf(&b, " %12s", r.Duration.Round(time.Millisecond))
			sums[mn] += r.Duration
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-10s", "total")
	var serial time.Duration
	for _, mn := range []string{"sfx", "dgspan", "edgar"} {
		fmt.Fprintf(&b, " %12s", sums[mn].Round(time.Millisecond))
		serial += sums[mn]
	}
	b.WriteByte('\n')
	if ev.Wall > 0 {
		// The per-cell durations above sum the serial-equivalent work;
		// the harness wall clock shows what the parallel matrix cost.
		speedup := float64(serial) / float64(ev.Wall)
		fmt.Fprintf(&b, "wall clock %s with %d workers (%.2fx vs summed cells)\n",
			ev.Wall.Round(time.Millisecond), ev.Workers, speedup)
	}
	return b.String()
}
