package bench

// Differential proof of the incremental driver: the dirty-set loop (the
// default) must be byte-identical to the rebuild-everything loop
// (Options.NoIncremental) — same report, same extraction sequence, same
// re-linked binary — on every benchmark, at both Workers=1 and
// Workers=8. The incremental side is shared with parallel_test.go's
// fixture (whose runs are incremental); this file adds the from-scratch
// reference runs and the cache-effectiveness assertions.
//
// One scratch run per benchmark is enough: both incremental widths are
// compared against the same reference, and cross-width bit-identity of
// the pipeline itself is TestParallelOptimizeDeterministic's job. The
// reference runs at Workers=8 so the whole-suite wall clock stays inside
// the default per-package test budget.

import (
	"sync"
	"testing"

	"graphpa/internal/core"
	"graphpa/internal/link"
	"graphpa/internal/pa"
)

type scratchEntry struct {
	res *pa.Result
	img *link.Image
}

var scratch = struct {
	once    sync.Once
	err     error
	entries map[string]*scratchEntry
}{}

// scratchEntries optimizes the same workloads as detEntries with
// NoIncremental set, once per test binary.
func scratchEntries(t *testing.T) (names []string, entries map[string]*scratchEntry) {
	t.Helper()
	names, incEntries := detEntries(t)
	scratch.once.Do(func() {
		scratch.entries = map[string]*scratchEntry{}
		m, err := core.MinerByName("edgar")
		if err != nil {
			scratch.err = err
			return
		}
		for _, n := range names {
			w := incEntries[n].w
			e := &scratchEntry{}
			e.res, e.img, err = core.Optimize(w.Image, m,
				pa.Options{MaxPatterns: detMaxPatterns, Workers: 8, NoIncremental: true})
			if err != nil {
				scratch.err = err
				return
			}
			scratch.entries[n] = e
		}
	})
	if scratch.err != nil {
		t.Fatal(scratch.err)
	}
	return names, scratch.entries
}

// TestIncrementalMatchesScratch: for every benchmark and both widths,
// the incremental run must agree with the from-scratch reference on the
// full report (rounds, instruction counts, the exact extraction
// sequence) and produce a word-identical re-linked image.
func TestIncrementalMatchesScratch(t *testing.T) {
	names, inc := detEntries(t)
	_, ref := scratchEntries(t)
	for _, n := range names {
		b := ref[n].res
		for _, width := range []struct {
			label    string
			incR     *pa.Result
			sameImgs bool
		}{
			{"Workers=1", inc[n].serial, sameImage(inc[n].serialImg, ref[n].img)},
			{"Workers=8", inc[n].parallel, sameImage(inc[n].parImg, ref[n].img)},
		} {
			a := width.incR
			if a.Before != b.Before || a.After != b.After || a.Rounds != b.Rounds {
				t.Errorf("%s %s: totals diverge: incremental %d->%d in %d rounds, scratch %d->%d in %d rounds",
					n, width.label, a.Before, a.After, a.Rounds, b.Before, b.After, b.Rounds)
				continue
			}
			if len(a.Extractions) != len(b.Extractions) {
				t.Errorf("%s %s: %d incremental extractions vs %d from scratch",
					n, width.label, len(a.Extractions), len(b.Extractions))
				continue
			}
			for i := range a.Extractions {
				if a.Extractions[i] != b.Extractions[i] {
					t.Errorf("%s %s: extraction %d diverges:\nincremental: %+v\nscratch:     %+v",
						n, width.label, i, a.Extractions[i], b.Extractions[i])
				}
			}
			if !width.sameImgs {
				t.Errorf("%s %s: incremental and from-scratch images differ", n, width.label)
			}
		}
	}
}

// TestIncrementalCacheEffectiveness: on a multi-round benchmark, rounds
// after the first must reuse every dependence graph of untouched
// functions — RebuiltClean, the over-invalidation counter, stays zero —
// and actually hit the caches (graphs reused, lattice subtrees
// fast-forwarded). This is the quantitative half of the differential
// test: identical output AND strictly less work.
func TestIncrementalCacheEffectiveness(t *testing.T) {
	_, inc := detEntries(t)
	res := inc["crc"].serial
	if res.Rounds < 2 {
		t.Fatalf("crc expected to take multiple rounds, got %d", res.Rounds)
	}
	if len(res.RoundStats) != res.Rounds+1 {
		// Fixpoint runs record every applying round plus the final probe.
		t.Fatalf("expected %d round stats (rounds + probe), got %d", res.Rounds+1, len(res.RoundStats))
	}
	reused, hits := 0, 0
	for _, rs := range res.RoundStats[1:] {
		if rs.RebuiltClean != 0 {
			t.Errorf("round %d: %d clean-block rebuilds (dirty-set over-invalidation)", rs.Round, rs.RebuiltClean)
		}
		if rs.BlocksReused+rs.BlocksRebound == 0 {
			t.Errorf("round %d: no dependence graphs reused", rs.Round)
		}
		if rs.SummariesRecomputed >= rs.Blocks && rs.Blocks > 0 {
			// Crude sanity: the summary recompute set must be a subset of
			// functions, far below the block count on real programs.
			t.Errorf("round %d: summary recompute set suspiciously large (%d)", rs.Round, rs.SummariesRecomputed)
		}
		reused += rs.BlocksReused
		hits += rs.MemoHits
	}
	if reused == 0 {
		t.Error("no object-identical graph reuse across any round")
	}
	if hits == 0 {
		t.Error("no lattice subtrees fast-forwarded across any round")
	}
	for _, rs := range res.RoundStats {
		if rs.Blocks != rs.BlocksReused+rs.BlocksRebound+rs.BlocksRebuilt {
			t.Errorf("round %d: block accounting inconsistent: %d != %d+%d+%d",
				rs.Round, rs.Blocks, rs.BlocksReused, rs.BlocksRebound, rs.BlocksRebuilt)
		}
	}
}
