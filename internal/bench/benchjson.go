package bench

import (
	"encoding/json"
	"os"
	"sort"
)

// This file emits the machine-readable benchmark record (BENCH_*.json at
// the repo root). The schema is append-only: committed baselines from
// earlier revisions must keep loading, so fields are never renamed or
// repurposed.

// BenchRow is one (program, miner) optimization run.
type BenchRow struct {
	Name        string  `json:"name"`
	Miner       string  `json:"miner"`
	Before      int     `json:"before"`
	After       int     `json:"after"`
	Saved       int     `json:"saved"`
	Rounds      int     `json:"rounds"`
	Extractions int     `json:"extractions"`
	WallMS      float64 `json:"wall_ms"`
	// Visits counts lattice patterns the miner visited across all rounds
	// — the wall-clock-independent cost metric the search-order
	// regression gate compares (wall clock is too noisy for CI). Zero in
	// records predating the field and for the SFX miner.
	Visits int `json:"visits,omitempty"`
	// CoarseVisits counts coarse-lattice patterns visited by the
	// multiresolution pass's one-shot exhaustive coarse mine. Zero in
	// records predating the field, for the SFX miner, and with multires
	// disabled.
	CoarseVisits int `json:"coarse_visits,omitempty"`
}

// BenchFingerprint pins the optimizer configuration a benchmark record
// was taken under. Visit counts are only comparable between runs with
// identical search configuration — comparing a multires record against a
// lexicographic one, or records taken at different pattern budgets,
// silently diffs incomparable numbers — so the baseline gate refuses
// mismatched fingerprints (FingerprintsMatch). Workers is recorded for
// provenance but compared loosely by callers that want it: every width
// produces identical visit counts by construction.
type BenchFingerprint struct {
	Workers       int  `json:"workers"`
	MaxPatterns   int  `json:"maxpatterns"`
	Multires      bool `json:"multires"`
	Lexicographic bool `json:"lexicographic"`
	// Shards records how many shard workers speculation was distributed
	// across (0 = single-process). Provenance only, ignored by
	// FingerprintsMatch like Workers: sharding forces the plain walk —
	// which Multires already captures — and is otherwise byte-identical
	// at any shard count.
	Shards int `json:"shards,omitempty"`
}

// FingerprintsMatch reports whether two records' search configurations
// are visit-comparable. Records predating the fingerprint field (nil)
// match anything — old baselines must keep working — and Workers is
// ignored (width never changes the counts).
func FingerprintsMatch(a, b *BenchFingerprint) bool {
	if a == nil || b == nil {
		return true
	}
	return a.MaxPatterns == b.MaxPatterns &&
		a.Multires == b.Multires &&
		a.Lexicographic == b.Lexicographic
}

// BenchDoc is a full benchmark record.
type BenchDoc struct {
	Workers  int        `json:"workers"`
	Miners   []string   `json:"miners"`
	Programs []BenchRow `json:"programs"`
	// TotalWallMS sums the per-run wall clocks (the serial-equivalent
	// cost), so records taken at different harness widths stay
	// comparable.
	TotalWallMS float64 `json:"total_wall_ms"`
	// TotalVisits sums the per-run lattice visit counts.
	TotalVisits int `json:"total_visits,omitempty"`
	// TotalCoarseVisits sums the per-run coarse-lattice visit counts.
	TotalCoarseVisits int `json:"total_coarse_visits,omitempty"`
	// Fingerprint pins the search configuration (nil in records predating
	// the field).
	Fingerprint *BenchFingerprint `json:"fingerprint,omitempty"`
}

// BenchJSON collapses an Evaluation into the benchmark record, rows
// ordered by miner then program (the evaluation's workload order).
func BenchJSON(ev *Evaluation, miners []string) *BenchDoc {
	d := &BenchDoc{
		Workers: ev.Workers,
		Miners:  append([]string(nil), miners...),
		Fingerprint: &BenchFingerprint{
			Workers:     ev.Workers,
			MaxPatterns: ev.Opts.MaxPatternsOrDefault(),
			// Sharded walks force the plain arm, so multires is off
			// whenever a shard fleet is configured.
			Multires:      !ev.Opts.NoMultires && !ev.Opts.Lexicographic && ev.Opts.Shards == nil,
			Lexicographic: ev.Opts.Lexicographic,
		},
	}
	if ev.Opts.Shards != nil {
		d.Fingerprint.Shards = ev.Opts.Shards.NumShards()
	}
	for _, mn := range miners {
		for _, w := range ev.Workloads {
			r, ok := ev.Results[w.Name][mn]
			if !ok {
				continue
			}
			visits, coarse := 0, 0
			for _, rs := range r.RoundStats {
				visits += rs.Visits
				coarse += rs.CoarseVisits
			}
			d.Programs = append(d.Programs, BenchRow{
				Name:         w.Name,
				Miner:        mn,
				Before:       r.Before,
				After:        r.After,
				Saved:        r.Saved(),
				Rounds:       r.Rounds,
				Extractions:  len(r.Extractions),
				WallMS:       float64(r.Duration.Microseconds()) / 1000,
				Visits:       visits,
				CoarseVisits: coarse,
			})
			d.TotalWallMS += float64(r.Duration.Microseconds()) / 1000
			d.TotalVisits += visits
			d.TotalCoarseVisits += coarse
		}
	}
	return d
}

// WriteFile writes the record as indented JSON.
func (d *BenchDoc) WriteFile(path string) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchJSON loads a committed benchmark record.
func ReadBenchJSON(path string) (*BenchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d BenchDoc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// CompareBench summarises d against a baseline: per-program wall-clock
// ratios and the total ratio, for runs present in both (matched by
// name+miner). Ratio < 1 means d is faster.
func CompareBench(d, base *BenchDoc) (perRun map[string]float64, total float64) {
	baseBy := map[string]BenchRow{}
	for _, r := range base.Programs {
		baseBy[r.Name+"/"+r.Miner] = r
	}
	perRun = map[string]float64{}
	var sum, baseSum float64
	for _, r := range d.Programs {
		b, ok := baseBy[r.Name+"/"+r.Miner]
		if !ok || b.WallMS <= 0 {
			continue
		}
		perRun[r.Name+"/"+r.Miner] = r.WallMS / b.WallMS
		sum += r.WallMS
		baseSum += b.WallMS
	}
	if baseSum > 0 {
		total = sum / baseSum
	}
	return perRun, total
}

// CompareVisits summarises d's lattice visit counts against a baseline,
// for runs present in both with nonzero baseline visits (matched by
// name+miner). Unlike wall clock, visits are deterministic — identical
// across worker widths, driver modes and machines — so the ratios can
// gate CI at a tight tolerance. Ratio < 1 means d visits fewer nodes.
// ok reports whether the baseline carried visit counts at all (records
// predating the field compare as absent, not as regressions).
func CompareVisits(d, base *BenchDoc) (perRun map[string]float64, total float64, ok bool) {
	baseBy := map[string]BenchRow{}
	for _, r := range base.Programs {
		baseBy[r.Name+"/"+r.Miner] = r
	}
	perRun = map[string]float64{}
	var sum, baseSum float64
	for _, r := range d.Programs {
		b, found := baseBy[r.Name+"/"+r.Miner]
		if !found || b.Visits <= 0 {
			continue
		}
		perRun[r.Name+"/"+r.Miner] = float64(r.Visits) / float64(b.Visits)
		sum += float64(r.Visits)
		baseSum += float64(b.Visits)
	}
	if baseSum > 0 {
		total = sum / baseSum
		ok = true
	}
	return perRun, total, ok
}

// BenchKeys returns perRun's keys sorted, for stable rendering.
func BenchKeys(perRun map[string]float64) []string {
	keys := make([]string, 0, len(perRun))
	for k := range perRun {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
