// Package bench holds the evaluation workloads and the harness that
// regenerates every table and figure of the paper's §4: eight
// MiBench-style programs written in mini-C, compiled by our size-tuned
// template code generator with load scheduling, statically linked against
// the runtime, and optimized post link-time by SFX, DgSpan and Edgar.
package bench

import (
	"context"
	"embed"
	"fmt"
	"sort"
	"time"

	"graphpa/internal/cfg"
	"graphpa/internal/codegen"
	"graphpa/internal/core"
	"graphpa/internal/dfg"
	"graphpa/internal/link"
	"graphpa/internal/loader"
	"graphpa/internal/pa"
	"graphpa/internal/par"
)

//go:embed programs/*.mc
var programFS embed.FS

// Names lists the benchmark programs in the paper's Table 1 order.
var Names = []string{
	"bitcnts", "crc", "dijkstra", "patricia", "qsort", "rijndael", "search", "sha",
}

// Source returns a program's mini-C source.
func Source(name string) (string, error) {
	b, err := programFS.ReadFile("programs/" + name + ".mc")
	if err != nil {
		return "", fmt.Errorf("bench: unknown program %q", name)
	}
	return string(b), nil
}

// Workload is one compiled benchmark.
type Workload struct {
	Name   string
	Image  *link.Image
	Prog   *loader.Program
	Instrs int
}

// DefaultCodegen mirrors the paper's setup: size-oriented templates plus
// the list scheduler (gcc reorders loads even at -Os; §4.2 attributes
// rijndael's headline win to exactly that).
func DefaultCodegen() codegen.Options { return codegen.Options{Optimize: true, Schedule: true} }

// Build compiles and links one benchmark.
func Build(name string, opts codegen.Options) (*Workload, error) {
	src, err := Source(name)
	if err != nil {
		return nil, err
	}
	img, err := core.Build(src, opts)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", name, err)
	}
	prog, err := loader.Load(img)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", name, err)
	}
	return &Workload{Name: name, Image: img, Prog: prog, Instrs: prog.CountInstrs()}, nil
}

// BuildAll compiles every benchmark, one worker per core. The result is
// identical to building serially in Names order: each compile is
// independent, the ordered fan-in appends in that order, and a failure
// reports the first failing program in that order (errors ride in the
// produced value precisely so a later worker's failure cannot win).
func BuildAll(opts codegen.Options) ([]*Workload, error) {
	type built struct {
		w   *Workload
		err error
	}
	out := make([]*Workload, 0, len(Names))
	err := par.OrderedMap(context.Background(), par.Workers(0), len(Names),
		func(_ context.Context, i int) (built, error) {
			w, err := Build(Names[i], opts)
			return built{w, err}, nil
		},
		func(_ int, b built) error {
			if b.err != nil {
				return b.err
			}
			out = append(out, b.w)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Evaluation holds the full result matrix the tables and figures are
// derived from.
type Evaluation struct {
	Workloads []*Workload
	Miners    []string
	// Results[program][miner]
	Results map[string]map[string]*pa.Result
	// Wall is the harness wall clock for the whole matrix; with Workers
	// > 1 it undercuts the sum of per-cell Durations (the paper-tables
	// timing output reports the ratio).
	Wall time.Duration
	// Workers is the effective parallel width Evaluate ran with.
	Workers int
	// Opts is the optimizer configuration the matrix ran under, kept so
	// the benchmark record can embed an options fingerprint (BenchJSON).
	Opts pa.Options
}

// Progress, when non-nil, receives one line per finished program/miner
// combination (the harness takes a while on big workloads).
var Progress func(format string, args ...any)

func progressf(format string, args ...any) {
	if Progress != nil {
		Progress(format, args...)
	}
}

// Evaluate optimizes every workload with every miner. When verify is set,
// each optimized binary is executed and its behaviour compared against
// the original (differential check). The program×miner cells run
// concurrently (width from opts.Workers, like the optimizer itself), but
// every cell is an independent deterministic computation and the ordered
// fan-in stores results and reports progress in the serial loop's order,
// so the Evaluation — and any table rendered from it — is byte-identical
// at every width. Cell errors ride in the produced value so the first
// failing cell in serial order is the one reported.
func Evaluate(ws []*Workload, miners []string, opts pa.Options, verify bool) (*Evaluation, error) {
	start := time.Now()
	workers := opts.WorkersOrDefault()
	ev := &Evaluation{Workloads: ws, Miners: miners, Workers: workers,
		Opts: opts, Results: map[string]map[string]*pa.Result{}}
	resolved := make([]pa.Miner, len(miners))
	for i, mn := range miners {
		m, err := core.MinerByName(mn)
		if err != nil {
			return nil, err
		}
		resolved[i] = m
	}
	for _, w := range ws {
		ev.Results[w.Name] = map[string]*pa.Result{}
	}
	type cellResult struct {
		res *pa.Result
		err error
	}
	cells := len(ws) * len(miners)
	err := par.OrderedMap(context.Background(), workers, cells,
		func(_ context.Context, i int) (cellResult, error) {
			w, mn := ws[i/len(miners)], miners[i%len(miners)]
			res, img, err := core.Optimize(w.Image, resolved[i%len(miners)], opts)
			if err != nil {
				return cellResult{err: fmt.Errorf("bench: %s/%s: %w", w.Name, mn, err)}, nil
			}
			if verify {
				if err := core.VerifyEquivalent(w.Image, img, nil); err != nil {
					return cellResult{err: fmt.Errorf("bench: %s/%s: %w", w.Name, mn, err)}, nil
				}
			}
			return cellResult{res: res}, nil
		},
		func(i int, c cellResult) error {
			if c.err != nil {
				return c.err
			}
			w, mn := ws[i/len(miners)], miners[i%len(miners)]
			ev.Results[w.Name][mn] = c.res
			progressf("%s/%s: saved %d in %v", w.Name, mn, c.res.Saved(), c.res.Duration)
			return nil
		})
	if err != nil {
		return nil, err
	}
	ev.Wall = time.Since(start)
	return ev, nil
}

// Saved returns instructions saved for one cell of the matrix (0 when the
// miner was not run).
func (ev *Evaluation) Saved(program, miner string) int {
	if r, ok := ev.Results[program][miner]; ok {
		return r.Saved()
	}
	return 0
}

// TotalSaved sums savings across programs for one miner.
func (ev *Evaluation) TotalSaved(miner string) int {
	t := 0
	for _, w := range ev.Workloads {
		t += ev.Saved(w.Name, miner)
	}
	return t
}

// Mechanisms aggregates extraction-method counts per miner (Fig. 12).
func (ev *Evaluation) Mechanisms(miner string) (calls, crossJumps int) {
	for _, w := range ev.Workloads {
		if r, ok := ev.Results[w.Name][miner]; ok {
			calls += r.Calls()
			crossJumps += r.CrossJumps()
		}
	}
	return calls, crossJumps
}

// Timing returns optimization wall-clock per program for one miner,
// program order preserved.
func (ev *Evaluation) Timing(miner string) []time.Duration {
	out := make([]time.Duration, len(ev.Workloads))
	for i, w := range ev.Workloads {
		if r, ok := ev.Results[w.Name][miner]; ok {
			out[i] = r.Duration
		}
	}
	return out
}

// Graphs builds the per-block dependence graphs of a workload (the mining
// input, used by the Table 2/3 statistics).
func (w *Workload) Graphs() []*dfg.Graph {
	view := cfg.Build(w.Prog)
	summaries := pa.CallSummaries(view)
	gs := make([]*dfg.Graph, len(view.Blocks))
	for i, b := range view.Blocks {
		gs[i] = dfg.Build(b, summaries)
	}
	return gs
}

// Stats computes the paper's Table 2/3 degree statistics for a workload.
func (w *Workload) Stats() dfg.DegreeStats {
	return dfg.Stats(w.Graphs())
}

// SortedMiners returns the evaluation's miners in canonical order.
func (ev *Evaluation) SortedMiners() []string {
	out := append([]string(nil), ev.Miners...)
	sort.Strings(out)
	return out
}

// noSchedule returns the ablation codegen configuration (optimized but
// template order, no load hoisting).
func noSchedule() codegen.Options { return codegen.Options{Optimize: true} }
