package bench

import (
	"strings"
	"testing"

	"graphpa/internal/asm"
	"graphpa/internal/core"
	"graphpa/internal/loader"
)

// goldenExit pins each program's semantic result (checksum & 127). The
// values depend only on program meaning and the fixed PRNG seeds — not on
// code generation — so any change here is a real miscompilation. Exit
// codes 1..9 are reserved by every program for internal self-check
// failures; the seeds were chosen so no checksum collides with them.
var goldenExit = map[string]int32{
	"bitcnts":  117,
	"crc":      18,
	"dijkstra": 59,
	"patricia": 116,
	"qsort":    46,
	"rijndael": 105,
	"search":   75,
	"sha":      112,
}

// TestAllProgramsRun compiles and executes every benchmark against its
// golden result. This is the substrate sanity check everything else
// builds on.
func TestAllProgramsRun(t *testing.T) {
	ws, err := BuildAll(DefaultCodegen())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		code, out, err := core.Run(w.Image, nil)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if !strings.HasPrefix(out, w.Name+":") {
			t.Errorf("%s: banner missing in output %q", w.Name, out)
		}
		if code != goldenExit[w.Name] {
			t.Errorf("%s: exit = %d, want %d (out %q)", w.Name, code, goldenExit[w.Name], out)
		}
		t.Logf("%s: %d instructions, exit %d, %q", w.Name, w.Instrs, code, strings.TrimSpace(out))
	}
}

// TestProgramsGoldenWithoutScheduler re-runs the golden check with the
// scheduler disabled: scheduling must never change semantics.
func TestProgramsGoldenWithoutScheduler(t *testing.T) {
	for _, name := range Names {
		w, err := Build(name, noSchedule())
		if err != nil {
			t.Fatal(err)
		}
		code, _, err := core.Run(w.Image, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if code != goldenExit[name] {
			t.Errorf("%s: exit = %d, want %d", name, code, goldenExit[name])
		}
	}
}

// TestSchedulerChangesOrderNotBehaviour compiles with and without the
// scheduler; outputs must match while code differs.
func TestSchedulerChangesOrderNotBehaviour(t *testing.T) {
	for _, name := range []string{"crc", "rijndael"} {
		src, err := Source(name)
		if err != nil {
			t.Fatal(err)
		}
		img1, err := core.Build(src, DefaultCodegen())
		if err != nil {
			t.Fatal(err)
		}
		img2, err := core.Build(src, noSchedule())
		if err != nil {
			t.Fatal(err)
		}
		if err := core.VerifyEquivalent(img1, img2, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestLoaderRoundTripSuite: decompile -> relink on every benchmark must
// preserve behaviour and instruction counts (the loader is lossless on
// real workloads, not just unit fixtures).
func TestLoaderRoundTripSuite(t *testing.T) {
	for _, name := range Names {
		w, err := Build(name, DefaultCodegen())
		if err != nil {
			t.Fatal(err)
		}
		img2, err := w.Prog.Relink()
		if err != nil {
			t.Fatalf("%s: relink: %v", name, err)
		}
		if err := core.VerifyEquivalent(w.Image, img2, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		prog2, err := loader.Load(img2)
		if err != nil {
			t.Fatalf("%s: reload: %v", name, err)
		}
		if prog2.CountInstrs() != w.Instrs {
			t.Errorf("%s: instruction count drifted %d -> %d", name, w.Instrs, prog2.CountInstrs())
		}
	}
}

// TestAsmRoundTripSuite: print -> parse -> print stability of every
// compiled benchmark (the canonical-text invariant on real code).
func TestAsmRoundTripSuite(t *testing.T) {
	for _, name := range Names {
		w, err := Build(name, DefaultCodegen())
		if err != nil {
			t.Fatal(err)
		}
		u, err := w.Prog.ToUnit()
		if err != nil {
			t.Fatal(err)
		}
		text := asm.Print(u)
		u2, err := asm.Parse(text)
		if err != nil {
			t.Fatalf("%s: reparse: %v", name, err)
		}
		if asm.Print(u2) != text {
			t.Errorf("%s: print/parse round trip unstable", name)
		}
	}
}
