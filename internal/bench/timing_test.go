package bench

import (
	"testing"

	"graphpa/internal/core"
	"graphpa/internal/pa"
)

// TestTimingProbe runs each miner per program as a subtest so progress is
// visible; skipped with -short.
func TestTimingProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("full per-program optimization probe")
	}
	combos := map[string][]string{
		"crc":      {"sfx", "dgspan", "edgar"},
		"rijndael": {"sfx", "edgar"}, // dgspan on rijndael runs minutes; the root benches cover it
	}
	for _, name := range []string{"crc", "rijndael"} {
		w, err := Build(name, DefaultCodegen())
		if err != nil {
			t.Fatal(err)
		}
		for _, mn := range combos[name] {
			t.Run(name+"/"+mn, func(t *testing.T) {
				m, _ := core.MinerByName(mn)
				res, img, err := core.Optimize(w.Image, m, pa.Options{MaxPatterns: 30000})
				if err != nil {
					t.Fatal(err)
				}
				if err := core.VerifyEquivalent(w.Image, img, nil); err != nil {
					t.Fatalf("VERIFY FAILED: %v", err)
				}
				t.Logf("before=%d saved=%d rounds=%d calls=%d xjumps=%d dur=%v",
					res.Before, res.Saved(), res.Rounds, res.Calls(), res.CrossJumps(), res.Duration)
			})
		}
	}
}
