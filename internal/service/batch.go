package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// This file is the corpus endpoint: POST /v1/batch accepts many programs
// under one shared compile/optimize configuration and fans them out over
// the existing job queue, so a batch shares the worker pool (and the
// result cache, and the fragment dictionary) with everything else. The
// submission is acknowledged immediately with a batch id; GET
// /v1/batch/{id} aggregates the per-program job states. Each program is
// an ordinary job underneath — individually pollable by job id, cached by
// content address, deduplicated in flight.
//
// Batches are where the dictionary earns its keep: programs of one corpus
// tend to share template-stamped fragments, so the first program's mined
// patterns warm-start the rest — and persist for the next batch.

// BatchProgram is one program of a corpus submission.
type BatchProgram struct {
	// Name labels the program in the batch status (e.g. its file name).
	Name string `json:"name"`
	// Source is mini-C, or assembly when Asm is set.
	Source string `json:"source"`
	Asm    bool   `json:"asm,omitempty"`
}

// BatchRequest is the body of POST /v1/batch. Compile and Optimize apply
// to every program, exactly as in CompactRequest.
type BatchRequest struct {
	Programs []BatchProgram  `json:"programs"`
	Compile  *CompileOptions `json:"compile,omitempty"`
	Optimize OptimizeOptions `json:"optimize"`
}

// maxBatchPrograms bounds one submission; a corpus larger than this is
// split by the client.
const maxBatchPrograms = 256

// compactRequest lowers one batch program to the single-program request
// the rest of the pipeline understands.
func (r *BatchRequest) compactRequest(i int) *CompactRequest {
	p := &r.Programs[i]
	return &CompactRequest{Source: p.Source, Asm: p.Asm, Compile: r.Compile, Optimize: r.Optimize}
}

func (r *BatchRequest) validate() error {
	if len(r.Programs) == 0 {
		return fmt.Errorf("empty batch")
	}
	if len(r.Programs) > maxBatchPrograms {
		return fmt.Errorf("batch of %d programs exceeds the limit of %d", len(r.Programs), maxBatchPrograms)
	}
	seen := map[string]bool{}
	for i := range r.Programs {
		p := &r.Programs[i]
		if p.Name == "" {
			return fmt.Errorf("program %d has no name", i)
		}
		if seen[p.Name] {
			return fmt.Errorf("duplicate program name %q", p.Name)
		}
		seen[p.Name] = true
		if err := r.compactRequest(i).validate(); err != nil {
			return fmt.Errorf("program %q: %w", p.Name, err)
		}
	}
	return nil
}

// batchItem pairs a program name with its underlying job.
type batchItem struct {
	name string
	job  *job
}

// batch is one registered corpus submission.
type batch struct {
	id    string
	items []batchItem
}

// maxRetainedBatches bounds the batch store; beyond it the oldest
// finished batches are forgotten (their jobs live on in the job store).
const maxRetainedBatches = 64

func (b *batch) finished() bool {
	for i := range b.items {
		st, _, _, _ := b.items[i].job.snapshot()
		if st != JobDone && st != JobFailed {
			return false
		}
	}
	return true
}

func (s *Server) pruneBatchesLocked() {
	if len(s.batchOrder) <= maxRetainedBatches {
		return
	}
	kept := s.batchOrder[:0]
	excess := len(s.batchOrder) - maxRetainedBatches
	for _, id := range s.batchOrder {
		b := s.batches[id]
		if excess > 0 && b != nil && b.finished() {
			delete(s.batches, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.batchOrder = kept
}

// handleSubmitBatch acknowledges with a batch id and feeds the programs
// to the job queue from a goroutine: the bounded queue applies
// backpressure to the feeder, not to the submitting client.
func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	if err := req.validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	items := make([]batchItem, len(req.Programs))
	for i := range req.Programs {
		cr := req.compactRequest(i)
		// Batch jobs run under the server context, like async jobs: only
		// shutdown cancels them.
		items[i] = batchItem{name: req.Programs[i].Name, job: s.newJob(cr, cr.Key(), s.baseCtx)}
	}
	// Register the batch and its feeder in one critical section with the
	// closed check: Shutdown flips closed under the same lock before it
	// closes the queue, so a feeder admitted here is always covered by
	// Shutdown's WaitGroup wait.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		for i := range items {
			items[i].job.finish(nil, statusMiss, errors.New("service: shutting down"))
		}
		writeJSON(w, http.StatusServiceUnavailable, errorBody{"service: shutting down"})
		return
	}
	s.nextBatch++
	b := &batch{id: fmt.Sprintf("b%04d", s.nextBatch), items: items}
	s.batches[b.id] = b
	s.batchOrder = append(s.batchOrder, b.id)
	s.pruneBatchesLocked()
	s.wg.Add(1)
	s.mu.Unlock()
	go s.feedBatch(b)
	s.log.Info("batch accepted", "batch", b.id, "programs", len(items))
	writeJSON(w, http.StatusAccepted, map[string]any{"id": b.id, "programs": len(items)})
}

// feedBatch pushes a batch's jobs into the bounded queue, blocking on a
// full queue by retrying. It runs under the server's WaitGroup, so
// Shutdown waits for it; enqueue refuses once intake closes, which
// fails the remaining jobs instead of deadlocking the drain.
func (s *Server) feedBatch(b *batch) {
	defer s.wg.Done()
	for i := range b.items {
		j := b.items[i].job
		if v, ok := s.cache.get(j.key); ok {
			j.finish(v, statusHit, nil)
			continue
		}
		for {
			err := s.enqueue(j)
			if err == nil {
				break
			}
			if errors.Is(err, errQueueFull) {
				select {
				case <-time.After(5 * time.Millisecond):
					continue
				case <-s.baseCtx.Done():
					err = s.baseCtx.Err()
				}
			}
			j.finish(nil, statusMiss, err)
			break
		}
	}
}

// BatchProgramStatus is one program's row in the batch status body.
type BatchProgramStatus struct {
	Name      string `json:"name"`
	JobID     string `json:"job_id"`
	ContentID string `json:"content_id"`
	State     string `json:"state"`
	Cache     string `json:"cache,omitempty"`
	Error     string `json:"error,omitempty"`
	Before    int    `json:"before,omitempty"`
	After     int    `json:"after,omitempty"`
	Saved     int    `json:"saved,omitempty"`
	DictHits  int    `json:"dict_hits,omitempty"`
	ImageHash string `json:"image_hash,omitempty"`
}

// BatchStatusBody is the GET /v1/batch/{id} response.
type BatchStatusBody struct {
	ID       string               `json:"id"`
	State    string               `json:"state"` // "running" until every program settles, then "done"
	Programs []BatchProgramStatus `json:"programs"`
	Totals   struct {
		Programs int `json:"programs"`
		Done     int `json:"done"`
		Failed   int `json:"failed"`
		Saved    int `json:"saved"`
		DictHits int `json:"dict_hits"`
	} `json:"totals"`
}

func (s *Server) handleBatchStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	b := s.batches[r.PathValue("id")]
	s.mu.Unlock()
	if b == nil {
		writeJSON(w, http.StatusNotFound, errorBody{"unknown batch id"})
		return
	}
	body := BatchStatusBody{ID: b.id, State: "done"}
	body.Totals.Programs = len(b.items)
	for i := range b.items {
		it := &b.items[i]
		st, val, status, err := it.job.snapshot()
		ps := BatchProgramStatus{Name: it.name, JobID: it.job.id, ContentID: it.job.key, State: st}
		switch st {
		case JobDone:
			body.Totals.Done++
			ps.Cache = string(status)
			if val != nil {
				ps.Before, ps.After, ps.Saved = val.before, val.after, val.saved
				ps.DictHits, ps.ImageHash = val.dictHits, val.imageHash
				body.Totals.Saved += val.saved
				body.Totals.DictHits += val.dictHits
			}
		case JobFailed:
			body.Totals.Failed++
			if err != nil {
				ps.Error = err.Error()
			}
		default:
			body.State = "running"
		}
		body.Programs = append(body.Programs, ps)
	}
	writeJSON(w, http.StatusOK, body)
}
