package service

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// GET /metrics renders the service counters in the Prometheus text
// exposition format (version 0.0.4) with no client library: every metric
// is a plain counter, gauge, or fixed-bucket histogram, so the format is
// a few Fprintf calls. Output order is deterministic — metrics in a fixed
// sequence, label values sorted — so scrapes diff cleanly.

// metricsBuckets are the per-miner latency histogram bounds in seconds,
// mirroring latencyBuckets exactly; Prometheus convention adds +Inf.
var metricsBuckets = []string{"0.001", "0.01", "0.1", "1", "10"}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder

	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	snap := s.stats.snapshot()
	counter("pad_requests_total", "HTTP requests received.", snap.Totals.Requests)
	counter("pad_jobs_mined_total", "Jobs that ran a fresh mine (cache misses).", snap.Totals.Mined)
	counter("pad_jobs_cancelled_total", "Jobs cancelled before or during mining.", snap.Totals.Cancelled)
	counter("pad_jobs_failed_total", "Jobs that failed.", snap.Totals.Failed)
	counter("pad_instructions_saved_total", "Instructions removed across all mined jobs.", snap.Totals.InstructionsSaved)
	counter("pad_dict_warmstart_hits_total", "Dictionary fragments revalidated by mined jobs.", snap.Totals.DictHits)

	gauge("pad_queue_depth", "Jobs accepted but not yet started.", int64(len(s.queue)))
	gauge("pad_queue_capacity", "Bound of the job queue.", int64(cap(s.queue)))

	states := map[string]int{JobQueued: 0, JobRunning: 0, JobDone: 0, JobFailed: 0}
	s.mu.Lock()
	for _, j := range s.jobs {
		st, _, _, _ := j.snapshot()
		states[st]++
	}
	s.mu.Unlock()
	fmt.Fprintf(&b, "# HELP pad_jobs Jobs in the retained store by state.\n# TYPE pad_jobs gauge\n")
	names := make([]string, 0, len(states))
	for st := range states {
		names = append(names, st)
	}
	sort.Strings(names)
	for _, st := range names {
		fmt.Fprintf(&b, "pad_jobs{state=%q} %d\n", st, states[st])
	}

	cc := s.cache.counters()
	gauge("pad_cache_entries", "Completed results held by the cache.", int64(cc.Entries))
	counter("pad_cache_hits_total", "Cache lookups served from a completed entry.", cc.Hits)
	counter("pad_cache_misses_total", "Cache lookups that ran a mine.", cc.Misses)
	counter("pad_cache_dedups_total", "Submissions that joined an in-flight mine.", cc.Dedups)
	counter("pad_cache_evictions_total", "Entries dropped by the LRU bound.", cc.Evictions)

	if s.cfg.Dict != nil {
		ds := s.cfg.Dict.Stats()
		gauge("pad_dict_entries", "Live fragments in the dictionary.", int64(ds.Entries))
		gauge("pad_dict_log_bytes", "Size of the dictionary log file.", ds.LogBytes)
		counter("pad_dict_published_total", "New fragments accepted by the dictionary.", ds.Published)
		counter("pad_dict_updated_total", "Benefit/recency bumps of known fragments.", ds.Updated)
		counter("pad_dict_evicted_total", "Fragments dropped by the size bound.", ds.Evicted)
		counter("pad_dict_seeds_served_total", "Fragments handed to mining jobs as seeds.", ds.SeedsServed)
		counter("pad_dict_skipped_total", "Corrupt records skipped during recovery.", ds.Skipped)
		counter("pad_dict_compactions_total", "Log compactions.", ds.Compactions)
	}

	// Worker half of the shard protocol: always present, like the
	// endpoints themselves.
	ws := &s.shardsSrv.stats
	counter("pad_shard_walks_opened_total", "Speculation walks opened by coordinators.", ws.walksOpened.Load())
	counter("pad_shard_walks_evicted_total", "Walks evicted idle or by the session bound.", ws.walksEvicted.Load())
	counter("pad_shard_seeds_served_total", "Seed subtrees speculated for coordinators.", ws.seedsServed.Load())
	counter("pad_shard_floor_received_total", "Incumbent-floor pushes received.", ws.floorRecv.Load())
	counter("pad_shard_floor_stale_total", "Floor pushes at or below the current floor.", ws.floorStale.Load())
	counter("pad_shard_spec_visits_total", "Speculative lattice visits across closed walks.", ws.specVisits.Load())

	// Coordinator half: per-shard labels over the configured address
	// list, present only when this pad fronts a shard fleet.
	if s.shardPool != nil {
		type col struct {
			name, help string
			v          func(shardCounters) int64
		}
		for _, c := range []col{
			{"pad_shard_seeds_assigned_total", "Seed subtrees requested from this shard.", func(sc shardCounters) int64 { return sc.Seeds }},
			{"pad_shard_subtrees_total", "Seed subtrees successfully streamed back.", func(sc shardCounters) int64 { return sc.Subtrees }},
			{"pad_shard_fallbacks_total", "Seed requests that degraded to local speculation.", func(sc shardCounters) int64 { return sc.Fallbacks }},
			{"pad_shard_broadcasts_sent_total", "Incumbent-floor pushes delivered to this shard.", func(sc shardCounters) int64 { return sc.Broadcasts }},
			{"pad_shard_walk_errors_total", "Walk opens that failed on this shard.", func(sc shardCounters) int64 { return sc.WalkErrors }},
		} {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", c.name, c.help, c.name)
			for _, sc := range s.shardPool.counters() {
				fmt.Fprintf(&b, "%s{shard=%q} %d\n", c.name, sc.Addr, c.v(sc))
			}
		}
	}

	// Per-miner mining-latency histograms over the fixed bucket bounds.
	// Bucket counts are cumulative per the exposition format.
	miners := make([]string, 0, len(snap.Miners))
	for name := range snap.Miners {
		miners = append(miners, name)
	}
	sort.Strings(miners)
	fmt.Fprintf(&b, "# HELP pad_mine_duration_seconds Mining latency of fresh (uncached) jobs.\n")
	fmt.Fprintf(&b, "# TYPE pad_mine_duration_seconds histogram\n")
	for _, name := range miners {
		ms := snap.Miners[name]
		var cum int64
		for i, le := range metricsBuckets {
			cum += ms.hist[i]
			fmt.Fprintf(&b, "pad_mine_duration_seconds_bucket{miner=%q,le=%q} %d\n", name, le, cum)
		}
		cum += ms.hist[len(metricsBuckets)]
		fmt.Fprintf(&b, "pad_mine_duration_seconds_bucket{miner=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(&b, "pad_mine_duration_seconds_sum{miner=%q} %g\n", name, ms.durSum.Seconds())
		fmt.Fprintf(&b, "pad_mine_duration_seconds_count{miner=%q} %d\n", name, cum)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = fmt.Fprint(w, b.String())
}
