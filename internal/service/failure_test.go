package service

// Failure-path coverage: malformed source → 400 with the compiler
// diagnostic, full queue → 429 with Retry-After, and a disconnecting
// client cancelling its mining context mid-run.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"graphpa/internal/bench"
)

func TestMalformedSourceReturns400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  *CompactRequest
		want string // substring of the diagnostic
	}{
		{"parse error", &CompactRequest{Source: "int main( { return 0; }"}, ""},
		{"empty source", &CompactRequest{Source: "   "}, "empty source"},
		{"unknown miner", &CompactRequest{
			Source:   "int main() { return 0; }",
			Optimize: OptimizeOptions{Miner: "bogus"},
		}, "unknown miner"},
		{"bad asm", &CompactRequest{Source: "_start:\n\tfrobnicate r0\n", Asm: true}, ""},
		{"negative option", &CompactRequest{
			Source:   "int main() { return 0; }",
			Optimize: OptimizeOptions{MaxRounds: -1},
		}, "non-negative"},
	}
	for _, tc := range cases {
		code, _, body := postJSON(t, ts.URL+"/v1/compact", tc.req)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, code, body)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: no diagnostic in %s", tc.name, body)
			continue
		}
		if tc.want != "" && !strings.Contains(eb.Error, tc.want) {
			t.Errorf("%s: diagnostic %q does not mention %q", tc.name, eb.Error, tc.want)
		}
	}

	// Non-JSON and unknown-field bodies are 400s too, before any work.
	resp, err := http.Post(ts.URL+"/v1/compact", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-JSON body: status %d, want 400", resp.StatusCode)
	}
}

func TestQueueFullReturns429(t *testing.T) {
	svc, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 1})
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	svc.hookMineStart = func(string) {
		started <- struct{}{}
		<-release
	}
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	src := func(i int) string { return fmt.Sprintf("int main() { return %d; }", i) }
	submit := func(i int) (int, http.Header, []byte) {
		return postJSON(t, ts.URL+"/v1/jobs", &CompactRequest{Source: src(i)})
	}

	// Job 0 occupies the single worker (parked on the hook)...
	if code, _, body := submit(0); code != http.StatusAccepted {
		t.Fatalf("job 0: status %d: %s", code, body)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("job 0 never started mining")
	}
	// ...job 1 fills the depth-1 queue...
	if code, _, body := submit(1); code != http.StatusAccepted {
		t.Fatalf("job 1: status %d: %s", code, body)
	}
	// ...so job 2 must bounce with 429 and a Retry-After hint.
	code, hdr, body := submit(2)
	if code != http.StatusTooManyRequests {
		t.Fatalf("job 2: status %d, want 429: %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || !strings.Contains(eb.Error, "queue full") {
		t.Errorf("429 body lacks diagnostic: %s", body)
	}

	// Draining the queue clears the condition: everything accepted
	// completes and a new submission goes through. The queue slot only
	// frees once the worker dequeues job 1, so wait for job 1 to reach
	// the mining hook before submitting again.
	close(release)
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("job 1 never started mining after drain")
	}
	if code, _, body := submit(3); code != http.StatusAccepted {
		t.Fatalf("post-drain submit: status %d: %s", code, body)
	}
}

// slowAdversarialRequest is an input whose uncancelled mining runs for
// minutes: a real benchmark with an effectively unbounded pattern
// budget. The disconnect test must finish in seconds anyway.
func slowAdversarialRequest(t *testing.T) *CompactRequest {
	t.Helper()
	src, err := bench.Source("qsort")
	if err != nil {
		t.Fatal(err)
	}
	return &CompactRequest{
		Source:   src,
		Optimize: OptimizeOptions{Miner: "edgar", MaxPatterns: 500_000_000, MaxFragment: 12},
	}
}

func TestClientDisconnectCancelsMining(t *testing.T) {
	svc, ts := newTestServer(t, Config{JobWorkers: 1})
	started := make(chan struct{}, 1)
	svc.hookMineStart = func(string) {
		select {
		case started <- struct{}{}:
		default:
		}
	}

	body, err := json.Marshal(slowAdversarialRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/compact", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("mining never started")
	}
	cancel() // the client walks away mid-mine
	if err := <-errc; err == nil {
		t.Fatal("disconnected request reported success")
	}

	// The server must observe the cancellation promptly — the mine is
	// abandoned, not run to completion.
	deadline := time.Now().Add(30 * time.Second)
	for svc.stats.snapshot().Totals.Cancelled == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never recorded the cancelled mine")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// And the (single) worker is free again for real traffic.
	code, _, resp := postJSON(t, ts.URL+"/v1/compact", &CompactRequest{Source: "int main() { return 0; }"})
	if code != http.StatusOK {
		t.Fatalf("worker not freed after cancellation: status %d: %s", code, resp)
	}
}
