package service

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// result is one completed compaction: the canonical JSON response body
// (no wall-clock fields, so cached and fresh responses are
// byte-identical), the human-readable report, and the accounting fields
// the stats surface aggregates.
type result struct {
	body      []byte
	report    string
	miner     string
	before    int
	after     int
	saved     int
	imageHash string
	// dictHits is how many dictionary fragments revalidated during the
	// mine that produced this result. Deliberately NOT part of body: the
	// response must stay byte-identical with or without a warm
	// dictionary. Batch status and /metrics read it from here.
	dictHits int
}

// flight is one in-progress mine other submissions of the same key wait
// on instead of mining again.
type flight struct {
	done chan struct{}
	val  *result
	err  error
}

// resultCache is the content-addressed LRU result cache with
// singleflight-style in-flight deduplication. Keys are hex SHA-256
// content addresses of (input bytes, compile options, optimize options);
// see CompactRequest.Key.
type resultCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
	flights map[string]*flight

	hits, misses, dedups, evictions int64
}

type cacheEntry struct {
	key string
	val *result
}

func newResultCache(max int) *resultCache {
	return &resultCache{
		max:     max,
		order:   list.New(),
		entries: map[string]*list.Element{},
		flights: map[string]*flight{},
	}
}

// get is the fast path: a completed entry or nothing. It never waits.
func (c *resultCache) get(key string) (*result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(e)
	c.hits++
	return e.Value.(*cacheEntry).val, true
}

// peek reads an entry without touching recency or the hit/miss
// counters — for report lookups, which are not cache traffic.
func (c *resultCache) peek(key string) *result {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e.Value.(*cacheEntry).val
	}
	return nil
}

// cacheStatus classifies how a do call was served, for the X-Cache
// response header and the stats counters.
type cacheStatus string

const (
	statusHit   cacheStatus = "hit"   // served from a completed entry
	statusMiss  cacheStatus = "miss"  // this call ran the mine
	statusDedup cacheStatus = "dedup" // joined another submission's mine
)

// do returns the cached result for key, joins an in-flight computation
// of it, or — as the single owner — runs compute and publishes the
// result. Identical concurrent submissions therefore mine exactly once.
// A waiter whose context is cancelled stops waiting with ctx's error; if
// the owner itself is cancelled, surviving waiters retry (one becomes
// the new owner) so one disconnecting client cannot fail the others.
func (c *resultCache) do(ctx context.Context, key string, compute func() (*result, error)) (*result, cacheStatus, error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.order.MoveToFront(e)
			c.hits++
			v := e.Value.(*cacheEntry).val
			c.mu.Unlock()
			return v, statusHit, nil
		}
		if f, ok := c.flights[key]; ok {
			c.dedups++
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, statusDedup, ctx.Err()
			}
			if f.err != nil {
				if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
					continue // owner disconnected; retry, maybe as owner
				}
				return nil, statusDedup, f.err
			}
			return f.val, statusDedup, nil
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.misses++
		c.mu.Unlock()

		f.val, f.err = compute()

		c.mu.Lock()
		delete(c.flights, key)
		if f.err == nil {
			c.insertLocked(key, f.val)
		}
		c.mu.Unlock()
		close(f.done)
		return f.val, statusMiss, f.err
	}
}

func (c *resultCache) insertLocked(key string, v *result) {
	if e, ok := c.entries[key]; ok {
		c.order.MoveToFront(e)
		e.Value.(*cacheEntry).val = v
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: v})
	for c.max > 0 && c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// cacheCounters is a stats snapshot.
type cacheCounters struct {
	Entries   int     `json:"entries"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Dedups    int64   `json:"dedups"`
	Evictions int64   `json:"evictions"`
	HitRatio  float64 `json:"hit_ratio"`
}

func (c *resultCache) counters() cacheCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	cc := cacheCounters{
		Entries:   c.order.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Dedups:    c.dedups,
		Evictions: c.evictions,
	}
	if lookups := c.hits + c.misses; lookups > 0 {
		cc.HitRatio = float64(c.hits) / float64(lookups)
	}
	return cc
}
