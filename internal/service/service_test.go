package service

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphpa/internal/bench"
	"graphpa/internal/core"
	"graphpa/internal/link"
)

// e2eMaxPatterns matches the determinism suite's budget (see
// internal/bench): big enough that rijndael's lattice is non-trivially
// truncated, small enough for CI.
const e2eMaxPatterns = 30000

func e2ePrograms() []string {
	if testing.Short() {
		return []string{"crc", "search"}
	}
	return bench.Names
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return svc, ts
}

func postJSON(t *testing.T, url string, req any) (int, http.Header, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, out
}

func benchRequest(t *testing.T, name string) *CompactRequest {
	t.Helper()
	src, err := bench.Source(name)
	if err != nil {
		t.Fatal(err)
	}
	return &CompactRequest{
		Source:   src,
		Optimize: OptimizeOptions{Miner: "edgar", MaxPatterns: e2eMaxPatterns},
	}
}

// directResult mirrors one request through the library, bypassing the
// service entirely, and renders it with the same encoder the server
// uses — the "fresh run" a served response must be byte-identical to.
func directResult(t *testing.T, req *CompactRequest) *result {
	t.Helper()
	img, err := core.Build(req.Source, req.compileOptions())
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.MinerByName(req.minerName())
	if err != nil {
		t.Fatal(err)
	}
	// Workers deliberately differs from the server's width: the response
	// must be identical at any width.
	res, out, err := core.Optimize(img, m, req.paOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	v, err := buildResult(req.Key(), res, out)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestServiceEndToEndDeterminism is the acceptance gate: every benchmark
// program submitted through a running server returns bytes identical to
// a direct pa.Optimize run, and a re-submission is served from cache —
// hit counter up, identical bytes.
func TestServiceEndToEndDeterminism(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	for _, name := range e2ePrograms() {
		req := benchRequest(t, name)
		want := directResult(t, req)

		code, hdr, body := postJSON(t, ts.URL+"/v1/compact", req)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, code, body)
		}
		if !bytes.Equal(body, want.body) {
			t.Errorf("%s: served response differs from direct run\nserved: %s\ndirect: %s", name, body, want.body)
			continue
		}
		if got := hdr.Get("X-Cache"); got != string(statusMiss) {
			t.Errorf("%s: first submission X-Cache = %q, want miss", name, got)
		}

		hitsBefore := svc.cache.counters().Hits
		code2, hdr2, body2 := postJSON(t, ts.URL+"/v1/compact", req)
		if code2 != http.StatusOK {
			t.Fatalf("%s: resubmit status %d", name, code2)
		}
		if got := hdr2.Get("X-Cache"); got != string(statusHit) {
			t.Errorf("%s: resubmission X-Cache = %q, want hit", name, got)
		}
		if svc.cache.counters().Hits != hitsBefore+1 {
			t.Errorf("%s: hit counter did not increment", name)
		}
		if !bytes.Equal(body2, body) {
			t.Errorf("%s: cached response not byte-identical to fresh one", name)
		}
	}
}

// TestServiceImageRoundTrip proves the wire format carries a runnable
// binary: the base64 image in a response decodes into an Image that
// behaves exactly like the unoptimized original.
func TestServiceImageRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := benchRequest(t, "crc")
	code, _, body := postJSON(t, ts.URL+"/v1/compact", req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp CompactResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	enc, err := base64.StdEncoding.DecodeString(resp.Image)
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if img.Hash() != resp.ImageHash {
		t.Fatal("image_hash does not match the decoded image")
	}
	orig, err := core.Build(req.Source, req.compileOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyEquivalent(orig, img, nil); err != nil {
		t.Fatalf("optimized image from the wire diverges: %v", err)
	}
	if got := orig.Hash(); got == resp.ImageHash {
		t.Fatal("optimized image is identical to the original (no compaction happened?)")
	}
}

// TestServiceConcurrentDedupMinesOnce: N identical concurrent
// submissions must mine exactly once and all receive identical bytes.
func TestServiceConcurrentDedupMinesOnce(t *testing.T) {
	const n = 8
	svc, ts := newTestServer(t, Config{JobWorkers: n, QueueDepth: 2 * n})
	release := make(chan struct{})
	var mines int32
	svc.hookMineStart = func(string) {
		atomic.AddInt32(&mines, 1)
		<-release
	}
	req := benchRequest(t, "search")

	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _, bodies[i] = postJSON(t, ts.URL+"/v1/compact", req)
		}(i)
	}
	// All n submissions share one key: one owner mines (parked on the
	// hook), the other n-1 join its flight. Only then release the mine.
	deadline := time.Now().Add(30 * time.Second)
	for svc.cache.counters().Dedups < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d submissions joined the in-flight mine", svc.cache.counters().Dedups, n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := atomic.LoadInt32(&mines); got != 1 {
		t.Fatalf("mined %d times, want exactly 1", got)
	}
	cc := svc.cache.counters()
	if cc.Misses != 1 || cc.Dedups != n-1 {
		t.Fatalf("counters: misses=%d dedups=%d, want 1 and %d", cc.Misses, cc.Dedups, n-1)
	}
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("submission %d: status %d", i, codes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("submission %d received different bytes", i)
		}
	}
}

// TestServiceAsyncJobs drives the queued/running/done lifecycle and the
// report endpoint, and checks async and sync agree byte-for-byte.
func TestServiceAsyncJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := benchRequest(t, "search")

	code, _, ack := postJSON(t, ts.URL+"/v1/jobs", req)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, ack)
	}
	var st jobStatusBody
	if err := json.Unmarshal(ack, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.ContentID == "" {
		t.Fatalf("acknowledgement incomplete: %s", ack)
	}
	if st.State != JobQueued && st.State != JobRunning && st.State != JobDone {
		t.Fatalf("unexpected state %q", st.State)
	}

	var final jobStatusBody
	deadline := time.Now().Add(2 * time.Minute)
	for {
		code, _, body := getURL(t, ts.URL+"/v1/jobs/"+st.ID)
		if code != http.StatusOK {
			t.Fatalf("poll status %d: %s", code, body)
		}
		if err := json.Unmarshal(body, &final); err != nil {
			t.Fatal(err)
		}
		if final.State == JobDone || final.State == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", final.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final.State != JobDone {
		t.Fatalf("job failed: %s", final.Error)
	}

	// Sync resubmission must be a cache hit with the exact same result
	// document the async job carries.
	codeSync, hdr, bodySync := postJSON(t, ts.URL+"/v1/compact", req)
	if codeSync != http.StatusOK || hdr.Get("X-Cache") != string(statusHit) {
		t.Fatalf("sync after async: status %d cache %q", codeSync, hdr.Get("X-Cache"))
	}
	if !bytes.Equal([]byte(final.Result), bodySync) {
		t.Fatal("async result differs from sync response")
	}

	// The report is served under both the job id and the content id.
	var resp CompactResponse
	if err := json.Unmarshal(bodySync, &resp); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{st.ID, st.ContentID} {
		code, _, rep := getURL(t, ts.URL+"/v1/report/"+id)
		if code != http.StatusOK {
			t.Fatalf("report %s: status %d", id, code)
		}
		if string(rep) != resp.Summary {
			t.Fatalf("report %s differs from response summary:\n%s\nvs\n%s", id, rep, resp.Summary)
		}
	}
}

func getURL(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// TestServiceHealthAndStats sanity-checks the observability surface.
func TestServiceHealthAndStats(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 7})
	code, _, body := getURL(t, ts.URL+"/healthz")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", code, body)
	}

	req := benchRequest(t, "search")
	if code, _, b := postJSON(t, ts.URL+"/v1/compact", req); code != http.StatusOK {
		t.Fatalf("compact: %d %s", code, b)
	}
	code, _, body = getURL(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	var snap statsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("stats not JSON: %v\n%s", err, body)
	}
	if snap.Queue.Capacity != 7 {
		t.Errorf("queue capacity %d, want 7", snap.Queue.Capacity)
	}
	if snap.Totals.Mined != 1 {
		t.Errorf("mined %d, want 1", snap.Totals.Mined)
	}
	ms := snap.Miners["edgar"]
	if ms == nil || ms.Jobs != 1 {
		t.Fatalf("per-miner stats missing: %s", body)
	}
	if ms.Saved <= 0 || snap.Totals.InstructionsSaved != ms.Saved {
		t.Errorf("saved accounting off: miner %d total %d", ms.Saved, snap.Totals.InstructionsSaved)
	}
	var histTotal int64
	for _, v := range ms.Latency {
		histTotal += v
	}
	if histTotal != 1 {
		t.Errorf("latency histogram holds %d observations, want 1", histTotal)
	}
	if fmt.Sprint(snap.Jobs) == "" {
		t.Error("jobs-by-state section missing")
	}
}
