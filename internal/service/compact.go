package service

import (
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"graphpa/internal/codegen"
	"graphpa/internal/core"
	"graphpa/internal/link"
	"graphpa/internal/pa"
)

// CompileOptions selects the mini-C compiler configuration of a request.
type CompileOptions struct {
	// Optimize enables the -Os-style IR optimizer.
	Optimize bool `json:"optimize"`
	// Schedule enables the list scheduler.
	Schedule bool `json:"schedule"`
}

// OptimizeOptions selects and tunes the procedural-abstraction run of a
// request. The zero value of each field means its library default.
type OptimizeOptions struct {
	Miner       string `json:"miner,omitempty"` // sfx | dgspan | edgar | edgar-canon (default edgar)
	MinSupport  int    `json:"min_support,omitempty"`
	MaxFragment int    `json:"max_fragment,omitempty"`
	MaxRounds   int    `json:"max_rounds,omitempty"`
	MaxPatterns int    `json:"max_patterns,omitempty"`
	GreedyMIS   bool   `json:"greedy_mis,omitempty"`
	// NoMultires disables the multiresolution coarse-to-fine mining pass
	// (a kill switch). The optimized image is byte-identical either way,
	// so — like the worker width — it is excluded from Key() and both
	// settings share one cache line.
	NoMultires bool `json:"no_multires,omitempty"`
}

// CompactRequest is the body of POST /v1/compact and POST /v1/jobs.
type CompactRequest struct {
	// Source is mini-C source, or assembly when Asm is set (assembly must
	// define _start; no runtime library is linked).
	Source string `json:"source"`
	Asm    bool   `json:"asm,omitempty"`
	// Compile is ignored for assembly. nil selects the benchmark-suite
	// configuration: IR optimizer and list scheduler both on.
	Compile  *CompileOptions `json:"compile,omitempty"`
	Optimize OptimizeOptions `json:"optimize"`
}

// Extraction is one applied rewrite in a response.
type Extraction struct {
	Name        string `json:"name"`
	Method      string `json:"method"` // "call" or "crossjump"
	Size        int    `json:"size"`
	Occurrences int    `json:"occurrences"`
	Benefit     int    `json:"benefit"`
}

// CompactResponse is the body of a successful compaction. It carries no
// wall-clock fields on purpose: a cached response must be byte-identical
// to a fresh run (timings live on /stats instead).
type CompactResponse struct {
	// ID is the request's content address — the cache key.
	ID          string       `json:"id"`
	Miner       string       `json:"miner"`
	Before      int          `json:"before"`
	After       int          `json:"after"`
	Saved       int          `json:"saved"`
	Rounds      int          `json:"rounds"`
	Extractions []Extraction `json:"extractions"`
	// Image is the optimized binary in the stable internal/link encoding,
	// base64; ImageHash is its content address (hex SHA-256 of the
	// encoding).
	Image     string `json:"image"`
	ImageHash string `json:"image_hash"`
	// Summary is the paper-style savings report, the same lines cmd/edgar
	// prints minus the wall-clock suffix.
	Summary string `json:"summary"`
}

func (r *CompactRequest) compileOptions() codegen.Options {
	if r.Compile == nil {
		return codegen.Options{Optimize: true, Schedule: true}
	}
	return codegen.Options{Optimize: r.Compile.Optimize, Schedule: r.Compile.Schedule}
}

func (r *CompactRequest) minerName() string {
	if r.Optimize.Miner == "" {
		return "edgar"
	}
	return r.Optimize.Miner
}

func (r *CompactRequest) paOptions(workers int) pa.Options {
	return pa.Options{
		MinSupport:  r.Optimize.MinSupport,
		MaxNodes:    r.Optimize.MaxFragment,
		MaxRounds:   r.Optimize.MaxRounds,
		MaxPatterns: r.Optimize.MaxPatterns,
		GreedyMIS:   r.Optimize.GreedyMIS,
		NoMultires:  r.Optimize.NoMultires,
		Workers:     workers,
	}
}

// validate rejects requests whose errors are knowable without compiling,
// so they never cost a queue slot.
func (r *CompactRequest) validate() error {
	if strings.TrimSpace(r.Source) == "" {
		return fmt.Errorf("empty source")
	}
	if _, err := core.MinerByName(r.minerName()); err != nil {
		return err
	}
	if r.Optimize.MinSupport < 0 || r.Optimize.MaxFragment < 0 ||
		r.Optimize.MaxRounds < 0 || r.Optimize.MaxPatterns < 0 {
		return fmt.Errorf("optimize options must be non-negative")
	}
	return nil
}

// Key returns the request's content address: the hex SHA-256 of the
// input bytes and every option that can change the output. Zero-valued
// options are resolved to their library defaults first, so spelling a
// default out loud shares the cache line with leaving it blank. The
// mining worker width is deliberately excluded — the parallel search is
// deterministic, so every width produces the same bytes.
func (r *CompactRequest) Key() string {
	h := sha256.New()
	kind := "minic"
	co := r.compileOptions()
	if r.Asm {
		kind = "asm"
		co = codegen.Options{}
	}
	minSup := r.Optimize.MinSupport
	if minSup == 0 {
		minSup = 2
	}
	maxFrag := r.Optimize.MaxFragment
	if maxFrag == 0 {
		maxFrag = 8
	}
	maxPat := r.Optimize.MaxPatterns
	if maxPat == 0 {
		maxPat = 100_000
	}
	fmt.Fprintf(h, "graphpa-compact-v1\x00%s\x00%d\x00", kind, len(r.Source))
	h.Write([]byte(r.Source))
	fmt.Fprintf(h, "\x00compile:%t,%t\x00opt:%s,%d,%d,%d,%d,%t",
		co.Optimize, co.Schedule,
		r.minerName(), minSup, maxFrag, r.Optimize.MaxRounds, maxPat, r.Optimize.GreedyMIS)
	return hex.EncodeToString(h.Sum(nil))
}

// requestError marks a failure caused by the request itself (malformed
// source, unknown miner): HTTP 400 with the diagnostic.
type requestError struct{ err error }

func (e *requestError) Error() string { return e.err.Error() }
func (e *requestError) Unwrap() error { return e.err }

// RenderReport renders the paper-style savings summary of one run — the
// same lines cmd/edgar prints, minus the wall-clock suffix, so the text
// is deterministic and a cached report is byte-identical to a fresh one.
func RenderReport(miner string, before, after, rounds int, extractions []Extraction) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d -> %d instructions (saved %d) in %d rounds\n",
		miner, before, after, before-after, rounds)
	for _, e := range extractions {
		fmt.Fprintf(&b, "  %-8s %-10s size=%d occs=%d benefit=%d\n",
			e.Name, e.Method, e.Size, e.Occurrences, e.Benefit)
	}
	return b.String()
}

// buildResult converts one optimization run into the canonical cacheable
// result. Both the live service path and the end-to-end tests build
// expected responses through this one function, so "byte-identical to a
// direct run" is checked against the real encoder.
func buildResult(key string, res *pa.Result, img *link.Image) (*result, error) {
	resp := &CompactResponse{
		ID:          key,
		Miner:       res.Miner,
		Before:      res.Before,
		After:       res.After,
		Saved:       res.Saved(),
		Rounds:      res.Rounds,
		Extractions: []Extraction{},
	}
	for _, e := range res.Extractions {
		resp.Extractions = append(resp.Extractions, Extraction{
			Name:        e.Name,
			Method:      e.Method.String(),
			Size:        e.Size,
			Occurrences: e.Occs,
			Benefit:     e.Benefit,
		})
	}
	enc := img.Encode()
	resp.Image = base64.StdEncoding.EncodeToString(enc)
	resp.ImageHash = img.Hash()
	resp.Summary = RenderReport(resp.Miner, resp.Before, resp.After, resp.Rounds, resp.Extractions)
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return &result{
		body: body, report: resp.Summary, miner: resp.Miner,
		before: resp.Before, after: resp.After, saved: resp.Saved,
		imageHash: resp.ImageHash, dictHits: res.DictHits(),
	}, nil
}

// mine runs the full pipeline for one request: compile or assemble,
// optimize under ctx, and render the canonical result.
func (s *Server) mine(ctx context.Context, req *CompactRequest, key string) (*result, error) {
	if s.hookMineStart != nil {
		s.hookMineStart(key)
	}
	var img *link.Image
	var err error
	if req.Asm {
		img, err = core.BuildAsm(req.Source)
	} else {
		img, err = core.Build(req.Source, req.compileOptions())
	}
	if err != nil {
		return nil, &requestError{err}
	}
	m, err := core.MinerByName(req.minerName())
	if err != nil {
		return nil, &requestError{err}
	}
	po := req.paOptions(s.cfg.mineWorkers())
	if s.cfg.Dict != nil {
		// Assigned only when non-nil: a typed-nil *dict.Dict inside the
		// interface would defeat pa's Warmstart == nil check.
		po.Warmstart = s.cfg.Dict
	}
	if s.shardPool != nil {
		// Shard topology is server deployment (like Workers): it changes
		// how the lattice is walked, never the bytes of the result, so it
		// is set here — after Key() — and must never be added to Key().
		// TestShardCacheKeyTopologyFree pins this.
		po.Shards = s.shardPool
	}
	res, out, err := core.OptimizeContext(ctx, img, m, po)
	if err != nil {
		return nil, err
	}
	return buildResult(key, res, out)
}
