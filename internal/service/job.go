package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Job states, in lifecycle order.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// errQueueFull is returned when the bounded job queue rejects a
// submission; handlers translate it into 429 with Retry-After.
var errQueueFull = errors.New("service: job queue full")

// job is one unit of compaction work flowing through the bounded queue.
// Sync submissions wait on done; async submissions are registered in the
// server's job store and polled by id.
type job struct {
	id  string
	key string
	req *CompactRequest
	// ctx governs the job's mining: the request context for sync jobs
	// (client disconnect cancels the mine), the server's base context for
	// async jobs (shutdown cancels).
	ctx  context.Context
	done chan struct{}

	mu       sync.Mutex
	state    string
	val      *result
	status   cacheStatus
	err      error
	enqueued time.Time
}

func (j *job) setState(s string) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

func (j *job) snapshot() (state string, val *result, status cacheStatus, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.val, j.status, j.err
}

func (j *job) finish(val *result, status cacheStatus, err error) {
	j.mu.Lock()
	j.val, j.status, j.err = val, status, err
	if err != nil {
		j.state = JobFailed
	} else {
		j.state = JobDone
	}
	j.mu.Unlock()
	close(j.done)
}

// newJob allocates and registers a job. Async jobs stay queryable via
// GET /v1/jobs/{id} until pruned; sync jobs are registered too so
// /v1/report/{id} works with either id form.
func (s *Server) newJob(req *CompactRequest, key string, ctx context.Context) *job {
	s.mu.Lock()
	s.nextJob++
	j := &job{
		id:       fmt.Sprintf("j%06d", s.nextJob),
		key:      key,
		req:      req,
		ctx:      ctx,
		done:     make(chan struct{}),
		state:    JobQueued,
		enqueued: time.Now(),
	}
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	s.pruneJobsLocked()
	s.mu.Unlock()
	return j
}

// maxRetainedJobs bounds the job store: beyond it, the oldest finished
// jobs are forgotten (queued and running jobs are never pruned).
const maxRetainedJobs = 1024

func (s *Server) pruneJobsLocked() {
	if len(s.jobOrder) <= maxRetainedJobs {
		return
	}
	kept := s.jobOrder[:0]
	excess := len(s.jobOrder) - maxRetainedJobs
	for _, id := range s.jobOrder {
		j := s.jobs[id]
		if excess > 0 && j != nil {
			if st, _, _, _ := j.snapshot(); st == JobDone || st == JobFailed {
				delete(s.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	s.jobOrder = kept
}

// enqueue offers the job to the bounded queue without blocking; a full
// queue (or a server past Shutdown) is the caller's 429/503.
func (s *Server) enqueue(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("service: shutting down")
	}
	select {
	case s.queue <- j:
		return nil
	default:
		return errQueueFull
	}
}

// worker drains the queue until Shutdown closes it, running one job at a
// time. JobWorkers of these share the queue.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	if err := j.ctx.Err(); err != nil {
		// Client disconnected (or server cancelled) while the job sat in
		// the queue: never start the mine.
		s.stats.observeCancel()
		j.finish(nil, statusMiss, err)
		return
	}
	j.setState(JobRunning)
	var mineDur time.Duration
	val, status, err := s.cache.do(j.ctx, j.key, func() (*result, error) {
		start := time.Now()
		v, err := s.mine(j.ctx, j.req, j.key)
		mineDur = time.Since(start)
		return v, err
	})
	switch {
	case err == nil:
		if status == statusMiss {
			s.stats.observeMine(val.miner, val.saved, val.dictHits, mineDur)
		}
		s.log.Info("job done", "job", j.id, "key", j.key, "cache", string(status),
			"miner", val.miner, "saved", val.saved, "dict_hits", val.dictHits,
			"wait", time.Since(j.enqueued))
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.stats.observeCancel()
		s.log.Info("job cancelled", "job", j.id, "key", j.key)
	default:
		s.stats.observeFail()
		s.log.Info("job failed", "job", j.id, "key", j.key, "err", err.Error())
	}
	j.finish(val, status, err)
}
