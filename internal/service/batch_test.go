package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graphpa/internal/dict"
)

// submitBatchAndWait posts a batch of benchmark programs and polls until
// every program settles.
func submitBatchAndWait(t *testing.T, url string, names []string) BatchStatusBody {
	t.Helper()
	var req BatchRequest
	for _, name := range names {
		cr := benchRequest(t, name)
		req.Programs = append(req.Programs, BatchProgram{Name: name, Source: cr.Source})
		req.Optimize = cr.Optimize
	}
	code, _, ack := postJSON(t, url+"/v1/batch", &req)
	if code != http.StatusAccepted {
		t.Fatalf("batch submit status %d: %s", code, ack)
	}
	var accepted struct {
		ID       string `json:"id"`
		Programs int    `json:"programs"`
	}
	if err := json.Unmarshal(ack, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.Programs != len(names) {
		t.Fatalf("acknowledged %d programs, want %d", accepted.Programs, len(names))
	}
	deadline := time.Now().Add(5 * time.Minute)
	for {
		code, _, body := getURL(t, url+"/v1/batch/"+accepted.ID)
		if code != http.StatusOK {
			t.Fatalf("batch poll status %d: %s", code, body)
		}
		var st BatchStatusBody
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch stuck: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServiceBatchWarmstart is the corpus acceptance test: a batch mined
// by a dictionary-backed server produces per-program images byte-identical
// to direct library runs; a second server sharing the dictionary (fresh
// cache) re-mines the same corpus with warm-start hits and identical
// hashes.
func TestServiceBatchWarmstart(t *testing.T) {
	names := e2ePrograms()
	want := map[string]*result{}
	for _, name := range names {
		want[name] = directResult(t, benchRequest(t, name))
	}

	d, err := dict.Open(dict.Options{Path: filepath.Join(t.TempDir(), "frag.dict")})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	_, ts1 := newTestServer(t, Config{Dict: d})
	st1 := submitBatchAndWait(t, ts1.URL, names)
	if st1.Totals.Failed != 0 || st1.Totals.Done != len(names) {
		t.Fatalf("first batch: %+v", st1.Totals)
	}
	for _, p := range st1.Programs {
		w := want[p.Name]
		if p.ImageHash != w.imageHash {
			t.Errorf("%s: batch image hash %s differs from direct run %s", p.Name, p.ImageHash, w.imageHash)
		}
		if p.Before != w.before || p.After != w.after || p.Saved != w.saved {
			t.Errorf("%s: batch stats %d->%d differ from direct %d->%d", p.Name, p.Before, p.After, w.before, w.after)
		}
		// Full byte-identity through the job the batch program rode on.
		code, _, body := getURL(t, ts1.URL+"/v1/jobs/"+p.JobID)
		if code != http.StatusOK {
			t.Fatalf("%s: job poll %d", p.Name, code)
		}
		var js jobStatusBody
		if err := json.Unmarshal(body, &js); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal([]byte(js.Result), w.body) {
			t.Errorf("%s: batch job result differs from direct run", p.Name)
		}
	}
	if d.Len() == 0 {
		t.Fatal("batch published nothing to the dictionary")
	}

	// Resubmission to the same server is pure cache.
	st1b := submitBatchAndWait(t, ts1.URL, names)
	for _, p := range st1b.Programs {
		if p.Cache != string(statusHit) {
			t.Errorf("%s: resubmission cache %q, want hit", p.Name, p.Cache)
		}
	}

	// A second server shares the dictionary but not the cache: it must
	// re-mine with dictionary warm-start hits and identical hashes.
	_, ts2 := newTestServer(t, Config{Dict: d})
	st2 := submitBatchAndWait(t, ts2.URL, names)
	if st2.Totals.Failed != 0 {
		t.Fatalf("second batch: %+v", st2.Totals)
	}
	if st2.Totals.DictHits == 0 {
		t.Error("second server reported no dictionary warm-start hits")
	}
	for _, p := range st2.Programs {
		if p.Cache != string(statusMiss) {
			t.Errorf("%s: second server cache %q, want miss", p.Name, p.Cache)
		}
		if p.ImageHash != want[p.Name].imageHash {
			t.Errorf("%s: warm-started image hash differs from direct run", p.Name)
		}
	}
}

func TestServiceBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, req := range map[string]BatchRequest{
		"empty":     {},
		"unnamed":   {Programs: []BatchProgram{{Source: "int main() { return 0; }"}}},
		"duplicate": {Programs: []BatchProgram{{Name: "a", Source: "int main() { return 0; }"}, {Name: "a", Source: "int main() { return 1; }"}}},
		"badminer":  {Programs: []BatchProgram{{Name: "a", Source: "int main() { return 0; }"}}, Optimize: OptimizeOptions{Miner: "nope"}},
	} {
		if code, _, body := postJSON(t, ts.URL+"/v1/batch", &req); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, code, body)
		}
	}
	if code, _, _ := getURL(t, ts.URL+"/v1/batch/b9999"); code != http.StatusNotFound {
		t.Errorf("unknown batch id: status %d, want 404", code)
	}
}

// TestServiceMetrics checks the Prometheus text surface: counters move
// with work, the latency histogram is cumulative and complete, and the
// dictionary section appears iff a dictionary is configured.
func TestServiceMetrics(t *testing.T) {
	d, err := dict.Open(dict.Options{Path: filepath.Join(t.TempDir(), "frag.dict")})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	_, ts := newTestServer(t, Config{Dict: d})

	req := benchRequest(t, "search")
	if code, _, b := postJSON(t, ts.URL+"/v1/compact", req); code != http.StatusOK {
		t.Fatalf("compact: %d %s", code, b)
	}
	code, hdr, body := getURL(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE pad_requests_total counter",
		"pad_jobs_mined_total 1",
		"# TYPE pad_mine_duration_seconds histogram",
		`pad_mine_duration_seconds_bucket{miner="edgar",le="+Inf"} 1`,
		`pad_mine_duration_seconds_count{miner="edgar"} 1`,
		`pad_jobs{state="done"} 1`,
		"pad_cache_misses_total 1",
		"# TYPE pad_dict_entries gauge",
		"pad_dict_published_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q\n%s", want, text)
		}
	}
	if !strings.Contains(text, `pad_mine_duration_seconds_sum{miner="edgar"} `) {
		t.Error("histogram sum line missing")
	}

	// Without a dictionary the dict section must be absent.
	_, ts2 := newTestServer(t, Config{})
	_, _, body2 := getURL(t, ts2.URL+"/metrics")
	if strings.Contains(string(body2), "pad_dict_entries") {
		t.Error("dictionary metrics present without a dictionary")
	}
}
