package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"graphpa/internal/pa"
)

// ShardPool is the coordinator half of the distributed lattice search:
// a pa.ShardDialer over a fixed set of shard-worker pad instances (the
// `-shards host1,host2` list). Seeds are assigned consistently by
// canonical seed order — seed i goes to shard i mod N over the
// CONFIGURED list, alive or not — so the assignment never depends on
// failure timing; a dead shard's seeds degrade to coordinator-local
// speculation. RPCs retry transient failures with exponential backoff
// plus jitter; a shard that keeps failing is marked dead for the rest
// of the walk (cheap fast-path errors instead of per-seed timeouts).
// All of it is advisory: the coordinator's authoritative replay decides
// every byte of output.
type ShardPool struct {
	addrs  []string
	client *http.Client
	log    *slog.Logger

	// Per-shard lifetime counters, indexed like addrs; surfaced on the
	// coordinator's GET /metrics.
	seeds      []atomic.Int64 // seed subtrees requested
	subtrees   []atomic.Int64 // successfully streamed back
	fallbacks  []atomic.Int64 // requests that errored out (seed degrades)
	broadcasts []atomic.Int64 // incumbent pushes sent
	walkErrors []atomic.Int64 // walk-open failures
}

// Shard RPC retry policy: small and bounded — a seed that cannot be
// fetched quickly is cheaper to speculate locally than to wait for.
const (
	shardRetries      = 3
	shardRetryBackoff = 50 * time.Millisecond
)

// NewShardPool builds a pool over worker base addresses ("host:port").
func NewShardPool(addrs []string, lg *slog.Logger) *ShardPool {
	if lg == nil {
		lg = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	p := &ShardPool{
		addrs:      addrs,
		client:     &http.Client{},
		log:        lg,
		seeds:      make([]atomic.Int64, len(addrs)),
		subtrees:   make([]atomic.Int64, len(addrs)),
		fallbacks:  make([]atomic.Int64, len(addrs)),
		broadcasts: make([]atomic.Int64, len(addrs)),
		walkErrors: make([]atomic.Int64, len(addrs)),
	}
	return p
}

// NumShards implements pa.ShardDialer.
func (p *ShardPool) NumShards() int { return len(p.addrs) }

// shardCounters is one shard's lifetime counter snapshot (metrics.go).
type shardCounters struct {
	Addr       string
	Seeds      int64
	Subtrees   int64
	Fallbacks  int64
	Broadcasts int64
	WalkErrors int64
}

func (p *ShardPool) counters() []shardCounters {
	out := make([]shardCounters, len(p.addrs))
	for i, a := range p.addrs {
		out[i] = shardCounters{
			Addr:       a,
			Seeds:      p.seeds[i].Load(),
			Subtrees:   p.subtrees[i].Load(),
			Fallbacks:  p.fallbacks[i].Load(),
			Broadcasts: p.broadcasts[i].Load(),
			WalkErrors: p.walkErrors[i].Load(),
		}
	}
	return out
}

// backoff sleeps attempt's exponential delay with ±50% jitter, or
// returns false if ctx expires first.
func backoff(ctx context.Context, attempt int) bool {
	d := shardRetryBackoff << attempt
	d += time.Duration(rand.Int63n(int64(d))) - d/2
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// retryable reports whether an RPC failure is worth another attempt:
// transport errors and 5xx are; 4xx (bad request, unknown walk) and
// context cancellation are not.
func retryable(status int, err error) bool {
	if err != nil {
		return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
	}
	return status >= 500
}

// post runs one POST with the retry policy. body may be nil. Returns
// the response body bytes on 2xx.
func (p *ShardPool) post(ctx context.Context, url string, contentType string, body []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt <= shardRetries; attempt++ {
		if attempt > 0 && !backoff(ctx, attempt-1) {
			return nil, ctx.Err()
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := p.client.Do(req)
		if err != nil {
			lastErr = err
			if !retryable(0, err) {
				return nil, err
			}
			continue
		}
		out, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode/100 == 2 && rerr == nil {
			return out, nil
		}
		lastErr = fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, bytes.TrimSpace(out))
		if rerr != nil {
			lastErr = rerr
		}
		if !retryable(resp.StatusCode, rerr) {
			return nil, lastErr
		}
	}
	return nil, fmt.Errorf("after %d attempts: %w", shardRetries+1, lastErr)
}

// poolShard is one shard's state within an open walk.
type poolShard struct {
	idx    int    // index into pool.addrs
	walkID string // empty: the open failed, shard unused this walk
	dead   atomic.Bool
}

// poolWalk implements pa.ShardWalk over the pool.
type poolWalk struct {
	p      *ShardPool
	shards []*poolShard
	visits atomic.Int64 // spec visits reported by closed shards
	sent   atomic.Int64 // broadcasts actually sent
}

// NewWalk implements pa.ShardDialer: open the walk on every configured
// shard concurrently. Shards whose open fails are dead for this walk;
// if ALL fail, the walk fails and the caller mines locally.
func (p *ShardPool) NewWalk(ctx context.Context, req []byte) (pa.ShardWalk, error) {
	w := &poolWalk{p: p, shards: make([]*poolShard, len(p.addrs))}
	var wg sync.WaitGroup
	for i := range p.addrs {
		w.shards[i] = &poolShard{idx: i}
		wg.Add(1)
		go func(sh *poolShard) {
			defer wg.Done()
			body, err := p.post(ctx, p.url(sh.idx, "/v1/shard/walk"), "application/octet-stream", req)
			if err != nil {
				p.walkErrors[sh.idx].Add(1)
				p.log.Warn("shard walk open failed", "shard", p.addrs[sh.idx], "err", err)
				sh.dead.Store(true)
				return
			}
			var ack shardWalkBody
			if err := json.Unmarshal(body, &ack); err != nil || ack.ID == "" {
				p.walkErrors[sh.idx].Add(1)
				sh.dead.Store(true)
				return
			}
			sh.walkID = ack.ID
		}(w.shards[i])
	}
	wg.Wait()
	live := 0
	for _, sh := range w.shards {
		if !sh.dead.Load() {
			live++
		}
	}
	if live == 0 {
		return nil, fmt.Errorf("service: no shard reachable (%d configured)", len(p.addrs))
	}
	return w, nil
}

func (p *ShardPool) url(idx int, path string) string {
	return "http://" + p.addrs[idx] + path
}

// Speculate implements pa.ShardWalk: fetch seed's recorded subtree from
// its assigned shard. Failures mark the shard dead for the walk — its
// remaining seeds fail fast and speculate locally.
func (w *poolWalk) Speculate(ctx context.Context, seed int) ([]byte, error) {
	sh := w.shards[seed%len(w.shards)]
	if sh.dead.Load() {
		w.p.fallbacks[sh.idx].Add(1)
		return nil, fmt.Errorf("service: shard %s is down", w.p.addrs[sh.idx])
	}
	w.p.seeds[sh.idx].Add(1)
	tree, err := w.p.post(ctx, w.p.url(sh.idx, fmt.Sprintf("/v1/shard/walk/%s/seed/%d", sh.walkID, seed)), "", nil)
	if err != nil {
		if ctx.Err() == nil {
			w.p.fallbacks[sh.idx].Add(1)
			w.p.log.Warn("shard seed failed, marking shard dead", "shard", w.p.addrs[sh.idx], "seed", seed, "err", err)
			sh.dead.Store(true)
		}
		return nil, err
	}
	w.p.subtrees[sh.idx].Add(1)
	return tree, nil
}

// Broadcast implements pa.ShardWalk: best-effort incumbent push to
// every live shard. Failures are ignored beyond logging — a missed
// floor costs shard over-exploration, never output — but do not mark
// the shard dead: the gossip path is cheaper to lose than the seed
// stream.
func (w *poolWalk) Broadcast(floor int) {
	body, _ := json.Marshal(shardFloorBody{Floor: floor})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for _, sh := range w.shards {
		if sh.dead.Load() {
			continue
		}
		if _, err := w.p.post(ctx, w.p.url(sh.idx, "/v1/shard/walk/"+sh.walkID+"/floor"), "application/json", body); err == nil {
			w.p.broadcasts[sh.idx].Add(1)
			w.sent.Add(1)
		}
	}
}

// Close implements pa.ShardWalk: release the walk on every shard and
// collect the speculative-visit accounting.
func (w *poolWalk) Close() pa.ShardWalkStats {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, sh := range w.shards {
		if sh.walkID == "" {
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodDelete, w.p.url(sh.idx, "/v1/shard/walk/"+sh.walkID), nil)
		if err != nil {
			continue
		}
		resp, err := w.p.client.Do(req)
		if err != nil {
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			continue
		}
		var ack shardCloseBody
		if json.Unmarshal(body, &ack) == nil {
			w.visits.Add(ack.SpecVisits)
		}
	}
	return pa.ShardWalkStats{SpecVisits: w.visits.Load(), Broadcasts: int(w.sent.Load())}
}
