package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"graphpa/internal/mining"
)

// This file is the worker half of the distributed lattice search: the
// `/v1/shard` endpoint family a coordinator pad drives (client side in
// shardclient.go). A walk is one open speculation session —
// mining graphs plus advisory bound state, shipped in the mining wire
// encoding — against which the coordinator requests seed subtrees and
// pushes incumbent-floor improvements. Everything here is advisory:
// the coordinator replays every subtree authoritatively, so a worker
// restart, an evicted session or a half-served walk costs the
// coordinator local-fallback work, never output. The endpoints are
// always registered — any pad instance can serve as a shard worker;
// `pad serve -shard-of` just names the role.
//
//	POST   /v1/shard/walk            open a walk (binary EncodeShardWalk body)
//	POST   /v1/shard/walk/{id}/seed/{n}   speculate one seed (binary tree out)
//	POST   /v1/shard/walk/{id}/floor      push an incumbent floor (JSON)
//	DELETE /v1/shard/walk/{id}            close the walk, report accounting

// shardMaxWalkBytes bounds an EncodeShardWalk request body; the largest
// benchmark corpus encodes to well under a megabyte, so 64 MiB is a
// pure anti-abuse bound.
const shardMaxWalkBytes = 64 << 20

// shardMaxSessions bounds concurrently open walks; opening past the
// bound evicts the least-recently-used session (its coordinator, if
// still alive, degrades to local mining).
const shardMaxSessions = 8

// shardIdleTimeout evicts sessions whose coordinator went away without
// closing them.
const shardIdleTimeout = 5 * time.Minute

// shardSession is one open walk on a worker.
type shardSession struct {
	id       string
	sess     *mining.SpecSession
	lastUsed atomic.Int64 // unix nanos
}

func (ss *shardSession) touch() { ss.lastUsed.Store(time.Now().UnixNano()) }

// shardWorkerStats are the worker-side counters of the `/v1/shard`
// family, surfaced on GET /metrics.
type shardWorkerStats struct {
	walksOpened  atomic.Int64
	walksEvicted atomic.Int64
	seedsServed  atomic.Int64
	floorRecv    atomic.Int64
	floorStale   atomic.Int64
	specVisits   atomic.Int64 // accumulated at close/evict time
}

// shardStore holds a worker's open walks.
type shardStore struct {
	mu       sync.Mutex
	sessions map[string]*shardSession
	next     int
	stats    shardWorkerStats
}

func newShardStore() *shardStore {
	return &shardStore{sessions: map[string]*shardSession{}}
}

// open registers a new session, evicting idle or excess ones first.
func (st *shardStore) open(sess *mining.SpecSession) *shardSession {
	st.mu.Lock()
	defer st.mu.Unlock()
	cutoff := time.Now().Add(-shardIdleTimeout).UnixNano()
	for id, ss := range st.sessions {
		if ss.lastUsed.Load() < cutoff {
			st.evictLocked(id)
		}
	}
	for len(st.sessions) >= shardMaxSessions {
		oldest, oldestAt := "", int64(0)
		for id, ss := range st.sessions {
			if at := ss.lastUsed.Load(); oldest == "" || at < oldestAt {
				oldest, oldestAt = id, at
			}
		}
		st.evictLocked(oldest)
	}
	st.next++
	ss := &shardSession{id: fmt.Sprintf("w%06d", st.next), sess: sess}
	ss.touch()
	st.sessions[ss.id] = ss
	st.stats.walksOpened.Add(1)
	return ss
}

func (st *shardStore) evictLocked(id string) {
	if ss := st.sessions[id]; ss != nil {
		st.stats.specVisits.Add(ss.sess.Visits())
		st.stats.walksEvicted.Add(1)
		delete(st.sessions, id)
	}
}

func (st *shardStore) get(id string) *shardSession {
	st.mu.Lock()
	defer st.mu.Unlock()
	if ss := st.sessions[id]; ss != nil {
		ss.touch()
		return ss
	}
	return nil
}

// close removes a session and returns it (nil if unknown).
func (st *shardStore) close(id string) *shardSession {
	st.mu.Lock()
	defer st.mu.Unlock()
	ss := st.sessions[id]
	if ss != nil {
		st.stats.specVisits.Add(ss.sess.Visits())
		delete(st.sessions, id)
	}
	return ss
}

// shardWalkBody is the JSON acknowledgement of an opened walk.
type shardWalkBody struct {
	ID    string `json:"id"`
	Seeds int    `json:"seeds"`
}

// shardFloorBody is the incumbent push request and response.
type shardFloorBody struct {
	Floor   int  `json:"floor"`
	Applied bool `json:"applied"`
}

// shardCloseBody is the DELETE response: the walk's accounting.
type shardCloseBody struct {
	SpecVisits int64 `json:"spec_visits"`
}

func (s *Server) handleShardWalkOpen(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, shardMaxWalkBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	if len(body) > shardMaxWalkBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{"walk request too large"})
		return
	}
	sc, graphs, err := mining.DecodeShardWalk(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	ss := s.shardsSrv.open(mining.NewSpecSession(graphs, sc))
	s.log.Info("shard walk opened", "walk", ss.id, "graphs", len(graphs), "seeds", ss.sess.NumSeeds())
	writeJSON(w, http.StatusOK, shardWalkBody{ID: ss.id, Seeds: ss.sess.NumSeeds()})
}

func (s *Server) handleShardSeed(w http.ResponseWriter, r *http.Request) {
	ss := s.shardsSrv.get(r.PathValue("id"))
	if ss == nil {
		writeJSON(w, http.StatusNotFound, errorBody{"unknown walk id"})
		return
	}
	seed, err := strconv.Atoi(r.PathValue("n"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{"bad seed index"})
		return
	}
	// Speculation runs on the request goroutine under the request
	// context: a coordinator that gives up on the seed (or dies) cancels
	// the walk below it via the speculator's budget check.
	tree, err := ss.sess.MineSeed(r.Context(), seed)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	s.shardsSrv.stats.seedsServed.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(tree)
}

func (s *Server) handleShardFloor(w http.ResponseWriter, r *http.Request) {
	ss := s.shardsSrv.get(r.PathValue("id"))
	if ss == nil {
		writeJSON(w, http.StatusNotFound, errorBody{"unknown walk id"})
		return
	}
	var req shardFloorBody
	if err := readJSON(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	applied := ss.sess.SetFloor(req.Floor)
	s.shardsSrv.stats.floorRecv.Add(1)
	if !applied {
		s.shardsSrv.stats.floorStale.Add(1)
	}
	writeJSON(w, http.StatusOK, shardFloorBody{Floor: req.Floor, Applied: applied})
}

func (s *Server) handleShardClose(w http.ResponseWriter, r *http.Request) {
	ss := s.shardsSrv.close(r.PathValue("id"))
	if ss == nil {
		writeJSON(w, http.StatusNotFound, errorBody{"unknown walk id"})
		return
	}
	s.log.Info("shard walk closed", "walk", ss.id, "spec_visits", ss.sess.Visits())
	writeJSON(w, http.StatusOK, shardCloseBody{SpecVisits: ss.sess.Visits()})
}

func readJSON(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}
