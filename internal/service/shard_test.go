package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"graphpa/internal/mining"
)

// newShardCluster boots n shard-worker pads plus a coordinator fronting
// them. Returned worker servers can be Closed individually to inject
// faults; the coordinator cleans up via the usual newTestServer path.
func newShardCluster(t *testing.T, n int, cfg Config) (*Server, *httptest.Server, []*httptest.Server) {
	t.Helper()
	workers := make([]*httptest.Server, n)
	for i := range workers {
		_, ts := newTestServer(t, Config{ShardOf: "test-coordinator"})
		workers[i] = ts
		cfg.Shards = append(cfg.Shards, strings.TrimPrefix(ts.URL, "http://"))
	}
	coord, cts := newTestServer(t, cfg)
	return coord, cts, workers
}

func metricsText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// metricValue sums the samples of one metric name across its labels.
func metricValue(t *testing.T, text, name string) int64 {
	t.Helper()
	var sum int64
	found := false
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "# ") {
			continue
		}
		rest := line[len(name):]
		if rest != "" && rest[0] != ' ' && rest[0] != '{' {
			continue // a longer metric name sharing the prefix
		}
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v); err != nil {
			t.Fatalf("unparseable metric line %q", line)
		}
		sum += v
		found = true
	}
	if !found {
		t.Fatalf("metric %s not found", name)
	}
	return sum
}

// TestShardClusterByteIdentical: a coordinator distributing speculation
// over two worker pads must answer every benchmark byte-identically to
// an unsharded server, while actually using the shards.
func TestShardClusterByteIdentical(t *testing.T) {
	_, plainTS := newTestServer(t, Config{MineWorkers: 1})
	_, coordTS, workers := newShardCluster(t, 2, Config{MineWorkers: 1})

	for _, name := range e2ePrograms() {
		req := benchRequest(t, name)
		code, _, plain := postJSON(t, plainTS.URL+"/v1/compact", req)
		if code != http.StatusOK {
			t.Fatalf("%s: plain server HTTP %d: %s", name, code, plain)
		}
		code, hdr, sharded := postJSON(t, coordTS.URL+"/v1/compact", req)
		if code != http.StatusOK {
			t.Fatalf("%s: coordinator HTTP %d: %s", name, code, sharded)
		}
		if hdr.Get("X-Cache") != string(statusMiss) {
			t.Fatalf("%s: first coordinator submit was %q, want miss", name, hdr.Get("X-Cache"))
		}
		if !bytes.Equal(plain, sharded) {
			t.Fatalf("%s: sharded response differs from the unsharded server's\nplain:   %s\nsharded: %s",
				name, plain, sharded)
		}
	}

	cm := metricsText(t, coordTS.URL)
	if n := metricValue(t, cm, "pad_shard_subtrees_total"); n == 0 {
		t.Fatal("coordinator streamed no subtrees from its shards")
	}
	if n := metricValue(t, cm, "pad_shard_fallbacks_total"); n != 0 {
		t.Fatalf("healthy cluster reported %d fallbacks", n)
	}
	var served, opened int64
	for _, w := range workers {
		wm := metricsText(t, w.URL)
		served += metricValue(t, wm, "pad_shard_seeds_served_total")
		opened += metricValue(t, wm, "pad_shard_walks_opened_total")
	}
	if served == 0 || opened == 0 {
		t.Fatalf("workers served %d seeds across %d walks; want both > 0", served, opened)
	}
	// Assigned can exceed served: a seed request aborted by end-of-walk
	// cancellation (budget truncation) is counted as assigned on the
	// coordinator but may never reach the worker's handler. It can never
	// be lower — every served seed was assigned first.
	if got := metricValue(t, cm, "pad_shard_seeds_assigned_total"); got < served {
		t.Fatalf("coordinator assigned %d seeds but workers served %d", got, served)
	}
}

// TestShardClusterWorkerDeath: killing a worker pad between (and
// therefore during) walks must degrade to local speculation with a
// byte-identical response.
func TestShardClusterWorkerDeath(t *testing.T) {
	_, plainTS := newTestServer(t, Config{MineWorkers: 1})
	_, coordTS, workers := newShardCluster(t, 2, Config{MineWorkers: 1})

	req := benchRequest(t, "crc")
	code, _, plain := postJSON(t, plainTS.URL+"/v1/compact", req)
	if code != http.StatusOK {
		t.Fatalf("plain server HTTP %d: %s", code, plain)
	}

	workers[1].Close() // dies before the coordinator's first walk
	code, _, sharded := postJSON(t, coordTS.URL+"/v1/compact", req)
	if code != http.StatusOK {
		t.Fatalf("coordinator HTTP %d: %s", code, sharded)
	}
	if !bytes.Equal(plain, sharded) {
		t.Fatalf("response changed after a worker died\nplain:   %s\nsharded: %s", plain, sharded)
	}

	cm := metricsText(t, coordTS.URL)
	if n := metricValue(t, cm, "pad_shard_walk_errors_total"); n == 0 {
		t.Fatal("dead worker produced no walk-open errors")
	}
	if n := metricValue(t, cm, "pad_shard_fallbacks_total"); n == 0 {
		t.Fatal("dead worker's seeds produced no local fallbacks")
	}
	if n := metricValue(t, cm, "pad_shard_subtrees_total"); n == 0 {
		t.Fatal("surviving worker streamed no subtrees")
	}
}

// TestShardClusterAllShardsDown: with every shard unreachable the
// coordinator must mine fully locally — same bytes, slower walk.
func TestShardClusterAllShardsDown(t *testing.T) {
	_, plainTS := newTestServer(t, Config{MineWorkers: 1})
	_, coordTS, workers := newShardCluster(t, 2, Config{MineWorkers: 1})
	workers[0].Close()
	workers[1].Close()

	req := benchRequest(t, "crc")
	code, _, plain := postJSON(t, plainTS.URL+"/v1/compact", req)
	if code != http.StatusOK {
		t.Fatalf("plain server HTTP %d: %s", code, plain)
	}
	code, _, sharded := postJSON(t, coordTS.URL+"/v1/compact", req)
	if code != http.StatusOK {
		t.Fatalf("coordinator HTTP %d: %s", code, sharded)
	}
	if !bytes.Equal(plain, sharded) {
		t.Fatalf("response changed with all shards down\nplain:   %s\nsharded: %s", plain, sharded)
	}
}

// TestShardCacheKeyTopologyFree pins the cache-key audit: the shard
// topology is server deployment, so a sharded coordinator and an
// unsharded server must address identical requests by the same content
// ID (same cache line), and a repeat submit to the coordinator must hit
// its cache rather than re-mine.
func TestShardCacheKeyTopologyFree(t *testing.T) {
	_, plainTS := newTestServer(t, Config{MineWorkers: 1})
	_, coordTS, _ := newShardCluster(t, 2, Config{MineWorkers: 1})

	req := benchRequest(t, "crc")
	wantKey := req.Key()
	decodeID := func(body []byte) string {
		var resp CompactResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		return resp.ID
	}

	_, _, plain := postJSON(t, plainTS.URL+"/v1/compact", req)
	_, hdr, sharded := postJSON(t, coordTS.URL+"/v1/compact", req)
	if got := decodeID(plain); got != wantKey {
		t.Fatalf("unsharded content ID %s, want %s", got, wantKey)
	}
	if got := decodeID(sharded); got != wantKey {
		t.Fatalf("sharded content ID %s, want %s — topology leaked into Key()", got, wantKey)
	}
	if hdr.Get("X-Cache") != string(statusMiss) {
		t.Fatalf("first coordinator submit was %q, want miss", hdr.Get("X-Cache"))
	}
	_, hdr, again := postJSON(t, coordTS.URL+"/v1/compact", req)
	if hdr.Get("X-Cache") != string(statusHit) {
		t.Fatalf("repeat coordinator submit was %q, want hit", hdr.Get("X-Cache"))
	}
	if !bytes.Equal(sharded, again) {
		t.Fatal("cached coordinator response differs from the mined one")
	}
}

// shardTestWalkBody builds a minimal valid walk-open request: one
// two-node chain graph.
func shardTestWalkBody() []byte {
	g := &mining.Graph{ID: 1, Labels: []string{"a", "b"}, Edges: []mining.GEdge{{From: 0, To: 1, Label: "e"}}}
	g2 := &mining.Graph{ID: 2, Labels: []string{"a", "b"}, Edges: []mining.GEdge{{From: 0, To: 1, Label: "e"}}}
	return mining.EncodeShardWalk(
		mining.SpecConfig{MinSupport: 2, MaxNodes: 4},
		mining.EncodeGraphs([]*mining.Graph{g, g2}))
}

// TestShardWorkerEndpoints exercises the worker endpoint family
// directly: open, speculate, floor push (fresh and stale), close, and
// the error paths.
func TestShardWorkerEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	post := func(path, ctype string, body []byte) (int, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, ctype, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		_, _ = b.ReadFrom(resp.Body)
		return resp.StatusCode, b.Bytes()
	}

	// Corrupt open body → 400.
	if code, _ := post("/v1/shard/walk", "application/octet-stream", []byte("not a walk")); code != http.StatusBadRequest {
		t.Fatalf("corrupt walk open: HTTP %d, want 400", code)
	}
	// Unknown walk id → 404 on every per-walk route.
	if code, _ := post("/v1/shard/walk/w999999/seed/0", "", nil); code != http.StatusNotFound {
		t.Fatalf("unknown walk seed: HTTP %d, want 404", code)
	}
	if code, _ := post("/v1/shard/walk/w999999/floor", "application/json", []byte(`{"floor":1}`)); code != http.StatusNotFound {
		t.Fatalf("unknown walk floor: HTTP %d, want 404", code)
	}

	code, body := post("/v1/shard/walk", "application/octet-stream", shardTestWalkBody())
	if code != http.StatusOK {
		t.Fatalf("walk open: HTTP %d: %s", code, body)
	}
	var ack shardWalkBody
	if err := json.Unmarshal(body, &ack); err != nil || ack.ID == "" || ack.Seeds == 0 {
		t.Fatalf("walk open ack %s (err %v)", body, err)
	}

	if code, body = post("/v1/shard/walk/"+ack.ID+"/seed/0", "", nil); code != http.StatusOK || len(body) == 0 {
		t.Fatalf("seed 0: HTTP %d, %d bytes", code, len(body))
	}
	if code, _ = post("/v1/shard/walk/"+ack.ID+"/seed/999", "", nil); code != http.StatusBadRequest {
		t.Fatalf("out-of-range seed: HTTP %d, want 400", code)
	}

	var fl shardFloorBody
	code, body = post("/v1/shard/walk/"+ack.ID+"/floor", "application/json", []byte(`{"floor":7}`))
	if json.Unmarshal(body, &fl); code != http.StatusOK || !fl.Applied {
		t.Fatalf("fresh floor push: HTTP %d, %s", code, body)
	}
	fl = shardFloorBody{}
	code, body = post("/v1/shard/walk/"+ack.ID+"/floor", "application/json", []byte(`{"floor":3}`))
	if json.Unmarshal(body, &fl); code != http.StatusOK || fl.Applied {
		t.Fatalf("stale floor push applied: HTTP %d, %s", code, body)
	}

	reqDel, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/shard/walk/"+ack.ID, nil)
	resp, err := http.DefaultClient.Do(reqDel)
	if err != nil {
		t.Fatal(err)
	}
	var cl shardCloseBody
	if err := json.NewDecoder(resp.Body).Decode(&cl); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("walk close: HTTP %d (err %v)", resp.StatusCode, err)
	}
	resp.Body.Close()
	if cl.SpecVisits == 0 {
		t.Fatal("closed walk reported zero speculative visits")
	}
	resp, err = http.DefaultClient.Do(reqDel)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double close: HTTP %d, want 404", resp.StatusCode)
	}

	wm := metricsText(t, ts.URL)
	if n := metricValue(t, wm, "pad_shard_floor_stale_total"); n != 1 {
		t.Fatalf("pad_shard_floor_stale_total = %d, want 1", n)
	}
	if n := metricValue(t, wm, "pad_shard_spec_visits_total"); n != cl.SpecVisits {
		t.Fatalf("pad_shard_spec_visits_total = %d, want %d", n, cl.SpecVisits)
	}
}

// TestShardSessionEviction: opening past shardMaxSessions evicts the
// least-recently-used walk.
func TestShardSessionEviction(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	walk := shardTestWalkBody()
	ids := make([]string, 0, shardMaxSessions+1)
	for i := 0; i <= shardMaxSessions; i++ {
		resp, err := http.Post(ts.URL+"/v1/shard/walk", "application/octet-stream", bytes.NewReader(walk))
		if err != nil {
			t.Fatal(err)
		}
		var ack shardWalkBody
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ids = append(ids, ack.ID)
	}
	if n := svc.shardsSrv.stats.walksEvicted.Load(); n != 1 {
		t.Fatalf("%d evictions after exceeding the session bound, want 1", n)
	}
	resp, err := http.Post(ts.URL+"/v1/shard/walk/"+ids[0]+"/seed/0", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted walk still served a seed: HTTP %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/shard/walk/"+ids[len(ids)-1]+"/seed/0", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("newest walk did not survive eviction: HTTP %d", resp.StatusCode)
	}
}
