package service

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

func mkResult(s string) *result {
	return &result{body: []byte(s), report: s, miner: "edgar", saved: 1}
}

func fill(t *testing.T, c *resultCache, key, val string) {
	t.Helper()
	v, status, err := c.do(context.Background(), key, func() (*result, error) {
		return mkResult(val), nil
	})
	if err != nil || status != statusMiss || string(v.body) != val {
		t.Fatalf("fill %s: %v %v %s", key, err, status, v.body)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	fill(t, c, "a", "A")
	fill(t, c, "b", "B")
	if _, ok := c.get("a"); !ok { // refresh a: b is now the eviction victim
		t.Fatal("a missing")
	}
	fill(t, c, "c", "C")
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction despite being least recently used")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c missing")
	}
	cc := c.counters()
	if cc.Evictions != 1 || cc.Entries != 2 {
		t.Fatalf("evictions=%d entries=%d, want 1 and 2", cc.Evictions, cc.Entries)
	}
}

func TestCacheComputeErrorNotCached(t *testing.T) {
	c := newResultCache(2)
	boom := errors.New("boom")
	if _, _, err := c.do(context.Background(), "k", func() (*result, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := c.get("k"); ok {
		t.Fatal("failed computation was cached")
	}
	// A later attempt recomputes and succeeds.
	fill(t, c, "k", "V")
}

// TestCacheOwnerCancelWaiterAdopts: when the submission that owns an
// in-flight mine is cancelled, a waiter on the same key must not fail —
// it retries and becomes the new owner.
func TestCacheOwnerCancelWaiterAdopts(t *testing.T) {
	c := newResultCache(2)
	ownerCtx, cancelOwner := context.WithCancel(context.Background())
	ownerIn := make(chan struct{})
	ownerOut := make(chan error, 1)
	go func() {
		_, _, err := c.do(ownerCtx, "k", func() (*result, error) {
			close(ownerIn)
			<-ownerCtx.Done()
			return nil, ownerCtx.Err()
		})
		ownerOut <- err
	}()
	<-ownerIn

	waiterOut := make(chan *result, 1)
	go func() {
		v, _, err := c.do(context.Background(), "k", func() (*result, error) {
			return mkResult("adopted"), nil
		})
		if err != nil {
			t.Errorf("waiter failed: %v", err)
		}
		waiterOut <- v
	}()
	// Wait until the waiter has actually joined the flight before
	// killing the owner.
	deadline := time.Now().Add(30 * time.Second)
	for c.counters().Dedups == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	cancelOwner()

	if err := <-ownerOut; !errors.Is(err, context.Canceled) {
		t.Fatalf("owner err = %v", err)
	}
	select {
	case v := <-waiterOut:
		if !bytes.Equal(v.body, []byte("adopted")) {
			t.Fatalf("waiter got %q", v.body)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("waiter hung after owner cancellation")
	}
	if v, ok := c.get("k"); !ok || !bytes.Equal(v.body, []byte("adopted")) {
		t.Fatal("adopted result not cached")
	}
}

// TestCacheCancelledWaiter: a waiter whose own context dies stops
// waiting with that error while the owner finishes normally.
func TestCacheCancelledWaiter(t *testing.T) {
	c := newResultCache(2)
	release := make(chan struct{})
	ownerIn := make(chan struct{})
	go func() {
		_, _, _ = c.do(context.Background(), "k", func() (*result, error) {
			close(ownerIn)
			<-release
			return mkResult("V"), nil
		})
	}()
	<-ownerIn

	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterOut := make(chan error, 1)
	go func() {
		_, _, err := c.do(waiterCtx, "k", func() (*result, error) {
			t.Error("waiter must never compute")
			return nil, nil
		})
		waiterOut <- err
	}()
	deadline := time.Now().Add(30 * time.Second)
	for c.counters().Dedups == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	cancelWaiter()
	if err := <-waiterOut; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v", err)
	}
	close(release)
	// Owner's result still lands in the cache.
	deadline = time.Now().Add(30 * time.Second)
	for {
		if v, ok := c.get("k"); ok {
			if !bytes.Equal(v.body, []byte("V")) {
				t.Fatalf("cached %q", v.body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("owner result never cached")
		}
		time.Sleep(time.Millisecond)
	}
}
