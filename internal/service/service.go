// Package service is compaction-as-a-service: an HTTP daemon around the
// post-link-time optimizer. It accepts mini-C or assembly, compiles it,
// runs procedural abstraction with a per-request miner, and returns the
// optimized image plus the paper-style savings report as JSON.
//
// Three layers sit between the socket and the optimizer:
//
//   - a bounded job queue with per-job context cancellation and a fixed
//     worker count, so concurrent requests share the machine without
//     oversubscribing the mining pipeline (queue full = 429 Retry-After;
//     client disconnect = the mine is cancelled mid-lattice);
//   - a content-addressed LRU result cache keyed by SHA-256 of
//     (input bytes, compile options, optimize options), with singleflight
//     dedup so identical concurrent submissions mine exactly once — sound
//     because the optimizer is deterministic at any worker width, a
//     cached response is byte-identical to a fresh run;
//   - an observability surface: /healthz, /stats (queue depth, cache
//     ratios, per-miner latency histograms, total instructions saved),
//     structured request logging, and graceful shutdown that drains
//     in-flight jobs.
//
// Endpoints: POST /v1/compact (sync), POST /v1/jobs + GET /v1/jobs/{id}
// (async), POST /v1/batch + GET /v1/batch/{id} (corpus submission fanned
// out over the job queue), GET /v1/report/{id} (human-readable table, by
// job id or content address), GET /metrics (Prometheus text format).
// With Config.Dict set, every mining job warm-starts from and publishes
// to a persistent fragment dictionary (internal/dict), so a corpus of
// related programs mines faster with byte-identical results. cmd/pad is
// the daemon and client binary.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"graphpa/internal/dict"
	"graphpa/internal/par"
)

// Config tunes a Server. The zero value is a sensible daemon: job
// concurrency and per-job mining width derived from the core count so
// jobs × mine workers ≈ GOMAXPROCS, a 64-deep queue and a 128-entry
// cache.
type Config struct {
	// JobWorkers is the number of jobs mined concurrently (default:
	// half the cores, capped at 4, at least 1).
	JobWorkers int
	// MineWorkers is the pa.Options.Workers width each job mines with
	// (default: GOMAXPROCS / JobWorkers, at least 1). Results are
	// identical at any width; only latency changes.
	MineWorkers int
	// QueueDepth bounds accepted-but-unstarted jobs (default 64). A full
	// queue answers 429 with Retry-After.
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache
	// (default 128).
	CacheEntries int
	// Logger receives structured request and job logs (default:
	// discard).
	Logger *slog.Logger
	// Dict, when non-nil, is the persistent fragment dictionary every
	// mining job warm-starts from and publishes to (pa.Options.Warmstart).
	// The caller owns it: open it before New, close it after Shutdown.
	// Responses stay byte-identical with or without a dictionary — it
	// only changes how much lattice the miner walks.
	Dict *dict.Dict
	// Shards, when non-empty, makes this pad a shard COORDINATOR: every
	// mining job distributes its per-seed speculation across these worker
	// pad addresses ("host:port") and replays the streamed subtrees
	// locally. Like Workers and Dict, the shard topology is server
	// deployment, not request content — responses are byte-identical with
	// or without shards, so topology must never leak into request Key()
	// and all topologies share one cache line.
	Shards []string
	// ShardOf optionally names the coordinator this pad serves as a
	// shard worker for (`pad serve -shard-of`). Purely informational —
	// the `/v1/shard` endpoints are always registered — but it shows up
	// in logs so a fleet is legible.
	ShardOf string
}

func (c Config) jobWorkers() int {
	if c.JobWorkers > 0 {
		return c.JobWorkers
	}
	w := par.Workers(0) / 2
	if w < 1 {
		w = 1
	}
	if w > 4 {
		w = 4
	}
	return w
}

func (c Config) mineWorkers() int {
	if c.MineWorkers > 0 {
		return c.MineWorkers
	}
	w := par.Workers(0) / c.jobWorkers()
	if w < 1 {
		w = 1
	}
	return w
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 64
}

func (c Config) cacheEntries() int {
	if c.CacheEntries > 0 {
		return c.CacheEntries
	}
	return 128
}

// Server is the compaction service. Create with New, serve via Handler,
// stop with Shutdown.
type Server struct {
	cfg       Config
	log       *slog.Logger
	mux       *http.ServeMux
	queue     chan *job
	cache     *resultCache
	stats     *stats
	shardsSrv *shardStore // worker half: open walks served to a coordinator
	shardPool *ShardPool  // coordinator half: nil unless cfg.Shards is set

	mu         sync.Mutex
	jobs       map[string]*job
	jobOrder   []string
	nextJob    int
	batches    map[string]*batch
	batchOrder []string
	nextBatch  int
	closed     bool

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	// hookMineStart, when set (tests only), runs at the top of every
	// mining execution.
	hookMineStart func(key string)
}

// New builds a Server and starts its job workers.
func New(cfg Config) *Server {
	lg := cfg.Logger
	if lg == nil {
		lg = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		log:        lg,
		mux:        http.NewServeMux(),
		queue:      make(chan *job, cfg.queueDepth()),
		cache:      newResultCache(cfg.cacheEntries()),
		stats:      newStats(),
		shardsSrv:  newShardStore(),
		jobs:       map[string]*job{},
		batches:    map[string]*batch{},
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	if len(cfg.Shards) > 0 {
		s.shardPool = NewShardPool(cfg.Shards, lg)
		lg.Info("shard coordinator", "shards", cfg.Shards)
	}
	if cfg.ShardOf != "" {
		lg.Info("shard worker", "coordinator", cfg.ShardOf)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/compact", s.handleCompact)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("POST /v1/batch", s.handleSubmitBatch)
	s.mux.HandleFunc("GET /v1/batch/{id}", s.handleBatchStatus)
	s.mux.HandleFunc("GET /v1/report/{id}", s.handleReport)
	s.mux.HandleFunc("POST /v1/shard/walk", s.handleShardWalkOpen)
	s.mux.HandleFunc("POST /v1/shard/walk/{id}/seed/{n}", s.handleShardSeed)
	s.mux.HandleFunc("POST /v1/shard/walk/{id}/floor", s.handleShardFloor)
	s.mux.HandleFunc("DELETE /v1/shard/walk/{id}", s.handleShardClose)
	for i := 0; i < cfg.jobWorkers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// statusWriter captures the response code and size for request logging.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// Handler returns the service's HTTP handler with structured request
// logging wrapped around the routes.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.stats.request()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		s.mux.ServeHTTP(sw, r)
		s.log.Info("request",
			"method", r.Method, "path", r.URL.Path, "status", sw.code,
			"bytes", sw.bytes, "dur", time.Since(start), "remote", r.RemoteAddr)
	})
}

// Shutdown stops intake and drains: queued and running jobs finish
// first. If ctx expires before the drain completes, outstanding jobs are
// cancelled and Shutdown waits for the workers to observe it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	defer s.baseCancel()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) writeResult(w http.ResponseWriter, v *result, status cacheStatus) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", string(status))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(v.body)
}

// decodeRequest parses and statically validates a submission body.
func decodeRequest(r *http.Request) (*CompactRequest, error) {
	var req CompactRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, err
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.stats.snapshot()
	snap.Queue.Depth = len(s.queue)
	snap.Queue.Capacity = cap(s.queue)
	snap.Cache = s.cache.counters()
	if s.cfg.Dict != nil {
		ds := s.cfg.Dict.Stats()
		snap.Dict = &ds
	}
	snap.Jobs = map[string]int{JobQueued: 0, JobRunning: 0, JobDone: 0, JobFailed: 0}
	s.mu.Lock()
	for _, j := range s.jobs {
		st, _, _, _ := j.snapshot()
		snap.Jobs[st]++
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, snap)
}

// handleCompact is the synchronous endpoint: the response is the full
// compaction result. The request context is the job context, so a
// disconnecting client cancels its mine (unless others are waiting on
// the same key — then one of them adopts the work).
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	key := req.Key()
	if v, ok := s.cache.get(key); ok {
		s.writeResult(w, v, statusHit)
		return
	}
	j := s.newJob(req, key, r.Context())
	if err := s.enqueue(j); err != nil {
		j.finish(nil, statusMiss, err)
		if errors.Is(err, errQueueFull) {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorBody{err.Error()})
		} else {
			writeJSON(w, http.StatusServiceUnavailable, errorBody{err.Error()})
		}
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// Client gone: the worker observes the same context and cancels
		// the mine; nothing useful can be written.
		return
	}
	_, val, status, err := j.snapshot()
	switch {
	case err == nil:
		s.writeResult(w, val, status)
	case isRequestError(err):
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{"compaction cancelled"})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{err.Error()})
	}
}

func isRequestError(err error) bool {
	var re *requestError
	return errors.As(err, &re)
}

// jobStatusBody is the GET /v1/jobs/{id} response (and, minus Result,
// the POST /v1/jobs acknowledgement).
type jobStatusBody struct {
	ID        string          `json:"id"`
	State     string          `json:"state"`
	ContentID string          `json:"content_id"`
	Cache     string          `json:"cache,omitempty"`
	Error     string          `json:"error,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
}

// handleSubmitJob is the asynchronous endpoint: it acknowledges with a
// job id to poll. Async jobs run under the server's context — only
// shutdown cancels them.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	key := req.Key()
	j := s.newJob(req, key, s.baseCtx)
	if v, ok := s.cache.get(key); ok {
		j.finish(v, statusHit, nil)
	} else if err := s.enqueue(j); err != nil {
		j.finish(nil, statusMiss, err)
		if errors.Is(err, errQueueFull) {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorBody{err.Error()})
		} else {
			writeJSON(w, http.StatusServiceUnavailable, errorBody{err.Error()})
		}
		return
	}
	state, _, _, _ := j.snapshot()
	writeJSON(w, http.StatusAccepted, jobStatusBody{ID: j.id, State: state, ContentID: key})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{"unknown job id"})
		return
	}
	state, val, status, err := j.snapshot()
	body := jobStatusBody{ID: j.id, State: state, ContentID: j.key}
	if err != nil {
		body.Error = err.Error()
	}
	if state == JobDone && val != nil {
		body.Cache = string(status)
		body.Result = json.RawMessage(val.body)
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReport serves the human-readable savings table for a finished
// job id or a content address (the "id" field of any response).
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var v *result
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j != nil {
		if st, val, _, _ := j.snapshot(); st == JobDone {
			v = val
		}
	}
	if v == nil {
		v = s.cache.peek(id)
	}
	if v == nil {
		writeJSON(w, http.StatusNotFound, errorBody{"no report for this id"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, v.report)
}
