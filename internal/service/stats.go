package service

import (
	"sync"
	"time"

	"graphpa/internal/dict"
)

// latencyBuckets are the upper bounds of the per-miner mining-latency
// histogram; a final unbounded bucket catches the rest.
var latencyBuckets = []time.Duration{
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// bucketLabels mirror latencyBuckets in the /stats JSON.
var bucketLabels = []string{"le_1ms", "le_10ms", "le_100ms", "le_1s", "le_10s", "inf"}

// minerStats aggregates per-miner accounting: how many jobs actually
// mined, total instructions saved, and the mining-latency histogram.
type minerStats struct {
	Jobs    int64            `json:"jobs"`
	Saved   int64            `json:"instructions_saved"`
	Latency map[string]int64 `json:"latency"`

	hist   [6]int64 // len(latencyBuckets)+1, one per bucketLabels entry
	durSum time.Duration
}

// stats is the service-wide accounting behind /stats and /metrics.
type stats struct {
	mu        sync.Mutex
	mined     int64
	cancelled int64
	failed    int64
	saved     int64
	dictHits  int64
	requests  int64
	miners    map[string]*minerStats
}

func newStats() *stats {
	return &stats{miners: map[string]*minerStats{}}
}

func (s *stats) request() {
	s.mu.Lock()
	s.requests++
	s.mu.Unlock()
}

// observeMine records one completed mining execution (cache hits and
// dedup waiters do not mine and are not observed here).
func (s *stats) observeMine(miner string, saved, dictHits int, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mined++
	s.saved += int64(saved)
	s.dictHits += int64(dictHits)
	ms := s.miners[miner]
	if ms == nil {
		ms = &minerStats{}
		s.miners[miner] = ms
	}
	ms.Jobs++
	ms.Saved += int64(saved)
	ms.durSum += d
	b := len(latencyBuckets)
	for i, ub := range latencyBuckets {
		if d <= ub {
			b = i
			break
		}
	}
	ms.hist[b]++
}

func (s *stats) observeCancel() {
	s.mu.Lock()
	s.cancelled++
	s.mu.Unlock()
}

func (s *stats) observeFail() {
	s.mu.Lock()
	s.failed++
	s.mu.Unlock()
}

// statsSnapshot is the /stats response body.
type statsSnapshot struct {
	Queue struct {
		Depth    int `json:"depth"`
		Capacity int `json:"capacity"`
	} `json:"queue"`
	Jobs   map[string]int         `json:"jobs"`
	Cache  cacheCounters          `json:"cache"`
	Miners map[string]*minerStats `json:"miners"`
	Dict   *dict.Stats            `json:"dict,omitempty"`
	Totals struct {
		Requests          int64 `json:"requests"`
		Mined             int64 `json:"mined"`
		Cancelled         int64 `json:"cancelled"`
		Failed            int64 `json:"failed"`
		InstructionsSaved int64 `json:"instructions_saved"`
		DictHits          int64 `json:"dict_hits"`
	} `json:"totals"`
}

func (s *stats) snapshot() statsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	var snap statsSnapshot
	snap.Miners = map[string]*minerStats{}
	for name, ms := range s.miners {
		out := &minerStats{Jobs: ms.Jobs, Saved: ms.Saved, Latency: map[string]int64{},
			hist: ms.hist, durSum: ms.durSum}
		for i, lbl := range bucketLabels {
			out.Latency[lbl] = ms.hist[i]
		}
		snap.Miners[name] = out
	}
	snap.Totals.Requests = s.requests
	snap.Totals.Mined = s.mined
	snap.Totals.Cancelled = s.cancelled
	snap.Totals.Failed = s.failed
	snap.Totals.InstructionsSaved = s.saved
	snap.Totals.DictHits = s.dictHits
	return snap
}
