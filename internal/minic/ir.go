package minic

import (
	"fmt"
	"strings"
)

// Val is a virtual register; NoVal means unused.
type Val int32

// NoVal marks an absent operand.
const NoVal Val = -1

// IROp classifies IR instructions.
type IROp uint8

// IR operations. The IR is a linear list with label pseudo-instructions;
// all control flow is explicit branches. Division, modulo and
// variable-amount shifts are lowered to runtime calls by the generator,
// mirroring a softfloat-style ARM ABI.
const (
	IRConst  IROp = iota // Dst = Imm
	IRMov                // Dst = A
	IRBin                // Dst = A <bin> (B | Imm)
	IRNeg                // Dst = -A
	IRNot                // Dst = ^A
	IRCmp                // Dst = (A <cond> (B|Imm)) ? 1 : 0
	IRLoad               // Dst = *(int*)(A + Imm)
	IRLoadB              // Dst = *(char*)(A + Imm)
	IRStore              // *(int*)(A + Imm) = B
	IRStoreB             // *(char*)(A + Imm) = B
	IRAddrG              // Dst = &Sym
	IRAddrL              // Dst = &local[LocalIdx]
	IRCall               // Dst = Sym(Args...); Dst may be NoVal
	IRRet                // return A (A may be NoVal)
	IRBr                 // goto Label
	IRBrCond             // if (A <cond> (B|Imm)) goto Label
	IRLabel              // Label:
)

// BinKind is an ALU operation.
type BinKind uint8

// ALU operations (div/mod/variable shifts become calls).
const (
	BAdd BinKind = iota
	BSub
	BRsb // reverse subtract, for pointer-difference scaling
	BMul
	BAnd
	BOr
	BXor
	BShl // by constant
	BShr // arithmetic, by constant
	BLsr // logical, by constant (strength-reduced __lshr)
)

var binNames = [...]string{"add", "sub", "rsb", "mul", "and", "or", "xor", "shl", "shr", "lsr"}

func (b BinKind) String() string { return binNames[b] }

// CondKind is a comparison (signed; addresses stay below 2^31 in our
// address space, so signed compares are safe for pointers too).
type CondKind uint8

// Comparisons.
const (
	CEq CondKind = iota
	CNe
	CLt
	CLe
	CGt
	CGe
)

var condNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge"}

func (c CondKind) String() string { return condNames[c] }

// Negate returns the inverse comparison.
func (c CondKind) Negate() CondKind {
	switch c {
	case CEq:
		return CNe
	case CNe:
		return CEq
	case CLt:
		return CGe
	case CLe:
		return CGt
	case CGt:
		return CLe
	case CGe:
		return CLt
	}
	return c
}

// IRIns is one IR instruction.
type IRIns struct {
	Op       IROp
	Bin      BinKind
	Cond     CondKind
	Dst      Val
	A, B     Val
	Imm      int32
	HasImm   bool
	Sym      string
	Label    string
	Args     []Val
	LocalIdx int
}

// IRLocal is a stack-allocated local (array or address-taken scalar).
type IRLocal struct {
	Name string
	Size int32
}

// IRFunc is a lowered function.
type IRFunc struct {
	Name    string
	NParams int
	NVals   int // virtual register count; params are v0..NParams-1
	Locals  []IRLocal
	Ins     []IRIns
	IsVoid  bool
}

// String renders the function for debugging and golden tests.
func (f *IRFunc) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s (params=%d vals=%d)\n", f.Name, f.NParams, f.NVals)
	for _, l := range f.Locals {
		fmt.Fprintf(&b, "  local %s[%d]\n", l.Name, l.Size)
	}
	for _, in := range f.Ins {
		b.WriteString("  " + in.String() + "\n")
	}
	return b.String()
}

func (in *IRIns) String() string {
	op2 := func() string {
		if in.HasImm {
			return fmt.Sprintf("#%d", in.Imm)
		}
		return fmt.Sprintf("v%d", in.B)
	}
	switch in.Op {
	case IRConst:
		return fmt.Sprintf("v%d = %d", in.Dst, in.Imm)
	case IRMov:
		return fmt.Sprintf("v%d = v%d", in.Dst, in.A)
	case IRBin:
		return fmt.Sprintf("v%d = v%d %s %s", in.Dst, in.A, in.Bin, op2())
	case IRNeg:
		return fmt.Sprintf("v%d = -v%d", in.Dst, in.A)
	case IRNot:
		return fmt.Sprintf("v%d = ~v%d", in.Dst, in.A)
	case IRCmp:
		return fmt.Sprintf("v%d = v%d %s %s", in.Dst, in.A, in.Cond, op2())
	case IRLoad:
		return fmt.Sprintf("v%d = load [v%d+%d]", in.Dst, in.A, in.Imm)
	case IRLoadB:
		return fmt.Sprintf("v%d = loadb [v%d+%d]", in.Dst, in.A, in.Imm)
	case IRStore:
		return fmt.Sprintf("store [v%d+%d] = v%d", in.A, in.Imm, in.B)
	case IRStoreB:
		return fmt.Sprintf("storeb [v%d+%d] = v%d", in.A, in.Imm, in.B)
	case IRAddrG:
		return fmt.Sprintf("v%d = &%s", in.Dst, in.Sym)
	case IRAddrL:
		return fmt.Sprintf("v%d = &local%d", in.Dst, in.LocalIdx)
	case IRCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = fmt.Sprintf("v%d", a)
		}
		if in.Dst == NoVal {
			return fmt.Sprintf("call %s(%s)", in.Sym, strings.Join(args, ","))
		}
		return fmt.Sprintf("v%d = call %s(%s)", in.Dst, in.Sym, strings.Join(args, ","))
	case IRRet:
		if in.A == NoVal {
			return "ret"
		}
		return fmt.Sprintf("ret v%d", in.A)
	case IRBr:
		return "br " + in.Label
	case IRBrCond:
		return fmt.Sprintf("br(v%d %s %s) %s", in.A, in.Cond, op2(), in.Label)
	case IRLabel:
		return in.Label + ":"
	}
	return "?"
}

// UseDef returns the vregs read and written by the instruction.
func (in *IRIns) UseDef() (uses []Val, def Val) {
	def = NoVal
	add := func(v Val) {
		if v != NoVal {
			uses = append(uses, v)
		}
	}
	switch in.Op {
	case IRConst, IRAddrG, IRAddrL:
		def = in.Dst
	case IRMov, IRNeg, IRNot:
		add(in.A)
		def = in.Dst
	case IRBin, IRCmp:
		add(in.A)
		if !in.HasImm {
			add(in.B)
		}
		def = in.Dst
	case IRLoad, IRLoadB:
		add(in.A)
		def = in.Dst
	case IRStore, IRStoreB:
		add(in.A)
		add(in.B)
	case IRCall:
		for _, a := range in.Args {
			add(a)
		}
		def = in.Dst
	case IRRet:
		add(in.A)
	case IRBrCond:
		add(in.A)
		if !in.HasImm {
			add(in.B)
		}
	}
	return uses, def
}
