package minic

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`int x = 0x1F; // comment
char c = 'a'; /* block
comment */ "str\n"`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	if toks[0].Kind != TokKeyword || toks[0].Text != "int" {
		t.Errorf("tok0 = %v %q", kinds[0], texts[0])
	}
	if toks[3].Kind != TokNum || toks[3].Num != 31 {
		t.Errorf("hex literal = %d", toks[3].Num)
	}
	found := false
	for _, tok := range toks {
		if tok.Kind == TokChar && tok.Num == 'a' {
			found = true
		}
	}
	if !found {
		t.Error("char literal missing")
	}
	last := toks[len(toks)-2]
	if last.Kind != TokStr || last.Text != "str\n" {
		t.Errorf("string literal = %q", last.Text)
	}
}

func TestLexMaximalMunch(t *testing.T) {
	toks, err := Lex("a <<= b << c <= d < e")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tok := range toks {
		if tok.Kind == TokPunct {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"<<=", "<<", "<=", "<"}
	if strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Errorf("ops = %v, want %v", ops, want)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `'a`, "int @ x;", "/* open"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func checked(t *testing.T, src string) *Program {
	t.Helper()
	p := mustParse(t, src)
	if err := Check(p); err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

func TestParseFunctionAndGlobals(t *testing.T) {
	p := mustParse(t, `
int table[4] = {1, 2, 3, 4};
char msg[] = "hi";
int counter = 7;
int add(int a, int b) { return a + b; }
void nothing(void) { }
`)
	if len(p.Globals) != 3 || len(p.Funcs) != 2 {
		t.Fatalf("globals=%d funcs=%d", len(p.Globals), len(p.Funcs))
	}
	if p.Globals[0].Type.Kind != TArray || p.Globals[0].Type.Len != 4 {
		t.Errorf("table type = %s", p.Globals[0].Type)
	}
	if p.Globals[1].Type.Len != 3 { // "hi" + NUL
		t.Errorf("msg len = %d", p.Globals[1].Type.Len)
	}
	if p.Funcs[0].Name != "add" || len(p.Funcs[0].Params) != 2 {
		t.Error("add signature wrong")
	}
	if len(p.Funcs[1].Params) != 0 {
		t.Error("void param list should be empty")
	}
}

func TestParsePrecedence(t *testing.T) {
	p := mustParse(t, "int f(int a, int b) { return a + b * 2 == a << 1; }")
	e := p.Funcs[0].Body.Body[0].Expr
	if e.Op != "==" {
		t.Fatalf("top op = %q", e.Op)
	}
	if e.L.Op != "+" || e.L.R.Op != "*" || e.R.Op != "<<" {
		t.Errorf("precedence tree wrong: %q %q %q", e.L.Op, e.L.R.Op, e.R.Op)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
int f(int n) {
	int s = 0;
	for (int i = 0; i < n; i += 1) {
		if (i % 2 == 0) s += i; else s -= 1;
	}
	while (s > 100) { s /= 2; }
	do { s += 1; } while (s < 0);
	return s;
}
`
	checked(t, src)
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"int f( { }",
		"int f() { return 1 }",
		"int f() { if x { } }",
		"int f(int a, int b, int c, int d, int e) { return 0; }",
		"int x[3] = {1,2,3,4};",
		"foo f() {}",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	bad := []string{
		"int f() { return y; }",
		"int f() { g(); return 0; }",
		"int f(int a) { return f(a, a); }",
		"void f() { return 1; }",
		"int f() { return; }",
		"int f() { break; return 0; }",
		"int f(int* p, int* q) { return p * q; }",
		"int f(int a) { a() ; return 0; }",
		"int f() { 1 = 2; return 0; }",
		"int f(int a) { int a; return a; }",
		"int g() { return 0; } int g() { return 1; }",
		"int putc(int c) { return c; }",
		"int f(int* p) { int x; x = p; return x; }",
	}
	for _, src := range bad {
		p, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q) failed early: %v", src, err)
			continue
		}
		if err := Check(p); err == nil {
			t.Errorf("Check(%q) should fail", src)
		}
	}
}

func TestCheckTypes(t *testing.T) {
	p := checked(t, `
int arr[10];
int f(int* p, int n) {
	char buf[8];
	p[1] = n;
	buf[0] = 'x';
	*p = p[2] + arr[n];
	return &arr[3] - &arr[0];
}
`)
	_ = p
}

func TestLowerBasics(t *testing.T) {
	p := checked(t, `
int f(int a, int b) {
	int c = a + b;
	return c * 2;
}
`)
	irs, err := Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(irs) != 1 {
		t.Fatalf("funcs = %d", len(irs))
	}
	f := irs[0]
	if f.NParams != 2 {
		t.Errorf("NParams = %d", f.NParams)
	}
	text := f.String()
	for _, want := range []string{"add", "mul", "ret"} {
		if !strings.Contains(text, want) {
			t.Errorf("IR missing %q:\n%s", want, text)
		}
	}
}

func TestLowerDivBecomesCall(t *testing.T) {
	p := checked(t, "int f(int a, int b) { return a / b + a % b + (a >> b); }")
	irs, err := Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	text := irs[0].String()
	for _, want := range []string{"__divsi3", "__modsi3", "__ashr"} {
		if !strings.Contains(text, want) {
			t.Errorf("IR missing %q:\n%s", want, text)
		}
	}
}

func TestLowerShortCircuit(t *testing.T) {
	p := checked(t, "int f(int a, int b) { if (a && b) return 1; return a || b; }")
	irs, err := Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	text := irs[0].String()
	if !strings.Contains(text, "br(") {
		t.Errorf("short-circuit IR missing branches:\n%s", text)
	}
}

func TestLowerAddressedLocal(t *testing.T) {
	p := checked(t, `
void g(int* p) { *p = 5; }
int f() {
	int x = 1;
	g(&x);
	return x;
}
`)
	irs, err := Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	var f *IRFunc
	for _, ir := range irs {
		if ir.Name == "f" {
			f = ir
		}
	}
	if len(f.Locals) != 1 {
		t.Fatalf("addressed local not in frame: %s", f.String())
	}
	if !strings.Contains(f.String(), "&local0") {
		t.Errorf("missing frame address:\n%s", f.String())
	}
}

func TestLowerPointerScaling(t *testing.T) {
	p := checked(t, `
int f(int* p, int i) { return *(p + i); }
int g(char* p, int i) { return *(p + i); }
`)
	irs, err := Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(irs[0].String(), "shl #2") {
		t.Errorf("int* arithmetic must scale by 4:\n%s", irs[0].String())
	}
	if strings.Contains(irs[1].String(), "shl") {
		t.Errorf("char* arithmetic must not scale:\n%s", irs[1].String())
	}
}

func TestLowerStringLiteral(t *testing.T) {
	p := checked(t, `void f() { puts("hello"); }`)
	if len(p.Globals) != 1 || p.Globals[0].Str != "hello" {
		t.Fatal("string literal not hoisted to a global")
	}
	irs, err := Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(irs[0].String(), "&__str0") {
		t.Errorf("IR missing string address:\n%s", irs[0].String())
	}
}
