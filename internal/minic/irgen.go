package minic

import "fmt"

// Lower translates a checked program to IR.
func Lower(prog *Program) ([]*IRFunc, error) {
	var out []*IRFunc
	for _, fd := range prog.Funcs {
		g := &irgen{decl: fd, fn: &IRFunc{
			Name:    fd.Name,
			NParams: len(fd.Params),
			IsVoid:  fd.Ret.Kind == TVoid,
		}}
		g.vregOf = map[*LocalVar]Val{}
		g.slotOf = map[*LocalVar]int{}
		g.addressed = map[*LocalVar]bool{}
		markAddressed(fd.Body, g.addressed)
		if err := g.run(); err != nil {
			return nil, err
		}
		out = append(out, g.fn)
	}
	return out, nil
}

// markAddressed records locals whose address is taken; they must live in
// the frame rather than a register.
func markAddressed(s *Stmt, m map[*LocalVar]bool) {
	var walkE func(e *Expr)
	walkE = func(e *Expr) {
		if e == nil {
			return
		}
		if e.Kind == EUnop && e.Op == "&" && e.L.Kind == EVar && e.L.Local != nil {
			m[e.L.Local] = true
		}
		walkE(e.L)
		walkE(e.R)
		for _, a := range e.Args {
			walkE(a)
		}
	}
	var walkS func(s *Stmt)
	walkS = func(s *Stmt) {
		if s == nil {
			return
		}
		walkE(s.Expr)
		walkE(s.Cond)
		walkE(s.Post)
		if s.Decl != nil {
			walkE(s.Decl.Init)
		}
		walkS(s.Init)
		walkS(s.Then)
		walkS(s.Else)
		for _, b := range s.Body {
			walkS(b)
		}
	}
	walkS(s)
}

type irgen struct {
	decl      *FuncDecl
	fn        *IRFunc
	vregOf    map[*LocalVar]Val
	slotOf    map[*LocalVar]int
	addressed map[*LocalVar]bool
	labelN    int
	breaks    []string
	conts     []string
}

// GenError reports an IR lowering failure.
type GenError struct {
	Line int
	Msg  string
}

func (e *GenError) Error() string { return fmt.Sprintf("minic: line %d: %s", e.Line, e.Msg) }

func (g *irgen) errf(line int, format string, args ...any) error {
	return &GenError{line, fmt.Sprintf(format, args...)}
}

func (g *irgen) newVal() Val {
	v := Val(g.fn.NVals)
	g.fn.NVals++
	return v
}

func (g *irgen) newLabel() string {
	g.labelN++
	return fmt.Sprintf(".L%s_%d", g.fn.Name, g.labelN)
}

func (g *irgen) emit(in IRIns) { g.fn.Ins = append(g.fn.Ins, in) }

func (g *irgen) run() error {
	// Parameters arrive in v0..n-1.
	for i, pm := range g.decl.Params {
		v := g.newVal()
		if g.addressed[pm] {
			slot := g.addSlot(pm.Name, 4)
			g.slotOf[pm] = slot
			addr := g.newVal()
			g.emit(IRIns{Op: IRAddrL, Dst: addr, LocalIdx: slot})
			g.emit(IRIns{Op: IRStore, A: addr, B: v})
		} else {
			g.vregOf[pm] = v
		}
		_ = i
	}
	if err := g.stmt(g.decl.Body); err != nil {
		return err
	}
	// Guarantee termination.
	if g.fn.IsVoid {
		g.emit(IRIns{Op: IRRet, A: NoVal, B: NoVal, Dst: NoVal})
	} else {
		z := g.newVal()
		g.emit(IRIns{Op: IRConst, Dst: z, Imm: 0, A: NoVal, B: NoVal})
		g.emit(IRIns{Op: IRRet, A: z, B: NoVal, Dst: NoVal})
	}
	return nil
}

func (g *irgen) addSlot(name string, size int32) int {
	g.fn.Locals = append(g.fn.Locals, IRLocal{Name: name, Size: size})
	return len(g.fn.Locals) - 1
}

func (g *irgen) stmt(s *Stmt) error {
	switch s.Kind {
	case SBlock:
		for _, b := range s.Body {
			if err := g.stmt(b); err != nil {
				return err
			}
		}
	case SEmpty:
	case SDecl:
		lv := s.Decl
		switch {
		case lv.Type.Kind == TArray:
			g.slotOf[lv] = g.addSlot(lv.Name, (lv.Type.Size()+3)&^3)
		case g.addressed[lv]:
			slot := g.addSlot(lv.Name, 4)
			g.slotOf[lv] = slot
			if lv.Init != nil {
				v, err := g.expr(lv.Init)
				if err != nil {
					return err
				}
				addr := g.newVal()
				g.emit(IRIns{Op: IRAddrL, Dst: addr, LocalIdx: slot})
				g.emit(IRIns{Op: IRStore, A: addr, B: v})
			}
		default:
			v := g.newVal()
			g.vregOf[lv] = v
			if lv.Init != nil {
				iv, err := g.expr(lv.Init)
				if err != nil {
					return err
				}
				g.emit(IRIns{Op: IRMov, Dst: v, A: iv})
			}
		}
	case SExpr:
		_, err := g.expr(s.Expr)
		return err
	case SReturn:
		if s.Expr == nil {
			g.emit(IRIns{Op: IRRet, A: NoVal})
			return nil
		}
		v, err := g.expr(s.Expr)
		if err != nil {
			return err
		}
		g.emit(IRIns{Op: IRRet, A: v})
	case SIf:
		elseL := g.newLabel()
		endL := elseL
		if s.Else != nil {
			endL = g.newLabel()
		}
		if err := g.condFalse(s.Cond, elseL); err != nil {
			return err
		}
		if err := g.stmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			g.emit(IRIns{Op: IRBr, Label: endL})
			g.emit(IRIns{Op: IRLabel, Label: elseL})
			if err := g.stmt(s.Else); err != nil {
				return err
			}
		}
		g.emit(IRIns{Op: IRLabel, Label: endL})
	case SWhile:
		top := g.newLabel()
		end := g.newLabel()
		g.emit(IRIns{Op: IRLabel, Label: top})
		if err := g.condFalse(s.Cond, end); err != nil {
			return err
		}
		g.breaks = append(g.breaks, end)
		g.conts = append(g.conts, top)
		if err := g.stmt(s.Then); err != nil {
			return err
		}
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.conts = g.conts[:len(g.conts)-1]
		g.emit(IRIns{Op: IRBr, Label: top})
		g.emit(IRIns{Op: IRLabel, Label: end})
	case SDoWhile:
		top := g.newLabel()
		end := g.newLabel()
		cont := g.newLabel()
		g.emit(IRIns{Op: IRLabel, Label: top})
		g.breaks = append(g.breaks, end)
		g.conts = append(g.conts, cont)
		if err := g.stmt(s.Then); err != nil {
			return err
		}
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.conts = g.conts[:len(g.conts)-1]
		g.emit(IRIns{Op: IRLabel, Label: cont})
		if err := g.condTrue(s.Cond, top); err != nil {
			return err
		}
		g.emit(IRIns{Op: IRLabel, Label: end})
	case SFor:
		if s.Init != nil {
			if err := g.stmt(s.Init); err != nil {
				return err
			}
		}
		top := g.newLabel()
		end := g.newLabel()
		cont := g.newLabel()
		g.emit(IRIns{Op: IRLabel, Label: top})
		if s.Cond != nil {
			if err := g.condFalse(s.Cond, end); err != nil {
				return err
			}
		}
		g.breaks = append(g.breaks, end)
		g.conts = append(g.conts, cont)
		if err := g.stmt(s.Then); err != nil {
			return err
		}
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.conts = g.conts[:len(g.conts)-1]
		g.emit(IRIns{Op: IRLabel, Label: cont})
		if s.Post != nil {
			if _, err := g.expr(s.Post); err != nil {
				return err
			}
		}
		g.emit(IRIns{Op: IRBr, Label: top})
		g.emit(IRIns{Op: IRLabel, Label: end})
	case SBreak:
		g.emit(IRIns{Op: IRBr, Label: g.breaks[len(g.breaks)-1]})
	case SContinue:
		g.emit(IRIns{Op: IRBr, Label: g.conts[len(g.conts)-1]})
	}
	return nil
}

// cmpOf maps a comparison operator to its CondKind.
var cmpOf = map[string]CondKind{
	"==": CEq, "!=": CNe, "<": CLt, "<=": CLe, ">": CGt, ">=": CGe,
}

// condFalse branches to label when e is false.
func (g *irgen) condFalse(e *Expr, label string) error {
	switch {
	case e.Kind == EBinop && e.Op == "&&":
		if err := g.condFalse(e.L, label); err != nil {
			return err
		}
		return g.condFalse(e.R, label)
	case e.Kind == EBinop && e.Op == "||":
		mid := g.newLabel()
		if err := g.condTrue(e.L, mid); err != nil {
			return err
		}
		if err := g.condFalse(e.R, label); err != nil {
			return err
		}
		g.emit(IRIns{Op: IRLabel, Label: mid})
		return nil
	case e.Kind == EUnop && e.Op == "!":
		return g.condTrue(e.L, label)
	case e.Kind == EBinop && cmpOf[e.Op] != 0 || e.Kind == EBinop && e.Op == "==":
		return g.cmpBranch(e, cmpOf[e.Op].Negate(), label)
	default:
		v, err := g.expr(e)
		if err != nil {
			return err
		}
		g.emit(IRIns{Op: IRBrCond, A: v, Cond: CEq, HasImm: true, Imm: 0, Label: label})
		return nil
	}
}

// condTrue branches to label when e is true.
func (g *irgen) condTrue(e *Expr, label string) error {
	switch {
	case e.Kind == EBinop && e.Op == "&&":
		skip := g.newLabel()
		if err := g.condFalse(e.L, skip); err != nil {
			return err
		}
		if err := g.condTrue(e.R, label); err != nil {
			return err
		}
		g.emit(IRIns{Op: IRLabel, Label: skip})
		return nil
	case e.Kind == EBinop && e.Op == "||":
		if err := g.condTrue(e.L, label); err != nil {
			return err
		}
		return g.condTrue(e.R, label)
	case e.Kind == EUnop && e.Op == "!":
		return g.condFalse(e.L, label)
	case e.Kind == EBinop && cmpOf[e.Op] != 0 || e.Kind == EBinop && e.Op == "==":
		return g.cmpBranch(e, cmpOf[e.Op], label)
	default:
		v, err := g.expr(e)
		if err != nil {
			return err
		}
		g.emit(IRIns{Op: IRBrCond, A: v, Cond: CNe, HasImm: true, Imm: 0, Label: label})
		return nil
	}
}

func (g *irgen) cmpBranch(e *Expr, cond CondKind, label string) error {
	a, err := g.expr(e.L)
	if err != nil {
		return err
	}
	if e.R.Kind == ENum && fitsImm(e.R.Num) {
		g.emit(IRIns{Op: IRBrCond, A: a, Cond: cond, HasImm: true, Imm: e.R.Num, Label: label})
		return nil
	}
	b, err := g.expr(e.R)
	if err != nil {
		return err
	}
	g.emit(IRIns{Op: IRBrCond, A: a, B: b, Cond: cond, Label: label})
	return nil
}

func fitsImm(v int32) bool { return v >= -2048 && v <= 2047 }

// scaleOf returns the pointer-arithmetic scale (log2) for elem size, and
// whether scaling is needed.
func scaleOf(t *Type) (int32, bool) {
	if t.Kind != TPtr && t.Kind != TArray {
		return 0, false
	}
	if t.Elem.Size() == 4 {
		return 2, true
	}
	return 0, false
}

func (g *irgen) expr(e *Expr) (Val, error) {
	switch e.Kind {
	case ENum:
		v := g.newVal()
		g.emit(IRIns{Op: IRConst, Dst: v, Imm: e.Num})
		return v, nil
	case EStr:
		v := g.newVal()
		g.emit(IRIns{Op: IRAddrG, Dst: v, Sym: e.Global.Name})
		return v, nil
	case EVar:
		return g.loadVar(e)
	case EUnop:
		return g.unop(e)
	case EBinop:
		return g.binop(e)
	case EAssign:
		return g.assign(e)
	case ECall:
		return g.call(e)
	case EIndex:
		addr, off, byteSized, err := g.addrOf(e)
		if err != nil {
			return NoVal, err
		}
		v := g.newVal()
		op := IRLoad
		if byteSized {
			op = IRLoadB
		}
		g.emit(IRIns{Op: op, Dst: v, A: addr, Imm: off})
		return v, nil
	}
	return NoVal, g.errf(e.Line, "cannot lower expression")
}

func (g *irgen) loadVar(e *Expr) (Val, error) {
	if lv := e.Local; lv != nil {
		if v, ok := g.vregOf[lv]; ok {
			return v, nil
		}
		slot := g.slotOf[lv]
		addr := g.newVal()
		g.emit(IRIns{Op: IRAddrL, Dst: addr, LocalIdx: slot})
		if lv.Type.Kind == TArray {
			return addr, nil // decay
		}
		v := g.newVal()
		op := IRLoad
		if lv.Type.Kind == TChar {
			op = IRLoadB
		}
		g.emit(IRIns{Op: op, Dst: v, A: addr})
		return v, nil
	}
	gv := e.Global
	addr := g.newVal()
	g.emit(IRIns{Op: IRAddrG, Dst: addr, Sym: gv.Name})
	if gv.Type.Kind == TArray {
		return addr, nil // decay
	}
	v := g.newVal()
	op := IRLoad
	if gv.Type.Kind == TChar {
		op = IRLoadB
	}
	g.emit(IRIns{Op: op, Dst: v, A: addr})
	return v, nil
}

// addrOf computes the address of an lvalue, returning (base, constant
// offset, isByteSized).
func (g *irgen) addrOf(e *Expr) (Val, int32, bool, error) {
	switch e.Kind {
	case EVar:
		byteSized := e.Type.Kind == TChar
		if lv := e.Local; lv != nil {
			slot, ok := g.slotOf[lv]
			if !ok {
				return NoVal, 0, false, g.errf(e.Line, "internal: register local has no address")
			}
			addr := g.newVal()
			g.emit(IRIns{Op: IRAddrL, Dst: addr, LocalIdx: slot})
			return addr, 0, byteSized, nil
		}
		addr := g.newVal()
		g.emit(IRIns{Op: IRAddrG, Dst: addr, Sym: e.Global.Name})
		return addr, 0, byteSized, nil
	case EIndex:
		base, err := g.expr(e.L)
		if err != nil {
			return NoVal, 0, false, err
		}
		elem := decay(e.L.Type).Elem
		byteSized := elem.Kind == TChar
		size := elem.Size()
		if e.R.Kind == ENum {
			off := e.R.Num * size
			if fitsImm(off) {
				return base, off, byteSized, nil
			}
		}
		idx, err := g.expr(e.R)
		if err != nil {
			return NoVal, 0, false, err
		}
		addr := g.newVal()
		if size == 4 {
			scaled := g.newVal()
			g.emit(IRIns{Op: IRBin, Bin: BShl, Dst: scaled, A: idx, HasImm: true, Imm: 2})
			g.emit(IRIns{Op: IRBin, Bin: BAdd, Dst: addr, A: base, B: scaled})
		} else {
			g.emit(IRIns{Op: IRBin, Bin: BAdd, Dst: addr, A: base, B: idx})
		}
		return addr, 0, byteSized, nil
	case EUnop:
		if e.Op == "*" {
			base, err := g.expr(e.L)
			if err != nil {
				return NoVal, 0, false, err
			}
			return base, 0, e.Type.Kind == TChar, nil
		}
	}
	return NoVal, 0, false, g.errf(e.Line, "not an addressable lvalue")
}

func (g *irgen) unop(e *Expr) (Val, error) {
	switch e.Op {
	case "-":
		a, err := g.expr(e.L)
		if err != nil {
			return NoVal, err
		}
		v := g.newVal()
		g.emit(IRIns{Op: IRNeg, Dst: v, A: a})
		return v, nil
	case "~":
		a, err := g.expr(e.L)
		if err != nil {
			return NoVal, err
		}
		v := g.newVal()
		g.emit(IRIns{Op: IRNot, Dst: v, A: a})
		return v, nil
	case "!":
		a, err := g.expr(e.L)
		if err != nil {
			return NoVal, err
		}
		v := g.newVal()
		g.emit(IRIns{Op: IRCmp, Cond: CEq, Dst: v, A: a, HasImm: true, Imm: 0})
		return v, nil
	case "*":
		addr, off, byteSized, err := g.addrOf(e)
		if err != nil {
			return NoVal, err
		}
		v := g.newVal()
		op := IRLoad
		if byteSized {
			op = IRLoadB
		}
		g.emit(IRIns{Op: op, Dst: v, A: addr, Imm: off})
		return v, nil
	case "&":
		addr, off, _, err := g.addrOf(e.L)
		if err != nil {
			return NoVal, err
		}
		if off != 0 {
			v := g.newVal()
			g.emit(IRIns{Op: IRBin, Bin: BAdd, Dst: v, A: addr, HasImm: true, Imm: off})
			return v, nil
		}
		return addr, nil
	}
	return NoVal, g.errf(e.Line, "bad unary %s", e.Op)
}

func (g *irgen) binop(e *Expr) (Val, error) {
	switch e.Op {
	case "&&", "||":
		// Value form via short-circuit control flow.
		v := g.newVal()
		falseL := g.newLabel()
		endL := g.newLabel()
		if err := g.condFalse(e, falseL); err != nil {
			return NoVal, err
		}
		g.emit(IRIns{Op: IRConst, Dst: v, Imm: 1})
		g.emit(IRIns{Op: IRBr, Label: endL})
		g.emit(IRIns{Op: IRLabel, Label: falseL})
		g.emit(IRIns{Op: IRConst, Dst: v, Imm: 0})
		g.emit(IRIns{Op: IRLabel, Label: endL})
		return v, nil
	case "==", "!=", "<", "<=", ">", ">=":
		a, err := g.expr(e.L)
		if err != nil {
			return NoVal, err
		}
		v := g.newVal()
		if e.R.Kind == ENum && fitsImm(e.R.Num) {
			g.emit(IRIns{Op: IRCmp, Cond: cmpOf[e.Op], Dst: v, A: a, HasImm: true, Imm: e.R.Num})
			return v, nil
		}
		b, err := g.expr(e.R)
		if err != nil {
			return NoVal, err
		}
		g.emit(IRIns{Op: IRCmp, Cond: cmpOf[e.Op], Dst: v, A: a, B: b})
		return v, nil
	case "/", "%":
		a, err := g.expr(e.L)
		if err != nil {
			return NoVal, err
		}
		b, err := g.expr(e.R)
		if err != nil {
			return NoVal, err
		}
		v := g.newVal()
		sym := "__divsi3"
		if e.Op == "%" {
			sym = "__modsi3"
		}
		g.emit(IRIns{Op: IRCall, Dst: v, Sym: sym, Args: []Val{a, b}})
		return v, nil
	case "<<", ">>":
		a, err := g.expr(e.L)
		if err != nil {
			return NoVal, err
		}
		kind := BShl
		sym := "__lshl"
		if e.Op == ">>" {
			kind = BShr
			sym = "__ashr"
		}
		if e.R.Kind == ENum && e.R.Num >= 0 && e.R.Num <= 31 {
			v := g.newVal()
			g.emit(IRIns{Op: IRBin, Bin: kind, Dst: v, A: a, HasImm: true, Imm: e.R.Num})
			return v, nil
		}
		b, err := g.expr(e.R)
		if err != nil {
			return NoVal, err
		}
		v := g.newVal()
		g.emit(IRIns{Op: IRCall, Dst: v, Sym: sym, Args: []Val{a, b}})
		return v, nil
	}

	// Pointer arithmetic scaling.
	lt, rt := decay(e.L.Type), decay(e.R.Type)
	a, err := g.expr(e.L)
	if err != nil {
		return NoVal, err
	}
	switch {
	case e.Op == "+" && lt.Kind == TPtr && rt.Kind != TPtr:
		return g.scaledAddSub(BAdd, a, e.R, lt)
	case e.Op == "+" && rt.Kind == TPtr && lt.Kind != TPtr:
		// int + ptr: compute ptr then add scaled int.
		b, err := g.expr(e.R)
		if err != nil {
			return NoVal, err
		}
		return g.scaledAddSubVal(BAdd, b, a, rt)
	case e.Op == "-" && lt.Kind == TPtr && rt.Kind == TPtr:
		b, err := g.expr(e.R)
		if err != nil {
			return NoVal, err
		}
		diff := g.newVal()
		g.emit(IRIns{Op: IRBin, Bin: BSub, Dst: diff, A: a, B: b})
		if sc, need := scaleOf(lt); need {
			v := g.newVal()
			g.emit(IRIns{Op: IRBin, Bin: BShr, Dst: v, A: diff, HasImm: true, Imm: sc})
			return v, nil
		}
		return diff, nil
	case e.Op == "-" && lt.Kind == TPtr:
		return g.scaledAddSub(BSub, a, e.R, lt)
	}

	bin := map[string]BinKind{"+": BAdd, "-": BSub, "*": BMul, "&": BAnd, "|": BOr, "^": BXor}[e.Op]
	v := g.newVal()
	if e.R.Kind == ENum && fitsImm(e.R.Num) && e.Op != "*" {
		g.emit(IRIns{Op: IRBin, Bin: bin, Dst: v, A: a, HasImm: true, Imm: e.R.Num})
		return v, nil
	}
	b, err := g.expr(e.R)
	if err != nil {
		return NoVal, err
	}
	g.emit(IRIns{Op: IRBin, Bin: bin, Dst: v, A: a, B: b})
	return v, nil
}

// scaledAddSub emits ptr +/- idx*size where idx is an expression.
func (g *irgen) scaledAddSub(kind BinKind, ptr Val, idx *Expr, pt *Type) (Val, error) {
	sc, need := scaleOf(pt)
	if idx.Kind == ENum {
		off := idx.Num
		if need {
			off <<= sc
		}
		if fitsImm(off) {
			v := g.newVal()
			g.emit(IRIns{Op: IRBin, Bin: kind, Dst: v, A: ptr, HasImm: true, Imm: off})
			return v, nil
		}
	}
	iv, err := g.expr(idx)
	if err != nil {
		return NoVal, err
	}
	return g.scaledAddSubVal(kind, ptr, iv, pt)
}

func (g *irgen) scaledAddSubVal(kind BinKind, ptr, idx Val, pt *Type) (Val, error) {
	sc, need := scaleOf(pt)
	if need {
		s := g.newVal()
		g.emit(IRIns{Op: IRBin, Bin: BShl, Dst: s, A: idx, HasImm: true, Imm: sc})
		idx = s
	}
	v := g.newVal()
	g.emit(IRIns{Op: IRBin, Bin: kind, Dst: v, A: ptr, B: idx})
	return v, nil
}

func (g *irgen) assign(e *Expr) (Val, error) {
	// Register-allocated scalar target.
	if e.L.Kind == EVar && e.L.Local != nil {
		if dst, ok := g.vregOf[e.L.Local]; ok {
			rhs, err := g.assignRHS(e, func() (Val, error) { return dst, nil })
			if err != nil {
				return NoVal, err
			}
			g.emit(IRIns{Op: IRMov, Dst: dst, A: rhs})
			return dst, nil
		}
	}
	// Memory target: compute the address once.
	addr, off, byteSized, err := g.addrOf(e.L)
	if err != nil {
		return NoVal, err
	}
	loadOp, storeOp := IRLoad, IRStore
	if byteSized {
		loadOp, storeOp = IRLoadB, IRStoreB
	}
	rhs, err := g.assignRHS(e, func() (Val, error) {
		cur := g.newVal()
		g.emit(IRIns{Op: loadOp, Dst: cur, A: addr, Imm: off})
		return cur, nil
	})
	if err != nil {
		return NoVal, err
	}
	g.emit(IRIns{Op: storeOp, A: addr, Imm: off, B: rhs})
	return rhs, nil
}

// assignRHS computes the stored value; current() yields the old value for
// compound assignments.
func (g *irgen) assignRHS(e *Expr, current func() (Val, error)) (Val, error) {
	if e.Op == "=" {
		return g.expr(e.R)
	}
	op := e.Op[:len(e.Op)-1] // "+=" -> "+"
	cur, err := current()
	if err != nil {
		return NoVal, err
	}
	// Pointer compound assignment scales.
	lt := decay(e.L.Type)
	if lt.Kind == TPtr {
		kind := BAdd
		if op == "-" {
			kind = BSub
		}
		return g.scaledAddSub(kind, cur, e.R, lt)
	}
	switch op {
	case "/", "%":
		b, err := g.expr(e.R)
		if err != nil {
			return NoVal, err
		}
		v := g.newVal()
		sym := "__divsi3"
		if op == "%" {
			sym = "__modsi3"
		}
		g.emit(IRIns{Op: IRCall, Dst: v, Sym: sym, Args: []Val{cur, b}})
		return v, nil
	case "<<", ">>":
		kind := BShl
		sym := "__lshl"
		if op == ">>" {
			kind = BShr
			sym = "__ashr"
		}
		if e.R.Kind == ENum && e.R.Num >= 0 && e.R.Num <= 31 {
			v := g.newVal()
			g.emit(IRIns{Op: IRBin, Bin: kind, Dst: v, A: cur, HasImm: true, Imm: e.R.Num})
			return v, nil
		}
		b, err := g.expr(e.R)
		if err != nil {
			return NoVal, err
		}
		v := g.newVal()
		g.emit(IRIns{Op: IRCall, Dst: v, Sym: sym, Args: []Val{cur, b}})
		return v, nil
	}
	bin := map[string]BinKind{"+": BAdd, "-": BSub, "*": BMul, "&": BAnd, "|": BOr, "^": BXor}[op]
	v := g.newVal()
	if e.R.Kind == ENum && fitsImm(e.R.Num) && op != "*" {
		g.emit(IRIns{Op: IRBin, Bin: bin, Dst: v, A: cur, HasImm: true, Imm: e.R.Num})
		return v, nil
	}
	b, err := g.expr(e.R)
	if err != nil {
		return NoVal, err
	}
	g.emit(IRIns{Op: IRBin, Bin: bin, Dst: v, A: cur, B: b})
	return v, nil
}

func (g *irgen) call(e *Expr) (Val, error) {
	var args []Val
	for _, a := range e.Args {
		v, err := g.expr(a)
		if err != nil {
			return NoVal, err
		}
		args = append(args, v)
	}
	dst := NoVal
	if e.Type.Kind != TVoid {
		dst = g.newVal()
	}
	g.emit(IRIns{Op: IRCall, Dst: dst, Sym: e.Name, Args: args})
	return dst, nil
}
