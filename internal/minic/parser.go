package minic

import "fmt"

// ParseError reports a syntax error.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("minic: line %d: %s", e.Line, e.Msg) }

type parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a translation unit (no type checking; see Check).
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(TokEOF) {
		if err := p.topLevel(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *parser) atPunct(s string) bool {
	return p.cur().Kind == TokPunct && p.cur().Text == s
}

func (p *parser) atKeyword(s string) bool {
	return p.cur().Kind == TokKeyword && p.cur().Text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.atPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptKeyword(s string) bool {
	if p.atKeyword(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.cur().Line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q, got %q", s, p.cur().Text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	if !p.at(TokIdent) {
		return "", p.errf("expected identifier, got %q", p.cur().Text)
	}
	return p.next().Text, nil
}

// baseType parses "int" | "char" | "void" with optional const/unsigned/
// static qualifiers (accepted and ignored: the dialect is signed and
// non-static, qualifiers exist so benchmark sources read like C).
func (p *parser) baseType() (*Type, bool) {
	for p.acceptKeyword("const") || p.acceptKeyword("static") || p.acceptKeyword("unsigned") {
	}
	switch {
	case p.acceptKeyword("int"):
		return TypeInt, true
	case p.acceptKeyword("char"):
		return TypeChar, true
	case p.acceptKeyword("void"):
		return TypeVoid, true
	}
	return nil, false
}

// declType parses pointer stars after a base type.
func (p *parser) declType(base *Type) *Type {
	t := base
	for p.acceptPunct("*") {
		t = PtrTo(t)
	}
	return t
}

func (p *parser) topLevel(prog *Program) error {
	base, ok := p.baseType()
	if !ok {
		return p.errf("expected type at top level, got %q", p.cur().Text)
	}
	t := p.declType(base)
	name, err := p.ident()
	if err != nil {
		return err
	}
	if p.atPunct("(") {
		fn, err := p.funcDecl(t, name)
		if err != nil {
			return err
		}
		prog.Funcs = append(prog.Funcs, fn)
		return nil
	}
	// Global variable(s).
	for {
		g, err := p.globalRest(t, name)
		if err != nil {
			return err
		}
		prog.Globals = append(prog.Globals, g)
		if p.acceptPunct(",") {
			t2 := p.declType(base)
			name, err = p.ident()
			if err != nil {
				return err
			}
			t = t2
			continue
		}
		break
	}
	return p.expectPunct(";")
}

func (p *parser) globalRest(t *Type, name string) (*GlobalVar, error) {
	if p.acceptPunct("[") {
		if p.acceptPunct("]") {
			// length inferred from the initialiser
			t = ArrayOf(t, 0)
		} else {
			if !p.at(TokNum) {
				return nil, p.errf("array length must be a constant")
			}
			n := p.next().Num
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			t = ArrayOf(t, n)
		}
	}
	g := &GlobalVar{Name: name, Type: t}
	if p.acceptPunct("=") {
		if err := p.globalInit(g); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func (p *parser) constExpr() (int32, error) {
	neg := false
	for {
		if p.acceptPunct("-") {
			neg = !neg
			continue
		}
		break
	}
	var v int32
	switch p.cur().Kind {
	case TokNum, TokChar:
		v = p.next().Num
	default:
		return 0, p.errf("expected constant, got %q", p.cur().Text)
	}
	if neg {
		v = -v
	}
	return v, nil
}

func (p *parser) globalInit(g *GlobalVar) error {
	g.HasIni = true
	if p.at(TokStr) {
		if g.Type.Kind != TArray || g.Type.Elem.Kind != TChar {
			return p.errf("string initialiser requires char array")
		}
		s := p.next().Text
		if g.Type.Len == 0 {
			g.Type = ArrayOf(TypeChar, int32(len(s))+1)
		}
		g.Str = s
		return nil
	}
	if p.acceptPunct("{") {
		if g.Type.Kind != TArray {
			return p.errf("brace initialiser requires array")
		}
		for !p.atPunct("}") {
			v, err := p.constExpr()
			if err != nil {
				return err
			}
			g.Init = append(g.Init, v)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct("}"); err != nil {
			return err
		}
		if g.Type.Len == 0 {
			g.Type = ArrayOf(g.Type.Elem, int32(len(g.Init)))
		}
		if int32(len(g.Init)) > g.Type.Len {
			return p.errf("too many initialisers for %s", g.Name)
		}
		return nil
	}
	v, err := p.constExpr()
	if err != nil {
		return err
	}
	g.Init = []int32{v}
	return nil
}

func (p *parser) funcDecl(ret *Type, name string) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name, Ret: ret, Line: p.cur().Line}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if !p.acceptPunct(")") {
		if p.atKeyword("void") && p.toks[p.pos+1].Kind == TokPunct && p.toks[p.pos+1].Text == ")" {
			p.pos += 2
		} else {
			for {
				base, ok := p.baseType()
				if !ok {
					return nil, p.errf("expected parameter type")
				}
				t := p.declType(base)
				pname, err := p.ident()
				if err != nil {
					return nil, err
				}
				// Array parameters decay to pointers.
				if p.acceptPunct("[") {
					if p.at(TokNum) {
						p.next()
					}
					if err := p.expectPunct("]"); err != nil {
						return nil, err
					}
					t = PtrTo(t)
				}
				fn.Params = append(fn.Params, &LocalVar{Name: pname, Type: t, IsParm: true})
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
	}
	if len(fn.Params) > 4 {
		return nil, p.errf("function %s: at most 4 parameters supported", name)
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() (*Stmt, error) {
	line := p.cur().Line
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	blk := &Stmt{Kind: SBlock, Line: line}
	for !p.atPunct("}") {
		if p.at(TokEOF) {
			return nil, p.errf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		blk.Body = append(blk.Body, s)
	}
	p.pos++
	return blk, nil
}

func (p *parser) stmt() (*Stmt, error) {
	line := p.cur().Line
	switch {
	case p.atPunct("{"):
		return p.block()
	case p.acceptPunct(";"):
		return &Stmt{Kind: SEmpty, Line: line}, nil
	case p.atKeyword("int") || p.atKeyword("char") || p.atKeyword("const") ||
		p.atKeyword("unsigned") || p.atKeyword("static"):
		return p.declStmt()
	case p.acceptKeyword("if"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		s := &Stmt{Kind: SIf, Cond: cond, Then: then, Line: line}
		if p.acceptKeyword("else") {
			s.Else, err = p.stmt()
			if err != nil {
				return nil, err
			}
		}
		return s, nil
	case p.acceptKeyword("while"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &Stmt{Kind: SWhile, Cond: cond, Then: body, Line: line}, nil
	case p.acceptKeyword("do"):
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if !p.acceptKeyword("while") {
			return nil, p.errf("expected while after do body")
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &Stmt{Kind: SDoWhile, Cond: cond, Then: body, Line: line}, nil
	case p.acceptKeyword("for"):
		return p.forStmt(line)
	case p.acceptKeyword("return"):
		s := &Stmt{Kind: SReturn, Line: line}
		if !p.atPunct(";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Expr = e
		}
		return s, p.expectPunct(";")
	case p.acceptKeyword("break"):
		return &Stmt{Kind: SBreak, Line: line}, p.expectPunct(";")
	case p.acceptKeyword("continue"):
		return &Stmt{Kind: SContinue, Line: line}, p.expectPunct(";")
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &Stmt{Kind: SExpr, Expr: e, Line: line}, p.expectPunct(";")
}

func (p *parser) declStmt() (*Stmt, error) {
	line := p.cur().Line
	base, ok := p.baseType()
	if !ok || base.Kind == TVoid {
		return nil, p.errf("bad declaration type")
	}
	blk := &Stmt{Kind: SBlock, Line: line}
	for {
		t := p.declType(base)
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.acceptPunct("[") {
			if !p.at(TokNum) {
				return nil, p.errf("array length must be constant")
			}
			n := p.next().Num
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			t = ArrayOf(t, n)
		}
		lv := &LocalVar{Name: name, Type: t}
		if p.acceptPunct("=") {
			e, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			lv.Init = e
		}
		blk.Body = append(blk.Body, &Stmt{Kind: SDecl, Decl: lv, Line: line})
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if len(blk.Body) == 1 {
		return blk.Body[0], nil
	}
	return blk, nil
}

func (p *parser) forStmt(line int) (*Stmt, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	s := &Stmt{Kind: SFor, Line: line}
	if !p.atPunct(";") {
		if p.atKeyword("int") || p.atKeyword("char") {
			init, err := p.declStmt()
			if err != nil {
				return nil, err
			}
			s.Init = init
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Init = &Stmt{Kind: SExpr, Expr: e, Line: line}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		}
	} else {
		p.pos++
	}
	if !p.atPunct(";") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.atPunct(")") {
		post, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	s.Then = body
	return s, nil
}

// Expression parsing: precedence climbing.

func (p *parser) expr() (*Expr, error) { return p.assignExpr() }

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *parser) assignExpr() (*Expr, error) {
	lhs, err := p.binExpr(0)
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokPunct && assignOps[p.cur().Text] {
		op := p.next().Text
		rhs, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: EAssign, Op: op, L: lhs, R: rhs, Line: lhs.Line}, nil
	}
	return lhs, nil
}

// binary operator precedence, higher binds tighter.
var binPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6, "<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8, "+": 9, "-": 9, "*": 10, "/": 10, "%": 10,
}

func (p *parser) binExpr(minPrec int) (*Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Expr{Kind: EBinop, Op: t.Text, L: lhs, R: rhs, Line: t.Line}
	}
}

func (p *parser) unary() (*Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "-", "!", "~", "*", "&":
			p.pos++
			e, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &Expr{Kind: EUnop, Op: t.Text, L: e, Line: t.Line}, nil
		case "++", "--":
			// pre-increment sugar: ++x -> x += 1
			p.pos++
			e, err := p.unary()
			if err != nil {
				return nil, err
			}
			op := "+="
			if t.Text == "--" {
				op = "-="
			}
			one := &Expr{Kind: ENum, Num: 1, Line: t.Line}
			return &Expr{Kind: EAssign, Op: op, L: e, R: one, Line: t.Line}, nil
		}
	}
	return p.postfix()
}

func (p *parser) postfix() (*Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptPunct("["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			e = &Expr{Kind: EIndex, L: e, R: idx, Line: e.Line}
		case p.atPunct("(") && e.Kind == EVar:
			p.pos++
			call := &Expr{Kind: ECall, Name: e.Name, Line: e.Line}
			for !p.atPunct(")") {
				a, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			e = call
		default:
			return e, nil
		}
	}
}

func (p *parser) primary() (*Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNum, TokChar:
		p.pos++
		return &Expr{Kind: ENum, Num: t.Num, Line: t.Line}, nil
	case TokStr:
		p.pos++
		return &Expr{Kind: EStr, Str: t.Text, Line: t.Line}, nil
	case TokIdent:
		p.pos++
		return &Expr{Kind: EVar, Name: t.Text, Line: t.Line}, nil
	case TokPunct:
		if t.Text == "(" {
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			return e, p.expectPunct(")")
		}
	}
	return nil, p.errf("unexpected token %q", t.Text)
}
