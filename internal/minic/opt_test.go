package minic

import (
	"strings"
	"testing"
)

func lowerSrc(t *testing.T, src string) []*IRFunc {
	t.Helper()
	p := mustParse(t, src)
	if err := Check(p); err != nil {
		t.Fatal(err)
	}
	irs, err := Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	return irs
}

func fnByName(t *testing.T, fns []*IRFunc, name string) *IRFunc {
	t.Helper()
	for _, f := range fns {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

func TestInlineSmallFunction(t *testing.T) {
	irs := lowerSrc(t, `
int twice(int x) { return x + x; }
int main() { return twice(21); }
`)
	out := OptimizeIR(irs)
	main := fnByName(t, out, "main")
	if strings.Contains(main.String(), "call twice") {
		t.Errorf("twice not inlined:\n%s", main.String())
	}
	// twice is unreachable after inlining and must be dropped.
	for _, f := range out {
		if f.Name == "twice" {
			t.Error("unused function not removed")
		}
	}
	// Constant folding should reduce main to "return 42".
	if !strings.Contains(main.String(), "= 42") {
		t.Errorf("21+21 not folded:\n%s", main.String())
	}
}

func TestInlineSkipsRecursive(t *testing.T) {
	irs := lowerSrc(t, `
int f(int n) { if (n <= 0) return 0; return n + f(n - 1); }
int main() { return f(3); }
`)
	out := OptimizeIR(irs)
	main := fnByName(t, out, "main")
	if !strings.Contains(main.String(), "call f") {
		t.Errorf("recursive f must not be inlined:\n%s", main.String())
	}
	fnByName(t, out, "f") // must still exist
}

func TestInlineSkipsMutualRecursion(t *testing.T) {
	irs := lowerSrc(t, `
int even(int n) { if (n == 0) return 1; return odd(n - 1); }
int odd(int n) { if (n == 0) return 0; return even(n - 1); }
int main() { return even(4); }
`)
	out := OptimizeIR(irs)
	main := fnByName(t, out, "main")
	if !strings.Contains(main.String(), "call even") {
		t.Errorf("mutually recursive even must not be inlined:\n%s", main.String())
	}
	fnByName(t, out, "even")
	fnByName(t, out, "odd")
}

func TestConstantBranchElimination(t *testing.T) {
	irs := lowerSrc(t, `
int main() {
	int n = 8;
	if (n > 31) return 1;
	if (n <= 0) return 2;
	return n * 4;
}
`)
	out := OptimizeIR(irs)
	main := fnByName(t, out, "main")
	s := main.String()
	if strings.Contains(s, "br(") {
		t.Errorf("constant branches survive:\n%s", s)
	}
	if !strings.Contains(s, "= 32") {
		t.Errorf("result not folded to 32:\n%s", s)
	}
}

func TestShiftHelperFoldsAway(t *testing.T) {
	// The pattern every benchmark uses: shru with a constant amount must
	// become straight-line code with no calls and no branches.
	irs := lowerSrc(t, `
int shru(int x, int n) {
	if (n <= 0) return x;
	if (n > 31) return 0;
	return (x >> n) & (0x7fffffff >> (n - 1));
}
int main() {
	int v = 0 - 1;
	return shru(v, 24) & 255;
}
`)
	out := OptimizeIR(irs)
	main := fnByName(t, out, "main")
	s := main.String()
	if strings.Contains(s, "call") || strings.Contains(s, "br(") {
		t.Errorf("shru(x, const) should fold to straight line:\n%s", s)
	}
}

func TestDeadCodeElim(t *testing.T) {
	f := &IRFunc{Name: "t", NVals: 4}
	f.Ins = []IRIns{
		{Op: IRConst, Dst: 0, Imm: 1, A: NoVal, B: NoVal},
		{Op: IRConst, Dst: 1, Imm: 2, A: NoVal, B: NoVal}, // dead
		{Op: IRBin, Bin: BAdd, Dst: 2, A: 0, HasImm: true, Imm: 5},
		{Op: IRRet, A: 2, B: NoVal, Dst: NoVal},
	}
	simplify(f)
	for i := range f.Ins {
		if f.Ins[i].Op == IRConst && f.Ins[i].Dst == 1 {
			t.Error("dead const not removed")
		}
	}
	// the add should have been folded to a const 6
	if !strings.Contains(f.String(), "= 6") {
		t.Errorf("fold failed:\n%s", f.String())
	}
}

func TestUnreachableElim(t *testing.T) {
	f := &IRFunc{Name: "t", NVals: 2}
	f.Ins = []IRIns{
		{Op: IRBr, Label: "end"},
		{Op: IRConst, Dst: 0, Imm: 9, A: NoVal, B: NoVal}, // unreachable
		{Op: IRLabel, Label: "end"},
		{Op: IRRet, A: NoVal, B: NoVal, Dst: NoVal},
	}
	simplify(f)
	for i := range f.Ins {
		if f.Ins[i].Op == IRConst {
			t.Errorf("unreachable code survives:\n%s", f.String())
		}
		if f.Ins[i].Op == IRBr {
			t.Errorf("fall-through branch survives:\n%s", f.String())
		}
	}
}

func TestEvalBinMatchesSemantics(t *testing.T) {
	cases := []struct {
		k    BinKind
		a, b int32
		want int32
	}{
		{BAdd, 2147483647, 1, -2147483648}, // wraps
		{BSub, -2147483648, 1, 2147483647},
		{BRsb, 3, 10, 7},
		{BMul, 65536, 65536, 0},
		{BShl, 1, 31, -2147483648},
		{BShr, -8, 1, -4}, // arithmetic
		{BAnd, 12, 10, 8},
		{BOr, 12, 10, 14},
		{BXor, 12, 10, 6},
	}
	for _, c := range cases {
		if got := evalBin(c.k, c.a, c.b); got != c.want {
			t.Errorf("evalBin(%v, %d, %d) = %d, want %d", c.k, c.a, c.b, got, c.want)
		}
	}
}

func TestSwapCond(t *testing.T) {
	pairs := map[CondKind]CondKind{CEq: CEq, CNe: CNe, CLt: CGt, CLe: CGe, CGt: CLt, CGe: CLe}
	for in, want := range pairs {
		if got := swapCond(in); got != want {
			t.Errorf("swapCond(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestInlinePreservesLocals(t *testing.T) {
	irs := lowerSrc(t, `
void fill(int* p) { p[0] = 7; }
int main() {
	int buf[2];
	fill(buf);
	fill(&buf[1]);
	return buf[0] + buf[1];
}
`)
	out := OptimizeIR(irs)
	main := fnByName(t, out, "main")
	if strings.Contains(main.String(), "call fill") {
		t.Errorf("fill not inlined:\n%s", main.String())
	}
}
