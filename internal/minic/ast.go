package minic

import "fmt"

// TypeKind classifies types.
type TypeKind uint8

// Type kinds.
const (
	TVoid TypeKind = iota
	TInt           // 32-bit
	TChar          // 8-bit
	TPtr
	TArray
)

// Type is a minic type.
type Type struct {
	Kind TypeKind
	Elem *Type // TPtr, TArray
	Len  int32 // TArray
}

// Predefined types.
var (
	TypeVoid = &Type{Kind: TVoid}
	TypeInt  = &Type{Kind: TInt}
	TypeChar = &Type{Kind: TChar}
)

// PtrTo returns a pointer type.
func PtrTo(e *Type) *Type { return &Type{Kind: TPtr, Elem: e} }

// ArrayOf returns an array type.
func ArrayOf(e *Type, n int32) *Type { return &Type{Kind: TArray, Elem: e, Len: n} }

// Size returns the byte size.
func (t *Type) Size() int32 {
	switch t.Kind {
	case TInt, TPtr:
		return 4
	case TChar:
		return 1
	case TArray:
		return t.Elem.Size() * t.Len
	}
	return 0
}

// IsScalar reports whether t is loadable in a register.
func (t *Type) IsScalar() bool {
	return t.Kind == TInt || t.Kind == TChar || t.Kind == TPtr
}

func (t *Type) String() string {
	switch t.Kind {
	case TVoid:
		return "void"
	case TInt:
		return "int"
	case TChar:
		return "char"
	case TPtr:
		return t.Elem.String() + "*"
	case TArray:
		return fmt.Sprintf("%s[%d]", t.Elem.String(), t.Len)
	}
	return "?"
}

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case TPtr:
		return t.Elem.Equal(o.Elem)
	case TArray:
		return t.Len == o.Len && t.Elem.Equal(o.Elem)
	}
	return true
}

// ExprKind classifies expressions.
type ExprKind uint8

// Expression kinds.
const (
	ENum    ExprKind = iota
	EStr             // string literal (char array in rodata)
	EVar             // identifier
	EBinop           // Op in {+,-,*,/,%,&,|,^,<<,>>,==,!=,<,<=,>,>=,&&,||}
	EUnop            // Op in {-,!,~,*,&}
	EAssign          // Op "=" or compound "+=", ...
	ECall
	EIndex // a[i]
	ECast  // implicit widen/narrow (inserted by checker)
)

// Expr is an expression node; Type is filled by the checker.
type Expr struct {
	Kind ExprKind
	Op   string
	Num  int32
	Str  string
	Name string
	L, R *Expr
	Args []*Expr
	Type *Type
	Line int

	// Resolved by the checker.
	Local  *LocalVar
	Global *GlobalVar
}

// StmtKind classifies statements.
type StmtKind uint8

// Statement kinds.
const (
	SExpr StmtKind = iota
	SDecl
	SIf
	SWhile
	SDoWhile
	SFor
	SReturn
	SBreak
	SContinue
	SBlock
	SEmpty
)

// Stmt is a statement node.
type Stmt struct {
	Kind StmtKind
	Expr *Expr // SExpr, SReturn (may be nil)
	Init *Stmt // SFor
	Cond *Expr // SIf/SWhile/SDoWhile/SFor
	Post *Expr // SFor
	Then *Stmt // SIf body, loop body
	Else *Stmt
	Body []*Stmt // SBlock
	Decl *LocalVar
	Line int
}

// LocalVar is a local variable or parameter.
type LocalVar struct {
	Name   string
	Type   *Type
	Offset int32 // frame offset, assigned by codegen
	IsParm bool
	Init   *Expr
}

// GlobalVar is a global definition.
type GlobalVar struct {
	Name   string
	Type   *Type
	Init   []int32 // flattened word/byte initialiser values
	Str    string  // string initialiser for char arrays
	HasIni bool
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []*LocalVar
	Body   *Stmt // SBlock
	Line   int
}

// Program is a parsed translation unit.
type Program struct {
	Globals []*GlobalVar
	Funcs   []*FuncDecl
}
