package minic

import "fmt"

// Builtin signatures: the runtime-library interface. These bottom out in
// internal/link's hand-written assembly runtime (the dietlibc stand-in).
var Builtins = map[string]struct {
	Ret    *Type
	Params []*Type
}{
	"putc":   {TypeVoid, []*Type{TypeInt}},
	"getc":   {TypeInt, nil},
	"puts":   {TypeVoid, []*Type{PtrTo(TypeChar)}},
	"printi": {TypeVoid, []*Type{TypeInt}},
	"clock":  {TypeInt, nil},
	"exit":   {TypeVoid, []*Type{TypeInt}},
	"memcpy": {TypeVoid, []*Type{PtrTo(TypeChar), PtrTo(TypeChar), TypeInt}},
	"memset": {TypeVoid, []*Type{PtrTo(TypeChar), TypeInt, TypeInt}},
	"strlen": {TypeInt, []*Type{PtrTo(TypeChar)}},
	"strcmp": {TypeInt, []*Type{PtrTo(TypeChar), PtrTo(TypeChar)}},
	"strcpy": {TypeVoid, []*Type{PtrTo(TypeChar), PtrTo(TypeChar)}},
	"srand":  {TypeVoid, []*Type{TypeInt}},
	"rand":   {TypeInt, nil},
}

// CheckError reports a semantic error.
type CheckError struct {
	Line int
	Msg  string
}

func (e *CheckError) Error() string { return fmt.Sprintf("minic: line %d: %s", e.Line, e.Msg) }

type checker struct {
	prog     *Program
	globals  map[string]*GlobalVar
	funcs    map[string]*FuncDecl
	scopes   []map[string]*LocalVar
	fn       *FuncDecl
	strN     int
	loop     int
	skipPush bool
}

// Check resolves names, computes types and hoists string literals into
// generated globals. It mutates the program in place.
func Check(prog *Program) error {
	c := &checker{
		prog:    prog,
		globals: map[string]*GlobalVar{},
		funcs:   map[string]*FuncDecl{},
	}
	for _, g := range prog.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return &CheckError{0, "duplicate global " + g.Name}
		}
		c.globals[g.Name] = g
	}
	for _, f := range prog.Funcs {
		if _, dup := c.funcs[f.Name]; dup {
			return &CheckError{f.Line, "duplicate function " + f.Name}
		}
		if _, isB := Builtins[f.Name]; isB {
			return &CheckError{f.Line, "function shadows builtin: " + f.Name}
		}
		c.funcs[f.Name] = f
	}
	for _, f := range prog.Funcs {
		c.fn = f
		c.scopes = []map[string]*LocalVar{{}}
		for _, pm := range f.Params {
			if err := c.declare(pm, f.Line); err != nil {
				return err
			}
		}
		c.skipPush = true
		if err := c.stmt(f.Body); err != nil {
			return err
		}
		c.skipPush = false
	}
	return nil
}

func (c *checker) declare(lv *LocalVar, line int) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[lv.Name]; dup {
		return &CheckError{line, "redeclared variable " + lv.Name}
	}
	top[lv.Name] = lv
	return nil
}

func (c *checker) lookup(name string) *LocalVar {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if lv, ok := c.scopes[i][name]; ok {
			return lv
		}
	}
	return nil
}

func (c *checker) stmt(s *Stmt) error {
	switch s.Kind {
	case SBlock:
		if c.skipPush {
			// The function's top-level block shares the parameter scope
			// (C semantics: a local may not redeclare a parameter).
			c.skipPush = false
			for _, b := range s.Body {
				if err := c.stmt(b); err != nil {
					return err
				}
			}
			return nil
		}
		c.scopes = append(c.scopes, map[string]*LocalVar{})
		for _, b := range s.Body {
			if err := c.stmt(b); err != nil {
				return err
			}
		}
		c.scopes = c.scopes[:len(c.scopes)-1]
	case SDecl:
		if err := c.declare(s.Decl, s.Line); err != nil {
			return err
		}
		if s.Decl.Init != nil {
			if s.Decl.Type.Kind == TArray {
				return &CheckError{s.Line, "array locals cannot have initialisers"}
			}
			if err := c.expr(s.Decl.Init); err != nil {
				return err
			}
			if err := c.assignable(s.Decl.Type, s.Decl.Init, s.Line); err != nil {
				return err
			}
		}
	case SExpr:
		return c.expr(s.Expr)
	case SIf:
		if err := c.expr(s.Cond); err != nil {
			return err
		}
		if err := c.stmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.stmt(s.Else)
		}
	case SWhile, SDoWhile:
		if err := c.expr(s.Cond); err != nil {
			return err
		}
		c.loop++
		err := c.stmt(s.Then)
		c.loop--
		return err
	case SFor:
		c.scopes = append(c.scopes, map[string]*LocalVar{})
		if s.Init != nil {
			if err := c.stmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.expr(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.expr(s.Post); err != nil {
				return err
			}
		}
		c.loop++
		err := c.stmt(s.Then)
		c.loop--
		c.scopes = c.scopes[:len(c.scopes)-1]
		return err
	case SReturn:
		if s.Expr == nil {
			if c.fn.Ret.Kind != TVoid {
				return &CheckError{s.Line, "missing return value in " + c.fn.Name}
			}
			return nil
		}
		if c.fn.Ret.Kind == TVoid {
			return &CheckError{s.Line, "return value in void function " + c.fn.Name}
		}
		if err := c.expr(s.Expr); err != nil {
			return err
		}
		return c.assignable(c.fn.Ret, s.Expr, s.Line)
	case SBreak, SContinue:
		if c.loop == 0 {
			return &CheckError{s.Line, "break/continue outside loop"}
		}
	case SEmpty:
	}
	return nil
}

// decay converts array-typed expressions to pointers in value contexts.
func decay(t *Type) *Type {
	if t.Kind == TArray {
		return PtrTo(t.Elem)
	}
	return t
}

func (c *checker) expr(e *Expr) error {
	switch e.Kind {
	case ENum:
		e.Type = TypeInt
	case EStr:
		g := &GlobalVar{
			Name:   fmt.Sprintf("__str%d", c.strN),
			Type:   ArrayOf(TypeChar, int32(len(e.Str))+1),
			Str:    e.Str,
			HasIni: true,
		}
		c.strN++
		c.prog.Globals = append(c.prog.Globals, g)
		c.globals[g.Name] = g
		e.Global = g
		e.Type = PtrTo(TypeChar)
	case EVar:
		if lv := c.lookup(e.Name); lv != nil {
			e.Local = lv
			e.Type = lv.Type
			return nil
		}
		if g, ok := c.globals[e.Name]; ok {
			e.Global = g
			e.Type = g.Type
			return nil
		}
		return &CheckError{e.Line, "undefined variable " + e.Name}
	case EBinop:
		if err := c.expr(e.L); err != nil {
			return err
		}
		if err := c.expr(e.R); err != nil {
			return err
		}
		lt, rt := decay(e.L.Type), decay(e.R.Type)
		switch e.Op {
		case "+":
			switch {
			case lt.Kind == TPtr && rt.Kind != TPtr:
				e.Type = lt
			case rt.Kind == TPtr && lt.Kind != TPtr:
				e.Type = rt
			case lt.Kind == TPtr && rt.Kind == TPtr:
				return &CheckError{e.Line, "cannot add pointers"}
			default:
				e.Type = TypeInt
			}
		case "-":
			switch {
			case lt.Kind == TPtr && rt.Kind == TPtr:
				e.Type = TypeInt
			case lt.Kind == TPtr:
				e.Type = lt
			case rt.Kind == TPtr:
				return &CheckError{e.Line, "cannot subtract pointer from scalar"}
			default:
				e.Type = TypeInt
			}
		case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
			e.Type = TypeInt
		default:
			if lt.Kind == TPtr || rt.Kind == TPtr {
				return &CheckError{e.Line, "pointer operand for " + e.Op}
			}
			e.Type = TypeInt
		}
	case EUnop:
		if err := c.expr(e.L); err != nil {
			return err
		}
		switch e.Op {
		case "*":
			t := decay(e.L.Type)
			if t.Kind != TPtr {
				return &CheckError{e.Line, "dereference of non-pointer"}
			}
			e.Type = t.Elem
		case "&":
			if !c.lvalue(e.L) {
				return &CheckError{e.Line, "cannot take address of rvalue"}
			}
			e.Type = PtrTo(e.L.Type)
		default:
			if decay(e.L.Type).Kind == TPtr {
				return &CheckError{e.Line, "pointer operand for unary " + e.Op}
			}
			e.Type = TypeInt
		}
	case EAssign:
		if err := c.expr(e.L); err != nil {
			return err
		}
		if !c.lvalue(e.L) {
			return &CheckError{e.Line, "assignment to rvalue"}
		}
		if err := c.expr(e.R); err != nil {
			return err
		}
		if e.Op != "=" && decay(e.L.Type).Kind == TPtr {
			// Pointer arithmetic: p += n / p -= n with an integer offset.
			if e.Op != "+=" && e.Op != "-=" {
				return &CheckError{e.Line, "pointer compound assignment " + e.Op}
			}
			rt := decay(e.R.Type)
			if rt.Kind != TInt && rt.Kind != TChar {
				return &CheckError{e.Line, "pointer " + e.Op + " needs an integer offset"}
			}
		} else if err := c.assignable(e.L.Type, e.R, e.Line); err != nil {
			return err
		}
		e.Type = e.L.Type
	case ECall:
		if b, ok := Builtins[e.Name]; ok {
			if len(e.Args) != len(b.Params) {
				return &CheckError{e.Line, fmt.Sprintf("%s expects %d args", e.Name, len(b.Params))}
			}
			for i, a := range e.Args {
				if err := c.expr(a); err != nil {
					return err
				}
				if err := c.assignable(b.Params[i], a, e.Line); err != nil {
					return err
				}
			}
			e.Type = b.Ret
			return nil
		}
		fn, ok := c.funcs[e.Name]
		if !ok {
			return &CheckError{e.Line, "undefined function " + e.Name}
		}
		if len(e.Args) != len(fn.Params) {
			return &CheckError{e.Line, fmt.Sprintf("%s expects %d args", e.Name, len(fn.Params))}
		}
		for i, a := range e.Args {
			if err := c.expr(a); err != nil {
				return err
			}
			if err := c.assignable(fn.Params[i].Type, a, e.Line); err != nil {
				return err
			}
		}
		e.Type = fn.Ret
	case EIndex:
		if err := c.expr(e.L); err != nil {
			return err
		}
		if err := c.expr(e.R); err != nil {
			return err
		}
		t := decay(e.L.Type)
		if t.Kind != TPtr {
			return &CheckError{e.Line, "indexing non-array"}
		}
		if decay(e.R.Type).Kind == TPtr {
			return &CheckError{e.Line, "pointer index"}
		}
		e.Type = t.Elem
	case ECast:
		return &CheckError{e.Line, "unexpected cast node"}
	}
	return nil
}

func (c *checker) lvalue(e *Expr) bool {
	switch e.Kind {
	case EVar:
		return e.Type.Kind != TArray
	case EIndex:
		return true
	case EUnop:
		return e.Op == "*"
	}
	return false
}

// assignable checks a value of e's type can be stored into type t:
// int/char interconvert, pointers must match (or a literal 0 for null).
func (c *checker) assignable(t *Type, e *Expr, line int) error {
	et := decay(e.Type)
	tt := decay(t)
	switch {
	case tt.Kind == TInt || tt.Kind == TChar:
		if et.Kind == TInt || et.Kind == TChar {
			return nil
		}
	case tt.Kind == TPtr:
		if et.Kind == TPtr && (tt.Elem.Equal(et.Elem) || tt.Elem.Kind == TChar || et.Elem.Kind == TChar) {
			return nil
		}
		if e.Kind == ENum && e.Num == 0 {
			return nil
		}
	}
	return &CheckError{line, fmt.Sprintf("cannot assign %s to %s", e.Type, t)}
}
