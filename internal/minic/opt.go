package minic

import "fmt"

// This file is the -Os-style IR optimizer: inlining of small
// non-recursive functions, local constant folding and propagation, branch
// simplification, unreachable- and dead-code elimination, and unused
// function removal. It matters to procedural abstraction far beyond code
// quality: inlining turns the per-call helper boilerplate (shifts, GF
// arithmetic, rotates) into straight-line code inside big basic blocks —
// the duplicated, reschedulable regions the paper's graph-based PA feeds
// on (its rijndael discussion, §4.2).

// InlineMaxIns is the callee size limit for inlining.
const InlineMaxIns = 24

// InlineGrowthCap stops inlining into a function once it reaches this
// many IR instructions.
const InlineGrowthCap = 4000

// OptimizeIR optimizes all functions in place and returns the list with
// functions unreachable from main removed (every minic function has
// internal linkage, so reachability from main is exact).
func OptimizeIR(funcs []*IRFunc) []*IRFunc {
	byName := map[string]*IRFunc{}
	for _, f := range funcs {
		byName[f.Name] = f
	}
	recursive := findRecursive(funcs, byName)

	// Inline passes: transitive chains settle in a few rounds.
	inl := &inliner{byName: byName, recursive: recursive}
	for pass := 0; pass < 4; pass++ {
		changed := false
		for _, f := range funcs {
			if inl.inlineInto(f) {
				changed = true
			}
		}
		for _, f := range funcs {
			simplify(f)
		}
		if !changed {
			break
		}
	}
	for _, f := range funcs {
		simplify(f)
	}

	// Drop functions no longer referenced from main.
	reach := map[string]bool{}
	var walk func(name string)
	walk = func(name string) {
		if reach[name] {
			return
		}
		reach[name] = true
		f, ok := byName[name]
		if !ok {
			return
		}
		for i := range f.Ins {
			if f.Ins[i].Op == IRCall {
				walk(f.Ins[i].Sym)
			}
		}
	}
	walk("main")
	var out []*IRFunc
	for _, f := range funcs {
		if reach[f.Name] {
			out = append(out, f)
		}
	}
	return out
}

// findRecursive marks functions on call-graph cycles (never inlined).
func findRecursive(funcs []*IRFunc, byName map[string]*IRFunc) map[string]bool {
	recursive := map[string]bool{}
	for _, f := range funcs {
		// DFS from f: can we come back to f?
		seen := map[string]bool{}
		var dfs func(name string) bool
		dfs = func(name string) bool {
			g, ok := byName[name]
			if !ok {
				return false
			}
			for i := range g.Ins {
				if g.Ins[i].Op != IRCall {
					continue
				}
				callee := g.Ins[i].Sym
				if callee == f.Name {
					return true
				}
				if !seen[callee] {
					seen[callee] = true
					if dfs(callee) {
						return true
					}
				}
			}
			return false
		}
		recursive[f.Name] = dfs(f.Name)
	}
	return recursive
}

type inliner struct {
	byName    map[string]*IRFunc
	recursive map[string]bool
	n         int
}

func (il *inliner) inlinable(callee *IRFunc) bool {
	return !il.recursive[callee.Name] && len(callee.Ins) <= InlineMaxIns
}

// inlineInto splices inlinable callees into f; reports whether anything
// changed.
func (il *inliner) inlineInto(f *IRFunc) bool {
	changed := false
	var out []IRIns
	for _, in := range f.Ins {
		if in.Op != IRCall || len(f.Ins) > InlineGrowthCap {
			out = append(out, in)
			continue
		}
		callee, ok := il.byName[in.Sym]
		if !ok || callee == f || !il.inlinable(callee) {
			out = append(out, in)
			continue
		}
		out = append(out, il.splice(f, &in, callee)...)
		changed = true
	}
	f.Ins = out
	return changed
}

// splice expands one call site.
func (il *inliner) splice(caller *IRFunc, call *IRIns, callee *IRFunc) []IRIns {
	il.n++
	base := Val(caller.NVals)
	caller.NVals += callee.NVals
	localBase := len(caller.Locals)
	caller.Locals = append(caller.Locals, callee.Locals...)
	endLabel := fmt.Sprintf(".Li%d_%s_end", il.n, callee.Name)
	rename := func(l string) string { return fmt.Sprintf("%s.i%d", l, il.n) }
	remap := func(v Val) Val {
		if v == NoVal {
			return NoVal
		}
		return v + base
	}

	var out []IRIns
	// Parameter moves.
	for i, a := range call.Args {
		out = append(out, IRIns{Op: IRMov, Dst: base + Val(i), A: a, B: NoVal})
	}
	for _, cin := range callee.Ins {
		in := cin
		in.Dst = remap(in.Dst)
		in.A = remap(in.A)
		if !in.HasImm {
			in.B = remap(in.B)
		}
		if len(in.Args) > 0 {
			args := make([]Val, len(in.Args))
			for i, a := range in.Args {
				args[i] = remap(a)
			}
			in.Args = args
		}
		switch in.Op {
		case IRAddrL:
			in.LocalIdx += localBase
		case IRLabel, IRBr, IRBrCond:
			in.Label = rename(in.Label)
		case IRRet:
			if call.Dst != NoVal && in.A != NoVal {
				out = append(out, IRIns{Op: IRMov, Dst: call.Dst, A: in.A, B: NoVal})
			}
			out = append(out, IRIns{Op: IRBr, Label: endLabel})
			continue
		}
		out = append(out, in)
	}
	out = append(out, IRIns{Op: IRLabel, Label: endLabel})
	return out
}

// simplify folds and cleans one function to a fixpoint.
func simplify(f *IRFunc) {
	for round := 0; round < 12; round++ {
		changed := false
		if foldConstants(f) {
			changed = true
		}
		if dropFallthroughBranches(f) {
			changed = true
		}
		if dropUnreachable(f) {
			changed = true
		}
		if dropUnusedLabels(f) {
			changed = true
		}
		if deadCodeElim(f) {
			changed = true
		}
		if !changed {
			return
		}
	}
}

func evalBin(k BinKind, a, b int32) int32 {
	switch k {
	case BAdd:
		return a + b
	case BSub:
		return a - b
	case BRsb:
		return b - a
	case BMul:
		return a * b
	case BAnd:
		return a & b
	case BOr:
		return a | b
	case BXor:
		return a ^ b
	case BShl:
		return a << (uint(b) & 31)
	case BShr:
		return a >> (uint(b) & 31)
	case BLsr:
		return int32(uint32(a) >> (uint(b) & 31))
	}
	return 0
}

// evalRuntimeCall folds a call to an arithmetic runtime helper with
// constant arguments, replicating the assembly implementations exactly
// (including their treatment of out-of-range shift amounts).
func evalRuntimeCall(sym string, a, b int32) (int32, bool) {
	switch sym {
	case "__lshl":
		if uint32(b) >= 32 {
			return 0, true
		}
		return a << uint(b), true
	case "__lshr":
		if uint32(b) >= 32 {
			return 0, true
		}
		return int32(uint32(a) >> uint(b)), true
	case "__ashr":
		if uint32(b) >= 32 {
			return a >> 31, true
		}
		return a >> uint(b), true
	case "__divsi3":
		if b == 0 || (a == -2147483648 && b == -1) {
			return 0, false
		}
		return a / b, true
	case "__modsi3":
		if b == 0 || (a == -2147483648 && b == -1) {
			return 0, false
		}
		return a % b, true
	case "__udivsi3":
		if b == 0 {
			return 0, false
		}
		return int32(uint32(a) / uint32(b)), true
	case "__umodsi3":
		if b == 0 {
			return 0, false
		}
		return int32(uint32(a) % uint32(b)), true
	}
	return 0, false
}

// reduceShiftCall strength-reduces a variable-shift helper call whose
// amount is a known constant into a plain shift (or simpler).
func reduceShiftCall(in *IRIns, a Val, n int32) bool {
	var kind BinKind
	switch in.Sym {
	case "__lshl":
		kind = BShl
	case "__lshr":
		kind = BLsr
	case "__ashr":
		kind = BShr
	default:
		return false
	}
	dst := in.Dst
	switch {
	case uint32(n) >= 32:
		if in.Sym == "__ashr" {
			*in = IRIns{Op: IRBin, Bin: BShr, Dst: dst, A: a, HasImm: true, Imm: 31, B: NoVal}
		} else {
			*in = IRIns{Op: IRConst, Dst: dst, Imm: 0, A: NoVal, B: NoVal}
		}
	case n <= 0:
		*in = IRIns{Op: IRMov, Dst: dst, A: a, B: NoVal}
	default:
		*in = IRIns{Op: IRBin, Bin: kind, Dst: dst, A: a, HasImm: true, Imm: n, B: NoVal}
	}
	return true
}

func evalCond(c CondKind, a, b int32) bool {
	switch c {
	case CEq:
		return a == b
	case CNe:
		return a != b
	case CLt:
		return a < b
	case CLe:
		return a <= b
	case CGt:
		return a > b
	case CGe:
		return a >= b
	}
	return false
}

// swapCond mirrors a comparison when its operands swap sides.
func swapCond(c CondKind) CondKind {
	switch c {
	case CLt:
		return CGt
	case CLe:
		return CGe
	case CGt:
		return CLt
	case CGe:
		return CLe
	}
	return c // eq/ne symmetric
}

const immMin, immMax = -2048, 2047

func immOK(v int32) bool { return v >= immMin && v <= immMax }

// foldConstants does local (straight-line) constant propagation and
// strength folding. Constness is tracked between labels/branch targets
// only, so no dataflow join is needed.
func foldConstants(f *IRFunc) bool {
	changed := false
	consts := map[Val]int32{}
	reset := func() { consts = map[Val]int32{} }
	setConst := func(in *IRIns, v int32) {
		*in = IRIns{Op: IRConst, Dst: in.Dst, Imm: v, A: NoVal, B: NoVal}
		changed = true
	}

	for i := range f.Ins {
		in := &f.Ins[i]
		switch in.Op {
		case IRLabel:
			reset()
			continue
		case IRConst:
			consts[in.Dst] = in.Imm
			continue
		case IRMov:
			if v, ok := consts[in.A]; ok {
				setConst(in, v)
				consts[in.Dst] = v
				continue
			}
		case IRNeg:
			if v, ok := consts[in.A]; ok {
				setConst(in, -v)
				consts[in.Dst] = -v
				continue
			}
		case IRNot:
			if v, ok := consts[in.A]; ok {
				setConst(in, ^v)
				consts[in.Dst] = ^v
				continue
			}
		case IRBin:
			av, aok := consts[in.A]
			if in.HasImm {
				if aok {
					v := evalBin(in.Bin, av, in.Imm)
					setConst(in, v)
					consts[in.Dst] = v
					continue
				}
			} else {
				bv, bok := consts[in.B]
				switch {
				case aok && bok:
					v := evalBin(in.Bin, av, bv)
					setConst(in, v)
					consts[in.Dst] = v
					continue
				case bok && immOK(bv) && in.Bin != BMul:
					in.HasImm, in.Imm, in.B = true, bv, NoVal
					changed = true
				case aok && immOK(av):
					// commute or reverse to put the constant in the
					// immediate slot
					switch in.Bin {
					case BAdd, BAnd, BOr, BXor:
						in.A = in.B
						in.HasImm, in.Imm, in.B = true, av, NoVal
						changed = true
					case BSub: // c - b = rsb(b, c)
						in.Bin = BRsb
						in.A = in.B
						in.HasImm, in.Imm, in.B = true, av, NoVal
						changed = true
					}
				}
			}
		case IRCmp:
			av, aok := consts[in.A]
			if in.HasImm {
				if aok {
					v := int32(0)
					if evalCond(in.Cond, av, in.Imm) {
						v = 1
					}
					setConst(in, v)
					consts[in.Dst] = v
					continue
				}
			} else if bv, bok := consts[in.B]; bok {
				if aok {
					v := int32(0)
					if evalCond(in.Cond, av, bv) {
						v = 1
					}
					setConst(in, v)
					consts[in.Dst] = v
					continue
				}
				if immOK(bv) {
					in.HasImm, in.Imm, in.B = true, bv, NoVal
					changed = true
				}
			} else if aok && immOK(av) {
				in.Cond = swapCond(in.Cond)
				in.A = in.B
				in.HasImm, in.Imm, in.B = true, av, NoVal
				changed = true
			}
		case IRBrCond:
			av, aok := consts[in.A]
			if in.HasImm {
				if aok {
					if evalCond(in.Cond, av, in.Imm) {
						*in = IRIns{Op: IRBr, Label: in.Label}
					} else {
						*in = IRIns{Op: IRLabel, Label: ""} // nop, removed below
					}
					changed = true
					reset()
					continue
				}
			} else if bv, bok := consts[in.B]; bok {
				if aok {
					if evalCond(in.Cond, av, bv) {
						*in = IRIns{Op: IRBr, Label: in.Label}
					} else {
						*in = IRIns{Op: IRLabel, Label: ""}
					}
					changed = true
					reset()
					continue
				}
				if immOK(bv) {
					in.HasImm, in.Imm, in.B = true, bv, NoVal
					changed = true
				}
			} else if aok && immOK(av) {
				in.Cond = swapCond(in.Cond)
				in.A = in.B
				in.HasImm, in.Imm, in.B = true, av, NoVal
				changed = true
			}
		case IRCall:
			if in.Dst != NoVal && len(in.Args) == 2 {
				av, aok := consts[in.Args[0]]
				bv, bok := consts[in.Args[1]]
				if aok && bok {
					if v, ok := evalRuntimeCall(in.Sym, av, bv); ok {
						setConst(in, v)
						consts[in.Dst] = v
						continue
					}
				}
				if bok {
					if reduceShiftCall(in, in.Args[0], bv) {
						changed = true
						// fall through to the generic def-kill below
					}
				}
			}
		case IRLoad, IRLoadB, IRStore, IRStoreB:
			// Fold a constant-offset address add into the access:
			// v = base + #c ; load [v+0]  =>  load [base+c]
			// (kept simple: only when the add's result is this operand
			// and offsets stay in range — handled by addrFold below)
		}
		// Kill stale constness of redefined destinations.
		if _, def := in.UseDef(); def != NoVal {
			if in.Op != IRConst {
				delete(consts, def)
			}
		}
	}
	// Remove the nop placeholders introduced for dead conditional
	// branches.
	out := f.Ins[:0]
	for _, in := range f.Ins {
		if in.Op == IRLabel && in.Label == "" {
			changed = true
			continue
		}
		out = append(out, in)
	}
	f.Ins = out
	return changed
}

// dropFallthroughBranches removes unconditional branches to the label
// that immediately follows them.
func dropFallthroughBranches(f *IRFunc) bool {
	changed := false
	out := f.Ins[:0]
	for i, in := range f.Ins {
		if in.Op == IRBr {
			j := i + 1
			fall := false
			for j < len(f.Ins) && f.Ins[j].Op == IRLabel {
				if f.Ins[j].Label == in.Label {
					fall = true
					break
				}
				j++
			}
			if fall {
				changed = true
				continue
			}
		}
		out = append(out, in)
	}
	f.Ins = out
	return changed
}

// dropUnreachable removes instructions that no control path reaches.
func dropUnreachable(f *IRFunc) bool {
	n := len(f.Ins)
	if n == 0 {
		return false
	}
	labelAt := map[string]int{}
	for i := range f.Ins {
		if f.Ins[i].Op == IRLabel {
			labelAt[f.Ins[i].Label] = i
		}
	}
	reach := make([]bool, n)
	var stack []int
	push := func(i int) {
		if i < n && !reach[i] {
			reach[i] = true
			stack = append(stack, i)
		}
	}
	push(0)
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		in := &f.Ins[i]
		switch in.Op {
		case IRBr:
			push(labelAt[in.Label])
		case IRBrCond:
			push(labelAt[in.Label])
			push(i + 1)
		case IRRet:
		default:
			push(i + 1)
		}
	}
	changed := false
	out := f.Ins[:0]
	for i, in := range f.Ins {
		if !reach[i] {
			changed = true
			continue
		}
		out = append(out, in)
	}
	f.Ins = out
	return changed
}

// dropUnusedLabels removes label pseudo-instructions nothing branches to
// (merging straight-line runs, which widens both constant propagation and
// the basic blocks PA mines).
func dropUnusedLabels(f *IRFunc) bool {
	used := map[string]bool{}
	for i := range f.Ins {
		switch f.Ins[i].Op {
		case IRBr, IRBrCond:
			used[f.Ins[i].Label] = true
		}
	}
	changed := false
	out := f.Ins[:0]
	for _, in := range f.Ins {
		if in.Op == IRLabel && !used[in.Label] {
			changed = true
			continue
		}
		out = append(out, in)
	}
	f.Ins = out
	return changed
}

// deadCodeElim removes pure instructions whose results are never used.
func deadCodeElim(f *IRFunc) bool {
	uses := map[Val]int{}
	for i := range f.Ins {
		us, _ := f.Ins[i].UseDef()
		for _, u := range us {
			uses[u]++
		}
	}
	pure := func(op IROp) bool {
		switch op {
		case IRConst, IRMov, IRBin, IRNeg, IRNot, IRCmp, IRAddrG, IRAddrL, IRLoad, IRLoadB:
			return true
		}
		return false
	}
	changed := false
	out := f.Ins[:0]
	for _, in := range f.Ins {
		if pure(in.Op) && in.Dst != NoVal && uses[in.Dst] == 0 {
			changed = true
			continue
		}
		out = append(out, in)
	}
	f.Ins = out
	return changed
}
