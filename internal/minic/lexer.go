// Package minic is a small C-subset compiler front end: lexer, parser,
// type checker and IR generator. It plays the role gcc -Os plays in the
// paper: producing realistic, template-generated ARM-style code for the
// MiBench-like benchmark programs in internal/bench, so that procedural
// abstraction sees the kind of duplication real compilers emit.
//
// The language: int (32-bit) and char (8-bit) scalars, pointers, fixed
// arrays, globals with initialisers, functions (up to 4 parameters),
// if/else, while/do/for, break/continue/return, the usual expression
// operators with C precedence, and a handful of builtins (putc, getc,
// puts, printi, clock, exit) that bottom out in the runtime library.
package minic

import (
	"fmt"
	"strings"
)

// TokKind classifies tokens.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNum
	TokStr
	TokChar
	TokPunct
	TokKeyword
)

// Token is one lexeme.
type Token struct {
	Kind TokKind
	Text string
	Num  int32
	Line int
}

var keywords = map[string]bool{
	"int": true, "char": true, "void": true, "if": true, "else": true,
	"while": true, "for": true, "do": true, "return": true, "break": true,
	"continue": true, "unsigned": true, "const": true, "static": true,
}

// LexError reports a lexing failure.
type LexError struct {
	Line int
	Msg  string
}

func (e *LexError) Error() string { return fmt.Sprintf("minic: line %d: %s", e.Line, e.Msg) }

// punctuators, longest first so maximal munch works.
var puncts = []string{
	"<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
	"(", ")", "{", "}", "[", "]", ";", ",",
}

// Lex tokenises src.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= n {
				return nil, &LexError{line, "unterminated comment"}
			}
			i += 2
		case isIdentStart(c):
			j := i
			for j < n && isIdentCont(src[j]) {
				j++
			}
			text := src[i:j]
			kind := TokIdent
			if keywords[text] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: text, Line: line})
			i = j
		case c >= '0' && c <= '9':
			j := i
			base := int32(10)
			if c == '0' && j+1 < n && (src[j+1] == 'x' || src[j+1] == 'X') {
				base = 16
				j += 2
			}
			v := int32(0)
			start := j
			for j < n {
				d := digitVal(src[j], base)
				if d < 0 {
					break
				}
				v = v*base + d
				j++
			}
			if base == 16 && j == start {
				return nil, &LexError{line, "bad hex literal"}
			}
			toks = append(toks, Token{Kind: TokNum, Num: v, Text: src[i:j], Line: line})
			i = j
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < n && src[j] != '"' {
				ch, nj, err := unescape(src, j, line)
				if err != nil {
					return nil, err
				}
				sb.WriteByte(ch)
				j = nj
			}
			if j >= n {
				return nil, &LexError{line, "unterminated string"}
			}
			toks = append(toks, Token{Kind: TokStr, Text: sb.String(), Line: line})
			i = j + 1
		case c == '\'':
			j := i + 1
			if j >= n {
				return nil, &LexError{line, "unterminated char literal"}
			}
			ch, nj, err := unescape(src, j, line)
			if err != nil {
				return nil, err
			}
			if nj >= n || src[nj] != '\'' {
				return nil, &LexError{line, "unterminated char literal"}
			}
			toks = append(toks, Token{Kind: TokChar, Num: int32(ch), Text: string(ch), Line: line})
			i = nj + 1
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, Token{Kind: TokPunct, Text: p, Line: line})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, &LexError{line, fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func digitVal(c byte, base int32) int32 {
	var v int32
	switch {
	case c >= '0' && c <= '9':
		v = int32(c - '0')
	case c >= 'a' && c <= 'f':
		v = int32(c-'a') + 10
	case c >= 'A' && c <= 'F':
		v = int32(c-'A') + 10
	default:
		return -1
	}
	if v >= base {
		return -1
	}
	return v
}

func unescape(src string, j int, line int) (byte, int, error) {
	if src[j] != '\\' {
		return src[j], j + 1, nil
	}
	if j+1 >= len(src) {
		return 0, 0, &LexError{line, "bad escape"}
	}
	switch src[j+1] {
	case 'n':
		return '\n', j + 2, nil
	case 't':
		return '\t', j + 2, nil
	case 'r':
		return '\r', j + 2, nil
	case '0':
		return 0, j + 2, nil
	case '\\':
		return '\\', j + 2, nil
	case '\'':
		return '\'', j + 2, nil
	case '"':
		return '"', j + 2, nil
	}
	return 0, 0, &LexError{line, fmt.Sprintf("bad escape \\%c", src[j+1])}
}
