package core

import (
	"testing"

	"graphpa/internal/codegen"
	"graphpa/internal/pa"
)

func TestProfileOneRound(t *testing.T) {
	img, err := Build(demo, codegen.Options{Schedule: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"edgar"} {
		m, _ := MinerByName(n)
		res, _, err := Optimize(img, m, pa.Options{MaxRounds: 1})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s round1: before=%d after=%d dur=%v ex=%+v", n, res.Before, res.After, res.Duration, res.Extractions)
	}
}
