package core

import (
	"strings"
	"testing"

	"graphpa/internal/codegen"
	"graphpa/internal/pa"
)

const demo = `
int acc;
int step(int x, int k) {
	int t = x * 3 + k;
	t = t ^ (t << 2);
	return t;
}
int twirl(int x, int k) {
	int t = x * 3 + k;
	t = t ^ (t << 2);
	return t + 1;
}
int main() {
	acc = 0;
	for (int i = 0; i < 20; i += 1) {
		acc += step(acc, i);
		acc += twirl(acc, i);
		acc = acc ^ (acc >> 3);
	}
	printi(acc);
	putc(10);
	return acc & 127;
}
`

func TestBuildAndRun(t *testing.T) {
	img, err := Build(demo, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	code, out, err := Run(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(out, "\n") || code < 0 {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestMinerByName(t *testing.T) {
	for _, n := range []string{"sfx", "dgspan", "edgar", "edgar-canon"} {
		m, err := MinerByName(n)
		if err != nil || m.Name() != n {
			t.Errorf("MinerByName(%q) = %v, %v", n, m, err)
		}
	}
	if _, err := MinerByName("nope"); err == nil {
		t.Error("unknown miner must error")
	}
}

// TestOptimizeAllMinersPreservesBehaviour is the core end-to-end
// guarantee: compile -> optimize (each miner) -> relink -> run must match
// the unoptimized run.
func TestOptimizeAllMinersPreservesBehaviour(t *testing.T) {
	img, err := Build(demo, codegen.Options{Schedule: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"sfx", "dgspan", "edgar", "edgar-canon"} {
		m, err := MinerByName(n)
		if err != nil {
			t.Fatal(err)
		}
		res, out, err := Optimize(img, m, pa.Options{})
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if err := VerifyEquivalent(img, out, nil); err != nil {
			t.Errorf("%s: %v", n, err)
		}
		if res.After > res.Before {
			t.Errorf("%s: grew the binary: %d -> %d", n, res.Before, res.After)
		}
		t.Logf("%s: %d -> %d (%d extractions)", n, res.Before, res.After, len(res.Extractions))
	}
}

func TestVerifyEquivalentDetectsDifference(t *testing.T) {
	a, err := Build("int main() { return 1; }", codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build("int main() { return 2; }", codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyEquivalent(a, b, nil); err == nil {
		t.Error("differing exits must be detected")
	}
	c, err := Build(`int main() { puts("x"); return 1; }`, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyEquivalent(a, c, nil); err == nil {
		t.Error("differing outputs must be detected")
	}
}
