// Package core wires the whole system together: it is the paper's
// pipeline (§2.1) as one API. Compile mini-C with the template code
// generator, statically link against the runtime, decompile the binary,
// mine the basic-block data-flow graphs with SFX / DgSpan / Edgar, extract
// until fixpoint, and re-link a smaller, behaviourally identical binary.
package core

import (
	"context"
	"fmt"

	"graphpa/internal/asm"
	"graphpa/internal/codegen"
	"graphpa/internal/emu"
	"graphpa/internal/link"
	"graphpa/internal/loader"
	"graphpa/internal/pa"
	"graphpa/internal/sfx"
)

// Build compiles mini-C source and statically links it with the runtime
// library into an executable image.
func Build(src string, opts codegen.Options) (*link.Image, error) {
	unit, err := codegen.Compile(src, opts)
	if err != nil {
		return nil, err
	}
	rt, err := link.RuntimeUnit()
	if err != nil {
		return nil, err
	}
	return link.Link(unit, rt)
}

// BuildAsm assembles and links a raw assembly unit (no runtime library;
// the source must define _start).
func BuildAsm(src string) (*link.Image, error) {
	unit, err := asm.Parse(src)
	if err != nil {
		return nil, err
	}
	return link.Link(unit)
}

// MinerNames lists the available procedural-abstraction miners in the
// paper's order.
var MinerNames = []string{"sfx", "dgspan", "edgar"}

// MinerByName returns a miner implementation: "sfx" (suffix-sequence
// baseline), "dgspan" (graph-based support), "edgar" (embedding-based
// with MIS), or "edgar-canon" (Edgar plus the paper's future-work
// canonical instruction matching).
func MinerByName(name string) (pa.Miner, error) {
	switch name {
	case "sfx":
		return &sfx.Miner{}, nil
	case "dgspan":
		return &pa.GraphMiner{}, nil
	case "edgar":
		return &pa.GraphMiner{Embedding: true}, nil
	case "edgar-canon":
		return &pa.GraphMiner{Embedding: true, CanonicalMatch: true}, nil
	}
	return nil, fmt.Errorf("core: unknown miner %q (have sfx, dgspan, edgar, edgar-canon)", name)
}

// Optimize runs post-link-time procedural abstraction on an image and
// returns the result together with the re-linked optimized image.
func Optimize(img *link.Image, miner pa.Miner, opts pa.Options) (*pa.Result, *link.Image, error) {
	return OptimizeContext(context.Background(), img, miner, opts)
}

// OptimizeContext is Optimize under a cancellation context: when ctx is
// cancelled the mining run is abandoned and ctx's error returned — the
// contract the compaction service relies on to drop work for
// disconnected clients.
func OptimizeContext(ctx context.Context, img *link.Image, miner pa.Miner, opts pa.Options) (*pa.Result, *link.Image, error) {
	prog, err := loader.Load(img)
	if err != nil {
		return nil, nil, err
	}
	res, err := pa.OptimizeContext(ctx, prog, miner, opts)
	if err != nil {
		return nil, nil, err
	}
	out, err := res.Program.Relink()
	if err != nil {
		return nil, nil, fmt.Errorf("core: relink after PA: %w", err)
	}
	return res, out, nil
}

// Run executes an image to completion and returns its exit code and
// stdout.
func Run(img *link.Image, stdin []byte) (int32, string, error) {
	m := emu.New(img, stdin)
	code, err := m.Run()
	if err != nil {
		return -1, m.Stdout.String(), err
	}
	return code, m.Stdout.String(), nil
}

// VerifyEquivalent runs two images on the same input and reports whether
// their observable behaviour (exit code and stdout) matches — the
// differential check applied after every optimization in tests and
// benchmarks.
func VerifyEquivalent(a, b *link.Image, stdin []byte) error {
	ca, oa, err := Run(a, stdin)
	if err != nil {
		return fmt.Errorf("core: baseline run failed: %w", err)
	}
	cb, ob, err := Run(b, stdin)
	if err != nil {
		return fmt.Errorf("core: optimized run failed: %w", err)
	}
	if ca != cb {
		return fmt.Errorf("core: exit codes differ: %d vs %d", ca, cb)
	}
	if oa != ob {
		return fmt.Errorf("core: outputs differ: %q vs %q", oa, ob)
	}
	return nil
}
