package link

import (
	"encoding/binary"
	"sort"
)

// The stable image encoding: a self-contained little-endian byte form of
// an Image that round-trips exactly and is deterministic — equal images
// produce equal bytes (the symbol table is emitted in sorted name order),
// so the encoding doubles as a content address for result caches and
// future on-disk persistence.
//
// Layout (all integers little-endian uint32):
//
//	magic "GPA\x01" | nWords TextWords Entry nSyms nRelocs |
//	words… | (nameLen name addr)… | relocs…

var imageMagic = [4]byte{'G', 'P', 'A', 1}

// Encode serializes the image into its stable byte form.
func (img *Image) Encode() []byte {
	names := make([]string, 0, len(img.Symbols))
	for n := range img.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)

	size := 4 + 5*4 + 4*len(img.Words) + 4*len(img.Relocs)
	for _, n := range names {
		size += 8 + len(n)
	}
	out := make([]byte, 0, size)
	out = append(out, imageMagic[:]...)
	u32 := func(v int) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		out = append(out, b[:]...)
	}
	u32(len(img.Words))
	u32(img.TextWords)
	u32(img.Entry)
	u32(len(names))
	u32(len(img.Relocs))
	for _, w := range img.Words {
		u32(int(w))
	}
	for _, n := range names {
		u32(len(n))
		out = append(out, n...)
		u32(img.Symbols[n])
	}
	for _, r := range img.Relocs {
		u32(r)
	}
	return out
}

// Decode reverses Encode, validating the framing.
func (img *Image) decodeInto(data []byte) error {
	pos := 0
	u32 := func() (uint32, bool) {
		if pos+4 > len(data) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(data[pos:])
		pos += 4
		return v, true
	}
	if len(data) < 4 || string(data[:4]) != string(imageMagic[:]) {
		return errf("decode: bad magic (not a graphpa image)")
	}
	pos = 4
	nWords, ok1 := u32()
	textWords, ok2 := u32()
	entry, ok3 := u32()
	nSyms, ok4 := u32()
	nRelocs, ok5 := u32()
	if !(ok1 && ok2 && ok3 && ok4 && ok5) {
		return errf("decode: truncated header")
	}
	if int(textWords) > int(nWords) {
		return errf("decode: TextWords %d exceeds image size %d", textWords, nWords)
	}
	if pos+4*int(nWords) > len(data) {
		return errf("decode: truncated word section")
	}
	img.Words = make([]uint32, nWords)
	for i := range img.Words {
		img.Words[i], _ = u32()
	}
	img.TextWords = int(textWords)
	img.Entry = int(entry)
	img.Symbols = make(map[string]int, nSyms)
	for i := 0; i < int(nSyms); i++ {
		nameLen, ok := u32()
		if !ok || pos+int(nameLen) > len(data) {
			return errf("decode: truncated symbol table")
		}
		name := string(data[pos : pos+int(nameLen)])
		pos += int(nameLen)
		addr, ok := u32()
		if !ok {
			return errf("decode: truncated symbol table")
		}
		if _, dup := img.Symbols[name]; dup {
			return errf("decode: duplicate symbol %q", name)
		}
		img.Symbols[name] = int(addr)
	}
	if nRelocs > 0 {
		img.Relocs = make([]int, nRelocs)
		for i := range img.Relocs {
			v, ok := u32()
			if !ok {
				return errf("decode: truncated relocation table")
			}
			img.Relocs[i] = int(v)
		}
	}
	if pos != len(data) {
		return errf("decode: %d trailing bytes", len(data)-pos)
	}
	return nil
}

// Decode parses a stable encoding back into an Image.
func Decode(data []byte) (*Image, error) {
	img := &Image{}
	if err := img.decodeInto(data); err != nil {
		return nil, err
	}
	return img, nil
}

// Hash returns the hex SHA-256 of the stable encoding — the image's
// content address.
func (img *Image) Hash() string {
	return ContentAddress(img.Encode())
}
