package link

import (
	"strings"
	"testing"

	"graphpa/internal/arm"
	"graphpa/internal/asm"
)

func mustParse(t *testing.T, src string) *asm.Unit {
	t.Helper()
	u, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestLinkMinimal(t *testing.T) {
	u := mustParse(t, `
_start:
	mov r0, #0
	swi 0
`)
	img, err := Link(u)
	if err != nil {
		t.Fatal(err)
	}
	if img.TextWords != 2 || len(img.Words) != 2 {
		t.Errorf("TextWords=%d len=%d", img.TextWords, len(img.Words))
	}
	if img.Entry != 0 {
		t.Errorf("Entry=%d", img.Entry)
	}
	if img.Symbols["_start"] != 0 {
		t.Error("missing _start symbol")
	}
}

func TestLinkBranchResolution(t *testing.T) {
	u := mustParse(t, `
_start:
	b skip
	mov r0, #1
skip:
	swi 0
`)
	img, err := Link(u)
	if err != nil {
		t.Fatal(err)
	}
	in, off := arm.Decode(img.Words[0])
	if in.Op != arm.B || off != 2 {
		t.Errorf("decoded %s off=%d, want b off=2", in.Op, off)
	}
}

func TestLinkLiteralPool(t *testing.T) {
	u := mustParse(t, `
_start:
	ldr r0, =val
	ldr r1, =1000
	ldr r2, =val
	swi 0
	.pool
.data
val:
	.word 42
`)
	lay, err := BuildLayout(u)
	if err != nil {
		t.Fatal(err)
	}
	// Two pool entries: =val (shared) and =1000.
	words := 0
	var loads []int
	for i := range lay.Text {
		if lay.Text[i].Op == arm.WORD {
			words++
		}
		if lay.Text[i].IsLiteralLoad() {
			loads = append(loads, i)
		}
	}
	if words != 2 {
		t.Errorf("pool entries = %d, want 2", words)
	}
	if len(loads) != 3 {
		t.Fatalf("found %d literal loads", len(loads))
	}
	if lay.PoolSym[loads[0]] != lay.PoolSym[loads[2]] {
		t.Error("equal literals must share a pool slot")
	}
	if lay.PoolSym[loads[0]] == lay.PoolSym[loads[1]] {
		t.Error("different literals must not share a pool slot")
	}

	img, err := Link(u)
	if err != nil {
		t.Fatal(err)
	}
	// Word 0 is "ldr r0, [pc, #off]" in word-offset convention.
	in, _ := arm.Decode(img.Words[0])
	if in.Op != arm.LDR || in.Rn != arm.PC || !in.HasImm {
		t.Fatalf("literal load encoded as %s", in.String())
	}
	poolAddr := 0 + int(in.Imm)*4
	got := img.Words[poolAddr/4]
	if got != uint32(img.Symbols["val"]) {
		t.Errorf("pool word = %#x, want address of val %#x", got, img.Symbols["val"])
	}
	// The =1000 slot holds the constant itself.
	in1, _ := arm.Decode(img.Words[1])
	pool1 := 4 + int(in1.Imm)*4
	if img.Words[pool1/4] != 1000 {
		t.Errorf("const pool word = %d, want 1000", img.Words[pool1/4])
	}
}

func TestLinkPoolAtFallthroughFails(t *testing.T) {
	u := mustParse(t, `
_start:
	ldr r0, =12345
	.pool
	swi 0
`)
	if _, err := Link(u); err == nil {
		t.Fatal("pool flush in fall-through position must fail")
	} else if !strings.Contains(err.Error(), "fall-through") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestLinkDataLayout(t *testing.T) {
	u := mustParse(t, `
_start:
	swi 0
.data
a:
	.word 1
s:
	.asciz "abc"
b:
	.word 2
ptr:
	.word a
`)
	img, err := Link(u)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := img.Symbols["a"], img.Symbols["b"]
	if sa%4 != 0 || sb%4 != 0 {
		t.Error("data labels must be word aligned")
	}
	bytes := img.Bytes()
	if string(bytes[img.Symbols["s"]:img.Symbols["s"]+4]) != "abc\x00" {
		t.Error("string bytes wrong")
	}
	if img.Words[sa/4] != 1 || img.Words[sb/4] != 2 {
		t.Error("data words wrong")
	}
	if img.Words[img.Symbols["ptr"]/4] != uint32(sa) {
		t.Error("data relocation wrong")
	}
}

func TestLinkErrors(t *testing.T) {
	// Undefined symbol.
	u := mustParse(t, "_start:\n\tb nowhere\n")
	if _, err := Link(u); err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Errorf("want undefined symbol error, got %v", err)
	}
	// Duplicate symbol.
	u = mustParse(t, "_start:\n_start:\n\tswi 0\n")
	if _, err := Link(u); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("want duplicate symbol error, got %v", err)
	}
	// Missing entry.
	u = mustParse(t, "main:\n\tswi 0\n")
	if _, err := Link(u); err == nil {
		t.Error("want missing _start error")
	}
}

func TestLinkMultipleUnits(t *testing.T) {
	a := mustParse(t, "_start:\n\tbl helper\n\tswi 0\n")
	b := mustParse(t, "helper:\n\tbx lr\n")
	img, err := Link(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := img.Symbols["helper"]; !ok {
		t.Error("helper symbol missing")
	}
}

func TestSymbolAtPrefersNamed(t *testing.T) {
	u := mustParse(t, "_start:\nmain:\n\tswi 0\n")
	img, err := Link(u)
	if err != nil {
		t.Fatal(err)
	}
	if got := img.SymbolAt(0); got != "_start" {
		t.Errorf("SymbolAt(0) = %q", got)
	}
	if got := img.SymbolAt(999); got != "" {
		t.Errorf("SymbolAt(999) = %q", got)
	}
}
