// Package link is the static linker: it lays out assembled units, places
// literal pools interwoven with the code (the paper's Fig. 10 idiom),
// resolves symbols and produces an executable Image of fixed-width 32-bit
// words. The result deliberately looks like the statically linked,
// dietlibc-style binaries the paper optimizes: one text section with
// embedded data pools, followed by a data section.
package link

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"graphpa/internal/arm"
	"graphpa/internal/asm"
)

// Image is a linked executable.
//
// Besides the raw words it records the text/data boundary, the symbol
// table and relocation entries (the word indices whose values are absolute
// addresses). Post-link-time rewriters universally require relocation
// information to distinguish addresses from constants — Debray et al.'s
// compactor and Diablo both demand relocatable inputs — so our linker
// keeps it, while everything else (labels, basic blocks, interwoven data)
// is reconstructed from the bytes by internal/loader.
type Image struct {
	Words     []uint32       // text section followed by data section
	TextWords int            // number of words belonging to the text section
	Entry     int            // byte address of the entry symbol
	Symbols   map[string]int // symbol -> byte address (text and data)
	Relocs    []int          // word indices holding absolute byte addresses
}

// EntrySymbol is the linker's required entry point.
const EntrySymbol = "_start"

// LinkError reports a linking failure.
type LinkError struct{ Msg string }

func (e *LinkError) Error() string { return "link: " + e.Msg }

func errf(format string, args ...any) error {
	return &LinkError{Msg: fmt.Sprintf(format, args...)}
}

// Layout is the resolved pre-encoding form of an image: the final text
// stream with literal pools materialised as labelled WORD
// pseudo-instructions and every literal load annotated with its pool
// symbol. The loader's output is compared against layouts in tests.
type Layout struct {
	Text    []arm.Instr
	Data    []asm.DataItem
	PoolSym map[int]string // text index of literal load -> pool symbol
}

// BuildLayout concatenates the units' text streams and flushes pending
// literal-pool entries at every .pool barrier (and at end of text).
// Flushing at a point where execution could fall through would corrupt the
// program, so a non-empty flush must follow an unconditional terminator.
func BuildLayout(units ...*asm.Unit) (*Layout, error) {
	lay := &Layout{PoolSym: map[int]string{}}
	poolN := 0

	type pending struct {
		target string
		loads  []int // indices in lay.Text awaiting this pool symbol
	}
	var queue []pending
	enqueue := func(target string, loadIdx int) {
		for i := range queue {
			if queue[i].target == target {
				queue[i].loads = append(queue[i].loads, loadIdx)
				return
			}
		}
		queue = append(queue, pending{target: target, loads: []int{loadIdx}})
	}
	flush := func(afterIdx int) error {
		if len(queue) == 0 {
			return nil
		}
		if afterIdx >= 0 {
			prev := lastRealInstr(lay.Text)
			if prev == nil || !prev.IsTerminator() {
				return errf("literal pool flushed at fall-through position (add .pool after a return or branch)")
			}
		}
		for _, p := range queue {
			sym := fmt.Sprintf(".LP%d", poolN)
			poolN++
			lbl := arm.NewInstr(arm.LABEL)
			lbl.Target = sym
			w := arm.NewInstr(arm.WORD)
			if strings.HasPrefix(p.target, arm.ConstPrefix) {
				v, err := strconv.ParseInt(p.target[len(arm.ConstPrefix):], 10, 64)
				if err != nil {
					return errf("bad constant literal %q", p.target)
				}
				w.Imm = int32(v)
			} else {
				w.Target = p.target
			}
			lay.Text = append(lay.Text, lbl, w)
			for _, li := range p.loads {
				lay.PoolSym[li] = sym
			}
		}
		queue = nil
		return nil
	}

	for _, u := range units {
		for i := range u.Text {
			in := u.Text[i]
			if asm.IsPoolBarrier(&in) {
				if err := flush(len(lay.Text)); err != nil {
					return nil, err
				}
				continue
			}
			if in.IsLiteralLoad() {
				lay.Text = append(lay.Text, in)
				enqueue(in.Target, len(lay.Text)-1)
				continue
			}
			lay.Text = append(lay.Text, in)
		}
		lay.Data = append(lay.Data, u.Data...)
	}
	if err := flush(-1); err != nil {
		return nil, err
	}
	return lay, nil
}

func lastRealInstr(text []arm.Instr) *arm.Instr {
	for i := len(text) - 1; i >= 0; i-- {
		if text[i].Op != arm.LABEL && text[i].Op != arm.WORD {
			return &text[i]
		}
	}
	return nil
}

// Link assembles units into an executable image. Every unit's labels live
// in one global namespace; the image entry point is the _start symbol.
func Link(units ...*asm.Unit) (*Image, error) {
	lay, err := BuildLayout(units...)
	if err != nil {
		return nil, err
	}
	return EncodeLayout(lay)
}

// EncodeLayout assigns addresses, resolves symbols and encodes a layout
// into an image.
func EncodeLayout(lay *Layout) (*Image, error) {
	syms := map[string]int{}
	define := func(name string, addr int) error {
		if _, dup := syms[name]; dup {
			return errf("duplicate symbol %q", name)
		}
		syms[name] = addr
		return nil
	}

	// Pass 1: addresses. Text: every non-label occupies one word.
	addrs := make([]int, len(lay.Text)) // byte address per text entry
	byteAddr := 0
	for i := range lay.Text {
		in := &lay.Text[i]
		addrs[i] = byteAddr
		if in.Op == arm.LABEL {
			if err := define(in.Target, byteAddr); err != nil {
				return nil, err
			}
			continue
		}
		byteAddr += 4
	}
	textBytes := byteAddr
	if textBytes%4 != 0 {
		return nil, errf("internal: unaligned text")
	}

	// Data section layout (word-aligned labels and words, byte-packed
	// strings).
	dataStart := textBytes
	cursor := dataStart
	align4 := func() { cursor = (cursor + 3) &^ 3 }
	type dataPatch struct {
		addr  int
		value int32
		sym   string
		bytes []byte
	}
	var patches []dataPatch
	for _, d := range lay.Data {
		switch d.Kind {
		case asm.DataLabel:
			align4()
			if err := define(d.Label, cursor); err != nil {
				return nil, err
			}
		case asm.DataWord:
			align4()
			patches = append(patches, dataPatch{addr: cursor, value: d.Value, sym: d.Sym})
			cursor += 4
		case asm.DataBytes:
			patches = append(patches, dataPatch{addr: cursor, bytes: d.Bytes})
			cursor += len(d.Bytes)
		case asm.DataSpace:
			cursor += int(d.Space)
		}
	}
	align4()
	totalBytes := cursor

	lookup := func(name string) (int, error) {
		a, ok := syms[name]
		if !ok {
			return 0, errf("undefined symbol %q", name)
		}
		return a, nil
	}

	// Pass 2: encode.
	img := &Image{
		Words:     make([]uint32, totalBytes/4),
		TextWords: textBytes / 4,
		Symbols:   syms,
	}
	for i := range lay.Text {
		in := &lay.Text[i]
		if in.Op == arm.LABEL {
			continue
		}
		widx := addrs[i] / 4
		switch {
		case in.Op == arm.B || in.Op == arm.BL:
			t, err := lookup(in.Target)
			if err != nil {
				return nil, err
			}
			off := int32((t - addrs[i]) / 4)
			w, err := arm.Encode(in, off)
			if err != nil {
				return nil, err
			}
			img.Words[widx] = w
		case in.IsLiteralLoad():
			sym, ok := lay.PoolSym[i]
			if !ok {
				return nil, errf("literal load without pool slot at %s", in.String())
			}
			t, err := lookup(sym)
			if err != nil {
				return nil, err
			}
			off := (t - addrs[i]) / 4 // pc-relative loads use word offsets
			if !arm.FitsImm(int32(off)) {
				return nil, errf("literal pool out of range for %s (insert .pool closer)", in.String())
			}
			resolved := *in
			resolved.Target = ""
			resolved.Rn = arm.PC
			resolved.HasImm = true
			resolved.Imm = int32(off)
			w, err := arm.Encode(&resolved, 0)
			if err != nil {
				return nil, err
			}
			img.Words[widx] = w
		case in.Op == arm.WORD && in.Target != "":
			t, err := lookup(in.Target)
			if err != nil {
				return nil, err
			}
			img.Words[widx] = uint32(t)
			img.Relocs = append(img.Relocs, widx)
		default:
			w, err := arm.Encode(in, 0)
			if err != nil {
				return nil, err
			}
			img.Words[widx] = w
		}
	}

	// Data patches.
	buf := make([]byte, totalBytes-dataStart)
	for _, p := range patches {
		off := p.addr - dataStart
		switch {
		case p.bytes != nil:
			copy(buf[off:], p.bytes)
		case p.sym != "":
			t, err := lookup(p.sym)
			if err != nil {
				return nil, err
			}
			binary.LittleEndian.PutUint32(buf[off:], uint32(t))
			img.Relocs = append(img.Relocs, p.addr/4)
		default:
			binary.LittleEndian.PutUint32(buf[off:], uint32(p.value))
		}
	}
	for i := 0; i < len(buf); i += 4 {
		img.Words[dataStart/4+i/4] = binary.LittleEndian.Uint32(buf[i : i+4])
	}

	entry, err := lookup(EntrySymbol)
	if err != nil {
		return nil, err
	}
	img.Entry = entry
	return img, nil
}

// Bytes returns the image as a little-endian byte slice (the loaded
// memory contents starting at address 0).
func (img *Image) Bytes() []byte {
	out := make([]byte, len(img.Words)*4)
	for i, w := range img.Words {
		binary.LittleEndian.PutUint32(out[i*4:], w)
	}
	return out
}

// SymbolAt returns the name of a symbol defined exactly at byte address
// a, preferring non-generated names, or "".
func (img *Image) SymbolAt(a int) string {
	best := ""
	for name, addr := range img.Symbols {
		if addr != a {
			continue
		}
		if best == "" || (strings.HasPrefix(best, ".") && !strings.HasPrefix(name, ".")) ||
			(strings.HasPrefix(best, ".") == strings.HasPrefix(name, ".") && name < best) {
			best = name
		}
	}
	return best
}
