package link

import (
	"sync"

	"graphpa/internal/asm"
)

// RuntimeSource is the static runtime library every compiled program
// links against — the stand-in for dietlibc in the paper's setup: small,
// hand-written, redundancy-free assembly, statically linked so that the
// optimizer sees library and application code together. Division, modulo
// and variable shifts implement the compiler's ABI helpers; the I/O
// routines bottom out in the emulator's syscalls.
const RuntimeSource = `
@ ---- runtime library (dietlibc stand-in) ----
.text

@ unsigned divide: r0 / r1 -> quotient r0, remainder r1
__udivsi3:
	push {r4, r5}
	mov r2, #0
	mov r3, #0
	mov r4, #32
.Lud_loop:
	mov r5, r0, lsr #31
	mov r3, r3, lsl #1
	orr r3, r3, r5
	mov r0, r0, lsl #1
	mov r2, r2, lsl #1
	cmp r3, r1
	subcs r3, r3, r1
	orrcs r2, r2, #1
	sub r4, r4, #1
	cmp r4, #0
	bne .Lud_loop
	mov r0, r2
	mov r1, r3
	pop {r4, r5}
	bx lr

__umodsi3:
	push {lr}
	bl __udivsi3
	mov r0, r1
	pop {pc}

@ signed divide
__divsi3:
	push {r4, lr}
	eor r4, r0, r1
	cmp r0, #0
	rsblt r0, r0, #0
	cmp r1, #0
	rsblt r1, r1, #0
	bl __udivsi3
	cmp r4, #0
	rsblt r0, r0, #0
	pop {r4, pc}

@ signed modulo (sign follows the dividend)
__modsi3:
	push {r4, lr}
	mov r4, r0
	cmp r0, #0
	rsblt r0, r0, #0
	cmp r1, #0
	rsblt r1, r1, #0
	bl __udivsi3
	mov r0, r1
	cmp r4, #0
	rsblt r0, r0, #0
	pop {r4, pc}

@ variable shifts: r0 shifted by r1
__lshl:
	cmp r1, #32
	movcs r0, #0
	bxcs lr
.Lshl_loop:
	cmp r1, #0
	bxle lr
	mov r0, r0, lsl #1
	sub r1, r1, #1
	b .Lshl_loop

__lshr:
	cmp r1, #32
	movcs r0, #0
	bxcs lr
.Lshr_loop:
	cmp r1, #0
	bxle lr
	mov r0, r0, lsr #1
	sub r1, r1, #1
	b .Lshr_loop

__ashr:
	cmp r1, #32
	movcs r0, r0, asr #31
	bxcs lr
.Lasr_loop:
	cmp r1, #0
	bxle lr
	mov r0, r0, asr #1
	sub r1, r1, #1
	b .Lasr_loop

@ ---- I/O ----
putc:
	swi 1
	bx lr

getc:
	swi 2
	bx lr

exit:
	swi 0

clock:
	swi 3
	bx lr

puts:
	push {r4, lr}
	mov r4, r0
.Lputs_loop:
	ldrb r0, [r4], #1
	cmp r0, #0
	popeq {r4, pc}
	swi 1
	b .Lputs_loop

@ print signed decimal
printi:
	push {r4, r5, lr}
	sub sp, sp, #16
	cmp r0, #0
	bge .Lpi_pos
	rsb r4, r0, #0
	mov r0, #45
	swi 1
	mov r0, r4
.Lpi_pos:
	mov r4, sp
	mov r5, #0
.Lpi_div:
	mov r1, #10
	bl __udivsi3
	add r1, r1, #48
	strb r1, [r4], #1
	add r5, r5, #1
	cmp r0, #0
	bne .Lpi_div
.Lpi_out:
	sub r4, r4, #1
	ldrb r0, [r4]
	swi 1
	subs r5, r5, #1
	bne .Lpi_out
	add sp, sp, #16
	pop {r4, r5, pc}

@ ---- memory and strings ----
memcpy:
	cmp r2, #0
	bxle lr
.Lmc_loop:
	ldrb r3, [r1], #1
	strb r3, [r0], #1
	subs r2, r2, #1
	bgt .Lmc_loop
	bx lr

memset:
	cmp r2, #0
	bxle lr
.Lms_loop:
	strb r1, [r0], #1
	subs r2, r2, #1
	bgt .Lms_loop
	bx lr

strlen:
	mov r1, r0
.Lsl_loop:
	ldrb r2, [r1], #1
	cmp r2, #0
	bne .Lsl_loop
	sub r0, r1, r0
	sub r0, r0, #1
	bx lr

strcmp:
.Lsc_loop:
	ldrb r2, [r0], #1
	ldrb r3, [r1], #1
	cmp r2, r3
	bne .Lsc_diff
	cmp r2, #0
	bne .Lsc_loop
	mov r0, #0
	bx lr
.Lsc_diff:
	sub r0, r2, r3
	bx lr

strcpy:
.Lscp_loop:
	ldrb r2, [r1], #1
	strb r2, [r0], #1
	cmp r2, #0
	bne .Lscp_loop
	bx lr

@ ---- deterministic PRNG (LCG), the benchmark input source ----
srand:
	ldr r1, =__rand_state
	str r0, [r1]
	bx lr

rand:
	ldr r1, =__rand_state
	ldr r0, [r1]
	ldr r2, =1103515245
	mul r0, r0, r2
	ldr r2, =12345
	add r0, r0, r2
	str r0, [r1]
	mov r0, r0, lsr #16
	ldr r2, =32767
	and r0, r0, r2
	bx lr
	.pool

.data
__rand_state:
	.word 12345
`

var (
	runtimeOnce sync.Once
	runtimeUnit *asm.Unit
	runtimeErr  error
)

// RuntimeUnit parses the runtime library (cached; the returned unit must
// not be mutated).
func RuntimeUnit() (*asm.Unit, error) {
	runtimeOnce.Do(func() {
		runtimeUnit, runtimeErr = asm.Parse(RuntimeSource)
	})
	return runtimeUnit, runtimeErr
}
