package link

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// The little-endian primitives of the stable image encoding, exported so
// sibling persistent formats (the fragment dictionary in internal/dict)
// share the exact framing and content-address conventions instead of
// inventing parallel ones: uint32 little-endian fields, length-prefixed
// strings, hex SHA-256 of the encoded bytes as the content address.

// AppendU32 appends v to dst in the stable encoding's integer form.
func AppendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

// ReadU32 decodes the uint32 at pos, returning the value, the position
// after it, and whether the buffer held a whole field.
func ReadU32(data []byte, pos int) (v uint32, next int, ok bool) {
	if pos < 0 || pos+4 > len(data) {
		return 0, pos, false
	}
	return binary.LittleEndian.Uint32(data[pos:]), pos + 4, true
}

// ContentAddress returns the hex SHA-256 of data — the same address form
// Image.Hash uses for the stable image encoding.
func ContentAddress(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
