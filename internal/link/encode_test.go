package link

import (
	"bytes"
	"reflect"
	"testing"
)

// linkRich builds an image exercising every encoded field: text with a
// literal pool (relocations), data words with symbol references, strings
// and a BSS-style gap.
func linkRich(t *testing.T) *Image {
	t.Helper()
	u := mustParse(t, `
_start:
	ldr r0, =table
	ldr r1, =65536
	add r0, r0, r1
	mov r0, #0
	swi 0
	.pool
helper:
	mov pc, lr

.data
table:
	.word 1
	.word helper
msg:
	.asciz "hi"
scratch:
	.space 8
`)
	img, err := Link(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Relocs) == 0 {
		t.Fatal("test image has no relocations; encoding coverage lost")
	}
	return img
}

func TestImageEncodeDecodeRoundTrip(t *testing.T) {
	img := linkRich(t)
	enc := img.Encode()
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(img, got) {
		t.Fatalf("round trip diverged:\noriginal: %+v\ndecoded:  %+v", img, got)
	}
	// Encoding is stable: re-encoding the decoded image is byte-identical.
	if !bytes.Equal(enc, got.Encode()) {
		t.Fatal("re-encoding the decoded image produced different bytes")
	}
}

func TestImageHashStable(t *testing.T) {
	a, b := linkRich(t), linkRich(t)
	if a.Hash() != b.Hash() {
		t.Fatal("two identical link runs hash differently")
	}
	// Any content change must move the hash.
	b.Words[0]++
	if a.Hash() == b.Hash() {
		t.Fatal("hash ignored a word change")
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	img := linkRich(t)
	enc := img.Encode()
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("NOPE"), enc[4:]...),
		"truncated": enc[:len(enc)-3],
		"trailing":  append(append([]byte{}, enc...), 0),
		"short hdr": enc[:10],
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted corrupt input", name)
		}
	}
}
