package dict

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphpa/internal/link"
)

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// seedLog creates a dictionary at path with n distinct fragments and
// returns the raw log bytes.
func seedLog(t *testing.T, path string, n int) []byte {
	t.Helper()
	d, err := Open(Options{Path: path})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	frags := make([]Fragment, 0, n)
	for i := 0; i < n; i++ {
		frags = append(frags, testFragment(i+1, (i+1)*10))
	}
	d.Publish(frags)
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read log: %v", err)
	}
	return data
}

// frameBounds parses the log's record frame offsets: frame i spans
// [starts[i], starts[i+1]) with payload at starts[i]+4.
func frameBounds(t *testing.T, data []byte) []int {
	t.Helper()
	starts := []int{len(fileMagic)}
	pos := len(fileMagic)
	for pos < len(data) {
		plen, p, ok := link.ReadU32(data, pos)
		if !ok {
			t.Fatalf("malformed length prefix at %d", pos)
		}
		pos = p + int(plen) + checksumLen
		starts = append(starts, pos)
	}
	return starts
}

func TestRecoverTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frag.dict")
	data := seedLog(t, path, 3)
	starts := frameBounds(t, data)
	if len(starts) != 4 {
		t.Fatalf("expected 3 records, found %d", len(starts)-1)
	}
	// Cut the file mid-way through the last record — a crash mid-append.
	cut := starts[2] + (starts[3]-starts[2])/2
	if err := writeFile(path, data[:cut]); err != nil {
		t.Fatal(err)
	}

	lg, buf := logBuffer()
	d, err := Open(Options{Path: path, Logger: lg})
	if err != nil {
		t.Fatalf("Open after torn tail: %v", err)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want the 2 intact records", d.Len())
	}
	if !strings.Contains(buf.String(), "truncated tail record dropped") {
		t.Fatalf("missing torn-tail warning; log output:\n%s", buf.String())
	}
	// The log is usable again: a subsequent append round-trips.
	d.Publish([]Fragment{testFragment(50, 500)})
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	d2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if d2.Len() != 3 {
		t.Fatalf("Len after recovery+append = %d, want 3", d2.Len())
	}
	if s := d2.Seeds(); s[0].Benefit != 500 {
		t.Fatalf("appended fragment did not survive: best benefit %d", s[0].Benefit)
	}
}

func TestRecoverFlippedByte(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frag.dict")
	data := seedLog(t, path, 3)
	starts := frameBounds(t, data)
	// Flip one byte inside the middle record's payload: its checksum no
	// longer matches, so recovery must skip exactly that record.
	data[starts[1]+4+2] ^= 0xff
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}

	lg, buf := logBuffer()
	d, err := Open(Options{Path: path, Logger: lg})
	if err != nil {
		t.Fatalf("Open after flipped byte: %v", err)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want the 2 intact records", d.Len())
	}
	if !strings.Contains(buf.String(), "corrupt record skipped") {
		t.Fatalf("missing corrupt-record warning; log output:\n%s", buf.String())
	}
	st := d.Stats()
	if st.Skipped != 1 {
		t.Fatalf("Skipped = %d, want 1", st.Skipped)
	}
	// Recovery compacts the corruption away: a plain reopen is clean.
	if st.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", st.Compactions)
	}
	d.Publish([]Fragment{testFragment(60, 600)})
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	lg2, buf2 := logBuffer()
	d2, err := Open(Options{Path: path, Logger: lg2})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if d2.Len() != 3 {
		t.Fatalf("Len after recovery+append = %d, want 3", d2.Len())
	}
	if strings.Contains(buf2.String(), "skipped") {
		t.Fatalf("compacted log still warns on reopen:\n%s", buf2.String())
	}
	if s := d2.Seeds(); s[0].Benefit != 600 {
		t.Fatalf("appended fragment did not survive: best benefit %d", s[0].Benefit)
	}
}

func TestRecoverOversizedLengthPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frag.dict")
	data := seedLog(t, path, 2)
	starts := frameBounds(t, data)
	// Corrupt the second record's length prefix to an absurd value: the
	// frame boundary is unrecoverable, so everything from there is a torn
	// tail.
	garbage := append([]byte(nil), data[:starts[1]]...)
	garbage = link.AppendU32(garbage, 1<<30)
	garbage = append(garbage, data[starts[1]+4:]...)
	if err := writeFile(path, garbage); err != nil {
		t.Fatal(err)
	}

	lg, buf := logBuffer()
	d, err := Open(Options{Path: path, Logger: lg})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer d.Close()
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
	if !strings.Contains(buf.String(), "truncated tail record dropped") {
		t.Fatalf("missing torn-tail warning; log output:\n%s", buf.String())
	}
}
