package dict

import (
	"crypto/sha256"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"graphpa/internal/link"
)

// The on-disk form is an append-only log:
//
//	header: 8 bytes "GPADICT\x01"
//	record: u32 payloadLen | payload | 32-byte SHA-256 of payload
//
// Appends are the only write path during operation, so a crash leaves at
// worst a torn final record. Open scans the log, truncates a torn tail,
// skips any record whose checksum or decoding fails (a warning each),
// and folds duplicate addresses forward (a later record for the same
// fragment supersedes the earlier one — that is how benefit updates are
// made durable without rewriting the file). When the scan drops records
// (corruption, supersession, eviction overflow) the log is compacted —
// rewritten from the live index into a temp file and atomically renamed
// — so the file converges to the index instead of growing unboundedly.

var fileMagic = [8]byte{'G', 'P', 'A', 'D', 'I', 'C', 'T', 1}

const checksumLen = sha256.Size

// maxRecordLen bounds a single record frame; a length prefix beyond it
// is treated as a torn tail (the frame boundary is unrecoverable).
const maxRecordLen = 1 << 26

// Options configures Open. The zero value of every field but Path is a
// sensible default.
type Options struct {
	// Path is the log file; created (with its parent directory) if absent.
	Path string
	// MaxEntries bounds the dictionary; beyond it the lowest-benefit,
	// least-recently-used entries are evicted (default 1024).
	MaxEntries int
	// MaxSeeds bounds what Seeds returns (default 64).
	MaxSeeds int
	// Logger receives recovery and eviction warnings (default: discard).
	Logger *slog.Logger
}

func (o Options) maxEntries() int {
	if o.MaxEntries > 0 {
		return o.MaxEntries
	}
	return 1024
}

func (o Options) maxSeeds() int {
	if o.MaxSeeds > 0 {
		return o.MaxSeeds
	}
	return 64
}

// entry is one live fragment plus its ranking state: seq is a monotonic
// recency stamp (bumped when the entry is served as a seed or
// re-published), the LRU half of the eviction order.
type entry struct {
	frag Fragment
	addr string
	seq  int64
}

// Stats is a counters snapshot for /stats and /metrics.
type Stats struct {
	Entries     int   `json:"entries"`
	LogBytes    int64 `json:"log_bytes"`
	Published   int64 `json:"published"`    // new fragments accepted
	Updated     int64 `json:"updated"`      // benefit/recency bumps of known fragments
	Evicted     int64 `json:"evicted"`      // entries dropped by the size bound
	SeedsServed int64 `json:"seeds_served"` // fragments handed out by Seeds
	Skipped     int64 `json:"skipped"`      // corrupt records skipped on open
	Compactions int64 `json:"compactions"`
}

// Dict is the persistent dictionary. Safe for concurrent use.
type Dict struct {
	mu   sync.Mutex
	opts Options
	log  *slog.Logger
	f    *os.File
	size int64 // current log length

	entries map[string]*entry
	seq     int64
	dead    int // log records no longer backed by a live entry

	stats Stats
}

// Open loads (or creates) the dictionary at opts.Path, recovering from a
// torn tail or corrupt records as described above.
func Open(opts Options) (*Dict, error) {
	lg := opts.Logger
	if lg == nil {
		lg = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if dir := filepath.Dir(opts.Path); dir != "" && dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("dict: %w", err)
		}
	}
	f, err := os.OpenFile(opts.Path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dict: %w", err)
	}
	d := &Dict{opts: opts, log: lg, f: f, entries: map[string]*entry{}}
	if err := d.recover(); err != nil {
		f.Close()
		return nil, err
	}
	// Converge the file to the live index when the scan dropped anything:
	// corrupt or superseded records, or an over-bound tail of evictions.
	if d.dead > 0 || d.stats.Skipped > 0 {
		if err := d.compactLocked(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return d, nil
}

// recover scans the log into the index. Called once, before the Dict is
// shared, so it needs no locking.
func (d *Dict) recover() error {
	data, err := io.ReadAll(d.f)
	if err != nil {
		return fmt.Errorf("dict: %w", err)
	}
	if len(data) == 0 {
		if _, err := d.f.Write(fileMagic[:]); err != nil {
			return fmt.Errorf("dict: %w", err)
		}
		d.size = int64(len(fileMagic))
		return nil
	}
	if len(data) < len(fileMagic) || string(data[:len(fileMagic)]) != string(fileMagic[:]) {
		return fmt.Errorf("dict: %s is not a fragment dictionary (bad magic)", d.opts.Path)
	}
	pos := len(fileMagic)
	for pos < len(data) {
		recStart := pos
		plen, p, ok := link.ReadU32(data, pos)
		if !ok || plen > maxRecordLen || p+int(plen)+checksumLen > len(data) {
			// Torn tail: a crash mid-append. Everything before recStart is
			// intact; drop the rest.
			d.log.Warn("dict: truncated tail record dropped",
				"path", d.opts.Path, "offset", recStart, "lost", len(data)-recStart)
			if err := d.truncateTo(int64(recStart)); err != nil {
				return err
			}
			data = data[:recStart]
			break
		}
		payload := data[p : p+int(plen)]
		sumStart := p + int(plen)
		pos = sumStart + checksumLen
		want := sha256.Sum256(payload)
		if string(want[:]) != string(data[sumStart:pos]) {
			d.stats.Skipped++
			d.log.Warn("dict: corrupt record skipped (checksum mismatch)",
				"path", d.opts.Path, "offset", recStart)
			continue
		}
		frag, addr, err := decodeRecord(payload)
		if err != nil {
			d.stats.Skipped++
			d.log.Warn("dict: corrupt record skipped",
				"path", d.opts.Path, "offset", recStart, "err", err)
			continue
		}
		d.seq++
		if e := d.entries[addr]; e != nil {
			// A later record supersedes: keep the higher benefit, fresher
			// recency. The older record is now dead weight in the log.
			if frag.Benefit > e.frag.Benefit {
				e.frag = *frag
			}
			e.seq = d.seq
			d.dead++
			continue
		}
		d.entries[addr] = &entry{frag: *frag, addr: addr, seq: d.seq}
	}
	d.size = int64(len(data))
	d.evictLocked()
	d.stats.Entries = len(d.entries)
	d.stats.LogBytes = d.size
	return nil
}

func (d *Dict) truncateTo(n int64) error {
	if err := d.f.Truncate(n); err != nil {
		return fmt.Errorf("dict: %w", err)
	}
	if _, err := d.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("dict: %w", err)
	}
	d.size = n
	return nil
}

// evictLocked enforces MaxEntries: victims are the lowest benefit, ties
// broken by least-recent use, then address — a total, deterministic
// order. Eviction is index-only; the log catches up at compaction.
func (d *Dict) evictLocked() {
	over := len(d.entries) - d.opts.maxEntries()
	if over <= 0 {
		return
	}
	victims := make([]*entry, 0, len(d.entries))
	for _, e := range d.entries {
		victims = append(victims, e)
	}
	sort.Slice(victims, func(i, j int) bool {
		a, b := victims[i], victims[j]
		if a.frag.Benefit != b.frag.Benefit {
			return a.frag.Benefit < b.frag.Benefit
		}
		if a.seq != b.seq {
			return a.seq < b.seq
		}
		return a.addr < b.addr
	})
	for _, e := range victims[:over] {
		delete(d.entries, e.addr)
		d.dead++
		d.stats.Evicted++
	}
}

// appendLocked writes one framed record and extends the log size.
func (d *Dict) appendLocked(payload []byte) error {
	frame := make([]byte, 0, 4+len(payload)+checksumLen)
	frame = link.AppendU32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	sum := sha256.Sum256(payload)
	frame = append(frame, sum[:]...)
	if _, err := d.f.Write(frame); err != nil {
		return fmt.Errorf("dict: %w", err)
	}
	d.size += int64(len(frame))
	return nil
}

// compactLocked rewrites the log from the live index (ascending seq, so
// recency survives a reload) into a temp file and renames it into place.
func (d *Dict) compactLocked() error {
	live := make([]*entry, 0, len(d.entries))
	for _, e := range d.entries {
		live = append(live, e)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].seq < live[j].seq })

	tmp := d.opts.Path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("dict: %w", err)
	}
	out := append([]byte(nil), fileMagic[:]...)
	for _, e := range live {
		payload, _ := encodeRecord(&e.frag)
		out = link.AppendU32(out, uint32(len(payload)))
		out = append(out, payload...)
		sum := sha256.Sum256(payload)
		out = append(out, sum[:]...)
	}
	if _, err := nf.Write(out); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("dict: %w", err)
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("dict: %w", err)
	}
	if err := nf.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dict: %w", err)
	}
	if err := os.Rename(tmp, d.opts.Path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dict: %w", err)
	}
	old := d.f
	nf, err = os.OpenFile(d.opts.Path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("dict: %w", err)
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		return fmt.Errorf("dict: %w", err)
	}
	old.Close()
	d.f = nf
	d.size = int64(len(out))
	d.dead = 0
	d.stats.Compactions++
	return nil
}

// validFragment gates what the dictionary stores: anything else is a
// waste of revalidation work downstream.
func validFragment(f *Fragment) bool {
	if f.Size < 2 || f.Benefit <= 0 || len(f.Occs) < 2 {
		return false
	}
	for i := range f.Occs {
		o := &f.Occs[i]
		if len(o.DFS) != f.Size || len(o.Instrs) == 0 {
			return false
		}
		for _, dfs := range o.DFS {
			if dfs < 0 || dfs >= len(o.Instrs) {
				return false
			}
		}
	}
	return true
}

// Publish implements Source: dedupe by content address, append new
// fragments (and benefit improvements) to the log, bump recency of known
// ones, evict past the size bound, compact when the dead-record backlog
// exceeds the live set.
func (d *Dict) Publish(frags []Fragment) {
	if len(frags) == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.f == nil {
		return // closed
	}
	wrote := false
	for i := range frags {
		f := &frags[i]
		if !validFragment(f) {
			continue
		}
		payload, addr := encodeRecord(f)
		d.seq++
		if e := d.entries[addr]; e != nil {
			e.seq = d.seq
			d.stats.Updated++
			if f.Benefit > e.frag.Benefit {
				e.frag = *f
				// Make the improvement durable; the superseded record
				// becomes dead weight until compaction.
				if err := d.appendLocked(payload); err != nil {
					d.log.Warn("dict: append failed", "err", err)
					return
				}
				d.dead++
				wrote = true
			}
			continue
		}
		if err := d.appendLocked(payload); err != nil {
			d.log.Warn("dict: append failed", "err", err)
			return
		}
		d.entries[addr] = &entry{frag: *f, addr: addr, seq: d.seq}
		d.stats.Published++
		wrote = true
	}
	d.evictLocked()
	if d.dead > len(d.entries) && d.dead > 64 {
		if err := d.compactLocked(); err != nil {
			d.log.Warn("dict: compaction failed", "err", err)
		}
	} else if wrote {
		if err := d.f.Sync(); err != nil {
			d.log.Warn("dict: sync failed", "err", err)
		}
	}
	d.stats.Entries = len(d.entries)
	d.stats.LogBytes = d.size
}

// Seeds implements Source: the top-MaxSeeds live fragments by descending
// benefit (address as the deterministic tie-break), best first. Serving
// an entry counts as use for the eviction order.
func (d *Dict) Seeds() []Fragment {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.entries) == 0 {
		return nil
	}
	all := make([]*entry, 0, len(d.entries))
	for _, e := range d.entries {
		all = append(all, e)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.frag.Benefit != b.frag.Benefit {
			return a.frag.Benefit > b.frag.Benefit
		}
		return a.addr < b.addr
	})
	n := d.opts.maxSeeds()
	if n > len(all) {
		n = len(all)
	}
	out := make([]Fragment, 0, n)
	d.seq++
	for _, e := range all[:n] {
		e.seq = d.seq
		out = append(out, e.frag)
	}
	d.stats.SeedsServed += int64(n)
	return out
}

// Len returns the live entry count.
func (d *Dict) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

// Stats returns a counters snapshot.
func (d *Dict) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	s.Entries = len(d.entries)
	s.LogBytes = d.size
	return s
}

// Close syncs and closes the log. Further Publish calls are dropped;
// further Seeds calls serve from the in-memory index.
func (d *Dict) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.f == nil {
		return nil
	}
	err := d.f.Sync()
	if cerr := d.f.Close(); err == nil {
		err = cerr
	}
	d.f = nil
	if err != nil {
		return fmt.Errorf("dict: %w", err)
	}
	return nil
}

var _ Source = (*Dict)(nil)
