// Package dict is the persistent, content-addressed fragment dictionary:
// mined candidates survive the run that found them, so a corpus of
// programs warm-starts each other's branch-and-bound incumbents instead
// of every request rediscovering the same template-stamped fragments
// from zero.
//
// A Fragment is a candidate in relocatable form — the same representation
// pa's round-to-round carry uses (internal/pa/warmstart.go), minus the
// program coordinates: each occurrence is a content snapshot of its whole
// host block plus the pattern's DFS→instruction mapping. Relocation into
// a new program is purely by block content, so a fragment mined from one
// binary lands in any other binary that contains byte-identical blocks
// (the template-stamped cross-binary reuse case), and in a re-run of the
// same binary trivially.
//
// The consumer contract is deliberately weak: fragments are HINTS. The
// pa layer revalidates every occurrence against its own dependence
// graphs and recomputes the benefit from what actually relocated; the
// stored Benefit only ranks entries inside the dictionary (seed order,
// eviction). A stale, corrupt-but-checksummed, or outright adversarial
// fragment can therefore cost wasted revalidation work, never a wrong
// optimization result.
package dict

import (
	"fmt"

	"graphpa/internal/arm"
	"graphpa/internal/link"
)

// Occ is one occurrence of a fragment in relocatable, program-independent
// form: the full instruction content of the block that hosted it and the
// pattern coordinates inside that block (DFS index → instruction index).
type Occ struct {
	Instrs []arm.Instr
	DFS    []int
}

// Fragment is one dictionary entry. Size is the pattern's node count
// (instructions per occurrence); Benefit is the net instruction saving
// observed when the fragment was mined — the ranking key, excluded from
// the content address so re-observing a known fragment at a different
// benefit updates the entry instead of duplicating it.
type Fragment struct {
	Size    int
	Benefit int
	Occs    []Occ
}

// Source is the warm-start hook pa.Options carries: a run pulls seed
// fragments before mining and publishes what it mined afterwards.
// Implementations must be safe for concurrent use — the service's job
// workers share one dictionary.
type Source interface {
	// Seeds returns the highest-benefit fragments, best first. Callers
	// must treat the returned fragments (and their slices) as read-only.
	Seeds() []Fragment
	// Publish offers mined fragments to the dictionary, which dedupes
	// them by content address. The dictionary takes ownership of the
	// fragments' slices.
	Publish([]Fragment)
}

// The on-disk record encoding follows internal/link's stable-encoding
// conventions (little-endian uint32 fields, length-prefixed strings,
// deterministic layout, hex SHA-256 content addresses). One record's
// payload:
//
//	u32 version(1) | u32 benefit | body
//	body: u32 size | u32 nOccs |
//	      per occ: u32 nInstrs | instr… | u32 nDFS | u32 dfs…
//	instr: u32 op | u32 cond | u32 flags(bit0 SetS, bit1 HasImm) |
//	       u32 rd rn rm ra | u32 shift | u32 shamt | u32 imm |
//	       u32 reglist | u32 targetLen | target bytes
//
// The content address is the hex SHA-256 of body alone: version and
// benefit are metadata, the (size, occurrences) content is the identity.

const recVersion = 1

func appendInstr(dst []byte, in *arm.Instr) []byte {
	dst = link.AppendU32(dst, uint32(in.Op))
	dst = link.AppendU32(dst, uint32(in.Cond))
	var flags uint32
	if in.SetS {
		flags |= 1
	}
	if in.HasImm {
		flags |= 2
	}
	dst = link.AppendU32(dst, flags)
	dst = link.AppendU32(dst, uint32(in.Rd))
	dst = link.AppendU32(dst, uint32(in.Rn))
	dst = link.AppendU32(dst, uint32(in.Rm))
	dst = link.AppendU32(dst, uint32(in.Ra))
	dst = link.AppendU32(dst, uint32(in.Shift))
	dst = link.AppendU32(dst, uint32(in.ShAmt))
	dst = link.AppendU32(dst, uint32(in.Imm))
	dst = link.AppendU32(dst, uint32(in.Reglist))
	dst = link.AppendU32(dst, uint32(len(in.Target)))
	return append(dst, in.Target...)
}

// encodeBody serializes the address-bearing part of a fragment.
func encodeBody(f *Fragment) []byte {
	n := 8
	for i := range f.Occs {
		o := &f.Occs[i]
		n += 8 + 4*len(o.DFS)
		for j := range o.Instrs {
			n += 13*4 + len(o.Instrs[j].Target)
		}
	}
	out := make([]byte, 0, n)
	out = link.AppendU32(out, uint32(f.Size))
	out = link.AppendU32(out, uint32(len(f.Occs)))
	for i := range f.Occs {
		o := &f.Occs[i]
		out = link.AppendU32(out, uint32(len(o.Instrs)))
		for j := range o.Instrs {
			out = appendInstr(out, &o.Instrs[j])
		}
		out = link.AppendU32(out, uint32(len(o.DFS)))
		for _, d := range o.DFS {
			out = link.AppendU32(out, uint32(d))
		}
	}
	return out
}

// encodeRecord serializes a full record payload (version, benefit, body)
// and returns it with the fragment's content address.
func encodeRecord(f *Fragment) (payload []byte, addr string) {
	body := encodeBody(f)
	payload = make([]byte, 0, 8+len(body))
	payload = link.AppendU32(payload, recVersion)
	payload = link.AppendU32(payload, uint32(int32(f.Benefit)))
	payload = append(payload, body...)
	return payload, link.ContentAddress(body)
}

// reasonable per-field ceilings: a payload passing the checksum is not
// hostile, but decode is also exercised directly by tests and future
// format versions, so it refuses structurally absurd counts instead of
// allocating through them.
const (
	maxOccs      = 1 << 16
	maxOccInstrs = 1 << 16
)

func errTrunc(what string) error { return fmt.Errorf("dict: truncated record (%s)", what) }

func decodeInstr(data []byte, pos int) (arm.Instr, int, error) {
	var u [12]uint32
	var ok bool
	for i := range u {
		if u[i], pos, ok = link.ReadU32(data, pos); !ok {
			return arm.Instr{}, pos, errTrunc("instr")
		}
	}
	tl := int(u[11])
	if pos+tl > len(data) {
		return arm.Instr{}, pos, errTrunc("instr target")
	}
	in := arm.Instr{
		Op:      arm.Op(u[0]),
		Cond:    arm.Cond(u[1]),
		SetS:    u[2]&1 != 0,
		HasImm:  u[2]&2 != 0,
		Rd:      arm.Reg(u[3]),
		Rn:      arm.Reg(u[4]),
		Rm:      arm.Reg(u[5]),
		Ra:      arm.Reg(u[6]),
		Shift:   arm.ShiftKind(u[7]),
		ShAmt:   int32(u[8]),
		Imm:     int32(u[9]),
		Reglist: uint16(u[10]),
		Target:  string(data[pos : pos+tl]),
	}
	return in, pos + tl, nil
}

// decodeRecord parses one record payload, validating that it consumes
// the buffer exactly. The returned address is recomputed from the body
// bytes, so index and disk can never disagree about identity.
func decodeRecord(payload []byte) (*Fragment, string, error) {
	ver, pos, ok := link.ReadU32(payload, 0)
	if !ok {
		return nil, "", errTrunc("version")
	}
	if ver != recVersion {
		return nil, "", fmt.Errorf("dict: unknown record version %d", ver)
	}
	ben, pos, ok := link.ReadU32(payload, pos)
	if !ok {
		return nil, "", errTrunc("benefit")
	}
	body := payload[pos:]
	f := &Fragment{Benefit: int(int32(ben))}
	size, bp, ok := link.ReadU32(body, 0)
	if !ok {
		return nil, "", errTrunc("size")
	}
	nOccs, bp, ok := link.ReadU32(body, bp)
	if !ok || nOccs > maxOccs {
		return nil, "", errTrunc("occ count")
	}
	f.Size = int(size)
	f.Occs = make([]Occ, 0, nOccs)
	for i := 0; i < int(nOccs); i++ {
		var o Occ
		nIn, p, ok := link.ReadU32(body, bp)
		if !ok || nIn > maxOccInstrs {
			return nil, "", errTrunc("instr count")
		}
		bp = p
		o.Instrs = make([]arm.Instr, 0, nIn)
		for j := 0; j < int(nIn); j++ {
			in, p, err := decodeInstr(body, bp)
			if err != nil {
				return nil, "", err
			}
			bp = p
			o.Instrs = append(o.Instrs, in)
		}
		nDFS, p, ok := link.ReadU32(body, bp)
		if !ok || nDFS > maxOccInstrs {
			return nil, "", errTrunc("dfs count")
		}
		bp = p
		o.DFS = make([]int, 0, nDFS)
		for j := 0; j < int(nDFS); j++ {
			d, p, ok := link.ReadU32(body, bp)
			if !ok {
				return nil, "", errTrunc("dfs")
			}
			bp = p
			o.DFS = append(o.DFS, int(d))
		}
		f.Occs = append(f.Occs, o)
	}
	if bp != len(body) {
		return nil, "", fmt.Errorf("dict: %d trailing bytes in record", len(body)-bp)
	}
	return f, link.ContentAddress(body), nil
}

// Addr returns the fragment's content address — the hex SHA-256 of its
// stable body encoding (size and occurrences; Benefit excluded).
func (f *Fragment) Addr() string {
	return link.ContentAddress(encodeBody(f))
}
