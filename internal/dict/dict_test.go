package dict

import (
	"bytes"
	"fmt"
	"log/slog"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"graphpa/internal/arm"
)

// testFragment builds a distinct, valid fragment: tag perturbs the
// instruction content so fragments with different tags get different
// content addresses.
func testFragment(tag, benefit int) Fragment {
	occ := func(off int32) Occ {
		return Occ{
			Instrs: []arm.Instr{
				{Op: arm.MOV, Cond: arm.Always, Rd: arm.R1, HasImm: true, Imm: int32(tag)},
				{Op: arm.ADD, Cond: arm.Always, Rd: arm.R2, Rn: arm.R1, HasImm: true, Imm: off},
				{Op: arm.LDR, Cond: arm.Always, Rd: arm.R3, Rn: arm.R2, Target: fmt.Sprintf("lab%d", tag)},
			},
			DFS: []int{0, 1},
		}
	}
	return Fragment{Size: 2, Benefit: benefit, Occs: []Occ{occ(4), occ(8)}}
}

func TestRecordRoundTrip(t *testing.T) {
	f := testFragment(7, 42)
	payload, addr := encodeRecord(&f)
	got, gotAddr, err := decodeRecord(payload)
	if err != nil {
		t.Fatalf("decodeRecord: %v", err)
	}
	if gotAddr != addr {
		t.Fatalf("address mismatch: encode %s decode %s", addr, gotAddr)
	}
	if addr != f.Addr() {
		t.Fatalf("Addr() disagrees with encodeRecord: %s vs %s", f.Addr(), addr)
	}
	if !reflect.DeepEqual(*got, f) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", *got, f)
	}
	// Benefit is metadata: changing it must not change the address.
	f2 := f
	f2.Benefit = 99
	if f2.Addr() != addr {
		t.Fatalf("benefit changed the content address")
	}
	// Content is identity: changing it must change the address.
	f3 := testFragment(8, 42)
	if f3.Addr() == addr {
		t.Fatalf("distinct content collided at the same address")
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	f := testFragment(1, 5)
	payload, _ := encodeRecord(&f)
	if _, _, err := decodeRecord(append(payload, 0)); err == nil {
		t.Fatalf("decodeRecord accepted trailing bytes")
	}
	if _, _, err := decodeRecord(payload[:len(payload)-3]); err == nil {
		t.Fatalf("decodeRecord accepted a truncated payload")
	}
}

func TestPublishPersistReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frag.dict")
	d, err := Open(Options{Path: path})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	frags := []Fragment{testFragment(1, 10), testFragment(2, 30), testFragment(3, 20)}
	d.Publish(frags)
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	// Re-publishing the same content is an update, not a duplicate.
	d.Publish([]Fragment{testFragment(1, 10)})
	if d.Len() != 3 {
		t.Fatalf("Len after duplicate publish = %d, want 3", d.Len())
	}
	st := d.Stats()
	if st.Published != 3 || st.Updated != 1 {
		t.Fatalf("stats = %+v, want Published=3 Updated=1", st)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if d2.Len() != 3 {
		t.Fatalf("Len after reopen = %d, want 3", d2.Len())
	}
	seeds := d2.Seeds()
	if len(seeds) != 3 {
		t.Fatalf("Seeds returned %d fragments, want 3", len(seeds))
	}
	// Best first, deterministic.
	if seeds[0].Benefit != 30 || seeds[1].Benefit != 20 || seeds[2].Benefit != 10 {
		t.Fatalf("seed order by benefit = %d,%d,%d; want 30,20,10",
			seeds[0].Benefit, seeds[1].Benefit, seeds[2].Benefit)
	}
	if !reflect.DeepEqual(seeds[0], frags[1]) {
		t.Fatalf("best seed does not round-trip the published fragment")
	}
}

func TestPublishBenefitUpdateDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frag.dict")
	d, err := Open(Options{Path: path})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	d.Publish([]Fragment{testFragment(1, 10)})
	// Higher benefit supersedes; lower benefit only bumps recency.
	d.Publish([]Fragment{testFragment(1, 50)})
	d.Publish([]Fragment{testFragment(1, 20)})
	if s := d.Seeds(); len(s) != 1 || s[0].Benefit != 50 {
		t.Fatalf("in-memory benefit = %v, want single entry at 50", s)
	}
	d.Close()

	d2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if s := d2.Seeds(); len(s) != 1 || s[0].Benefit != 50 {
		t.Fatalf("reloaded benefit = %v, want single entry at 50", s)
	}
}

func TestPublishRejectsInvalid(t *testing.T) {
	d, err := Open(Options{Path: filepath.Join(t.TempDir(), "frag.dict")})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer d.Close()
	oneOcc := testFragment(1, 10)
	oneOcc.Occs = oneOcc.Occs[:1]
	zeroBen := testFragment(2, 0)
	badDFS := testFragment(3, 10)
	badDFS.Occs[0].DFS = []int{0, 99}
	shortDFS := testFragment(4, 10)
	shortDFS.Occs[0].DFS = []int{0}
	d.Publish([]Fragment{oneOcc, zeroBen, badDFS, shortDFS})
	if d.Len() != 0 {
		t.Fatalf("invalid fragments were stored: Len = %d", d.Len())
	}
}

func TestEvictionOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frag.dict")
	d, err := Open(Options{Path: path, MaxEntries: 3})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Four distinct fragments: the lowest-benefit one must go.
	d.Publish([]Fragment{testFragment(1, 10), testFragment(2, 40), testFragment(3, 30), testFragment(4, 20)})
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	benefits := map[int]bool{}
	for _, s := range d.Seeds() {
		benefits[s.Benefit] = true
	}
	if benefits[10] {
		t.Fatalf("lowest-benefit entry survived eviction")
	}
	if st := d.Stats(); st.Evicted != 1 {
		t.Fatalf("Evicted = %d, want 1", st.Evicted)
	}
	d.Close()

	// Eviction is index-only until compaction; a reload must agree.
	d2, err := Open(Options{Path: path, MaxEntries: 3})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if d2.Len() != 3 {
		t.Fatalf("Len after reopen = %d, want 3", d2.Len())
	}
	for _, s := range d2.Seeds() {
		if s.Benefit == 10 {
			t.Fatalf("evicted entry resurrected on reload")
		}
	}
}

func TestSeedsBound(t *testing.T) {
	d, err := Open(Options{Path: filepath.Join(t.TempDir(), "frag.dict"), MaxSeeds: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer d.Close()
	d.Publish([]Fragment{testFragment(1, 10), testFragment(2, 30), testFragment(3, 20)})
	seeds := d.Seeds()
	if len(seeds) != 2 {
		t.Fatalf("Seeds returned %d, want MaxSeeds=2", len(seeds))
	}
	if seeds[0].Benefit != 30 || seeds[1].Benefit != 20 {
		t.Fatalf("Seeds kept %d,%d; want the top benefits 30,20", seeds[0].Benefit, seeds[1].Benefit)
	}
}

func TestPublishAfterCloseDropped(t *testing.T) {
	d, err := Open(Options{Path: filepath.Join(t.TempDir(), "frag.dict")})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	d.Close()
	d.Publish([]Fragment{testFragment(1, 10)}) // must not panic or write
	if d.Len() != 0 {
		t.Fatalf("publish after close stored an entry")
	}
}

func TestConcurrentPublishSeeds(t *testing.T) {
	d, err := Open(Options{Path: filepath.Join(t.TempDir(), "frag.dict"), MaxEntries: 32})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer d.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				d.Publish([]Fragment{testFragment(w*100+i, i+1)})
				d.Seeds()
				d.Stats()
			}
		}(w)
	}
	wg.Wait()
	if d.Len() != 32 {
		t.Fatalf("Len = %d, want the MaxEntries bound 32", d.Len())
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notadict")
	if err := writeFile(path, []byte("definitely not a dictionary")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Path: path}); err == nil {
		t.Fatalf("Open accepted a file with bad magic")
	}
}

// logBuffer captures slog output for warning assertions.
func logBuffer() (*slog.Logger, *bytes.Buffer) {
	var buf bytes.Buffer
	return slog.New(slog.NewTextHandler(&buf, nil)), &buf
}
