// Package dfg builds the per-basic-block data-flow graphs that graph-based
// procedural abstraction mines (paper §2.1 phase 6). Nodes are the block's
// instructions; edges are every ordering constraint between them:
// register true/anti/output dependences (with the register as part of the
// edge label), conservative memory ordering, and control edges that pin
// the block terminator last.
//
// Including anti and output dependences in the mined structure is what
// makes two embeddings of one fragment interchangeable: identical
// instruction sets with identical internal constraint structure admit the
// same schedules, so one outlined body serves every embedding.
package dfg

import (
	"fmt"

	"graphpa/internal/arm"
	"graphpa/internal/cfg"
)

// DepKind classifies an edge.
type DepKind uint8

// Dependence kinds.
const (
	RAW    DepKind = iota // true dependence through a register
	WAR                   // anti dependence through a register
	WAW                   // output dependence through a register
	MemRAW                // load after store
	MemWAR                // store after load
	MemWAW                // store after store
	Ctl                   // terminator ordering
)

var kindNames = [...]string{"raw", "war", "waw", "mraw", "mwar", "mwaw", "ctl"}

func (k DepKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("dep?%d", uint8(k))
}

// Edge is one dependence: instruction From must execute before To.
type Edge struct {
	From, To int
	Kind     DepKind
	Reg      arm.Reg // for register dependences; RegNone otherwise
}

// Label renders the edge label used by the miner.
func (e Edge) Label() string {
	if e.Reg != arm.RegNone {
		return e.Kind.String() + ":" + e.Reg.String()
	}
	return e.Kind.String()
}

// Graph is the dependence graph of one basic block. Node i is
// Block.Instrs[i]; all edges run from a lower to a higher index, so the
// graph is acyclic by construction.
type Graph struct {
	Block *cfg.Block
	Edges []Edge

	succ [][]int // adjacency by node
	pred [][]int

	labels []string // MemoLabels cache; nil until filled
}

// Build constructs the dependence graph of a block.
//
// calls, when non-nil, maps procedure names to interprocedural register-
// effect summaries that REPLACE the generic ABI assumption for bl
// instructions. The generic assumption (callees clobber r0-r3/r12 and
// nothing else) holds for compiler-emitted procedures but not for the
// procedures procedural abstraction itself creates, which read and write
// whatever registers their fragment used: later optimization rounds must
// know their real footprints or they will move code across a call that
// depends on it. Callers without post-PA procedures (e.g. the code
// generator's scheduler) may pass nil.
func Build(b *cfg.Block, calls map[string]arm.Effects) *Graph {
	g := &Graph{Block: b}
	n := len(b.Instrs)

	lastWrite := map[arm.Reg]int{} // reg -> node of last write
	readsSince := map[arm.Reg][]int{}
	lastStore := -1
	var loadsSince []int

	type edgeKey struct {
		from, to int
		kind     DepKind
		reg      arm.Reg
	}
	seen := map[edgeKey]bool{}
	addEdge := func(from, to int, kind DepKind, reg arm.Reg) {
		if from == to || from < 0 {
			return
		}
		k := edgeKey{from, to, kind, reg}
		if seen[k] {
			return
		}
		seen[k] = true
		g.Edges = append(g.Edges, Edge{From: from, To: to, Kind: kind, Reg: reg})
	}

	for i := 0; i < n; i++ {
		in := &b.Instrs[i]
		e := arm.EffectsOf(in)
		if in.Op == arm.BL {
			if s, ok := calls[in.Target]; ok {
				e = s
			}
		}
		for _, r := range e.Reads.Regs() {
			if w, ok := lastWrite[r]; ok {
				addEdge(w, i, RAW, r)
			}
		}
		for _, r := range e.Writes.Regs() {
			for _, rd := range readsSince[r] {
				addEdge(rd, i, WAR, r)
			}
			if w, ok := lastWrite[r]; ok {
				addEdge(w, i, WAW, r)
			}
		}
		if e.LoadsMem {
			addEdge(lastStore, i, MemRAW, arm.RegNone)
		}
		if e.StoresMem {
			for _, ld := range loadsSince {
				addEdge(ld, i, MemWAR, arm.RegNone)
			}
			addEdge(lastStore, i, MemWAW, arm.RegNone)
		}
		// Update state after edges are drawn.
		for _, r := range e.Writes.Regs() {
			lastWrite[r] = i
			readsSince[r] = nil
		}
		for _, r := range e.Reads.Regs() {
			readsSince[r] = append(readsSince[r], i)
		}
		if e.StoresMem {
			lastStore = i
			loadsSince = nil
		}
		if e.LoadsMem {
			loadsSince = append(loadsSince, i)
		}
	}

	// Control edges: the terminator must stay last. It suffices to order
	// the dependence sinks before it; everything else reaches a sink.
	if term := b.Terminator(); term != nil {
		t := n - 1
		hasOut := make([]bool, n)
		for _, e := range g.Edges {
			hasOut[e.From] = true
		}
		for i := 0; i < t; i++ {
			if !hasOut[i] {
				addEdge(i, t, Ctl, arm.RegNone)
			}
		}
	}

	g.succ = make([][]int, n)
	g.pred = make([][]int, n)
	for _, e := range g.Edges {
		g.succ[e.From] = append(g.succ[e.From], e.To)
		g.pred[e.To] = append(g.pred[e.To], e.From)
	}
	return g
}

// N returns the node count.
func (g *Graph) N() int { return len(g.Block.Instrs) }

// NodeLabel returns the miner's node label: the canonical instruction
// text (strict identity matching, paper §3.5).
func (g *Graph) NodeLabel(i int) string {
	if g.labels != nil {
		return g.labels[i]
	}
	return g.Block.Instrs[i].String()
}

// MemoLabels renders and stores every node label once. The cross-round
// graph cache calls it at insert time — before the graph is shared with
// concurrent mining phases — turning every later NodeLabel into a
// race-free array read instead of a fresh render per round.
func (g *Graph) MemoLabels() {
	if g.labels != nil {
		return
	}
	ls := make([]string, g.N())
	for i := range ls {
		ls[i] = g.Block.Instrs[i].String()
	}
	g.labels = ls
}

// Rebind returns a copy of g attached to block b, sharing the edge,
// adjacency and label structure. b must carry exactly the instructions g
// was built from, under call summaries matching those consumed by the
// build; the cross-round graph cache uses it when a function re-split
// left a block's content intact but allocated a fresh *cfg.Block.
func (g *Graph) Rebind(b *cfg.Block) *Graph {
	ng := *g
	ng.Block = b
	return &ng
}

// Succs returns the direct successors of node i (shared slice; do not
// modify).
func (g *Graph) Succs(i int) []int { return g.succ[i] }

// Preds returns the direct predecessors of node i.
func (g *Graph) Preds(i int) []int { return g.pred[i] }

// InDegree and OutDegree report dependence degrees (Table 3).
func (g *Graph) InDegree(i int) int  { return len(g.pred[i]) }
func (g *Graph) OutDegree(i int) int { return len(g.succ[i]) }

// ReachableFrom reports, as a bitset, every node reachable from start
// while only stepping through nodes outside `inside`. Used by the
// extraction convexity check.
func (g *Graph) ReachableFrom(start int, skip func(int) bool, visit []bool) {
	stack := []int{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.succ[v] {
			if visit[w] || skip(w) {
				continue
			}
			visit[w] = true
			stack = append(stack, w)
		}
	}
}

// DegreeStats aggregates Table 2 of the paper: how many instructions have
// (in ∨ out) degree greater than one.
type DegreeStats struct {
	HighDegree int // degree_in > 1 or degree_out > 1
	LowDegree  int
	// Histograms for Table 3: index 0..3 exact, index 4 means >= 4.
	In  [5]int
	Out [5]int
}

// Stats computes degree statistics over a set of graphs.
func Stats(graphs []*Graph) DegreeStats {
	var s DegreeStats
	bucket := func(d int) int {
		if d >= 4 {
			return 4
		}
		return d
	}
	for _, g := range graphs {
		for i := 0; i < g.N(); i++ {
			in, out := g.InDegree(i), g.OutDegree(i)
			if in > 1 || out > 1 {
				s.HighDegree++
			} else {
				s.LowDegree++
			}
			s.In[bucket(in)]++
			s.Out[bucket(out)]++
		}
	}
	return s
}
