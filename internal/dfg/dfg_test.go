package dfg

import (
	"testing"

	"graphpa/internal/arm"
	"graphpa/internal/asm"
	"graphpa/internal/cfg"
)

// block builds a cfg.Block from one instruction per line.
func block(t *testing.T, lines ...string) *cfg.Block {
	t.Helper()
	b := &cfg.Block{Fn: &cfg.Func{Name: "test", LRSaved: true}}
	for _, l := range lines {
		u, err := asm.Parse(l)
		if err != nil {
			t.Fatalf("parse %q: %v", l, err)
		}
		b.Instrs = append(b.Instrs, u.Text...)
	}
	return b
}

func hasEdge(g *Graph, from, to int, kind DepKind, reg arm.Reg) bool {
	for _, e := range g.Edges {
		if e.From == from && e.To == to && e.Kind == kind && e.Reg == reg {
			return true
		}
	}
	return false
}

// TestRunningExample builds the paper's Fig. 1 block and checks the core
// structure of its Fig. 2 data-flow graph.
func TestRunningExample(t *testing.T) {
	b := block(t,
		"ldr r3, [r1]!",  // 0
		"sub r2, r2, r3", // 1
		"add r4, r2, #4", // 2
		"ldr r3, [r1]!",  // 3
		"sub r2, r2, r3", // 4
		"ldr r3, [r1]!",  // 5
		"add r4, r2, #4", // 6
	)
	g := Build(b, nil)
	want := []struct {
		from, to int
		kind     DepKind
		reg      arm.Reg
	}{
		{0, 1, RAW, arm.R3}, // ldr feeds sub
		{1, 2, RAW, arm.R2}, // sub feeds add
		{0, 3, RAW, arm.R1}, // pointer bump chain
		{3, 4, RAW, arm.R3},
		{1, 4, RAW, arm.R2},
		{3, 5, RAW, arm.R1},
		{4, 6, RAW, arm.R2},
		{1, 3, WAR, arm.R3}, // sub read r3 before next ldr overwrites
		{0, 3, WAW, arm.R3},
		{2, 6, WAW, arm.R4},
		{2, 4, WAR, arm.R2},
	}
	for _, w := range want {
		if !hasEdge(g, w.from, w.to, w.kind, w.reg) {
			t.Errorf("missing edge %d -%s:%s-> %d", w.from, w.kind, w.reg, w.to)
		}
	}
	// Acyclic by construction: every edge goes forward.
	for _, e := range g.Edges {
		if e.From >= e.To {
			t.Errorf("backward edge %d -> %d", e.From, e.To)
		}
	}
}

func TestMemoryOrdering(t *testing.T) {
	b := block(t,
		"str r0, [r1]",     // 0
		"ldr r2, [r3]",     // 1 load after store
		"ldr r4, [r5]",     // 2
		"str r6, [r7]",     // 3 store after loads and store
		"str r6, [r7, #4]", // 4 store after store
	)
	g := Build(b, nil)
	checks := []struct {
		from, to int
		kind     DepKind
	}{
		{0, 1, MemRAW},
		{0, 2, MemRAW},
		{1, 3, MemWAR},
		{2, 3, MemWAR},
		{0, 3, MemWAW},
		{3, 4, MemWAW},
	}
	for _, c := range checks {
		if !hasEdge(g, c.from, c.to, c.kind, arm.RegNone) {
			t.Errorf("missing %s edge %d -> %d", c.kind, c.from, c.to)
		}
	}
	// No ordering between the two loads.
	if hasEdge(g, 1, 2, MemRAW, arm.RegNone) || hasEdge(g, 1, 2, MemWAR, arm.RegNone) {
		t.Error("loads must not be ordered against each other")
	}
}

func TestLiteralLoadUnordered(t *testing.T) {
	b := block(t,
		"str r0, [r1]",
		"ldr r2, =table",
	)
	g := Build(b, nil)
	for _, e := range g.Edges {
		if e.Kind == MemRAW {
			t.Error("literal-pool loads must not order against data stores")
		}
	}
}

func TestFlagDependences(t *testing.T) {
	b := block(t,
		"cmp r0, #0",   // 0 writes cpsr
		"moveq r1, #1", // 1 reads cpsr
		"movne r1, #2", // 2 reads cpsr
		"cmp r2, #0",   // 3 writes cpsr again
		"moveq r4, #1", // 4
	)
	g := Build(b, nil)
	if !hasEdge(g, 0, 1, RAW, arm.CPSR) || !hasEdge(g, 0, 2, RAW, arm.CPSR) {
		t.Error("predicated instructions must depend on cmp")
	}
	if !hasEdge(g, 1, 3, WAR, arm.CPSR) || !hasEdge(g, 2, 3, WAR, arm.CPSR) {
		t.Error("second cmp must wait for flag readers")
	}
	if !hasEdge(g, 0, 3, WAW, arm.CPSR) {
		t.Error("flag writers must be ordered")
	}
	if !hasEdge(g, 3, 4, RAW, arm.CPSR) {
		t.Error("moveq must read the second cmp")
	}
	if hasEdge(g, 0, 4, RAW, arm.CPSR) {
		t.Error("moveq must not read the first cmp")
	}
	// Conditional moves are read-modify-write on their destination: the
	// two movs on r1 must be ordered.
	if !hasEdge(g, 1, 2, WAW, arm.R1) {
		t.Error("predicated writes to the same register must stay ordered")
	}
}

func TestControlEdges(t *testing.T) {
	b := block(t,
		"add r0, r0, #1", // 0: feeds nothing -> ctl edge to terminator
		"add r1, r1, #1", // 1
		"cmp r1, #10",    // 2: feeds terminator via cpsr
		"bne loop",       // 3
	)
	g := Build(b, nil)
	if !hasEdge(g, 0, 3, Ctl, arm.RegNone) {
		t.Error("sink must get a control edge to the terminator")
	}
	if !hasEdge(g, 2, 3, RAW, arm.CPSR) {
		t.Error("conditional branch must depend on cmp")
	}
	if hasEdge(g, 2, 3, Ctl, arm.RegNone) {
		t.Error("no control edge needed when a dependence already orders the node")
	}
	// Node 1 feeds cmp? no — cmp reads r1. It does: 1 -> 2 RAW r1.
	if !hasEdge(g, 1, 2, RAW, arm.R1) {
		t.Error("r1 chain broken")
	}
}

func TestCallBarrier(t *testing.T) {
	b := block(t,
		"str r4, [sp, #4]", // 0
		"bl helper",        // 1: full memory barrier
		"ldr r5, [sp, #4]", // 2
	)
	g := Build(b, nil)
	if !hasEdge(g, 0, 1, MemRAW, arm.RegNone) && !hasEdge(g, 0, 1, MemWAW, arm.RegNone) {
		t.Error("call must be ordered after preceding store")
	}
	if !hasEdge(g, 1, 2, MemRAW, arm.RegNone) {
		t.Error("load must be ordered after call")
	}
}

func TestStatsTable2And3(t *testing.T) {
	b := block(t,
		"ldr r3, [r1]!",
		"sub r2, r2, r3",
		"add r4, r2, #4",
		"ldr r3, [r1]!",
		"sub r2, r2, r3",
		"ldr r3, [r1]!",
		"add r4, r2, #4",
	)
	g := Build(b, nil)
	s := Stats([]*Graph{g})
	if s.HighDegree+s.LowDegree != 7 {
		t.Errorf("stats cover %d nodes, want 7", s.HighDegree+s.LowDegree)
	}
	if s.HighDegree == 0 {
		t.Error("running example must have high-degree nodes")
	}
	totalIn, totalOut := 0, 0
	for i := 0; i < 5; i++ {
		totalIn += s.In[i]
		totalOut += s.Out[i]
	}
	if totalIn != 7 || totalOut != 7 {
		t.Errorf("histograms cover %d/%d nodes", totalIn, totalOut)
	}
}

func TestEdgeLabels(t *testing.T) {
	e := Edge{Kind: RAW, Reg: arm.R2}
	if e.Label() != "raw:r2" {
		t.Errorf("label = %q", e.Label())
	}
	e = Edge{Kind: MemWAW, Reg: arm.RegNone}
	if e.Label() != "mwaw" {
		t.Errorf("label = %q", e.Label())
	}
}

func TestAdjacency(t *testing.T) {
	b := block(t,
		"mov r0, #1",
		"add r1, r0, #2",
		"add r2, r1, r0",
	)
	g := Build(b, nil)
	if g.OutDegree(0) != 2 || g.InDegree(2) != 2 {
		t.Errorf("degrees wrong: out0=%d in2=%d", g.OutDegree(0), g.InDegree(2))
	}
	visit := make([]bool, g.N())
	g.ReachableFrom(0, func(int) bool { return false }, visit)
	if !visit[1] || !visit[2] {
		t.Error("reachability broken")
	}
	visit = make([]bool, g.N())
	g.ReachableFrom(0, func(n int) bool { return n == 1 }, visit)
	if visit[1] {
		t.Error("skip not honoured")
	}
	if !visit[2] {
		t.Error("direct edge 0->2 must still be found")
	}
}
