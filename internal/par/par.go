// Package par is the shared worker-pool layer of the parallel pipeline:
// bounded fan-out, ordered fan-in, error short-circuiting, panic
// propagation and context cancellation. Every concurrent stage in the
// repo — speculative lattice mining, the benchmark workload×miner
// matrix, sequence scanning — runs on these two primitives so the
// concurrency rules (and their tests) live in one place.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count option: n <= 0 selects GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// panicError carries a worker panic across goroutines so it can be
// re-raised on the calling goroutine with the worker's stack attached.
type panicError struct {
	val   any
	stack []byte
}

func (p *panicError) Error() string { return fmt.Sprintf("par: worker panic: %v", p.val) }

// group is the shared bookkeeping of one fan-out: first error wins and
// cancels the rest.
type group struct {
	cancel context.CancelFunc
	mu     sync.Mutex
	err    error
}

func (g *group) setErr(err error) {
	g.mu.Lock()
	if g.err == nil {
		g.err = err
		g.cancel()
	}
	g.mu.Unlock()
}

func (g *group) firstErr() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// rethrow re-raises a captured worker panic on the caller.
func rethrow(err error) error {
	if pe, ok := err.(*panicError); ok {
		panic(fmt.Sprintf("%v\n\nworker goroutine stack:\n%s", pe.val, pe.stack))
	}
	return err
}

// Do runs fn(ctx, i) for every i in [0, n) on at most `workers`
// goroutines (0 = GOMAXPROCS). The first error cancels the derived
// context and is returned; jobs not yet started are skipped. A worker
// panic is re-raised on the calling goroutine.
func Do(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	g := &group{cancel: cancel}
	next := int64(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					g.setErr(&panicError{val: r, stack: debug.Stack()})
				}
			}()
			for cctx.Err() == nil {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := fn(cctx, i); err != nil {
					g.setErr(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := g.firstErr(); err != nil {
		return rethrow(err)
	}
	return ctx.Err()
}

// item is one produced result awaiting ordered consumption.
type item[T any] struct {
	i int
	v T
}

// OrderedMap runs produce(ctx, i) for every i in [0, n) on at most
// `workers` goroutines (0 = GOMAXPROCS) and delivers each result to
// consume in index order, on the calling goroutine — bounded parallel
// fan-out with deterministic serial fan-in. At most 2×workers results
// are outstanding, so a slow consumer bounds memory instead of letting
// producers race arbitrarily far ahead. An error from either side
// cancels outstanding work and is returned (producers in flight finish
// their current job first); worker panics are re-raised on the caller.
func OrderedMap[T any](ctx context.Context, workers, n int, produce func(ctx context.Context, i int) (T, error), consume func(i int, v T) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	window := 2 * workers
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	g := &group{cancel: cancel}

	sem := make(chan struct{}, window) // released as results are consumed
	results := make(chan item[T], window)
	next := int64(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					g.setErr(&panicError{val: r, stack: debug.Stack()})
				}
			}()
			for {
				select {
				case sem <- struct{}{}:
				case <-cctx.Done():
					return
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				v, err := produce(cctx, i)
				if err != nil {
					g.setErr(err)
					return
				}
				select {
				case results <- item[T]{i, v}:
				case <-cctx.Done():
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()

	pending := make(map[int]T, window)
	expect := 0
consumeLoop:
	for expect < n {
		if v, ok := pending[expect]; ok {
			delete(pending, expect)
			if err := consume(expect, v); err != nil {
				g.setErr(err)
				break
			}
			expect++
			<-sem
			continue
		}
		select {
		case it := <-results:
			pending[it.i] = it.v
		case <-done:
			// Producers stopped (error, cancellation or exhaustion);
			// drain what was already delivered, then give up.
			for {
				select {
				case it := <-results:
					pending[it.i] = it.v
				default:
					if _, ok := pending[expect]; ok {
						continue consumeLoop
					}
					break consumeLoop
				}
			}
		}
	}
	cancel()
	<-done
	if err := g.firstErr(); err != nil {
		return rethrow(err)
	}
	return ctx.Err()
}
