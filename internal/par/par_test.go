package par

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWorkers covers the option resolution.
func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Fatalf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-3); got < 1 {
		t.Fatalf("Workers(-3) = %d, want >= 1", got)
	}
}

// TestDoSaturation verifies the pool never exceeds its worker bound and
// still completes every job.
func TestDoSaturation(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 64
			var cur, max, doneCount int64
			err := Do(context.Background(), workers, n, func(_ context.Context, i int) error {
				c := atomic.AddInt64(&cur, 1)
				for {
					m := atomic.LoadInt64(&max)
					if c <= m || atomic.CompareAndSwapInt64(&max, m, c) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				atomic.AddInt64(&cur, -1)
				atomic.AddInt64(&doneCount, 1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if doneCount != n {
				t.Fatalf("completed %d of %d jobs", doneCount, n)
			}
			if max > int64(workers) {
				t.Fatalf("saturation: %d concurrent jobs with %d workers", max, workers)
			}
		})
	}
}

// TestDoErrorShortCircuit verifies the first error cancels the fan-out:
// jobs not yet started are skipped.
func TestDoErrorShortCircuit(t *testing.T) {
	boom := errors.New("boom")
	var started int64
	err := Do(context.Background(), 2, 1000, func(_ context.Context, i int) error {
		atomic.AddInt64(&started, 1)
		if i == 3 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if s := atomic.LoadInt64(&started); s == 1000 {
		t.Fatalf("error did not short-circuit: all %d jobs started", s)
	}
}

// TestDoPanicPropagation verifies a worker panic is re-raised on the
// calling goroutine with the worker's stack attached.
func TestDoPanicPropagation(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was swallowed")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "kaboom") || !strings.Contains(msg, "worker goroutine stack") {
			t.Fatalf("unexpected panic payload: %q", msg)
		}
	}()
	_ = Do(context.Background(), 4, 16, func(_ context.Context, i int) error {
		if i == 7 {
			panic("kaboom")
		}
		return nil
	})
}

// TestDoCancellation verifies cancelling the parent context mid-fan-out
// stops the remaining jobs and surfaces context.Canceled.
func TestDoCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started int64
	release := make(chan struct{})
	var once sync.Once
	err := Do(ctx, 2, 1000, func(ctx context.Context, i int) error {
		atomic.AddInt64(&started, 1)
		once.Do(func() {
			cancel()
			close(release)
		})
		<-release
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := atomic.LoadInt64(&started); s == 1000 {
		t.Fatal("cancellation did not stop the fan-out")
	}
}

// TestOrderedMapOrder verifies the fan-in delivers results strictly in
// index order even when jobs complete out of order.
func TestOrderedMapOrder(t *testing.T) {
	const n = 50
	var order []int
	err := OrderedMap(context.Background(), 8, n,
		func(_ context.Context, i int) (int, error) {
			// Earlier indices sleep longer, forcing out-of-order completion.
			time.Sleep(time.Duration((n-i)%7) * time.Millisecond)
			return i * i, nil
		},
		func(i, v int) error {
			if v != i*i {
				t.Errorf("consume(%d) got %d, want %d", i, v, i*i)
			}
			order = append(order, i)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("consumed %d of %d results", len(order), n)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("out-of-order fan-in: position %d got index %d", i, got)
		}
	}
}

// TestOrderedMapConsumeError verifies a consumer error cancels the
// remaining producers.
func TestOrderedMapConsumeError(t *testing.T) {
	boom := errors.New("boom")
	var produced int64
	err := OrderedMap(context.Background(), 2, 1000,
		func(_ context.Context, i int) (int, error) {
			atomic.AddInt64(&produced, 1)
			return i, nil
		},
		func(i, v int) error {
			if i == 5 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if p := atomic.LoadInt64(&produced); p == 1000 {
		t.Fatal("consumer error did not stop producers")
	}
}

// TestOrderedMapProduceError verifies a producer error is returned and
// the consumer is not fed beyond it.
func TestOrderedMapProduceError(t *testing.T) {
	boom := errors.New("boom")
	var consumed []int
	err := OrderedMap(context.Background(), 4, 100,
		func(_ context.Context, i int) (int, error) {
			if i == 10 {
				return 0, boom
			}
			return i, nil
		},
		func(i, v int) error {
			consumed = append(consumed, i)
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	for _, i := range consumed {
		if i >= 10 {
			// Results after the failed index must never reach the
			// consumer: delivery is in order and 10 was never produced.
			t.Fatalf("consumed index %d past the failed producer", i)
		}
	}
}

// TestOrderedMapPanic verifies producer panics cross the fan-in.
func TestOrderedMapPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("producer panic was swallowed")
		}
	}()
	_ = OrderedMap(context.Background(), 4, 16,
		func(_ context.Context, i int) (int, error) {
			if i == 3 {
				panic("kaboom")
			}
			return i, nil
		},
		func(i, v int) error { return nil })
}

// TestOrderedMapBoundedWindow verifies producers cannot race arbitrarily
// far ahead of a slow consumer.
func TestOrderedMapBoundedWindow(t *testing.T) {
	const workers = 2
	var maxAhead int64
	var consumedIdx int64 = -1
	err := OrderedMap(context.Background(), workers, 200,
		func(_ context.Context, i int) (int, error) {
			ahead := int64(i) - atomic.LoadInt64(&consumedIdx)
			for {
				m := atomic.LoadInt64(&maxAhead)
				if ahead <= m || atomic.CompareAndSwapInt64(&maxAhead, m, ahead) {
					break
				}
			}
			return i, nil
		},
		func(i, v int) error {
			time.Sleep(200 * time.Microsecond) // slow consumer
			atomic.StoreInt64(&consumedIdx, int64(i))
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// The window is 2*workers; allow slack for the claim/consume gap.
	if maxAhead > int64(4*workers+2) {
		t.Fatalf("producers ran %d ahead of the consumer (window %d)", maxAhead, 2*workers)
	}
}

// TestOrderedMapEmpty covers the n = 0 edge.
func TestOrderedMapEmpty(t *testing.T) {
	if err := OrderedMap(context.Background(), 4, 0,
		func(_ context.Context, i int) (int, error) { return 0, nil },
		func(i, v int) error { t.Fatal("consume called"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := Do(context.Background(), 4, 0, func(_ context.Context, i int) error {
		t.Fatal("fn called")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
