// Package cfg splits reconstructed functions into basic blocks (paper
// §2.1 phase 5). Blocks are the unit over which data-flow graphs are
// built and mined; the extraction engine rewrites block instruction lists
// and the program is reassembled from them.
package cfg

import (
	"fmt"
	"hash/fnv"

	"graphpa/internal/arm"
	"graphpa/internal/loader"
)

// Block is one basic block.
type Block struct {
	// ID is unique across the whole program; the miner uses it as the
	// graph identifier.
	ID     int
	Fn     *Func
	Labels []string    // labels attached to the block start, in order
	Instrs []arm.Instr // executable instructions only
}

// Func groups the blocks of one procedure.
type Func struct {
	Name    string
	LRSaved bool
	Blocks  []*Block
}

// Program is the block-structured view of a loaded program.
type Program struct {
	Funcs  []*Func
	Blocks []*Block // all blocks in layout order (shared with Funcs)
	Data   *loader.Program
}

// endsBlock reports whether in terminates a basic block: any control
// transfer except calls (calls return to the next instruction and the
// surrounding dependence graph treats them as barrier nodes, which lets
// fragments span them safely).
func endsBlock(in *arm.Instr) bool {
	switch in.Op {
	case arm.B, arm.BX:
		return true
	case arm.POP:
		return in.Reglist&(1<<arm.PC) != 0
	case arm.SWI:
		return in.Cond == arm.Always && in.Imm == arm.SysExit
	}
	return false
}

// Build splits a loaded program into basic blocks.
func Build(prog *loader.Program) *Program {
	out := &Program{Data: prog}
	id := 0
	for _, lf := range prog.Funcs {
		fn := &Func{Name: lf.Name, LRSaved: lf.LRSaved}
		cur := &Block{ID: id, Fn: fn}
		flush := func() {
			if len(cur.Labels) == 0 && len(cur.Instrs) == 0 {
				return
			}
			fn.Blocks = append(fn.Blocks, cur)
			out.Blocks = append(out.Blocks, cur)
			id++
			cur = &Block{ID: id, Fn: fn}
		}
		for i := range lf.Code {
			in := lf.Code[i]
			if in.Op == arm.LABEL {
				if len(cur.Instrs) > 0 {
					flush()
				}
				cur.Labels = append(cur.Labels, in.Target)
				continue
			}
			cur.Instrs = append(cur.Instrs, in)
			if endsBlock(&in) {
				flush()
			}
		}
		flush()
		out.Funcs = append(out.Funcs, fn)
	}
	return out
}

// Reassemble converts the (possibly rewritten) blocks back into a loader
// program that can be relinked.
func Reassemble(p *Program) *loader.Program {
	out := &loader.Program{Data: p.Data.Data}
	for _, fn := range p.Funcs {
		lf := &loader.Function{Name: fn.Name, LRSaved: fn.LRSaved}
		for _, b := range fn.Blocks {
			for _, l := range b.Labels {
				lbl := arm.NewInstr(arm.LABEL)
				lbl.Target = l
				lf.Code = append(lf.Code, lbl)
			}
			lf.Code = append(lf.Code, b.Instrs...)
		}
		out.Funcs = append(out.Funcs, lf)
	}
	return out
}

// Terminator returns the block's final instruction if it is a control
// transfer (conditional or not), else nil (fall-through blocks).
func (b *Block) Terminator() *arm.Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := &b.Instrs[len(b.Instrs)-1]
	switch last.Op {
	case arm.B, arm.BX:
		return last
	case arm.POP:
		if last.Reglist&(1<<arm.PC) != 0 {
			return last
		}
	case arm.SWI:
		if last.Imm == arm.SysExit {
			return last
		}
	}
	return nil
}

// Fingerprint computes the Debray-style block fingerprint the paper's SFX
// baseline uses for quick duplicate filtering: a hash over the opcode and
// operand-shape sequence (register names excluded, so blocks that differ
// only in register naming collide, as intended).
func (b *Block) Fingerprint() uint64 {
	h := fnv.New64a()
	for i := range b.Instrs {
		in := &b.Instrs[i]
		fmt.Fprintf(h, "%s~%d~%s|", in.CanonicalKey(), in.Imm, in.Target)
	}
	return h.Sum64()
}

// CountInstrs returns the number of executable instructions in the
// program view.
func (p *Program) CountInstrs() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Instrs)
	}
	return n
}
