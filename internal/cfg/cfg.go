// Package cfg splits reconstructed functions into basic blocks (paper
// §2.1 phase 5). Blocks are the unit over which data-flow graphs are
// built and mined; the extraction engine rewrites block instruction lists
// and the program is reassembled from them.
package cfg

import (
	"fmt"
	"hash/fnv"

	"graphpa/internal/arm"
	"graphpa/internal/loader"
)

// Block is one basic block.
type Block struct {
	// ID is unique across the whole program; the miner uses it as the
	// graph identifier.
	ID     int
	Fn     *Func
	Labels []string    // labels attached to the block start, in order
	Instrs []arm.Instr // executable instructions only
}

// Func groups the blocks of one procedure.
type Func struct {
	Name    string
	LRSaved bool
	Blocks  []*Block
}

// Program is the block-structured view of a loaded program.
type Program struct {
	Funcs  []*Func
	Blocks []*Block // all blocks in layout order (shared with Funcs)
	Data   *loader.Program
}

// endsBlock reports whether in terminates a basic block: any control
// transfer except calls (calls return to the next instruction and the
// surrounding dependence graph treats them as barrier nodes, which lets
// fragments span them safely).
func endsBlock(in *arm.Instr) bool {
	switch in.Op {
	case arm.B, arm.BX:
		return true
	case arm.POP:
		return in.Reglist&(1<<arm.PC) != 0
	case arm.SWI:
		return in.Cond == arm.Always && in.Imm == arm.SysExit
	}
	return false
}

// splitBlocks partitions one function's flat code (labels as LABEL
// pseudo-instructions) into basic blocks. IDs are assigned by the caller
// (Renumber); the partition depends only on the code.
func splitBlocks(fn *Func, code []arm.Instr) []*Block {
	var out []*Block
	cur := &Block{Fn: fn}
	flush := func() {
		if len(cur.Labels) == 0 && len(cur.Instrs) == 0 {
			return
		}
		out = append(out, cur)
		cur = &Block{Fn: fn}
	}
	for i := range code {
		in := code[i]
		if in.Op == arm.LABEL {
			if len(cur.Instrs) > 0 {
				flush()
			}
			cur.Labels = append(cur.Labels, in.Target)
			continue
		}
		cur.Instrs = append(cur.Instrs, in)
		if endsBlock(&in) {
			flush()
		}
	}
	flush()
	return out
}

// flatten renders one function's blocks back to flat code, the inverse of
// splitBlocks' partitioning: splitBlocks(flatten(fn)) reproduces a split
// function's block structure exactly.
func flatten(fn *Func) []arm.Instr {
	var code []arm.Instr
	for _, b := range fn.Blocks {
		for _, l := range b.Labels {
			lbl := arm.NewInstr(arm.LABEL)
			lbl.Target = l
			code = append(code, lbl)
		}
		code = append(code, b.Instrs...)
	}
	return code
}

// Build splits a loaded program into basic blocks.
func Build(prog *loader.Program) *Program {
	out := &Program{Data: prog}
	for _, lf := range prog.Funcs {
		fn := &Func{Name: lf.Name, LRSaved: lf.LRSaved}
		fn.Blocks = splitBlocks(fn, lf.Code)
		out.Funcs = append(out.Funcs, fn)
	}
	out.Renumber()
	return out
}

// Renumber rebuilds p.Blocks as the concatenation of every function's
// blocks in layout order and reassigns sequential IDs. Build's output
// always satisfies this layout; rewriters that insert or remove blocks
// call it (directly or via Resplit) to restore the invariant.
func (p *Program) Renumber() {
	p.Blocks = p.Blocks[:0]
	for _, fn := range p.Funcs {
		for _, b := range fn.Blocks {
			b.ID = len(p.Blocks)
			p.Blocks = append(p.Blocks, b)
		}
	}
}

// Resplit re-derives the block structure of the dirty functions from
// their (possibly rewritten) instruction lists and renumbers the whole
// program. The result is structurally identical to
// Build(Reassemble(p)) — same functions, same block partition, same IDs —
// but every untouched *Func and *Block keeps its identity, so per-block
// caches keyed by pointer stay valid across extraction rounds. Only IDs
// may change on clean blocks (earlier functions growing or shrinking
// shift the numbering).
func (p *Program) Resplit(dirty map[*Func]bool) {
	for _, fn := range p.Funcs {
		if !dirty[fn] {
			continue
		}
		fn.Blocks = reuseBlocks(fn.Blocks, splitBlocks(fn, flatten(fn)))
	}
	p.Renumber()
}

// reuseBlocks substitutes the function's previous *Block objects into a
// fresh re-split wherever labels and instruction content are identical.
// A rewrite only changes the blocks it touches, so most of a dirty
// function's re-split is byte-identical to its previous partition; keeping
// those blocks' identity keeps every downstream pointer-keyed cache (and
// anything anchored to those caches' values) valid across the round.
// Identical twins are matched in layout order; since both are
// byte-identical this only affects which pointer survives, never content.
func reuseBlocks(old, nb []*Block) []*Block {
	byKey := map[uint64][]*Block{}
	for _, b := range old {
		k := b.contentKey()
		byKey[k] = append(byKey[k], b)
	}
	for i, b := range nb {
		k := b.contentKey()
		q := byKey[k]
		for j, ob := range q {
			if sameBlockContent(ob, b) {
				nb[i] = ob
				byKey[k] = append(q[:j:j], q[j+1:]...)
				break
			}
		}
	}
	return nb
}

// contentKey hashes the block's labels and full instruction content.
func (b *Block) contentKey() uint64 {
	h := fnv.New64a()
	for _, l := range b.Labels {
		fmt.Fprintf(h, "L%s|", l)
	}
	for i := range b.Instrs {
		in := &b.Instrs[i]
		fmt.Fprintf(h, "%d~%d~%t~%d~%d~%d~%d~%d~%d~%d~%t~%d~%s|",
			in.Op, in.Cond, in.SetS, in.Rd, in.Rn, in.Rm, in.Ra,
			in.Shift, in.ShAmt, in.Imm, in.HasImm, in.Reglist, in.Target)
	}
	return h.Sum64()
}

func sameBlockContent(a, b *Block) bool {
	if len(a.Labels) != len(b.Labels) || len(a.Instrs) != len(b.Instrs) {
		return false
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			return false
		}
	}
	for i := range a.Instrs {
		if a.Instrs[i] != b.Instrs[i] {
			return false
		}
	}
	return true
}

// Reassemble converts the (possibly rewritten) blocks back into a loader
// program that can be relinked.
func Reassemble(p *Program) *loader.Program {
	out := &loader.Program{Data: p.Data.Data}
	for _, fn := range p.Funcs {
		lf := &loader.Function{Name: fn.Name, LRSaved: fn.LRSaved, Code: flatten(fn)}
		out.Funcs = append(out.Funcs, lf)
	}
	return out
}

// Terminator returns the block's final instruction if it is a control
// transfer (conditional or not), else nil (fall-through blocks).
func (b *Block) Terminator() *arm.Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := &b.Instrs[len(b.Instrs)-1]
	switch last.Op {
	case arm.B, arm.BX:
		return last
	case arm.POP:
		if last.Reglist&(1<<arm.PC) != 0 {
			return last
		}
	case arm.SWI:
		if last.Imm == arm.SysExit {
			return last
		}
	}
	return nil
}

// Fingerprint computes the Debray-style block fingerprint the paper's SFX
// baseline uses for quick duplicate filtering: a hash over the opcode and
// operand-shape sequence (register names excluded, so blocks that differ
// only in register naming collide, as intended).
func (b *Block) Fingerprint() uint64 {
	h := fnv.New64a()
	for i := range b.Instrs {
		in := &b.Instrs[i]
		fmt.Fprintf(h, "%s~%d~%s|", in.CanonicalKey(), in.Imm, in.Target)
	}
	return h.Sum64()
}

// CountInstrs returns the number of executable instructions in the
// program view.
func (p *Program) CountInstrs() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Instrs)
	}
	return n
}
