package cfg

import (
	"testing"

	"graphpa/internal/arm"
	"graphpa/internal/asm"
	"graphpa/internal/link"
	"graphpa/internal/loader"
)

// loadProgram builds a loader.Program straight from assembly source.
func loadProgram(t *testing.T, src string) *loader.Program {
	t.Helper()
	u, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Link(u)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := loader.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

const blockSrc = `
_start:
	bl main
	mov r0, #0
	swi 0
	.pool
main:
	push {r4, lr}
	mov r0, #0
	mov r1, #5
loop:
	add r0, r0, r1
	subs r1, r1, #1
	bne loop
	pop {r4, pc}
	.pool
`

func TestBuildBlocks(t *testing.T) {
	p := Build(loadProgram(t, blockSrc))
	if len(p.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(p.Funcs))
	}
	start, main := p.Funcs[0], p.Funcs[1]
	// _start: "bl main; mov; swi 0" is one block (calls do not end
	// blocks, exit does).
	if len(start.Blocks) != 1 {
		t.Errorf("_start blocks = %d, want 1", len(start.Blocks))
	}
	if got := len(start.Blocks[0].Instrs); got != 3 {
		t.Errorf("_start block size = %d, want 3", got)
	}
	// main: [push,mov,mov] [add,subs,bne] [pop]
	if len(main.Blocks) != 3 {
		t.Fatalf("main blocks = %d, want 3", len(main.Blocks))
	}
	sizes := []int{3, 3, 1}
	for i, b := range main.Blocks {
		if len(b.Instrs) != sizes[i] {
			t.Errorf("main block %d size = %d, want %d", i, len(b.Instrs), sizes[i])
		}
	}
	if main.Blocks[1].Labels[0] != "loop" {
		t.Errorf("loop label on wrong block: %v", main.Blocks[1].Labels)
	}
	if !main.LRSaved || start.LRSaved {
		t.Error("LRSaved flags wrong")
	}
	// IDs are unique and dense.
	for i, b := range p.Blocks {
		if b.ID != i {
			t.Errorf("block %d has ID %d", i, b.ID)
		}
	}
}

func TestTerminator(t *testing.T) {
	p := Build(loadProgram(t, blockSrc))
	main := p.Funcs[1]
	if main.Blocks[0].Terminator() != nil {
		t.Error("fall-through block should have no terminator")
	}
	if tm := main.Blocks[1].Terminator(); tm == nil || tm.Op != arm.B || tm.Cond != arm.NE {
		t.Error("bne should be a terminator")
	}
	if tm := main.Blocks[2].Terminator(); tm == nil || tm.Op != arm.POP {
		t.Error("pop {pc} should be a terminator")
	}
}

func TestReassembleRoundTrip(t *testing.T) {
	prog := loadProgram(t, blockSrc)
	before := prog.CountInstrs()
	p := Build(prog)
	back := Reassemble(p)
	if back.CountInstrs() != before {
		t.Errorf("instruction count changed: %d -> %d", before, back.CountInstrs())
	}
	if _, err := back.Relink(); err != nil {
		t.Fatalf("relink after reassemble: %v", err)
	}
	if p.CountInstrs() != before {
		t.Errorf("CountInstrs = %d, want %d", p.CountInstrs(), before)
	}
}

func TestFingerprintRegisterInsensitive(t *testing.T) {
	a := &Block{Instrs: []arm.Instr{
		ins("add r0, r1, r2"), ins("sub r3, r0, #4"),
	}}
	b := &Block{Instrs: []arm.Instr{
		ins("add r5, r6, r7"), ins("sub r8, r5, #4"),
	}}
	c := &Block{Instrs: []arm.Instr{
		ins("add r5, r6, r7"), ins("sub r8, r5, r9"),
	}}
	d := &Block{Instrs: []arm.Instr{
		ins("add r5, r6, r7"), ins("sub r8, r5, #9"),
	}}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("register renaming must not change the fingerprint")
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("operand shape change must change the fingerprint")
	}
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("immediate value change must change the fingerprint")
	}
}

func ins(s string) arm.Instr {
	u, err := asm.Parse(s)
	if err != nil || len(u.Text) != 1 {
		panic("bad test instruction: " + s)
	}
	return u.Text[0]
}

func TestResplitPreservesBlockIdentity(t *testing.T) {
	p := Build(loadProgram(t, blockSrc))
	main := p.Funcs[1]
	if len(main.Blocks) != 3 {
		t.Fatalf("main blocks = %d, want 3", len(main.Blocks))
	}
	before := append([]*Block(nil), p.Blocks...)

	// A resplit of an unchanged (but dirty-marked) function must keep
	// every block object: pointer-keyed caches stay valid.
	p.Resplit(map[*Func]bool{main: true})
	for i, b := range p.Blocks {
		if b != before[i] {
			t.Fatalf("block %d replaced by a content-identical resplit", i)
		}
	}

	// Rewrite one block the way extraction does: install a fresh
	// instruction slice with one changed instruction.
	b0 := main.Blocks[0]
	fresh := append([]arm.Instr(nil), b0.Instrs...)
	fresh[2].Imm = 6 // mov r1, #5 -> #6
	b0.Instrs = fresh
	p.Resplit(map[*Func]bool{main: true})

	// Untouched blocks keep their identity; the rewritten block keeps its
	// object too (it matches its own current content), carrying the fresh
	// slice so slice-identity caches see the change.
	if main.Blocks[0] != b0 {
		t.Errorf("rewritten block lost its object identity")
	}
	if &main.Blocks[0].Instrs[0] != &fresh[0] {
		t.Errorf("rewritten block lost its fresh instruction slice")
	}
	if main.Blocks[1] != before[2] || main.Blocks[2] != before[3] {
		t.Errorf("untouched blocks of the dirty function were replaced")
	}
	if p.Funcs[0].Blocks[0] != before[0] {
		t.Errorf("block of a clean function was replaced")
	}

	// The result must be structurally identical to a full rebuild.
	rb := Build(Reassemble(p))
	if len(rb.Blocks) != len(p.Blocks) {
		t.Fatalf("resplit blocks = %d, rebuild = %d", len(p.Blocks), len(rb.Blocks))
	}
	for i, b := range p.Blocks {
		r := rb.Blocks[i]
		if b.ID != i || r.ID != i {
			t.Errorf("block %d: IDs %d vs %d", i, b.ID, r.ID)
		}
		if len(b.Labels) != len(r.Labels) || len(b.Instrs) != len(r.Instrs) {
			t.Fatalf("block %d: shape differs from full rebuild", i)
		}
		for j := range b.Labels {
			if b.Labels[j] != r.Labels[j] {
				t.Errorf("block %d label %d: %q vs %q", i, j, b.Labels[j], r.Labels[j])
			}
		}
		for j := range b.Instrs {
			if b.Instrs[j] != r.Instrs[j] {
				t.Errorf("block %d instr %d differs from full rebuild", i, j)
			}
		}
	}
}
