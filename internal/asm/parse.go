package asm

import (
	"fmt"
	"strconv"
	"strings"

	"graphpa/internal/arm"
)

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

// Parse assembles source text into a Unit. The syntax is the canonical
// instruction syntax produced by arm.Instr.String plus the directives
// .text, .data, .word, .asciz, .space, .pool/.ltorg and .global (accepted
// and ignored). Comments start with '@' or "//" and run to end of line.
func Parse(src string) (*Unit, error) {
	u := &Unit{}
	inData := false
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return &ParseError{Line: lineNo + 1, Msg: fmt.Sprintf(format, args...)}
		}

		// Labels, possibly followed by more on the same line.
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 || strings.ContainsAny(line[:i], " \t,[{") {
				break
			}
			name := line[:i]
			if !validSymbol(name) {
				return nil, fail("bad label %q", name)
			}
			if inData {
				u.Data = append(u.Data, DataItem{Kind: DataLabel, Label: name})
			} else {
				lbl := arm.NewInstr(arm.LABEL)
				lbl.Target = name
				u.Text = append(u.Text, lbl)
			}
			line = strings.TrimSpace(line[i+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}

		if strings.HasPrefix(line, ".") {
			if err := parseDirective(u, line, &inData, fail); err != nil {
				return nil, err
			}
			continue
		}
		if inData {
			return nil, fail("instruction %q in .data section", line)
		}
		in, err := parseInstr(line, fail)
		if err != nil {
			return nil, err
		}
		u.Text = append(u.Text, in)
	}
	return u, nil
}

func stripComment(line string) string {
	if i := strings.IndexByte(line, '@'); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	return line
}

func validSymbol(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.', r == '$':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseDirective(u *Unit, line string, inData *bool, fail func(string, ...any) error) error {
	dir, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch dir {
	case ".text":
		*inData = false
	case ".data":
		*inData = true
	case ".global", ".globl", ".align":
		// accepted for familiarity; layout is always global and aligned
	case ".pool", ".ltorg":
		if *inData {
			return fail(".pool in data section")
		}
		u.Text = append(u.Text, NewPoolBarrier())
	case ".word":
		if v, err := strconv.ParseInt(rest, 0, 64); err == nil {
			if v < -1<<31 || v > 1<<32-1 {
				return fail(".word value out of range: %s", rest)
			}
			item := DataItem{Kind: DataWord, Value: int32(uint32(v))}
			if *inData {
				u.Data = append(u.Data, item)
			} else {
				w := arm.NewInstr(arm.WORD)
				w.Imm = item.Value
				u.Text = append(u.Text, w)
			}
			return nil
		}
		if !validSymbol(rest) {
			return fail("bad .word operand %q", rest)
		}
		if *inData {
			u.Data = append(u.Data, DataItem{Kind: DataWord, Sym: rest})
		} else {
			w := arm.NewInstr(arm.WORD)
			w.Target = rest
			u.Text = append(u.Text, w)
		}
	case ".asciz", ".string":
		s, err := strconv.Unquote(rest)
		if err != nil {
			return fail("bad string %s", rest)
		}
		if !*inData {
			return fail("%s outside .data", dir)
		}
		u.Data = append(u.Data, DataItem{Kind: DataBytes, Bytes: append([]byte(s), 0)})
	case ".space", ".skip":
		n, err := strconv.ParseInt(rest, 0, 32)
		if err != nil || n < 0 {
			return fail("bad .space size %q", rest)
		}
		if !*inData {
			return fail(".space outside .data")
		}
		u.Data = append(u.Data, DataItem{Kind: DataSpace, Space: int32(n)})
	default:
		return fail("unknown directive %s", dir)
	}
	return nil
}

// mnemonics maps base mnemonic to opcode (addressing-mode variants of
// loads/stores are selected later from the operand syntax).
var mnemonics = map[string]arm.Op{
	"and": arm.AND, "eor": arm.EOR, "sub": arm.SUB, "rsb": arm.RSB,
	"add": arm.ADD, "adc": arm.ADC, "sbc": arm.SBC, "orr": arm.ORR,
	"bic": arm.BIC, "mov": arm.MOV, "mvn": arm.MVN, "cmp": arm.CMP,
	"cmn": arm.CMN, "tst": arm.TST, "teq": arm.TEQ, "mul": arm.MUL,
	"mla": arm.MLA, "ldr": arm.LDR, "ldrb": arm.LDRB, "str": arm.STR,
	"strb": arm.STRB, "push": arm.PUSH, "pop": arm.POP, "b": arm.B,
	"bl": arm.BL, "bx": arm.BX, "swi": arm.SWI, "nop": arm.NOP,
}

// canSetS reports whether the op accepts the "s" suffix.
func canSetS(op arm.Op) bool {
	return op.IsDataProcessing() || op.IsMove() || op == arm.MUL || op == arm.MLA
}

// splitMnemonic resolves "addeqs"-style mnemonics into op/cond/S by
// backtracking over base-mnemonic candidates, longest first.
func splitMnemonic(m string) (arm.Op, arm.Cond, bool, bool) {
	for l := len(m); l > 0; l-- {
		base := m[:l]
		op, ok := mnemonics[base]
		if !ok {
			continue
		}
		suffix := m[l:]
		setS := false
		if strings.HasSuffix(suffix, "s") && canSetS(op) {
			// "s" may also be the tail of a condition ("cs", "ls", "vs");
			// try both interpretations.
			if cond, ok := arm.ParseCond(suffix); ok {
				return op, cond, false, true
			}
			if cond, ok := arm.ParseCond(suffix[:len(suffix)-1]); ok {
				setS = true
				return op, cond, setS, true
			}
			continue
		}
		if cond, ok := arm.ParseCond(suffix); ok {
			return op, cond, false, true
		}
	}
	return arm.BAD, arm.Always, false, false
}

// operand tokenizer: splits on commas at bracket depth zero.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[', '{':
			depth++
		case ']', '}':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	tail := strings.TrimSpace(s[start:])
	if tail != "" {
		out = append(out, tail)
	}
	return out
}

func parseImm(s string) (int32, bool) {
	if !strings.HasPrefix(s, "#") {
		return 0, false
	}
	v, err := strconv.ParseInt(s[1:], 0, 64)
	if err != nil || v < -1<<31 || v > 1<<32-1 {
		return 0, false
	}
	return int32(uint32(uint64(v))), true
}

// parseOp2 parses a flexible second operand spread over the trailing
// operand fields: "#imm" | "rm" | "rm, <shift> #amt".
func parseOp2(in *arm.Instr, fields []string, fail func(string, ...any) error) error {
	if len(fields) == 0 {
		return fail("missing operand")
	}
	if v, ok := parseImm(fields[0]); ok {
		if len(fields) != 1 {
			return fail("junk after immediate")
		}
		in.Imm, in.HasImm = v, true
		return nil
	}
	r, ok := arm.ParseReg(fields[0])
	if !ok {
		return fail("bad operand %q", fields[0])
	}
	in.Rm = r
	switch len(fields) {
	case 1:
		return nil
	case 2:
		kind, amt, err := parseShift(fields[1], fail)
		if err != nil {
			return err
		}
		in.Shift, in.ShAmt = kind, amt
		return nil
	}
	return fail("too many operands")
}

func parseShift(s string, fail func(string, ...any) error) (arm.ShiftKind, int32, error) {
	name, amt, ok := strings.Cut(strings.TrimSpace(s), " ")
	if !ok {
		return arm.NoShift, 0, fail("bad shift %q", s)
	}
	kind, ok := arm.ParseShift(strings.TrimSpace(name))
	if !ok {
		return arm.NoShift, 0, fail("bad shift kind %q", name)
	}
	v, ok := parseImm(strings.TrimSpace(amt))
	if !ok || v < 0 || v > 31 {
		return arm.NoShift, 0, fail("bad shift amount %q", amt)
	}
	return kind, v, nil
}

func parseReglist(s string, fail func(string, ...any) error) (uint16, error) {
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		return 0, fail("bad register list %q", s)
	}
	var mask uint16
	for _, part := range strings.Split(s[1:len(s)-1], ",") {
		part = strings.TrimSpace(part)
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			rl, ok1 := arm.ParseReg(strings.TrimSpace(lo))
			rh, ok2 := arm.ParseReg(strings.TrimSpace(hi))
			if !ok1 || !ok2 || rl > rh {
				return 0, fail("bad register range %q", part)
			}
			for r := rl; r <= rh; r++ {
				mask |= 1 << r
			}
			continue
		}
		r, ok := arm.ParseReg(part)
		if !ok {
			return 0, fail("bad register %q in list", part)
		}
		mask |= 1 << r
	}
	if mask == 0 {
		return 0, fail("empty register list")
	}
	return mask, nil
}

func parseInstr(line string, fail func(string, ...any) error) (arm.Instr, error) {
	bad := arm.NewInstr(arm.BAD)
	mn, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	op, cond, setS, ok := splitMnemonic(strings.ToLower(mn))
	if !ok {
		return bad, fail("unknown mnemonic %q", mn)
	}
	in := arm.NewInstr(op)
	in.Cond = cond
	in.SetS = setS
	ops := splitOperands(rest)

	reg := func(i int) (arm.Reg, error) {
		if i >= len(ops) {
			return arm.RegNone, fail("missing operand %d", i+1)
		}
		r, ok := arm.ParseReg(ops[i])
		if !ok {
			return arm.RegNone, fail("bad register %q", ops[i])
		}
		return r, nil
	}

	var err error
	switch {
	case op.IsDataProcessing():
		if len(ops) < 3 {
			return bad, fail("%s needs 3 operands", op)
		}
		if in.Rd, err = reg(0); err != nil {
			return bad, err
		}
		if in.Rn, err = reg(1); err != nil {
			return bad, err
		}
		return in, parseOp2(&in, ops[2:], fail)
	case op.IsMove():
		if len(ops) < 2 {
			return bad, fail("%s needs 2 operands", op)
		}
		if in.Rd, err = reg(0); err != nil {
			return bad, err
		}
		return in, parseOp2(&in, ops[1:], fail)
	case op.IsCompare():
		if len(ops) < 2 {
			return bad, fail("%s needs 2 operands", op)
		}
		if in.Rn, err = reg(0); err != nil {
			return bad, err
		}
		return in, parseOp2(&in, ops[1:], fail)
	case op == arm.MUL:
		if len(ops) != 3 {
			return bad, fail("mul needs 3 operands")
		}
		if in.Rd, err = reg(0); err != nil {
			return bad, err
		}
		if in.Rn, err = reg(1); err != nil {
			return bad, err
		}
		in.Rm, err = reg(2)
		return in, err
	case op == arm.MLA:
		if len(ops) != 4 {
			return bad, fail("mla needs 4 operands")
		}
		if in.Rd, err = reg(0); err != nil {
			return bad, err
		}
		if in.Rn, err = reg(1); err != nil {
			return bad, err
		}
		if in.Rm, err = reg(2); err != nil {
			return bad, err
		}
		in.Ra, err = reg(3)
		return in, err
	case op == arm.LDR || op == arm.LDRB || op == arm.STR || op == arm.STRB:
		return parseMem(in, ops, fail)
	case op == arm.PUSH || op == arm.POP:
		if len(ops) != 1 {
			return bad, fail("%s needs a register list", op)
		}
		in.Reglist, err = parseReglist(ops[0], fail)
		return in, err
	case op == arm.B || op == arm.BL:
		if len(ops) != 1 || !validSymbol(ops[0]) {
			return bad, fail("%s needs a label", op)
		}
		in.Target = ops[0]
		return in, nil
	case op == arm.BX:
		if len(ops) != 1 {
			return bad, fail("bx needs a register")
		}
		in.Rm, err = reg(0)
		return in, err
	case op == arm.SWI:
		if len(ops) != 1 {
			return bad, fail("swi needs a number")
		}
		v, err2 := strconv.ParseInt(ops[0], 0, 32)
		if err2 != nil {
			return bad, fail("bad swi number %q", ops[0])
		}
		in.Imm, in.HasImm = int32(v), true
		return in, nil
	case op == arm.NOP:
		if len(ops) != 0 {
			return bad, fail("nop takes no operands")
		}
		return in, nil
	}
	return bad, fail("unhandled mnemonic %q", mn)
}

// parseMem parses load/store operands, selecting the writeback opcode
// variant from the addressing syntax.
func parseMem(in arm.Instr, ops []string, fail func(string, ...any) error) (arm.Instr, error) {
	bad := arm.NewInstr(arm.BAD)
	if len(ops) < 2 {
		return bad, fail("%s needs at least 2 operands", in.Op)
	}
	rd, ok := arm.ParseReg(ops[0])
	if !ok {
		return bad, fail("bad register %q", ops[0])
	}
	in.Rd = rd

	// Literal load: ldr rd, =sym or =imm.
	if strings.HasPrefix(ops[1], "=") {
		if in.Op != arm.LDR || len(ops) != 2 {
			return bad, fail("only ldr accepts =literal")
		}
		lit := ops[1][1:]
		if v, err := strconv.ParseInt(lit, 0, 64); err == nil {
			if v < -1<<31 || v > 1<<32-1 {
				return bad, fail("literal out of range")
			}
			// A constant literal gets a synthetic symbol at link time;
			// represent it as =const:<value> so equal constants unify.
			in.Target = fmt.Sprintf("const:%d", int32(uint32(v)))
			return in, nil
		}
		if !validSymbol(lit) {
			return bad, fail("bad literal %q", lit)
		}
		in.Target = lit
		return in, nil
	}

	addr := ops[1]
	post := false
	writeback := false
	if strings.HasSuffix(addr, "!") {
		writeback = true
		addr = addr[:len(addr)-1]
	}
	if !strings.HasPrefix(addr, "[") || !strings.HasSuffix(addr, "]") {
		return bad, fail("bad address %q", ops[1])
	}
	inner := addr[1 : len(addr)-1]
	var offFields []string
	if len(ops) > 2 {
		// post-indexed: "[rn], #off" or "[rn], rm"
		if writeback {
			return bad, fail("cannot mix pre and post indexing")
		}
		if strings.Contains(inner, ",") {
			return bad, fail("post-index base must be plain [rn]")
		}
		post = true
		writeback = true
		offFields = ops[2:]
	} else {
		parts := splitOperands(inner)
		inner = parts[0]
		offFields = parts[1:]
	}
	rn, ok := arm.ParseReg(strings.TrimSpace(inner))
	if !ok {
		return bad, fail("bad base register %q", inner)
	}
	in.Rn = rn

	if len(offFields) == 0 {
		in.HasImm, in.Imm = true, 0
	} else if v, ok := parseImm(offFields[0]); ok {
		if len(offFields) != 1 {
			return bad, fail("junk after offset")
		}
		in.HasImm, in.Imm = true, v
	} else {
		rm, ok := arm.ParseReg(offFields[0])
		if !ok {
			return bad, fail("bad offset %q", offFields[0])
		}
		in.Rm = rm
		if len(offFields) == 2 {
			kind, amt, err := parseShift(offFields[1], fail)
			if err != nil {
				return bad, err
			}
			in.Shift, in.ShAmt = kind, amt
		} else if len(offFields) > 2 {
			return bad, fail("too many offset fields")
		}
	}

	if writeback {
		in.Op = writebackVariant(in.Op, post)
		if in.Op == arm.BAD {
			return bad, fail("no writeback form")
		}
	}
	return in, nil
}

func writebackVariant(op arm.Op, post bool) arm.Op {
	type key struct {
		op   arm.Op
		post bool
	}
	m := map[key]arm.Op{
		{arm.LDR, false}:  arm.LDRPREW,
		{arm.LDR, true}:   arm.LDRPOSTW,
		{arm.STR, false}:  arm.STRPREW,
		{arm.STR, true}:   arm.STRPOSTW,
		{arm.LDRB, false}: arm.LDRBPREW,
		{arm.LDRB, true}:  arm.LDRBPOSTW,
		{arm.STRB, false}: arm.STRBPREW,
		{arm.STRB, true}:  arm.STRBPOSTW,
	}
	if v, ok := m[key{op, post}]; ok {
		return v
	}
	return arm.BAD
}
