package asm

import (
	"strings"
	"testing"

	"graphpa/internal/arm"
)

func parseOne(t *testing.T, line string) arm.Instr {
	t.Helper()
	u, err := Parse(line)
	if err != nil {
		t.Fatalf("Parse(%q): %v", line, err)
	}
	if len(u.Text) != 1 {
		t.Fatalf("Parse(%q): got %d instructions", line, len(u.Text))
	}
	return u.Text[0]
}

// TestParsePrintRoundTrip checks that every canonical instruction form
// survives a print -> parse -> print cycle unchanged. This is the
// foundation the whole pipeline rests on: instruction identity is textual
// identity.
func TestParsePrintRoundTrip(t *testing.T) {
	lines := []string{
		"add r4, r2, #4",
		"sub r2, r2, r3",
		"add r0, r1, r2, lsl #2",
		"rsb r0, r1, #0",
		"adcs r0, r1, r2",
		"mov r0, #0",
		"movs r0, r1",
		"mvn r3, r4",
		"cmp r0, #10",
		"cmpne r0, r1",
		"tst r0, #1",
		"teq r5, r6",
		"mul r0, r1, r2",
		"mla r0, r1, r2, r3",
		"ldr r3, [r1]",
		"ldr r3, [r1, #4]",
		"ldr r3, [r1, #-4]",
		"ldr r3, [r1]!",
		"ldr r3, [r1, #4]!",
		"ldr r3, [r1], #4",
		"ldr r3, [r1], #-4",
		"str r0, [sp, #8]",
		"strb r0, [r1, r2]",
		"ldrb r7, [r2], #1",
		"ldr r0, [r1, r2, lsl #2]",
		"ldr r5, =table",
		"ldr r5, =1000",
		"push {r4, r5, lr}",
		"pop {r4, r5, pc}",
		"b loop",
		"bne loop",
		"bls done",
		"bl memcpy",
		"bx lr",
		"swi 1",
		"nop",
		"addeq r0, r0, #1",
		"subles r0, r0, #1",
	}
	for _, line := range lines {
		in := parseOne(t, line)
		got := in.String()
		if got != line {
			// allow canonicalisation differences only if reparse agrees
			again := parseOne(t, got)
			if again.String() != got {
				t.Errorf("round trip %q -> %q -> %q", line, got, again.String())
			}
			if got != line {
				t.Errorf("not canonical: %q printed as %q", line, got)
			}
		}
	}
}

func TestParseLabelsAndSections(t *testing.T) {
	src := `
.text
_start:
	mov r0, #0
	swi 0
.data
msg:
	.asciz "hi"
val:
	.word 42
ptr:
	.word msg
buf:
	.space 64
`
	u, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Text) != 3 { // label + 2 instructions
		t.Fatalf("text = %d entries", len(u.Text))
	}
	if u.Text[0].Op != arm.LABEL || u.Text[0].Target != "_start" {
		t.Errorf("first entry should be _start label, got %s", u.Text[0].String())
	}
	kinds := []DataKind{DataLabel, DataBytes, DataLabel, DataWord, DataLabel, DataWord, DataLabel, DataSpace}
	if len(u.Data) != len(kinds) {
		t.Fatalf("data = %d entries, want %d", len(u.Data), len(kinds))
	}
	for i, k := range kinds {
		if u.Data[i].Kind != k {
			t.Errorf("data[%d].Kind = %v, want %v", i, u.Data[i].Kind, k)
		}
	}
	if string(u.Data[1].Bytes) != "hi\x00" {
		t.Errorf("asciz bytes = %q", u.Data[1].Bytes)
	}
	if u.Data[3].Value != 42 || u.Data[5].Sym != "msg" || u.Data[7].Space != 64 {
		t.Error("data payloads wrong")
	}
}

func TestParseComments(t *testing.T) {
	u, err := Parse("mov r0, #1 @ set up\n// whole line\nmov r1, #2\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Text) != 2 {
		t.Fatalf("got %d instructions", len(u.Text))
	}
}

func TestParsePoolBarrier(t *testing.T) {
	u, err := Parse("bx lr\n.pool\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Text) != 2 || !IsPoolBarrier(&u.Text[1]) {
		t.Fatal("missing pool barrier")
	}
	if !strings.Contains(Print(u), ".pool") {
		t.Error("Print should render .pool")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frob r0, r1",
		"add r0, r1",
		"mov r0, #99999999999999999999",
		"ldr r3, [r1, #4]!, #2",
		"ldr r3, [zz]",
		"push {}",
		"b 123",
		"mov r16, #0",
		".data\nmov r0, #1",
		".bogus 12",
		"ldrb r0, =sym",
		"9lbl:",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestSplitMnemonicAmbiguity(t *testing.T) {
	// "bls" must parse as b+ls, not bl+s.
	in := parseOne(t, "bls out")
	if in.Op != arm.B || in.Cond != arm.LS {
		t.Errorf("bls parsed as op=%v cond=%v", in.Op, in.Cond)
	}
	// "movs" is mov + S.
	in = parseOne(t, "movs r0, r1")
	if in.Op != arm.MOV || !in.SetS {
		t.Errorf("movs parsed as op=%v setS=%v", in.Op, in.SetS)
	}
	// "addcs" is add + CS cond, not add + C + s.
	in = parseOne(t, "addcs r0, r0, #1")
	if in.Op != arm.ADD || in.Cond != arm.CS || in.SetS {
		t.Errorf("addcs parsed as op=%v cond=%v setS=%v", in.Op, in.Cond, in.SetS)
	}
	// "addcss" wants cond CS and S.
	in = parseOne(t, "addcss r0, r0, #1")
	if in.Op != arm.ADD || in.Cond != arm.CS || !in.SetS {
		t.Errorf("addcss parsed as op=%v cond=%v setS=%v", in.Op, in.Cond, in.SetS)
	}
}

func TestReglistRange(t *testing.T) {
	in := parseOne(t, "push {r0-r3, lr}")
	want := uint16(1<<arm.R0 | 1<<arm.R1 | 1<<arm.R2 | 1<<arm.R3 | 1<<arm.LR)
	if in.Reglist != want {
		t.Errorf("reglist = %#x, want %#x", in.Reglist, want)
	}
}

func TestConstLiteralUnifies(t *testing.T) {
	a := parseOne(t, "ldr r0, =1000")
	b := parseOne(t, "ldr r1, =1000")
	if a.Target != b.Target || !strings.HasPrefix(a.Target, arm.ConstPrefix) {
		t.Errorf("const literals should share a target: %q vs %q", a.Target, b.Target)
	}
	if a.String() != "ldr r0, =1000" {
		t.Errorf("const literal prints as %q", a.String())
	}
}

func TestPrintParseUnitRoundTrip(t *testing.T) {
	src := `.text
f:
	push {r4, lr}
	ldr r4, =tbl
	ldr r0, [r4]
	pop {r4, pc}
	.pool
.data
tbl:
	.word 7
`
	u, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(u)
	u2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if Print(u2) != printed {
		t.Errorf("unit round trip unstable:\n%s\nvs\n%s", printed, Print(u2))
	}
}
