// Package asm assembles and prints the textual form of the arm-style
// instruction set. A translation unit holds a text stream (instructions
// interleaved with labels and .pool literal-barrier directives) and a data
// section; the static linker (internal/link) lays units out, materialises
// literal pools and produces an executable image.
package asm

import (
	"fmt"
	"strings"

	"graphpa/internal/arm"
)

// DataKind discriminates data-section items.
type DataKind uint8

// Data item kinds.
const (
	DataLabel DataKind = iota // a symbol definition
	DataWord                  // one 32-bit word: constant or address-of-symbol
	DataBytes                 // raw bytes (e.g. .asciz), padded to words at layout
	DataSpace                 // n zero bytes
)

// DataItem is one entry of a unit's data section.
type DataItem struct {
	Kind  DataKind
	Label string // DataLabel
	Value int32  // DataWord constant
	Sym   string // DataWord address-of-symbol
	Bytes []byte // DataBytes
	Space int32  // DataSpace size in bytes
}

// Unit is one assembled translation unit.
type Unit struct {
	Text []arm.Instr
	Data []DataItem
}

// PoolBarrier is the pseudo-instruction form of the .pool directive: the
// linker flushes pending literal-pool entries at it. It is represented as
// a NOP-opcode instruction with this marker target so that []arm.Instr
// remains the single stream type; PoolBarriers never survive linking.
const PoolBarrier = ".pool"

// IsPoolBarrier reports whether in is a .pool directive.
func IsPoolBarrier(in *arm.Instr) bool {
	return in.Op == arm.NOP && in.Target == PoolBarrier
}

// NewPoolBarrier returns a .pool directive.
func NewPoolBarrier() arm.Instr {
	in := arm.NewInstr(arm.NOP)
	in.Target = PoolBarrier
	return in
}

// Print renders the unit as assembly text that Parse accepts.
func Print(u *Unit) string {
	var b strings.Builder
	b.WriteString(".text\n")
	b.WriteString(PrintText(u.Text))
	if len(u.Data) > 0 {
		b.WriteString(".data\n")
		for _, d := range u.Data {
			switch d.Kind {
			case DataLabel:
				fmt.Fprintf(&b, "%s:\n", d.Label)
			case DataWord:
				if d.Sym != "" {
					fmt.Fprintf(&b, "\t.word %s\n", d.Sym)
				} else {
					fmt.Fprintf(&b, "\t.word %d\n", d.Value)
				}
			case DataBytes:
				fmt.Fprintf(&b, "\t.asciz %q\n", string(d.Bytes))
			case DataSpace:
				fmt.Fprintf(&b, "\t.space %d\n", d.Space)
			}
		}
	}
	return b.String()
}

// PrintText renders an instruction stream as assembly text, one
// instruction per line, labels unindented.
func PrintText(text []arm.Instr) string {
	var b strings.Builder
	for i := range text {
		in := &text[i]
		if IsPoolBarrier(in) {
			b.WriteString("\t.pool\n")
			continue
		}
		if in.Op == arm.LABEL {
			fmt.Fprintf(&b, "%s\n", in.String())
			continue
		}
		fmt.Fprintf(&b, "\t%s\n", in.String())
	}
	return b.String()
}
