#!/bin/sh
# CI gate: vet plus the whole test suite under the race detector. The
# parallel search is only trustworthy raced, so -race is not optional
# here. Short mode (the default) trims the end-to-end determinism suite
# to its two fastest benchmark programs; run `./ci.sh -full` for the
# complete matrix.
set -eu
cd "$(dirname "$0")"

go vet ./...
if [ "${1:-}" = "-full" ]; then
	go test -race -count=1 ./...
else
	go test -race -count=1 -short ./...
fi
